package depburst_test

// The benchmarks in this file regenerate the paper's evaluation artefacts:
// one benchmark per table and figure (run with -bench to print them), plus
// microbenchmarks for the simulator's hot paths. The table/figure output is
// written to stdout once per benchmark run (the first iteration computes,
// later iterations reuse the Runner's memoised truth runs, so -benchtime
// does not multiply the cost).

import (
	"os"
	"sync"
	"testing"

	"depburst/internal/core"
	"depburst/internal/cpu"
	"depburst/internal/dacapo"
	"depburst/internal/experiments"
	"depburst/internal/kernel"
	"depburst/internal/mem"
	"depburst/internal/rng"
	"depburst/internal/sim"
	"depburst/internal/units"
)

// benchRunner shares memoised truth runs across all experiment benchmarks.
var (
	benchRunner     *experiments.Runner
	benchRunnerOnce sync.Once
)

func runner() *experiments.Runner {
	benchRunnerOnce.Do(func() { benchRunner = experiments.NewRunner() })
	return benchRunner
}

// printOnce prints the table on the first iteration only.
func printOnce(b *testing.B, i int, f func()) {
	if i == 0 && !testing.Short() {
		f()
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := runner().Table1()
		printOnce(b, i, func() { t.Fprint(os.Stdout) })
	}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := runner().Fig1()
		printOnce(b, i, func() { t.Fprint(os.Stdout) })
	}
}

func BenchmarkFig3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := runner().Fig3a()
		printOnce(b, i, func() { t.Fprint(os.Stdout) })
	}
}

func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := runner().Fig3b()
		printOnce(b, i, func() { t.Fprint(os.Stdout) })
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := runner().Fig4()
		printOnce(b, i, func() { t.Fprint(os.Stdout) })
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := runner().Fig6()
		printOnce(b, i, func() { t.Fprint(os.Stdout) })
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := runner().Fig7(500) // 500 MHz static sweep keeps the bench tractable
		printOnce(b, i, func() { t.Fprint(os.Stdout) })
	}
}

func BenchmarkAblationEngines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := runner().EngineAblation()
		printOnce(b, i, func() { t.Fprint(os.Stdout) })
	}
}

func BenchmarkAblationHoldOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := runner().HoldOffAblation("xalan")
		printOnce(b, i, func() { t.Fprint(os.Stdout) })
	}
}

// BenchmarkSuitePrewarm measures the concurrent fan-out of the core
// ground-truth matrix (suite x eval frequencies) from a cold cache — the
// parallel experiment engine's headline path. Wall time scales down with
// GOMAXPROCS while the table outputs stay byte-identical.
func BenchmarkSuitePrewarm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		r.Prewarm(dacapo.Suite(), experiments.EvalFreqs...)
	}
}

// BenchmarkSuitePrewarmSerial is the -j 1 baseline for BenchmarkSuitePrewarm;
// the ratio of the two is the experiment engine's speedup on this machine.
func BenchmarkSuitePrewarmSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunnerWorkers(1)
		r.Prewarm(dacapo.Suite(), experiments.EvalFreqs...)
	}
}

// --- Simulator microbenchmarks -----------------------------------------

// BenchmarkSimulatorRun measures full-system simulation throughput on the
// smallest benchmark (instructions simulated per wall second are reported
// as a custom metric).
func BenchmarkSimulatorRun(b *testing.B) {
	spec, err := dacapo.ByName("pmd.scale")
	if err != nil {
		b.Fatal(err)
	}
	var instrs int64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		spec.Configure(&cfg)
		res, err := sim.New(cfg).Run(dacapo.New(spec))
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.TotalCounters().Instrs
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func BenchmarkCacheAccess(b *testing.B) {
	c := mem.NewCache(mem.CacheConfig{SizeBytes: 256 << 10, Ways: 8})
	r := rng.New(1)
	addrs := make([]mem.Addr, 4096)
	for i := range addrs {
		addrs[i] = mem.Addr(r.Int63n(1 << 22)).Line()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095], i&7 == 0)
	}
}

func BenchmarkDRAMAccess(b *testing.B) {
	d := mem.NewDRAM(mem.DefaultDRAMConfig())
	r := rng.New(2)
	addrs := make([]mem.Addr, 4096)
	for i := range addrs {
		addrs[i] = mem.Addr(r.Int63n(1 << 30)).Line()
	}
	b.ResetTimer()
	now := units.Time(0)
	for i := 0; i < b.N; i++ {
		d.Access(now, addrs[i&4095], i&3 == 0)
		now += 20 * units.Nanosecond
	}
}

func BenchmarkCoreRunBlock(b *testing.B) {
	hier := mem.NewHierarchy(mem.DefaultHierarchyConfig(1))
	clock := units.NewClock(1000 * units.MHz)
	core0 := cpu.NewCore(0, cpu.DefaultConfig(), clock, hier)
	r := rng.New(3)
	blk := &cpu.Block{Instrs: 16000, IPC: 2}
	for j := int64(0); j < 16000; j += 100 {
		blk.Events = append(blk.Events, cpu.MemEvent{
			At:    j,
			Addr:  mem.Addr(r.Int63n(1 << 24)).Line(),
			Store: j%400 == 0,
		})
	}
	var ctr cpu.Counters
	b.ResetTimer()
	now := units.Time(0)
	for i := 0; i < b.N; i++ {
		now = core0.Run(now, blk, &ctr)
	}
}

func BenchmarkEpochPrediction(b *testing.B) {
	// DEP+BURST over a realistic epoch stream (the predictor itself).
	spec, err := dacapo.ByName("pmd.scale")
	if err != nil {
		b.Fatal(err)
	}
	res := runner().Truth(spec, 1000)
	epochs := res.Epochs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.PredictEpochs(epochs, 1000, 4000, core.Options{Burst: true})
	}
}

func BenchmarkFutexPingPong(b *testing.B) {
	// Kernel scheduling overhead: one wake/sleep round trip.
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		m := sim.New(cfg)
		m.Kern.Spawn("a", kernel.ClassApp, 0, func(e *kernel.Env) {
			var fu kernel.Futex
			for j := 0; j < 1000; j++ {
				e.Wake(&fu, 1)
			}
		})
		if _, err := m.Run(nullWorkload{}); err != nil {
			b.Fatal(err)
		}
	}
}

type nullWorkload struct{}

func (nullWorkload) Name() string         { return "null" }
func (nullWorkload) Setup(m *sim.Machine) {}
