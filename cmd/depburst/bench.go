package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"depburst/internal/experiments"
	"depburst/internal/simcache"
	"depburst/internal/units"
)

// benchDoc is the machine-readable record `depburst bench` emits, the
// anchor point of the performance trajectory: wall time of the full
// experiment suite, speedup of the parallel engine over the serial
// baseline, cold-vs-warm wall time through the persistent result cache,
// and whether every mode produced byte-identical tables.
type benchDoc struct {
	Schema          string  `json:"schema"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Workers         int     `json:"workers"`
	StepMHz         int     `json:"step_mhz"`
	Experiments     int     `json:"experiments"`
	WallSeconds     float64 `json:"wall_seconds"`
	SerialSeconds   float64 `json:"serial_seconds,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
	Deterministic   *bool   `json:"deterministic,omitempty"`
	OutputBytes     int     `json:"output_bytes"`
	UnixTimeSeconds int64   `json:"unix_time_seconds"`

	// Persistent-cache phase: the suite rendered once against an empty
	// cache directory (cold, populating) and once against the populated
	// one (warm, pure deserialization).
	CacheColdSeconds   float64 `json:"cache_cold_seconds,omitempty"`
	CacheWarmSeconds   float64 `json:"cache_warm_seconds,omitempty"`
	CacheSpeedup       float64 `json:"cache_speedup,omitempty"`
	CacheDeterministic *bool   `json:"cache_deterministic,omitempty"`
	CacheEntries       int     `json:"cache_entries,omitempty"`
	CacheBytes         int64   `json:"cache_bytes,omitempty"`
}

// cmdBench times the full experiment suite through the parallel engine,
// through a serial (-j 1) runner (unless -baseline=false), and cold/warm
// through a fresh persistent cache (unless -cachecheck=false), checks that
// every mode's output is byte-identical, and writes the result as JSON.
func cmdBench(args []string, workers int) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	step := fs.Int("step", 500, "static sweep step in MHz for Figure 7")
	out := fs.String("o", "BENCH_suite.json", "output file")
	baseline := fs.Bool("baseline", true, "also run serially (-j 1) to measure speedup and verify determinism")
	cachecheck := fs.Bool("cachecheck", true, "also run cold+warm through a temporary persistent cache to measure the warm-rerun speedup and verify byte-identity")
	fs.Parse(args)

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	nTables := 0
	render := func(n int, disk *simcache.Store) (string, time.Duration) {
		r := experiments.NewRunnerWorkers(n)
		r.SetDiskCache(disk)
		start := time.Now() //depburst:allow determinism -- bench times the real wall clock; the tables themselves are checked for byte-identity
		tables := suiteTables(r, units.Freq(*step))
		var b strings.Builder
		for _, t := range tables {
			t.Fprint(&b)
		}
		nTables = len(tables)
		//depburst:allow determinism -- wall-clock duration is the measurement
		return b.String(), time.Since(start)
	}

	fmt.Fprintf(os.Stderr, "bench: full suite, %d workers (GOMAXPROCS %d)...\n",
		workers, runtime.GOMAXPROCS(0))
	parText, parDur := render(workers, nil)
	fmt.Fprintf(os.Stderr, "bench: parallel run %.2fs\n", parDur.Seconds())

	doc := benchDoc{
		Schema:          "depburst-bench/1",
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Workers:         workers,
		StepMHz:         *step,
		Experiments:     nTables,
		WallSeconds:     parDur.Seconds(),
		OutputBytes:     len(parText),
		UnixTimeSeconds: time.Now().Unix(), //depburst:allow determinism -- the record is stamped with when it was taken by design
	}
	diverged := false
	if *baseline {
		fmt.Fprintf(os.Stderr, "bench: serial baseline (-j 1)...\n")
		serText, serDur := render(1, nil)
		det := parText == serText
		doc.SerialSeconds = serDur.Seconds()
		doc.Speedup = serDur.Seconds() / parDur.Seconds()
		doc.Deterministic = &det
		fmt.Fprintf(os.Stderr, "bench: serial run %.2fs, speedup %.2fx, deterministic=%v\n",
			serDur.Seconds(), doc.Speedup, det)
		if !det {
			fmt.Fprintln(os.Stderr, "bench: ERROR: parallel output differs from serial output")
			diverged = true
		}
	}
	if *cachecheck {
		dir, err := os.MkdirTemp("", "depburst-bench-cache-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		st, err := simcache.Open(dir, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: cold run into %s...\n", dir)
		coldText, coldDur := render(workers, st)
		fmt.Fprintf(os.Stderr, "bench: cold run %.2fs; warm rerun...\n", coldDur.Seconds())
		warmText, warmDur := render(workers, st)
		det := coldText == parText && warmText == parText
		doc.CacheColdSeconds = coldDur.Seconds()
		doc.CacheWarmSeconds = warmDur.Seconds()
		doc.CacheSpeedup = coldDur.Seconds() / warmDur.Seconds()
		doc.CacheDeterministic = &det
		doc.CacheEntries, doc.CacheBytes, _ = st.Size()
		fmt.Fprintf(os.Stderr, "bench: warm run %.2fs, warm speedup %.2fx, deterministic=%v (%d entries, %.1f MB)\n",
			warmDur.Seconds(), doc.CacheSpeedup, det, doc.CacheEntries, float64(doc.CacheBytes)/1e6)
		if !det {
			fmt.Fprintln(os.Stderr, "bench: ERROR: cached output differs from uncached output")
			diverged = true
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("wrote %s\n", *out)
	if diverged {
		os.Exit(1)
	}
}
