package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"depburst/internal/dacapo"
	"depburst/internal/experiments"
	"depburst/internal/report"
	"depburst/internal/sampling"
	"depburst/internal/simcache"
	"depburst/internal/surrogate"
	"depburst/internal/units"
)

// benchDoc is the machine-readable record `depburst bench` emits, the
// anchor point of the performance trajectory: wall time of the full
// experiment suite, speedup of the parallel engine over the serial
// baseline, cold-vs-warm wall time through the persistent result cache,
// and whether every mode produced byte-identical tables.
type benchDoc struct {
	Schema          string  `json:"schema"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Workers         int     `json:"workers"`
	StepMHz         int     `json:"step_mhz"`
	Experiments     int     `json:"experiments"`
	WallSeconds     float64 `json:"wall_seconds"`
	SerialSeconds   float64 `json:"serial_seconds,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
	Deterministic   *bool   `json:"deterministic,omitempty"`
	OutputBytes     int     `json:"output_bytes"`
	UnixTimeSeconds int64   `json:"unix_time_seconds"`

	// Persistent-cache phase: the suite rendered once against an empty
	// cache directory (cold, populating) and once against the populated
	// one (warm, pure deserialization).
	CacheColdSeconds   float64 `json:"cache_cold_seconds,omitempty"`
	CacheWarmSeconds   float64 `json:"cache_warm_seconds,omitempty"`
	CacheSpeedup       float64 `json:"cache_speedup,omitempty"`
	CacheDeterministic *bool   `json:"cache_deterministic,omitempty"`
	CacheEntries       int     `json:"cache_entries,omitempty"`
	CacheBytes         int64   `json:"cache_bytes,omitempty"`

	// Sampled-mode phase (schema /2): the suite rendered cold (populating
	// a fresh cache) and warm under the default sampling policy. The
	// speedup compares sampled cold against full-detail cold — the number
	// that matters for first contact — and the error delta is the shift
	// sampling induces in the DEP+BURST mean-abs prediction error over the
	// Figure 1 matrix (a fraction; x100 for percentage points).
	SampleColdSeconds   float64 `json:"sample_cold_seconds,omitempty"`
	SampleWarmSeconds   float64 `json:"sample_warm_seconds,omitempty"`
	SampleSpeedup       float64 `json:"sample_speedup,omitempty"`
	SampleErrorDelta    float64 `json:"sample_error_delta,omitempty"`
	SampleDeterministic *bool   `json:"sample_deterministic,omitempty"`

	// Surrogate phase (schema /3): the learned fast path trained on the
	// cachecheck phase's corpus. Predict latency is the direct in-process
	// call; the speedup compares it against the corpus's mean cold
	// full-detail simulation; the hit rate is the corpus fraction whose
	// estimates clear the serving confidence gate; the holdout error is the
	// high-confidence bucket's held-out mean-abs relative error.
	SurrogateSamples      int     `json:"surrogate_samples,omitempty"`
	SurrogateGroups       int     `json:"surrogate_groups,omitempty"`
	SurrogateTrainSeconds float64 `json:"surrogate_train_seconds,omitempty"`
	SurrogatePredictUs    float64 `json:"surrogate_predict_us,omitempty"`
	SurrogateHitRate      float64 `json:"surrogate_hit_rate,omitempty"`
	SurrogateHoldoutErr   float64 `json:"surrogate_holdout_err,omitempty"`
	SurrogateSpeedup      float64 `json:"surrogate_speedup,omitempty"`
}

// cmdBench times the full experiment suite through the parallel engine,
// through a serial (-j 1) runner (unless -baseline=false), cold/warm
// through a fresh persistent cache (unless -cachecheck=false), and cold/warm
// in sampled mode (unless -samplecheck=false), checks that every mode's
// output is byte-identical to its own reruns, and writes the result as JSON.
func cmdBench(args []string, workers int) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	step := fs.Int("step", 500, "static sweep step in MHz for Figure 7")
	out := fs.String("o", "BENCH_suite.json", "output file")
	baseline := fs.Bool("baseline", true, "also run serially (-j 1) to measure speedup and verify determinism")
	cachecheck := fs.Bool("cachecheck", true, "also run cold+warm through a temporary persistent cache to measure the warm-rerun speedup and verify byte-identity")
	samplecheck := fs.Bool("samplecheck", true, "also run the suite cold+warm in sampled mode to measure its cold-run speedup and prediction-error delta")
	surrogatecheck := fs.Bool("surrogatecheck", true, "also train the learned surrogate on the cachecheck corpus and record its latency, hit rate, and held-out error (needs -cachecheck)")
	fs.Parse(args)

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintln(os.Stderr, "bench: WARNING: GOMAXPROCS is 1; the parallel engine cannot show a speedup and every timing understates a multi-core runner")
	}

	newRunner := func(n int, disk *simcache.Store, sampled bool) *experiments.Runner {
		r := experiments.NewRunnerWorkers(n)
		r.SetDiskCache(disk)
		if sampled {
			r.SetSampling(sampling.DefaultPolicy())
		}
		return r
	}
	nTables := 0
	render := func(r *experiments.Runner) (string, time.Duration) {
		start := time.Now() //depburst:allow determinism -- bench times the real wall clock; the tables themselves are checked for byte-identity
		tables := suiteTables(r, units.Freq(*step))
		var b strings.Builder
		for _, t := range tables {
			t.Fprint(&b)
		}
		nTables = len(tables)
		//depburst:allow determinism -- wall-clock duration is the measurement
		return b.String(), time.Since(start)
	}

	fmt.Fprintf(os.Stderr, "bench: full suite, %d workers (GOMAXPROCS %d)...\n",
		workers, runtime.GOMAXPROCS(0))
	par := newRunner(workers, nil, false)
	parText, parDur := render(par)
	fmt.Fprintf(os.Stderr, "bench: parallel run %.2fs\n", parDur.Seconds())

	doc := benchDoc{
		Schema:          "depburst-bench/3",
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Workers:         workers,
		StepMHz:         *step,
		Experiments:     nTables,
		WallSeconds:     parDur.Seconds(),
		OutputBytes:     len(parText),
		UnixTimeSeconds: time.Now().Unix(), //depburst:allow determinism -- the record is stamped with when it was taken by design
	}
	diverged := false
	var corpusStore *simcache.Store // the cachecheck phase's populated corpus
	var corpusColdSeconds float64
	var corpusSims int64
	if *baseline {
		fmt.Fprintf(os.Stderr, "bench: serial baseline (-j 1)...\n")
		serText, serDur := render(newRunner(1, nil, false))
		det := parText == serText
		doc.SerialSeconds = serDur.Seconds()
		doc.Speedup = serDur.Seconds() / parDur.Seconds()
		doc.Deterministic = &det
		fmt.Fprintf(os.Stderr, "bench: serial run %.2fs, speedup %.2fx, deterministic=%v\n",
			serDur.Seconds(), doc.Speedup, det)
		if !det {
			fmt.Fprintln(os.Stderr, "bench: ERROR: parallel output differs from serial output")
			diverged = true
		}
	}
	if *cachecheck {
		dir, err := os.MkdirTemp("", "depburst-bench-cache-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		st, err := simcache.Open(dir, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: cold run into %s...\n", dir)
		cold := newRunner(workers, st, false)
		coldText, coldDur := render(cold)
		fmt.Fprintf(os.Stderr, "bench: cold run %.2fs; warm rerun...\n", coldDur.Seconds())
		warmText, warmDur := render(newRunner(workers, st, false))
		det := coldText == parText && warmText == parText
		doc.CacheColdSeconds = coldDur.Seconds()
		doc.CacheWarmSeconds = warmDur.Seconds()
		doc.CacheSpeedup = coldDur.Seconds() / warmDur.Seconds()
		doc.CacheDeterministic = &det
		doc.CacheEntries, doc.CacheBytes, _ = st.Size()
		fmt.Fprintf(os.Stderr, "bench: warm run %.2fs, warm speedup %.2fx, deterministic=%v (%d entries, %.1f MB)\n",
			warmDur.Seconds(), doc.CacheSpeedup, det, doc.CacheEntries, float64(doc.CacheBytes)/1e6)
		if !det {
			fmt.Fprintln(os.Stderr, "bench: ERROR: cached output differs from uncached output")
			diverged = true
		}
		corpusStore = st
		corpusColdSeconds = coldDur.Seconds()
		corpusSims = cold.Simulations()
	}
	if *samplecheck {
		dir, err := os.MkdirTemp("", "depburst-bench-sample-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		st, err := simcache.Open(dir, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: sampled cold run (-sample)...\n")
		sr := newRunner(workers, st, true)
		sampColdText, sampColdDur := render(sr)
		fmt.Fprintf(os.Stderr, "bench: sampled cold %.2fs; warm rerun...\n", sampColdDur.Seconds())
		sampWarmText, sampWarmDur := render(newRunner(workers, st, true))
		det := sampWarmText == sampColdText
		doc.SampleColdSeconds = sampColdDur.Seconds()
		doc.SampleWarmSeconds = sampWarmDur.Seconds()
		// Compare cold against cold: prefer the cachecheck phase's cold run
		// (same populating-cache conditions) over the uncached parallel run.
		fullCold := parDur.Seconds()
		if doc.CacheColdSeconds > 0 {
			fullCold = doc.CacheColdSeconds
		}
		doc.SampleSpeedup = fullCold / sampColdDur.Seconds()
		doc.SampleDeterministic = &det
		// Both runners hold every Figure 1 truth memoised from the renders
		// above, so the error delta costs only the predictor evaluations.
		suite := dacapo.Suite()
		doc.SampleErrorDelta = depBurstMeanAbs(sr, suite) - depBurstMeanAbs(par, suite)
		fmt.Fprintf(os.Stderr, "bench: sampled cold %.2fs (%.2fx over full cold), warm %.2fs, DEP+BURST error delta %+.2fpp, deterministic=%v\n",
			sampColdDur.Seconds(), doc.SampleSpeedup, sampWarmDur.Seconds(), 100*doc.SampleErrorDelta, det)
		if !det {
			fmt.Fprintln(os.Stderr, "bench: ERROR: warm sampled output differs from cold sampled output")
			diverged = true
		}
	}
	if *surrogatecheck && corpusStore != nil && corpusSims > 0 {
		samples, err := surrogate.Scan(corpusStore)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(samples) > 0 {
			fmt.Fprintf(os.Stderr, "bench: training the surrogate on the %d-sample cachecheck corpus...\n", len(samples))
			start := time.Now() //depburst:allow determinism -- bench times the real wall clock
			model := surrogate.Train(samples)
			//depburst:allow determinism -- wall-clock duration is the measurement
			trainDur := time.Since(start)
			sum := model.Summarize()
			doc.SurrogateSamples = len(samples)
			doc.SurrogateGroups = sum.Groups
			doc.SurrogateTrainSeconds = trainDur.Seconds()

			hits := 0
			reps := 1 + 1000/len(samples)
			start = time.Now() //depburst:allow determinism -- predict latency is the measurement
			for i := 0; i < reps; i++ {
				for _, s := range samples {
					if est, ok := model.Predict(s.Config, s.Spec); ok && i == 0 &&
						est.Confidence >= surrogate.DefaultMinConfidence {
						hits++
					}
				}
			}
			//depburst:allow determinism -- predict latency is the measurement
			predDur := time.Since(start)
			predSecs := predDur.Seconds() / float64(reps*len(samples))
			doc.SurrogatePredictUs = 1e6 * predSecs
			doc.SurrogateHitRate = float64(hits) / float64(len(samples))
			high, _ := surrogateHoldout(samples)
			doc.SurrogateHoldoutErr = report.MeanAbs(high)
			doc.SurrogateSpeedup = (corpusColdSeconds / float64(corpusSims)) / predSecs
			fmt.Fprintf(os.Stderr, "bench: surrogate: %d groups, train %.2fs, predict %.1fus (%.0fx over cold sim), hit rate %.0f%%, held-out err %s\n",
				doc.SurrogateGroups, trainDur.Seconds(), doc.SurrogatePredictUs,
				doc.SurrogateSpeedup, 100*doc.SurrogateHitRate, report.PctAbs(doc.SurrogateHoldoutErr))
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("wrote %s\n", *out)
	if diverged {
		os.Exit(1)
	}
}
