package main

import (
	"encoding/json"
	"fmt"
	"os"

	"depburst/internal/server"
)

// mergeLoadReport inserts the load report into a BENCH_suite.json-style
// document under the "loadtest" key, preserving every other field the bench
// command wrote (read-modify-write on the generic JSON object, so the two
// commands can share one file without knowing each other's schema).
func mergeLoadReport(path string, rep *server.LoadReport) error {
	doc := map[string]any{"schema": "depburst-bench/1"}
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &doc); err != nil {
			return fmt.Errorf("loadtest: %s exists but is not JSON: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	doc["loadtest"] = rep
	//depburst:allow goldenio -- read-modify-write of a foreign document: the map preserves fields this command does not know; encoding/json sorts the keys
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
