package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"depburst/internal/dacapo"
	"depburst/internal/experiments"
	"depburst/internal/metrics"
	"depburst/internal/report"
	"depburst/internal/server"
	"depburst/internal/simcache"
	"depburst/internal/surrogate"
)

// cmdTrain fits the surrogate fast path from the persistent cache's truth
// corpus and writes the model file `depburst serve -model` loads. The
// global -cache flag names the corpus; -prewarm populates it first.
func cmdTrain(r *experiments.Runner, args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	out := fs.String("o", "surrogate.dbsg", "output model file")
	prewarm := fs.Bool("prewarm", false, "populate the corpus first: simulate the suite at every evaluation frequency into the cache")
	fs.Parse(args)

	st := r.DiskCache()
	if st == nil {
		fmt.Fprintln(os.Stderr, "train: the surrogate trains on a cached corpus; name one with -cache DIR (or DEPBURST_CACHE)")
		os.Exit(1)
	}
	if *prewarm {
		r.Prewarm(r.Suite(), experiments.EvalFreqs...)
	}
	samples, err := surrogate.Scan(st)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "train: the cache holds no full-detail truth runs; run experiments through it first (or pass -prewarm)")
		os.Exit(1)
	}
	m := surrogate.Train(samples)
	if err := m.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sum := m.Summarize()
	fmt.Printf("trained on %d samples: %d groups, gamma %.3f, cv err interp %s / extrap %s / knn %s -> %s\n",
		sum.Points, sum.Groups, sum.Gamma,
		report.PctAbs(sum.InterpErr), report.PctAbs(sum.ExtrapErr), report.PctAbs(sum.KNNErr), *out)
}

// surrogateCheckDoc is the machine-readable surrogatecheck report.
type surrogateCheckDoc struct {
	Schema      string  `json:"schema"` // "depburst-surrogatecheck/1"
	Samples     int     `json:"samples"`
	Groups      int     `json:"groups"`
	HighCount   int     `json:"high_count"`
	HighMeanAbs float64 `json:"high_mean_abs"`
	LowCount    int     `json:"low_count"`
	LowMeanAbs  float64 `json:"low_mean_abs"`
	MaxErr      float64 `json:"max_err"`
	ColdSimMs   float64 `json:"cold_sim_ms"`
	SurrogateUs float64 `json:"surrogate_us"`
	Speedup     float64 `json:"speedup"`
	MinSpeedup  float64 `json:"min_speedup"`
	ServedTier0 int     `json:"served_tier0"`
	FellThrough int     `json:"fell_through"`
	Pass        bool    `json:"pass"`
}

// cmdSurrogateCheck is the learned fast path's accuracy, calibration and
// speed gate (CI's surrogate-accuracy job):
//
//   - held-out accuracy: every corpus sample predicted by a model trained
//     without it; the high-confidence bucket's mean-abs error must clear
//     -max-err,
//   - calibration: the low-confidence bucket (dominated by whole-benchmark
//     holdouts, where only cross-workload transfer is available) must be
//     WORSE than the high-confidence bucket — confidence has to mean
//     something, and
//   - speed: the in-process /v1/predict round-trip served from the trained
//     model must beat the mean cold full-detail simulation by -min-speedup,
//     with every request actually answered at tier 0.
func cmdSurrogateCheck(args []string, workers int) {
	fs := flag.NewFlagSet("surrogatecheck", flag.ExitOnError)
	maxErr := fs.Float64("max-err", 0.05, "fail when the high-confidence held-out mean-abs error exceeds this")
	minSpeedup := fs.Float64("min-speedup", 100, "fail below this surrogate-vs-cold-simulation speedup")
	out := fs.String("o", "", "also write the machine-readable report (JSON) to FILE")
	fs.Parse(args)

	newRunner := func() *experiments.Runner {
		if workers > 0 {
			return experiments.NewRunnerWorkers(workers)
		}
		return experiments.NewRunner()
	}
	suite := dacapo.Suite()

	// Build the corpus cold, timing it: the per-simulation mean is the
	// latency the fast path is judged against.
	dir, err := os.MkdirTemp("", "depburst-surrogatecheck-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	st, err := simcache.Open(dir, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	corpus := newRunner()
	corpus.SetDiskCache(st)
	start := time.Now() //depburst:allow determinism -- surrogatecheck times the real wall clock; the accuracy columns are deterministic
	corpus.Prewarm(suite, experiments.EvalFreqs...)
	//depburst:allow determinism -- wall-clock duration is the measurement
	coldWall := time.Since(start)
	sims := corpus.Simulations()

	samples, err := surrogate.Scan(st)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if want := len(suite) * len(experiments.EvalFreqs); len(samples) != want {
		fmt.Fprintf(os.Stderr, "surrogatecheck: corpus scan found %d samples, want %d\n", len(samples), want)
		os.Exit(1)
	}

	high, low := surrogateHoldout(samples)
	model := surrogate.Train(samples)
	sum := model.Summarize()
	doc := surrogateCheckDoc{
		Schema:      "depburst-surrogatecheck/1",
		Samples:     len(samples),
		Groups:      sum.Groups,
		HighCount:   len(high),
		HighMeanAbs: report.MeanAbs(high),
		LowCount:    len(low),
		LowMeanAbs:  report.MeanAbs(low),
		MaxErr:      *maxErr,
		ColdSimMs:   1e3 * coldWall.Seconds() / float64(sims),
		MinSpeedup:  *minSpeedup,
	}

	// Serve the corpus's own request shape from the trained model through
	// the real HTTP layer. The backing runner is fresh and cache-less: a
	// single fallback would simulate, so a zero count proves tier 0 took
	// every request.
	backing := newRunner()
	srv, err := server.New(server.Config{
		Runner:    backing,
		Metrics:   metrics.NewServerRegistry(),
		Surrogate: model,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var served time.Duration
	const rounds = 5
	for i := 0; i < rounds; i++ {
		for _, spec := range suite {
			body := fmt.Sprintf(`{"bench":%q,"base_mhz":1000,"targets_mhz":[2000,3000,4000]}`, spec.Name)
			rec := newMemResponse()
			req, err := http.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader([]byte(body)))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			start := time.Now() //depburst:allow determinism -- request latency is the measurement
			srv.ServeHTTP(rec, req)
			//depburst:allow determinism -- request latency is the measurement
			served += time.Since(start)
			var resp struct {
				Tier string `json:"tier"`
			}
			if rec.code != http.StatusOK || json.Unmarshal(rec.body.Bytes(), &resp) != nil {
				fmt.Fprintf(os.Stderr, "surrogatecheck: %s: status %d: %s\n", spec.Name, rec.code, rec.body.Bytes())
				os.Exit(1)
			}
			if resp.Tier == "surrogate" {
				doc.ServedTier0++
			} else {
				doc.FellThrough++
			}
		}
	}
	requests := rounds * len(suite)
	doc.SurrogateUs = 1e6 * served.Seconds() / float64(requests)
	doc.Speedup = doc.ColdSimMs * 1e3 / doc.SurrogateUs

	calibrated := doc.HighCount > 0 && doc.LowCount > 0 && doc.LowMeanAbs > doc.HighMeanAbs
	doc.Pass = doc.HighMeanAbs <= *maxErr && calibrated &&
		doc.Speedup >= *minSpeedup && doc.FellThrough == 0 && backing.Simulations() == 0

	t := &report.Table{
		Title:  fmt.Sprintf("surrogatecheck: %d samples over %d groups (cold corpus %.1fs, %d sims)", doc.Samples, doc.Groups, coldWall.Seconds(), sims),
		Header: []string{"bucket", "estimates", "mean-abs err", "gate"},
	}
	t.AddRow("high confidence", fmt.Sprintf("%d", doc.HighCount), report.PctAbs(doc.HighMeanAbs), fmt.Sprintf("<= %s", report.PctAbs(*maxErr)))
	t.AddRow("low confidence", fmt.Sprintf("%d", doc.LowCount), report.PctAbs(doc.LowMeanAbs), "> high bucket")
	emit(t)
	fmt.Printf("serving: %d/%d requests at tier 0, mean %.0fus vs %.1fms cold sim = %.0fx (min %.0fx)\n",
		doc.ServedTier0, requests, doc.SurrogateUs, doc.ColdSimMs, doc.Speedup, *minSpeedup)

	if *out != "" {
		writeTo(*out, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(doc)
		})
		fmt.Printf("report -> %s\n", *out)
	}
	switch {
	case doc.HighMeanAbs > *maxErr:
		fmt.Printf("surrogatecheck: FAILED (high-confidence held-out error %s exceeds %s)\n", report.PctAbs(doc.HighMeanAbs), report.PctAbs(*maxErr))
		os.Exit(1)
	case !calibrated:
		fmt.Println("surrogatecheck: FAILED (confidence is not calibrated: low bucket not worse than high)")
		os.Exit(1)
	case doc.FellThrough > 0 || backing.Simulations() != 0:
		fmt.Printf("surrogatecheck: FAILED (%d requests fell through to simulation)\n", doc.FellThrough)
		os.Exit(1)
	case doc.Speedup < *minSpeedup:
		fmt.Printf("surrogatecheck: FAILED (speedup %.0fx below the %.0fx gate)\n", doc.Speedup, *minSpeedup)
		os.Exit(1)
	}
	fmt.Println("surrogatecheck: passed")
}

// surrogateHoldout cross-validates the corpus the way the serving tier is
// used. Two folds: every sample predicted by a model trained without it
// (the within-group law path stays available), and every benchmark
// predicted by a model trained without any of its samples (only
// cross-workload transfer remains). Estimates are bucketed by whether
// their confidence clears the serving gate; the slices hold the buckets'
// signed relative errors.
func surrogateHoldout(samples []surrogate.Sample) (high, low []float64) {
	bucket := func(m *surrogate.Model, s surrogate.Sample) {
		est, ok := m.Predict(s.Config, s.Spec)
		if !ok || s.Time <= 0 {
			return
		}
		e := report.RelError(float64(est.Time), float64(s.Time))
		if est.Confidence >= surrogate.DefaultMinConfidence {
			high = append(high, e)
		} else {
			low = append(low, e)
		}
	}
	for i, s := range samples {
		rest := make([]surrogate.Sample, 0, len(samples)-1)
		rest = append(rest, samples[:i]...)
		rest = append(rest, samples[i+1:]...)
		bucket(surrogate.Train(rest), s)
	}
	byBench := map[string][]surrogate.Sample{}
	for _, s := range samples {
		byBench[s.Spec.Name] = append(byBench[s.Spec.Name], s)
	}
	benches := make([]string, 0, len(byBench))
	for b := range byBench {
		benches = append(benches, b)
	}
	sort.Strings(benches)
	for _, b := range benches {
		rest := make([]surrogate.Sample, 0, len(samples))
		for _, s := range samples {
			if s.Spec.Name != b {
				rest = append(rest, s)
			}
		}
		m := surrogate.Train(rest)
		for _, s := range byBench[b] {
			bucket(m, s)
		}
	}
	return high, low
}

// memResponse is a minimal in-process http.ResponseWriter for driving the
// server handler without a listener.
type memResponse struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func newMemResponse() *memResponse {
	return &memResponse{header: http.Header{}, code: http.StatusOK}
}

func (m *memResponse) Header() http.Header         { return m.header }
func (m *memResponse) WriteHeader(c int)           { m.code = c }
func (m *memResponse) Write(b []byte) (int, error) { return m.body.Write(b) }
