package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"depburst/internal/core"
	"depburst/internal/dacapo"
	"depburst/internal/experiments"
	"depburst/internal/report"
	"depburst/internal/sampling"
	"depburst/internal/units"
)

// sampleCheckDoc is the machine-readable samplecheck report (-o FILE).
type sampleCheckDoc struct {
	Schema       string              `json:"schema"` // "depburst-samplecheck/1"
	Policy       sampling.Policy     `json:"policy"`
	FullSeconds  float64             `json:"full_seconds"`
	SampleSecs   float64             `json:"sample_seconds"`
	Speedup      float64             `json:"speedup"`
	MinSpeedup   float64             `json:"min_speedup"`
	MaxError     float64             `json:"max_error"`     // max |sampled-full|/full over all runs
	MaxBound     float64             `json:"max_bound"`     // largest reported error bound
	PredictDelta float64             `json:"predict_delta"` // shift in DEP+BURST mean-abs error
	Runs         []sampleCheckRunDoc `json:"runs"`
	Pass         bool                `json:"pass"`
}

type sampleCheckRunDoc struct {
	Bench    string  `json:"bench"`
	MHz      int64   `json:"mhz"`
	FullPS   int64   `json:"full_ps"`
	SamplePS int64   `json:"sample_ps"`
	RelError float64 `json:"rel_error"`
	Bound    float64 `json:"bound"`
	FastFrac float64 `json:"fast_frac"`
	Drops    int64   `json:"drops"`
}

// cmdSampleCheck is the sampled-mode accuracy and speed gate: run the
// Figure 1 ground-truth matrix (the stock suite at every evaluation
// frequency) cold in full-detail and sampled modes, then require that
//
//   - every sampled run's completion time lands inside the error bound the
//     run itself reported, and
//   - the cold-run wall-clock speedup clears -min-speedup.
//
// Both passes use fresh runners and no disk cache, so the timings are true
// cold-run numbers. CI runs this as the sample-accuracy job.
func cmdSampleCheck(args []string, workers int) {
	fs := flag.NewFlagSet("samplecheck", flag.ExitOnError)
	minSpeedup := fs.Float64("min-speedup", 3.0, "fail below this cold-run speedup")
	out := fs.String("o", "", "also write the machine-readable report (JSON) to FILE")
	fs.Parse(args)

	newRunner := func() *experiments.Runner {
		if workers > 0 {
			return experiments.NewRunnerWorkers(workers)
		}
		return experiments.NewRunner()
	}
	suite := dacapo.Suite()
	policy := sampling.DefaultPolicy()

	full := newRunner()
	start := time.Now() //depburst:allow determinism -- samplecheck times the real wall clock; the accuracy columns are deterministic
	full.Prewarm(suite, experiments.EvalFreqs...)
	//depburst:allow determinism -- wall-clock duration is the measurement
	fullWall := time.Since(start)

	sampled := newRunner()
	sampled.SetSampling(policy)
	start = time.Now() //depburst:allow determinism -- wall-clock duration is the measurement
	sampled.Prewarm(suite, experiments.EvalFreqs...)
	//depburst:allow determinism -- wall-clock duration is the measurement
	sampledWall := time.Since(start)

	doc := sampleCheckDoc{
		Schema:      "depburst-samplecheck/1",
		Policy:      policy,
		FullSeconds: fullWall.Seconds(),
		SampleSecs:  sampledWall.Seconds(),
		Speedup:     fullWall.Seconds() / sampledWall.Seconds(),
		MinSpeedup:  *minSpeedup,
	}

	t := &report.Table{
		Title:  fmt.Sprintf("samplecheck: suite x %v, cold (full %.1fs, sampled %.1fs, %.2fx)", experiments.EvalFreqs, doc.FullSeconds, doc.SampleSecs, doc.Speedup),
		Header: []string{"bench", "MHz", "full", "sampled", "error", "bound", "fast", "drops", ""},
	}
	inBound := true
	for _, spec := range suite {
		for _, f := range experiments.EvalFreqs {
			ft := full.Truth(spec, f)
			st := sampled.Truth(spec, f)
			relErr := report.RelError(float64(st.Time), float64(ft.Time))
			var bound, fastFrac float64
			var drops int64
			if st.Sampling != nil {
				bound = st.Sampling.ErrorBound
				fastFrac = st.Sampling.FastFrac()
				drops = int64(st.Sampling.Drops)
			}
			ok := math.Abs(relErr) <= bound
			mark := ""
			if !ok {
				mark = "OUT OF BOUND"
				inBound = false
			}
			doc.Runs = append(doc.Runs, sampleCheckRunDoc{
				Bench: spec.Name, MHz: int64(f),
				FullPS: int64(ft.Time), SamplePS: int64(st.Time),
				RelError: relErr, Bound: bound, FastFrac: fastFrac, Drops: drops,
			})
			if math.Abs(relErr) > doc.MaxError {
				doc.MaxError = math.Abs(relErr)
			}
			if bound > doc.MaxBound {
				doc.MaxBound = bound
			}
			t.AddRow(spec.Name, fmt.Sprintf("%d", int64(f)),
				ft.Time.String(), st.Time.String(),
				report.Pct(relErr), report.Pct(bound),
				fmt.Sprintf("%.0f%%", 100*fastFrac), fmt.Sprintf("%d", drops), mark)
		}
	}

	// How much does sampling move the paper's headline accuracy number?
	// DEP+BURST mean-abs prediction error over the Figure 1 matrix, both
	// modes — every truth involved is already memoised above.
	doc.PredictDelta = depBurstMeanAbs(sampled, suite) - depBurstMeanAbs(full, suite)

	doc.Pass = inBound && doc.Speedup >= *minSpeedup
	emit(t)
	fmt.Printf("max error %s (largest bound %s), DEP+BURST mean-abs error delta %+.2fpp, speedup %.2fx (min %.2fx)\n",
		report.PctAbs(doc.MaxError), report.PctAbs(doc.MaxBound), 100*doc.PredictDelta, doc.Speedup, *minSpeedup)

	if *out != "" {
		writeTo(*out, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(doc)
		})
		fmt.Printf("report -> %s\n", *out)
	}
	switch {
	case !inBound:
		fmt.Println("samplecheck: FAILED (sampled run outside its reported error bound)")
		os.Exit(1)
	case doc.Speedup < *minSpeedup:
		fmt.Printf("samplecheck: FAILED (speedup %.2fx below the %.2fx gate)\n", doc.Speedup, *minSpeedup)
		os.Exit(1)
	}
	fmt.Println("samplecheck: passed")
}

// depBurstMeanAbs is Figure 1's DEP+BURST cell: the mean absolute
// prediction error over the suite, predicting every non-base evaluation
// frequency from the 1 GHz base.
func depBurstMeanAbs(r *experiments.Runner, suite []dacapo.Spec) float64 {
	m := core.NewDEPBurst()
	var errs []float64
	for _, spec := range suite {
		for _, f := range experiments.EvalFreqs {
			if f == experiments.EvalFreqs[0] {
				continue
			}
			errs = append(errs, r.PredictionError(spec, m, experiments.EvalFreqs[0], units.Freq(f)))
		}
	}
	return report.MeanAbs(errs)
}
