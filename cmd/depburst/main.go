// Command depburst regenerates the paper's tables and figures and exposes
// the simulator for one-off runs.
//
// Usage:
//
//	depburst <experiment> [flags]
//
// Experiments: table1, table2, fig1, fig3a, fig3b, fig4, fig6, fig7,
// ablation, all, run, predict.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"depburst/internal/core"
	"depburst/internal/dacapo"
	"depburst/internal/experiments"
	"depburst/internal/obsio"
	"depburst/internal/report"
	"depburst/internal/sampling"
	"depburst/internal/sim"
	"depburst/internal/simcache"
	"depburst/internal/tracefmt"
	"depburst/internal/units"
	"depburst/internal/viz"
)

func parseWorkers(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		fmt.Fprintf(os.Stderr, "depburst: invalid worker count %q\n", s)
		os.Exit(2)
	}
	return n
}

// suiteTables regenerates the full evaluation — every table and figure —
// through one shared runner. The ground-truth matrix (suite x eval and
// sweep frequencies) fans out over the worker pool first, so the
// experiments afterwards are mostly assembly plus their residual governed
// runs. Output is byte-identical at any worker count.
func suiteTables(r *experiments.Runner, step units.Freq) []*report.Table {
	freqs := append([]units.Freq(nil), experiments.EvalFreqs...)
	for _, f := range experiments.SweepFreqs(step) {
		seen := false
		for _, g := range freqs {
			if g == f {
				seen = true
				break
			}
		}
		if !seen {
			freqs = append(freqs, f)
		}
	}
	r.Prewarm(dacapo.Suite(), freqs...)
	return []*report.Table{
		r.Table1(),
		r.Table2(),
		r.Fig1(),
		r.Fig3a(),
		r.Fig3b(),
		r.Fig4(),
		r.Fig6(),
		r.Fig7(step),
		r.EngineAblation(),
		r.HoldOffAblation("xalan"),
		r.QuantumAblation("xalan"),
		r.DRAMVariabilityAblation(),
		r.GCPolicyAblation(),
		r.PrefetchAblation(),
		r.SequentialBackground(),
		r.HeapPressureSweep("lusearch"),
		r.RegressionComparison(),
		r.SeedSensitivity(nil),
		r.PerCoreDVFS(0.10),
		r.FeedbackAblation(0.10),
		r.Consolidation(nil),
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: depburst [-json] [-j N] [-cache DIR] [-sample] <command> [flags]

global flags:
  -json             emit tables as JSON instead of aligned text
  -j N, -parallel N simulation worker-pool size (default GOMAXPROCS);
                    output is byte-identical at any N
  -cache DIR        persistent simulation-result cache (default: the
                    DEPBURST_CACHE environment variable; empty disables).
                    A warm rerun deserialises instead of simulating and is
                    byte-identical to a cold run. DEPBURST_CACHE_MAX_MB
                    caps the cache size (LRU, default 4096)
  -sample           sampled simulation: detect steady-state phases online and
                    fast-forward them (see DESIGN.md "Sampled simulation").
                    Several times faster cold, with a machine-reported error
                    bound per run; results are approximate but deterministic
                    and cached separately from full-detail ones

commands:
  table1            benchmark characteristics at 1 GHz (Table I)
  table2            simulated system parameters (Table II)
  fig1              M+CRIT vs DEP+BURST average error (Figure 1)
  fig3a             per-benchmark errors, base 1 GHz (Figure 3a)
  fig3b             per-benchmark errors, base 4 GHz (Figure 3b)
  fig4              across- vs per-epoch CTP (Figure 4)
  fig6              energy manager savings at 5%%/10%% (Figure 6)
  fig7 [-step MHz]  dynamic vs static-optimal (Figure 7)
  ablation          engine / hold-off / quantum / DRAM ablations
  percore           chip-wide vs per-core DVFS (future-work extension)
  feedback          open-loop (paper) vs closed-loop manager extension
  consolidation     two JVMs co-running on four cores (multi-tenant)
  regression        offline-regression baseline vs DEP+BURST (related work)
  substrate         GC-policy and prefetcher substrate ablations
  sequential        single-thread engine background (paper §II-A)
  heap [-bench NAME]  nursery-size (heap pressure) sensitivity sweep
  seeds             robustness of the accuracy result across workload seeds
  trace -bench NAME [-threshold X]  frequency timeline under the manager
  svg -bench NAME [-threshold X] [-o FILE]  the same timeline as an SVG
  all [-step MHz]   every experiment in order (one shared, prewarmed runner)
  bench [-step MHz] [-o FILE] [-baseline] [-cachecheck] [-samplecheck]
                    time the suite parallel vs serial, cold vs warm through
                    the cache, and cold vs warm in sampled mode; verify
                    byte-identical output, write BENCH_suite.json
  run -bench NAME [-freq MHz] [-metrics FILE] [-timeline FILE]
      [-managed] [-threshold X] [-target MHz]
                    one measured run; -metrics exports the observability
                    document, -timeline a Chrome trace_event timeline,
                    -target adds prediction-error telemetry vs that truth run
  report [-base MHz] [-target MHz]  per-benchmark DEP+BURST error breakdown
                    (pipeline vs memory vs burst vs idle components)
  record -bench NAME [-freq MHz] -o FILE   record an observation as JSON
  suite [-o FILE]   export the stock benchmark suite as editable JSON
  doctor            quick self-check: determinism, accuracy, energy sanity
  samplecheck [-min-speedup X] [-o FILE]  sampled-mode accuracy gate: run the
                    Figure 1 truth matrix cold in both modes, verify every
                    sampled run lands inside its reported error bound, and
                    fail below the minimum cold-run speedup (CI job)
  offline -obs FILE [-target MHz]          predict offline from a recording
  predict -bench NAME [-base MHz] [-target MHz]  all models on one benchmark
  train [-o FILE] [-prewarm]
                    fit the learned surrogate from the -cache corpus and
                    write the model file 'serve -model' loads
  surrogatecheck [-max-err X] [-min-speedup X] [-o FILE]
                    surrogate accuracy gate: held-out CV over a cold corpus,
                    confidence calibration, and the tier-0 serving speedup
                    vs cold full-detail simulation (CI job)
  serve [-addr HOST:PORT] [-max-queue N] [-request-workers N] [-timeout D]
        [-step MHz] [-suite FILE] [-model FILE] [-surrogate]
        [-surrogate-conf X]
                    prediction-as-a-service HTTP API (see README "Serving");
                    honours the global -j and -cache flags; -model/-surrogate
                    enable the learned tier-0 fast path
  loadtest [-addr HOST:PORT] [-rps N] [-duration D] [-bench NAME]
           [-p99-ms MS] [-o FILE]
                    drive a running server and assert p99 + zero 5xx;
                    reports per-tier serving counts when exposed
  lint [-json] [-fix-hints] [-analyzers LIST] [-C DIR] [packages]
                    run the repo's static-analysis suite (determinism,
                    hotpath, ctxflow, nilreg, goldenio); exits 1 on findings
`)
	os.Exit(2)
}

// jsonOut switches table output from aligned text to JSON.
var jsonOut bool

// emit prints a table in the selected format.
func emit(t *report.Table) {
	if jsonOut {
		if err := t.FprintJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	t.Fprint(os.Stdout)
}

// openCache opens the persistent result store at dir, honouring the
// DEPBURST_CACHE_MAX_MB size cap. Failures disable caching with a warning
// instead of failing the run.
func openCache(dir string) *simcache.Store {
	var maxBytes int64
	if mb := os.Getenv("DEPBURST_CACHE_MAX_MB"); mb != "" {
		n, err := strconv.ParseInt(mb, 10, 64)
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "depburst: ignoring invalid DEPBURST_CACHE_MAX_MB=%q\n", mb)
		} else {
			maxBytes = n << 20
		}
	}
	st, err := simcache.Open(dir, maxBytes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "depburst: cache disabled: %v\n", err)
		return nil
	}
	return st
}

func main() {
	argv := os.Args[1:]
	workers := 0 // 0 = GOMAXPROCS default
	cacheDir := os.Getenv("DEPBURST_CACHE")
	sampled := false
global:
	for len(argv) > 0 {
		arg := argv[0]
		switch {
		case arg == "-json":
			jsonOut = true
			argv = argv[1:]
		case arg == "-sample":
			sampled = true
			argv = argv[1:]
		case arg == "-j" || arg == "-parallel":
			if len(argv) < 2 {
				usage()
			}
			workers = parseWorkers(argv[1])
			argv = argv[2:]
		case strings.HasPrefix(arg, "-j=") || strings.HasPrefix(arg, "-parallel="):
			_, v, _ := strings.Cut(arg, "=")
			workers = parseWorkers(v)
			argv = argv[1:]
		case arg == "-cache":
			if len(argv) < 2 {
				usage()
			}
			cacheDir = argv[1]
			argv = argv[2:]
		case strings.HasPrefix(arg, "-cache="):
			_, cacheDir, _ = strings.Cut(arg, "=")
			argv = argv[1:]
		default:
			break global
		}
	}
	if len(argv) < 1 {
		usage()
	}
	cmd := argv[0]
	args := argv[1:]
	r := experiments.NewRunner()
	if workers > 0 {
		r.SetWorkers(workers)
	}
	if cacheDir != "" {
		if st := openCache(cacheDir); st != nil {
			r.SetDiskCache(st)
		}
	}
	if sampled {
		r.SetSampling(sampling.DefaultPolicy())
	}

	switch cmd {
	case "table1":
		emit(r.Table1())
	case "table2":
		emit(r.Table2())
	case "fig1":
		emit(r.Fig1())
	case "fig3a":
		emit(r.Fig3a())
	case "fig3b":
		emit(r.Fig3b())
	case "fig4":
		emit(r.Fig4())
	case "fig6":
		emit(r.Fig6())
	case "fig7":
		fs := flag.NewFlagSet("fig7", flag.ExitOnError)
		step := fs.Int("step", 125, "static sweep step in MHz")
		fs.Parse(args)
		r.Fig7(units.Freq(*step)).Fprint(os.Stdout)
	case "ablation":
		emit(r.EngineAblation())
		emit(r.HoldOffAblation("xalan"))
		emit(r.QuantumAblation("xalan"))
		emit(r.DRAMVariabilityAblation())
	case "percore":
		emit(r.PerCoreDVFS(0.10))
	case "feedback":
		emit(r.FeedbackAblation(0.10))
	case "consolidation":
		emit(r.Consolidation(nil))
	case "regression":
		emit(r.RegressionComparison())
	case "substrate":
		emit(r.GCPolicyAblation())
		emit(r.PrefetchAblation())
	case "sequential":
		emit(r.SequentialBackground())
	case "heap":
		fs := flag.NewFlagSet("heap", flag.ExitOnError)
		bench := fs.String("bench", "lusearch", "benchmark name")
		fs.Parse(args)
		emit(r.HeapPressureSweep(*bench))
	case "seeds":
		emit(r.SeedSensitivity(nil))
	case "trace":
		cmdTrace(r, args)
	case "svg":
		cmdSVG(r, args)
	case "all":
		fs := flag.NewFlagSet("all", flag.ExitOnError)
		step := fs.Int("step", 125, "static sweep step in MHz")
		fs.Parse(args)
		for _, t := range suiteTables(r, units.Freq(*step)) {
			emit(t)
		}
	case "bench":
		cmdBench(args, workers)
	case "run":
		cmdRun(r, args)
	case "report":
		fs := flag.NewFlagSet("report", flag.ExitOnError)
		base := fs.Int("base", 1000, "base frequency in MHz")
		target := fs.Int("target", 4000, "target frequency in MHz")
		fs.Parse(args)
		emit(r.ErrorBreakdownTable(units.Freq(*base), units.Freq(*target)))
	case "record":
		cmdRecord(r, args)
	case "suite":
		cmdSuite(args)
	case "doctor":
		cmdDoctor()
	case "samplecheck":
		cmdSampleCheck(args, workers)
	case "train":
		cmdTrain(r, args)
	case "surrogatecheck":
		cmdSurrogateCheck(args, workers)
	case "offline":
		cmdOffline(args)
	case "predict":
		cmdPredict(r, args)
	case "serve":
		cmdServe(r, args)
	case "loadtest":
		cmdLoadtest(args)
	case "lint":
		cmdLint(args)
	default:
		usage()
	}
}

func cmdRun(r *experiments.Runner, args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	bench := fs.String("bench", "xalan", "benchmark name")
	freq := fs.Int("freq", 1000, "frequency in MHz")
	suite := fs.String("suite", "", "custom suite JSON (see 'depburst suite')")
	metricsOut := fs.String("metrics", "", "write the run's metrics document (JSON) to FILE")
	timelineOut := fs.String("timeline", "", "write a Chrome trace_event timeline to FILE (chrome://tracing / Perfetto)")
	managed := fs.Bool("managed", false, "govern the run with the DEP+BURST energy manager (starts at 4 GHz)")
	threshold := fs.Float64("threshold", 0.10, "manager slowdown bound (with -managed)")
	target := fs.Int("target", 0, "record prediction-error telemetry against the truth run at this frequency (MHz)")
	fs.Parse(args)
	spec := resolveSpec(*suite, *bench)

	if *metricsOut == "" && *timelineOut == "" && !*managed && *target == 0 {
		printRun(spec, r.Truth(spec, units.Freq(*freq)))
		return
	}

	// Observability requested: run uncached with a registry attached.
	res, reg := r.InstrumentedRun(spec, units.Freq(*freq), *managed, *threshold)
	if *target > 0 {
		r.ErrorBreakdown(spec, core.Options{Burst: true}, units.Freq(*freq), units.Freq(*target), reg)
	}
	printRun(spec, res)
	if *metricsOut != "" {
		writeTo(*metricsOut, reg.WriteJSON)
		fmt.Printf("metrics        -> %s\n", *metricsOut)
	}
	if *timelineOut != "" {
		writeTo(*timelineOut, func(w io.Writer) error { return tracefmt.Write(w, res, reg) })
		fmt.Printf("timeline       -> %s (load in chrome://tracing or ui.perfetto.dev)\n", *timelineOut)
	}
}

// writeTo creates path and streams one export into it.
func writeTo(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// resolveSpec looks a benchmark up in the stock suite or, when suitePath is
// set, in a user-provided JSON suite.
func resolveSpec(suitePath, bench string) dacapo.Spec {
	if suitePath == "" {
		spec, err := dacapo.ByName(bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return spec
	}
	specs, err := dacapo.ReadSpecsFile(suitePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, s := range specs {
		if s.Name == bench {
			return s
		}
	}
	fmt.Fprintf(os.Stderr, "benchmark %q not in %s\n", bench, suitePath)
	os.Exit(1)
	return dacapo.Spec{}
}

func printRun(spec dacapo.Spec, res *sim.Result) {
	tot := res.TotalCounters()
	fmt.Printf("benchmark      %s (%s)\n", spec.Name, spec.Class())
	fmt.Printf("frequency      %v\n", res.Freq)
	fmt.Printf("time           %v\n", res.Time)
	fmt.Printf("energy         %v (avg %.1f W)\n", res.Energy, res.Energy.Joules()/res.Time.Seconds())
	fmt.Printf("GC             %d minor, %d major, %v total (%.1f%%)\n",
		res.GC.MinorGCs, res.GC.MajorGCs, res.GC.GCTime,
		100*float64(res.GC.GCTime)/float64(res.Time))
	fmt.Printf("allocated      %.1f MB, copied %.1f MB\n",
		float64(res.GC.AllocBytes)/1e6, float64(res.GC.CopiedBytes)/1e6)
	fmt.Printf("instructions   %.1fM (IPC-ish %.2f)\n", float64(tot.Instrs)/1e6,
		float64(tot.Instrs)/(tot.Active.Seconds()*res.Freq.Hz()))
	fmt.Printf("epochs         %d\n", len(res.Epochs))
	fmt.Printf("DRAM           %d reads, %d writes, avg latency %v\n",
		res.DRAM.Reads, res.DRAM.Writes, res.DRAM.AvgLatency)
	fmt.Printf("counters       CRIT=%v LL=%v STALL=%v SQfull=%v active=%v\n",
		tot.CritNS, tot.LeadNS, tot.StallNS, tot.SQFull, tot.Active)
}

// cmdSuite exports the stock benchmark definitions so users can edit them
// and run custom suites (see dacapo.ReadSpecsFile).
func cmdSuite(args []string) {
	fs := flag.NewFlagSet("suite", flag.ExitOnError)
	out := fs.String("o", "suite.json", "output file")
	fs.Parse(args)
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := dacapo.WriteSpecs(f, dacapo.Suite()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("wrote %d benchmark definitions to %s\n", len(dacapo.Suite()), *out)
}

// cmdDoctor runs a fast end-to-end self-check of the installation.
func cmdDoctor() {
	ok := true
	check := func(name string, pass bool, detail string) {
		status := "ok  "
		if !pass {
			status = "FAIL"
			ok = false
		}
		fmt.Printf("%s  %-38s %s\n", status, name, detail)
	}

	spec, _ := dacapo.ByName("pmd.scale")
	r := experiments.NewRunner()
	r2 := experiments.NewRunner()

	base := r.Truth(spec, 1000)
	base2 := r2.Truth(spec, 1000)
	check("deterministic replay", base.Time == base2.Time && base.Energy == base2.Energy,
		fmt.Sprintf("time %v, energy %v", base.Time, base.Energy))

	check("garbage collector active", base.GC.MinorGCs > 0,
		fmt.Sprintf("%d collections, %v paused", base.GC.MinorGCs, base.GC.GCTime))

	check("epochs recorded", len(base.Epochs) > 100,
		fmt.Sprintf("%d synchronization epochs", len(base.Epochs)))

	eDep := r.PredictionError(spec, core.NewDEPBurst(), 1000, 4000)
	check("DEP+BURST accuracy", eDep > -0.10 && eDep < 0.10,
		fmt.Sprintf("%+.1f%% predicting 1->4 GHz", eDep*100))

	eM := r.PredictionError(spec, core.NewMCrit(core.Options{}), 1000, 4000)
	check("M+CRIT visibly worse (the paper's premise)", eM < -0.08,
		fmt.Sprintf("%+.1f%% predicting 1->4 GHz", eM*100))

	fast := r.Truth(spec, 4000)
	speedup := float64(base.Time) / float64(fast.Time)
	check("frequency scaling plausible", speedup > 1.5 && speedup < 4,
		fmt.Sprintf("1->4 GHz speedup %.2fx", speedup))

	check("energy accounting sane", base.Energy > 0 && fast.Energy > 0 &&
		base.Energy.Joules()/base.Time.Seconds() < fast.Energy.Joules()/fast.Time.Seconds(),
		fmt.Sprintf("%.1f W at 1 GHz, %.1f W at 4 GHz",
			base.Energy.Joules()/base.Time.Seconds(), fast.Energy.Joules()/fast.Time.Seconds()))

	if !ok {
		fmt.Println("doctor: FAILED")
		os.Exit(1)
	}
	fmt.Println("doctor: all checks passed")
}

// cmdRecord runs a benchmark and serialises the predictor-visible
// observation to a JSON file for offline analysis.
func cmdRecord(r *experiments.Runner, args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	bench := fs.String("bench", "xalan", "benchmark name")
	freq := fs.Int("freq", 1000, "frequency in MHz")
	out := fs.String("o", "observation.json", "output file")
	suite := fs.String("suite", "", "custom suite JSON")
	fs.Parse(args)
	spec := resolveSpec(*suite, *bench)
	res := r.Truth(spec, units.Freq(*freq))
	obs := experiments.Observe(res)
	if err := obsio.WriteFile(*out, spec.Name, obs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("recorded %s @%v: %d epochs, %d threads -> %s\n",
		spec.Name, res.Freq, len(obs.Epochs), len(obs.Threads), *out)
}

// cmdOffline loads a recorded observation and predicts at a target
// frequency with every model — no simulation involved.
func cmdOffline(args []string) {
	fs := flag.NewFlagSet("offline", flag.ExitOnError)
	path := fs.String("obs", "observation.json", "recorded observation")
	target := fs.Int("target", 4000, "target frequency in MHz")
	fs.Parse(args)
	name, obs, err := obsio.ReadFile(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	t := &report.Table{
		Title:  fmt.Sprintf("%s: offline prediction %v -> %d MHz (measured base: %v)", name, obs.Base, *target, obs.Total),
		Header: []string{"model", "predicted"},
	}
	for _, m := range experiments.Models() {
		t.AddRow(m.Name(), m.Predict(obs, units.Freq(*target)).String())
	}
	t.Fprint(os.Stdout)
}

// cmdSVG renders the managed run's timeline (frequency staircase, GC
// pauses, per-core activity) as a standalone SVG file.
func cmdSVG(r *experiments.Runner, args []string) {
	fs := flag.NewFlagSet("svg", flag.ExitOnError)
	bench := fs.String("bench", "xalan", "benchmark name")
	threshold := fs.Float64("threshold", 0.10, "tolerable slowdown")
	out := fs.String("o", "timeline.svg", "output file")
	fs.Parse(args)
	spec, err := dacapo.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, _ := r.ManagedRun(spec, *threshold)
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := viz.Timeline(f, res); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("wrote %s (%d quanta, %d GC pauses)\n", *out, len(res.Samples), len(res.GC.Pauses))
}

// cmdTrace prints an ASCII timeline of the frequency the energy manager
// chose over a run — the visual analogue of the paper's Figure 5.
func cmdTrace(r *experiments.Runner, args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	bench := fs.String("bench", "xalan", "benchmark name")
	threshold := fs.Float64("threshold", 0.10, "tolerable slowdown")
	fs.Parse(args)
	spec, err := dacapo.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, _ := r.ManagedRun(spec, *threshold)
	fmt.Printf("%s under the DEP+BURST manager (%.0f%% bound): frequency per quantum\n",
		spec.Name, *threshold*100)
	fmt.Println("each row is one quantum; bar length = frequency (1-4 GHz); * marks a GC pause overlap")
	pauses := res.GC.Pauses
	for _, s := range res.Samples {
		bars := int((s.Freq - 875) / 125)
		if bars < 0 {
			bars = 0
		}
		gc := " "
		for _, p := range pauses {
			if p.Start < s.End && p.End > s.Start {
				gc = "*"
				break
			}
		}
		fmt.Printf("%9.3fms %s %-8v %s\n", s.Start.Milliseconds(), gc, s.Freq, bar(bars))
	}
}

func bar(n int) string {
	if n > 60 {
		n = 60
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

func cmdPredict(r *experiments.Runner, args []string) {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	bench := fs.String("bench", "xalan", "benchmark name")
	base := fs.Int("base", 1000, "base frequency in MHz")
	target := fs.Int("target", 4000, "target frequency in MHz")
	suite := fs.String("suite", "", "custom suite JSON")
	fs.Parse(args)
	spec := resolveSpec(*suite, *bench)
	obs := experiments.Observe(r.Truth(spec, units.Freq(*base)))
	actual := r.Truth(spec, units.Freq(*target)).Time

	t := &report.Table{
		Title:  fmt.Sprintf("%s: predict %d MHz from %d MHz (actual %v)", spec.Name, *target, *base, actual),
		Header: []string{"model", "predicted", "error"},
	}
	models := append(experiments.Models(),
		core.NewDEP(core.Options{Burst: true, PerEpochCTP: true}))
	for _, m := range models {
		p := m.Predict(obs, units.Freq(*target))
		t.AddRow(m.Name(), p.String(), report.Pct(report.RelError(float64(p), float64(actual))))
	}
	t.Fprint(os.Stdout)
}
