package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"depburst/internal/dacapo"
	"depburst/internal/experiments"
	"depburst/internal/metrics"
	"depburst/internal/server"
	"depburst/internal/surrogate"
	"depburst/internal/units"
)

// cmdServe boots the prediction service. The global -j and -cache flags
// (already applied to r) size the simulation pool and the persistent result
// store; serve's own flags shape the HTTP layer.
func cmdServe(r *experiments.Runner, args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8377", "listen address")
	maxQueue := fs.Int("max-queue", 16, "predict requests queued before 429")
	workers := fs.Int("request-workers", 2, "concurrently-executing predict requests")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-request deadline (0 disables)")
	step := fs.Int("step", 500, "fig7 static-sweep step in MHz (requests may override with ?step=)")
	suite := fs.String("suite", "", "custom suite JSON replacing the stock benchmarks (see 'depburst suite')")
	modelFile := fs.String("model", "", "serve the learned surrogate tier from this model file (see 'depburst train')")
	trainBoot := fs.Bool("surrogate", false, "train the surrogate tier at boot from the -cache corpus (empty corpus: starts cold, learns online from fallback truths)")
	surConf := fs.Float64("surrogate-conf", 0, "confidence the surrogate needs to answer a request (0 = library default)")
	fs.Parse(args)

	if *suite != "" {
		specs, err := dacapo.ReadSpecsFile(*suite)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r.SetSuite(specs)
	}

	var model *surrogate.Model
	switch {
	case *modelFile != "":
		m, err := surrogate.ReadFile(*modelFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		model = m
	case *trainBoot:
		model = surrogate.NewModel()
		if st := r.DiskCache(); st != nil {
			samples, err := surrogate.Scan(st)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if len(samples) > 0 {
				model = surrogate.Train(samples)
			}
		}
	}
	if model != nil {
		sum := model.Summarize()
		fmt.Printf("depburst serve: surrogate tier on (%d samples, %d groups)\n", sum.Points, sum.Groups)
	}

	srv, err := server.New(server.Config{
		Runner:           r,
		Workers:          *workers,
		MaxQueue:         *maxQueue,
		Timeout:          *timeout,
		Step:             units.Freq(*step),
		Metrics:          metrics.NewServerRegistry(),
		Surrogate:        model,
		SurrogateMinConf: *surConf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("depburst serve: listening on http://%s (workers %d, queue %d)\n",
		ln.Addr(), *workers, *maxQueue)
	if err := srv.Serve(ctx, ln); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("depburst serve: drained, bye")
}

// cmdLoadtest drives a running server and asserts the latency/error
// contract: zero 5xx, and (by default) a warm p99 under the bound.
func cmdLoadtest(args []string) {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8377", "server address")
	rps := fs.Int("rps", 50, "request rate")
	duration := fs.Duration("duration", 5*time.Second, "run length")
	bench := fs.String("bench", "pmd.scale", "benchmark to predict")
	p99 := fs.Float64("p99-ms", 250, "fail when the warm p99 exceeds this (0 disables)")
	out := fs.String("o", "", "merge the report into this BENCH_suite.json-style file under key \"loadtest\"")
	fs.Parse(args)

	body := []byte(fmt.Sprintf(
		`{"bench":%q,"base_mhz":1000,"targets_mhz":[2000,4000],"models":["dep+burst"]}`, *bench))
	base := "http://" + *addr

	// Warm the cache first so the measured run reflects steady state; the
	// cold request is unbounded only by the simulation itself.
	warm, err := server.RunLoad(context.Background(), server.LoadOptions{
		BaseURL: base, Body: body, RPS: 2, Duration: 1 * time.Second,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if warm.OK == 0 {
		fmt.Fprintf(os.Stderr, "loadtest: warmup got no successful response from %s\n", base)
		os.Exit(1)
	}

	rep, err := server.RunLoad(context.Background(), server.LoadOptions{
		BaseURL: base, Body: body, RPS: *rps, Duration: *duration,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep.WriteJSON(os.Stdout)
	printTierSplit(base)

	if *out != "" {
		if err := mergeLoadReport(*out, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loadtest       -> %s (key \"loadtest\")\n", *out)
	}

	fail := false
	if rep.Errors5xx > 0 || rep.NetErrors > 0 {
		fmt.Fprintf(os.Stderr, "loadtest: FAIL: %d 5xx, %d transport errors\n", rep.Errors5xx, rep.NetErrors)
		fail = true
	}
	if *p99 > 0 && rep.P99Ms > *p99 {
		fmt.Fprintf(os.Stderr, "loadtest: FAIL: p99 %.1fms exceeds bound %.1fms\n", rep.P99Ms, *p99)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
	fmt.Printf("loadtest: ok (%d requests, p99 %.1fms, zero 5xx)\n", rep.Requests, rep.P99Ms)
}

// printTierSplit reports the server's per-tier predict counts when the
// metrics endpoint exposes them. Best effort: a server without metrics (or
// an older one without tiers) just prints nothing.
func printTierSplit(base string) {
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var doc struct {
		Tiers []struct {
			Tier  string `json:"tier"`
			Count uint64 `json:"count"`
		} `json:"tiers"`
	}
	if json.NewDecoder(resp.Body).Decode(&doc) != nil || len(doc.Tiers) == 0 {
		return
	}
	var total uint64
	for _, t := range doc.Tiers {
		total += t.Count
	}
	parts := make([]string, 0, len(doc.Tiers))
	for _, t := range doc.Tiers {
		parts = append(parts, fmt.Sprintf("%s %d (%.0f%%)", t.Tier, t.Count, 100*float64(t.Count)/float64(total)))
	}
	fmt.Printf("tiers: %s\n", strings.Join(parts, ", "))
}
