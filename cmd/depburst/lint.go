package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"depburst/internal/analysis"
)

// cmdLint runs the repo's static-analysis suite (internal/analysis) over the
// module. Exit status: 0 clean, 1 diagnostics found or the analysis itself
// failed, 2 usage error.
func cmdLint(args []string) {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	jsonFlag := fs.Bool("json", false, "emit the machine-readable report ({version, count, diagnostics})")
	sarifFlag := fs.Bool("sarif", false, "emit a SARIF 2.1.0 report (for code-scanning upload)")
	baseline := fs.String("baseline", "", "suppress findings recorded in this fingerprint file; only new findings fail")
	writeBaseline := fs.Bool("write-baseline", false, "record current findings into -baseline FILE and exit clean")
	fixHints := fs.Bool("fix-hints", false, "print a suggested fix under each diagnostic")
	only := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	dir := fs.String("C", ".", "module root to analyze")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: depburst lint [-json|-sarif] [-baseline FILE [-write-baseline]] [-fix-hints] [-analyzers LIST] [-C DIR] [packages]\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	fs.Parse(args)

	cfg := analysis.LintConfig{
		Dir:           *dir,
		Patterns:      fs.Args(),
		JSON:          (*jsonFlag || jsonOut) && !*sarifFlag,
		SARIF:         *sarifFlag,
		Baseline:      *baseline,
		WriteBaseline: *writeBaseline,
		FixHints:      *fixHints,
	}
	if *only != "" {
		cfg.Analyzers = strings.Split(*only, ",")
	}
	count, err := analysis.Lint(cfg, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "depburst lint: %v\n", err)
		os.Exit(1)
	}
	if count > 0 {
		os.Exit(1)
	}
}
