// Package depburst is a from-scratch reproduction of "DVFS Performance
// Prediction for Managed Multithreaded Applications" (Akram, Sartor,
// Eeckhout — ISPASS 2016).
//
// The repository contains:
//
//   - internal/core: the paper's contribution — the DEP+BURST DVFS
//     performance predictor and the baselines it is compared against
//     (M+CRIT, COOP; CRIT / Leading Loads / Stall Time engines).
//   - internal/{cpu,mem,event,units}: a multicore timing simulator (the
//     Sniper substitute) — interval-model out-of-order cores, caches,
//     banked DRAM.
//   - internal/{kernel,jvm}: the OS and managed-runtime substrates —
//     futex-based scheduling with epoch recording, and a JVM-like heap
//     with TLAB allocation, zero-initialisation store bursts and a
//     stop-the-world parallel copying collector.
//   - internal/dacapo: synthetic analogues of the seven DaCapo benchmarks.
//   - internal/{power,energy}: the McPAT-like power model and the
//     DVFS energy manager of the paper's §VI case study.
//   - internal/experiments: one harness per table/figure of the paper,
//     plus ablations and extensions (per-core DVFS, feedback control,
//     consolidation, regression baseline).
//   - internal/obsio, internal/viz: observation record/replay (JSON) and
//     SVG run timelines.
//
// The benchmarks in bench_test.go regenerate every table and figure; the
// cmd/depburst CLI prints them. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package depburst
