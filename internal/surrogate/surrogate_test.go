package surrogate

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"depburst/internal/dacapo"
	"depburst/internal/sim"
	"depburst/internal/simcache"
	"depburst/internal/units"
)

// trainFreqs is the synthetic corpus's frequency grid.
var trainFreqs = []units.Freq{1000, 2000, 3000, 4000}

// synthTime is an exact two-component ground truth per benchmark: a
// scaling part proportional to total work and a per-benchmark non-scaling
// part, so every property of the model is checkable against closed form.
func synthTime(spec dacapo.Spec, f units.Freq) units.Time {
	s := float64(spec.TotalInstrs())
	n := 0.25 * s * (1 + spec.DepFrac)
	return units.Time(math.Round(s*1000/float64(f) + n))
}

func synthConfig(spec dacapo.Spec, f units.Freq) sim.Config {
	cfg := sim.DefaultConfig()
	spec.Configure(&cfg)
	cfg.Freq = f
	return cfg
}

func synthSamples(specs []dacapo.Spec, freqs []units.Freq) []Sample {
	var out []Sample
	for _, spec := range specs {
		for _, f := range freqs {
			out = append(out, Sample{Config: synthConfig(spec, f), Spec: spec, Time: synthTime(spec, f)})
		}
	}
	return out
}

func TestGroupIDFrequencyIndependent(t *testing.T) {
	spec := dacapo.PMD()
	a := NewTruthManifest(synthConfig(spec, 1000), spec)
	b := NewTruthManifest(synthConfig(spec, 4000), spec)
	if a.GroupID() != b.GroupID() {
		t.Error("frequency changed the group id")
	}
	other := NewTruthManifest(synthConfig(dacapo.Xalan(), 1000), dacapo.Xalan())
	if a.GroupID() == other.GroupID() {
		t.Error("different benchmarks share a group id")
	}
	scaled := spec.Scaled(2)
	c := NewTruthManifest(synthConfig(scaled, 1000), scaled)
	if a.GroupID() == c.GroupID() {
		t.Error("scaled spec shares a group id")
	}
}

func TestPredictSourcesAndCalibration(t *testing.T) {
	suite := dacapo.Suite()
	m := Train(synthSamples(suite[:6], trainFreqs))
	spec := suite[0]

	interp, ok := m.Predict(synthConfig(spec, 1500), spec)
	if !ok || interp.Source != SourceInterp {
		t.Fatalf("in-band prediction: ok=%v source=%q", ok, interp.Source)
	}
	want := float64(synthTime(spec, 1500))
	if e := relErr(float64(interp.Time), want); e > 0.05 {
		t.Errorf("interp error %.3f vs closed form", e)
	}
	if interp.Confidence < DefaultMinConfidence {
		t.Errorf("interp confidence %.3f below serving threshold", interp.Confidence)
	}

	extrap, ok := m.Predict(synthConfig(spec, 8000), spec)
	if !ok || extrap.Source != SourceExtrap {
		t.Fatalf("out-of-band prediction: ok=%v source=%q", ok, extrap.Source)
	}

	held := suite[6]
	knn, ok := m.Predict(synthConfig(held, 2000), held)
	if !ok || knn.Source != SourceKNN {
		t.Fatalf("held-out prediction: ok=%v source=%q", ok, knn.Source)
	}
	if knn.Confidence >= DefaultMinConfidence {
		t.Errorf("cross-workload transfer confidence %.3f reached the serving band", knn.Confidence)
	}

	// The trust ladder: reported error grows, confidence shrinks.
	if !(interp.ErrEstimate <= extrap.ErrEstimate && extrap.ErrEstimate < knn.ErrEstimate) {
		t.Errorf("error estimates not ordered: %v %v %v", interp.ErrEstimate, extrap.ErrEstimate, knn.ErrEstimate)
	}
	if !(interp.Confidence >= extrap.Confidence && extrap.Confidence > knn.Confidence) {
		t.Errorf("confidences not ordered: %v %v %v", interp.Confidence, extrap.Confidence, knn.Confidence)
	}
}

func TestPredictScaleSource(t *testing.T) {
	suite := dacapo.Suite()
	samples := synthSamples(suite[1:], trainFreqs)
	single := suite[0]
	samples = append(samples, Sample{Config: synthConfig(single, 1000), Spec: single, Time: synthTime(single, 1000)})
	m := Train(samples)

	est, ok := m.Predict(synthConfig(single, 2000), single)
	if !ok || est.Source != SourceScale {
		t.Fatalf("single-point group: ok=%v source=%q", ok, est.Source)
	}
	// γ-scaling must still recover the broad shape: the synthetic truth
	// drops by less than 2x from 1 GHz to 2 GHz.
	if e := relErr(float64(est.Time), float64(synthTime(single, 2000))); e > 0.35 {
		t.Errorf("scale-source error %.3f", e)
	}
	at1000, ok := m.Predict(synthConfig(single, 1000), single)
	if !ok || at1000.Source != SourceScale {
		t.Fatalf("at observed freq: ok=%v source=%q", ok, at1000.Source)
	}
	if got, want := at1000.Time, synthTime(single, 1000); got != want {
		t.Errorf("scale source at its own frequency: %v, want %v", got, want)
	}
}

func TestPredictRejects(t *testing.T) {
	if _, ok := NewModel().Predict(synthConfig(dacapo.PMD(), 1000), dacapo.PMD()); ok {
		t.Error("empty model answered")
	}
	m := Train(synthSamples(dacapo.Suite(), trainFreqs))
	if _, ok := m.Predict(synthConfig(dacapo.PMD(), 0), dacapo.PMD()); ok {
		t.Error("non-positive frequency answered")
	}
}

func TestPredictNonNegativeMonotone(t *testing.T) {
	suite := dacapo.Suite()
	m := Train(synthSamples(suite[:5], trainFreqs))
	// Add a single-point group so the γ path is swept too.
	m.Observe(synthConfig(suite[5], 1000), suite[5], synthTime(suite[5], 1000))

	for _, spec := range suite { // suite[6] exercises the k-NN path
		prev := units.Time(math.MaxInt64)
		for f := units.Freq(100); f <= 8000; f += 100 {
			est, ok := m.Predict(synthConfig(spec, f), spec)
			if !ok {
				t.Fatalf("%s@%d: no estimate", spec.Name, f)
			}
			if est.Time < 0 {
				t.Fatalf("%s@%d: negative time %v", spec.Name, f, est.Time)
			}
			if est.Time > prev {
				t.Fatalf("%s: time rose from %v to %v as frequency rose to %d", spec.Name, prev, est.Time, f)
			}
			prev = est.Time
		}
	}
}

func TestTrainingDeterministicAndOrderInvariant(t *testing.T) {
	samples := synthSamples(dacapo.Suite(), trainFreqs)
	a, err := Train(samples).Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(samples).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two trainings on the same corpus differ")
	}
	rev := make([]Sample, len(samples))
	for i, s := range samples {
		rev[len(samples)-1-i] = s
	}
	c, err := Train(rev).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Error("sample order changed the model bytes")
	}
}

func TestFileRoundTrip(t *testing.T) {
	suite := dacapo.Suite()
	m := Train(synthSamples(suite, trainFreqs))
	path := filepath.Join(t.TempDir(), "model.dbsg")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Summarize() != m.Summarize() {
		t.Errorf("summary changed: %+v vs %+v", got.Summarize(), m.Summarize())
	}
	for _, spec := range suite {
		for f := units.Freq(500); f <= 6000; f += 500 {
			a, aok := m.Predict(synthConfig(spec, f), spec)
			b, bok := got.Predict(synthConfig(spec, f), spec)
			if aok != bok || a != b {
				t.Fatalf("%s@%d: %+v/%v vs %+v/%v after round trip", spec.Name, f, a, aok, b, bok)
			}
		}
	}
	// A reloaded model is still re-encodable to the same bytes.
	raw, _ := m.Encode()
	raw2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Error("re-encoding a loaded model changed its bytes")
	}
}

// frameFile wraps a payload in valid model-file framing so tests can build
// semantically-broken but well-framed files.
func frameFile(t *testing.T, p filePayload) []byte {
	t.Helper()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(p); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, fileHeaderSize+payload.Len())
	copy(out[:4], fileMagic[:])
	binary.LittleEndian.PutUint32(out[4:8], fileVersion)
	binary.LittleEndian.PutUint64(out[8:16], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(out[16:20], crc32.ChecksumIEEE(payload.Bytes()))
	copy(out[fileHeaderSize:], payload.Bytes())
	return out
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid, err := Train(synthSamples(dacapo.Suite()[:2], trainFreqs)).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(valid); err != nil {
		t.Fatal(err)
	}
	mut := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return f(b)
	}
	cases := map[string][]byte{
		"empty":     nil,
		"header":    valid[:10],
		"truncated": valid[:len(valid)-5],
		"magic":     mut(func(b []byte) []byte { b[0] ^= 0xff; return b }),
		"version":   mut(func(b []byte) []byte { b[4] ^= 0x01; return b }),
		"length":    mut(func(b []byte) []byte { b[8] ^= 0x01; return b }),
		"checksum":  mut(func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }),
		"notgob":    append(append([]byte(nil), valid[:fileHeaderSize]...), 0xff),
		"schema":    frameFile(t, filePayload{Schema: "depburst-surrogate/99"}),
		"nan":       frameFile(t, filePayload{Schema: FileSchema, Gamma: math.NaN()}),
		"inf":       frameFile(t, filePayload{Schema: FileSchema, FeatMean: []float64{math.Inf(1)}, FeatStd: []float64{1}}),
		"stdlen":    frameFile(t, filePayload{Schema: FileSchema, FeatMean: []float64{1}}),
		"dupgroup": frameFile(t, filePayload{Schema: FileSchema, Groups: []fileGroup{
			{ID: "g", Pts: []point{{1000, 5}}}, {ID: "g", Pts: []point{{1000, 5}}},
		}}),
		"emptyid": frameFile(t, filePayload{Schema: FileSchema, Groups: []fileGroup{{ID: ""}}}),
		"badfreq": frameFile(t, filePayload{Schema: FileSchema, Groups: []fileGroup{
			{ID: "g", Pts: []point{{0, 5}}},
		}}),
		"badtime": frameFile(t, filePayload{Schema: FileSchema, Groups: []fileGroup{
			{ID: "g", Pts: []point{{1000, -5}}},
		}}),
		"dupfreq": frameFile(t, filePayload{Schema: FileSchema, Groups: []fileGroup{
			{ID: "g", Pts: []point{{1000, 5}, {1000, 6}}},
		}}),
		"nanfeat": frameFile(t, filePayload{Schema: FileSchema, Groups: []fileGroup{
			{ID: "g", Feat: []float64{math.NaN()}, Pts: []point{{1000, 5}}},
		}}),
	}
	for name, raw := range cases {
		if _, err := Decode(raw); err == nil {
			t.Errorf("%s: malformed model accepted", name)
		}
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.dbsg")); err == nil {
		t.Error("absent model file accepted")
	}
}

func TestObserveOnline(t *testing.T) {
	m := NewModel()
	spec := dacapo.PMDScale()
	for _, f := range []units.Freq{1000, 2000, 4000} {
		m.Observe(synthConfig(spec, f), spec, synthTime(spec, f))
	}
	sum := m.Summarize()
	if sum.Groups != 1 || sum.Points != 3 {
		t.Fatalf("after 3 observations: %+v", sum)
	}
	est, ok := m.Predict(synthConfig(spec, 3000), spec)
	if !ok || est.Source != SourceInterp {
		t.Fatalf("observed group not served by its law: ok=%v source=%q", ok, est.Source)
	}
	if est.Confidence < DefaultMinConfidence {
		t.Errorf("confidence %.3f below serving threshold after online learning", est.Confidence)
	}
	if e := relErr(float64(est.Time), float64(synthTime(spec, 3000))); e > 0.05 {
		t.Errorf("online-learned prediction off by %.3f", e)
	}

	// Re-observing the same run (or malformed observations) is a no-op.
	m.Observe(synthConfig(spec, 2000), spec, synthTime(spec, 2000))
	m.Observe(synthConfig(spec, 0), spec, 5)
	m.Observe(synthConfig(spec, 1500), spec, -1)
	if got := m.Summarize(); got != sum {
		t.Errorf("no-op observations changed the model: %+v vs %+v", got, sum)
	}
}

func TestScanCorpus(t *testing.T) {
	st, err := simcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	suite := dacapo.Suite()[:3]
	want := 0
	for i, spec := range suite {
		for _, f := range trainFreqs {
			key, err := simcache.Key("truth", spec.Name, int64(f))
			if err != nil {
				t.Fatal(err)
			}
			res := sim.Result{Workload: spec.Name, Freq: f, Time: synthTime(spec, f)}
			if err := st.Put(key, &res); err != nil {
				t.Fatal(err)
			}
			if i == 2 && f == trainFreqs[0] {
				continue // one entry without a sidecar: skipped
			}
			if err := st.PutMeta(key, NewTruthManifest(synthConfig(spec, f), spec)); err != nil {
				t.Fatal(err)
			}
			want++
		}
	}
	// Distractors, all skipped: a sidecar without an entry, a non-truth
	// manifest, a sampled-mode manifest, and a damaged sidecar.
	orphan, _ := simcache.Key("orphan")
	if err := st.PutMeta(orphan, NewTruthManifest(synthConfig(suite[0], 1000), suite[0])); err != nil {
		t.Fatal(err)
	}
	foreign, _ := simcache.Key("foreign")
	st.Put(foreign, &sim.Result{Time: 1})
	mf := NewTruthManifest(synthConfig(suite[0], 1500), suite[0])
	mf.Kind = "managed"
	st.PutMeta(foreign, mf)
	sampled, _ := simcache.Key("sampled")
	st.Put(sampled, &sim.Result{Time: 1})
	smf := NewTruthManifest(synthConfig(suite[0], 1500), suite[0])
	smf.Config.Sampling.Enabled = true
	st.PutMeta(sampled, smf)
	damaged, _ := simcache.Key("damaged")
	st.Put(damaged, &sim.Result{Time: 1})
	st.PutMeta(damaged, NewTruthManifest(synthConfig(suite[1], 1500), suite[1]))
	if err := os.WriteFile(filepath.Join(st.Dir(), damaged+".scm"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	samples, err := Scan(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != want {
		t.Fatalf("scanned %d samples, want %d", len(samples), want)
	}
	m := Train(samples)
	sum := m.Summarize()
	if sum.Groups != len(suite) {
		t.Errorf("trained %d groups, want %d", sum.Groups, len(suite))
	}
	// Scanning the same corpus again trains byte-identical models.
	again, err := Scan(st)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := m.Encode()
	b, err := Train(again).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("rescan trained a different model")
	}
}

func TestScanMissingDir(t *testing.T) {
	st, err := simcache.Open(filepath.Join(t.TempDir(), "gone"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(st.Dir()); err != nil {
		t.Fatal(err)
	}
	if _, err := Scan(st); err == nil {
		t.Error("unreadable corpus directory not reported")
	}
}

func TestDecodeClampsGamma(t *testing.T) {
	m, err := Decode(frameFile(t, filePayload{Schema: FileSchema, Gamma: 2.5}))
	if err != nil {
		t.Fatal(err)
	}
	if g := m.Summarize().Gamma; g != 1 {
		t.Errorf("gamma %v not clamped to 1", g)
	}
	m, err = Decode(frameFile(t, filePayload{Schema: FileSchema, Gamma: -0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if g := m.Summarize().Gamma; g != 0 {
		t.Errorf("gamma %v not clamped to 0", g)
	}
}

func TestWriteFileBadPath(t *testing.T) {
	if err := NewModel().WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "m")); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestSmallHelpers(t *testing.T) {
	if clamp01(0.5) != 0.5 {
		t.Error("clamp01 moved an in-range value")
	}
	if relErr(0, 0) != 0 || relErr(3, 0) != 1 || relErr(2, 4) != 0.5 {
		t.Error("relErr branches wrong")
	}
	if e := NewModel().estimate(-5, SourceKNN, 0.1); e.Time != 0 {
		t.Error("negative estimate not clamped")
	}
	if (&group{feat: []float64{1, 2}}).work() != 0 {
		t.Error("short feature vector produced work")
	}
	spec := dacapo.PMD()
	spec.Threads = 0
	man := NewTruthManifest(synthConfig(spec, 1000), spec)
	if man.perThreadWork() != float64(spec.TotalInstrs()) {
		t.Error("zero threads not floored to 1")
	}
}
