package surrogate

import (
	"math"
	"sort"
	"sync"

	"depburst/internal/core"
	"depburst/internal/dacapo"
	"depburst/internal/sim"
	"depburst/internal/units"
)

// Prediction sources, from most to least trusted.
const (
	SourceInterp = "interp" // group law, target inside the observed band
	SourceExtrap = "extrap" // group law, target outside the observed band
	SourceScale  = "scale"  // single observation scaled by the corpus γ
	SourceKNN    = "knn"    // cross-workload k-NN transfer
)

// DefaultMinConfidence is the serving threshold: tier 0 answers only when
// every estimate in the response clears it. At the default error floors it
// admits group-law answers and rejects γ-scaling and k-NN transfer.
const DefaultMinConfidence = 0.8

// knnK is the neighbourhood size for cross-workload transfer.
const knnK = 3

// Cross-validation error floors and (for an empty corpus) defaults. The
// floors keep one lucky fold from declaring a source near-perfect; the
// k-NN floor is deliberately high — cross-workload transfer is never
// trusted into the serving band at the default threshold.
const (
	floorInterpErr   = 0.005
	floorExtrapErr   = 0.010
	floorKNNErr      = 0.060
	defaultInterpErr = 0.020
	defaultExtrapErr = 0.050
	defaultKNNErr    = 0.120
)

// Estimate is one surrogate answer.
type Estimate struct {
	Time units.Time
	// Confidence in (0,1], monotone-decreasing in ErrEstimate.
	Confidence float64
	// ErrEstimate is the expected relative error, measured on held-out
	// corpus data at training time for the estimate's source.
	ErrEstimate float64
	Source      string
}

// point is one observed (frequency, completion time) pair of a group.
type point struct {
	Freq units.Freq
	Time units.Time
}

// group aggregates every observation that shares the frequency-independent
// inputs, plus the DVFS law fitted over them when two or more frequencies
// were observed.
type group struct {
	id    string
	bench string
	feat  []float64
	pts   []point // sorted by Freq, frequencies unique

	fitted bool
	law    *core.Regression
}

func (g *group) refit() {
	g.fitted = false
	if len(g.pts) < 2 {
		return
	}
	tp := make([]core.TrainingPoint, len(g.pts))
	for i, p := range g.pts {
		tp[i] = core.TrainingPoint{Freq: p.Freq, Time: p.Time}
	}
	law, err := core.FitRegressionNonneg(tp)
	if err != nil {
		return
	}
	g.fitted = true
	g.law = law
}

// predict evaluates the group's own evidence at f and reports whether the
// target sits inside the observed frequency band. gamma supplies the
// corpus-wide scaling fraction for single-point groups.
func (g *group) predict(f units.Freq, gamma float64) (t float64, interp bool, ok bool) {
	switch {
	case g.fitted:
		t = float64(g.law.Predict(nil, f))
		interp = f >= g.pts[0].Freq && f <= g.pts[len(g.pts)-1].Freq
		return t, interp, true
	case len(g.pts) == 1:
		p := g.pts[0]
		t = float64(p.Time) * (gamma*float64(p.Freq)/float64(f) + (1 - gamma))
		return t, false, true
	default:
		return 0, false, false
	}
}

// scalingFrac is the group's scaling fraction S/(S+N) with both components
// normalised to the group's reference frequency.
func (g *group) scalingFrac() (float64, bool) {
	if !g.fitted {
		return 0, false
	}
	s, n, _ := g.law.Components()
	if s+n <= 0 {
		return 0, false
	}
	return float64(s) / float64(s+n), true
}

// Model is the trained surrogate. It is safe for concurrent use: Predict
// takes a read lock, Observe a write lock.
type Model struct {
	mu sync.RWMutex

	// gamma is the corpus-wide mean scaling fraction, used to scale
	// single-observation groups across frequency.
	//depburst:guardedby mu
	gamma float64
	// Cross-validated mean-abs relative errors per source.
	//depburst:guardedby mu
	interpErr, extrapErr, knnErr float64
	// Feature standardization, frozen at the last Train.
	//depburst:guardedby mu
	featMean, featStd []float64

	//depburst:guardedby mu
	groups []*group // sorted by id
	//depburst:guardedby mu
	byID map[string]*group
}

// NewModel returns an empty model: every error estimate at its default,
// no groups. It learns exclusively through Observe until retrained.
func NewModel() *Model {
	m := &Model{byID: map[string]*group{}}
	m.gamma = 0.5
	m.interpErr, m.extrapErr, m.knnErr = defaultInterpErr, defaultExtrapErr, defaultKNNErr
	return m
}

// Train fits a model offline from a corpus scan. The result is independent
// of sample order, so corpora built at any -j produce byte-identical
// models.
func Train(samples []Sample) *Model {
	m := NewModel()
	for _, s := range samples {
		m.add(s)
	}
	m.finalize()
	return m
}

// add inserts one sample without recomputing corpus-wide statistics.
//
//depburst:locked mu
func (m *Model) add(s Sample) {
	man := s.manifest()
	if man.Config.Freq <= 0 || s.Time < 0 {
		return
	}
	id := man.GroupID()
	g := m.byID[id]
	if g == nil {
		g = &group{id: id, bench: s.Spec.Name, feat: man.features()}
		m.byID[id] = g
		i := sort.Search(len(m.groups), func(i int) bool { return m.groups[i].id >= id })
		m.groups = append(m.groups, nil)
		copy(m.groups[i+1:], m.groups[i:])
		m.groups[i] = g
	}
	f := man.Config.Freq
	i := sort.Search(len(g.pts), func(i int) bool { return g.pts[i].Freq >= f })
	if i < len(g.pts) && g.pts[i].Freq == f {
		return // duplicate observation: truth runs are deterministic
	}
	g.pts = append(g.pts, point{})
	copy(g.pts[i+1:], g.pts[i:])
	g.pts[i] = point{Freq: f, Time: s.Time}
	g.refit()
}

// Observe folds one simulated result into the model online — the serving
// tier calls it on every fallback. It updates the result's group (and its
// law) immediately; the corpus-wide statistics (γ, standardization, error
// estimates) stay frozen until the next offline Train, which is what keeps
// Observe cheap and the estimates honest.
func (m *Model) Observe(cfg sim.Config, spec dacapo.Spec, t units.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.add(Sample{Config: cfg, Spec: spec, Time: t})
}

// finalize recomputes corpus-wide statistics: γ, feature standardization,
// and the cross-validated per-source error estimates.
//
//depburst:locked mu
func (m *Model) finalize() {
	var fracs []float64
	for _, g := range m.groups {
		if frac, ok := g.scalingFrac(); ok {
			fracs = append(fracs, frac)
		}
	}
	m.gamma = 0.5
	if len(fracs) > 0 {
		m.gamma = mean(fracs)
	}

	if n := len(m.groups); n > 0 {
		dims := len(m.groups[0].feat)
		m.featMean = make([]float64, dims)
		m.featStd = make([]float64, dims)
		for _, g := range m.groups {
			for d, v := range g.feat {
				m.featMean[d] += v
			}
		}
		for d := range m.featMean {
			m.featMean[d] /= float64(n)
		}
		for _, g := range m.groups {
			for d, v := range g.feat {
				dv := v - m.featMean[d]
				m.featStd[d] += dv * dv
			}
		}
		for d := range m.featStd {
			m.featStd[d] = math.Sqrt(m.featStd[d] / float64(n))
			if m.featStd[d] < 1e-9 {
				m.featStd[d] = 1
			}
		}
	}

	m.crossValidate()
}

// crossValidate measures each source's mean-abs relative error on held-out
// corpus data: every interior point of every group is predicted from a law
// fitted without it (interp), every band edge from a law fitted without it
// (extrap), and every group's points from a model without the whole group
// (knn). Floors prevent a small corpus from declaring itself perfect, and
// the estimates are forced onto the trust ladder interp <= extrap <= knn.
//
//depburst:locked mu
func (m *Model) crossValidate() {
	var interpErrs, extrapErrs, knnErrs []float64
	for _, g := range m.groups {
		if len(g.pts) >= 3 {
			for i := range g.pts {
				rest := make([]core.TrainingPoint, 0, len(g.pts)-1)
				for j, p := range g.pts {
					if j != i {
						rest = append(rest, core.TrainingPoint{Freq: p.Freq, Time: p.Time})
					}
				}
				law, err := core.FitRegressionNonneg(rest)
				if err != nil {
					continue
				}
				e := relErr(float64(law.Predict(nil, g.pts[i].Freq)), float64(g.pts[i].Time))
				if i == 0 || i == len(g.pts)-1 {
					extrapErrs = append(extrapErrs, e)
				} else {
					interpErrs = append(interpErrs, e)
				}
			}
		}
	}
	// Leave-one-group-out k-NN: predict each group's points while excluding
	// the group itself from the neighbourhood.
	for _, g := range m.groups {
		for _, p := range g.pts {
			t, _, ok := m.knnPredict(g.feat, g.work(), p.Freq, g.id)
			if ok {
				knnErrs = append(knnErrs, relErr(t, float64(p.Time)))
			}
		}
	}

	m.interpErr = orDefault(interpErrs, defaultInterpErr, floorInterpErr)
	m.extrapErr = orDefault(extrapErrs, defaultExtrapErr, floorExtrapErr)
	m.knnErr = orDefault(knnErrs, defaultKNNErr, floorKNNErr)
	if m.extrapErr < m.interpErr {
		m.extrapErr = m.interpErr
	}
	if m.knnErr < m.extrapErr {
		m.knnErr = m.extrapErr
	}
}

func orDefault(errs []float64, def, floor float64) float64 {
	if len(errs) == 0 {
		return def
	}
	e := mean(errs)
	if e < floor {
		e = floor
	}
	return e
}

// Predict estimates the completion time of (cfg, spec) at cfg.Freq. ok is
// false only when the model holds no usable evidence at all (or the query
// is malformed); otherwise the estimate carries the confidence the serving
// tier gates on.
func (m *Model) Predict(cfg sim.Config, spec dacapo.Spec) (Estimate, bool) {
	man := NewTruthManifest(cfg, spec)
	f := man.Config.Freq
	if f <= 0 {
		return Estimate{}, false
	}
	m.mu.RLock()
	defer m.mu.RUnlock()

	if g := m.byID[man.GroupID()]; g != nil {
		if t, interp, ok := g.predict(f, m.gamma); ok {
			switch {
			case g.fitted && interp:
				return m.estimate(t, SourceInterp, m.interpErr), true
			case g.fitted:
				return m.estimate(t, SourceExtrap, m.extrapErr), true
			default:
				return m.estimate(t, SourceScale, (m.extrapErr+m.knnErr)/2), true
			}
		}
	}
	t, dist, ok := m.knnPredict(man.features(), man.perThreadWork(), f, "")
	if !ok {
		return Estimate{}, false
	}
	return m.estimate(t, SourceKNN, m.knnErr*(1+dist)), true
}

// estimate clamps and packages one answer.
func (m *Model) estimate(t float64, source string, errEst float64) Estimate {
	if t < 0 {
		t = 0
	}
	return Estimate{
		Time:        units.Time(math.Round(t)),
		Confidence:  1 / (1 + 8*errEst),
		ErrEstimate: errEst,
		Source:      source,
	}
}

// knnPredict answers from the k nearest groups (excluding the one named),
// each neighbour's own prediction rescaled by relative per-thread work and
// weighted by inverse distance. The returned dist is the mean neighbour
// distance, which widens the error estimate. Deterministic: candidates are
// ranked by (distance, group id).
//
//depburst:locked mu
func (m *Model) knnPredict(feat []float64, work float64, f units.Freq, exclude string) (t, dist float64, ok bool) {
	type cand struct {
		d float64
		g *group
	}
	var cands []cand
	for _, g := range m.groups {
		if g.id == exclude || len(g.pts) == 0 || len(g.feat) != len(feat) {
			continue
		}
		cands = append(cands, cand{m.distance(feat, g.feat), g})
	}
	if len(cands) == 0 {
		return 0, 0, false
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].g.id < cands[j].g.id
	})
	if len(cands) > knnK {
		cands = cands[:knnK]
	}
	var sumW, sumWT, sumD float64
	n := 0
	for _, c := range cands {
		nt, _, cok := c.g.predict(f, m.gamma)
		if !cok {
			continue
		}
		nw := c.g.work()
		if nw <= 0 || work <= 0 {
			continue
		}
		w := 1 / (c.d + 1e-6)
		sumW += w
		sumWT += w * nt * (work / nw)
		sumD += c.d
		n++
	}
	if n == 0 || sumW == 0 {
		return 0, 0, false
	}
	return sumWT / sumW, sumD / float64(n), true
}

// distance is the mean per-dimension standardized absolute difference.
// Standardization uses the statistics frozen at the last Train; an
// Observe-only model compares raw features.
//
//depburst:locked mu
func (m *Model) distance(a, b []float64) float64 {
	var d float64
	for i := range a {
		dv := a[i] - b[i]
		if len(m.featStd) == len(a) && m.featStd[i] > 0 {
			dv /= m.featStd[i]
		}
		d += math.Abs(dv)
	}
	return d / float64(len(a))
}

// work is the group's per-thread-instructions proxy, recovered from its
// feature vector (kept there so the model file needs no second copy).
func (g *group) work() float64 {
	// features(): index 6 is log1p(TotalInstrs), index 2 is Threads.
	if len(g.feat) < 7 {
		return 0
	}
	threads := g.feat[2]
	if threads < 1 {
		threads = 1
	}
	return math.Expm1(g.feat[6]) / threads
}

// Summary describes a model for reports and logs.
type Summary struct {
	Groups    int     `json:"groups"`
	Points    int     `json:"points"`
	Gamma     float64 `json:"gamma"`
	InterpErr float64 `json:"interp_err"`
	ExtrapErr float64 `json:"extrap_err"`
	KNNErr    float64 `json:"knn_err"`
}

// Summarize returns the model's corpus-wide statistics.
func (m *Model) Summarize() Summary {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := Summary{
		Groups: len(m.groups), Gamma: m.gamma,
		InterpErr: m.interpErr, ExtrapErr: m.extrapErr, KNNErr: m.knnErr,
	}
	for _, g := range m.groups {
		s.Points += len(g.pts)
	}
	return s
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(got-want) / math.Abs(want)
}
