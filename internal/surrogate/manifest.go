// Package surrogate is the learned fast path of the prediction service:
// a deterministic, dependency-free model trained on the simcache corpus
// that answers completion-time queries in microseconds, with an explicit
// confidence estimate so the serving layer can decide when to trust it and
// when to fall back to simulation.
//
// The model generalises the two-component DVFS law T(f) = S·f0/f + N
// (internal/core) from one fitted curve per profiled application to the
// full (machine config, workload spec) space:
//
//   - Runs that share every frequency-independent input form a group,
//     identified by a content hash of those inputs. A group with two or
//     more observed frequencies carries its own non-negative-clamped law —
//     interpolation inside the observed band is the most trusted source,
//     extrapolation outside it slightly less.
//   - A group seen at a single frequency is scaled by the corpus-wide mean
//     scaling fraction γ: T(f) = T1·(γ·f1/f + (1−γ)).
//   - A query whose group was never simulated is answered by k-NN over
//     standardized feature vectors of the known groups, each neighbour's
//     law rescaled by relative per-thread work. Cross-workload transfer is
//     the least trusted source and is floored at a conservative error.
//
// Every source's error estimate is measured at training time by
// cross-validation on the corpus itself (leave-one-frequency-out for the
// laws, leave-one-group-out for k-NN), so confidence is calibrated by
// construction: the error the model reports is the error it actually made
// on held-out corpus data. `depburst surrogatecheck` re-verifies both
// claims statistically and gates CI on them.
package surrogate

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"math"

	"depburst/internal/dacapo"
	"depburst/internal/sim"
	"depburst/internal/units"
)

// KindTruth marks a manifest describing a full-detail ground-truth run —
// the only kind the trainer consumes today.
const KindTruth = "truth"

// Manifest is the metadata-sidecar record written next to each cached
// truth entry (simcache.PutMeta): the inputs that produced the entry, which
// the content hash alone cannot be inverted back into. It is what makes
// the cache a scannable training corpus.
type Manifest struct {
	Kind   string      `json:"kind"`
	Config sim.Config  `json:"config"`
	Spec   dacapo.Spec `json:"spec"`
}

// NewTruthManifest builds the manifest for a full-detail truth run,
// normalised for hashing and storage (the observability registry is not an
// input to the result).
func NewTruthManifest(cfg sim.Config, spec dacapo.Spec) Manifest {
	cfg.Metrics = nil
	return Manifest{Kind: KindTruth, Config: cfg, Spec: spec}
}

// GroupID is the content address of the manifest's frequency-independent
// inputs: two runs share a group exactly when they differ only in
// frequency. Canonical JSON (struct fields in declaration order, no maps)
// hashed like simcache keys.
func (m Manifest) GroupID() string {
	m.Config.Freq = 0
	m.Config.Metrics = nil
	b, err := json.Marshal(m)
	if err != nil {
		// The manifest types are plain data; Marshal cannot fail on them.
		return "unencodable"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:12])
}

// features maps the frequency-independent inputs onto a fixed-length
// vector for the k-NN distance. Wide-ranged counts are log-compressed so
// no single scale dominates before standardization.
func (m Manifest) features() []float64 {
	c, sp := m.Config, m.Spec
	hotB := sp.HotFrac
	if sp.PhaseItems > 0 {
		hotB = sp.HotFracB
	}
	skew := 0.0
	if sp.SkewFirst {
		skew = float64(sp.SkewFactor)
	}
	memory := 0.0
	if sp.Memory {
		memory = 1
	}
	return []float64{
		float64(c.Cores),
		math.Log1p(float64(c.Quantum)),
		float64(sp.Threads),
		float64(sp.Kind),
		math.Log1p(float64(sp.Items)),
		math.Log1p(float64(sp.ItemInstrs)),
		math.Log1p(float64(sp.TotalInstrs())),
		sp.IPC,
		sp.LoadsPerKI,
		sp.StoresPerKI,
		sp.DepFrac,
		sp.HotFrac,
		hotB,
		math.Log1p(float64(sp.HotKB)),
		math.Log1p(float64(sp.ColdMB)),
		math.Log1p(float64(sp.PhaseItems)),
		math.Log1p(float64(sp.AllocPerItem)),
		sp.Survival,
		math.Log1p(float64(c.JVM.NurseryBytes)),
		float64(sp.CSPerItem),
		math.Log1p(float64(sp.CSInstrs)),
		skew,
		memory,
	}
}

// perThreadWork is the size proxy used to rescale a neighbour's prediction
// onto the queried workload.
func (m Manifest) perThreadWork() float64 {
	threads := m.Spec.Threads
	if threads < 1 {
		threads = 1
	}
	return float64(m.Spec.TotalInstrs()) / float64(threads)
}

// Sample is one training example: the inputs of a full-detail truth run
// and the completion time it produced.
type Sample struct {
	Config sim.Config
	Spec   dacapo.Spec
	Time   units.Time
}

func (s Sample) manifest() Manifest { return NewTruthManifest(s.Config, s.Spec) }
