package surrogate

import (
	"encoding/json"
	"testing"

	"depburst/internal/dacapo"
)

// FuzzSurrogateDecode throws arbitrary bytes at the fast path's two
// untrusted input surfaces: the model-file decoder and the manifest
// payload the corpus scanner json-decodes out of each sidecar (the framing
// around it is simcache's checkEntry, exercised by its corruption wall).
// Malformation must degrade to a clean error or an ignored sample — never
// a panic — and a model that does decode must survive prediction,
// observation and re-encoding. The on-disk skip-and-continue behaviour of
// Scan itself is covered by TestScanCorpus.
func FuzzSurrogateDecode(f *testing.F) {
	spec := dacapo.PMDScale()
	valid, err := Train(synthSamples([]dacapo.Spec{spec, dacapo.Xalan()}, trainFreqs)).Encode()
	if err != nil {
		f.Fatal(err)
	}
	manifest, err := json.Marshal(NewTruthManifest(synthConfig(spec, 1000), spec))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:fileHeaderSize])
	f.Add([]byte("DBSG"))
	f.Add(manifest)
	f.Add([]byte(`{"kind":"truth","spec":{"Name":"pmd"}}`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := Decode(data); err == nil {
			cfg := synthConfig(spec, 2000)
			if _, ok := m.Predict(cfg, spec); ok {
				m.Observe(synthConfig(spec, 1500), spec, 42)
			}
			if _, err := m.Encode(); err != nil {
				t.Fatalf("decoded model failed to re-encode: %v", err)
			}
		}

		var man Manifest
		if err := json.Unmarshal(data, &man); err != nil {
			return
		}
		// Whatever decoded is fed through the whole training surface; the
		// model must absorb or reject it without panicking.
		man.GroupID()
		man.features()
		man.perThreadWork()
		m := NewModel()
		m.Observe(man.Config, man.Spec, 7)
		m.Observe(man.Config, man.Spec, 7)
		m.Predict(man.Config, man.Spec)
		Train([]Sample{{Config: man.Config, Spec: man.Spec, Time: 7}})
	})
}
