package surrogate

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"
)

// FileSchema names the model-file payload layout. Bump on incompatible
// change; old files then fail to load instead of decoding partially.
const FileSchema = "depburst-surrogate/1"

// Model-file framing, simcache-style: magic, format version, payload
// length, payload CRC, then a gob-encoded filePayload. Self-checking, so
// truncation, corruption or version skew reads as a clean error — never a
// partially-loaded model.
var fileMagic = [4]byte{'D', 'B', 'S', 'G'}

const (
	fileVersion    uint32 = 1
	fileHeaderSize        = 4 + 4 + 8 + 4
)

// filePayload is the serialized model. Slices only, sorted before
// encoding, so two trainings on the same corpus write byte-identical
// files. Laws are refit on load (deterministic) rather than stored.
type filePayload struct {
	Schema            string
	Gamma             float64
	InterpErr         float64
	ExtrapErr         float64
	KNNErr            float64
	FeatMean, FeatStd []float64
	Groups            []fileGroup
}

type fileGroup struct {
	ID    string
	Bench string
	Feat  []float64
	Pts   []point
}

// Encode serializes the model.
func (m *Model) Encode() ([]byte, error) {
	m.mu.RLock()
	p := filePayload{
		Schema: FileSchema, Gamma: m.gamma,
		InterpErr: m.interpErr, ExtrapErr: m.extrapErr, KNNErr: m.knnErr,
		FeatMean: m.featMean, FeatStd: m.featStd,
	}
	for _, g := range m.groups {
		p.Groups = append(p.Groups, fileGroup{ID: g.id, Bench: g.bench, Feat: g.feat, Pts: g.pts})
	}
	m.mu.RUnlock()

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(p); err != nil {
		return nil, fmt.Errorf("surrogate: encode: %w", err)
	}
	out := make([]byte, fileHeaderSize+payload.Len())
	copy(out[:4], fileMagic[:])
	binary.LittleEndian.PutUint32(out[4:8], fileVersion)
	binary.LittleEndian.PutUint64(out[8:16], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(out[16:20], crc32.ChecksumIEEE(payload.Bytes()))
	copy(out[fileHeaderSize:], payload.Bytes())
	return out, nil
}

// WriteFile atomically writes the model next to path (temp + rename).
func (m *Model) WriteFile(path string) error {
	raw, err := m.Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("surrogate: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("surrogate: %w", err)
	}
	return nil
}

// Decode loads a model from its serialized form. Every malformation —
// truncation, bad framing, checksum or schema mismatch, non-finite
// statistics, malformed groups — returns an error; it never panics and
// never yields a partially-valid model.
func Decode(raw []byte) (*Model, error) {
	if len(raw) < fileHeaderSize {
		return nil, fmt.Errorf("surrogate: model file truncated")
	}
	if [4]byte(raw[:4]) != fileMagic {
		return nil, fmt.Errorf("surrogate: not a model file")
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != fileVersion {
		return nil, fmt.Errorf("surrogate: model file version %d, want %d", v, fileVersion)
	}
	payload := raw[fileHeaderSize:]
	if n := binary.LittleEndian.Uint64(raw[8:16]); n != uint64(len(payload)) {
		return nil, fmt.Errorf("surrogate: model file length mismatch")
	}
	if binary.LittleEndian.Uint32(raw[16:20]) != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("surrogate: model file checksum mismatch")
	}
	var p filePayload
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return nil, fmt.Errorf("surrogate: decode: %w", err)
	}
	if p.Schema != FileSchema {
		return nil, fmt.Errorf("surrogate: model schema %q, want %q", p.Schema, FileSchema)
	}
	for _, v := range append(append([]float64{p.Gamma, p.InterpErr, p.ExtrapErr, p.KNNErr}, p.FeatMean...), p.FeatStd...) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("surrogate: non-finite model statistics")
		}
	}
	if len(p.FeatMean) != len(p.FeatStd) {
		return nil, fmt.Errorf("surrogate: standardization length mismatch")
	}

	m := &Model{byID: map[string]*group{}}
	m.gamma = clamp01(p.Gamma)
	m.interpErr, m.extrapErr, m.knnErr = p.InterpErr, p.ExtrapErr, p.KNNErr
	m.featMean, m.featStd = p.FeatMean, p.FeatStd
	for _, fg := range p.Groups {
		if fg.ID == "" || m.byID[fg.ID] != nil {
			return nil, fmt.Errorf("surrogate: duplicate or empty group id")
		}
		for _, v := range fg.Feat {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("surrogate: non-finite group features")
			}
		}
		g := &group{id: fg.ID, bench: fg.Bench, feat: fg.Feat}
		for _, pt := range fg.Pts {
			if pt.Freq <= 0 || pt.Time < 0 {
				return nil, fmt.Errorf("surrogate: malformed group point")
			}
			i := sort.Search(len(g.pts), func(i int) bool { return g.pts[i].Freq >= pt.Freq })
			if i < len(g.pts) && g.pts[i].Freq == pt.Freq {
				return nil, fmt.Errorf("surrogate: duplicate group frequency")
			}
			g.pts = append(g.pts, point{})
			copy(g.pts[i+1:], g.pts[i:])
			g.pts[i] = pt
		}
		g.refit()
		m.byID[g.id] = g
		m.groups = append(m.groups, g)
	}
	sort.Slice(m.groups, func(i, j int) bool { return m.groups[i].id < m.groups[j].id })
	return m, nil
}

// ReadFile loads a model written by WriteFile.
func ReadFile(path string) (*Model, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("surrogate: %w", err)
	}
	return Decode(raw)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
