package surrogate

import (
	"depburst/internal/sim"
	"depburst/internal/simcache"
)

// Scan walks the store and returns the training corpus: one Sample per
// live entry whose metadata sidecar identifies a full-detail truth run.
// Entries without a sidecar (other run families, corpora predating
// sidecars), damaged sidecars or entries, sampled-mode runs and malformed
// manifests are skipped — a partially-readable corpus trains a smaller
// model, never a failed one. The result is ordered by content key, so a
// scan of the same corpus is deterministic regardless of how (or how
// parallel) the corpus was built.
func Scan(st *simcache.Store) ([]Sample, error) {
	keys, err := st.Keys()
	if err != nil {
		return nil, err
	}
	var samples []Sample
	for _, k := range keys {
		var m Manifest
		if !st.GetMeta(k, &m) {
			continue
		}
		if m.Kind != KindTruth || m.Config.Sampling.Enabled || m.Config.Freq <= 0 {
			continue
		}
		var res sim.Result
		if !st.Get(k, &res) {
			continue
		}
		if res.Time < 0 {
			continue
		}
		samples = append(samples, Sample{Config: m.Config, Spec: m.Spec, Time: res.Time})
	}
	return samples, nil
}
