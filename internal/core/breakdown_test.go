package core

import (
	"testing"

	"depburst/internal/cpu"
	"depburst/internal/kernel"
	"depburst/internal/units"
)

// breakdownEpochsFixture builds a deterministic synthetic epoch stream with
// mixed shapes: multi-thread epochs, an idle epoch, carried slack and a
// store burst.
func breakdownEpochsFixture() []kernel.Epoch {
	mk := func(active, crit, sq units.Time, instrs int64) cpu.Counters {
		return cpu.Counters{Instrs: instrs, Active: active, CritNS: crit, SQFull: sq}
	}
	return []kernel.Epoch{
		{Start: 0, End: 1000, StallTID: 0, EndKind: kernel.BoundarySleep,
			Slices: []kernel.ThreadSlice{
				{TID: 0, Delta: mk(1000, 300, 100, 2000)},
				{TID: 1, Delta: mk(600, 50, 0, 900)},
			}},
		{Start: 1000, End: 1400, StallTID: kernel.NoThread, EndKind: kernel.BoundaryWake,
			Slices: []kernel.ThreadSlice{
				{TID: 1, Delta: mk(400, 350, 0, 500)},
			}},
		// Idle epoch: nothing ran.
		{Start: 1400, End: 1700, StallTID: kernel.NoThread, EndKind: kernel.BoundaryWake},
		{Start: 1700, End: 2900, StallTID: 1, EndKind: kernel.BoundarySleep,
			Slices: []kernel.ThreadSlice{
				{TID: 0, Delta: mk(1200, 200, 600, 1500)},
				{TID: 1, Delta: mk(1100, 900, 0, 700)},
			}},
	}
}

// TestBreakdownMatchesPredict locks the core invariant: the per-epoch Pred
// fields sum to exactly what PredictEpochs computes, for every engine, CTP
// mode and frequency direction.
func TestBreakdownMatchesPredict(t *testing.T) {
	epochs := breakdownEpochsFixture()
	for _, o := range []Options{
		{},
		{Burst: true},
		{Engine: LeadingLoads, Burst: true},
		{Engine: StallTime},
		{PerEpochCTP: true},
		{Burst: true, PerEpochCTP: true},
	} {
		for _, fr := range []struct{ base, target units.Freq }{
			{1000, 4000}, {4000, 1000}, {2000, 2000},
		} {
			want := PredictEpochs(epochs, fr.base, fr.target, o)
			var got units.Time
			for _, b := range BreakdownEpochs(epochs, fr.base, fr.target, o) {
				got += b.Pred
			}
			if got != want {
				t.Errorf("opts %+v %v->%v: breakdown sums to %v, PredictEpochs says %v",
					o, fr.base, fr.target, got, want)
			}
		}
	}
}

// TestBreakdownComponentsSum locks the attribution invariant: for every
// epoch, Pipeline + Memory + Burst + Idle == Pred.
func TestBreakdownComponentsSum(t *testing.T) {
	epochs := breakdownEpochsFixture()
	for _, o := range []Options{{Burst: true}, {}, {Burst: true, PerEpochCTP: true}} {
		for i, b := range BreakdownEpochs(epochs, 1000, 4000, o) {
			if sum := b.Pipeline + b.Memory + b.Burst + b.Idle; sum != b.Pred {
				t.Errorf("opts %+v epoch %d: components sum %v != pred %v", o, i, sum, b.Pred)
			}
		}
	}
}

func TestBreakdownIdleEpoch(t *testing.T) {
	epochs := breakdownEpochsFixture()
	bds := BreakdownEpochs(epochs, 1000, 4000, Options{Burst: true})
	if len(bds) != len(epochs) {
		t.Fatalf("%d breakdowns for %d epochs", len(bds), len(epochs))
	}
	idle := bds[2]
	if idle.Pred != 300 || idle.Idle != 300 || idle.Pipeline != 0 || idle.Memory != 0 || idle.Burst != 0 {
		t.Errorf("idle epoch breakdown = %+v; its full duration must be Idle", idle)
	}
	if idle.Instrs != 0 {
		t.Errorf("idle epoch has %d instrs", idle.Instrs)
	}
}

// TestBreakdownBurstAttribution: with Burst on, the store-queue time of the
// critical thread lands in the Burst component, not Memory.
func TestBreakdownBurstAttribution(t *testing.T) {
	epochs := []kernel.Epoch{
		{Start: 0, End: 1000, StallTID: 0, EndKind: kernel.BoundarySleep,
			Slices: []kernel.ThreadSlice{
				{TID: 0, Delta: cpu.Counters{Instrs: 100, Active: 1000, CritNS: 200, SQFull: 300}},
			}},
	}
	with := BreakdownEpochs(epochs, 1000, 4000, Options{Burst: true})[0]
	if with.Memory != 200 || with.Burst != 300 {
		t.Errorf("burst attribution: memory=%v burst=%v, want 200/300", with.Memory, with.Burst)
	}
	without := BreakdownEpochs(epochs, 1000, 4000, Options{})[0]
	if without.Burst != 0 {
		t.Errorf("burst component %v without Burst option", without.Burst)
	}
	// Without BURST the store-queue time is (wrongly) treated as scaling
	// work, so the prediction at a higher frequency is smaller.
	if without.Pred >= with.Pred {
		t.Errorf("BURST did not raise the high-frequency prediction: %v vs %v", with.Pred, without.Pred)
	}
}

// TestBreakdownInstrsSum: instruction attribution covers all threads.
func TestBreakdownInstrsSum(t *testing.T) {
	epochs := breakdownEpochsFixture()
	var want int64
	for i := range epochs {
		for _, sl := range epochs[i].Slices {
			want += sl.Delta.Instrs
		}
	}
	var got int64
	for _, b := range BreakdownEpochs(epochs, 1000, 4000, Options{Burst: true}) {
		got += b.Instrs
	}
	if got != want {
		t.Errorf("breakdown instrs %d, want %d", got, want)
	}
}
