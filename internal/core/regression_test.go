package core

import (
	"testing"
	"testing/quick"

	"depburst/internal/units"
)

func TestRegressionExactFit(t *testing.T) {
	// Ground truth: S=6000 at 1 GHz, N=2000.
	truth := func(f units.Freq) units.Time {
		return units.Time(6000*1000/int64(f)) + 2000
	}
	points := []TrainingPoint{
		{Freq: 1000, Time: truth(1000)},
		{Freq: 2000, Time: truth(2000)},
	}
	r, err := FitRegression(points)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []units.Freq{1000, 1500, 2000, 3000, 4000} {
		got := r.Predict(nil, f)
		want := truth(f)
		if got < want-2 || got > want+2 {
			t.Errorf("predict %v: %v, want %v", f, got, want)
		}
	}
	s, n, ref := r.Components()
	if ref != 1000 || s < 5998 || s > 6002 || n < 1998 || n > 2002 {
		t.Errorf("components s=%v n=%v ref=%v", s, n, ref)
	}
}

func TestRegressionLeastSquaresOverdetermined(t *testing.T) {
	// Three points with slight noise: the fit must land between them.
	points := []TrainingPoint{
		{Freq: 1000, Time: 8100},
		{Freq: 2000, Time: 5000},
		{Freq: 4000, Time: 3450},
	}
	r, err := FitRegression(points)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Predict(nil, 3000)
	if got < 3500 || got > 4600 {
		t.Errorf("interpolated prediction %v outside plausible band", got)
	}
}

func TestRegressionRejections(t *testing.T) {
	if _, err := FitRegression(nil); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := FitRegression([]TrainingPoint{{Freq: 1000, Time: 10}}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitRegression([]TrainingPoint{
		{Freq: 1000, Time: 10}, {Freq: 1000, Time: 12},
	}); err == nil {
		t.Error("single-frequency training accepted")
	}
	if _, err := FitRegression([]TrainingPoint{
		{Freq: 0, Time: 10}, {Freq: 1000, Time: 12},
	}); err == nil {
		t.Error("zero frequency accepted")
	}
}

func TestRegressionNeverNegative(t *testing.T) {
	err := quick.Check(func(t1, t2 uint32, f uint16) bool {
		pts := []TrainingPoint{
			{Freq: 1000, Time: units.Time(t1 % 1_000_000)},
			{Freq: 4000, Time: units.Time(t2 % 1_000_000)},
		}
		r, err := FitRegression(pts)
		if err != nil {
			return true
		}
		target := units.Freq(f%4000) + 500
		return r.Predict(nil, target) >= 0
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestRegressionNonnegClamps(t *testing.T) {
	// Inverted points (time grows with frequency) drive the unconstrained
	// scaling component negative; the clamped fit must collapse to the
	// constant N = mean and stay monotone.
	inverted := []TrainingPoint{
		{Freq: 1000, Time: 1000},
		{Freq: 2000, Time: 3000},
	}
	r, err := FitRegressionNonneg(inverted)
	if err != nil {
		t.Fatal(err)
	}
	s, n, _ := r.Components()
	if s != 0 || n != 2000 {
		t.Errorf("inverted fit: s=%v n=%v, want s=0 n=2000", s, n)
	}

	// Super-linear scaling drives N negative; the clamp keeps the pure
	// scaling component.
	steep := []TrainingPoint{
		{Freq: 1000, Time: 8000},
		{Freq: 4000, Time: 1000},
	}
	r, err = FitRegressionNonneg(steep)
	if err != nil {
		t.Fatal(err)
	}
	s, n, _ = r.Components()
	if n != 0 || s <= 0 {
		t.Errorf("steep fit: s=%v n=%v, want n=0 and s>0", s, n)
	}

	// A well-posed set is untouched: same components as the plain fit.
	good := []TrainingPoint{
		{Freq: 1000, Time: 8000},
		{Freq: 2000, Time: 5000},
	}
	plain, _ := FitRegression(good)
	clamped, err := FitRegressionNonneg(good)
	if err != nil {
		t.Fatal(err)
	}
	ps, pn, _ := plain.Components()
	cs, cn, _ := clamped.Components()
	if ps != cs || pn != cn {
		t.Errorf("well-posed fit changed: plain (%v,%v) clamped (%v,%v)", ps, pn, cs, cn)
	}

	if _, err := FitRegressionNonneg(nil); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestRegressionNonnegMonotone(t *testing.T) {
	err := quick.Check(func(t1, t2, t3 uint32) bool {
		pts := []TrainingPoint{
			{Freq: 1000, Time: units.Time(t1 % 1_000_000)},
			{Freq: 2000, Time: units.Time(t2 % 1_000_000)},
			{Freq: 4000, Time: units.Time(t3 % 1_000_000)},
		}
		r, err := FitRegressionNonneg(pts)
		if err != nil {
			return true
		}
		prev := r.Predict(nil, 100)
		for f := units.Freq(200); f <= 8000; f += 100 {
			cur := r.Predict(nil, f)
			if cur < 0 || cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
