package core

import (
	"depburst/internal/cpu"
	"depburst/internal/kernel"
	"depburst/internal/units"
)

// DEP is the paper's predictor (§III): execution is decomposed into
// synchronization epochs at every futex sleep and wake; each active
// thread's duration within an epoch is predicted with the per-thread
// engine; and the epoch's duration at the target frequency is that of the
// critical thread — tracked either per epoch or across epochs with delta
// counters (Algorithm 1). With Options.Burst it is the full DEP+BURST
// model.
type DEP struct {
	Opts Options
}

// NewDEP returns a DEP model with the given options.
func NewDEP(o Options) *DEP { return &DEP{Opts: o} }

// NewDEPBurst returns the paper's headline DEP+BURST model.
func NewDEPBurst() *DEP { return &DEP{Opts: Options{Burst: true}} }

// Name implements Model.
func (d *DEP) Name() string {
	n := "DEP" + d.Opts.suffix()
	if d.Opts.PerEpochCTP {
		n += "(per-epoch)"
	}
	return n
}

// Predict implements Model.
func (d *DEP) Predict(obs *Observation, target units.Freq) units.Time {
	return PredictEpochs(obs.Epochs, obs.Base, target, d.Opts)
}

// PredictEpochs runs DEP's epoch aggregation over an epoch stream,
// predicting the stream's total duration at the target frequency. It is
// exported separately because the energy manager applies it to the epochs
// of a single scheduling quantum.
func PredictEpochs(epochs []kernel.Epoch, base, target units.Freq, o Options) units.Time {
	if o.PerEpochCTP {
		return predictPerEpoch(epochs, base, target, o)
	}
	return predictAcrossEpochs(epochs, base, target, o)
}

// PredictAggregate predicts an interval's duration at the target frequency
// from aggregate counters alone (no epoch structure), the fallback for
// intervals without synchronization activity: all threads ran
// independently, so the interval scales like its per-core average.
func PredictAggregate(c cpu.Counters, base, target units.Freq, o Options) units.Time {
	return predictThread(c.Active, c, o, base, target)
}

// predictPerEpoch estimates each epoch independently as the duration of its
// slowest predicted thread (Figure 2(c)).
func predictPerEpoch(epochs []kernel.Epoch, base, target units.Freq, o Options) units.Time {
	var total units.Time
	for i := range epochs {
		ep := &epochs[i]
		var worst units.Time
		for _, sl := range ep.Slices {
			p := predictThread(sl.Delta.Active, sl.Delta, o, base, target)
			if p > worst {
				worst = p
			}
		}
		if len(ep.Slices) == 0 {
			// Idle epoch (no thread ran): its duration is
			// scheduler/timer time that does not scale.
			worst = ep.Duration()
		}
		total += worst
	}
	return total
}

// predictAcrossEpochs implements Algorithm 1: per-thread delta counters
// carry slack across epochs, so a thread that finished early in one epoch
// (and waited) correctly absorbs that wait when it becomes critical later.
// The thread whose sleep closed the epoch has no carried slack: its delta
// resets.
func predictAcrossEpochs(epochs []kernel.Epoch, base, target units.Freq, o Options) units.Time {
	delta := make(map[kernel.ThreadID]units.Time)
	var total units.Time
	for i := range epochs {
		ep := &epochs[i]
		if len(ep.Slices) == 0 {
			total += ep.Duration()
			continue
		}
		// Line 1-4: per-thread estimate minus carried slack.
		var iPrime units.Time
		first := true
		for _, sl := range ep.Slices {
			a := predictThread(sl.Delta.Active, sl.Delta, o, base, target)
			e := a - delta[sl.TID]
			if first || e > iPrime {
				iPrime = e
				first = false
			}
		}
		// Line 5: epoch duration is the largest adjusted estimate.
		if iPrime < 0 {
			iPrime = 0
		}
		total += iPrime
		// Lines 6-8: update slack for every active thread.
		for _, sl := range ep.Slices {
			a := predictThread(sl.Delta.Active, sl.Delta, o, base, target)
			delta[sl.TID] += iPrime - a
		}
		// Line 9: the stalled thread's slack resets — it slept, so its
		// next epoch starts fresh.
		if ep.StallTID != kernel.NoThread {
			delta[ep.StallTID] = 0
		}
	}
	return total
}
