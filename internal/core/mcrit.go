package core

import (
	"depburst/internal/kernel"
	"depburst/internal/units"
)

// MCrit is the multithreaded extension of CRIT (§II-C): each thread's
// execution time is predicted independently from its whole-run counters,
// and the application's time is that of the slowest ("critical") predicted
// thread.
//
// A thread's observed duration is its wall-clock lifetime, which includes
// time asleep on synchronization — the model cannot tell waiting from
// computing, so wait time is misattributed to the scaling component. That
// misattribution is exactly the inaccuracy DEP removes.
type MCrit struct {
	Opts Options
}

// NewMCrit returns an M+CRIT model with the given options.
func NewMCrit(o Options) *MCrit { return &MCrit{Opts: o} }

// Name implements Model.
func (m *MCrit) Name() string { return "M+CRIT" + m.Opts.suffix() }

// Predict implements Model.
func (m *MCrit) Predict(obs *Observation, target units.Freq) units.Time {
	var worst units.Time
	for _, t := range obs.Threads {
		wall := t.End - t.Start
		if wall <= 0 {
			continue
		}
		p := predictThread(wall, t.C, m.Opts, obs.Base, target)
		if p > worst {
			worst = p
		}
	}
	return worst
}

// COOP intercepts the JVM's collector start/stop signals and applies
// M+CRIT within each application or collector phase, summing the phase
// predictions (§II-C). Separating the phases removes the largest
// cross-phase misattribution (application threads sleeping during GC and
// vice versa) but keeps M+CRIT's blindness to synchronization within a
// phase.
type COOP struct {
	Opts Options
}

// NewCOOP returns a COOP model with the given options.
func NewCOOP(o Options) *COOP { return &COOP{Opts: o} }

// Name implements Model.
func (c *COOP) Name() string { return "COOP" + c.Opts.suffix() }

// phase is one application or collector interval with per-thread counter
// deltas accumulated from the epoch stream.
type phase struct {
	start, end units.Time
	collector  bool
	perThread  map[int]*threadAgg
}

type threadAgg struct {
	active units.Time
	ns     units.Time
}

// Predict implements Model.
func (c *COOP) Predict(obs *Observation, target units.Freq) units.Time {
	cuts, collector := phaseCuts(obs)
	phases := make([]phase, len(cuts)-1)
	for i := range phases {
		phases[i] = phase{
			start: cuts[i], end: cuts[i+1],
			collector: collector[i],
			perThread: make(map[int]*threadAgg),
		}
	}

	// Attribute each epoch's per-thread work to the phase containing its
	// midpoint (a real deployment reads counters exactly at the signals;
	// the epoch stream gives us the same totals).
	for _, ep := range obs.Epochs {
		mid := ep.Start + (ep.End-ep.Start)/2
		pi := findPhase(cuts, mid)
		if pi < 0 {
			continue
		}
		for _, sl := range ep.Slices {
			agg := phases[pi].perThread[int(sl.TID)]
			if agg == nil {
				agg = &threadAgg{}
				phases[pi].perThread[int(sl.TID)] = agg
			}
			agg.active += sl.Delta.Active
			agg.ns += nonScaling(sl.Delta, sl.Delta.Active, c.Opts)
		}
	}

	var total units.Time
	for _, ph := range phases {
		dur := ph.end - ph.start
		if dur <= 0 {
			continue
		}
		// M+CRIT within the phase, over the threads the phase belongs
		// to: the JVM's signals tell COOP whether this is an
		// application or a collector phase, so it only considers the
		// corresponding thread class (that is the model's entire
		// advantage over M+CRIT). Within the class it retains
		// M+CRIT's blindness: every alive thread is assumed busy for
		// the phase's whole duration.
		var worst units.Time
		for _, t := range obs.Threads {
			if t.Start >= ph.end || t.End <= ph.start {
				continue
			}
			if ph.collector != (t.Class == kernel.ClassService) {
				continue
			}
			var ns units.Time
			if agg := ph.perThread[int(t.TID)]; agg != nil {
				ns = agg.ns
			}
			if ns > dur {
				ns = dur
			}
			p := scaleTime(dur-ns, obs.Base, target) + ns
			if p > worst {
				worst = p
			}
		}
		if worst == 0 {
			worst = scaleTime(dur, obs.Base, target)
		}
		total += worst
	}
	return total
}

// phaseCuts returns the sorted phase boundaries — run start, every GC
// start/end mark, and run end — plus, per phase, whether it is a collector
// phase.
func phaseCuts(obs *Observation) (cuts []units.Time, collector []bool) {
	cuts = []units.Time{0}
	inGC := false
	for _, mk := range obs.Marks {
		start := mk.Label == "gc-start"
		end := mk.Label == "gc-end"
		if !start && !end {
			continue
		}
		if mk.At > cuts[len(cuts)-1] && mk.At < obs.Total {
			cuts = append(cuts, mk.At)
			collector = append(collector, inGC)
		}
		inGC = start
	}
	cuts = append(cuts, obs.Total)
	collector = append(collector, inGC)
	return cuts, collector
}

// findPhase locates the phase containing t; cuts are sorted.
func findPhase(cuts []units.Time, t units.Time) int {
	for i := 0; i+1 < len(cuts); i++ {
		if t >= cuts[i] && t < cuts[i+1] {
			return i
		}
	}
	if len(cuts) >= 2 && t >= cuts[len(cuts)-1] {
		return len(cuts) - 2
	}
	return -1
}
