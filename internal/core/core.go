// Package core implements the paper's contribution: DVFS performance
// predictors for managed multithreaded applications.
//
// Given a run observed at a base frequency — per-thread hardware counters,
// the futex-delimited synchronization epochs, and the GC phase marks — each
// model predicts the application's execution time at a target frequency:
//
//   - M+CRIT: per-thread CRIT totals, total time = slowest thread (§II-C).
//     Thread sleep time is silently misattributed to the scaling component.
//   - COOP: splits the run at garbage-collection boundaries and applies
//     M+CRIT per phase (§II-C).
//   - DEP: splits the run into synchronization epochs at every futex sleep
//     and wake, predicts each thread within each epoch, and aggregates with
//     critical-thread prediction, either per-epoch or across epochs via
//     delta counters (Algorithm 1, §III).
//   - BURST: adds the store-queue-full time to any model's non-scaling
//     component, capturing zero-initialisation and GC-copy store bursts
//     (§III-D).
//
// The per-thread scaling/non-scaling split is pluggable: CRIT (default),
// Leading Loads, or Stall Time (§II-A), enabling the paper's comparisons.
package core

import (
	"fmt"

	"depburst/internal/cpu"
	"depburst/internal/kernel"
	"depburst/internal/units"
)

// Engine selects the per-thread DVFS estimator that splits execution into
// scaling and non-scaling components.
type Engine int

// Per-thread estimator engines (§II-A).
const (
	// CRIT accumulates the critical path through each cluster of
	// long-latency loads (Miftakhutdinov et al.).
	CRIT Engine = iota
	// LeadingLoads charges the full latency of the leading load of each
	// miss cluster.
	LeadingLoads
	// StallTime charges only cycles in which commit was blocked on
	// memory.
	StallTime
)

func (e Engine) String() string {
	switch e {
	case CRIT:
		return "CRIT"
	case LeadingLoads:
		return "LL"
	case StallTime:
		return "STALL"
	default:
		return "?"
	}
}

// Options configure a model.
type Options struct {
	// Engine is the per-thread estimator; CRIT is the paper's choice.
	Engine Engine
	// Burst adds the store-queue-full counter to the non-scaling
	// component (the +BURST models).
	Burst bool
	// PerEpochCTP makes DEP use per-epoch critical-thread prediction
	// instead of the more accurate across-epoch CTP (Figure 4's
	// comparison). Only DEP consults it.
	PerEpochCTP bool
}

// ThreadObs is what a predictor deployment can observe about one thread at
// the base frequency: its lifetime and final hardware counters.
type ThreadObs struct {
	TID        kernel.ThreadID
	Name       string
	Class      kernel.Class
	Start, End units.Time
	C          cpu.Counters
}

// Observation is a complete base-frequency run observation.
type Observation struct {
	// Base is the frequency the run was measured at.
	Base units.Freq
	// Total is the measured execution time.
	Total units.Time
	// Threads holds per-thread lifetimes and counters.
	Threads []ThreadObs
	// Epochs is the futex-delimited epoch stream (DEP's input).
	Epochs []kernel.Epoch
	// Marks holds the GC phase annotations (COOP's input).
	Marks []kernel.Mark
}

// Model predicts execution time at a target frequency from a
// base-frequency observation.
type Model interface {
	Name() string
	Predict(obs *Observation, target units.Freq) units.Time
}

// scaleTime rescales a scaling-component duration from base to target
// frequency: work that took d at base takes d·base/target at target.
func scaleTime(d units.Time, base, target units.Freq) units.Time {
	if d <= 0 {
		return 0
	}
	return units.Time(int64(d) * int64(base) / int64(target))
}

// nonScaling extracts the engine's non-scaling estimate from counters,
// optionally adding the BURST store-queue-full time, clamped to [0, active].
func nonScaling(c cpu.Counters, active units.Time, o Options) units.Time {
	var ns units.Time
	switch o.Engine {
	case CRIT:
		ns = c.CritNS
	case LeadingLoads:
		ns = c.LeadNS
	case StallTime:
		ns = c.StallNS
	default:
		panic(fmt.Sprintf("core: unknown engine %d", o.Engine))
	}
	if o.Burst {
		ns += c.SQFull
	}
	if ns < 0 {
		ns = 0
	}
	if ns > active {
		ns = active
	}
	return ns
}

// predictThread applies the two-component DVFS law to one thread's
// observed duration: T' = (T - N)·base/target + N.
func predictThread(active units.Time, c cpu.Counters, o Options, base, target units.Freq) units.Time {
	ns := nonScaling(c, active, o)
	return scaleTime(active-ns, base, target) + ns
}

// suffix names the +BURST variants.
func (o Options) suffix() string {
	s := ""
	if o.Engine != CRIT {
		s += "(" + o.Engine.String() + ")"
	}
	if o.Burst {
		s += "+BURST"
	}
	return s
}
