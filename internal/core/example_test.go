package core_test

import (
	"fmt"

	"depburst/internal/core"
	"depburst/internal/cpu"
	"depburst/internal/kernel"
	"depburst/internal/units"
)

// ExampleDEP_Predict predicts a two-epoch observation at other
// frequencies: the compute epoch scales, the memory-bound epoch does not.
func ExampleDEP_Predict() {
	obs := &core.Observation{
		Base:  1000 * units.MHz, // measured at 1 GHz
		Total: 4000,             // picoseconds
		Epochs: []kernel.Epoch{
			// Epoch 1: one thread, pure compute for 2000 ps.
			{Start: 0, End: 2000, Slices: []kernel.ThreadSlice{
				{TID: 0, Delta: cpu.Counters{Active: 2000}},
			}},
			// Epoch 2: the same thread, all 2000 ps waiting on memory.
			{Start: 2000, End: 4000, Slices: []kernel.ThreadSlice{
				{TID: 0, Delta: cpu.Counters{Active: 2000, CritNS: 2000}},
			}},
		},
	}
	model := core.NewDEPBurst()
	fmt.Println("at 2 GHz:", model.Predict(obs, 2000*units.MHz))
	fmt.Println("at 1 GHz:", model.Predict(obs, 1000*units.MHz))
	// Output:
	// at 2 GHz: 3.000ns
	// at 1 GHz: 4.000ns
}

// ExamplePredictEpochs shows Algorithm 1's across-epoch slack carrying: a
// thread that finishes early in epoch 1 absorbs that wait when it becomes
// critical in epoch 2, which per-epoch prediction cannot express.
func ExamplePredictEpochs() {
	slice := func(tid kernel.ThreadID, active, nonScaling units.Time) kernel.ThreadSlice {
		return kernel.ThreadSlice{TID: tid, Delta: cpu.Counters{Active: active, CritNS: nonScaling}}
	}
	epochs := []kernel.Epoch{
		{Start: 0, End: 2000, EndKind: kernel.BoundaryWake, StallTID: kernel.NoThread,
			Slices: []kernel.ThreadSlice{slice(0, 2000, 0), slice(1, 2000, 1600)}},
		{Start: 2000, End: 4000, EndKind: kernel.BoundaryExit, StallTID: 0,
			Slices: []kernel.ThreadSlice{slice(0, 2000, 2000), slice(1, 2000, 0)}},
	}
	across := core.PredictEpochs(epochs, 1000, 4000, core.Options{})
	per := core.PredictEpochs(epochs, 1000, 4000, core.Options{PerEpochCTP: true})
	fmt.Println("across-epoch CTP:", across)
	fmt.Println("per-epoch CTP:  ", per)
	// Output:
	// across-epoch CTP: 2.500ns
	// per-epoch CTP:   3.700ns
}
