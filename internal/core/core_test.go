package core

import (
	"testing"
	"testing/quick"

	"depburst/internal/cpu"
	"depburst/internal/kernel"
	"depburst/internal/units"
)

func TestScaleTime(t *testing.T) {
	if got := scaleTime(1000, 1000, 4000); got != 250 {
		t.Errorf("1000ps 1->4GHz = %v", got)
	}
	if got := scaleTime(1000, 4000, 1000); got != 4000 {
		t.Errorf("1000ps 4->1GHz = %v", got)
	}
	if got := scaleTime(-5, 1000, 2000); got != 0 {
		t.Errorf("negative duration = %v", got)
	}
	// Property: identity at equal frequencies.
	err := quick.Check(func(d int64, fRaw uint16) bool {
		f := units.Freq(fRaw%4000) + 1
		dd := units.Time(d % (1 << 40))
		if dd < 0 {
			dd = -dd
		}
		return scaleTime(dd, f, f) == dd
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestNonScalingEngineAndClamp(t *testing.T) {
	c := cpu.Counters{CritNS: 100, LeadNS: 80, StallNS: 50, SQFull: 30}
	cases := []struct {
		o    Options
		want units.Time
	}{
		{Options{Engine: CRIT}, 100},
		{Options{Engine: LeadingLoads}, 80},
		{Options{Engine: StallTime}, 50},
		{Options{Engine: CRIT, Burst: true}, 130},
		{Options{Engine: LeadingLoads, Burst: true}, 110},
	}
	for _, cs := range cases {
		if got := nonScaling(c, 1000, cs.o); got != cs.want {
			t.Errorf("%+v: ns = %v, want %v", cs.o, got, cs.want)
		}
	}
	// Clamp to active.
	if got := nonScaling(c, 90, Options{Engine: CRIT, Burst: true}); got != 90 {
		t.Errorf("clamp: %v", got)
	}
}

func TestPredictThreadLaw(t *testing.T) {
	c := cpu.Counters{CritNS: 400}
	// 1000ps active of which 400 non-scaling; 1->2GHz: 600/2 + 400 = 700.
	if got := predictThread(1000, c, Options{}, 1000, 2000); got != 700 {
		t.Errorf("predictThread = %v, want 700", got)
	}
	// 2->1GHz: 600*2 + 400 = 1600.
	if got := predictThread(1000, c, Options{}, 2000, 1000); got != 1600 {
		t.Errorf("predictThread down = %v, want 1600", got)
	}
}

func TestEngineString(t *testing.T) {
	for e, want := range map[Engine]string{CRIT: "CRIT", LeadingLoads: "LL", StallTime: "STALL", Engine(9): "?"} {
		if e.String() != want {
			t.Errorf("%d = %q", e, e.String())
		}
	}
}

func TestModelNames(t *testing.T) {
	cases := map[string]Model{
		"M+CRIT":               NewMCrit(Options{}),
		"M+CRIT+BURST":         NewMCrit(Options{Burst: true}),
		"COOP":                 NewCOOP(Options{}),
		"DEP+BURST":            NewDEPBurst(),
		"DEP+BURST(per-epoch)": NewDEP(Options{Burst: true, PerEpochCTP: true}),
		"DEP(LL)":              NewDEP(Options{Engine: LeadingLoads}),
	}
	for want, m := range cases {
		if m.Name() != want {
			t.Errorf("Name = %q, want %q", m.Name(), want)
		}
	}
}

// mkObs builds a two-thread observation: both span [0,total]; worker has
// the given non-scaling time, main sleeps throughout (the M+CRIT trap).
func mkObs(total, workerNS units.Time) *Observation {
	return &Observation{
		Base:  1000,
		Total: total,
		Threads: []ThreadObs{
			{TID: 0, Name: "main", Class: kernel.ClassApp, Start: 0, End: total},
			{TID: 1, Name: "worker", Class: kernel.ClassApp, Start: 0, End: total,
				C: cpu.Counters{Active: total, CritNS: workerNS}},
		},
	}
}

func TestMCritTakesSlowestThread(t *testing.T) {
	m := NewMCrit(Options{})
	obs := mkObs(1000, 600)
	// At 2 GHz: main predicts 500 (pure scaling wall time); worker
	// predicts 400/2+600 = 800. Critical thread: worker.
	if got := m.Predict(obs, 2000); got != 800 {
		t.Errorf("M+CRIT = %v, want 800", got)
	}
	// Down to 500 MHz: main predicts 2000 — the sleeping main thread
	// dominates, the misattribution the paper describes.
	if got := m.Predict(obs, 500); got != 2000 {
		t.Errorf("M+CRIT down = %v, want 2000", got)
	}
}

func TestMCritIdentity(t *testing.T) {
	m := NewMCrit(Options{})
	obs := mkObs(12345, 1000)
	if got := m.Predict(obs, obs.Base); got != 12345 {
		t.Errorf("identity = %v", got)
	}
}

// figure2Epochs builds the paper's Figure 2 scenario: t0 and t1 run in
// parallel; t1 blocks on t0's critical section; both resume after.
func figure2Epochs() []kernel.Epoch {
	act := func(tid kernel.ThreadID, active, ns units.Time) kernel.ThreadSlice {
		return kernel.ThreadSlice{TID: tid, Class: kernel.ClassApp,
			Delta: cpu.Counters{Active: active, CritNS: ns}}
	}
	return []kernel.Epoch{
		// Epoch a/x: both compute until t1 blocks on the lock.
		{Start: 0, End: 1000, EndKind: kernel.BoundarySleep, StallTID: 1,
			Slices: []kernel.ThreadSlice{act(0, 1000, 0), act(1, 1000, 0)}},
		// Epoch b: t0 alone in the critical section.
		{Start: 1000, End: 1800, EndKind: kernel.BoundaryWake, StallTID: kernel.NoThread,
			Slices: []kernel.ThreadSlice{act(0, 800, 0)}},
		// Epoch c/z: both compute to the end.
		{Start: 1800, End: 3000, EndKind: kernel.BoundaryExit, StallTID: 0,
			Slices: []kernel.ThreadSlice{act(0, 1200, 0), act(1, 1200, 0)}},
	}
}

func TestDEPFigure2PureScaling(t *testing.T) {
	// With everything scaling, halving frequency doubles each epoch.
	eps := figure2Epochs()
	got := PredictEpochs(eps, 1000, 500, Options{})
	if got != 6000 {
		t.Errorf("DEP on Figure 2 at half frequency = %v, want 6000", got)
	}
	// Identity.
	if got := PredictEpochs(eps, 1000, 1000, Options{}); got != 3000 {
		t.Errorf("identity = %v", got)
	}
}

// TestAcrossEpochCarriesSlack is the worked Algorithm 1 example: a thread
// that finishes its epoch work early (because its work is memory-bound and
// the target is faster) must absorb that slack when it becomes critical in
// the next epoch. Per-epoch CTP overestimates; across-epoch CTP is exact.
func TestAcrossEpochCarriesSlack(t *testing.T) {
	act := func(tid kernel.ThreadID, active, ns units.Time) kernel.ThreadSlice {
		return kernel.ThreadSlice{TID: tid,
			Delta: cpu.Counters{Active: active, CritNS: ns}}
	}
	// Both threads are fully active in both epochs at the base frequency
	// (as in Figure 2: differences only appear at the target). Thread t1
	// is memory-bound in epoch 1, t0 memory-bound in epoch 2.
	eps := []kernel.Epoch{
		{Start: 0, End: 2000, EndKind: kernel.BoundaryWake, StallTID: kernel.NoThread,
			Slices: []kernel.ThreadSlice{act(0, 2000, 0), act(1, 2000, 1600)}},
		{Start: 2000, End: 4000, EndKind: kernel.BoundaryExit, StallTID: 0,
			Slices: []kernel.ThreadSlice{act(0, 2000, 2000), act(1, 2000, 0)}},
	}
	// Identity: both CTP modes reproduce the measurement.
	if got := PredictEpochs(eps, 1000, 1000, Options{}); got != 4000 {
		t.Errorf("across-epoch identity = %v, want 4000", got)
	}
	if got := PredictEpochs(eps, 1000, 1000, Options{PerEpochCTP: true}); got != 4000 {
		t.Errorf("per-epoch identity = %v, want 4000", got)
	}

	// At 4 GHz:
	// Epoch 1: a_t0 = 2000/4 = 500; a_t1 = 400/4 + 1600 = 1700 -> I' =
	// 1700; t0 finished early, carrying 1200 of slack.
	// Epoch 2: a_t0 = 2000 (all memory); a_t1 = 500. Across-epoch knows
	// t0 effectively started its epoch-2 work 1200 early: e_t0 = 800 ->
	// I' = 800, total 2500. Per-epoch charges t0 in full: 1700 + 2000 =
	// 3700.
	across := PredictEpochs(eps, 1000, 4000, Options{})
	if across != 2500 {
		t.Errorf("across at 4GHz = %v, want 2500", across)
	}
	per := PredictEpochs(eps, 1000, 4000, Options{PerEpochCTP: true})
	if per != 3700 {
		t.Errorf("per-epoch at 4GHz = %v, want 3700", per)
	}
	if across >= per {
		t.Error("across-epoch CTP did not improve on per-epoch CTP")
	}
}

func TestStallResetDropsSlack(t *testing.T) {
	// Same shape as TestAcrossEpochCarriesSlack, but epoch 1 ends with
	// t0 going to sleep: Algorithm 1 line 9 resets t0's delta, so epoch 2
	// charges t0 in full and across-epoch matches per-epoch.
	act := func(tid kernel.ThreadID, active, ns units.Time) kernel.ThreadSlice {
		return kernel.ThreadSlice{TID: tid,
			Delta: cpu.Counters{Active: active, CritNS: ns}}
	}
	eps := []kernel.Epoch{
		{Start: 0, End: 2000, EndKind: kernel.BoundarySleep, StallTID: 0,
			Slices: []kernel.ThreadSlice{act(0, 2000, 0), act(1, 2000, 1600)}},
		{Start: 2000, End: 4000, EndKind: kernel.BoundaryExit, StallTID: 0,
			Slices: []kernel.ThreadSlice{act(0, 2000, 2000), act(1, 2000, 0)}},
	}
	got := PredictEpochs(eps, 1000, 4000, Options{})
	if got != 3700 {
		t.Errorf("with stall reset = %v, want 3700", got)
	}
}

func TestIdleEpochsDoNotScale(t *testing.T) {
	eps := []kernel.Epoch{
		{Start: 0, End: 5000}, // no slices: all cores idle
	}
	for _, target := range []units.Freq{500, 1000, 4000} {
		if got := PredictEpochs(eps, 1000, target, Options{}); got != 5000 {
			t.Errorf("idle epoch at %v = %v, want 5000", target, got)
		}
	}
}

func TestPredictAggregate(t *testing.T) {
	c := cpu.Counters{Active: 1000, CritNS: 400, SQFull: 100}
	if got := PredictAggregate(c, 1000, 2000, Options{}); got != 700 {
		t.Errorf("aggregate = %v, want 700", got)
	}
	if got := PredictAggregate(c, 1000, 2000, Options{Burst: true}); got != 750 {
		t.Errorf("aggregate burst = %v, want 750", got)
	}
}

func TestBurstMovesSQFull(t *testing.T) {
	act := kernel.ThreadSlice{TID: 0,
		Delta: cpu.Counters{Active: 1000, CritNS: 200, SQFull: 300}}
	eps := []kernel.Epoch{{Start: 0, End: 1000, Slices: []kernel.ThreadSlice{act}}}
	// Without BURST at 2 GHz: (1000-200)/2 + 200 = 600.
	if got := PredictEpochs(eps, 1000, 2000, Options{}); got != 600 {
		t.Errorf("no burst = %v", got)
	}
	// With BURST: (1000-500)/2 + 500 = 750.
	if got := PredictEpochs(eps, 1000, 2000, Options{Burst: true}); got != 750 {
		t.Errorf("burst = %v", got)
	}
}

func TestCOOPPhaseSplit(t *testing.T) {
	// One app phase [0,1000], one GC phase [1000,1500], one app phase
	// [1500,2500]. The GC phase is driven by a service thread.
	app := ThreadObs{TID: 0, Class: kernel.ClassApp, Start: 0, End: 2500,
		C: cpu.Counters{Active: 2000}}
	gc := ThreadObs{TID: 1, Class: kernel.ClassService, Start: 0, End: 2500,
		C: cpu.Counters{Active: 500, CritNS: 400}}
	obs := &Observation{
		Base:    1000,
		Total:   2500,
		Threads: []ThreadObs{app, gc},
		Marks: []kernel.Mark{
			{At: 1000, Label: "gc-start"},
			{At: 1500, Label: "gc-end"},
		},
		Epochs: []kernel.Epoch{
			{Start: 0, End: 1000, Slices: []kernel.ThreadSlice{
				{TID: 0, Class: kernel.ClassApp, Delta: cpu.Counters{Active: 1000}}}},
			{Start: 1000, End: 1500, Slices: []kernel.ThreadSlice{
				{TID: 1, Class: kernel.ClassService, Delta: cpu.Counters{Active: 500, CritNS: 400}}}},
			{Start: 1500, End: 2500, Slices: []kernel.ThreadSlice{
				{TID: 0, Class: kernel.ClassApp, Delta: cpu.Counters{Active: 1000}}}},
		},
	}
	m := NewCOOP(Options{})
	// At 2 GHz: app phases scale (500 + 1000/2 = 500+500); GC phase:
	// service thread, duration 500 with 400 NS -> 100/2+400 = 450.
	want := units.Time(500 + 450 + 500)
	if got := m.Predict(obs, 2000); got != want {
		t.Errorf("COOP = %v, want %v", got, want)
	}
	// Identity.
	if got := m.Predict(obs, 1000); got != 2500 {
		t.Errorf("COOP identity = %v", got)
	}
	// M+CRIT on the same observation cannot separate the phases: the GC
	// thread's wall time is the whole run, so its prediction at 2 GHz is
	// (2500-400)/2+400 = 1450; app thread: 2500/2=1250. Max = 1450 —
	// less than COOP's 1450? M+CRIT picks 1450, COOP 1450... both
	// predict the same number here, but COOP is *correct* (actual would
	// be 1450 only if phases overlap fully). The structural difference
	// is exercised by the integration tests; here we just pin the math.
	mc := NewMCrit(Options{})
	if got := mc.Predict(obs, 2000); got != 1450 {
		t.Errorf("M+CRIT = %v, want 1450", got)
	}
}

func TestDEPEmptyEpochs(t *testing.T) {
	if got := PredictEpochs(nil, 1000, 2000, Options{}); got != 0 {
		t.Errorf("empty epoch stream = %v", got)
	}
}
