package core

import (
	"fmt"

	"depburst/internal/units"
)

// Regression is the related-work baseline family the paper contrasts with
// (§VII-A): instead of analytical counters, fit the two-component law
// T(f) = S·f0/f + N offline from measured runs at two or more training
// frequencies, then interpolate/extrapolate. It needs no special hardware
// counters but one extra profiling run per application — exactly the
// trade-off the paper describes.
//
// Regression sees only total execution times, so unlike DEP it cannot
// react to phase behaviour or epoch structure; its accuracy depends
// entirely on how stationary the workload is between runs.
type Regression struct {
	// scaling and nonScaling are the fitted components, normalised to
	// refFreq.
	scaling    float64
	nonScaling float64
	refFreq    units.Freq
}

// TrainingPoint is one measured (frequency, execution time) observation.
type TrainingPoint struct {
	Freq units.Freq
	Time units.Time
}

// FitRegression least-squares fits the two-component DVFS law to measured
// points. At least two distinct frequencies are required.
func FitRegression(points []TrainingPoint) (*Regression, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("core: regression needs >= 2 training points, got %d", len(points))
	}
	ref := points[0].Freq
	if ref <= 0 {
		return nil, fmt.Errorf("core: non-positive training frequency")
	}
	// Model: T = S*(ref/f) + N. Linear least squares in x = ref/f.
	var sx, sy, sxx, sxy float64
	distinct := false
	for _, p := range points {
		if p.Freq <= 0 || p.Time < 0 {
			return nil, fmt.Errorf("core: invalid training point %+v", p)
		}
		if p.Freq != ref {
			distinct = true
		}
		x := float64(ref) / float64(p.Freq)
		y := float64(p.Time)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	if !distinct {
		return nil, fmt.Errorf("core: training points share one frequency")
	}
	n := float64(len(points))
	den := n*sxx - sx*sx
	if den == 0 {
		return nil, fmt.Errorf("core: degenerate training set")
	}
	s := (n*sxy - sx*sy) / den
	b := (sy - s*sx) / n
	return &Regression{scaling: s, nonScaling: b, refFreq: ref}, nil
}

// FitRegressionNonneg fits the same two-component law with both components
// projected onto S >= 0, N >= 0. The unconstrained least-squares fit can go
// negative on noisy or near-flat training sets, and a negative component
// breaks the physical reading of the law — and, downstream, the guarantee
// that predicted time never decreases as frequency drops. The projection
// picks the best single-component fit when a component is clamped:
// S < 0 collapses to the constant N = mean(T); N < 0 to the pure-scaling
// S = Σ(x·T)/Σx².
func FitRegressionNonneg(points []TrainingPoint) (*Regression, error) {
	r, err := FitRegression(points)
	if err != nil {
		return nil, err
	}
	if r.scaling >= 0 && r.nonScaling >= 0 {
		return r, nil
	}
	var sy, sxx, sxy float64
	for _, p := range points {
		x := float64(r.refFreq) / float64(p.Freq)
		y := float64(p.Time)
		sy += y
		sxx += x * x
		sxy += x * y
	}
	if r.scaling < 0 {
		r.scaling = 0
		r.nonScaling = sy / float64(len(points))
		return r, nil
	}
	r.nonScaling = 0
	r.scaling = sxy / sxx // sxx > 0: FitRegression rejected non-positive freqs
	return r, nil
}

// Name implements Model.
func (r *Regression) Name() string { return "REGRESSION" }

// Components returns the fitted scaling and non-scaling times at the
// reference frequency (diagnostics; the non-scaling part may be negative
// if the training runs were noisy).
func (r *Regression) Components() (scaling, nonScaling units.Time, ref units.Freq) {
	return units.Time(r.scaling), units.Time(r.nonScaling), r.refFreq
}

// Predict implements Model. The observation is ignored: a regression
// model's knowledge lives entirely in its training points.
func (r *Regression) Predict(_ *Observation, target units.Freq) units.Time {
	if target <= 0 {
		return 0
	}
	t := r.scaling*float64(r.refFreq)/float64(target) + r.nonScaling
	if t < 0 {
		t = 0
	}
	return units.Time(t)
}
