package core

import (
	"testing"

	"depburst/internal/cpu"
	"depburst/internal/kernel"
	"depburst/internal/units"
)

// FuzzPredictEpochs feeds arbitrary (but well-formed) epoch streams to the
// DEP aggregation and checks its safety invariants: non-negative
// predictions, exact identity at the base frequency for fully-active
// epochs, and per-epoch >= across-epoch never being violated by more than
// the carried slack allows (predictions stay finite and ordered with
// frequency).
func FuzzPredictEpochs(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint16(2000), uint16(500), false)
	f.Add(uint64(9), uint8(8), uint16(100), uint16(100), true)
	f.Fuzz(func(t *testing.T, seed uint64, nEpochs uint8, durRaw, nsRaw uint16, burst bool) {
		n := int(nEpochs%12) + 1
		var epochs []kernel.Epoch
		var at units.Time
		s := seed
		next := func(mod int64) int64 {
			s = s*6364136223846793005 + 1442695040888963407
			v := int64(s>>33) % mod
			if v < 0 {
				v = -v
			}
			return v
		}
		for i := 0; i < n; i++ {
			dur := units.Time(durRaw%5000) + units.Time(next(3000)) + 1
			var slices []kernel.ThreadSlice
			for tid := 0; tid < int(next(4))+1; tid++ {
				ns := units.Time(nsRaw) % dur
				slices = append(slices, kernel.ThreadSlice{
					TID: kernel.ThreadID(tid),
					Delta: cpu.Counters{
						Active: dur,
						CritNS: ns,
						SQFull: units.Time(next(int64(dur))),
					},
				})
			}
			stall := kernel.NoThread
			if next(2) == 1 {
				stall = kernel.ThreadID(next(4))
			}
			epochs = append(epochs, kernel.Epoch{
				Start: at, End: at + dur, StallTID: stall, Slices: slices,
			})
			at += dur
		}

		opts := Options{Burst: burst}
		for _, target := range []units.Freq{500, 1000, 2000, 4000} {
			across := PredictEpochs(epochs, 1000, target, opts)
			per := PredictEpochs(epochs, 1000, target, Options{Burst: burst, PerEpochCTP: true})
			if across < 0 || per < 0 {
				t.Fatalf("negative prediction: across=%v per=%v", across, per)
			}
			if across > per {
				t.Fatalf("across-epoch (%v) exceeded per-epoch (%v): slack can only shrink epochs", across, per)
			}
		}

		// Identity: every epoch is fully active, so the prediction at
		// the base frequency must equal the measured duration exactly.
		total := at
		if got := PredictEpochs(epochs, 1000, 1000, opts); got != total {
			t.Fatalf("identity broken: predicted %v, measured %v", got, total)
		}
	})
}
