package core

import (
	"depburst/internal/kernel"
	"depburst/internal/units"
)

// EpochBreakdown decomposes one epoch's DEP prediction at the target
// frequency into the components the model reasons about: the critical
// thread's frequency-scaling pipeline time, its non-scaling memory time
// (the engine's CRIT/LL/STALL estimate), its non-scaling store-burst time
// (the +BURST addend), and an idle remainder.
//
// The components satisfy Pipeline + Memory + Burst + Idle == Pred for
// every epoch, so the whole-stream sums decompose the total prediction
// exactly. In across-epoch mode Idle folds in the slack carried by
// Algorithm 1's delta counters and may be negative for a single epoch
// (the critical thread absorbed wait time banked earlier); for an idle
// epoch (no thread ran) the full duration lands in Idle.
type EpochBreakdown struct {
	Start  units.Time // epoch start (base-frequency timeline)
	Dur    units.Time // measured duration at the base frequency
	Pred   units.Time // predicted duration at the target frequency
	Instrs int64      // instructions committed by all threads in the epoch

	Pipeline units.Time // scaling component, rescaled to target
	Memory   units.Time // non-scaling engine component (CRIT/LL/STALL)
	Burst    units.Time // non-scaling store-queue-full component
	Idle     units.Time // remainder: idle epochs and carried slack
}

// SumBreakdownEpochs aggregates BreakdownEpochs' component attribution
// without materialising per-epoch entries: the summed pipeline, memory,
// burst and idle components and the total prediction over the epoch
// slice. It always uses per-epoch critical-thread prediction (o.PerEpochCTP
// is forced), which needs no across-epoch delta state — the function is
// allocation-free, so the sampling detector can fingerprint every quantum
// from it on the per-quantum hot path.
func SumBreakdownEpochs(epochs []kernel.Epoch, base, target units.Freq, o Options) (pipeline, memory, burst, idle, pred units.Time) {
	o.PerEpochCTP = true
	for i := range epochs {
		ep := &epochs[i]
		if len(ep.Slices) == 0 {
			d := ep.Duration()
			idle += d
			pred += d
			continue
		}
		var iPrime units.Time
		var crit kernel.ThreadSlice
		first := true
		for _, sl := range ep.Slices {
			e := predictThread(sl.Delta.Active, sl.Delta, o, base, target)
			if first || e > iPrime {
				iPrime = e
				crit = sl
				first = false
			}
		}
		if iPrime < 0 {
			iPrime = 0
		}
		ns := nonScaling(crit.Delta, crit.Delta.Active, o)
		m := ns
		if o.Burst {
			m = nonScaling(crit.Delta, crit.Delta.Active, Options{Engine: o.Engine})
			burst += ns - m
		}
		memory += m
		p := scaleTime(crit.Delta.Active-ns, base, target)
		pipeline += p
		pred += iPrime
		idle += iPrime - (p + m + (ns - m))
	}
	return pipeline, memory, burst, idle, pred
}

// BreakdownEpochs runs the same aggregation as PredictEpochs but keeps
// per-epoch component attributions instead of only the total. The sum of
// the returned Pred fields equals PredictEpochs on the same inputs.
func BreakdownEpochs(epochs []kernel.Epoch, base, target units.Freq, o Options) []EpochBreakdown {
	out := make([]EpochBreakdown, 0, len(epochs))
	delta := make(map[kernel.ThreadID]units.Time)
	for i := range epochs {
		ep := &epochs[i]
		b := EpochBreakdown{Start: ep.Start, Dur: ep.Duration()}
		for _, sl := range ep.Slices {
			b.Instrs += sl.Delta.Instrs
		}
		if len(ep.Slices) == 0 {
			// Idle epoch: scheduler/timer time that does not scale.
			b.Pred = ep.Duration()
			b.Idle = b.Pred
			out = append(out, b)
			continue
		}

		// Critical-thread selection mirrors predictPerEpoch /
		// predictAcrossEpochs: the largest (slack-adjusted) estimate wins.
		var iPrime units.Time
		var crit kernel.ThreadSlice
		first := true
		for _, sl := range ep.Slices {
			a := predictThread(sl.Delta.Active, sl.Delta, o, base, target)
			e := a
			if !o.PerEpochCTP {
				e -= delta[sl.TID]
			}
			if first || e > iPrime {
				iPrime = e
				crit = sl
				first = false
			}
		}
		if iPrime < 0 {
			iPrime = 0
		}

		// Attribute the critical thread's two-component split, then let
		// Idle carry whatever slack adjustment moved Pred off the raw
		// estimate so the components always sum to Pred.
		ns := nonScaling(crit.Delta, crit.Delta.Active, o)
		mem := ns
		if o.Burst {
			mem = nonScaling(crit.Delta, crit.Delta.Active, Options{Engine: o.Engine})
			b.Burst = ns - mem
		}
		b.Memory = mem
		b.Pipeline = scaleTime(crit.Delta.Active-ns, base, target)
		b.Pred = iPrime
		b.Idle = iPrime - (b.Pipeline + b.Memory + b.Burst)
		out = append(out, b)

		if !o.PerEpochCTP {
			for _, sl := range ep.Slices {
				a := predictThread(sl.Delta.Active, sl.Delta, o, base, target)
				delta[sl.TID] += iPrime - a
			}
			if ep.StallTID != kernel.NoThread {
				delta[ep.StallTID] = 0
			}
		}
	}
	return out
}
