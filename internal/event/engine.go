// Package event implements the discrete-event simulation engine.
//
// The engine maintains a priority queue of timestamped callbacks. Events at
// equal timestamps fire in the order they were scheduled (FIFO via a
// monotonically increasing sequence number), which makes simulations
// deterministic: the same schedule of calls always produces the same
// execution order.
package event

import (
	"container/heap"

	"depburst/internal/units"
)

// Func is an event callback. It receives the current simulated time.
type Func func(now units.Time)

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	seq uint64
}

type item struct {
	at     units.Time
	seq    uint64
	fn     Func
	cancel bool
	index  int
}

type queue []*item

func (q queue) Len() int { return len(q) }

func (q queue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q queue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *queue) Push(x any) {
	it := x.(*item)
	it.index = len(*q)
	*q = append(*q, it)
}

func (q *queue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Engine is a discrete-event simulator clock and queue. The zero value is
// ready to use at time 0.
type Engine struct {
	now     units.Time
	nextSeq uint64
	q       queue
	byseq   map[uint64]*item
	stopped bool
}

// New returns an engine starting at time 0.
func New() *Engine {
	return &Engine{byseq: make(map[uint64]*item)}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Schedule registers fn to run at time at. Scheduling in the past (before
// Now) panics: it would silently reorder causality.
func (e *Engine) Schedule(at units.Time, fn Func) Handle {
	if at < e.now {
		panic("event: scheduling in the past")
	}
	if e.byseq == nil {
		e.byseq = make(map[uint64]*item)
	}
	it := &item{at: at, seq: e.nextSeq, fn: fn}
	e.nextSeq++
	heap.Push(&e.q, it)
	e.byseq[it.seq] = it
	return Handle{seq: it.seq}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d units.Time, fn Func) Handle {
	return e.Schedule(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (e *Engine) Cancel(h Handle) {
	if it, ok := e.byseq[h.seq]; ok {
		it.cancel = true
		delete(e.byseq, h.seq)
	}
}

// Pending reports the number of live (non-cancelled) events in the queue.
func (e *Engine) Pending() int { return len(e.byseq) }

// Step fires the earliest pending event and returns true, or returns false
// if the queue is empty.
func (e *Engine) Step() bool {
	for e.q.Len() > 0 {
		it := heap.Pop(&e.q).(*item)
		if it.cancel {
			continue
		}
		delete(e.byseq, it.seq)
		e.now = it.at
		it.fn(e.now)
		return true
	}
	return false
}

// Run fires events until the queue drains or Stop is called. It returns the
// final simulated time.
func (e *Engine) Run() units.Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline. Events scheduled later
// remain queued. It returns the final simulated time, which never exceeds
// the deadline.
func (e *Engine) RunUntil(deadline units.Time) units.Time {
	e.stopped = false
	for !e.stopped {
		// Peek for the next live event.
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Stop makes Run or RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) peek() (units.Time, bool) {
	for e.q.Len() > 0 {
		if e.q[0].cancel {
			heap.Pop(&e.q)
			continue
		}
		return e.q[0].at, true
	}
	return 0, false
}
