// Package event implements the discrete-event simulation engine.
//
// The engine maintains a priority queue of timestamped callbacks. Events at
// equal timestamps fire in the order they were scheduled (FIFO via a
// monotonically increasing sequence number), which makes simulations
// deterministic: the same schedule of calls always produces the same
// execution order.
//
// The queue is allocation-free in steady state: fired and cancelled event
// nodes return to a free list and are reused by later Schedule calls, and
// cancellation marks the node in place (the heap drops it lazily) instead of
// touching any auxiliary index.
package event

import (
	"depburst/internal/units"
)

// Func is an event callback. It receives the current simulated time.
type Func func(now units.Time)

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is inert: cancelling it is a no-op.
type Handle struct {
	it  *item
	seq uint64
}

// item is one queue node. Nodes are pooled: after firing or lazy removal
// they go back to the engine's free list and are reissued with a fresh
// sequence number, which is what invalidates stale Handles.
type item struct {
	at     units.Time
	seq    uint64
	fn     Func
	index  int // heap position; -1 when not queued
	cancel bool
}

// Engine is a discrete-event simulator clock and queue. The zero value is
// ready to use at time 0.
type Engine struct {
	now     units.Time
	nextSeq uint64
	q       []*item
	free    []*item
	live    int // scheduled and not cancelled
	stopped bool
}

// New returns an engine starting at time 0.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Schedule registers fn to run at time at. Scheduling in the past (before
// Now) panics: it would silently reorder causality.
//
//depburst:hotpath
func (e *Engine) Schedule(at units.Time, fn Func) Handle {
	if at < e.now {
		panic("event: scheduling in the past")
	}
	var it *item
	if n := len(e.free); n > 0 {
		it = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		it = &item{} //depburst:allow hotpath -- cold path: the free list feeds steady state; nodes are minted only while the queue still grows
	}
	e.nextSeq++ // pre-increment: seq 0 stays reserved for the inert zero Handle
	it.at, it.seq, it.fn, it.cancel = at, e.nextSeq, fn, false
	e.push(it)
	e.live++
	return Handle{it: it, seq: it.seq}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d units.Time, fn Func) Handle {
	return e.Schedule(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op. The node stays in the
// heap and is dropped lazily when it reaches the front.
func (e *Engine) Cancel(h Handle) {
	it := h.it
	if it == nil || it.seq != h.seq || it.index < 0 || it.cancel {
		return
	}
	it.cancel = true
	it.fn = nil // release the closure now; the node may linger in the heap
	e.live--
}

// Pending reports the number of live (non-cancelled) events in the queue.
func (e *Engine) Pending() int { return e.live }

// Step fires the earliest pending event and returns true, or returns false
// if the queue is empty.
//
//depburst:hotpath
func (e *Engine) Step() bool {
	for len(e.q) > 0 {
		it := e.pop()
		if it.cancel {
			e.recycle(it)
			continue
		}
		e.live--
		e.now = it.at
		fn := it.fn
		// Recycle before running: the callback may Schedule and legally
		// reuse this node (its new seq invalidates old Handles).
		e.recycle(it)
		fn(e.now)
		return true
	}
	return false
}

// Run fires events until the queue drains or Stop is called. It returns the
// final simulated time.
func (e *Engine) Run() units.Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline. Events scheduled later
// remain queued. It returns the final simulated time, which never exceeds
// the deadline.
//
//depburst:hotpath
func (e *Engine) RunUntil(deadline units.Time) units.Time {
	e.stopped = false
	for !e.stopped {
		// Peek for the next live event.
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Stop makes Run or RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) peek() (units.Time, bool) {
	for len(e.q) > 0 {
		if e.q[0].cancel {
			e.recycle(e.pop())
			continue
		}
		return e.q[0].at, true
	}
	return 0, false
}

func (e *Engine) recycle(it *item) {
	it.fn = nil
	it.index = -1
	e.free = append(e.free, it)
}

// less orders the heap by (time, schedule order).
func (e *Engine) less(a, b *item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts it into the heap (manual sift-up: avoids container/heap's
// interface boxing on the simulator's hottest path).
func (e *Engine) push(it *item) {
	e.q = append(e.q, it)
	i := len(e.q) - 1
	it.index = i
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(e.q[i], e.q[parent]) {
			break
		}
		e.swap(i, parent)
		i = parent
	}
}

// pop removes and returns the heap minimum.
func (e *Engine) pop() *item {
	q := e.q
	it := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[0].index = 0
	q[n] = nil
	e.q = q[:n]
	e.down(0)
	it.index = -1
	return it
}

func (e *Engine) down(i int) {
	q := e.q
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && e.less(q[r], q[l]) {
			least = r
		}
		if !e.less(q[least], q[i]) {
			return
		}
		e.swap(i, least)
		i = least
	}
}

func (e *Engine) swap(i, j int) {
	q := e.q
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
