package event

import (
	"testing"

	"depburst/internal/units"
)

func TestOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30, func(units.Time) { order = append(order, 3) })
	e.Schedule(10, func(units.Time) { order = append(order, 1) })
	e.Schedule(20, func(units.Time) { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("end time %v, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order %v", order)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func(units.Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of schedule order: %v", order)
		}
	}
}

func TestScheduleFromCallback(t *testing.T) {
	e := New()
	var fired []units.Time
	e.Schedule(10, func(now units.Time) {
		fired = append(fired, now)
		e.Schedule(now+5, func(now units.Time) { fired = append(fired, now) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Errorf("fired %v", fired)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	ran := false
	h := e.Schedule(10, func(units.Time) { ran = true })
	e.Cancel(h)
	e.Run()
	if ran {
		t.Error("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d", e.Pending())
	}
	// Double cancel is a no-op.
	e.Cancel(h)
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func(units.Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func(units.Time) {})
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []units.Time
	for _, at := range []units.Time{5, 15, 25} {
		at := at
		e.Schedule(at, func(now units.Time) { fired = append(fired, now) })
	}
	end := e.RunUntil(20)
	if end != 20 {
		t.Errorf("RunUntil end = %v", end)
	}
	if len(fired) != 2 {
		t.Errorf("fired %v, want events at 5 and 15 only", fired)
	}
	e.Run()
	if len(fired) != 3 {
		t.Errorf("remaining event lost: %v", fired)
	}
}

func TestStop(t *testing.T) {
	e := New()
	n := 0
	e.Schedule(1, func(units.Time) { n++; e.Stop() })
	e.Schedule(2, func(units.Time) { n++ })
	e.Run()
	if n != 1 {
		t.Errorf("Stop did not halt the loop: n=%d", n)
	}
	e.Run() // resume
	if n != 2 {
		t.Errorf("second Run did not drain: n=%d", n)
	}
}

func TestAfter(t *testing.T) {
	e := New()
	e.Schedule(100, func(now units.Time) {
		e.After(7, func(at units.Time) {
			if at != 107 {
				t.Errorf("After fired at %v", at)
			}
		})
	})
	e.Run()
}

func TestCancelInterleavedWithPeek(t *testing.T) {
	e := New()
	h := e.Schedule(10, func(units.Time) { t.Error("cancelled fired") })
	e.Schedule(20, func(units.Time) {})
	e.Cancel(h)
	if end := e.RunUntil(30); end != 30 {
		t.Errorf("end %v", end)
	}
}

func TestZeroHandleCancelInert(t *testing.T) {
	e := New()
	ran := false
	e.Schedule(10, func(units.Time) { ran = true })
	e.Cancel(Handle{}) // must not cancel anything
	e.Run()
	if !ran {
		t.Error("zero-Handle Cancel cancelled a live event")
	}
}

func TestStaleHandleAfterRecycle(t *testing.T) {
	// A Handle to a fired event must stay inert even after its node is
	// recycled into a new event: cancelling the stale handle must not
	// cancel the new occupant.
	e := New()
	h := e.Schedule(10, func(units.Time) {})
	e.Run() // fires; node goes to the free list
	ran := false
	e.Schedule(20, func(units.Time) { ran = true }) // reuses the node
	e.Cancel(h)                                     // stale: seq mismatch
	e.Run()
	if !ran {
		t.Error("stale handle cancelled a recycled event")
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestCancelFromOwnCallback(t *testing.T) {
	// Cancelling your own (already firing) handle must be a no-op, even
	// though the node was recycled just before the callback ran.
	e := New()
	var h Handle
	fired := 0
	h = e.Schedule(5, func(units.Time) {
		fired++
		e.Cancel(h)
	})
	later := false
	e.Schedule(10, func(units.Time) { later = true })
	e.Run()
	if fired != 1 || !later {
		t.Errorf("fired=%d later=%v", fired, later)
	}
}

func TestPendingAcrossCancelAndRecycle(t *testing.T) {
	e := New()
	hs := make([]Handle, 10)
	for i := range hs {
		hs[i] = e.Schedule(units.Time(10+i), func(units.Time) {})
	}
	if e.Pending() != 10 {
		t.Fatalf("pending = %d, want 10", e.Pending())
	}
	for _, h := range hs[:5] {
		e.Cancel(h)
		e.Cancel(h) // double cancel must not double-decrement
	}
	if e.Pending() != 5 {
		t.Fatalf("pending after cancels = %d, want 5", e.Pending())
	}
	for e.Step() {
	}
	if e.Pending() != 0 {
		t.Errorf("pending after drain = %d", e.Pending())
	}
}

func TestHeapOrderRandomised(t *testing.T) {
	// Cross-check the hand-rolled heap against a straight sort over a
	// deterministic pseudo-random schedule with many timestamp ties.
	e := New()
	const n = 2000
	x := uint64(0x9E3779B97F4A7C15)
	want := make([]units.Time, 0, n)
	got := make([]units.Time, 0, n)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		at := units.Time(x % 64) // heavy ties exercise FIFO tie-break
		want = append(want, at)
		e.Schedule(at, func(now units.Time) { got = append(got, now) })
	}
	e.Run()
	// The fired order must be a stable sort of the scheduled order.
	stable := make([]units.Time, len(want))
	copy(stable, want)
	for i := 1; i < len(stable); i++ { // insertion sort = stable
		for j := i; j > 0 && stable[j] < stable[j-1]; j-- {
			stable[j], stable[j-1] = stable[j-1], stable[j]
		}
	}
	for i := range stable {
		if got[i] != stable[i] {
			t.Fatalf("fire order diverges at %d: got %v want %v", i, got[i], stable[i])
		}
	}
}
