package event

import (
	"testing"

	"depburst/internal/units"
)

func TestOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30, func(units.Time) { order = append(order, 3) })
	e.Schedule(10, func(units.Time) { order = append(order, 1) })
	e.Schedule(20, func(units.Time) { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("end time %v, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order %v", order)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func(units.Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of schedule order: %v", order)
		}
	}
}

func TestScheduleFromCallback(t *testing.T) {
	e := New()
	var fired []units.Time
	e.Schedule(10, func(now units.Time) {
		fired = append(fired, now)
		e.Schedule(now+5, func(now units.Time) { fired = append(fired, now) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Errorf("fired %v", fired)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	ran := false
	h := e.Schedule(10, func(units.Time) { ran = true })
	e.Cancel(h)
	e.Run()
	if ran {
		t.Error("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d", e.Pending())
	}
	// Double cancel is a no-op.
	e.Cancel(h)
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func(units.Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func(units.Time) {})
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []units.Time
	for _, at := range []units.Time{5, 15, 25} {
		at := at
		e.Schedule(at, func(now units.Time) { fired = append(fired, now) })
	}
	end := e.RunUntil(20)
	if end != 20 {
		t.Errorf("RunUntil end = %v", end)
	}
	if len(fired) != 2 {
		t.Errorf("fired %v, want events at 5 and 15 only", fired)
	}
	e.Run()
	if len(fired) != 3 {
		t.Errorf("remaining event lost: %v", fired)
	}
}

func TestStop(t *testing.T) {
	e := New()
	n := 0
	e.Schedule(1, func(units.Time) { n++; e.Stop() })
	e.Schedule(2, func(units.Time) { n++ })
	e.Run()
	if n != 1 {
		t.Errorf("Stop did not halt the loop: n=%d", n)
	}
	e.Run() // resume
	if n != 2 {
		t.Errorf("second Run did not drain: n=%d", n)
	}
}

func TestAfter(t *testing.T) {
	e := New()
	e.Schedule(100, func(now units.Time) {
		e.After(7, func(at units.Time) {
			if at != 107 {
				t.Errorf("After fired at %v", at)
			}
		})
	})
	e.Run()
}

func TestCancelInterleavedWithPeek(t *testing.T) {
	e := New()
	h := e.Schedule(10, func(units.Time) { t.Error("cancelled fired") })
	e.Schedule(20, func(units.Time) {})
	e.Cancel(h)
	if end := e.RunUntil(30); end != 30 {
		t.Errorf("end %v", end)
	}
}
