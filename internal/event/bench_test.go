package event

import (
	"testing"

	"depburst/internal/units"
)

// BenchmarkScheduleStep measures the steady-state cost of one event life
// cycle (Schedule + heap pop + dispatch) with a warm free list — the
// simulator's innermost loop.
func BenchmarkScheduleStep(b *testing.B) {
	e := New()
	fn := Func(func(units.Time) {})
	// Warm the free list and heap capacity.
	for i := 0; i < 64; i++ {
		e.Schedule(units.Time(i), fn)
	}
	for e.Step() {
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+1, fn)
		e.Step()
	}
}

// BenchmarkScheduleStepDepth64 keeps 64 events in flight, the regime the
// kernel scheduler operates in (one timer per runnable thread plus quantum
// ticks).
func BenchmarkScheduleStepDepth64(b *testing.B) {
	e := New()
	fn := Func(func(units.Time) {})
	for i := 0; i < 64; i++ {
		e.Schedule(units.Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+64, fn)
		e.Step()
	}
}

// BenchmarkScheduleCancel measures schedule-then-cancel churn (timed waits
// that are almost always woken early follow this path).
func BenchmarkScheduleCancel(b *testing.B) {
	e := New()
	fn := Func(func(units.Time) {})
	keep := e.Schedule(1<<40, fn) // floor event so the heap never empties
	_ = keep
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := e.Schedule(e.Now()+100, fn)
		e.Cancel(h)
		if i&63 == 63 {
			e.peek() // lazily drain the cancelled backlog
		}
	}
}

// TestScheduleStepZeroAllocs locks in the free-list optimisation: once the
// engine is warm, an event life cycle performs no heap allocation.
func TestScheduleStepZeroAllocs(t *testing.T) {
	e := New()
	fn := Func(func(units.Time) {})
	for i := 0; i < 64; i++ {
		e.Schedule(units.Time(i), fn)
	}
	for e.Step() {
	}
	avg := testing.AllocsPerRun(1000, func() {
		e.Schedule(e.Now()+1, fn)
		e.Step()
	})
	if avg != 0 {
		t.Errorf("Schedule+Step allocates %.2f objects/op in steady state, want 0", avg)
	}
}

// TestRunUntilZeroAllocs guards the whole drain loop — RunUntil and the
// push/pop heap machinery under it are //depburst:hotpath roots, and once
// the free list is warm a full schedule-and-drain cycle must stay on it.
func TestRunUntilZeroAllocs(t *testing.T) {
	e := New()
	fn := Func(func(units.Time) {})
	for i := 0; i < 64; i++ {
		e.Schedule(units.Time(1+i), fn)
	}
	e.RunUntil(1 << 20)
	avg := testing.AllocsPerRun(1000, func() {
		base := e.Now()
		for i := 0; i < 8; i++ {
			e.Schedule(base+units.Time(1+i), fn)
		}
		e.RunUntil(base + 16)
	})
	if avg != 0 {
		t.Errorf("RunUntil drain allocates %.2f objects/op in steady state, want 0", avg)
	}
}

// TestCancelZeroAllocs: cancellation must not allocate (the old engine paid
// a map delete; the new one flips a flag).
func TestCancelZeroAllocs(t *testing.T) {
	e := New()
	fn := Func(func(units.Time) {})
	// Warm free list beyond the churn this test generates.
	hs := make([]Handle, 128)
	for i := range hs {
		hs[i] = e.Schedule(units.Time(1+i), fn)
	}
	for e.Step() {
	}
	avg := testing.AllocsPerRun(100, func() {
		h := e.Schedule(e.Now()+10, fn)
		e.Cancel(h)
		e.peek()
	})
	if avg != 0 {
		t.Errorf("Schedule+Cancel allocates %.2f objects/op in steady state, want 0", avg)
	}
}
