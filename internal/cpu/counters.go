// Package cpu models an out-of-order superscalar core at the interval-model
// abstraction level (the same abstraction the Sniper simulator uses): the
// core dispatches instructions at a steady rate until a long-latency event
// — a cluster of cache misses or a full store queue — stalls commit.
//
// Alongside ground-truth timing, each core maintains the per-thread hardware
// counters that the paper's DVFS predictors require: the CRIT critical-path
// counter, the Leading Loads counter, the Stall Time counter, and the
// store-queue-full counter introduced for BURST.
package cpu

import "depburst/internal/units"

// Counters is the set of per-thread performance counters the predictors
// consume. The simulated core accumulates into the counters of whichever
// thread currently runs on it; the kernel snapshots them at epoch and
// quantum boundaries.
type Counters struct {
	// Instrs is the number of committed instructions.
	Instrs int64

	// Active is the wall-clock time this thread was scheduled on a core.
	// The kernel maintains it; the core model never touches it.
	Active units.Time

	// CritNS is the CRIT non-scaling estimate: the accumulated critical
	// path latency through each in-ROB cluster of long-latency loads.
	CritNS units.Time

	// LeadNS is the Leading Loads non-scaling estimate: the full latency
	// of the leading load of each miss cluster.
	LeadNS units.Time

	// StallNS is the Stall Time non-scaling estimate: time commit was
	// blocked on a memory access (underestimates, per the paper).
	StallNS units.Time

	// SQFull is the time commit was stalled because the store queue was
	// full and the next instruction to commit was a store. BURST adds
	// this to the non-scaling component.
	SQFull units.Time

	// Demand-load hit distribution.
	LoadsL1, LoadsL2, LoadsL3, LoadsDRAM uint64

	// Stores committed, and how many drained all the way to DRAM.
	Stores, StoresDRAM uint64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Instrs += o.Instrs
	c.Active += o.Active
	c.CritNS += o.CritNS
	c.LeadNS += o.LeadNS
	c.StallNS += o.StallNS
	c.SQFull += o.SQFull
	c.LoadsL1 += o.LoadsL1
	c.LoadsL2 += o.LoadsL2
	c.LoadsL3 += o.LoadsL3
	c.LoadsDRAM += o.LoadsDRAM
	c.Stores += o.Stores
	c.StoresDRAM += o.StoresDRAM
}

// Sub returns c - o, the delta between two snapshots of the same counters.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Instrs:     c.Instrs - o.Instrs,
		Active:     c.Active - o.Active,
		CritNS:     c.CritNS - o.CritNS,
		LeadNS:     c.LeadNS - o.LeadNS,
		StallNS:    c.StallNS - o.StallNS,
		SQFull:     c.SQFull - o.SQFull,
		LoadsL1:    c.LoadsL1 - o.LoadsL1,
		LoadsL2:    c.LoadsL2 - o.LoadsL2,
		LoadsL3:    c.LoadsL3 - o.LoadsL3,
		LoadsDRAM:  c.LoadsDRAM - o.LoadsDRAM,
		Stores:     c.Stores - o.Stores,
		StoresDRAM: c.StoresDRAM - o.StoresDRAM,
	}
}

// Loads returns the total number of demand loads.
func (c Counters) Loads() uint64 {
	return c.LoadsL1 + c.LoadsL2 + c.LoadsL3 + c.LoadsDRAM
}

// LongLatencyLoads returns the loads that left the private cache levels.
func (c Counters) LongLatencyLoads() uint64 { return c.LoadsL3 + c.LoadsDRAM }
