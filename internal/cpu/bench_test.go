package cpu

import (
	"testing"

	"depburst/internal/mem"
	"depburst/internal/metrics"
	"depburst/internal/units"
)

// runSteadyState drives a core through a fixed block mix until the
// transient allocations (store-queue growth, hierarchy warm-up) are done.
func runSteadyState(c *Core) func() {
	var ctr Counters
	now := units.Time(0)
	i := 0
	blk := &Block{Instrs: 400, IPC: 2.0, Events: make([]MemEvent, 4)}
	step := func() {
		for j := range blk.Events {
			blk.Events[j] = MemEvent{
				At:    int64(j*50 + 10),
				Addr:  mem.Addr(0x100000 + (i*4+j)*64*1024).Line(),
				Store: j == 3,
			}
		}
		now = c.Run(now, blk, &ctr)
		i++
	}
	for k := 0; k < 64; k++ {
		step() // warm up: queues sized, caches populated
	}
	return step
}

// BenchmarkCoreRun measures the per-block simulation hot loop end to end:
// dispatch timing, the miss-cluster MSHR heap, store-queue drain, and the
// shared hierarchy underneath.
func BenchmarkCoreRun(b *testing.B) {
	core, _ := testCore(2000 * units.MHz)
	step := runSteadyState(core)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// TestCoreRunZeroAllocs locks the whole per-block simulation path — block
// timing, miss clustering, store-queue bookkeeping, counter updates — at
// zero steady-state heap allocations, with observability disabled (the
// default nil registry) AND enabled. The nil-receiver fast path must cost
// one branch, not an allocation; the enabled path observes into
// fixed-bucket histograms, which are allocation-free too.
func TestCoreRunZeroAllocs(t *testing.T) {
	t.Run("nil-registry", func(t *testing.T) {
		core, _ := testCore(2000 * units.MHz)
		step := runSteadyState(core)
		if avg := testing.AllocsPerRun(500, step); avg != 0 {
			t.Errorf("Core.Run allocates %.2f objects/block with metrics disabled, want 0", avg)
		}
	})
	t.Run("enabled-registry", func(t *testing.T) {
		core, hier := testCore(2000 * units.MHz)
		reg := metrics.NewRegistry()
		core.SetMetrics(reg)
		hier.SetMetrics(reg)
		step := runSteadyState(core)
		if avg := testing.AllocsPerRun(500, step); avg != 0 {
			t.Errorf("Core.Run allocates %.2f objects/block with metrics enabled, want 0", avg)
		}
		if reg.Counts().MissClusters == 0 {
			t.Error("enabled registry observed no miss clusters during the run")
		}
	})
}
