package cpu

import (
	"testing"

	"depburst/internal/units"
)

var ffTestRates = FFRates{
	PsPerInstr: 733.3,
	LoadsL2:    0.031,
	LoadsL3:    0.0072,
	LoadsDRAM:  0.0013,
	Stores:     0.11,
	StoresDRAM: 0.0009,
	CritPs:     41.7,
	LeadPs:     63.2,
	StallPs:    12.9,
	SQFullPs:   3.4,
}

// TestRunFastChunkingInvariant is the fractional-carry guarantee: splitting
// a fast-forwarded region into blocks of any size must synthesise exactly
// the same totals and the same end time, because the carries hand the
// remainders across block boundaries.
func TestRunFastChunkingInvariant(t *testing.T) {
	const total = 1_234_567
	run := func(chunk int64) (Counters, units.Time) {
		core, _ := testCore(1000 * units.MHz)
		core.SetFastForward(ffTestRates)
		var ctr Counters
		now := units.Time(0)
		for left := int64(total); left > 0; {
			n := chunk
			if n > left {
				n = left
			}
			now = core.RunFast(now, n, &ctr)
			left -= n
		}
		return ctr, now
	}
	whole, wholeEnd := run(total)
	for _, chunk := range []int64{1, 7, 1000, 64_000} {
		got, end := run(chunk)
		if got != whole {
			t.Errorf("chunk %d: counters %+v differ from whole-block %+v", chunk, got, whole)
		}
		if end != wholeEnd {
			t.Errorf("chunk %d: end time %v, whole-block %v", chunk, end, wholeEnd)
		}
	}
	if whole.Instrs != total {
		t.Errorf("synthesised %d instrs, want %d", whole.Instrs, total)
	}
	// The synthesised totals track rate x instrs to within one unit (the
	// residual stays in the carry).
	if want := int64(ffTestRates.PsPerInstr * total); int64(wholeEnd) < want-1 || int64(wholeEnd) > want+1 {
		t.Errorf("end time %d, want ~%d", wholeEnd, want)
	}
	if want := uint64(ffTestRates.Stores * total); whole.Stores < want-1 || whole.Stores > want+1 {
		t.Errorf("stores %d, want ~%d", whole.Stores, want)
	}
}

// TestRunFastSynthDRAM checks that the skipped blocks' DRAM traffic is
// tallied so the machine can fold it into DRAM statistics and energy.
func TestRunFastSynthDRAM(t *testing.T) {
	core, _ := testCore(1000 * units.MHz)
	core.SetFastForward(ffTestRates)
	var ctr Counters
	core.RunFast(0, 1_000_000, &ctr)
	reads, writes := core.SynthDRAM()
	if reads != ctr.LoadsDRAM || writes != ctr.StoresDRAM {
		t.Errorf("SynthDRAM = (%d,%d), counters say (%d,%d)",
			reads, writes, ctr.LoadsDRAM, ctr.StoresDRAM)
	}
	if reads == 0 || writes == 0 {
		t.Errorf("no DRAM traffic synthesised: reads %d writes %d", reads, writes)
	}
}

// TestRunFastAllocs guards the fast path: RunFast replaces Run for every
// fast-forwarded block and must not allocate.
func TestRunFastAllocs(t *testing.T) {
	core, _ := testCore(1000 * units.MHz)
	core.SetFastForward(ffTestRates)
	var ctr Counters
	now := units.Time(0)
	if n := testing.AllocsPerRun(1000, func() {
		now = core.RunFast(now, 64_000, &ctr)
	}); n != 0 {
		t.Fatalf("RunFast allocates %.1f times per block, want 0", n)
	}
}
