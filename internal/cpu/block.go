package cpu

import (
	"fmt"

	"depburst/internal/mem"
)

// MemEvent is one memory operation within a Block that missed the L1 cache
// and therefore must be presented to the shared hierarchy.
type MemEvent struct {
	// At is the dynamic instruction index within the block at which the
	// operation appears. Events must be sorted by At.
	At int64
	// Addr is the line-granularity physical address.
	Addr mem.Addr
	// Store marks the event as a store (drains through the store queue).
	Store bool
	// DepPrev marks a load whose address depends on the previous
	// long-latency load in program order (pointer chasing): it cannot
	// issue until that load completes, extending the critical path.
	DepPrev bool
}

// Block is a segment of a thread's dynamic instruction stream, the unit of
// work the core model simulates in one call. Workload programs compile
// themselves into a sequence of blocks.
type Block struct {
	// Instrs is the number of dynamic instructions in the block.
	Instrs int64
	// IPC is the dispatch/commit rate, in instructions per cycle, the
	// block sustains in the absence of misses (its inherent ILP, capped
	// by the core's dispatch width).
	IPC float64
	// Events are the L1-missing memory operations, sorted by At.
	Events []MemEvent
}

// Validate reports whether the block is well-formed: positive instruction
// count and IPC, events sorted and within range.
func (b *Block) Validate() error {
	if b.Instrs <= 0 {
		return fmt.Errorf("cpu: block has %d instructions", b.Instrs)
	}
	if b.IPC <= 0 {
		return fmt.Errorf("cpu: block has non-positive IPC %g", b.IPC)
	}
	prev := int64(-1)
	for i, e := range b.Events {
		if e.At < 0 || e.At >= b.Instrs {
			return fmt.Errorf("cpu: event %d at index %d outside block of %d instructions", i, e.At, b.Instrs)
		}
		if e.At < prev {
			return fmt.Errorf("cpu: event %d unsorted (at %d after %d)", i, e.At, prev)
		}
		prev = e.At
	}
	return nil
}

// Reset clears the block for reuse, keeping event capacity.
func (b *Block) Reset() {
	b.Instrs = 0
	b.IPC = 0
	b.Events = b.Events[:0]
}
