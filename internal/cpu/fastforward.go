package cpu

import (
	"math"

	"depburst/internal/units"
)

// FFRates is the steady-state extrapolation model the sampling detector
// learns from detailed simulation and the core applies while
// fast-forwarding: the simulated wall time and every counter a detailed
// block would have produced, per committed instruction.
type FFRates struct {
	PsPerInstr float64 // simulated picoseconds per instruction

	// Per-instruction event rates.
	LoadsL2, LoadsL3, LoadsDRAM float64
	Stores, StoresDRAM          float64

	// Per-instruction picosecond rates for the time-valued counters.
	CritPs, LeadPs, StallPs, SQFullPs float64
}

// ffState is a core's fast-forward mode: the active rates plus the
// fractional-count carries that keep synthesised counters deterministic
// and unbiased across blocks of any size.
type ffState struct {
	on    bool
	rates FFRates

	// carries hold the fractional remainders of each synthesised
	// quantity, indexed by the ffC* constants.
	carries [10]float64

	// synthReads / synthWrites count the DRAM accesses the skipped
	// blocks would have made, so the machine can keep DRAM statistics
	// and energy metering consistent in sampled runs.
	synthReads, synthWrites uint64
}

// Carry indices for ffState.carries.
const (
	ffCTime = iota
	ffCLoadsL2
	ffCLoadsL3
	ffCLoadsDRAM
	ffCStores
	ffCStoresDRAM
	ffCCrit
	ffCLead
	ffCStall
	ffCSQFull
)

// SetFastForward switches the core into fast-forward mode with the given
// extrapolation rates. Carries and synthetic-access tallies persist
// across re-entries so long runs stay unbiased.
func (c *Core) SetFastForward(r FFRates) {
	c.ff.on = true
	c.ff.rates = r
}

// ClearFastForward returns the core to detailed simulation.
func (c *Core) ClearFastForward() { c.ff.on = false }

// FastForwarding reports whether the core is in fast-forward mode.
func (c *Core) FastForwarding() bool { return c.ff.on }

// SynthDRAM returns the cumulative DRAM reads and writes synthesised by
// fast-forwarded blocks on this core.
func (c *Core) SynthDRAM() (reads, writes uint64) {
	return c.ff.synthReads, c.ff.synthWrites
}

// ffTake converts a fractional quantity into an integer count, carrying
// the remainder deterministically across calls.
func ffTake(carry *float64, x float64) int64 {
	s := *carry + x
	n := math.Floor(s)
	*carry = s - n
	return int64(n)
}

// RunFast advances the core past a block of instrs instructions using the
// fast-forward extrapolation model instead of the event-level interval
// simulation: time and counters grow at the learned steady-state rates
// and no memory-hierarchy traffic is generated. Allocation-free — it
// replaces Run on the hot path of every fast-forwarded quantum.
//
//depburst:hotpath
func (c *Core) RunFast(start units.Time, instrs int64, ctr *Counters) units.Time {
	ff := &c.ff
	r := &ff.rates
	fi := float64(instrs)

	var d Counters
	d.Instrs = instrs
	d.LoadsL2 = uint64(ffTake(&ff.carries[ffCLoadsL2], r.LoadsL2*fi))
	d.LoadsL3 = uint64(ffTake(&ff.carries[ffCLoadsL3], r.LoadsL3*fi))
	d.LoadsDRAM = uint64(ffTake(&ff.carries[ffCLoadsDRAM], r.LoadsDRAM*fi))
	d.Stores = uint64(ffTake(&ff.carries[ffCStores], r.Stores*fi))
	d.StoresDRAM = uint64(ffTake(&ff.carries[ffCStoresDRAM], r.StoresDRAM*fi))
	d.CritNS = units.Time(ffTake(&ff.carries[ffCCrit], r.CritPs*fi))
	d.LeadNS = units.Time(ffTake(&ff.carries[ffCLead], r.LeadPs*fi))
	d.StallNS = units.Time(ffTake(&ff.carries[ffCStall], r.StallPs*fi))
	d.SQFull = units.Time(ffTake(&ff.carries[ffCSQFull], r.SQFullPs*fi))

	ff.synthReads += d.LoadsDRAM
	ff.synthWrites += d.StoresDRAM

	ctr.Add(d)
	c.total.Add(d)

	dur := ffTake(&ff.carries[ffCTime], r.PsPerInstr*fi)
	return start + units.Time(dur)
}
