package cpu

import (
	"testing"

	"depburst/internal/mem"
	"depburst/internal/units"
)

func TestMSHRLimitSerialisesWideClusters(t *testing.T) {
	// A cluster of many independent misses can only overlap MSHRs at a
	// time: doubling the MSHR count must speed the cluster up.
	run := func(mshrs int) units.Time {
		hier := mem.NewHierarchy(mem.DefaultHierarchyConfig(1))
		clock := units.NewClock(1000 * units.MHz)
		cfg := DefaultConfig()
		cfg.MSHRs = mshrs
		core := NewCore(0, cfg, clock, hier)
		var ctr Counters
		blk := &Block{Instrs: 200, IPC: 2}
		for i := 0; i < 32; i++ {
			blk.Events = append(blk.Events, MemEvent{
				At:   int64(i * 2),
				Addr: mem.Addr(0x100000 + i*1024*1024 + i*64), // spread across banks
			})
		}
		return core.Run(0, blk, &ctr)
	}
	narrow := run(2)
	wide := run(16)
	if float64(narrow) < 1.2*float64(wide) {
		t.Errorf("MSHR limit had no effect: 2 MSHRs %v vs 16 MSHRs %v", narrow, wide)
	}
}

func TestStallNeverExceedsCrit(t *testing.T) {
	// For load-only workloads, the Stall Time counter (actual commit
	// stall) can never exceed CRIT's chain estimate plus dispatch slack;
	// in particular it must not exceed the elapsed time, and the three
	// counters must order sensibly for a dependent chain.
	hier := mem.NewHierarchy(mem.DefaultHierarchyConfig(1))
	clock := units.NewClock(1000 * units.MHz)
	core := NewCore(0, DefaultConfig(), clock, hier)
	var ctr Counters
	blk := &Block{Instrs: 600, IPC: 2}
	for i := 0; i < 8; i++ {
		blk.Events = append(blk.Events, MemEvent{
			At:      int64(i * 4),
			Addr:    mem.Addr(0x200000 + i*512*1024),
			DepPrev: i > 0,
		})
	}
	end := core.Run(0, blk, &ctr)
	if ctr.LeadNS > ctr.CritNS {
		t.Errorf("leading loads %v exceeds CRIT %v on a chain", ctr.LeadNS, ctr.CritNS)
	}
	if ctr.StallNS > units.Time(end) {
		t.Errorf("stall %v exceeds elapsed %v", ctr.StallNS, end)
	}
}

func TestPerCoreTotalsMirrorThreadCounters(t *testing.T) {
	hier := mem.NewHierarchy(mem.DefaultHierarchyConfig(1))
	clock := units.NewClock(1000 * units.MHz)
	core := NewCore(0, DefaultConfig(), clock, hier)
	var a, b Counters
	blk := &Block{Instrs: 5000, IPC: 2,
		Events: []MemEvent{{At: 100, Addr: 0x100000}, {At: 2000, Addr: 0x300000, Store: true}}}
	core.Run(0, blk, &a)
	core.Run(units.Millisecond, blk, &b)

	var sum Counters
	sum.Add(a)
	sum.Add(b)
	tot := core.Counters()
	// Active is kernel-owned; everything else must match the per-thread
	// accumulation exactly.
	sum.Active = tot.Active
	if tot != sum {
		t.Errorf("core totals %+v != thread sums %+v", tot, sum)
	}

	core.AddActive(42)
	if core.Counters().Active != tot.Active+42 {
		t.Error("AddActive not reflected")
	}
}

func TestStoreToSameLineCoalescesInL2(t *testing.T) {
	// Repeated stores to one line: first drains to memory, later ones hit
	// the L2 copy and drain in cycles, so a hot-line store loop must not
	// saturate the store queue.
	hier := mem.NewHierarchy(mem.DefaultHierarchyConfig(1))
	clock := units.NewClock(1000 * units.MHz)
	core := NewCore(0, DefaultConfig(), clock, hier)
	var ctr Counters
	blk := &Block{Instrs: 2000, IPC: 2}
	for i := 0; i < 200; i++ {
		blk.Events = append(blk.Events, MemEvent{At: int64(i * 10), Addr: 0x400000, Store: true})
	}
	core.Run(0, blk, &ctr)
	if ctr.StoresDRAM > 2 {
		t.Errorf("%d same-line stores drained to DRAM, want ~1", ctr.StoresDRAM)
	}
	if ctr.SQFull > 0 {
		t.Errorf("hot-line store loop stalled the store queue for %v", ctr.SQFull)
	}
}
