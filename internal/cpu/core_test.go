package cpu

import (
	"testing"
	"testing/quick"

	"depburst/internal/mem"
	"depburst/internal/units"
)

func testCore(f units.Freq) (*Core, *mem.Hierarchy) {
	hier := mem.NewHierarchy(mem.DefaultHierarchyConfig(1))
	clock := units.NewClock(f)
	return NewCore(0, DefaultConfig(), clock, hier), hier
}

func computeBlock(instrs int64, ipc float64) *Block {
	return &Block{Instrs: instrs, IPC: ipc}
}

func TestComputeOnlyTiming(t *testing.T) {
	core, _ := testCore(1000 * units.MHz)
	var ctr Counters
	end := core.Run(0, computeBlock(10_000, 2.0), &ctr)
	// 10k instrs at IPC 2 at 1 GHz = 5000 cycles = 5 µs.
	want := 5 * units.Microsecond
	if end < want-units.Nanosecond || end > want+units.Nanosecond {
		t.Errorf("compute block took %v, want ~%v", end, want)
	}
	if ctr.Instrs != 10_000 {
		t.Errorf("instrs %d", ctr.Instrs)
	}
}

func TestComputeScalesWithFrequency(t *testing.T) {
	c1, _ := testCore(1000 * units.MHz)
	c4, _ := testCore(4000 * units.MHz)
	var a, b Counters
	t1 := c1.Run(0, computeBlock(100_000, 2.0), &a)
	t4 := c4.Run(0, computeBlock(100_000, 2.0), &b)
	ratio := float64(t1) / float64(t4)
	if ratio < 3.99 || ratio > 4.01 {
		t.Errorf("pure compute 1GHz/4GHz ratio %v, want 4", ratio)
	}
}

func TestIPCCappedByWidth(t *testing.T) {
	core, _ := testCore(1000 * units.MHz)
	var ctr Counters
	end := core.Run(0, computeBlock(8_000, 100), &ctr) // IPC capped at 4
	want := units.Time(8_000/4) * units.Nanosecond
	if end < want-units.Nanosecond || end > want+units.Nanosecond {
		t.Errorf("width-capped block took %v, want ~%v", end, want)
	}
}

func TestSingleMissCost(t *testing.T) {
	core, hier := testCore(1000 * units.MHz)
	var ctr Counters
	blk := &Block{
		Instrs: 1000, IPC: 2.0,
		Events: []MemEvent{{At: 500, Addr: 0x100000}},
	}
	end := core.Run(0, blk, &ctr)
	if ctr.LoadsDRAM != 1 {
		t.Fatalf("DRAM loads %d, want 1", ctr.LoadsDRAM)
	}
	// Time must be compute time plus roughly the memory latency.
	compute := 500 * units.Nanosecond
	lat := hier.DRAM().AvgLatency() + hier.Config().L3Latency
	if end < compute+lat/2 || end > compute+2*lat+units.Microsecond {
		t.Errorf("single-miss block took %v (compute %v, lat %v)", end, compute, lat)
	}
	if ctr.CritNS <= 0 || ctr.LeadNS <= 0 {
		t.Errorf("counters: crit=%v lead=%v", ctr.CritNS, ctr.LeadNS)
	}
}

func TestIndependentMissesOverlap(t *testing.T) {
	// Two independent misses within the ROB window overlap: the block
	// must be much cheaper than two dependent misses.
	mk := func(dep bool) units.Time {
		core, _ := testCore(1000 * units.MHz)
		var ctr Counters
		blk := &Block{
			Instrs: 240, IPC: 2.0,
			Events: []MemEvent{
				{At: 100, Addr: 0x100000},
				{At: 110, Addr: 0x200040, DepPrev: dep},
			},
		}
		return core.Run(0, blk, &ctr)
	}
	indep := mk(false)
	dep := mk(true)
	if dep <= indep {
		t.Errorf("dependent misses (%v) not slower than independent (%v)", dep, indep)
	}
	if float64(dep) < 1.25*float64(indep) {
		t.Errorf("dependent/independent ratio %v too small", float64(dep)/float64(indep))
	}
}

func TestCRITTracksChain(t *testing.T) {
	// A chain of dependent misses: CRIT must accumulate roughly the sum
	// of their latencies, and exceed Leading Loads (which counts only the
	// head's).
	core, _ := testCore(1000 * units.MHz)
	var ctr Counters
	ev := make([]MemEvent, 4)
	for i := range ev {
		ev[i] = MemEvent{At: int64(100 + i*10), Addr: mem.Addr(0x100000 + i*0x100000), DepPrev: i > 0}
	}
	core.Run(0, &Block{Instrs: 1000, IPC: 2.0, Events: ev}, &ctr)
	if ctr.CritNS <= ctr.LeadNS {
		t.Errorf("CRIT %v should exceed LeadingLoads %v for a dependent chain", ctr.CritNS, ctr.LeadNS)
	}
	if ctr.CritNS < 3*ctr.LeadNS {
		t.Errorf("CRIT %v should be ~4x LeadingLoads %v", ctr.CritNS, ctr.LeadNS)
	}
}

func TestCountersBoundedByElapsed(t *testing.T) {
	// No non-scaling counter may exceed the elapsed time of the block.
	core, _ := testCore(2000 * units.MHz)
	var ctr Counters
	ev := []MemEvent{}
	for i := int64(0); i < 50; i++ {
		ev = append(ev, MemEvent{At: i * 100, Addr: mem.Addr(0x100000 + i*64*1024), DepPrev: i%3 == 0})
	}
	end := core.Run(0, &Block{Instrs: 5000, IPC: 2.0, Events: ev}, &ctr)
	for name, v := range map[string]units.Time{"crit": ctr.CritNS, "lead": ctr.LeadNS, "stall": ctr.StallNS} {
		if v > end {
			t.Errorf("%s counter %v exceeds elapsed %v", name, v, end)
		}
	}
}

func TestStoreBurstFillsQueueAndStalls(t *testing.T) {
	core, _ := testCore(4000 * units.MHz)
	var ctr Counters
	// 512 sequential cold store lines: far more than the 42-entry queue
	// can hold; drain is DRAM-bandwidth-bound at any frequency.
	ev := make([]MemEvent, 512)
	for i := range ev {
		ev[i] = MemEvent{At: int64(i * 2), Addr: mem.Addr(0x100000 + i*64), Store: true}
	}
	end := core.Run(0, &Block{Instrs: 1024, IPC: 2.0, Events: ev}, &ctr)
	if ctr.SQFull <= 0 {
		t.Fatal("store burst did not stall on a full store queue")
	}
	if ctr.Stores != 512 {
		t.Errorf("stores %d", ctr.Stores)
	}
	// The burst is bandwidth-bound: elapsed must be at least
	// (512-queue) x TBurst.
	minDrain := units.Time(512-DefaultConfig().StoreQueueSize) * 2500
	if end < minDrain {
		t.Errorf("burst took %v, bandwidth bound is %v", end, minDrain)
	}
}

func TestStoreBurstStallIsNonScaling(t *testing.T) {
	// The same store burst at 1 and 4 GHz must take roughly the same
	// wall time (drain-limited), with the 4 GHz run seeing more SQ-full
	// stall.
	run := func(f units.Freq) (units.Time, Counters) {
		core, _ := testCore(f)
		var ctr Counters
		ev := make([]MemEvent, 512)
		for i := range ev {
			ev[i] = MemEvent{At: int64(i * 2), Addr: mem.Addr(0x100000 + i*64), Store: true}
		}
		end := core.Run(0, &Block{Instrs: 1024, IPC: 2.0, Events: ev}, &ctr)
		return end, ctr
	}
	t1, c1 := run(1000 * units.MHz)
	t4, c4 := run(4000 * units.MHz)
	if ratio := float64(t1) / float64(t4); ratio > 1.6 {
		t.Errorf("store burst scaled with frequency: 1GHz %v vs 4GHz %v", t1, t4)
	}
	if c4.SQFull <= c1.SQFull {
		t.Errorf("SQ-full at 4GHz (%v) not larger than at 1GHz (%v)", c4.SQFull, c1.SQFull)
	}
}

func TestSQDrainsOverTime(t *testing.T) {
	core, _ := testCore(1000 * units.MHz)
	var ctr Counters
	ev := make([]MemEvent, 8)
	for i := range ev {
		ev[i] = MemEvent{At: int64(i), Addr: mem.Addr(0x100000 + i*64), Store: true}
	}
	core.Run(0, &Block{Instrs: 16, IPC: 2.0, Events: ev}, &ctr)
	if core.SQOccupancy() == 0 {
		t.Skip("stores retired within the block")
	}
	// A long compute block later should find the queue drained.
	core.Run(100*units.Microsecond, computeBlock(1000, 2.0), &ctr)
	if core.SQOccupancy() != 0 {
		t.Errorf("SQ still holds %d entries long after the burst", core.SQOccupancy())
	}
}

func TestL2HitsAreCheap(t *testing.T) {
	core, _ := testCore(1000 * units.MHz)
	var ctr Counters
	// Warm a line, then hit it many times.
	warm := &Block{Instrs: 10, IPC: 2, Events: []MemEvent{{At: 0, Addr: 0x100000}}}
	end := core.Run(0, warm, &ctr)
	ev := make([]MemEvent, 32)
	for i := range ev {
		ev[i] = MemEvent{At: int64(i * 10), Addr: 0x100000}
	}
	before := ctr.CritNS
	end2 := core.Run(end, &Block{Instrs: 320, IPC: 2.0, Events: ev}, &ctr)
	if ctr.LoadsL2 != 32 {
		t.Errorf("L2 loads %d, want 32", ctr.LoadsL2)
	}
	if ctr.CritNS != before {
		t.Error("L2 hits contributed to the CRIT counter")
	}
	// 320 instrs at IPC 2 = 160ns, plus 32 x 8 cycles = 256ns.
	if dur := end2 - end; dur > 600*units.Nanosecond {
		t.Errorf("L2-hit block took %v", dur)
	}
}

func TestRunMonotonic(t *testing.T) {
	err := quick.Check(func(seed uint64, nEv uint8) bool {
		core, _ := testCore(2000 * units.MHz)
		var ctr Counters
		blk := &Block{Instrs: 1000, IPC: 2}
		for i := 0; i < int(nEv%16); i++ {
			blk.Events = append(blk.Events, MemEvent{
				At:    int64(i * 50),
				Addr:  mem.Addr(seed>>8) + mem.Addr(i*4096),
				Store: i%4 == 0,
			})
		}
		start := units.Time(seed % 1_000_000)
		end := core.Run(start, blk, &ctr)
		return end >= start
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestBlockValidate(t *testing.T) {
	good := &Block{Instrs: 100, IPC: 2, Events: []MemEvent{{At: 5}, {At: 10}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid block rejected: %v", err)
	}
	bad := []*Block{
		{Instrs: 0, IPC: 2},
		{Instrs: 100, IPC: 0},
		{Instrs: 100, IPC: 2, Events: []MemEvent{{At: 100}}},
		{Instrs: 100, IPC: 2, Events: []MemEvent{{At: 10}, {At: 5}}},
		{Instrs: 100, IPC: 2, Events: []MemEvent{{At: -1}}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("invalid block %d accepted", i)
		}
	}
}

func TestBlockReset(t *testing.T) {
	b := &Block{Instrs: 10, IPC: 2, Events: []MemEvent{{At: 1}}}
	b.Reset()
	if b.Instrs != 0 || b.IPC != 0 || len(b.Events) != 0 {
		t.Error("Reset incomplete")
	}
	if cap(b.Events) == 0 {
		t.Error("Reset dropped event capacity")
	}
}

func TestCountersAddSub(t *testing.T) {
	err := quick.Check(func(a, b Counters) bool {
		// Avoid negative-overflow noise: Sub then Add restores.
		sum := a
		sum.Add(b)
		return sum.Sub(b) == a && sum.Sub(a) == b
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestCountersLoads(t *testing.T) {
	c := Counters{LoadsL1: 1, LoadsL2: 2, LoadsL3: 3, LoadsDRAM: 4}
	if c.Loads() != 10 {
		t.Errorf("Loads = %d", c.Loads())
	}
	if c.LongLatencyLoads() != 7 {
		t.Errorf("LongLatencyLoads = %d", c.LongLatencyLoads())
	}
}

func TestBadConfigPanics(t *testing.T) {
	hier := mem.NewHierarchy(mem.DefaultHierarchyConfig(1))
	clock := units.NewClock(units.GHz)
	cfg := DefaultConfig()
	cfg.MSHRs = 0
	defer func() {
		if recover() == nil {
			t.Error("bad config did not panic")
		}
	}()
	NewCore(0, cfg, clock, hier)
}
