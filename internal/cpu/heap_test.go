package cpu

import (
	"sort"
	"testing"

	"depburst/internal/rng"
)

// TestMinHeapOrdering: interleaved pushes and pops must always return the
// current minimum — the exact value the old linear scan produced — under
// the MSHR usage pattern (pop only at capacity).
func TestMinHeapOrdering(t *testing.T) {
	var h minHeap
	h.a = make([]float64, 0, 10)
	r := rng.New(3)
	var ref []float64
	for i := 0; i < 10_000; i++ {
		if h.len() >= 10 {
			// Reference: linear-scan min with remove.
			mi := 0
			for j := 1; j < len(ref); j++ {
				if ref[j] < ref[mi] {
					mi = j
				}
			}
			want := ref[mi]
			ref[mi] = ref[len(ref)-1]
			ref = ref[:len(ref)-1]
			if got := h.popMin(); got != want {
				t.Fatalf("op %d: popMin = %v, want %v", i, got, want)
			}
		}
		v := float64(r.Int63n(1 << 40))
		h.push(v)
		ref = append(ref, v)
	}
}

// TestMinHeapDrain: filling and fully draining yields sorted order.
func TestMinHeapDrain(t *testing.T) {
	var h minHeap
	r := rng.New(9)
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(r.Int63n(1000)) // duplicates likely
		h.push(vals[i])
	}
	sort.Float64s(vals)
	for i, want := range vals {
		if got := h.popMin(); got != want {
			t.Fatalf("drain %d: got %v, want %v", i, got, want)
		}
	}
	if h.len() != 0 {
		t.Errorf("heap not empty after drain: %d", h.len())
	}
	h.reset()
	h.push(1)
	if h.popMin() != 1 {
		t.Error("heap unusable after reset")
	}
}
