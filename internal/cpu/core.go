package cpu

import (
	"math"

	"depburst/internal/mem"
	"depburst/internal/metrics"
	"depburst/internal/units"
)

// Config describes one out-of-order core. The defaults follow the paper's
// Haswell i7-4770K-like setup (Table II).
type Config struct {
	// DispatchWidth is the maximum instructions dispatched/committed per
	// cycle; it also caps a block's effective IPC.
	DispatchWidth int
	// ROBSize bounds how far dispatch runs ahead of a stalled commit, and
	// therefore how many misses can overlap in one cluster.
	ROBSize int
	// StoreQueueSize is the number of committed-but-unretired stores the
	// core can buffer before commit stalls on the next store.
	StoreQueueSize int
	// MSHRs limits concurrently outstanding demand misses.
	MSHRs int
	// L2HitCycles is the visible penalty of an L1-miss/L2-hit load, in
	// core cycles (partially hidden by out-of-order execution).
	L2HitCycles int64
	// SQDrainL2Cycles is the store-queue drain occupancy of a store that
	// hits in the L2, in core cycles.
	SQDrainL2Cycles int64
}

// DefaultConfig returns the Table II core: 4-wide out-of-order, 192-entry
// ROB, 42-entry store queue, 10 MSHRs.
func DefaultConfig() Config {
	return Config{
		DispatchWidth:   4,
		ROBSize:         192,
		StoreQueueSize:  42,
		MSHRs:           10,
		L2HitCycles:     8,
		SQDrainL2Cycles: 2,
	}
}

// Core simulates one out-of-order core at interval-model granularity. A
// core is driven by the kernel: whichever thread is scheduled on the core
// passes its blocks to Run, along with its own counters.
type Core struct {
	id    int
	cfg   Config
	clock *units.Clock
	hier  *mem.Hierarchy

	// total accumulates the work executed on this core regardless of
	// which thread ran it; per-core DVFS governors read it.
	total Counters

	// sq holds completion times of outstanding (committed, not yet
	// retired) stores in FIFO order. Completion times are monotonically
	// non-decreasing because the drain is in-order.
	sq []float64

	// outstanding tracks in-flight miss completion times (MSHR model) as
	// a fixed-capacity min-heap, so the at-capacity wait is O(log MSHRs)
	// instead of a linear scan per event.
	outstanding minHeap

	// period/sqDrainPs cache the per-cycle wall time (and the L2 store
	// drain occupancy derived from it) for cachedFreq, so blocks and
	// stores under an unchanged DVFS setting skip the divisions.
	cachedFreq units.Freq
	period     float64
	sqDrainPs  float64

	// ff is the sampled-simulation fast-forward mode: when enabled, the
	// kernel routes eligible blocks through RunFast instead of Run.
	ff ffState

	// reg, when non-nil, receives miss-cluster and store-queue stall
	// observations. The nil fast path costs one branch per event
	// (guarded by TestCoreRunZeroAllocs).
	reg *metrics.Registry
}

// NewCore builds a core. The clock is shared with the DVFS controller: a
// frequency change takes effect for every subsequently simulated block.
func NewCore(id int, cfg Config, clock *units.Clock, hier *mem.Hierarchy) *Core {
	if cfg.DispatchWidth <= 0 || cfg.ROBSize <= 0 || cfg.StoreQueueSize <= 0 || cfg.MSHRs <= 0 {
		panic("cpu: invalid core configuration")
	}
	c := &Core{id: id, cfg: cfg, clock: clock, hier: hier}
	c.outstanding.a = make([]float64, 0, cfg.MSHRs)
	return c
}

// periodFor returns the wall-clock picoseconds per cycle at the core's
// current frequency, recomputing (and re-deriving the L2 store-drain
// occupancy) only when a DVFS transition changed the clock since the last
// block.
func (c *Core) periodFor() float64 {
	if f := c.clock.Freq(); f != c.cachedFreq {
		c.cachedFreq = f
		c.period = 1e6 / float64(f)
		c.sqDrainPs = float64(c.cfg.SQDrainL2Cycles) * c.period
	}
	return c.period
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Clock returns the core's clock (shared for chip-wide DVFS).
func (c *Core) Clock() *units.Clock { return c.clock }

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// SetMetrics attaches a per-run observability registry (nil disables).
func (c *Core) SetMetrics(reg *metrics.Registry) { c.reg = reg }

// Counters returns the work executed on this core so far (all threads).
// Its Active field is maintained by the kernel via AddActive.
func (c *Core) Counters() Counters { return c.total }

// AddActive accrues scheduled time on this core (called by the kernel
// alongside per-thread active-time accounting).
func (c *Core) AddActive(d units.Time) { c.total.Active += d }

// Run simulates block b starting at time start, accumulating performance
// counters into ctr, and returns the completion time. The block's memory
// events flow through the shared hierarchy, so concurrent cores interact
// through cache and DRAM state.
//
//depburst:hotpath
func (c *Core) Run(start units.Time, b *Block, ctr *Counters) units.Time {
	// Mirror this block's counter deltas into the per-core totals (Run
	// never touches Active, which AddActive owns).
	pre := *ctr
	defer func() { c.total.Add(ctr.Sub(pre)) }()
	period := c.periodFor() // picoseconds per cycle
	ipc := b.IPC
	if w := float64(c.cfg.DispatchWidth); ipc > w {
		ipc = w
	}
	instrPs := period / ipc // picoseconds per committed instruction
	// Dispatch runs ahead of a stalled commit at full width.
	dispatchPs := period / float64(c.cfg.DispatchWidth)

	t := float64(start)
	c.drainSQ(t)
	var idx int64 // instructions committed so far
	i := 0
	for i < len(b.Events) {
		e := b.Events[i]
		t += float64(e.At-idx) * instrPs
		idx = e.At
		c.drainSQ(t)

		if e.Store {
			t = c.commitStore(t, e.Addr, ctr)
			idx++
			i++
			continue
		}

		res := c.hier.Load(units.Time(t), c.id, e.Addr)
		if res.Level == mem.LevelL2 {
			ctr.LoadsL2++
			t += float64(c.cfg.L2HitCycles) * period
			idx++
			i++
			continue
		}
		// Long-latency load: gather the in-ROB miss cluster.
		t, idx, i = c.cluster(t, b, i, res, dispatchPs, ctr)
	}
	t += float64(b.Instrs-idx) * instrPs
	ctr.Instrs += b.Instrs

	end := units.Time(math.Ceil(t))
	if end < start {
		end = start
	}
	return end
}

// cluster simulates a cluster of long-latency loads headed by event i whose
// hierarchy result is headRes. It returns the new time, committed
// instruction index, and next event index.
//
// Timing: the head load blocks commit; dispatch continues filling the ROB,
// issuing independent loads underneath (bounded by MSHRs) while dependent
// loads wait for their producer. Commit resumes once the slowest load in
// the cluster returns, and the instructions dispatched underneath commit in
// a burst (modelled as free).
//
// Counters: CRIT accumulates the longest dependent chain's total latency;
// Leading Loads accumulates only the head load's latency; Stall Time
// accumulates the portion of the stall not covered by dispatch progress.
func (c *Core) cluster(t float64, b *Block, i int, headRes mem.Result, dispatchPs float64, ctr *Counters) (float64, int64, int) {
	head := b.Events[i]
	t0 := t
	winEnd := head.At + int64(c.cfg.ROBSize)

	countLevel(ctr, headRes.Level)
	d0 := float64(headRes.Done)
	maxDone := d0
	chainEnd := d0       // completion time of the current dependence chain
	chainPath := d0 - t0 // accumulated latency along the current chain
	maxChainPath := chainPath
	leadLat := d0 - t0

	c.outstanding.reset()
	c.outstanding.push(d0)
	lastAt := head.At

	j := i + 1
	for j < len(b.Events) {
		e := b.Events[j]
		if e.Store || e.At >= winEnd {
			break
		}
		issue := t0 + float64(e.At-head.At)*dispatchPs
		if e.DepPrev {
			// Pointer chase: the address comes from the previous
			// long-latency load.
			if issue < chainEnd {
				issue = chainEnd
			}
		}
		// MSHR limit: wait for the oldest outstanding miss to retire.
		if c.outstanding.len() >= c.cfg.MSHRs {
			if m := c.outstanding.popMin(); issue < m {
				issue = m
			}
		}
		res := c.hier.Load(units.Time(issue), c.id, e.Addr)
		if res.Level == mem.LevelL2 {
			ctr.LoadsL2++
			j++
			continue
		}
		countLevel(ctr, res.Level)
		done := float64(res.Done)
		lat := done - issue
		if e.DepPrev {
			chainPath += lat
		} else {
			chainPath = lat
		}
		chainEnd = done
		if chainPath > maxChainPath {
			maxChainPath = chainPath
		}
		if done > maxDone {
			maxDone = done
		}
		c.outstanding.push(done)
		lastAt = e.At
		j++
	}

	// Ground truth: commit resumes when every load has returned; the
	// instructions dispatched under the stall commit in a burst.
	covered := float64(lastAt-head.At) * dispatchPs
	end := maxDone
	if min := t0 + covered; end < min {
		end = min
	}

	ctr.CritNS += units.Time(maxChainPath)
	ctr.LeadNS += units.Time(leadLat)
	if stall := (end - t0) - covered; stall > 0 {
		ctr.StallNS += units.Time(stall)
	}
	c.reg.ObserveMissCluster(units.Time(maxChainPath))
	return end, lastAt + 1, j
}

// commitStore models a store reaching the commit head at time t. If the
// store queue is full, commit stalls until the oldest store retires; that
// stall is the BURST counter. The store then occupies a queue slot until
// the memory hierarchy retires it.
func (c *Core) commitStore(t float64, addr mem.Addr, ctr *Counters) float64 {
	if len(c.sq) >= c.cfg.StoreQueueSize {
		wake := c.sq[0]
		if wake > t {
			ctr.SQFull += units.Time(wake - t)
			c.reg.ObserveSQStall(units.Time(wake - t))
			t = wake
		}
		c.drainSQ(t)
		// Guard against pathological zero-latency retires. Dequeue by
		// copying (like drainSQ) so the backing array is reused instead
		// of leaking a slot per overflow across a long run.
		if len(c.sq) >= c.cfg.StoreQueueSize {
			c.sq = c.sq[:copy(c.sq, c.sq[1:])]
		}
	}

	// Stores drain through fill buffers as soon as they commit; the
	// memory system's bus and bank occupancy — not the store latency —
	// bounds the drain rate, so bursts are bandwidth-limited. Retirement
	// is in order, so completion times are made monotone.
	res := c.hier.Store(units.Time(t), c.id, addr)
	var done float64
	if res.Level == mem.LevelL2 {
		drain := c.sqDrainPs // cached by periodFor at Run entry
		done = t + drain
		if n := len(c.sq); n > 0 {
			// L2 drain port is serial.
			prev := c.sq[n-1] + drain
			if done < prev {
				done = prev
			}
		}
	} else {
		done = float64(res.Done)
		if res.Level == mem.LevelDRAM {
			ctr.StoresDRAM++
		}
	}
	if n := len(c.sq); n > 0 && done < c.sq[n-1] {
		done = c.sq[n-1] // in-order retirement
	}
	c.sq = append(c.sq, done)
	ctr.Stores++
	return t
}

func (c *Core) drainSQ(t float64) {
	n := 0
	for n < len(c.sq) && c.sq[n] <= t {
		n++
	}
	if n > 0 {
		c.sq = c.sq[:copy(c.sq, c.sq[n:])]
	}
}

// SQOccupancy reports the current number of outstanding stores (for tests).
func (c *Core) SQOccupancy() int { return len(c.sq) }

func countLevel(ctr *Counters, l mem.Level) {
	switch l {
	case mem.LevelL3:
		ctr.LoadsL3++
	case mem.LevelDRAM:
		ctr.LoadsDRAM++
	}
}

// minHeap is a binary min-heap of completion times with a fixed backing
// array (capacity MSHRs), reused across miss clusters so the MSHR model
// never allocates and the at-capacity pop is O(log n).
type minHeap struct{ a []float64 }

func (h *minHeap) len() int { return len(h.a) }

func (h *minHeap) reset() { h.a = h.a[:0] }

func (h *minHeap) push(v float64) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *minHeap) popMin() float64 {
	m := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	// Sift the relocated root down.
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		min := l
		if r := l + 1; r < last && h.a[r] < h.a[l] {
			min = r
		}
		if h.a[i] <= h.a[min] {
			break
		}
		h.a[i], h.a[min] = h.a[min], h.a[i]
		i = min
	}
	return m
}
