package jvm

import (
	"testing"

	"depburst/internal/cpu"
	"depburst/internal/event"
	"depburst/internal/kernel"
	"depburst/internal/mem"
	"depburst/internal/rng"
	"depburst/internal/units"
)

type rig struct {
	k    *kernel.Kernel
	hier *mem.Hierarchy
	j    *JVM
}

func newRig(cfg Config) *rig {
	eng := event.New()
	hier := mem.NewHierarchy(mem.DefaultHierarchyConfig(4))
	clock := units.NewClock(1000 * units.MHz)
	cores := make([]*cpu.Core, 4)
	for i := range cores {
		cores[i] = cpu.NewCore(i, cpu.DefaultConfig(), clock, hier)
	}
	k := kernel.New(eng, cores, kernel.DefaultConfig())
	j := New(k, hier, cfg, rng.New(1))
	return &rig{k: k, hier: hier, j: j}
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NurseryBytes = 256 << 10
	cfg.TLABBytes = 16 << 10
	return cfg
}

func TestAllocFastPathFree(t *testing.T) {
	r := newRig(smallConfig())
	var slow, fast units.Time
	r.k.Spawn("app", kernel.ClassApp, -1, func(e *kernel.Env) {
		tl := &TLAB{}
		r.j.Alloc(e, tl, 64) // first: refill + zero-init
		slow = e.Now()
		before := e.Now()
		r.j.Alloc(e, tl, 64) // fits in TLAB: free
		fast = e.Now() - before
	})
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if slow == 0 {
		t.Error("TLAB refill took no time (no zero-init burst)")
	}
	if fast != 0 {
		t.Errorf("TLAB fast path advanced time by %v", fast)
	}
}

func TestZeroInitProducesStores(t *testing.T) {
	r := newRig(smallConfig())
	r.k.Spawn("app", kernel.ClassApp, -1, func(e *kernel.Env) {
		tl := &TLAB{}
		r.j.Alloc(e, tl, 64)
	})
	r.k.Run()
	ctr := r.k.Threads()[r.threadIdx(t, "app")].Counters()
	wantLines := uint64(smallConfig().TLABBytes / mem.LineSize)
	if ctr.Stores != wantLines {
		t.Errorf("zero-init stores %d, want %d (one per line of the TLAB)", ctr.Stores, wantLines)
	}
}

func (r *rig) threadIdx(t *testing.T, name string) int {
	t.Helper()
	for i, th := range r.k.Threads() {
		if th.Name() == name {
			return i
		}
	}
	t.Fatalf("no thread %q", name)
	return -1
}

func TestGCTriggersOnNurseryFull(t *testing.T) {
	r := newRig(smallConfig())
	r.k.Spawn("app", kernel.ClassApp, -1, func(e *kernel.Env) {
		tl := &TLAB{}
		// Allocate 3 nurseries' worth.
		for i := 0; i < 3*int(smallConfig().NurseryBytes/1024); i++ {
			r.j.Alloc(e, tl, 1024)
			r.j.Safepoint(e)
		}
	})
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	st := r.j.Stats()
	if st.MinorGCs < 2 {
		t.Errorf("minor GCs %d, want >= 2", st.MinorGCs)
	}
	if st.GCTime <= 0 {
		t.Error("no GC time accumulated")
	}
	if len(st.Pauses) != st.MinorGCs+st.MajorGCs {
		t.Errorf("pauses %d vs collections %d", len(st.Pauses), st.MinorGCs+st.MajorGCs)
	}
	if st.AllocBytes < 3*smallConfig().NurseryBytes {
		t.Errorf("alloc bytes %d", st.AllocBytes)
	}
}

func TestStopTheWorldExcludesAppThreads(t *testing.T) {
	// During every gc-start..gc-end window, no application thread may
	// accumulate counter deltas: the world is stopped.
	r := newRig(smallConfig())
	for w := 0; w < 3; w++ {
		r.k.Spawn("app", kernel.ClassApp, -1, func(e *kernel.Env) {
			tl := &TLAB{}
			for i := 0; i < 200; i++ {
				r.j.Alloc(e, tl, 2048)
				e.Compute(&cpu.Block{Instrs: 2000, IPC: 2})
				r.j.Safepoint(e)
			}
		})
	}
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if r.j.Stats().MinorGCs == 0 {
		t.Fatal("no GCs happened")
	}

	marks := r.k.Recorder().Marks()
	type window struct{ lo, hi units.Time }
	var wins []window
	var lo units.Time = -1
	for _, m := range marks {
		switch m.Label {
		case "gc-start":
			lo = m.At
		case "gc-end":
			if lo >= 0 {
				wins = append(wins, window{lo, m.At})
				lo = -1
			}
		}
	}
	if len(wins) == 0 {
		t.Fatal("no gc windows marked")
	}
	// Epochs wholly inside a GC window must contain only service-thread
	// activity (allow sub-microsecond skew at the edges).
	const skew = 2 * units.Microsecond
	for _, ep := range r.k.Recorder().Epochs() {
		for _, w := range wins {
			if ep.Start >= w.lo+skew && ep.End <= w.hi-skew {
				for _, sl := range ep.Slices {
					if sl.Class == kernel.ClassApp && sl.Delta.Instrs > 0 {
						t.Fatalf("app thread %d executed %d instructions during STW window [%v,%v]",
							sl.TID, sl.Delta.Instrs, w.lo, w.hi)
					}
				}
			}
		}
	}
}

func TestGCPausesDisjointAndOrdered(t *testing.T) {
	r := newRig(smallConfig())
	r.k.Spawn("app", kernel.ClassApp, -1, func(e *kernel.Env) {
		tl := &TLAB{}
		for i := 0; i < 600; i++ {
			r.j.Alloc(e, tl, 2048)
			r.j.Safepoint(e)
		}
	})
	r.k.Run()
	pauses := r.j.Stats().Pauses
	for i := 1; i < len(pauses); i++ {
		if pauses[i].Start < pauses[i-1].End {
			t.Fatalf("pauses overlap: %+v then %+v", pauses[i-1], pauses[i])
		}
	}
	for _, p := range pauses {
		if p.End <= p.Start {
			t.Fatalf("empty pause %+v", p)
		}
	}
}

func TestMajorGCCompactsMature(t *testing.T) {
	cfg := smallConfig()
	cfg.MatureBytes = 128 << 10 // tiny: force a major collection
	cfg.SurvivalRate = 0.5
	r := newRig(cfg)
	r.k.Spawn("app", kernel.ClassApp, -1, func(e *kernel.Env) {
		tl := &TLAB{}
		for i := 0; i < 1500; i++ {
			r.j.Alloc(e, tl, 1024)
			r.j.Safepoint(e)
		}
	})
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if r.j.Stats().MajorGCs == 0 {
		t.Error("mature overflow never triggered a major GC")
	}
}

func TestCopiedBytesAccounted(t *testing.T) {
	r := newRig(smallConfig())
	r.k.Spawn("app", kernel.ClassApp, -1, func(e *kernel.Env) {
		tl := &TLAB{}
		for i := 0; i < 600; i++ {
			r.j.Alloc(e, tl, 1024)
			r.j.Safepoint(e)
		}
	})
	r.k.Run()
	st := r.j.Stats()
	if st.MinorGCs == 0 {
		t.Fatal("no GCs")
	}
	if st.CopiedBytes <= 0 {
		t.Error("no survivor bytes copied")
	}
	// Copied ~= survival x nursery per minor GC (worker shares truncate).
	want := float64(st.MinorGCs) * smallConfig().SurvivalRate * float64(smallConfig().NurseryBytes)
	if got := float64(st.CopiedBytes); got < 0.5*want || got > 1.5*want {
		t.Errorf("copied %v, want ~%v", got, want)
	}
}

func TestNurseryRecycledInCaches(t *testing.T) {
	// After a GC, re-allocating the nursery must miss the caches (the
	// recycle invalidates stale lines) — otherwise zero-init bursts would
	// spuriously hit.
	r := newRig(smallConfig())
	var dramStoresFirst, dramStoresSecond uint64
	r.k.Spawn("app", kernel.ClassApp, -1, func(e *kernel.Env) {
		tl := &TLAB{}
		r.j.Alloc(e, tl, 1024)
		dramStoresFirst = e.Counters().StoresDRAM
		// Churn through the nursery to force one GC, then allocate again.
		for i := 0; i < 300; i++ {
			r.j.Alloc(e, tl, 1024)
			r.j.Safepoint(e)
		}
		before := e.Counters().StoresDRAM
		r.j.Alloc(e, tl, int64(smallConfig().TLABBytes))
		dramStoresSecond = e.Counters().StoresDRAM - before
	})
	r.k.Run()
	if r.j.Stats().MinorGCs == 0 {
		t.Fatal("no GC happened")
	}
	if dramStoresFirst == 0 {
		t.Error("first zero-init burst did not go to DRAM")
	}
	if dramStoresSecond == 0 {
		t.Error("post-GC zero-init burst hit in caches: nursery lines were not invalidated")
	}
}

func TestJITRunsAndExits(t *testing.T) {
	cfg := smallConfig()
	cfg.JITWorkInstrs = 300_000
	r := newRig(cfg)
	r.k.Spawn("app", kernel.ClassApp, -1, func(e *kernel.Env) {
		e.Compute(&cpu.Block{Instrs: 500_000, IPC: 2})
	})
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	jit := r.k.Threads()[r.threadIdx(t, "jit")]
	if jit.Counters().Instrs != 300_000 {
		t.Errorf("JIT executed %d instructions, want 300000", jit.Counters().Instrs)
	}
	if !jit.Exited() {
		t.Error("JIT thread did not exit")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GCThreads = 0
	r := newRigSafe(cfg)
	if r != nil {
		t.Error("zero GC threads accepted")
	}
}

func newRigSafe(cfg Config) (r *rig) {
	defer func() { recover() }()
	return newRig(cfg)
}

func TestSemispacePolicyCollectsWholeHeap(t *testing.T) {
	run := func(policy Policy) Stats {
		cfg := smallConfig()
		cfg.Policy = policy
		r := newRig(cfg)
		r.k.Spawn("app", kernel.ClassApp, -1, func(e *kernel.Env) {
			tl := &TLAB{}
			for i := 0; i < 900; i++ {
				r.j.Alloc(e, tl, 1024)
				r.j.Safepoint(e)
			}
		})
		if _, err := r.k.Run(); err != nil {
			t.Fatal(err)
		}
		return r.j.Stats()
	}
	gen := run(GenerationalCopying)
	semi := run(FullHeapSemispace)
	if semi.MajorGCs == 0 || semi.MinorGCs != 0 {
		t.Errorf("semispace collections: %d minor, %d major (want all major)",
			semi.MinorGCs, semi.MajorGCs)
	}
	if gen.MajorGCs != 0 {
		t.Errorf("generational run did a major GC with an empty mature space")
	}
	if semi.GCTime <= gen.GCTime {
		t.Errorf("semispace GC time %v not larger than generational %v", semi.GCTime, gen.GCTime)
	}
}

func TestPolicyString(t *testing.T) {
	if GenerationalCopying.String() != "generational" || FullHeapSemispace.String() != "semispace" || Policy(9).String() != "?" {
		t.Error("policy strings wrong")
	}
}
