// Package jvm simulates the managed-runtime substrate: a generational heap
// with bump-pointer TLAB allocation, mandatory zero-initialisation of fresh
// memory (Java's memory-safety guarantee, and the first source of store
// bursts), and a stop-the-world parallel copying collector run by service
// threads (the second source of store bursts, and a major source of
// application/service-thread synchronization).
//
// The design mirrors Jikes RVM's default configuration used in the paper:
// application threads reach safepoints between work items, a collection
// stops the world, parallel GC worker threads trace live objects
// (pointer-chasing dependent loads) and copy survivors to the mature space
// (load/store bursts), then the world restarts.
package jvm

import (
	"fmt"

	"depburst/internal/cpu"
	"depburst/internal/kernel"
	"depburst/internal/mem"
	"depburst/internal/metrics"
	"depburst/internal/rng"
	"depburst/internal/trace"
	"depburst/internal/units"
)

// Policy selects the collection strategy.
type Policy int

// Collector policies.
const (
	// GenerationalCopying is the paper's (and Jikes RVM's) default: minor
	// collections evacuate nursery survivors to the mature space; a major
	// collection compacts the mature space when it fills.
	GenerationalCopying Policy = iota
	// FullHeapSemispace traces and copies the entire live heap at every
	// collection — the classic non-generational alternative, far more
	// expensive per pause. It exists to study how the predictors and the
	// energy manager react to a different runtime (GC-policy ablation).
	FullHeapSemispace
)

func (p Policy) String() string {
	switch p {
	case GenerationalCopying:
		return "generational"
	case FullHeapSemispace:
		return "semispace"
	default:
		return "?"
	}
}

// Config sizes the managed heap and the collector.
type Config struct {
	// Policy selects the collection strategy.
	Policy Policy

	// NurseryBytes is the young-generation size; a minor collection
	// triggers when it fills.
	NurseryBytes int64
	// MatureBytes caps the old generation; exceeding the headroom
	// triggers a major (full-heap) collection.
	MatureBytes int64
	// TLABBytes is the thread-local allocation buffer size; refilling a
	// TLAB zero-initialises it (the allocation store burst).
	TLABBytes int64
	// GCThreads is the number of parallel collector threads.
	GCThreads int
	// SurvivalRate is the fraction of the nursery live at a minor GC.
	SurvivalRate float64
	// MatureLiveFrac is the fraction of the mature space live at a major GC.
	MatureLiveFrac float64
	// ObjectBytes is the mean object size, which sets how many tracing
	// loads a live byte costs.
	ObjectBytes int64
	// TraceGapInstrs is the instruction distance between dependent loads
	// while tracing (scanning an object between pointer hops).
	TraceGapInstrs int64
	// TraceDepFrac is the fraction of tracing loads that chain on the
	// previous one; the remainder overlap (breadth-first MLP).
	TraceDepFrac float64
	// JITWorkInstrs is the amount of (replayed) compilation the JIT
	// service thread performs at startup; 0 disables the JIT thread.
	JITWorkInstrs int64
}

// DefaultConfig returns a moderate-pressure heap scaled to the simulator's
// compressed time scale (the paper's 68–108 MB heaps shrink with the ~100x
// shorter runs).
func DefaultConfig() Config {
	return Config{
		NurseryBytes:   1 << 20, // 1 MiB
		MatureBytes:    16 << 20,
		TLABBytes:      32 << 10,
		GCThreads:      4,
		SurvivalRate:   0.15,
		MatureLiveFrac: 0.4,
		ObjectBytes:    64,
		TraceGapInstrs: 20,
		TraceDepFrac:   0.55,
		JITWorkInstrs:  0,
	}
}

// Address-space layout: the managed heap lives in its own range; workload
// static data uses addresses above HeapTop.
const (
	HeapBase   mem.Addr = 0x1000_0000
	nurseryOff          = 0
	matureOff           = 1 << 28 // mature space 256 MiB above nursery base
	// HeapTop is the first address above the managed heap; workloads
	// place non-heap regions at or above it.
	HeapTop mem.Addr = HeapBase + (1 << 30)
)

// Stats aggregates collector activity over a run.
type Stats struct {
	MinorGCs, MajorGCs int
	// GCTime is total stop-the-world time; Pauses holds each pause.
	GCTime      units.Time
	Pauses      []Pause
	AllocBytes  int64
	CopiedBytes int64
}

// Pause records one stop-the-world collection.
type Pause struct {
	Start, End units.Time
	Major      bool
}

// JVM is one managed-runtime instance. A machine usually runs one, but
// several can co-run (consolidation): each gets its own kernel thread
// group, heap range and stop-the-world domain.
type JVM struct {
	k     *kernel.Kernel
	hier  *mem.Hierarchy
	cfg   Config
	r     *rng.Source
	group int

	nurseryBase mem.Addr
	matureBase  mem.Addr

	nurseryUsed int64
	matureUsed  int64

	gcRequested bool
	gcActive    bool
	roundMajor  bool
	gcStart     units.Time
	gcDone      kernel.Futex
	gcWork      kernel.Futex
	gcBarrier   *kernel.Barrier
	workPending []bool
	copyShare   []int64 // per-worker survivor bytes this round
	traceShare  []int64 // per-worker bytes to trace this round

	stats Stats

	// reg, when non-nil, receives stop-the-world span records as each
	// collection finishes.
	reg *metrics.Registry
}

// New creates a JVM in thread group 0 and spawns its service threads
// (GC workers and, if configured, the JIT compiler).
func New(k *kernel.Kernel, hier *mem.Hierarchy, cfg Config, r *rng.Source) *JVM {
	return NewGroup(k, hier, cfg, r, 0)
}

// NewGroup creates a JVM bound to the given kernel thread group, with its
// heap placed in a group-private address range. Application threads of
// this instance must be spawned with kernel.SpawnGroup using the same
// group, so that a collection stops exactly this instance's world.
func NewGroup(k *kernel.Kernel, hier *mem.Hierarchy, cfg Config, r *rng.Source, group int) *JVM {
	if cfg.GCThreads <= 0 {
		panic("jvm: need at least one GC thread")
	}
	if group < 0 || group > 255 {
		panic("jvm: group out of range")
	}
	base := HeapBase + mem.Addr(group)<<33 // 8 GiB apart, clear of workload regions
	j := &JVM{
		k:           k,
		hier:        hier,
		cfg:         cfg,
		r:           r,
		group:       group,
		nurseryBase: base + nurseryOff,
		matureBase:  base + matureOff,
		gcBarrier:   kernel.NewBarrier(cfg.GCThreads),
		workPending: make([]bool, cfg.GCThreads),
		copyShare:   make([]int64, cfg.GCThreads),
		traceShare:  make([]int64, cfg.GCThreads),
	}
	k.SetParkHook(j.onPark)
	for i := 0; i < cfg.GCThreads; i++ {
		idx := i
		k.SpawnGroup("gc-worker", kernel.ClassService, group, idx%k.Cores(), j.workerProgram(idx))
	}
	if cfg.JITWorkInstrs > 0 {
		k.SpawnGroup("jit", kernel.ClassService, group, -1, j.jitProgram())
	}
	return j
}

// Group returns the kernel thread group this instance stops and restarts.
func (j *JVM) Group() int { return j.group }

// markLabel names this instance's GC phase marks. The default instance
// keeps the bare labels the COOP predictor matches; tenants suffix their
// group so co-running instances stay distinguishable.
func (j *JVM) markLabel(base string) string {
	if j.group == 0 {
		return base
	}
	return fmt.Sprintf("%s#%d", base, j.group)
}

// Stats returns collector statistics accumulated so far.
func (j *JVM) Stats() Stats { return j.stats }

// InGC reports that a collection is requested or in progress — the
// sampled-simulation detector drops back to detailed simulation while it
// holds.
func (j *JVM) InGC() bool { return j.gcRequested || j.gcActive }

// SetMetrics attaches a per-run observability registry (nil disables).
func (j *JVM) SetMetrics(reg *metrics.Registry) { j.reg = reg }

// Config returns the JVM configuration.
func (j *JVM) Config() Config { return j.cfg }

// HeapRegion returns the address region spanning the live heap, which GC
// tracing and benchmark heap accesses draw from.
func (j *JVM) HeapRegion() trace.RandomRegion {
	size := j.matureUsed
	if size < j.cfg.NurseryBytes {
		size = j.cfg.NurseryBytes
	}
	return trace.RandomRegion{Base: j.matureBase, Size: size + j.cfg.NurseryBytes}
}

// TLAB is a thread-local allocation buffer. Each application thread owns
// one and allocates from it with a pure pointer bump; refills come from the
// shared nursery and pay the zero-initialisation store burst.
type TLAB struct {
	base mem.Addr
	used int64
	size int64
	blk  cpu.Block // reusable block for zero-init bursts
}

// Alloc allocates bytes for the calling thread, triggering zero-init
// bursts on TLAB refill and a stop-the-world GC when the nursery is full.
func (j *JVM) Alloc(e *kernel.Env, tl *TLAB, bytes int64) {
	if bytes <= 0 {
		return
	}
	j.stats.AllocBytes += bytes
	if tl.used+bytes <= tl.size {
		tl.used += bytes
		return
	}
	j.refill(e, tl, bytes)
}

func (j *JVM) refill(e *kernel.Env, tl *TLAB, bytes int64) {
	for {
		if j.gcRequested || j.gcActive {
			j.safepointPark(e)
		}
		size := j.cfg.TLABBytes
		if bytes > size {
			size = bytes
		}
		if j.nurseryUsed+size > j.cfg.NurseryBytes {
			// Nursery exhausted: request a collection and stop at
			// the safepoint until it completes.
			j.gcRequested = true
			j.safepointPark(e)
			continue
		}
		base := j.nurseryBase + mem.Addr(j.nurseryUsed)
		j.nurseryUsed += size
		// The zero-init burst is steady-state application-thread work:
		// under sampled simulation it fast-forwards with the learned
		// rates (heap accounting above is untouched, so collection
		// cadence is preserved); in detailed mode it feeds the
		// fast-forward rate pool alongside the compute blocks it is
		// interleaved with.
		if e.FastCompute(trace.ZeroInitInstrs(size)) {
			// The burst's timing was extrapolated; apply its cache-state
			// effect cheaply so the (always detailed) collector later
			// reads survivors from cache, as it would in a full run.
			j.hier.InstallRange(base, size)
		} else {
			trace.FillZeroInit(&tl.blk, base, size, 2.0)
			e.ComputeSampled(&tl.blk)
		}
		tl.base, tl.size, tl.used = base, size, bytes
		return
	}
}

// Safepoint is called by application threads between work items; the thread
// parks here while a collection is pending or in progress.
func (j *JVM) Safepoint(e *kernel.Env) {
	if j.gcRequested || j.gcActive {
		j.safepointPark(e)
	}
}

func (j *JVM) safepointPark(e *kernel.Env) {
	for {
		slept := e.ParkIf(&j.gcDone, func() bool { return j.gcRequested || j.gcActive })
		if !slept {
			return
		}
	}
}

// onPark runs (in engine context) whenever any thread goes to sleep; when a
// collection has been requested and every application thread has stopped,
// it starts the GC round.
func (j *JVM) onPark(now units.Time) {
	if !j.gcRequested || j.gcActive {
		return
	}
	if j.k.RunningOrRunnableGroup(kernel.ClassApp, j.group) {
		return
	}
	j.gcActive = true
	j.gcStart = now
	j.roundMajor = false

	survivors := int64(float64(j.nurseryUsed) * j.cfg.SurvivalRate)
	if j.cfg.Policy == FullHeapSemispace {
		// Semispace collections are always whole-heap.
		j.roundMajor = true
	} else if j.matureUsed+survivors > j.cfg.MatureBytes {
		j.roundMajor = true
	}

	// Partition this round's work across the GC worker threads.
	n := int64(j.cfg.GCThreads)
	traceBytes := int64(float64(j.nurseryUsed) * j.cfg.SurvivalRate)
	copyBytes := survivors
	if j.roundMajor {
		live := int64(float64(j.matureUsed) * j.cfg.MatureLiveFrac)
		traceBytes += live
		copyBytes += live
	}
	for i := range j.copyShare {
		j.traceShare[i] = traceBytes / n
		j.copyShare[i] = copyBytes / n
		j.workPending[i] = true
	}
	j.k.Recorder().Mark(now, j.markLabel("gc-start"))
	j.k.WakeAt(&j.gcWork, j.cfg.GCThreads, now)
}

// workerProgram is the body of one parallel GC worker thread.
func (j *JVM) workerProgram(idx int) kernel.Program {
	return func(e *kernel.Env) {
		r := j.r.Fork(uint64(idx) + 0x9C)
		var blk cpu.Block
		for {
			e.ParkIf(&j.gcWork, func() bool { return !j.workPending[idx] })
			j.workPending[idx] = false
			j.collect(e, idx, r, &blk)
			e.BarrierWait(j.gcBarrier)
			if idx == 0 {
				j.finishRound(e)
			}
		}
	}
}

// collect performs this worker's share of one collection: trace live
// objects (dependent pointer-chasing loads), then copy survivors into the
// mature space (load+store bursts that fill the store queue).
func (j *JVM) collect(e *kernel.Env, idx int, r *rng.Source, blk *cpu.Block) {
	const chunkLoads = 512
	const chunkCopy = 32 << 10

	// Trace phase: one load per object header plus reference fields.
	heap := j.HeapRegion()
	loads := j.traceShare[idx] / j.cfg.ObjectBytes
	for loads > 0 {
		n := int64(chunkLoads)
		if loads < n {
			n = loads
		}
		trace.FillPointerChase(blk, heap, n, j.cfg.TraceGapInstrs, j.cfg.TraceDepFrac, 1.5, r)
		e.Compute(blk)
		loads -= n
	}

	// Copy phase: evacuate survivors to the mature space.
	remaining := j.copyShare[idx]
	for remaining > 0 {
		n := int64(chunkCopy)
		if remaining < n {
			n = remaining
		}
		src := j.nurseryBase + mem.Addr(r.Int63n(maxI64(j.nurseryUsed, 1)))
		dst := j.matureBase + mem.Addr(j.matureUsed)
		j.matureUsed += n
		j.stats.CopiedBytes += n
		trace.FillCopy(blk, src, dst, n, 2.0)
		e.Compute(blk)
		remaining -= n
	}
}

// finishRound (worker 0 only) accounts the collection, recycles the
// nursery, and restarts the world.
func (j *JVM) finishRound(e *kernel.Env) {
	now := e.Now()
	if j.roundMajor {
		j.stats.MajorGCs++
		// Compaction: the mature space shrinks to its live data. The
		// copied live data was bump-allocated above; fold it back.
		j.matureUsed = int64(float64(j.matureUsed) * j.cfg.MatureLiveFrac)
	} else {
		j.stats.MinorGCs++
	}
	j.stats.GCTime += now - j.gcStart
	j.stats.Pauses = append(j.stats.Pauses, Pause{Start: j.gcStart, End: now, Major: j.roundMajor})
	j.reg.RecordGCSpan(j.gcStart, now, j.roundMajor)

	// Recycle the nursery: fresh allocations must not hit stale lines.
	j.hier.InvalidateRange(j.nurseryBase, j.nurseryUsed)
	j.nurseryUsed = 0

	j.gcActive = false
	j.gcRequested = false
	j.k.Recorder().Mark(now, j.markLabel("gc-end"))
	e.Wake(&j.gcDone, j.gcDone.Waiters())
}

// jitProgram models the (replay-compiled) just-in-time compiler: a burst of
// compute-intensive compilation at startup, then exit.
func (j *JVM) jitProgram() kernel.Program {
	return func(e *kernel.Env) {
		r := j.r.Fork(0x717)
		var blk cpu.Block
		prof := trace.Profile{
			IPC:        3.0,
			LoadsPerKI: 4,
			DepFrac:    0.1,
			Addr:       trace.RandomRegion{Base: HeapTop, Size: 192 << 10},
		}
		remaining := j.cfg.JITWorkInstrs
		for remaining > 0 {
			n := int64(100_000)
			if remaining < n {
				n = remaining
			}
			trace.FillBlock(&blk, prof, n, r)
			e.Compute(&blk)
			remaining -= n
		}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
