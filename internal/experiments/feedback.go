package experiments

import (
	"context"

	"depburst/internal/dacapo"
	"depburst/internal/energy"
	"depburst/internal/report"
	"depburst/internal/sim"
)

// FeedbackRun executes spec under the closed-loop feedback manager
// (memoised). The manager is nil when the result came from the persistent
// disk cache.
func (r *Runner) FeedbackRun(spec dacapo.Spec, threshold float64) (*sim.Result, *energy.FeedbackManager) {
	res, mgrAny := r.runDo(runKey{kind: runFeedback, bench: spec.Name, threshold: threshold},
		func(ctx context.Context) (*sim.Result, any, error) {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			cfg := r.Base
			cfg.Freq = FMax
			spec.Configure(&cfg)
			mcfg := energy.DefaultManagerConfig(threshold)
			key, ok := r.diskKey("feedback", cfg, spec, mcfg)
			if res := r.diskGet(key, ok); res != nil {
				return res, nil, nil
			}
			release, err := r.gate(ctx)
			if err != nil {
				return nil, nil, err
			}
			defer release()
			mg := energy.NewFeedbackManager(mcfg)
			res, err := r.simulate(ctx, cfg, func(m *sim.Machine) { m.SetGovernor(mg.Governor()) }, dacapo.New(spec))
			if err != nil {
				return nil, nil, err
			}
			r.diskPut(key, ok, res)
			return res, mg, nil
		})
	mg, _ := mgrAny.(*energy.FeedbackManager)
	return res, mg
}

// FeedbackAblation compares the paper's open-loop manager with the
// closed-loop feedback extension at the 10% bound: the feedback variant
// should hold the realised slowdown closer to the bound while saving at
// least as much energy.
func (r *Runner) FeedbackAblation(threshold float64) *report.Table {
	var warm []func()
	for _, spec := range r.Suite() {
		spec := spec
		warm = append(warm,
			func() { r.Truth(spec, FMax) },
			func() { r.ManagedRun(spec, threshold) },
			func() { r.FeedbackRun(spec, threshold) })
	}
	r.FanOut(warm...)

	t := &report.Table{
		Title: "Extension: open-loop (paper) vs closed-loop feedback manager (10% bound)",
		Header: []string{"benchmark", "type",
			"open slowdown", "open savings", "fb slowdown", "fb savings"},
	}
	var openM, fbM, openOver, fbOver []float64
	for _, spec := range r.Suite() {
		ref := r.Truth(spec, FMax)
		open, _ := r.ManagedRun(spec, threshold)
		fb, _ := r.FeedbackRun(spec, threshold)
		oSlow := report.RelError(float64(open.Time), float64(ref.Time))
		oSave := 1 - float64(open.Energy)/float64(ref.Energy)
		fSlow := report.RelError(float64(fb.Time), float64(ref.Time))
		fSave := 1 - float64(fb.Energy)/float64(ref.Energy)
		openOver = append(openOver, oSlow-threshold)
		fbOver = append(fbOver, fSlow-threshold)
		if spec.Memory {
			openM = append(openM, oSave)
			fbM = append(fbM, fSave)
		}
		t.AddRow(spec.Name, spec.Class(),
			report.Pct(oSlow), report.Pct(oSave), report.Pct(fSlow), report.Pct(fSave))
	}
	t.AddRow("avg (memory)", "M", "", report.Pct(report.Mean(openM)), "", report.Pct(report.Mean(fbM)))
	t.AddNote("mean overshoot beyond the bound: open %s, feedback %s",
		report.Pct(report.Mean(openOver)), report.Pct(report.Mean(fbOver)))
	return t
}
