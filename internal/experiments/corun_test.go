package experiments

import (
	"os"
	"testing"

	"depburst/internal/dacapo"
	"depburst/internal/kernel"
	"depburst/internal/units"
)

func TestCoRunTenantsIsolatedWorlds(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	r := NewRunner()
	a, _ := dacapo.ByName("pmd.scale")
	b, _ := dacapo.ByName("lusearch.fix")
	res := r.coRunTruth(a, b, 1000)

	// Both tenants ran and finished.
	if tenantEnd(res, a.Name) <= 0 || tenantEnd(res, b.Name) <= 0 {
		t.Fatal("a tenant never ran")
	}

	// Both tenants collected garbage: marks for group 0 (bare) and
	// group 1 (suffixed) both appear.
	var g0, g1 int
	for _, mk := range res.Marks {
		switch mk.Label {
		case "gc-start":
			g0++
		case "gc-start#1":
			g1++
		}
	}
	if g0 == 0 || g1 == 0 {
		t.Fatalf("collections per tenant: %d / %d", g0, g1)
	}

	// Isolation: during tenant 1's GC windows, tenant 0's application
	// threads may keep executing (the worlds are separate). Find one
	// g1 window and check some epoch inside it has group-0 app work.
	type window struct{ lo, hi units.Time }
	var wins []window
	var lo units.Time = -1
	for _, mk := range res.Marks {
		switch mk.Label {
		case "gc-start#1":
			lo = mk.At
		case "gc-end#1":
			if lo >= 0 {
				wins = append(wins, window{lo, mk.At})
				lo = -1
			}
		}
	}
	if len(wins) == 0 {
		t.Fatal("no tenant-1 GC windows")
	}
	// Thread IDs belonging to tenant 0's app threads.
	group0 := map[kernel.ThreadID]bool{}
	for _, th := range res.Threads {
		if th.Class == kernel.ClassApp && len(th.Name) >= len(a.Name) && th.Name[:len(a.Name)] == a.Name {
			group0[th.ID] = true
		}
	}
	overlapWork := false
	for _, ep := range res.Epochs {
		for _, w := range wins {
			if ep.Start >= w.lo && ep.End <= w.hi {
				for _, sl := range ep.Slices {
					if group0[sl.TID] && sl.Delta.Instrs > 0 {
						overlapWork = true
					}
				}
			}
		}
	}
	if !overlapWork {
		t.Error("tenant 0 never executed during tenant 1's GC: worlds are not isolated")
	}
}

func TestConsolidationTable(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	r := NewRunner()
	tb := r.Consolidation([][2]string{{"pmd.scale", "lusearch.fix"}})
	tb.Fprint(os.Stdout)
	if len(tb.Rows) != 1 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
}
