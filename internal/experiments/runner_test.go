package experiments

import (
	"testing"

	"depburst/internal/dacapo"
	"depburst/internal/kernel"
)

func TestTruthMemoised(t *testing.T) {
	r := NewRunner()
	spec, err := dacapo.ByName("pmd.scale")
	if err != nil {
		t.Fatal(err)
	}
	a := r.Truth(spec, 1000)
	b := r.Truth(spec, 1000)
	if a != b {
		t.Error("Truth did not memoise (distinct result pointers)")
	}
	c := r.Truth(spec, 2000)
	if c == a {
		t.Error("different frequencies share a cache entry")
	}
	if c.Time >= a.Time {
		t.Errorf("2 GHz run (%v) not faster than 1 GHz run (%v)", c.Time, a.Time)
	}
}

func TestObserveMapping(t *testing.T) {
	r := NewRunner()
	spec, _ := dacapo.ByName("pmd.scale")
	res := r.Truth(spec, 1000)
	obs := Observe(res)
	if obs.Base != 1000 || obs.Total != res.Time {
		t.Errorf("observation base/total: %v/%v", obs.Base, obs.Total)
	}
	if len(obs.Threads) != len(res.Threads) {
		t.Errorf("threads %d vs %d", len(obs.Threads), len(res.Threads))
	}
	if len(obs.Epochs) != len(res.Epochs) || len(obs.Marks) != len(res.Marks) {
		t.Error("epochs/marks not carried over")
	}
	apps := 0
	for _, th := range obs.Threads {
		if th.Class == kernel.ClassApp {
			apps++
		}
	}
	if apps != spec.Threads+1 { // workers + main
		t.Errorf("app threads in observation: %d", apps)
	}
}

func TestModelsSet(t *testing.T) {
	ms := Models()
	if len(ms) != 6 {
		t.Fatalf("model set has %d entries, want 6", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		names[m.Name()] = true
	}
	for _, want := range []string{"M+CRIT", "M+CRIT+BURST", "COOP", "COOP+BURST", "DEP", "DEP+BURST"} {
		if !names[want] {
			t.Errorf("missing model %q", want)
		}
	}
}

func TestPredictionErrorIdentity(t *testing.T) {
	r := NewRunner()
	spec, _ := dacapo.ByName("pmd.scale")
	for _, m := range Models() {
		e := r.PredictionError(spec, m, 1000, 1000)
		if e < -0.02 || e > 0.02 {
			t.Errorf("%s: identity prediction error %.2f%%", m.Name(), e*100)
		}
	}
}
