package experiments

import (
	"os"
	"testing"

	"depburst/internal/core"
	"depburst/internal/report"
)

func TestSubstrateAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	r := NewRunner()
	r.GCPolicyAblation().Fprint(os.Stdout)
	r.PrefetchAblation().Fprint(os.Stdout)
}

func TestSequentialEngineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	r := NewRunner()
	tb := r.SequentialBackground()
	tb.Fprint(os.Stdout)
	// CRIT must dominate Leading Loads on the sequential suite, and the
	// pointer-chasing workload must be where Leading Loads fails hardest
	// (its constant-latency, independent-miss assumption).
	w := seqSuite()[2] // seq-pointer
	base := r.seqTruth(w, 1000)
	target := r.seqTruth(w, 4000)
	obs := Observe(base)
	crit := core.NewMCrit(core.Options{Engine: core.CRIT})
	ll := core.NewMCrit(core.Options{Engine: core.LeadingLoads})
	eCrit := report.RelError(float64(crit.Predict(obs, 4000)), float64(target.Time))
	eLL := report.RelError(float64(ll.Predict(obs, 4000)), float64(target.Time))
	if abs(eCrit) >= abs(eLL) {
		t.Errorf("CRIT (%.3f) not better than Leading Loads (%.3f) on pointer chasing", eCrit, eLL)
	}
	if abs(eLL) < 0.15 {
		t.Errorf("Leading Loads error %.3f implausibly low on pointer chasing", eLL)
	}
}

func TestHeapPressureSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	tb := NewRunner().HeapPressureSweep("pmd.scale")
	if len(tb.Rows) != 5 {
		t.Fatalf("sweep rows %d", len(tb.Rows))
	}
	tb.Fprint(os.Stdout)
}

func TestRegressionComparisonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	tb := NewRunner().RegressionComparison()
	if len(tb.Rows) != 15 { // 7 benchmarks x 2 targets + avg row
		t.Fatalf("rows %d", len(tb.Rows))
	}
	tb.Fprint(os.Stdout)
}
