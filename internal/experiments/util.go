package experiments

import "strconv"

func itoa(n int) string { return strconv.Itoa(n) }

func f2(x float64) string { return strconv.FormatFloat(x, 'f', 2, 64) }
