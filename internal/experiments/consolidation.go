package experiments

import (
	"context"

	"depburst/internal/dacapo"
	"depburst/internal/energy"
	"depburst/internal/kernel"
	"depburst/internal/report"
	"depburst/internal/sim"
	"depburst/internal/units"
)

// coRunTruth runs a consolidated pair at frequency f (memoised and
// singleflight-deduplicated like Truth).
func (r *Runner) coRunTruth(a, b dacapo.Spec, f units.Freq) *sim.Result {
	e := r.truthEntryFor(truthKey{bench: "corun/" + a.Name + "+" + b.Name, freq: f})
	res, _, err := e.do(r.context(), func(ctx context.Context) (*sim.Result, any, error) {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		cfg := r.Base
		cfg.Freq = f
		a.Configure(&cfg) // tenant 0 uses the machine's default JVM
		key, ok := r.diskKey("corun-truth", cfg, a, b)
		if res := r.diskGet(key, ok); res != nil {
			return res, nil, nil
		}
		release, err := r.gate(ctx)
		if err != nil {
			return nil, nil, err
		}
		defer release()
		res, err := r.simulate(ctx, cfg, nil, &dacapo.CoRun{Specs: []dacapo.Spec{a, b}})
		if err != nil {
			return nil, nil, err
		}
		r.diskPut(key, ok, res)
		return res, nil, nil
	})
	if err != nil {
		panic(canceled{err})
	}
	return res
}

// coRunManaged runs the consolidated pair under the chip-wide energy
// manager (memoised).
func (r *Runner) coRunManaged(a, b dacapo.Spec, threshold float64) *sim.Result {
	res, _ := r.runDo(runKey{kind: runCoRunChip, bench: a.Name + "+" + b.Name, threshold: threshold, holdOff: 1},
		func(ctx context.Context) (*sim.Result, any, error) {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			cfg := r.Base
			cfg.Freq = FMax
			a.Configure(&cfg)
			mcfg := energy.DefaultManagerConfig(threshold)
			key, ok := r.diskKey("corun-chip", cfg, a, b, mcfg)
			if res := r.diskGet(key, ok); res != nil {
				return res, nil, nil
			}
			release, err := r.gate(ctx)
			if err != nil {
				return nil, nil, err
			}
			defer release()
			mg := energy.NewManager(mcfg)
			res, err := r.simulate(ctx, cfg, func(m *sim.Machine) { m.SetGovernor(mg.Governor()) }, &dacapo.CoRun{Specs: []dacapo.Spec{a, b}})
			if err != nil {
				return nil, nil, err
			}
			r.diskPut(key, ok, res)
			return res, mg, nil
		})
	return res
}

// tenantEnd returns when the given tenant's application threads finished
// (max exit time over threads whose names carry the benchmark's prefix).
func tenantEnd(res *sim.Result, bench string) units.Time {
	var end units.Time
	for _, t := range res.Threads {
		if t.Class != kernel.ClassApp {
			continue
		}
		if len(t.Name) >= len(bench) && t.Name[:len(bench)] == bench {
			if t.End > end {
				end = t.End
			}
		}
	}
	return end
}

// Consolidation is the multi-tenant study: two benchmarks co-run on the
// four cores, each in its own managed-runtime instance (heap, GC,
// stop-the-world domain). The table reports each tenant's slowdown from
// interference at 4 GHz, and what the chip-wide energy manager does to the
// consolidated pair.
func (r *Runner) Consolidation(pairs [][2]string) *report.Table {
	if pairs == nil {
		pairs = [][2]string{
			{"xalan", "sunflow"},  // memory + compute
			{"lusearch", "pmd"},   // memory + memory
			{"sunflow", "avrora"}, // compute + compute
		}
	}
	specs := make([][2]dacapo.Spec, len(pairs))
	var warm []func()
	for i, p := range pairs {
		a, err := dacapo.ByName(p[0])
		if err != nil {
			panic(err)
		}
		b, err := dacapo.ByName(p[1])
		if err != nil {
			panic(err)
		}
		specs[i] = [2]dacapo.Spec{a, b}
		warm = append(warm,
			func() { r.Truth(a, FMax) },
			func() { r.Truth(b, FMax) },
			func() { r.coRunTruth(a, b, FMax) },
			func() { r.coRunManaged(a, b, 0.10) })
	}
	r.FanOut(warm...)

	t := &report.Table{
		Title: "Extension: consolidated tenants (two JVMs, four cores)",
		Header: []string{"pair", "A interference", "B interference",
			"managed slowdown", "managed savings"},
	}
	for i, p := range pairs {
		a, b := specs[i][0], specs[i][1]
		soloA := r.Truth(a, FMax)
		soloB := r.Truth(b, FMax)
		co := r.coRunTruth(a, b, FMax)

		interA := report.RelError(float64(tenantEnd(co, a.Name)), float64(soloA.Time))
		interB := report.RelError(float64(tenantEnd(co, b.Name)), float64(soloB.Time))

		// Managed co-run: the chip-wide DEP+BURST manager governs the
		// consolidated pair against the unmanaged co-run.
		managed := r.coRunManaged(a, b, 0.10)
		mSlow := report.RelError(float64(managed.Time), float64(co.Time))
		mSave := 1 - float64(managed.Energy)/float64(co.Energy)

		t.AddRow(p[0]+" + "+p[1],
			report.Pct(interA), report.Pct(interB),
			report.Pct(mSlow), report.Pct(mSave))
	}
	t.AddNote("interference: tenant completion vs running alone at 4 GHz; managed columns vs the unmanaged co-run")
	return t
}
