package experiments

import (
	"depburst/internal/core"
	"depburst/internal/report"
	"depburst/internal/units"
)

// RegressionComparison contrasts the paper's analytical DEP+BURST predictor
// with the related-work regression alternative (§VII-A): fit T(f) offline
// from two profiling runs (1 and 2 GHz), then predict 3 and 4 GHz. The
// regression family needs no special counters but an extra profiling run —
// and it cannot see phase behaviour, which is where it loses.
func (r *Runner) RegressionComparison() *report.Table {
	t := &report.Table{
		Title: "Comparison: DEP+BURST (one run, counters) vs offline regression (two runs)",
		Header: []string{"benchmark", "target",
			"regression", "DEP+BURST"},
	}
	dep := core.NewDEPBurst()
	// Profiling runs happen on a different day than the deployment run:
	// model run-to-run variation with a different workload seed for the
	// training runs (inputs vary between invocations in practice).
	trainer := r.fork()
	trainer.Base.Seed = r.Base.Seed + 100
	r.FanOut(
		func() { trainer.Prewarm(r.Suite(), 1000, 2000) },
		func() { r.Prewarm(r.Suite(), 1000, 3000, 4000) })
	var regErrs, depErrs []float64
	for _, spec := range r.Suite() {
		t1 := trainer.Truth(spec, 1000)
		t2 := trainer.Truth(spec, 2000)
		reg, err := core.FitRegression([]core.TrainingPoint{
			{Freq: 1000, Time: t1.Time},
			{Freq: 2000, Time: t2.Time},
		})
		if err != nil {
			panic(err)
		}
		obs := Observe(r.Truth(spec, 1000))
		for _, target := range []units.Freq{3000, 4000} {
			actual := r.Truth(spec, target).Time
			eReg := report.RelError(float64(reg.Predict(nil, target)), float64(actual))
			eDep := report.RelError(float64(dep.Predict(obs, target)), float64(actual))
			regErrs = append(regErrs, eReg)
			depErrs = append(depErrs, eDep)
			t.AddRow(spec.Name, target.String(), report.Pct(eReg), report.Pct(eDep))
		}
	}
	t.AddRow("avg abs", "", report.PctAbs(report.MeanAbs(regErrs)), report.PctAbs(report.MeanAbs(depErrs)))
	t.AddNote("regression extrapolates two whole-run times; DEP+BURST predicts from one run's counters")
	t.AddNote("on stationary whole-run prediction the two are competitive; regression has no per-interval signal, so it cannot drive the quantum-level energy manager, and it costs one extra profiling run per application")
	return t
}
