package experiments

import (
	"testing"

	"depburst/internal/core"
	"depburst/internal/dacapo"
	"depburst/internal/report"
	"depburst/internal/units"
)

// sharedRunner memoises truth runs across the assertion tests in this
// package so the paper-result suite stays fast.
var sharedRunner = NewRunner()

// avgAbs computes a model's average absolute error over the whole suite.
func avgAbs(t *testing.T, m core.Model, base, target units.Freq) float64 {
	t.Helper()
	var errs []float64
	for _, spec := range dacapo.Suite() {
		errs = append(errs, sharedRunner.PredictionError(spec, m, base, target))
	}
	return report.MeanAbs(errs)
}

// TestPaperModelOrdering asserts the paper's central accuracy result
// (Figures 1 and 3): M+CRIT > COOP > DEP in error, BURST improves each, and
// DEP+BURST lands in the paper's accuracy band in both directions.
func TestPaperModelOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	type dir struct {
		name         string
		base, target units.Freq
	}
	for _, d := range []dir{{"1->4GHz", 1000, 4000}, {"4->1GHz", 4000, 1000}} {
		mcrit := avgAbs(t, core.NewMCrit(core.Options{}), d.base, d.target)
		mcritB := avgAbs(t, core.NewMCrit(core.Options{Burst: true}), d.base, d.target)
		coop := avgAbs(t, core.NewCOOP(core.Options{}), d.base, d.target)
		coopB := avgAbs(t, core.NewCOOP(core.Options{Burst: true}), d.base, d.target)
		dep := avgAbs(t, core.NewDEP(core.Options{}), d.base, d.target)
		depB := avgAbs(t, core.NewDEPBurst(), d.base, d.target)

		t.Logf("%s: M+CRIT %.1f%% (+B %.1f%%)  COOP %.1f%% (+B %.1f%%)  DEP %.1f%%  DEP+BURST %.1f%%",
			d.name, mcrit*100, mcritB*100, coop*100, coopB*100, dep*100, depB*100)

		if !(mcrit > coop && coop > dep) {
			t.Errorf("%s: model ordering broken: M+CRIT %.3f, COOP %.3f, DEP %.3f",
				d.name, mcrit, coop, dep)
		}
		if depB >= dep {
			t.Errorf("%s: BURST did not improve DEP: %.3f vs %.3f", d.name, depB, dep)
		}
		if mcritB > mcrit+1e-9 {
			t.Errorf("%s: BURST hurt M+CRIT: %.3f vs %.3f", d.name, mcritB, mcrit)
		}
		if coopB >= coop {
			t.Errorf("%s: BURST did not improve COOP: %.3f vs %.3f", d.name, coopB, coop)
		}
		if depB > dep && dep > mcrit {
			t.Errorf("%s: DEP+BURST not the most accurate model", d.name)
		}
	}

	// Accuracy bands (paper: 6% and 8%; allow reproduction slack).
	if e := avgAbs(t, core.NewDEPBurst(), 1000, 4000); e > 0.12 {
		t.Errorf("DEP+BURST 1->4GHz avg abs error %.1f%%, want < 12%%", e*100)
	}
	if e := avgAbs(t, core.NewDEPBurst(), 4000, 1000); e > 0.20 {
		t.Errorf("DEP+BURST 4->1GHz avg abs error %.1f%%, want < 20%%", e*100)
	}
	// M+CRIT must be far worse — the paper's motivation.
	if e := avgAbs(t, core.NewMCrit(core.Options{}), 1000, 4000); e < 0.10 {
		t.Errorf("M+CRIT 1->4GHz error %.1f%% implausibly low", e*100)
	}
}

// TestPaperBurstHelpsMemoryBenchmarks asserts that BURST's benefit
// concentrates in the memory-intensive (allocation-heavy) benchmarks.
func TestPaperBurstHelpsMemoryBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	dep := core.NewDEP(core.Options{})
	depB := core.NewDEPBurst()
	var gainM, gainC []float64
	for _, spec := range dacapo.Suite() {
		e := sharedRunner.PredictionError(spec, dep, 1000, 4000)
		eb := sharedRunner.PredictionError(spec, depB, 1000, 4000)
		gain := abs(e) - abs(eb)
		if spec.Memory {
			gainM = append(gainM, gain)
		} else {
			gainC = append(gainC, gain)
		}
	}
	if report.Mean(gainM) <= report.Mean(gainC) {
		t.Errorf("BURST gain on memory benchmarks (%.3f) not larger than on compute (%.3f)",
			report.Mean(gainM), report.Mean(gainC))
	}
	if report.Mean(gainM) <= 0 {
		t.Errorf("BURST gain on memory benchmarks non-positive: %.3f", report.Mean(gainM))
	}
}

// TestPaperAcrossEpochCTP asserts Figure 4's high-to-low result, where
// across-epoch CTP matters most.
func TestPaperAcrossEpochCTP(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	across := avgAbs(t, core.NewDEP(core.Options{Burst: true}), 4000, 1000)
	per := avgAbs(t, core.NewDEP(core.Options{Burst: true, PerEpochCTP: true}), 4000, 1000)
	t.Logf("4->1GHz: across-epoch %.1f%%, per-epoch %.1f%%", across*100, per*100)
	if across >= per {
		t.Errorf("across-epoch CTP (%.3f) did not beat per-epoch (%.3f) at 4->1GHz", across, per)
	}
}

// TestPaperTable1Calibration asserts the benchmark suite matches Table I:
// classification by GC fraction and the scaled execution times.
func TestPaperTable1Calibration(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	// Paper values in ms (we target value/100, within 35%).
	paperMS := map[string]float64{
		"xalan": 1400, "pmd": 1345, "pmd.scale": 500, "lusearch": 2600,
		"lusearch.fix": 1249, "avrora": 1782, "sunflow": 4900,
	}
	for _, spec := range dacapo.Suite() {
		res := sharedRunner.Truth(spec, 1000)
		gcFrac := float64(res.GC.GCTime) / float64(res.Time)
		if spec.Memory && gcFrac < 0.08 {
			t.Errorf("%s: memory-intensive but GC fraction %.1f%%", spec.Name, gcFrac*100)
		}
		if !spec.Memory && gcFrac > 0.06 {
			t.Errorf("%s: compute-intensive but GC fraction %.1f%%", spec.Name, gcFrac*100)
		}
		want := paperMS[spec.Name] / 100
		got := res.Time.Milliseconds()
		if got < want*0.65 || got > want*1.35 {
			t.Errorf("%s: %.2fms at 1 GHz, want ~%.2fms (paper/100)", spec.Name, got, want)
		}
	}
}

// TestPaperEnergyManager asserts Figure 6's headline: the manager saves
// substantial energy on memory-intensive benchmarks while keeping the
// slowdown near the bound, and saves little on compute-intensive ones.
func TestPaperEnergyManager(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	var savesM, savesC []float64
	for _, spec := range dacapo.Suite() {
		ref := sharedRunner.Truth(spec, FMax)
		res, _ := sharedRunner.ManagedRun(spec, 0.10)
		slow := report.RelError(float64(res.Time), float64(ref.Time))
		save := 1 - float64(res.Energy)/float64(ref.Energy)
		t.Logf("%-12s slowdown %+.1f%% savings %+.1f%%", spec.Name, slow*100, save*100)
		if slow > 0.18 {
			t.Errorf("%s: slowdown %.1f%% blows the 10%% bound", spec.Name, slow*100)
		}
		if spec.Memory {
			savesM = append(savesM, save)
		} else {
			savesC = append(savesC, save)
		}
	}
	if m := report.Mean(savesM); m < 0.12 {
		t.Errorf("memory-intensive average savings %.1f%%, want >= 12%% (paper: 19%%)", m*100)
	}
	if c := report.Mean(savesC); c > 0.10 {
		t.Errorf("compute-intensive average savings %.1f%% implausibly high", c*100)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
