package experiments

import (
	"depburst/internal/core"
	"depburst/internal/dacapo"
	"depburst/internal/report"
	"depburst/internal/units"
)

// EngineAblation compares the per-thread estimator engines (Stall Time,
// Leading Loads, CRIT — §II-A) inside the full DEP+BURST epoch model: the
// paper's motivation for building on CRIT.
func (r *Runner) EngineAblation() *report.Table {
	r.Prewarm(r.Suite(), 1000, 4000)
	engines := []core.Engine{core.StallTime, core.LeadingLoads, core.CRIT}
	t := &report.Table{
		Title:  "Ablation: per-thread engine inside DEP+BURST (avg abs error)",
		Header: []string{"direction", "STALL", "LL", "CRIT"},
	}
	type dir struct {
		name         string
		base, target units.Freq
	}
	for _, d := range []dir{{"1->4GHz", 1000, 4000}, {"4->1GHz", 4000, 1000}} {
		row := []string{d.name}
		for _, eng := range engines {
			m := core.NewDEP(core.Options{Engine: eng, Burst: true})
			var errs []float64
			for _, spec := range r.Suite() {
				errs = append(errs, r.PredictionError(spec, m, d.base, d.target))
			}
			row = append(row, report.PctAbs(report.MeanAbs(errs)))
		}
		t.AddRow(row...)
	}
	t.AddNote("CRIT handles variable DRAM latency; Leading Loads assumes constant; Stall Time underestimates")
	return t
}

// HoldOffAblation sweeps the energy manager's Hold-Off parameter on one
// memory-intensive benchmark (paper §VI-A discusses the trade-off).
func (r *Runner) HoldOffAblation(bench string) *report.Table {
	spec, err := dacapo.ByName(bench)
	if err != nil {
		panic(err)
	}
	holds := []int{1, 2, 4, 8}
	warm := []func(){func() { r.Truth(spec, FMax) }}
	for _, hold := range holds {
		hold := hold
		warm = append(warm, func() { r.managedRunHold(spec, 0.10, hold) })
	}
	r.FanOut(warm...)

	ref := r.Truth(spec, FMax)
	t := &report.Table{
		Title:  "Ablation: energy-manager Hold-Off (" + bench + ", 10% threshold)",
		Header: []string{"hold-off", "slowdown", "savings", "transitions"},
	}
	for _, hold := range holds {
		res, _ := r.managedRunHold(spec, 0.10, hold)
		slow := report.RelError(float64(res.Time), float64(ref.Time))
		save := 1 - float64(res.Energy)/float64(ref.Energy)
		t.AddRow(itoa(hold), report.Pct(slow), report.Pct(save), itoa(res.Transitions))
	}
	return t
}

// QuantumAblation sweeps the scheduling quantum on one benchmark.
func (r *Runner) QuantumAblation(bench string) *report.Table {
	spec, err := dacapo.ByName(bench)
	if err != nil {
		panic(err)
	}
	quanta := []units.Time{20 * units.Microsecond, 50 * units.Microsecond, 100 * units.Microsecond, 200 * units.Microsecond}
	warm := []func(){func() { r.Truth(spec, FMax) }}
	for _, q := range quanta {
		q := q
		warm = append(warm, func() { r.managedRunQuantum(spec, 0.10, q) })
	}
	r.FanOut(warm...)

	ref := r.Truth(spec, FMax)
	t := &report.Table{
		Title:  "Ablation: DVFS quantum (" + bench + ", 10% threshold)",
		Header: []string{"quantum", "slowdown", "savings"},
	}
	for _, q := range quanta {
		res, _ := r.managedRunQuantum(spec, 0.10, q)
		slow := report.RelError(float64(res.Time), float64(ref.Time))
		save := 1 - float64(res.Energy)/float64(ref.Energy)
		t.AddRow(q.String(), report.Pct(slow), report.Pct(save))
	}
	return t
}

// DRAMVariabilityAblation demonstrates why CRIT is the right per-thread
// engine (§II-A): with the realistic variable-latency DRAM (row hits,
// conflicts, queueing), CRIT's chain accounting beats Leading Loads'
// constant-latency assumption; with an idealised fixed-latency memory the
// two engines converge.
func (r *Runner) DRAMVariabilityAblation() *report.Table {
	fixed := r.fork()
	fixed.Base.Hier.DRAM.TRCD = 0
	fixed.Base.Hier.DRAM.TRP = 0
	fixed.Base.Hier.DRAM.TCAS = 27500 // one uniform 27.5 ns access

	r.FanOut(
		func() { r.Prewarm(r.Suite(), 4000, 1000) },
		func() { fixed.Prewarm(r.Suite(), 4000, 1000) })

	t := &report.Table{
		Title:  "Ablation: variable vs fixed DRAM latency, DEP+BURST engines (avg abs error, 4->1 GHz)",
		Header: []string{"memory model", "CRIT", "LL", "LL-CRIT gap"},
	}
	for _, row := range []struct {
		name string
		rn   *Runner
	}{{"variable (default)", r}, {"fixed latency", fixed}} {
		var errCrit, errLL []float64
		for _, spec := range r.Suite() {
			crit := core.NewDEP(core.Options{Engine: core.CRIT, Burst: true})
			ll := core.NewDEP(core.Options{Engine: core.LeadingLoads, Burst: true})
			errCrit = append(errCrit, row.rn.PredictionError(spec, crit, 4000, 1000))
			errLL = append(errLL, row.rn.PredictionError(spec, ll, 4000, 1000))
		}
		c, l := report.MeanAbs(errCrit), report.MeanAbs(errLL)
		t.AddRow(row.name, report.PctAbs(c), report.PctAbs(l), report.Pct(l-c))
	}
	t.AddNote("uniform device latency narrows the gap; the residual comes from dependent miss chains, which Leading Loads cannot see either")
	return t
}

// Table2 prints the simulated system configuration (the paper's Table II).
func (r *Runner) Table2() *report.Table {
	cfg := r.Base
	t := &report.Table{
		Title:  "Table II: simulated system parameters",
		Header: []string{"component", "parameters"},
	}
	t.AddRow("cores", itoa(cfg.Cores)+" out-of-order, "+FMin.String()+" to "+FMax.String())
	t.AddRow("dispatch width", itoa(cfg.Core.DispatchWidth))
	t.AddRow("ROB", itoa(cfg.Core.ROBSize)+" entries")
	t.AddRow("store queue", itoa(cfg.Core.StoreQueueSize)+" entries")
	t.AddRow("MSHRs", itoa(cfg.Core.MSHRs))
	t.AddRow("L2 (private)", itoa(cfg.Hier.L2.SizeBytes>>10)+" KiB, "+itoa(cfg.Hier.L2.Ways)+"-way")
	t.AddRow("L3 (shared)", itoa(cfg.Hier.L3.SizeBytes>>20)+" MiB, "+itoa(cfg.Hier.L3.Ways)+"-way, "+cfg.Hier.L3Latency.String()+" (fixed uncore clock)")
	t.AddRow("DRAM", itoa(cfg.Hier.DRAM.Banks)+" banks, "+cfg.Hier.DRAM.TBurst.String()+"/line bus, tRCD/tCAS/tRP "+cfg.Hier.DRAM.TRCD.String())
	t.AddRow("DVFS quantum", cfg.Quantum.String())
	t.AddRow("DVFS transition", cfg.TransitionLatency.String())
	return t
}
