package experiments

import (
	"context"

	"depburst/internal/dacapo"
	"depburst/internal/energy"
	"depburst/internal/report"
	"depburst/internal/sim"
	"depburst/internal/units"
)

// ManagedRun executes spec under the energy manager with the given
// slowdown threshold, starting (per the paper) at the maximum frequency.
// Like Truth, managed runs are memoised and singleflight-deduplicated.
//
// The returned Manager carries the governor's internal decision state; it
// is nil when the result was served from the persistent disk cache (only
// results persist, and no current experiment consumes the manager).
func (r *Runner) ManagedRun(spec dacapo.Spec, threshold float64) (*sim.Result, *energy.Manager) {
	return r.managedRunHold(spec, threshold, 1)
}

func (r *Runner) managedRunHold(spec dacapo.Spec, threshold float64, holdOff int) (*sim.Result, *energy.Manager) {
	res, mgrAny := r.runDo(runKey{kind: runChip, bench: spec.Name, threshold: threshold, holdOff: holdOff},
		func(ctx context.Context) (*sim.Result, any, error) {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			cfg := r.Base
			cfg.Freq = FMax
			spec.Configure(&cfg)
			mcfg := energy.DefaultManagerConfig(threshold)
			mcfg.HoldOff = holdOff
			key, ok := r.diskKey("chip", cfg, spec, mcfg)
			if res := r.diskGet(key, ok); res != nil {
				return res, nil, nil
			}
			release, err := r.gate(ctx)
			if err != nil {
				return nil, nil, err
			}
			defer release()
			mg := energy.NewManager(mcfg)
			res, err := r.simulate(ctx, cfg, func(m *sim.Machine) { m.SetGovernor(mg.Governor()) }, dacapo.New(spec))
			if err != nil {
				return nil, nil, err
			}
			r.diskPut(key, ok, res)
			return res, mg, nil
		})
	mg, _ := mgrAny.(*energy.Manager)
	return res, mg
}

func (r *Runner) managedRunQuantum(spec dacapo.Spec, threshold float64, quantum units.Time) (*sim.Result, *energy.Manager) {
	res, mgrAny := r.runDo(runKey{kind: runChip, bench: spec.Name, threshold: threshold, holdOff: 1, quantum: quantum},
		func(ctx context.Context) (*sim.Result, any, error) {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			cfg := r.Base
			cfg.Freq = FMax
			cfg.Quantum = quantum
			spec.Configure(&cfg)
			mcfg := energy.DefaultManagerConfig(threshold)
			key, ok := r.diskKey("chip", cfg, spec, mcfg)
			if res := r.diskGet(key, ok); res != nil {
				return res, nil, nil
			}
			release, err := r.gate(ctx)
			if err != nil {
				return nil, nil, err
			}
			defer release()
			mg := energy.NewManager(mcfg)
			res, err := r.simulate(ctx, cfg, func(m *sim.Machine) { m.SetGovernor(mg.Governor()) }, dacapo.New(spec))
			if err != nil {
				return nil, nil, err
			}
			r.diskPut(key, ok, res)
			return res, mg, nil
		})
	mg, _ := mgrAny.(*energy.Manager)
	return res, mg
}

// Fig6 reproduces Figure 6: per-benchmark slowdown and energy savings under
// the DEP+BURST energy manager for 5% and 10% slowdown thresholds,
// relative to always running at 4 GHz.
func (r *Runner) Fig6() *report.Table {
	thresholds := []float64{0.05, 0.10}
	var warm []func()
	for _, spec := range r.Suite() {
		spec := spec
		warm = append(warm, func() { r.Truth(spec, FMax) })
		for _, thr := range thresholds {
			thr := thr
			warm = append(warm, func() { r.ManagedRun(spec, thr) })
		}
	}
	r.FanOut(warm...)

	t := &report.Table{
		Title: "Figure 6: energy manager (DEP+BURST), slowdown and energy savings vs 4 GHz",
		Header: []string{"benchmark", "type",
			"slowdown@5%", "savings@5%", "slowdown@10%", "savings@10%"},
	}
	var mSave5, mSave10 []float64
	for _, spec := range r.Suite() {
		ref := r.Truth(spec, FMax)
		row := []string{spec.Name, spec.Class()}
		for _, thr := range thresholds {
			res, _ := r.ManagedRun(spec, thr)
			slow := report.RelError(float64(res.Time), float64(ref.Time))
			save := 1 - float64(res.Energy)/float64(ref.Energy)
			row = append(row, report.Pct(slow), report.Pct(save))
			if spec.Memory {
				if thr == 0.05 {
					mSave5 = append(mSave5, save)
				} else {
					mSave10 = append(mSave10, save)
				}
			}
		}
		t.AddRow(row...)
	}
	t.AddRow("avg (memory)", "M",
		"", report.Pct(report.Mean(mSave5)),
		"", report.Pct(report.Mean(mSave10)))
	t.AddNote("paper: memory-intensive average savings 13%% @5%% and 19%% @10%%")
	return t
}

// PerCoreRun executes spec under the per-core DVFS manager (memoised).
// The manager is nil when the result came from the persistent disk cache.
func (r *Runner) PerCoreRun(spec dacapo.Spec, threshold float64) (*sim.Result, *energy.PerCoreManager) {
	res, mgrAny := r.runDo(runKey{kind: runPerCore, bench: spec.Name, threshold: threshold},
		func(ctx context.Context) (*sim.Result, any, error) {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			cfg := r.Base
			cfg.Freq = FMax
			spec.Configure(&cfg)
			mcfg := energy.DefaultManagerConfig(threshold)
			key, ok := r.diskKey("percore", cfg, spec, mcfg)
			if res := r.diskGet(key, ok); res != nil {
				return res, nil, nil
			}
			release, err := r.gate(ctx)
			if err != nil {
				return nil, nil, err
			}
			defer release()
			mg := energy.NewPerCoreManager(mcfg)
			res, err := r.simulate(ctx, cfg, func(m *sim.Machine) { m.SetCoreGovernor(mg.Governor()) }, dacapo.New(spec))
			if err != nil {
				return nil, nil, err
			}
			r.diskPut(key, ok, res)
			return res, mg, nil
		})
	mg, _ := mgrAny.(*energy.PerCoreManager)
	return res, mg
}

// PerCoreDVFS is the future-work extension experiment (§VII): chip-wide
// DEP+BURST management versus independent per-core management at the same
// slowdown bound.
func (r *Runner) PerCoreDVFS(threshold float64) *report.Table {
	var warm []func()
	for _, spec := range r.Suite() {
		spec := spec
		warm = append(warm,
			func() { r.Truth(spec, FMax) },
			func() { r.ManagedRun(spec, threshold) },
			func() { r.PerCoreRun(spec, threshold) })
	}
	r.FanOut(warm...)

	t := &report.Table{
		Title: "Extension: chip-wide vs per-core DVFS (10% bound, savings vs 4 GHz)",
		Header: []string{"benchmark", "type",
			"chip slowdown", "chip savings", "per-core slowdown", "per-core savings"},
	}
	var chipM, coreM []float64
	for _, spec := range r.Suite() {
		ref := r.Truth(spec, FMax)
		chip, _ := r.ManagedRun(spec, threshold)
		pc, _ := r.PerCoreRun(spec, threshold)
		cSlow := report.RelError(float64(chip.Time), float64(ref.Time))
		cSave := 1 - float64(chip.Energy)/float64(ref.Energy)
		pSlow := report.RelError(float64(pc.Time), float64(ref.Time))
		pSave := 1 - float64(pc.Energy)/float64(ref.Energy)
		if spec.Memory {
			chipM = append(chipM, cSave)
			coreM = append(coreM, pSave)
		}
		t.AddRow(spec.Name, spec.Class(),
			report.Pct(cSlow), report.Pct(cSave), report.Pct(pSlow), report.Pct(pSave))
	}
	t.AddRow("avg (memory)", "M", "", report.Pct(report.Mean(chipM)), "", report.Pct(report.Mean(coreM)))
	t.AddNote("per-core decisions use per-core aggregate counters; they cannot see inter-core dependencies, so the slowdown bound is weaker (the open problem the paper defers)")
	return t
}

// SweepFreqs returns the static-sweep frequency grid from FMin to FMax at
// the given step (the paper's DVFS step is 125 MHz).
func SweepFreqs(step units.Freq) []units.Freq {
	if step <= 0 {
		step = 125
	}
	var freqs []units.Freq
	for f := FMin; f <= FMax; f += step {
		freqs = append(freqs, f)
	}
	return freqs
}

// staticSweep assembles the static-frequency sweep for spec from the
// Runner's memoised truth runs: a static point IS a truth run at that
// frequency, so the sweep shares the cache with every other experiment and
// fans out on the pool like everything else.
func (r *Runner) staticSweep(spec dacapo.Spec, freqs []units.Freq) []energy.StaticResult {
	out := make([]energy.StaticResult, 0, len(freqs))
	for _, f := range freqs {
		res := r.Truth(spec, f)
		out = append(out, energy.StaticResult{Freq: f, Time: res.Time, Energy: res.Energy})
	}
	return out
}

// Fig7 reproduces Figure 7: the dynamic energy manager versus the
// static-optimal oracle frequency. step sets the sweep granularity (the
// paper's DVFS step is 125 MHz; coarser steps run faster).
func (r *Runner) Fig7(step units.Freq) *report.Table {
	freqs := SweepFreqs(step)
	const threshold = 0.10

	// The whole matrix up front: the per-benchmark static sweep dominates
	// wall-clock (~|freqs| truth runs each), plus the reference and the
	// managed run.
	var warm []func()
	for _, spec := range r.Suite() {
		spec := spec
		warm = append(warm,
			func() { r.Truth(spec, FMax) },
			func() { r.ManagedRun(spec, threshold) })
		for _, f := range freqs {
			f := f
			warm = append(warm, func() { r.Truth(spec, f) })
		}
	}
	r.FanOut(warm...)

	t := &report.Table{
		Title: "Figure 7: dynamic manager vs static-optimal oracle, 10% slowdown bound (energy savings vs 4 GHz)",
		Header: []string{"benchmark", "type", "dynamic@10%", "static-opt@10%",
			"static freq", "static slowdown"},
	}
	var dynM, statM []float64
	for _, spec := range r.Suite() {
		ref := r.Truth(spec, FMax)

		res, _ := r.ManagedRun(spec, threshold)
		dyn := 1 - float64(res.Energy)/float64(ref.Energy)

		sweep := r.staticSweep(spec, freqs)
		best := energy.StaticOptimalConstrained(sweep, ref.Time, threshold)
		stat := 1 - float64(best.Energy)/float64(ref.Energy)
		slow := report.RelError(float64(best.Time), float64(ref.Time))

		if spec.Memory {
			dynM = append(dynM, dyn)
			statM = append(statM, stat)
		}
		t.AddRow(spec.Name, spec.Class(), report.Pct(dyn), report.Pct(stat),
			best.Freq.String(), report.Pct(slow))
	}
	t.AddRow("avg (memory)", "M", report.Pct(report.Mean(dynM)), report.Pct(report.Mean(statM)), "", "")
	t.AddNote("paper: dynamic beats static-optimal by ~2.1%% on memory-intensive benchmarks @10%%")
	return t
}
