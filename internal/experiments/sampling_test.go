package experiments

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"depburst/internal/dacapo"
	"depburst/internal/sampling"
	"depburst/internal/simcache"
	"depburst/internal/units"
)

// sampledRunner returns a runner with the default sampling policy and the
// given worker count.
func sampledRunner(workers int) *Runner {
	r := NewRunnerWorkers(workers)
	r.SetSampling(sampling.DefaultPolicy())
	return r
}

// TestSampledErrorBound is the accuracy contract of sampled simulation:
// each run reports an error bound, and the observed completion-time error
// against the full-detail run must stay inside it. CI sweeps the whole
// Figure 1 matrix through `depburst samplecheck`; this test keeps a small
// always-on slice of the property in the unit suite.
func TestSampledErrorBound(t *testing.T) {
	full := NewRunnerWorkers(1)
	sampled := sampledRunner(1)
	for _, name := range []string{"pmd.scale", "lusearch.fix"} {
		spec, err := dacapo.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []int{1000, 4000} {
			ft := full.Truth(spec, units.Freq(f))
			st := sampled.Truth(spec, units.Freq(f))
			if ft.Sampling != nil {
				t.Fatalf("%s@%d: full-detail run carries a sampling report", name, f)
			}
			rep := st.Sampling
			if rep == nil {
				t.Fatalf("%s@%d: sampled run carries no sampling report", name, f)
			}
			if rep.FastQuanta == 0 {
				t.Errorf("%s@%d: sampled run never fast-forwarded", name, f)
			}
			p := rep.Policy
			if rep.ErrorBound <= 0 || rep.ErrorBound > p.SafetyFactor*p.Tolerance {
				t.Errorf("%s@%d: error bound %v outside (0, %v]",
					name, f, rep.ErrorBound, p.SafetyFactor*p.Tolerance)
			}
			relErr := math.Abs(float64(st.Time)-float64(ft.Time)) / float64(ft.Time)
			if relErr > rep.ErrorBound {
				t.Errorf("%s@%d: observed error %.3f exceeds reported bound %.3f (full %v, sampled %v)",
					name, f, relErr, rep.ErrorBound, ft.Time, st.Time)
			}
		}
	}
}

// renderSampledSet renders the truth-run-driven figures under the default
// sampling policy, exactly as `depburst -sample fig1 fig3a` would.
func renderSampledSet(r *Runner) string {
	var b strings.Builder
	r.Fig1().Fprint(&b)
	r.Fig3a().Fprint(&b)
	return b.String()
}

// TestSampledDeterminism extends the engine's byte-identity wall to sampled
// mode: the phase detector and fast-forward extrapolation live entirely
// inside one simulation's single-threaded event loop, so rendered output
// must be byte-identical between -j 1 and -j 8, across repeated runs, and
// between a cold disk cache and a warm one.
func TestSampledDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	serial := renderSampledSet(sampledRunner(1))
	parallel := renderSampledSet(sampledRunner(8))
	if serial != parallel {
		d := firstDiff(serial, parallel)
		t.Fatalf("sampled output diverges between -j 1 and -j 8 at byte %d:\nserial:   %q\nparallel: %q",
			d, window(serial, d), window(parallel, d))
	}
	if len(serial) == 0 {
		t.Fatal("sampled experiment set rendered nothing")
	}

	st, err := simcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	coldRunner := sampledRunner(1)
	coldRunner.SetDiskCache(st)
	cold := renderSampledSet(coldRunner)
	if cold != serial {
		t.Fatal("attaching a disk cache changed sampled output")
	}
	if st.Stats().Puts == 0 {
		t.Fatal("cold sampled render wrote no cache entries")
	}
	pre := st.Stats()
	warmRunner := sampledRunner(8)
	warmRunner.SetDiskCache(st)
	warm := renderSampledSet(warmRunner)
	if warm != cold {
		d := firstDiff(cold, warm)
		t.Fatalf("warm sampled render diverges from cold at byte %d:\ncold: %q\nwarm: %q",
			d, window(cold, d), window(warm, d))
	}
	post := st.Stats()
	if post.Hits == pre.Hits {
		t.Fatal("warm sampled render never hit the cache")
	}
	if post.Puts != pre.Puts {
		t.Fatalf("warm sampled render re-simulated %d runs", post.Puts-pre.Puts)
	}
}

// TestSamplingKeyDiscrimination audits the persistent cache key: every
// field of the sampling policy must enter it, so results simulated under
// different policies (or under full detail) can never alias. The test
// perturbs each field by reflection — a field added to Policy without
// reaching the key fails here automatically.
func TestSamplingKeyDiscrimination(t *testing.T) {
	st, err := simcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := dacapo.ByName("pmd.scale")
	if err != nil {
		t.Fatal(err)
	}
	keyFor := func(p sampling.Policy) string {
		r := NewRunnerWorkers(1)
		r.SetDiskCache(st)
		r.SetSampling(p)
		cfg := r.Base
		cfg.Freq = 1000
		spec.Configure(&cfg)
		key, ok := r.diskKey("truth", cfg, spec)
		if !ok {
			t.Fatal("diskKey failed to encode the configuration")
		}
		return key
	}

	keys := map[string]string{
		"full-detail": keyFor(sampling.Policy{}),
		"default":     keyFor(sampling.DefaultPolicy()),
	}
	base := sampling.DefaultPolicy()
	rv := reflect.ValueOf(base)
	for i := 0; i < rv.NumField(); i++ {
		field := rv.Type().Field(i)
		p := base
		fv := reflect.ValueOf(&p).Elem().Field(i)
		switch fv.Kind() {
		case reflect.Bool:
			fv.SetBool(!fv.Bool())
		case reflect.Int:
			fv.SetInt(fv.Int() + 1)
		case reflect.Float64:
			fv.SetFloat(fv.Float() * 1.5)
		default:
			t.Fatalf("Policy.%s has kind %v the perturbation audit does not cover; extend it",
				field.Name, fv.Kind())
		}
		name := fmt.Sprintf("perturbed %s", field.Name)
		if field.Name == "Enabled" {
			// Flipping Enabled lands on the full-detail key, which is
			// already present — the pair that MUST collide.
			if keyFor(p) != keys["full-detail"] {
				t.Errorf("disabled policy key differs from full-detail key")
			}
			continue
		}
		keys[name] = keyFor(p)
	}
	seen := map[string]string{}
	for name, key := range keys {
		if prev, dup := seen[key]; dup {
			t.Errorf("cache key for %q aliases %q", name, prev)
		}
		seen[key] = name
	}
}
