package experiments

import (
	"fmt"

	"depburst/internal/core"
	"depburst/internal/dacapo"
	"depburst/internal/energy"
	"depburst/internal/metrics"
	"depburst/internal/report"
	"depburst/internal/sim"
	"depburst/internal/units"
)

// InstrumentedRun executes one fresh simulation of spec with an
// observability registry attached and returns both. Unlike Truth the run is
// not memoised — the registry belongs to exactly this execution — but it
// still takes a worker-pool slot so instrumented runs respect the global
// simulation cap. With managed set, the run starts at the maximum frequency
// and the DEP+BURST energy manager governs DVFS at the given slowdown
// threshold (f is ignored); otherwise the run holds f throughout.
func (r *Runner) InstrumentedRun(spec dacapo.Spec, f units.Freq, managed bool, threshold float64) (*sim.Result, *metrics.Registry) {
	release, err := r.gate(r.context())
	if err != nil {
		panic(canceled{err})
	}
	defer release()
	cfg := r.Base
	cfg.Freq = f
	if managed {
		cfg.Freq = FMax
	}
	spec.Configure(&cfg)
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	m := sim.New(cfg)
	if managed {
		mg := energy.NewManager(energy.DefaultManagerConfig(threshold))
		m.SetGovernor(mg.Governor())
	}
	res, err := m.Run(dacapo.New(spec))
	if err != nil {
		panic(fmt.Sprintf("experiments: instrumented run %s: %v", spec.Name, err))
	}
	return &res, reg
}

// wallCPI converts a wall-clock duration at frequency f plus an instruction
// count into cycles per instruction.
func wallCPI(d units.Time, f units.Freq, instrs int64) float64 {
	if instrs <= 0 {
		return 0
	}
	// d is picoseconds and f is MHz, so cycles = d * f / 1e6.
	return float64(d) * float64(f) / 1e6 / float64(instrs)
}

// ErrorBreakdown fills reg with the prediction-error telemetry for
// predicting spec's execution time at target from its base-frequency run
// with the given model options: one EpochError per epoch (component split
// plus CPI deltas) and the run-level predicted-vs-truth summary. Both
// endpoint runs come from the Runner's memoised truth cache.
func (r *Runner) ErrorBreakdown(spec dacapo.Spec, o core.Options, base, target units.Freq, reg *metrics.Registry) {
	baseRes := r.Truth(spec, base)
	truth := r.Truth(spec, target)

	var predicted units.Time
	for _, b := range core.BreakdownEpochs(baseRes.Epochs, base, target, o) {
		predicted += b.Pred
		reg.RecordEpochError(metrics.EpochError{
			Start:    b.Start,
			Dur:      b.Dur,
			Pred:     b.Pred,
			Instrs:   b.Instrs,
			Pipeline: b.Pipeline,
			Memory:   b.Memory,
			Burst:    b.Burst,
			Idle:     b.Idle,
			CPIBase:  wallCPI(b.Dur, base, b.Instrs),
			CPIPred:  wallCPI(b.Pred, target, b.Instrs),
		})
	}
	reg.SetPredictionSummary(metrics.PredictionSummary{
		Model:     core.NewDEP(o).Name(),
		Base:      base,
		Target:    target,
		Predicted: predicted,
		Actual:    truth.Time,
		CPITruth:  wallCPI(truth.Time, target, truth.TotalCounters().Instrs),
	})
}

// ErrorBreakdownTable renders the per-benchmark prediction-error breakdown
// for DEP+BURST over the whole suite: where the predicted time comes from
// (pipeline vs memory vs burst vs idle) and how far the prediction landed
// from the measured truth.
func (r *Runner) ErrorBreakdownTable(base, target units.Freq) *report.Table {
	r.Prewarm(r.Suite(), base, target)

	t := &report.Table{
		Title: fmt.Sprintf("Prediction-error breakdown: DEP+BURST, %v -> %v", base, target),
		Header: []string{"benchmark", "type", "predicted", "actual", "error",
			"pipeline", "memory", "burst", "idle"},
	}
	o := core.Options{Burst: true}
	for _, spec := range r.Suite() {
		reg := metrics.NewRegistry()
		r.ErrorBreakdown(spec, o, base, target, reg)
		s := reg.Summary()
		var pipe, mem, burst, idle units.Time
		for _, e := range reg.EpochErrors() {
			pipe += e.Pipeline
			mem += e.Memory
			burst += e.Burst
			idle += e.Idle
		}
		frac := func(c units.Time) string {
			if s.Predicted <= 0 {
				return "-"
			}
			return report.Pct(float64(c) / float64(s.Predicted))
		}
		t.AddRow(spec.Name, spec.Class(),
			s.Predicted.String(), s.Actual.String(),
			report.Pct(report.RelError(float64(s.Predicted), float64(s.Actual))),
			frac(pipe), frac(mem), frac(burst), frac(idle))
	}
	t.AddNote("components sum to the predicted time; idle folds in epoch slack, so it can be negative")
	return t
}
