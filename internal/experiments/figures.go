package experiments

import (
	"depburst/internal/core"
	"depburst/internal/dacapo"
	"depburst/internal/report"
	"depburst/internal/units"
)

// PredictionError runs spec at base, predicts at target with model, and
// returns the relative error (predicted/actual - 1).
func (r *Runner) PredictionError(spec dacapo.Spec, m core.Model, base, target units.Freq) float64 {
	obs := Observe(r.Truth(spec, base))
	actual := r.Truth(spec, target).Time
	predicted := m.Predict(obs, target)
	return report.RelError(float64(predicted), float64(actual))
}

// Fig1 reproduces Figure 1: average absolute prediction error of M+CRIT
// versus DEP+BURST for target frequencies 2-4 GHz from a 1 GHz baseline.
func (r *Runner) Fig1() *report.Table {
	r.Prewarm(r.Suite(), 1000, 2000, 3000, 4000)
	models := []core.Model{
		core.NewMCrit(core.Options{}),
		core.NewDEPBurst(),
	}
	t := &report.Table{
		Title:  "Figure 1: average absolute prediction error vs target frequency (base 1 GHz)",
		Header: []string{"target", "M+CRIT", "DEP+BURST"},
	}
	for _, target := range []units.Freq{2000, 3000, 4000} {
		row := []string{target.String()}
		for _, m := range models {
			var errs []float64
			for _, spec := range r.Suite() {
				errs = append(errs, r.PredictionError(spec, m, 1000, target))
			}
			row = append(row, report.PctAbs(report.MeanAbs(errs)))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: M+CRIT 27%% and DEP+BURST 6%% at 4 GHz")
	return t
}

// fig3 builds one direction of Figure 3: per-benchmark errors for all six
// models at each target frequency.
func (r *Runner) fig3(title string, base units.Freq, targets []units.Freq) *report.Table {
	r.Prewarm(r.Suite(), append([]units.Freq{base}, targets...)...)
	models := Models()
	header := []string{"benchmark", "target"}
	for _, m := range models {
		header = append(header, m.Name())
	}
	t := &report.Table{Title: title, Header: header}

	errsByModel := make([][]float64, len(models))
	for _, spec := range r.Suite() {
		obs := Observe(r.Truth(spec, base))
		for _, target := range targets {
			actual := r.Truth(spec, target).Time
			row := []string{spec.Name, target.String()}
			for mi, m := range models {
				e := report.RelError(float64(m.Predict(obs, target)), float64(actual))
				errsByModel[mi] = append(errsByModel[mi], e)
				row = append(row, report.Pct(e))
			}
			t.AddRow(row...)
		}
	}
	avg := []string{"avg abs", "all"}
	for mi := range models {
		avg = append(avg, report.PctAbs(report.MeanAbs(errsByModel[mi])))
	}
	t.AddRow(avg...)

	// Per-target averages (the figure's rightmost bars at each target).
	for ti, target := range targets {
		row := []string{"avg abs", target.String()}
		for mi := range models {
			var sub []float64
			for bi := 0; bi < len(r.Suite()); bi++ {
				sub = append(sub, errsByModel[mi][bi*len(targets)+ti])
			}
			row = append(row, report.PctAbs(report.MeanAbs(sub)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig3a reproduces Figure 3(a): predicting higher frequencies from 1 GHz.
func (r *Runner) Fig3a() *report.Table {
	t := r.fig3("Figure 3(a): prediction error, base 1 GHz -> higher targets",
		1000, []units.Freq{2000, 3000, 4000})
	t.AddNote("paper avg abs at 4 GHz: M+CRIT 27%%, COOP 22%%, DEP 19%%, DEP+BURST 6%%")
	return t
}

// Fig3b reproduces Figure 3(b): predicting lower frequencies from 4 GHz.
func (r *Runner) Fig3b() *report.Table {
	t := r.fig3("Figure 3(b): prediction error, base 4 GHz -> lower targets",
		4000, []units.Freq{3000, 2000, 1000})
	t.AddNote("paper avg abs at 1 GHz: M+CRIT 70%%, COOP 63%%, DEP 57%%, DEP+BURST 8%%")
	return t
}

// Fig4 reproduces Figure 4: DEP+BURST with across-epoch versus per-epoch
// critical thread prediction, in both directions.
func (r *Runner) Fig4() *report.Table {
	r.Prewarm(r.Suite(), 1000, 4000)
	across := core.NewDEP(core.Options{Burst: true})
	per := core.NewDEP(core.Options{Burst: true, PerEpochCTP: true})
	t := &report.Table{
		Title:  "Figure 4: across-epoch vs per-epoch CTP (DEP+BURST)",
		Header: []string{"benchmark", "direction", "across-epoch", "per-epoch"},
	}
	type dir struct {
		name         string
		base, target units.Freq
	}
	dirs := []dir{{"1->4GHz", 1000, 4000}, {"4->1GHz", 4000, 1000}}
	sums := map[string][]float64{}
	for _, spec := range r.Suite() {
		for _, d := range dirs {
			ea := r.PredictionError(spec, across, d.base, d.target)
			ep := r.PredictionError(spec, per, d.base, d.target)
			sums["a"+d.name] = append(sums["a"+d.name], ea)
			sums["p"+d.name] = append(sums["p"+d.name], ep)
			t.AddRow(spec.Name, d.name, report.Pct(ea), report.Pct(ep))
		}
	}
	for _, d := range dirs {
		t.AddRow("avg abs", d.name,
			report.PctAbs(report.MeanAbs(sums["a"+d.name])),
			report.PctAbs(report.MeanAbs(sums["p"+d.name])))
	}
	t.AddNote("paper: across-epoch 6%%/8%% vs per-epoch 10%%/14%% (1->4 / 4->1 GHz)")
	return t
}

// Table1 reproduces Table I: benchmark class, heap size, execution time and
// GC time at 1 GHz (simulated values are ~100x compressed vs the paper).
func (r *Runner) Table1() *report.Table {
	r.Prewarm(r.Suite(), 1000)
	t := &report.Table{
		Title:  "Table I: benchmarks at 1 GHz (times ~100x compressed vs paper)",
		Header: []string{"benchmark", "type", "heap(MB)", "exec(ms)", "gc(ms)", "gc%", "minor", "major"},
	}
	for _, spec := range r.Suite() {
		res := r.Truth(spec, 1000)
		t.AddRow(spec.Name, spec.Class(),
			itoa(spec.HeapMB),
			f2(res.Time.Milliseconds()),
			f2(res.GC.GCTime.Milliseconds()),
			report.PctAbs(float64(res.GC.GCTime)/float64(res.Time)),
			itoa(res.GC.MinorGCs), itoa(res.GC.MajorGCs))
	}
	return t
}
