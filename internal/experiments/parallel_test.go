package experiments

import (
	"sync"
	"testing"

	"depburst/internal/dacapo"
	"depburst/internal/sim"
)

// TestTruthSingleflight: concurrent callers asking for the same key must
// share ONE in-flight simulation — every caller gets the same result
// pointer. (The pre-singleflight Runner released its lock during the run,
// so concurrent callers each executed the full simulation.)
func TestTruthSingleflight(t *testing.T) {
	r := NewRunnerWorkers(4)
	spec, err := dacapo.ByName("pmd.scale")
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	results := make([]*sim.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.Truth(spec, 1000)
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a distinct result pointer: the run was duplicated", i)
		}
	}
}

// TestCoRunTruthSingleflight covers the same gap for consolidated pairs.
func TestCoRunTruthSingleflight(t *testing.T) {
	r := NewRunnerWorkers(4)
	a, _ := dacapo.ByName("pmd.scale")
	b, _ := dacapo.ByName("avrora")
	const callers = 4
	results := make([]*sim.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.coRunTruth(a, b, FMax)
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("co-run caller %d duplicated the simulation", i)
		}
	}
}

// TestManagedRunSingleflight: governed runs are memoised too — the same
// (spec, threshold) pair is shared across Fig6/Fig7/PerCore/Feedback.
func TestManagedRunSingleflight(t *testing.T) {
	r := NewRunnerWorkers(4)
	spec, _ := dacapo.ByName("pmd.scale")
	const callers = 4
	results := make([]*sim.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = r.ManagedRun(spec, 0.10)
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("managed-run caller %d duplicated the simulation", i)
		}
	}
	// Distinct tuning parameters must NOT share an entry.
	hold, _ := r.managedRunHold(spec, 0.10, 4)
	if hold == results[0] {
		t.Error("hold-off 4 shares the hold-off 1 cache entry")
	}
	q, _ := r.managedRunQuantum(spec, 0.10, r.Base.Quantum*2)
	if q == results[0] || q == hold {
		t.Error("quantum variant shares another entry")
	}
}

// TestFanOutPanicPropagates: a panic inside a fanned-out closure must reach
// the caller (and not kill the process from a bare goroutine).
func TestFanOutPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		r := NewRunnerWorkers(workers)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("workers=%d: panic did not propagate", workers)
				}
			}()
			r.FanOut(
				func() {},
				func() { panic("boom") },
				func() {})
		}()
	}
}

// TestForkSharesPool: forked runners must share the parent's semaphore (one
// global simulation cap) but not its cache.
func TestForkSharesPool(t *testing.T) {
	r := NewRunnerWorkers(3)
	f := r.fork()
	if f.sem != r.sem || f.workers != r.workers {
		t.Error("fork did not share the worker pool")
	}
	spec, _ := dacapo.ByName("pmd.scale")
	a := r.Truth(spec, 1000)
	b := f.Truth(spec, 1000)
	if a == b {
		t.Error("fork shares the parent's cache (must be independent: forks vary the machine)")
	}
	if a.Time != b.Time || a.Energy != b.Energy {
		t.Error("identical configs in parent and fork produced different results")
	}
}

// TestPrewarmFillsCache: after Prewarm, row assembly must be pure cache
// hits (same pointers).
func TestPrewarmFillsCache(t *testing.T) {
	r := NewRunnerWorkers(4)
	spec, _ := dacapo.ByName("pmd.scale")
	r.Prewarm([]dacapo.Spec{spec}, 1000, 2000)
	r.memo.mu.Lock()
	n := len(r.memo.truth)
	r.memo.mu.Unlock()
	if n != 2 {
		t.Fatalf("cache has %d entries after Prewarm, want 2", n)
	}
	a := r.Truth(spec, 1000)
	if a == nil || a.Freq != 1000 {
		t.Error("prewarmed entry is wrong")
	}
}

// TestWorkerCountClamped: SetWorkers(0) must still leave a working pool.
func TestWorkerCountClamped(t *testing.T) {
	r := NewRunnerWorkers(0)
	if r.Workers() != 1 {
		t.Fatalf("workers = %d, want clamped to 1", r.Workers())
	}
	spec, _ := dacapo.ByName("pmd.scale")
	if r.Truth(spec, 1000) == nil {
		t.Fatal("serial runner failed")
	}
}
