package experiments

import (
	"context"

	"depburst/internal/core"
	"depburst/internal/cpu"
	"depburst/internal/kernel"
	"depburst/internal/report"
	"depburst/internal/sim"
	"depburst/internal/trace"
	"depburst/internal/units"
)

// seqWorkload is a single-threaded native-style workload (no allocation,
// no synchronization) with a configurable memory profile — the setting the
// prior-work predictors of §II-A were built for.
type seqWorkload struct {
	name    string
	profile trace.Profile
	instrs  int64
}

func (w seqWorkload) Name() string { return w.name }

func (w seqWorkload) Setup(m *sim.Machine) {
	m.Kern.Spawn("seq", kernel.ClassApp, 0, func(e *kernel.Env) {
		r := m.Rng.Fork(0x5E9)
		var blk cpu.Block
		remaining := w.instrs
		for remaining > 0 {
			n := int64(16_000)
			if remaining < n {
				n = remaining
			}
			trace.FillBlock(&blk, w.profile, n, r)
			e.Compute(&blk)
			remaining -= n
		}
	})
}

// seqSuite is a spread of single-threaded profiles from compute-bound to
// pointer-chasing memory-bound.
func seqSuite() []seqWorkload {
	region := func(mb int64) trace.RandomRegion {
		return trace.RandomRegion{Base: 1 << 44, Size: mb << 20}
	}
	return []seqWorkload{
		{name: "seq-compute", instrs: 40_000_000, profile: trace.Profile{
			IPC: 2.6, LoadsPerKI: 4, Addr: region(1)}},
		{name: "seq-streaming", instrs: 24_000_000, profile: trace.Profile{
			IPC: 2.0, LoadsPerKI: 14, StoresPerKI: 5, DepFrac: 0.05, Addr: region(24)}},
		{name: "seq-pointer", instrs: 12_000_000, profile: trace.Profile{
			IPC: 1.6, LoadsPerKI: 10, DepFrac: 0.7, Addr: region(24)}},
		{name: "seq-mixed", instrs: 20_000_000, profile: trace.Profile{
			IPC: 2.0, LoadsPerKI: 10, StoresPerKI: 4, DepFrac: 0.3, Addr: region(12)}},
	}
}

// SequentialBackground reproduces the prior-work landscape of §II-A on
// single-threaded workloads: Stall Time underestimates, Leading Loads
// assumes constant latency, CRIT tracks the critical path. For a single
// thread every multithreaded model degenerates to the per-thread engine,
// so this isolates the engines themselves.
func (r *Runner) SequentialBackground() *report.Table {
	var warm []func()
	for _, w := range seqSuite() {
		w := w
		warm = append(warm,
			func() { r.seqTruth(w, 1000) },
			func() { r.seqTruth(w, 4000) })
	}
	r.FanOut(warm...)

	t := &report.Table{
		Title:  "Background (§II-A): single-thread engines on sequential workloads (error, 1->4 GHz)",
		Header: []string{"workload", "STALL", "LL", "CRIT", "CRIT+BURST"},
	}
	engines := []core.Options{
		{Engine: core.StallTime},
		{Engine: core.LeadingLoads},
		{Engine: core.CRIT},
		{Engine: core.CRIT, Burst: true},
	}
	sums := make([][]float64, len(engines))
	for _, w := range seqSuite() {
		base := r.seqTruth(w, 1000)
		target := r.seqTruth(w, 4000)
		obs := Observe(base)
		row := []string{w.name}
		for ei, opts := range engines {
			m := core.NewMCrit(opts) // single thread: M+CRIT == the engine
			e := report.RelError(float64(m.Predict(obs, 4000)), float64(target.Time))
			sums[ei] = append(sums[ei], e)
			row = append(row, report.Pct(e))
		}
		t.AddRow(row...)
	}
	avg := []string{"avg abs"}
	for _, s := range sums {
		avg = append(avg, report.PctAbs(report.MeanAbs(s)))
	}
	t.AddRow(avg...)
	t.AddNote("single-threaded: DEP's epoch machinery is moot; the engines are exposed directly")
	t.AddNote("Stall Time fares better here than on real hardware: the interval core model measures commit stalls exactly, whereas real pipelines hide them")
	return t
}

// seqTruth runs a sequential workload at f (memoised and deduplicated
// alongside benchmark runs).
func (r *Runner) seqTruth(w seqWorkload, f units.Freq) *sim.Result {
	e := r.truthEntryFor(truthKey{bench: "seq/" + w.name, freq: f})
	res, _, err := e.do(r.context(), func(ctx context.Context) (*sim.Result, any, error) {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		cfg := r.Base
		cfg.Freq = f
		release, err := r.gate(ctx)
		if err != nil {
			return nil, nil, err
		}
		defer release()
		res, err := r.simulate(ctx, cfg, nil, w)
		if err != nil {
			return nil, nil, err
		}
		return res, nil, nil
	})
	if err != nil {
		panic(canceled{err})
	}
	return res
}
