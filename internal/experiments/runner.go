// Package experiments regenerates every table and figure in the paper's
// evaluation (see DESIGN.md's experiment index): Table I, Figures 1, 3(a),
// 3(b), 4, 6 and 7. Each experiment returns a report.Table whose rows
// mirror what the paper plots.
//
// Ground-truth simulations are pure functions of (benchmark, frequency,
// seed), so the experiment matrix is embarrassingly parallel: the Runner
// executes truth runs on a bounded worker pool with singleflight
// deduplication, each experiment fans its whole truth-run set out up front
// (Prewarm / FanOut), and rows are then assembled serially from the
// memoised results — which makes the rendered tables byte-identical at any
// worker count.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"depburst/internal/core"
	"depburst/internal/dacapo"
	"depburst/internal/sim"
	"depburst/internal/simcache"
	"depburst/internal/units"
)

// Frequencies used throughout the evaluation.
var (
	// EvalFreqs are the paper's measurement frequencies.
	EvalFreqs = []units.Freq{1000, 2000, 3000, 4000}
	// FMin and FMax bound the DVFS range.
	FMin units.Freq = 1000
	FMax units.Freq = 4000
)

// Runner executes and memoises ground-truth benchmark runs. Truth runs are
// pure functions of (benchmark, frequency, seed), so each is executed once
// and shared across experiments.
//
// The Runner is safe for concurrent use: concurrent callers asking for the
// same key block on one in-flight simulation (singleflight) instead of
// duplicating it, and the number of simulations executing at once is capped
// by the worker pool (SetWorkers). Each simulation owns its engine, kernel
// and RNG, so results are independent of scheduling order.
type Runner struct {
	// Base is the machine template; per-run copies adjust frequency and
	// the benchmark's JVM sizing.
	Base sim.Config

	workers int
	sem     chan struct{}

	// disk, when non-nil, is the persistent content-addressed result
	// store consulted under the singleflight layer: a key hit replaces
	// the whole simulation with deserialization, and every live run is
	// written back. nil (the default) keeps the Runner purely in-memory.
	disk *simcache.Store

	mu    sync.Mutex
	cache map[truthKey]*truthEntry
	runs  map[runKey]*runEntry
}

// resultFingerprint pins the structure of sim.Result into every disk-cache
// key, so a binary whose result schema differs always misses.
var resultFingerprint = simcache.Fingerprint(sim.Result{})

// SetDiskCache attaches a persistent result store (nil detaches). Attach it
// before launching work; runs already in flight are unaffected.
func (r *Runner) SetDiskCache(s *simcache.Store) { r.disk = s }

// DiskCache returns the attached persistent store (nil when disabled).
func (r *Runner) DiskCache() *simcache.Store { return r.disk }

// diskKey computes the content address for one run family: the result
// schema fingerprint, the run kind, the complete machine configuration
// (which carries frequency, quantum, seed and the benchmark's JVM sizing)
// and any extra inputs — benchmark specs, governor parameters. ok is false
// when no store is attached or the inputs fail to encode.
func (r *Runner) diskKey(kind string, cfg sim.Config, extra ...any) (string, bool) {
	if r.disk == nil {
		return "", false
	}
	cfg.Metrics = nil // observability never changes results
	parts := append([]any{resultFingerprint, kind, cfg}, extra...)
	key, err := simcache.Key(parts...)
	if err != nil {
		return "", false
	}
	return key, true
}

// diskGet serves a memoised run family slot from the persistent store.
func (r *Runner) diskGet(key string, ok bool) *sim.Result {
	if !ok {
		return nil
	}
	var res sim.Result
	if !r.disk.Get(key, &res) {
		return nil
	}
	return &res
}

// diskPut writes a freshly simulated result back, best effort: a full or
// read-only cache must never fail the experiment that produced the result.
func (r *Runner) diskPut(key string, ok bool, res *sim.Result) {
	if ok {
		_ = r.disk.Put(key, res)
	}
}

type truthKey struct {
	bench string
	freq  units.Freq
}

// truthEntry is one singleflight cache slot: the first caller executes the
// simulation inside once; everyone else blocks on it and shares the result.
type truthEntry struct {
	once sync.Once
	res  *sim.Result
}

// runKind distinguishes the governed (energy-managed) run families, which
// are memoised alongside truth runs with their tuning parameters as key.
type runKind uint8

const (
	runChip runKind = iota
	runPerCore
	runFeedback
	runCoRunChip
)

type runKey struct {
	kind      runKind
	bench     string
	threshold float64
	holdOff   int
	quantum   units.Time
}

type runEntry struct {
	once sync.Once
	res  *sim.Result
	mgr  any
}

// NewRunner returns a Runner over the default machine with a worker pool
// sized to GOMAXPROCS.
func NewRunner() *Runner {
	return NewRunnerWorkers(runtime.GOMAXPROCS(0))
}

// NewRunnerWorkers returns a Runner whose pool executes at most n
// simulations concurrently. n <= 1 gives fully serial execution.
func NewRunnerWorkers(n int) *Runner {
	r := &Runner{
		Base:  sim.DefaultConfig(),
		cache: make(map[truthKey]*truthEntry),
		runs:  make(map[runKey]*runEntry),
	}
	r.SetWorkers(n)
	return r
}

// SetWorkers resizes the simulation pool. Call it before launching work;
// in-flight simulations keep the slot they already hold.
func (r *Runner) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	r.workers = n
	r.sem = make(chan struct{}, n)
}

// Workers reports the pool size.
func (r *Runner) Workers() int { return r.workers }

// fork returns a Runner with the same Base and the same worker pool but an
// independent memo cache — used by experiments that vary the machine (other
// seeds, GC policies, DRAM models), so their fan-out still respects one
// global simulation cap.
func (r *Runner) fork() *Runner {
	return &Runner{
		Base:    r.Base,
		workers: r.workers,
		sem:     r.sem,
		disk:    r.disk, // keys carry the full config, so sharing is safe
		cache:   make(map[truthKey]*truthEntry),
		runs:    make(map[runKey]*runEntry),
	}
}

// gate blocks until a pool slot is free and returns the release func:
//
//	defer r.gate()()
//
// Only the leaf helpers that actually execute a simulation acquire a slot;
// experiment-level fan-out goroutines block in singleflight waits without
// holding one, so nesting FanOut/Prewarm cannot deadlock the pool.
func (r *Runner) gate() func() {
	if r.sem == nil {
		return func() {}
	}
	r.sem <- struct{}{}
	return func() { <-r.sem }
}

// truthEntryFor returns the singleflight slot for key, creating it if
// needed.
func (r *Runner) truthEntryFor(key truthKey) *truthEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cache == nil {
		r.cache = make(map[truthKey]*truthEntry)
	}
	e, ok := r.cache[key]
	if !ok {
		e = &truthEntry{}
		r.cache[key] = e
	}
	return e
}

func (r *Runner) runEntryFor(key runKey) *runEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.runs == nil {
		r.runs = make(map[runKey]*runEntry)
	}
	e, ok := r.runs[key]
	if !ok {
		e = &runEntry{}
		r.runs[key] = e
	}
	return e
}

// Truth returns the measured run of spec at frequency f. The run is
// memoised and deduplicated: concurrent callers share one execution.
func (r *Runner) Truth(spec dacapo.Spec, f units.Freq) *sim.Result {
	e := r.truthEntryFor(truthKey{bench: spec.Name, freq: f})
	e.once.Do(func() {
		cfg := r.Base
		cfg.Freq = f
		spec.Configure(&cfg)
		key, ok := r.diskKey("truth", cfg, spec)
		if res := r.diskGet(key, ok); res != nil {
			e.res = res
			return
		}
		defer r.gate()()
		m := sim.New(cfg)
		out, err := m.Run(dacapo.New(spec))
		if err != nil {
			panic(fmt.Sprintf("experiments: truth run %s@%v: %v", spec.Name, f, err))
		}
		e.res = &out
		r.diskPut(key, ok, &out)
	})
	return e.res
}

// FanOut runs the closures concurrently and waits for all of them. The
// closures typically call Truth/ManagedRun/...; the simulation pool bounds
// how many actually execute at once. A panic in any closure is re-raised on
// the caller once the rest have finished.
func (r *Runner) FanOut(fns ...func()) {
	if len(fns) == 0 {
		return
	}
	if r.workers <= 1 {
		// Serial mode: run in place, deterministic panic order, zero
		// goroutine overhead.
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	var once sync.Once
	var pv any
	for _, fn := range fns {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					once.Do(func() { pv = p })
				}
			}()
			fn()
		}(fn)
	}
	wg.Wait()
	if pv != nil {
		panic(pv)
	}
}

// Prewarm fans out the truth runs for every (spec, freq) pair and blocks
// until the whole matrix is memoised. Experiments call it up front so row
// assembly afterwards is pure cache hits.
func (r *Runner) Prewarm(specs []dacapo.Spec, freqs ...units.Freq) {
	fns := make([]func(), 0, len(specs)*len(freqs))
	for _, spec := range specs {
		for _, f := range freqs {
			spec, f := spec, f
			fns = append(fns, func() { r.Truth(spec, f) })
		}
	}
	r.FanOut(fns...)
}

// Observe converts a measured run into the predictor-visible observation.
func Observe(res *sim.Result) *core.Observation {
	obs := &core.Observation{
		Base:   res.Freq,
		Total:  res.Time,
		Epochs: res.Epochs,
		Marks:  res.Marks,
	}
	for _, t := range res.Threads {
		obs.Threads = append(obs.Threads, core.ThreadObs{
			TID:   t.ID,
			Name:  t.Name,
			Class: t.Class,
			Start: t.Start,
			End:   t.End,
			C:     t.C,
		})
	}
	return obs
}

// Models returns the paper's six-model comparison set: M+CRIT, COOP and
// DEP, each with and without BURST.
func Models() []core.Model {
	return []core.Model{
		core.NewMCrit(core.Options{}),
		core.NewMCrit(core.Options{Burst: true}),
		core.NewCOOP(core.Options{}),
		core.NewCOOP(core.Options{Burst: true}),
		core.NewDEP(core.Options{}),
		core.NewDEP(core.Options{Burst: true}),
	}
}
