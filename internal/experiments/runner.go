// Package experiments regenerates every table and figure in the paper's
// evaluation (see DESIGN.md's experiment index): Table I, Figures 1, 3(a),
// 3(b), 4, 6 and 7. Each experiment returns a report.Table whose rows
// mirror what the paper plots.
package experiments

import (
	"fmt"
	"sync"

	"depburst/internal/core"
	"depburst/internal/dacapo"
	"depburst/internal/sim"
	"depburst/internal/units"
)

// Frequencies used throughout the evaluation.
var (
	// EvalFreqs are the paper's measurement frequencies.
	EvalFreqs = []units.Freq{1000, 2000, 3000, 4000}
	// FMin and FMax bound the DVFS range.
	FMin units.Freq = 1000
	FMax units.Freq = 4000
)

// Runner executes and memoises ground-truth benchmark runs. Truth runs are
// pure functions of (benchmark, frequency, seed), so each is executed once
// and shared across experiments.
type Runner struct {
	// Base is the machine template; per-run copies adjust frequency and
	// the benchmark's JVM sizing.
	Base sim.Config

	mu    sync.Mutex
	cache map[truthKey]*sim.Result
}

type truthKey struct {
	bench string
	freq  units.Freq
}

// NewRunner returns a Runner over the default machine.
func NewRunner() *Runner {
	return &Runner{Base: sim.DefaultConfig(), cache: make(map[truthKey]*sim.Result)}
}

// Truth returns the measured run of spec at frequency f (memoised).
func (r *Runner) Truth(spec dacapo.Spec, f units.Freq) *sim.Result {
	key := truthKey{bench: spec.Name, freq: f}
	r.mu.Lock()
	res, ok := r.cache[key]
	r.mu.Unlock()
	if ok {
		return res
	}

	cfg := r.Base
	cfg.Freq = f
	spec.Configure(&cfg)
	m := sim.New(cfg)
	out, err := m.Run(dacapo.New(spec))
	if err != nil {
		panic(fmt.Sprintf("experiments: truth run %s@%v: %v", spec.Name, f, err))
	}

	r.mu.Lock()
	r.cache[key] = &out
	r.mu.Unlock()
	return &out
}

// Observe converts a measured run into the predictor-visible observation.
func Observe(res *sim.Result) *core.Observation {
	obs := &core.Observation{
		Base:   res.Freq,
		Total:  res.Time,
		Epochs: res.Epochs,
		Marks:  res.Marks,
	}
	for _, t := range res.Threads {
		obs.Threads = append(obs.Threads, core.ThreadObs{
			TID:   t.ID,
			Name:  t.Name,
			Class: t.Class,
			Start: t.Start,
			End:   t.End,
			C:     t.C,
		})
	}
	return obs
}

// Models returns the paper's six-model comparison set: M+CRIT, COOP and
// DEP, each with and without BURST.
func Models() []core.Model {
	return []core.Model{
		core.NewMCrit(core.Options{}),
		core.NewMCrit(core.Options{Burst: true}),
		core.NewCOOP(core.Options{}),
		core.NewCOOP(core.Options{Burst: true}),
		core.NewDEP(core.Options{}),
		core.NewDEP(core.Options{Burst: true}),
	}
}
