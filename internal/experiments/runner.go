// Package experiments regenerates every table and figure in the paper's
// evaluation (see DESIGN.md's experiment index): Table I, Figures 1, 3(a),
// 3(b), 4, 6 and 7. Each experiment returns a report.Table whose rows
// mirror what the paper plots.
//
// Ground-truth simulations are pure functions of (benchmark, frequency,
// seed), so the experiment matrix is embarrassingly parallel: the Runner
// executes truth runs on a bounded worker pool with singleflight
// deduplication, each experiment fans its whole truth-run set out up front
// (Prewarm / FanOut), and rows are then assembled serially from the
// memoised results — which makes the rendered tables byte-identical at any
// worker count.
//
// The Runner is also cancellable: WithContext binds a context, every
// simulation polls it once per sampling quantum, and cancellation unwinds
// through table assembly as a typed panic that Cancelable converts back
// into the context's error. A cancelled flight is retried by the next
// caller, so one aborted request never poisons the shared memo tables.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"depburst/internal/core"
	"depburst/internal/dacapo"
	"depburst/internal/sampling"
	"depburst/internal/sim"
	"depburst/internal/simcache"
	"depburst/internal/surrogate"
	"depburst/internal/units"
)

// Frequencies used throughout the evaluation.
var (
	// EvalFreqs are the paper's measurement frequencies.
	EvalFreqs = []units.Freq{1000, 2000, 3000, 4000}
	// FMin and FMax bound the DVFS range.
	FMin units.Freq = 1000
	FMax units.Freq = 4000
)

// Runner executes and memoises ground-truth benchmark runs. Truth runs are
// pure functions of (benchmark, frequency, seed), so each is executed once
// and shared across experiments.
//
// The Runner is safe for concurrent use: concurrent callers asking for the
// same key block on one in-flight simulation (singleflight) instead of
// duplicating it, and the number of simulations executing at once is capped
// by the worker pool (SetWorkers). Each simulation owns its engine, kernel
// and RNG, so results are independent of scheduling order.
type Runner struct {
	// Base is the machine template; per-run copies adjust frequency and
	// the benchmark's JVM sizing.
	Base sim.Config

	workers int
	sem     chan struct{}

	// disk, when non-nil, is the persistent content-addressed result
	// store consulted under the singleflight layer: a key hit replaces
	// the whole simulation with deserialization, and every live run is
	// written back. nil (the default) keeps the Runner purely in-memory.
	disk *simcache.Store

	// ctx is the binding context installed by WithContext; nil means
	// context.Background() (never cancelled, the CLI default).
	ctx context.Context

	// suite overrides the benchmark set the Runner's experiments iterate
	// (nil = the stock paper suite). Serving and tests use small or
	// scaled suites; forks inherit the override.
	suite []dacapo.Spec

	// sims counts simulations actually executed (not served from memo or
	// disk). Shared across WithContext bindings and forks so servers can
	// assert and export one global figure.
	sims *atomic.Int64

	// memo holds the singleflight tables. WithContext bindings share it;
	// fork creates a fresh one (different machine template, same pool).
	memo *memo
}

type memo struct {
	mu sync.Mutex
	//depburst:guardedby mu
	truth map[truthKey]*entry
	//depburst:guardedby mu
	runs map[runKey]*entry
}

// resultFingerprint pins the structure of sim.Result into every disk-cache
// key, so a binary whose result schema differs always misses.
var resultFingerprint = simcache.Fingerprint(sim.Result{})

// SetDiskCache attaches a persistent result store (nil detaches). Attach it
// before launching work; runs already in flight are unaffected.
func (r *Runner) SetDiskCache(s *simcache.Store) { r.disk = s }

// DiskCache returns the attached persistent store (nil when disabled).
func (r *Runner) DiskCache() *simcache.Store { return r.disk }

// SetSuite overrides the benchmark suite the Runner's experiments iterate
// (nil restores the stock paper suite). Set it before launching work.
func (r *Runner) SetSuite(specs []dacapo.Spec) { r.suite = specs }

// Suite returns the benchmark set experiments iterate: the override
// installed by SetSuite, or the stock paper suite.
func (r *Runner) Suite() []dacapo.Spec {
	if r.suite != nil {
		return r.suite
	}
	return dacapo.Suite()
}

// Simulations reports how many simulations this Runner (including its
// WithContext bindings and forks) actually executed — memo and disk-cache
// hits are not counted. Servers use it to verify request coalescing.
func (r *Runner) Simulations() int64 { return r.sims.Load() }

// WithContext returns a Runner bound to ctx that shares this Runner's memo
// tables, worker pool, disk cache and simulation counter. Work launched
// through the binding — including experiment table methods — aborts
// promptly once ctx is cancelled: simulations poll the context each
// sampling quantum, and the cancellation unwinds as a panic that Cancelable
// converts back into an error.
func (r *Runner) WithContext(ctx context.Context) *Runner {
	nr := *r
	nr.ctx = ctx
	return &nr
}

// context returns the binding context (Background when unbound).
func (r *Runner) context() context.Context {
	if r.ctx != nil {
		return r.ctx
	}
	return context.Background()
}

// canceled is the panic value a bound Runner uses to unwind table assembly
// when its context is cancelled. Cancelable converts it into the error.
type canceled struct{ err error }

// Cancelable runs fn, converting a Runner cancellation unwind into the
// context's error. Wrap experiment-table calls on a WithContext-bound
// Runner:
//
//	rc := r.WithContext(ctx)
//	err := experiments.Cancelable(func() { table = rc.Fig1() })
func Cancelable(fn func()) (err error) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if c, ok := p.(canceled); ok {
			err = c.err
			return
		}
		panic(p)
	}()
	fn()
	return nil
}

// diskKey computes the content address for one run family: the result
// schema fingerprint, the run kind, the complete machine configuration
// (which carries frequency, quantum, seed and the benchmark's JVM sizing)
// and any extra inputs — benchmark specs, governor parameters. ok is false
// when no store is attached or the inputs fail to encode.
func (r *Runner) diskKey(kind string, cfg sim.Config, extra ...any) (string, bool) {
	if r.disk == nil {
		return "", false
	}
	cfg.Metrics = nil // observability never changes results
	parts := append([]any{resultFingerprint, kind, cfg}, extra...)
	key, err := simcache.Key(parts...)
	if err != nil {
		return "", false
	}
	return key, true
}

// diskGet serves a memoised run family slot from the persistent store.
func (r *Runner) diskGet(key string, ok bool) *sim.Result {
	if !ok {
		return nil
	}
	var res sim.Result
	if !r.disk.Get(key, &res) {
		return nil
	}
	return &res
}

// diskPut writes a freshly simulated result back, best effort: a full or
// read-only cache must never fail the experiment that produced the result.
func (r *Runner) diskPut(key string, ok bool, res *sim.Result) {
	if ok {
		_ = r.disk.Put(key, res)
	}
}

// putTruthMeta installs the surrogate training sidecar next to a cached
// full-detail truth entry, best effort — it is what turns the cache into a
// scannable corpus. Hits backfill sidecars missing from older corpora.
// Sampled-mode results are approximations and are never offered to the
// trainer.
func (r *Runner) putTruthMeta(key string, ok bool, cfg sim.Config, spec dacapo.Spec) {
	if !ok || cfg.Sampling.Enabled || r.disk.HasMeta(key) {
		return
	}
	_ = r.disk.PutMeta(key, surrogate.NewTruthManifest(cfg, spec))
}

type truthKey struct {
	bench string
	freq  units.Freq
}

// runKind distinguishes the governed (energy-managed) run families, which
// are memoised alongside truth runs with their tuning parameters as key.
type runKind uint8

const (
	runChip runKind = iota
	runPerCore
	runFeedback
	runCoRunChip
)

type runKey struct {
	kind      runKind
	bench     string
	threshold float64
	holdOff   int
	quantum   units.Time
}

// entry is one singleflight memo slot. Unlike a sync.Once slot it is
// retryable: a flight that fails (cancellation) is cleared so the next
// caller re-executes it, while a successful flight memoises its result
// forever. res non-nil means complete; done non-nil means in flight.
type entry struct {
	mu sync.Mutex
	//depburst:guardedby mu
	done chan struct{}
	//depburst:guardedby mu
	res *sim.Result
	//depburst:guardedby mu
	mgr any
}

// execFn is one run family's body. It returns the result and (for governed
// families) the manager. It must return a non-nil error only for context
// cancellation; simulator failures panic, as they indicate bugs.
type execFn func(ctx context.Context) (*sim.Result, any, error)

// do resolves the slot: a memoised result returns immediately, an
// in-flight one is waited on (abandoning the wait, but not the flight, when
// ctx is cancelled first), and an idle one is executed by this caller.
func (e *entry) do(ctx context.Context, exec execFn) (*sim.Result, any, error) {
	for {
		e.mu.Lock()
		if e.res != nil {
			res, mgr := e.res, e.mgr
			e.mu.Unlock()
			return res, mgr, nil
		}
		if e.done == nil {
			done := make(chan struct{})
			e.done = done
			e.mu.Unlock()
			return e.lead(ctx, exec, done)
		}
		done := e.done
		e.mu.Unlock()
		select {
		case <-done:
			// Loop: either the flight succeeded (res is set) or it was
			// cancelled and this caller should retry it.
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}

// lead executes the body as the flight leader and publishes the outcome:
// success memoises the result; an error or panic clears the flight so a
// later caller retries instead of inheriting the failure.
func (e *entry) lead(ctx context.Context, exec execFn, done chan struct{}) (res *sim.Result, mgr any, err error) {
	completed := false
	defer func() {
		e.mu.Lock()
		if completed {
			e.res, e.mgr = res, mgr
		}
		e.done = nil
		close(done)
		e.mu.Unlock()
	}()
	res, mgr, err = exec(ctx)
	completed = err == nil
	return res, mgr, err
}

// NewRunner returns a Runner over the default machine with a worker pool
// sized to GOMAXPROCS.
func NewRunner() *Runner {
	return NewRunnerWorkers(runtime.GOMAXPROCS(0))
}

// NewRunnerWorkers returns a Runner whose pool executes at most n
// simulations concurrently. n <= 1 gives fully serial execution.
func NewRunnerWorkers(n int) *Runner {
	r := &Runner{
		Base: sim.DefaultConfig(),
		sims: new(atomic.Int64),
		memo: &memo{
			truth: make(map[truthKey]*entry),
			runs:  make(map[runKey]*entry),
		},
	}
	r.SetWorkers(n)
	return r
}

// SetWorkers resizes the simulation pool. Call it before launching work
// (and before WithContext/fork derivations); in-flight simulations keep the
// slot they already hold.
func (r *Runner) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	r.workers = n
	r.sem = make(chan struct{}, n)
}

// Workers reports the pool size.
func (r *Runner) Workers() int { return r.workers }

// SetSampling installs a sampled-simulation policy on the Runner's base
// machine configuration. Every subsequent simulation the Runner launches
// runs under the policy; results carry the sampled error-bound report and
// the policy enters both the in-memory memo (a Runner holds exactly one
// policy) and the persistent cache's content key (the policy is part of
// sim.Config), so sampled and full-detail results can never alias. Call
// before launching work.
func (r *Runner) SetSampling(p sampling.Policy) { r.Base.Sampling = p.Normalized() }

// Sampling returns the Runner's sampled-simulation policy (zero value:
// full detail).
func (r *Runner) Sampling() sampling.Policy { return r.Base.Sampling }

// WithSampling returns a Runner sharing this Runner's worker pool, disk
// cache and simulation counter, but with independent memo tables and the
// given sampling policy — the per-policy isolation the prediction service
// uses so one process can serve both sampled and full-detail requests.
func (r *Runner) WithSampling(p sampling.Policy) *Runner {
	nr := r.fork()
	nr.Base.Sampling = p.Normalized()
	return nr
}

// fork returns a Runner with the same Base and the same worker pool but an
// independent memo cache — used by experiments that vary the machine (other
// seeds, GC policies, DRAM models), so their fan-out still respects one
// global simulation cap.
func (r *Runner) fork() *Runner {
	nr := *r
	nr.memo = &memo{
		truth: make(map[truthKey]*entry),
		runs:  make(map[runKey]*entry),
	}
	return &nr
}

// gate blocks until a pool slot is free and returns the release func, or
// gives up with ctx's error when the context is cancelled while queued.
// Only the leaf helpers that actually execute a simulation acquire a slot;
// experiment-level fan-out goroutines block in singleflight waits without
// holding one, so nesting FanOut/Prewarm cannot deadlock the pool.
func (r *Runner) gate(ctx context.Context) (func(), error) {
	if r.sem == nil {
		return func() {}, nil
	}
	select {
	case r.sem <- struct{}{}:
		return func() { <-r.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// truthEntryFor returns the singleflight slot for key, creating it if
// needed.
func (r *Runner) truthEntryFor(key truthKey) *entry {
	m := r.memo
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.truth[key]
	if !ok {
		e = &entry{}
		m.truth[key] = e
	}
	return e
}

func (r *Runner) runEntryFor(key runKey) *entry {
	m := r.memo
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.runs[key]
	if !ok {
		e = &entry{}
		m.runs[key] = e
	}
	return e
}

// simulate executes one machine under ctx, counting it against the
// Runner's simulation tally. Cancellation returns ctx's error; any other
// simulator failure panics (it indicates a bug, never a caller mistake).
func (r *Runner) simulate(ctx context.Context, cfg sim.Config, setup func(*sim.Machine), w sim.Workload) (*sim.Result, error) {
	r.sims.Add(1)
	m := sim.New(cfg)
	if setup != nil {
		setup(m)
	}
	out, err := m.RunContext(ctx, w)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		panic(fmt.Sprintf("experiments: %s@%v: %v", w.Name(), cfg.Freq, err))
	}
	return &out, nil
}

// Truth returns the measured run of spec at frequency f. The run is
// memoised and deduplicated: concurrent callers share one execution. When
// the Runner is bound to a cancelled context the call unwinds with the
// cancellation panic (see Cancelable).
func (r *Runner) Truth(spec dacapo.Spec, f units.Freq) *sim.Result {
	res, err := r.TruthCtx(r.context(), spec, f)
	if err != nil {
		panic(canceled{err})
	}
	return res
}

// TruthCtx is Truth with an explicit context and error return: the
// error-based entry point servers use for deadline propagation. A non-nil
// error is always ctx's error; the in-flight simulation it abandons (or
// aborts, if this caller was the flight leader) is retried by the next
// caller.
func (r *Runner) TruthCtx(ctx context.Context, spec dacapo.Spec, f units.Freq) (*sim.Result, error) {
	e := r.truthEntryFor(truthKey{bench: spec.Name, freq: f})
	res, _, err := e.do(ctx, func(ctx context.Context) (*sim.Result, any, error) {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		cfg := r.Base
		cfg.Freq = f
		spec.Configure(&cfg)
		key, ok := r.diskKey("truth", cfg, spec)
		if res := r.diskGet(key, ok); res != nil {
			r.putTruthMeta(key, ok, cfg, spec)
			return res, nil, nil
		}
		release, err := r.gate(ctx)
		if err != nil {
			return nil, nil, err
		}
		defer release()
		res, err := r.simulate(ctx, cfg, nil, dacapo.New(spec))
		if err != nil {
			return nil, nil, err
		}
		r.diskPut(key, ok, res)
		r.putTruthMeta(key, ok, cfg, spec)
		return res, nil, nil
	})
	return res, err
}

// runDo resolves a governed-run memo slot under the Runner's binding
// context, converting cancellation into the unwind panic. exec's manager
// return is memoised alongside the result (nil on disk hits).
func (r *Runner) runDo(key runKey, exec execFn) (*sim.Result, any) {
	e := r.runEntryFor(key)
	res, mgr, err := e.do(r.context(), exec)
	if err != nil {
		panic(canceled{err})
	}
	return res, mgr
}

// FanOut runs the closures concurrently and waits for all of them. The
// closures typically call Truth/ManagedRun/...; the simulation pool bounds
// how many actually execute at once. A panic in any closure is re-raised on
// the caller once the rest have finished.
func (r *Runner) FanOut(fns ...func()) {
	if len(fns) == 0 {
		return
	}
	if r.workers <= 1 {
		// Serial mode: run in place, deterministic panic order, zero
		// goroutine overhead.
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	var once sync.Once
	var pv any
	for _, fn := range fns {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					once.Do(func() { pv = p })
				}
			}()
			fn()
		}(fn)
	}
	wg.Wait()
	if pv != nil {
		panic(pv)
	}
}

// Prewarm fans out the truth runs for every (spec, freq) pair and blocks
// until the whole matrix is memoised. Experiments call it up front so row
// assembly afterwards is pure cache hits.
func (r *Runner) Prewarm(specs []dacapo.Spec, freqs ...units.Freq) {
	fns := make([]func(), 0, len(specs)*len(freqs))
	for _, spec := range specs {
		for _, f := range freqs {
			spec, f := spec, f
			fns = append(fns, func() { r.Truth(spec, f) })
		}
	}
	r.FanOut(fns...)
}

// Observe converts a measured run into the predictor-visible observation.
func Observe(res *sim.Result) *core.Observation {
	obs := &core.Observation{
		Base:   res.Freq,
		Total:  res.Time,
		Epochs: res.Epochs,
		Marks:  res.Marks,
	}
	for _, t := range res.Threads {
		obs.Threads = append(obs.Threads, core.ThreadObs{
			TID:   t.ID,
			Name:  t.Name,
			Class: t.Class,
			Start: t.Start,
			End:   t.End,
			C:     t.C,
		})
	}
	return obs
}

// Models returns the paper's six-model comparison set: M+CRIT, COOP and
// DEP, each with and without BURST.
func Models() []core.Model {
	return []core.Model{
		core.NewMCrit(core.Options{}),
		core.NewMCrit(core.Options{Burst: true}),
		core.NewCOOP(core.Options{}),
		core.NewCOOP(core.Options{Burst: true}),
		core.NewDEP(core.Options{}),
		core.NewDEP(core.Options{Burst: true}),
	}
}
