package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"depburst/internal/dacapo"
	"depburst/internal/sampling"
	"depburst/internal/simcache"
	"depburst/internal/surrogate"
	"depburst/internal/units"
)

// TestTruthManifestsScannable checks the corpus feedback loop at the
// runner level: truth runs leave sidecar manifests behind, the surrogate
// scanner recovers exactly the full-detail runs, warm hits backfill
// sidecars missing from older corpora, and sampled-mode runs never enter
// the training set.
func TestTruthManifestsScannable(t *testing.T) {
	spec, err := dacapo.ByName("pmd.scale")
	if err != nil {
		t.Fatal(err)
	}
	b := spec.Scaled(2)
	b.Name = "pmd.b" // the truth memo keys by name; a scaled twin needs its own
	suite := []dacapo.Spec{spec, b}
	freqs := []units.Freq{1000, 2000}
	st, err := simcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}

	r := cachedRunner(2, st)
	r.Prewarm(suite, freqs...)
	samples, err := surrogate.Scan(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != len(suite)*len(freqs) {
		t.Fatalf("scanned %d samples, want %d", len(samples), len(suite)*len(freqs))
	}
	m := surrogate.Train(samples)
	if sum := m.Summarize(); sum.Groups != len(suite) || sum.Points != len(samples) {
		t.Fatalf("trained %+v from %d samples over %d specs", sum, len(samples), len(suite))
	}
	// The trained model reproduces the simulated truth it was fit on.
	truth := r.Truth(spec, 2000)
	cfg := r.Base
	cfg.Freq = 2000
	spec.Configure(&cfg)
	est, ok := m.Predict(cfg, spec)
	if !ok {
		t.Fatal("model cannot answer for its own corpus")
	}
	if e := float64(est.Time-truth.Time) / float64(truth.Time); e > 0.05 || e < -0.05 {
		t.Errorf("corpus-config prediction off by %.3f (est %v, truth %v)", e, est.Time, truth.Time)
	}

	// Strip the sidecars; a warm replay (pure disk hits) backfills them.
	des, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if filepath.Ext(de.Name()) == ".scm" {
			if err := os.Remove(filepath.Join(st.Dir(), de.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm := cachedRunner(2, st)
	warm.Prewarm(suite, freqs...)
	if n := warm.Simulations(); n != 0 {
		t.Fatalf("warm replay simulated %d times", n)
	}
	again, err := surrogate.Scan(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(samples) {
		t.Fatalf("backfilled corpus has %d samples, want %d", len(again), len(samples))
	}

	// A sampled-mode runner writes entries but never training sidecars.
	sst, err := simcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sr := cachedRunner(2, sst)
	sr.SetSampling(sampling.DefaultPolicy())
	sr.Truth(spec, 1000)
	if n, _, _ := sst.Size(); n == 0 {
		t.Fatal("sampled run cached nothing")
	}
	got, err := surrogate.Scan(sst)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("sampled-mode corpus yielded %d training samples", len(got))
	}
}

// TestSurrogateRetrainDeterminism is the satellite property: corpora built
// at -j1 and -j8 scan and train into byte-identical model files, and
// retraining from the same corpus is byte-identical too.
func TestSurrogateRetrainDeterminism(t *testing.T) {
	spec, err := dacapo.ByName("pmd.scale")
	if err != nil {
		t.Fatal(err)
	}
	b := spec.Scaled(2)
	b.Name = "pmd.b"
	suite := []dacapo.Spec{spec, b}
	freqs := []units.Freq{1000, 2000}

	encode := func(workers int) []byte {
		st, err := simcache.Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		cachedRunner(workers, st).Prewarm(suite, freqs...)
		samples, err := surrogate.Scan(st)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := surrogate.Train(samples).Encode()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	j1 := encode(1)
	j8 := encode(8)
	if !bytes.Equal(j1, j8) {
		t.Error("-j1 and -j8 corpora trained different model bytes")
	}
	if again := encode(1); !bytes.Equal(j1, again) {
		t.Error("retraining from an identically-built corpus changed the model bytes")
	}
}
