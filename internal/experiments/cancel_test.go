package experiments

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"depburst/internal/dacapo"
)

// TestTruthCtxCancelledImmediately: an already-cancelled context never starts
// a simulation.
func TestTruthCtxCancelledImmediately(t *testing.T) {
	r := NewRunnerWorkers(2)
	spec, err := dacapo.ByName("pmd.scale")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.TruthCtx(ctx, spec, 1000); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := r.Simulations(); n != 0 {
		t.Fatalf("simulations = %d, want 0", n)
	}
}

// TestCancelledFlightIsRetried: a flight aborted by cancellation must not
// poison the memo slot — the next caller re-executes and succeeds.
func TestCancelledFlightIsRetried(t *testing.T) {
	r := NewRunnerWorkers(2)
	spec, err := dacapo.ByName("pmd.scale")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	if _, err := r.TruthCtx(ctx, spec, 1000); !errors.Is(err, context.Canceled) {
		t.Fatalf("first call: err = %v, want context.Canceled", err)
	}
	res, err := r.TruthCtx(context.Background(), spec, 1000)
	if err != nil || res == nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
	// And the successful flight memoises: same pointer on the next call.
	res2, err := r.TruthCtx(context.Background(), spec, 1000)
	if err != nil || res2 != res {
		t.Fatal("successful retry was not memoised")
	}
}

// TestCancelableFig1StopsPromptly is the server-cancellation contract: a
// cancelled /v1/experiments/fig1 must stop spawning simulations, return
// promptly, and leak no goroutines.
func TestCancelableFig1StopsPromptly(t *testing.T) {
	r := NewRunnerWorkers(2)
	spec, err := dacapo.ByName("pmd.scale")
	if err != nil {
		t.Fatal(err)
	}
	// A multi-benchmark scaled suite: enough work that the cancel lands
	// mid-experiment, small enough that the test stays fast.
	suite := []dacapo.Spec{spec, spec.Scaled(2), spec.Scaled(3)}
	suite[1].Name = "pmd.s2"
	suite[2].Name = "pmd.s3"
	r.SetSuite(suite)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	rc := r.WithContext(ctx)
	start := time.Now()
	cerr := Cancelable(func() { rc.Fig1() })
	elapsed := time.Since(start)
	if !errors.Is(cerr, context.Canceled) {
		t.Fatalf("Cancelable returned %v, want context.Canceled", cerr)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("cancelled Fig1 took %v; want prompt return", elapsed)
	}
	simsAtReturn := r.Simulations()

	// No further simulations may start after the experiment returned.
	time.Sleep(50 * time.Millisecond)
	if n := r.Simulations(); n != simsAtReturn {
		t.Fatalf("simulations kept spawning after cancel: %d -> %d", simsAtReturn, n)
	}

	// Kernel thread goroutines and fan-out workers must drain.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestCancelableNilError: Cancelable on an un-cancelled experiment returns
// nil and the table is produced.
func TestCancelableNilError(t *testing.T) {
	r := NewRunnerWorkers(2)
	spec, err := dacapo.ByName("pmd.scale")
	if err != nil {
		t.Fatal(err)
	}
	r.SetSuite([]dacapo.Spec{spec})
	var ok bool
	if err := Cancelable(func() { ok = r.Fig1() != nil }); err != nil || !ok {
		t.Fatalf("Cancelable = %v, table ok = %v", err, ok)
	}
}

// TestCancelablePassesForeignPanics: only the Runner's cancellation sentinel
// is converted; other panics propagate.
func TestCancelablePassesForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic was swallowed")
		}
	}()
	_ = Cancelable(func() { panic("boom") })
}

// TestWithContextSharesMemo: results computed through a binding are visible
// to the base Runner (shared memo), and the simulation counter is global.
func TestWithContextSharesMemo(t *testing.T) {
	r := NewRunnerWorkers(2)
	spec, err := dacapo.ByName("pmd.scale")
	if err != nil {
		t.Fatal(err)
	}
	rc := r.WithContext(context.Background())
	a, err := rc.TruthCtx(context.Background(), spec, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b := r.Truth(spec, 1000)
	if a != b {
		t.Fatal("binding and base Runner did not share the memo")
	}
	if n := r.Simulations(); n != 1 {
		t.Fatalf("simulations = %d, want 1", n)
	}
}
