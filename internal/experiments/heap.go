package experiments

import (
	"fmt"

	"depburst/internal/core"
	"depburst/internal/dacapo"
	"depburst/internal/report"
)

// HeapPressureSweep varies the nursery size on one benchmark: smaller
// nurseries collect more often (more epochs, more store bursts per unit
// time), larger ones collect rarely. The paper evaluates at "moderate,
// reasonable heap pressure"; this sweep shows the predictor holds across
// the pressure range.
func (r *Runner) HeapPressureSweep(bench string) *report.Table {
	spec, err := dacapo.ByName(bench)
	if err != nil {
		panic(err)
	}
	t := &report.Table{
		Title:  "Sensitivity: nursery size (" + bench + ")",
		Header: []string{"nursery", "GCs", "gc%", "epochs", "DEP+BURST 1->4", "M+CRIT 1->4"},
	}
	dep := core.NewDEPBurst()
	mcrit := core.NewMCrit(core.Options{})
	nurseries := []int64{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20}
	// Each nursery size is its own machine configuration: fork a runner per
	// point and fan the whole sweep out before assembling rows.
	runners := make([]*Runner, len(nurseries))
	specs := make([]dacapo.Spec, len(nurseries))
	var warm []func()
	for i, nursery := range nurseries {
		rn := r.fork()
		s := spec
		s.Nursery = nursery
		runners[i], specs[i] = rn, s
		warm = append(warm, func() { rn.Prewarm([]dacapo.Spec{s}, 1000, 4000) })
	}
	r.FanOut(warm...)

	for i, nursery := range nurseries {
		rn, s := runners[i], specs[i]
		res := rn.Truth(s, 1000)
		gcFrac := float64(res.GC.GCTime) / float64(res.Time)
		eDep := rn.PredictionError(s, dep, 1000, 4000)
		eM := rn.PredictionError(s, mcrit, 1000, 4000)
		t.AddRow(fmt.Sprintf("%dKiB", nursery>>10),
			itoa(res.GC.MinorGCs+res.GC.MajorGCs),
			report.PctAbs(gcFrac),
			itoa(len(res.Epochs)),
			report.Pct(eDep), report.Pct(eM))
	}
	t.AddNote("the predictor must stay accurate from GC-every-few-items down to almost no GC")
	return t
}
