package experiments

import (
	"depburst/internal/core"
	"depburst/internal/jvm"
	"depburst/internal/report"
)

// GCPolicyAblation swaps the generational collector for a full-heap
// semispace collector and reports how the runtime and the predictor react:
// the same benchmarks become substantially more GC- and memory-bound, and
// DEP+BURST must keep tracking them.
func (r *Runner) GCPolicyAblation() *report.Table {
	semi := r.fork()
	semi.Base.JVM.Policy = jvm.FullHeapSemispace

	r.FanOut(
		func() { r.Prewarm(r.Suite(), 1000, 4000) },
		func() { semi.Prewarm(r.Suite(), 1000, 4000) })

	t := &report.Table{
		Title: "Ablation: GC policy (generational vs full-heap semispace)",
		Header: []string{"benchmark",
			"gen gc%", "semi gc%", "gen DEP+BURST 1->4", "semi DEP+BURST 1->4"},
	}
	m := core.NewDEPBurst()
	for _, spec := range r.Suite() {
		if !spec.Memory {
			continue // the contrast only matters where GC matters
		}
		gen := r.Truth(spec, 1000)
		sm := semi.Truth(spec, 1000)
		genGC := float64(gen.GC.GCTime) / float64(gen.Time)
		semiGC := float64(sm.GC.GCTime) / float64(sm.Time)
		eGen := r.PredictionError(spec, m, 1000, 4000)
		eSemi := semi.PredictionError(spec, m, 1000, 4000)
		t.AddRow(spec.Name,
			report.PctAbs(genGC), report.PctAbs(semiGC),
			report.Pct(eGen), report.Pct(eSemi))
	}
	t.AddNote("semispace collections copy the whole live heap every time: more GC time, same predictor accuracy")
	return t
}

// PrefetchAblation turns on the L2 next-line prefetcher and reports its
// effect on runtime and on prediction accuracy: prefetching shortens the
// sequential (GC copy) misses, shifting work between the scaling and
// non-scaling components that the predictors must re-balance.
func (r *Runner) PrefetchAblation() *report.Table {
	pf := r.fork()
	pf.Base.Hier.NextLinePrefetch = true

	r.FanOut(
		func() { r.Prewarm(r.Suite(), 1000, 4000) },
		func() { pf.Prewarm(r.Suite(), 1000, 4000) })

	t := &report.Table{
		Title: "Ablation: L2 next-line prefetcher",
		Header: []string{"benchmark",
			"time off", "time on", "speedup", "DEP+BURST 1->4 off", "on"},
	}
	m := core.NewDEPBurst()
	for _, spec := range r.Suite() {
		off := r.Truth(spec, 1000)
		on := pf.Truth(spec, 1000)
		speed := float64(off.Time)/float64(on.Time) - 1
		eOff := r.PredictionError(spec, m, 1000, 4000)
		eOn := pf.PredictionError(spec, m, 1000, 4000)
		t.AddRow(spec.Name,
			f2(off.Time.Milliseconds()), f2(on.Time.Milliseconds()),
			report.Pct(speed), report.Pct(eOff), report.Pct(eOn))
	}
	return t
}
