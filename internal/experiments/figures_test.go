package experiments

import (
	"os"
	"testing"
)

// TestFigures is a long-running integration check that prints the main
// accuracy experiments. Run with -v to inspect.
func TestFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	r := NewRunner()
	r.Table1().Fprint(os.Stdout)
	r.Fig3a().Fprint(os.Stdout)
	r.Fig3b().Fprint(os.Stdout)
	r.Fig4().Fprint(os.Stdout)
}
