package experiments

import (
	"strings"
	"testing"
)

// renderSet renders a representative experiment set — pure truth-run
// figures, governed runs, a fork-based sweep and the multi-tenant co-runs —
// exactly as the CLI would print them.
func renderSet(r *Runner) string {
	var b strings.Builder
	r.Table1().Fprint(&b)
	r.Fig1().Fprint(&b)
	r.Fig4().Fprint(&b)
	r.Fig6().Fprint(&b)
	r.Consolidation(nil).Fprint(&b)
	return b.String()
}

// TestParallelDeterminism is the headline guarantee of the parallel
// experiment engine: the rendered tables must be byte-identical between a
// serial runner (-j 1) and a heavily parallel one (-j 8), because each
// simulation owns its engine, kernel and RNG, and rows are assembled
// serially from memoised results.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	type out struct {
		workers int
		text    string
	}
	outs := make([]out, 0, 2)
	for _, workers := range []int{1, 8} {
		outs = append(outs, out{workers, renderSet(NewRunnerWorkers(workers))})
	}
	if outs[0].text != outs[1].text {
		d := firstDiff(outs[0].text, outs[1].text)
		t.Fatalf("output diverges between -j %d and -j %d at byte %d:\nserial:   %q\nparallel: %q",
			outs[0].workers, outs[1].workers, d,
			window(outs[0].text, d), window(outs[1].text, d))
	}
	if len(outs[0].text) == 0 {
		t.Fatal("experiment set rendered nothing")
	}
}

// TestParallelDeterminismRepeated re-runs the parallel engine and checks
// run-to-run stability (goroutine interleaving must not leak into results).
func TestParallelDeterminismRepeated(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	render := func() string {
		var b strings.Builder
		r := NewRunnerWorkers(6)
		r.Fig1().Fprint(&b)
		r.SeedSensitivity([]uint64{1, 2}).Fprint(&b)
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("parallel runs diverge at byte %d", firstDiff(a, b))
	}
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func window(s string, at int) string {
	lo, hi := at-40, at+40
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}
