package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"depburst/internal/core"
	"depburst/internal/dacapo"
	"depburst/internal/simcache"
	"depburst/internal/tracefmt"
)

// renderSet renders a representative experiment set — pure truth-run
// figures, governed runs, a fork-based sweep and the multi-tenant co-runs —
// exactly as the CLI would print them.
func renderSet(r *Runner) string {
	var b strings.Builder
	r.Table1().Fprint(&b)
	r.Fig1().Fprint(&b)
	r.Fig4().Fprint(&b)
	r.Fig6().Fprint(&b)
	r.Consolidation(nil).Fprint(&b)
	return b.String()
}

// TestParallelDeterminism is the headline guarantee of the parallel
// experiment engine: the rendered tables must be byte-identical between a
// serial runner (-j 1) and a heavily parallel one (-j 8), because each
// simulation owns its engine, kernel and RNG, and rows are assembled
// serially from memoised results.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	type out struct {
		workers int
		text    string
	}
	outs := make([]out, 0, 2)
	for _, workers := range []int{1, 8} {
		outs = append(outs, out{workers, renderSet(NewRunnerWorkers(workers))})
	}
	if outs[0].text != outs[1].text {
		d := firstDiff(outs[0].text, outs[1].text)
		t.Fatalf("output diverges between -j %d and -j %d at byte %d:\nserial:   %q\nparallel: %q",
			outs[0].workers, outs[1].workers, d,
			window(outs[0].text, d), window(outs[1].text, d))
	}
	if len(outs[0].text) == 0 {
		t.Fatal("experiment set rendered nothing")
	}
}

// TestParallelDeterminismRepeated re-runs the parallel engine and checks
// run-to-run stability (goroutine interleaving must not leak into results).
func TestParallelDeterminismRepeated(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	render := func() string {
		var b strings.Builder
		r := NewRunnerWorkers(6)
		r.Fig1().Fprint(&b)
		r.SeedSensitivity([]uint64{1, 2}).Fprint(&b)
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("parallel runs diverge at byte %d", firstDiff(a, b))
	}
}

// renderObservability executes instrumented runs for a small benchmark set
// concurrently on the runner's pool and concatenates every exported
// observability document: the metrics JSON (with prediction-error telemetry
// attached) and the Chrome-trace timeline, plus one governed run.
func renderObservability(r *Runner) string {
	names := []string{"pmd.scale", "avrora"}
	out := make([]string, 2*len(names)+1)
	fns := make([]func(), 0, len(names)+1)
	for i, name := range names {
		i, name := i, name
		fns = append(fns, func() {
			spec, err := dacapo.ByName(name)
			if err != nil {
				panic(err)
			}
			res, reg := r.InstrumentedRun(spec, 1000, false, 0)
			r.ErrorBreakdown(spec, core.Options{Burst: true}, 1000, 4000, reg)
			var m, tl bytes.Buffer
			if err := reg.WriteJSON(&m); err != nil {
				panic(err)
			}
			if err := tracefmt.Write(&tl, res, reg); err != nil {
				panic(err)
			}
			out[2*i] = m.String()
			out[2*i+1] = tl.String()
		})
	}
	fns = append(fns, func() {
		spec, err := dacapo.ByName("pmd.scale")
		if err != nil {
			panic(err)
		}
		_, reg := r.InstrumentedRun(spec, 0, true, 0.10)
		var m bytes.Buffer
		if err := reg.WriteJSON(&m); err != nil {
			panic(err)
		}
		out[2*len(names)] = m.String()
	})
	r.FanOut(fns...)
	return strings.Join(out, "\n")
}

// TestObservabilityDeterminism extends the engine's byte-identity guarantee
// to the observability exports: metrics documents and timelines must be
// byte-identical between -j 1 and -j 8 and across repeated parallel runs,
// because each registry is filled inside one simulation's single-threaded
// event loop.
func TestObservabilityDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	serial := renderObservability(NewRunnerWorkers(1))
	parallel := renderObservability(NewRunnerWorkers(8))
	if serial != parallel {
		d := firstDiff(serial, parallel)
		t.Fatalf("observability exports diverge between -j 1 and -j 8 at byte %d:\nserial:   %q\nparallel: %q",
			d, window(serial, d), window(parallel, d))
	}
	again := renderObservability(NewRunnerWorkers(8))
	if parallel != again {
		t.Fatalf("repeated parallel observability exports diverge at byte %d", firstDiff(parallel, again))
	}
	for _, marker := range []string{
		`"dram_read_latency"`, `"gc_stw_spans"`, `"traceEvents"`,
		`"cpi_delta"`, `"pred_chosen_ps"`, `"dvfs_transitions"`,
	} {
		if !strings.Contains(serial, marker) {
			t.Errorf("exports missing %s", marker)
		}
	}
}

// cachedRunner returns a runner whose results persist in the given store.
func cachedRunner(workers int, st *simcache.Store) *Runner {
	r := NewRunnerWorkers(workers)
	r.SetDiskCache(st)
	return r
}

// damageCache bit-flips the tail byte of every entry in the store's
// directory, simulating on-disk corruption of the whole cache.
func damageCache(t *testing.T, st *simcache.Store) {
	t.Helper()
	des, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range des {
		if filepath.Ext(de.Name()) != ".sce" {
			continue
		}
		path := filepath.Join(st.Dir(), de.Name())
		raw, err := os.ReadFile(path)
		if err != nil || len(raw) == 0 {
			t.Fatalf("reading %s: %v", path, err)
		}
		raw[len(raw)-1] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("cache directory held no entries to damage")
	}
}

// TestDiskCacheRoundTripAndFallback covers the persistent cache at the
// runner level: a warm runner serves the truth and governed families from
// disk with results deep-equal to the live run, and a damaged cache
// silently degrades to live simulation with identical results.
func TestDiskCacheRoundTripAndFallback(t *testing.T) {
	spec, err := dacapo.ByName("pmd.scale")
	if err != nil {
		t.Fatal(err)
	}
	st, err := simcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}

	cold := cachedRunner(1, st)
	truthCold := cold.Truth(spec, 1000)
	managedCold, mgrCold := cold.ManagedRun(spec, 0.10)
	if mgrCold == nil {
		t.Fatal("cold managed run returned no manager")
	}
	if st.Stats().Puts == 0 {
		t.Fatal("cold runs wrote nothing to the store")
	}

	warm := cachedRunner(1, st)
	preHits := st.Stats().Hits
	truthWarm := warm.Truth(spec, 1000)
	managedWarm, mgrWarm := warm.ManagedRun(spec, 0.10)
	if st.Stats().Hits != preHits+2 {
		t.Fatalf("warm runs hit %d times, want 2", st.Stats().Hits-preHits)
	}
	if !reflect.DeepEqual(truthCold, truthWarm) {
		t.Error("warm truth result differs from cold")
	}
	if !reflect.DeepEqual(managedCold, managedWarm) {
		t.Error("warm managed result differs from cold")
	}
	if mgrWarm != nil {
		t.Error("cache-served managed run fabricated a manager")
	}

	damageCache(t, st)
	fallback := cachedRunner(1, st)
	truthLive := fallback.Truth(spec, 1000)
	if !reflect.DeepEqual(truthCold, truthLive) {
		t.Error("live fallback after corruption differs from original run")
	}
	// The damaged entry was purged and the fallback re-populated it.
	again := cachedRunner(1, st)
	if !reflect.DeepEqual(truthCold, again.Truth(spec, 1000)) {
		t.Error("re-populated cache serves a different result")
	}
}

// TestWarmCacheDeterminism is the headline guarantee of the persistent
// cache: rendering the experiment set against a warm cache — at any worker
// count — must be byte-identical to the cold run that populated it, because
// entries round-trip sim.Result exactly and row assembly never observes
// where a result came from.
func TestWarmCacheDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	st, err := simcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := renderSet(cachedRunner(1, st))
	if st.Stats().Puts == 0 {
		t.Fatal("cold render wrote no cache entries")
	}
	for _, workers := range []int{1, 8} {
		pre := st.Stats()
		warm := renderSet(cachedRunner(workers, st))
		if warm != cold {
			d := firstDiff(cold, warm)
			t.Fatalf("warm -j %d render diverges from cold at byte %d:\ncold: %q\nwarm: %q",
				workers, d, window(cold, d), window(warm, d))
		}
		post := st.Stats()
		if post.Hits == pre.Hits {
			t.Fatalf("warm -j %d render never hit the cache", workers)
		}
		if post.Puts != pre.Puts {
			t.Fatalf("warm -j %d render re-simulated %d runs", workers, post.Puts-pre.Puts)
		}
	}
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func window(s string, at int) string {
	lo, hi := at-40, at+40
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}
