package experiments

import (
	"fmt"

	"depburst/internal/core"
	"depburst/internal/report"
	"depburst/internal/units"
)

// SeedSensitivity checks that the headline accuracy result is robust to
// the workload generator's random seed: the suite-average absolute error of
// M+CRIT and DEP+BURST for each seed, in both directions.
func (r *Runner) SeedSensitivity(seeds []uint64) *report.Table {
	if len(seeds) == 0 {
		seeds = []uint64{1, 2, 3}
	}
	t := &report.Table{
		Title:  "Robustness: prediction error vs workload seed (suite avg abs)",
		Header: []string{"seed", "M+CRIT 1->4", "DEP+BURST 1->4", "M+CRIT 4->1", "DEP+BURST 4->1"},
	}
	type dir struct{ base, target units.Freq }
	dirs := []dir{{1000, 4000}, {4000, 1000}}
	models := []core.Model{core.NewMCrit(core.Options{}), core.NewDEPBurst()}

	// One forked runner per seed (same pool, independent cache): all seeds'
	// truth matrices fan out together before rows are assembled.
	runners := make([]*Runner, len(seeds))
	var warm []func()
	for i, seed := range seeds {
		rn := r.fork()
		rn.Base.Seed = seed
		runners[i] = rn
		warm = append(warm, func() { rn.Prewarm(r.Suite(), 1000, 4000) })
	}
	r.FanOut(warm...)

	for i, seed := range seeds {
		rn := runners[i]
		row := []string{fmt.Sprint(seed)}
		for _, d := range dirs {
			for _, m := range models {
				var errs []float64
				for _, spec := range r.Suite() {
					errs = append(errs, rn.PredictionError(spec, m, d.base, d.target))
				}
				row = append(row, report.PctAbs(report.MeanAbs(errs)))
			}
		}
		// Column order: per direction, M+CRIT then DEP+BURST.
		t.AddRow(row[0], row[1], row[2], row[3], row[4])
	}
	t.AddNote("DEP+BURST must stay far below M+CRIT for every seed")
	return t
}
