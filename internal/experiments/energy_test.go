package experiments

import (
	"os"
	"testing"
)

func TestEnergyFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration experiment")
	}
	r := NewRunner()
	r.Fig6().Fprint(os.Stdout)
	r.Fig7(500).Fprint(os.Stdout)
}
