// Package trace generates synthetic dynamic instruction streams.
//
// A workload is described by Profiles — statistical descriptions of a
// phase's ILP, L1-miss rates, pointer-chasing behaviour and address
// locality — which are expanded on the fly into cpu.Blocks using a
// deterministic per-thread random stream. Store bursts (zero-initialisation
// and garbage-collection copying) have dedicated builders because their
// structure (dense sequential stores) is what the BURST model captures.
package trace

import (
	"depburst/internal/cpu"
	"depburst/internal/mem"
	"depburst/internal/rng"
)

// AddrGen produces a stream of physical addresses.
type AddrGen interface {
	Next(r *rng.Source) mem.Addr
}

// RandomRegion draws uniformly from [Base, Base+Size).
type RandomRegion struct {
	Base mem.Addr
	Size int64
}

// Next implements AddrGen.
func (g RandomRegion) Next(r *rng.Source) mem.Addr {
	return g.Base + mem.Addr(r.Int63n(g.Size)).Line()
}

// SeqRegion streams sequentially through [Base, Base+Size) with the given
// line stride, wrapping around. The pointer advances on every draw, so a
// SeqRegion must be used by value-holder (pointer receiver).
type SeqRegion struct {
	Base   mem.Addr
	Size   int64
	Stride int64 // bytes; 0 means one line
	off    int64
}

// Next implements AddrGen.
func (g *SeqRegion) Next(r *rng.Source) mem.Addr {
	stride := g.Stride
	if stride <= 0 {
		stride = mem.LineSize
	}
	a := g.Base + mem.Addr(g.off)
	g.off += stride
	if g.off >= g.Size {
		g.off = 0
	}
	return a.Line()
}

// HotCold draws from a small hot region with probability HotFrac, otherwise
// from a large cold region. This is the classic two-level locality model:
// the hot set decides how many accesses stay in the private caches.
type HotCold struct {
	Hot     RandomRegion
	Cold    RandomRegion
	HotFrac float64
}

// Next implements AddrGen.
func (g HotCold) Next(r *rng.Source) mem.Addr {
	if r.Bool(g.HotFrac) {
		return g.Hot.Next(r)
	}
	return g.Cold.Next(r)
}

// Profile statistically describes a phase of computation.
type Profile struct {
	// IPC is the inherent instruction-level parallelism (committed
	// instructions per cycle absent misses).
	IPC float64
	// LoadsPerKI / StoresPerKI are L1-missing loads and stores per 1000
	// instructions. (L1 hits are folded into IPC.)
	LoadsPerKI  float64
	StoresPerKI float64
	// DepFrac is the probability that a long-latency load depends on the
	// previous one (pointer chasing), extending the CRIT critical path.
	DepFrac float64
	// Addr generates load/store addresses.
	Addr AddrGen
	// StoreAddr optionally generates store addresses; nil means stores
	// share Addr.
	StoreAddr AddrGen
}

// FillBlock expands profile p into dst as a block of n instructions, using
// r for all randomness. dst is reset first; its event slice is reused.
func FillBlock(dst *cpu.Block, p Profile, n int64, r *rng.Source) {
	dst.Reset()
	dst.Instrs = n
	dst.IPC = p.IPC

	evPerKI := p.LoadsPerKI + p.StoresPerKI
	if evPerKI <= 0 || p.Addr == nil {
		return
	}
	meanGap := 1000 / evPerKI
	storeFrac := p.StoresPerKI / evPerKI

	at := int64(0)
	for {
		at += r.Geometric(meanGap)
		if at >= n {
			break
		}
		ev := cpu.MemEvent{At: at}
		if r.Bool(storeFrac) {
			ev.Store = true
			if p.StoreAddr != nil {
				ev.Addr = p.StoreAddr.Next(r)
			} else {
				ev.Addr = p.Addr.Next(r)
			}
		} else {
			ev.Addr = p.Addr.Next(r)
			ev.DepPrev = r.Bool(p.DepFrac)
		}
		dst.Events = append(dst.Events, ev)
	}
}

// FillZeroInit builds the store burst of zero-initialising fresh memory:
// one store per cache line, sequential addresses, very few instructions in
// between (a tight rep-store loop). This is the allocation-time burst the
// paper identifies in Java workloads.
func FillZeroInit(dst *cpu.Block, base mem.Addr, bytes int64, ipc float64) {
	dst.Reset()
	lines := (bytes + mem.LineSize - 1) / mem.LineSize
	if lines <= 0 {
		lines = 1
	}
	const instrPerLine = 2 // store + loop bookkeeping
	dst.Instrs = lines * instrPerLine
	dst.IPC = ipc
	for i := int64(0); i < lines; i++ {
		dst.Events = append(dst.Events, cpu.MemEvent{
			At:    i * instrPerLine,
			Addr:  (base + mem.Addr(i*mem.LineSize)).Line(),
			Store: true,
		})
	}
}

// ZeroInitInstrs returns the instruction count FillZeroInit would assign a
// zero-init burst over the given byte span, letting callers fast-forward
// the burst without materialising its event list.
func ZeroInitInstrs(bytes int64) int64 {
	lines := (bytes + mem.LineSize - 1) / mem.LineSize
	if lines <= 0 {
		lines = 1
	}
	return lines * 2
}

// FillCopy builds a garbage-collection copy burst: for every line, a load
// from the source region followed by a store to the destination region.
func FillCopy(dst *cpu.Block, src, dstBase mem.Addr, bytes int64, ipc float64) {
	dst.Reset()
	lines := (bytes + mem.LineSize - 1) / mem.LineSize
	if lines <= 0 {
		lines = 1
	}
	const instrPerLine = 4 // load, store, pointer updates
	dst.Instrs = lines * instrPerLine
	dst.IPC = ipc
	for i := int64(0); i < lines; i++ {
		off := mem.Addr(i * mem.LineSize)
		dst.Events = append(dst.Events,
			cpu.MemEvent{At: i * instrPerLine, Addr: (src + off).Line()},
			cpu.MemEvent{At: i*instrPerLine + 1, Addr: (dstBase + off).Line(), Store: true},
		)
	}
}

// FillPointerChase builds a graph-traversal trace phase: loads over the
// heap region of which depFrac chain on the previous load (pointer
// chasing), the pattern that makes garbage-collection tracing
// memory-latency-bound. A breadth-first collector keeps several pending
// references, so depFrac < 1 models its memory-level parallelism.
func FillPointerChase(dst *cpu.Block, region RandomRegion, loads int64, gapInstrs int64, depFrac, ipc float64, r *rng.Source) {
	dst.Reset()
	if gapInstrs < 1 {
		gapInstrs = 1
	}
	dst.Instrs = loads * gapInstrs
	dst.IPC = ipc
	for i := int64(0); i < loads; i++ {
		dst.Events = append(dst.Events, cpu.MemEvent{
			At:      i * gapInstrs,
			Addr:    region.Next(r),
			DepPrev: i > 0 && r.Bool(depFrac),
		})
	}
}
