package trace

import (
	"math"
	"testing"
	"testing/quick"

	"depburst/internal/cpu"
	"depburst/internal/mem"
	"depburst/internal/rng"
)

func TestFillBlockValid(t *testing.T) {
	// Property: every generated block passes cpu.Block validation.
	err := quick.Check(func(seed uint64, nRaw uint16) bool {
		n := int64(nRaw%30000) + 100
		p := Profile{
			IPC: 2, LoadsPerKI: 15, StoresPerKI: 5, DepFrac: 0.3,
			Addr: RandomRegion{Base: 1 << 30, Size: 1 << 20},
		}
		var b cpu.Block
		FillBlock(&b, p, n, rng.New(seed))
		return b.Validate() == nil && b.Instrs == n
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestFillBlockRates(t *testing.T) {
	p := Profile{
		IPC: 2, LoadsPerKI: 20, StoresPerKI: 10, DepFrac: 0.5,
		Addr: RandomRegion{Base: 0, Size: 1 << 20},
	}
	var b cpu.Block
	r := rng.New(7)
	var loads, stores, deps int
	const n = 200_000
	const reps = 20
	for i := 0; i < reps; i++ {
		FillBlock(&b, p, n, r)
		for _, e := range b.Events {
			if e.Store {
				stores++
			} else {
				loads++
				if e.DepPrev {
					deps++
				}
			}
		}
	}
	perKI := func(c int) float64 { return float64(c) / (n * reps / 1000) }
	if got := perKI(loads); math.Abs(got-20) > 1.5 {
		t.Errorf("loads/KI = %v, want ~20", got)
	}
	if got := perKI(stores); math.Abs(got-10) > 1 {
		t.Errorf("stores/KI = %v, want ~10", got)
	}
	if frac := float64(deps) / float64(loads); math.Abs(frac-0.5) > 0.03 {
		t.Errorf("dep fraction = %v, want ~0.5", frac)
	}
}

func TestFillBlockDeterministic(t *testing.T) {
	p := Profile{IPC: 2, LoadsPerKI: 10, Addr: RandomRegion{Base: 0, Size: 4096}}
	var a, b cpu.Block
	FillBlock(&a, p, 10_000, rng.New(5))
	FillBlock(&b, p, 10_000, rng.New(5))
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed, different event counts")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatal("same seed, different events")
		}
	}
}

func TestFillBlockNoMemory(t *testing.T) {
	var b cpu.Block
	FillBlock(&b, Profile{IPC: 3}, 1000, rng.New(1))
	if len(b.Events) != 0 || b.IPC != 3 || b.Instrs != 1000 {
		t.Errorf("pure-compute block: %+v", b)
	}
}

func TestFillZeroInit(t *testing.T) {
	var b cpu.Block
	FillZeroInit(&b, 0x1000, 4096, 2)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 64 {
		t.Fatalf("events %d, want 64 lines", len(b.Events))
	}
	seen := map[mem.Addr]bool{}
	for i, e := range b.Events {
		if !e.Store {
			t.Fatal("zero-init emitted a load")
		}
		if seen[e.Addr] {
			t.Fatal("duplicate line in zero-init")
		}
		seen[e.Addr] = true
		if i > 0 && e.Addr != b.Events[i-1].Addr+mem.LineSize {
			t.Fatal("zero-init not sequential")
		}
	}
	// Tiny allocation still emits one store.
	FillZeroInit(&b, 0, 8, 2)
	if len(b.Events) != 1 {
		t.Errorf("8-byte zero-init: %d events", len(b.Events))
	}
}

func TestFillCopy(t *testing.T) {
	var b cpu.Block
	FillCopy(&b, 0x10000, 0x20000, 1024, 2)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 32 { // 16 lines x (load + store)
		t.Fatalf("events %d", len(b.Events))
	}
	for i := 0; i < len(b.Events); i += 2 {
		if b.Events[i].Store || !b.Events[i+1].Store {
			t.Fatal("copy pattern must alternate load, store")
		}
		if b.Events[i+1].Addr-0x20000 != b.Events[i].Addr-0x10000 {
			t.Fatal("copy source/destination offsets disagree")
		}
	}
}

func TestFillPointerChase(t *testing.T) {
	var b cpu.Block
	r := rng.New(3)
	FillPointerChase(&b, RandomRegion{Base: 0, Size: 1 << 20}, 100, 10, 0.45, 1.5, r)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 100 {
		t.Fatalf("events %d", len(b.Events))
	}
	deps := 0
	for i, e := range b.Events {
		if e.Store {
			t.Fatal("trace emitted a store")
		}
		if i == 0 && e.DepPrev {
			t.Fatal("first load cannot depend on a previous one")
		}
		if e.DepPrev {
			deps++
		}
	}
	if deps < 25 || deps > 65 {
		t.Errorf("dep loads %d of 100, want ~45", deps)
	}
	// Full chaining at depFrac 1.
	FillPointerChase(&b, RandomRegion{Base: 0, Size: 1 << 20}, 50, 10, 1, 1.5, r)
	for i, e := range b.Events {
		if i > 0 && !e.DepPrev {
			t.Fatal("depFrac=1 left an independent load")
		}
	}
}

func TestAddrGens(t *testing.T) {
	r := rng.New(11)
	rr := RandomRegion{Base: 1 << 20, Size: 4096}
	for i := 0; i < 1000; i++ {
		a := rr.Next(r)
		if a < rr.Base || a >= rr.Base+mem.Addr(rr.Size) {
			t.Fatalf("RandomRegion out of range: %x", a)
		}
		if a != a.Line() {
			t.Fatal("RandomRegion not line-aligned")
		}
	}

	seq := &SeqRegion{Base: 0, Size: 256, Stride: 64}
	want := []mem.Addr{0, 64, 128, 192, 0}
	for i, w := range want {
		if got := seq.Next(r); got != w {
			t.Fatalf("SeqRegion draw %d = %d, want %d", i, got, w)
		}
	}

	hc := HotCold{
		Hot:     RandomRegion{Base: 0, Size: 4096},
		Cold:    RandomRegion{Base: 1 << 30, Size: 1 << 20},
		HotFrac: 0.8,
	}
	hot := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		if hc.Next(r) < 1<<30 {
			hot++
		}
	}
	if frac := float64(hot) / n; math.Abs(frac-0.8) > 0.02 {
		t.Errorf("hot fraction %v, want ~0.8", frac)
	}
}
