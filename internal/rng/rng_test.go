package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	// Children are deterministic functions of (parent state, id)...
	p2 := New(7)
	d1 := p2.Fork(1)
	if c1.Uint64() != d1.Uint64() {
		t.Error("fork not deterministic")
	}
	// ...and differ from each other.
	if c1.Uint64() == c2.Uint64() {
		t.Error("sibling forks produce identical draws")
	}
}

func TestIntnRange(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(99)
	var sum float64
	const n = 100_000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(5)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
	// p=0.3 should be roughly 30%.
	hits := 0
	for i := 0; i < 100_000; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / 100_000; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}

func TestExpMean(t *testing.T) {
	s := New(11)
	var sum float64
	const n = 200_000
	for i := 0; i < n; i++ {
		v := s.Exp(40)
		if v < 0 {
			t.Fatalf("Exp < 0: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-40) > 1 {
		t.Errorf("Exp(40) mean = %v", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(13)
	var sum float64
	const n = 200_000
	for i := 0; i < n; i++ {
		v := s.Geometric(25)
		if v < 1 {
			t.Fatalf("Geometric < 1: %v", v)
		}
		sum += float64(v)
	}
	if mean := sum / n; math.Abs(mean-25) > 1 {
		t.Errorf("Geometric(25) mean = %v", mean)
	}
	if got := s.Geometric(0.5); got != 1 {
		t.Errorf("Geometric(<1) = %d, want 1", got)
	}
}

func TestNorm(t *testing.T) {
	s := New(17)
	var sum, sq float64
	const n = 200_000
	for i := 0; i < n; i++ {
		v := s.Norm(10, 3)
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 || math.Abs(std-3) > 0.1 {
		t.Errorf("Norm(10,3): mean=%v std=%v", mean, std)
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
