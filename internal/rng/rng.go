// Package rng provides the deterministic pseudo-random number generator used
// by the simulator and workload generators.
//
// Every stochastic choice in a simulation draws from an rng.Source seeded
// from the run configuration, so a run is a pure function of its config:
// the same seed always reproduces the same execution, which the test suite
// relies on.
package rng

import "math"

// Source is a SplitMix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Fork derives an independent child generator from s, keyed by id. Forking
// lets each thread or subsystem own a private stream whose draws do not
// depend on the interleaving of other components.
func (s *Source) Fork(id uint64) *Source {
	// Mix the parent state with the id through one splitmix step each.
	child := New(s.Uint64() ^ (id*0x9E3779B97F4A7C15 + 0x1F83D9ABFB41BD6B))
	return child
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be > 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Exp returns an exponentially distributed float64 with the given mean.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Geometric returns a geometrically distributed count >= 1 with the given
// mean (mean must be >= 1). It is the number of Bernoulli trials up to and
// including the first success with p = 1/mean.
func (s *Source) Geometric(mean float64) int64 {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	u := s.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	n := int64(math.Log(1-u)/math.Log(1-p)) + 1
	if n < 1 {
		n = 1
	}
	return n
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation, using the polar Box-Muller transform.
func (s *Source) Norm(mean, stddev float64) float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Perm fills a permutation of [0, n) using Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
