package tracefmt

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"depburst/internal/cpu"
	"depburst/internal/jvm"
	"depburst/internal/kernel"
	"depburst/internal/metrics"
	"depburst/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureRun builds a small synthetic run plus a matching registry: two
// threads, one GC pause, a couple of epochs and quanta. Hand-built so the
// golden bytes only change when the exporter changes, never when the
// simulator's models move.
func fixtureRun() (*sim.Result, *metrics.Registry) {
	res := &sim.Result{
		Workload: "synthetic",
		Freq:     2000,
		Time:     10_000_000, // 10 µs
		Threads: []sim.ThreadResult{
			{ID: 0, Name: "main", Class: kernel.ClassApp, Start: 0, End: 10_000_000,
				C: cpu.Counters{Instrs: 20_000, Active: 9_000_000, CritNS: 2_000_000, SQFull: 500_000}},
			{ID: 1, Name: "GC worker", Class: kernel.ClassService, Start: 1_000_000, End: 9_000_000,
				C: cpu.Counters{Instrs: 4_000, Active: 3_000_000, CritNS: 1_000_000}},
		},
		Epochs: []kernel.Epoch{
			{Start: 0, End: 4_000_000, StallTID: 0, EndKind: kernel.BoundarySleep,
				Slices: []kernel.ThreadSlice{{TID: 0, Delta: cpu.Counters{Instrs: 10_000, Active: 4_000_000}}}},
			{Start: 4_000_000, End: 10_000_000, StallTID: kernel.NoThread, EndKind: kernel.BoundaryWake,
				Slices: []kernel.ThreadSlice{{TID: 1, Delta: cpu.Counters{Instrs: 4_000, Active: 3_000_000}}}},
		},
		Marks: []kernel.Mark{
			{At: 2_000_000, Label: "gc-start"},
			{At: 2_400_000, Label: "gc-end"},
		},
		GC: jvm.Stats{MinorGCs: 1, GCTime: 400_000,
			Pauses: []jvm.Pause{{Start: 2_000_000, End: 2_400_000}}},
		Samples: []sim.QuantumSample{
			{Start: 0, End: 5_000_000, Freq: 2000, DRAMAccesses: 120,
				PerCore: []sim.CoreSample{{Freq: 2000}, {Freq: 2000}}},
			{Start: 5_000_000, End: 10_000_000, Freq: 1500, DRAMAccesses: 40,
				PerCore: []sim.CoreSample{{Freq: 1500}, {Freq: 2000}}},
		},
	}
	reg := metrics.NewRegistry()
	reg.SetRun("synthetic", 2000)
	reg.RecordGCSpan(2_000_000, 2_400_000, false)
	reg.RecordFreqChange(5_000_000, -1, 1500)
	reg.RecordDRAMPoint(metrics.DRAMPoint{At: 5_000_000, Reads: 90, Writes: 30, Conflicts: 10, BusUtilization: 0.4})
	reg.RecordDRAMPoint(metrics.DRAMPoint{At: 10_000_000, Reads: 30, Writes: 10, Conflicts: 1, BusUtilization: 0.1})
	return res, reg
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run 'go test -update ./...'): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (re-run with -update if the change is intended)\ngot:\n%s", path, got)
	}
}

func TestWriteGolden(t *testing.T) {
	res, reg := fixtureRun()
	var buf bytes.Buffer
	if err := Write(&buf, res, reg); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "timeline.golden.json", buf.Bytes())
}

// TestWriteGoldenNilRegistry locks the registry-less fallback path (GC
// pauses from the result, DRAM from the samples, no DVFS instants).
func TestWriteGoldenNilRegistry(t *testing.T) {
	res, _ := fixtureRun()
	var buf bytes.Buffer
	if err := Write(&buf, res, nil); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "timeline_noreg.golden.json", buf.Bytes())
}

func TestWriteDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	res, reg := fixtureRun()
	if err := Write(&a, res, reg); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, res, reg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exports of the same fixture differ")
	}
}

// TestBuildTracks checks the assembled document structurally: every track
// family present, phases legal, timestamps in microseconds.
func TestBuildTracks(t *testing.T) {
	res, reg := fixtureRun()
	doc := Build(res, reg)
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	byPid := map[int]int{}
	byPh := map[string]int{}
	for _, e := range doc.TraceEvents {
		byPid[e.Pid]++
		byPh[e.Ph]++
		switch e.Ph {
		case "X", "i", "C", "M":
		default:
			t.Errorf("illegal phase %q on %q", e.Ph, e.Name)
		}
	}
	for _, pid := range []int{PidThreads, PidGC, PidDVFS, PidEpochs, PidDRAM} {
		if byPid[pid] == 0 {
			t.Errorf("no events on pid %d", pid)
		}
	}
	// 2 threads + 1 GC span = 3 complete events; 5 process_name records.
	if byPh["X"] != 3 {
		t.Errorf("%d complete events, want 3", byPh["X"])
	}
	if byPh["M"] != 5 {
		t.Errorf("%d metadata events, want 5", byPh["M"])
	}
	// One thread event: 10 µs duration shows up as 10.0 in trace time.
	var seen bool
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Pid == PidThreads && e.Tid == 0 {
			if e.Dur != 10.0 {
				t.Errorf("main thread dur = %v µs, want 10", e.Dur)
			}
			seen = true
		}
	}
	if !seen {
		t.Error("main thread track missing")
	}
}

// TestSamplingTrack covers the sampled-simulation track: a run with
// fast-forwarded quanta gains a PidSampling track labelling every quantum,
// while a full-detail run emits nothing on that pid (the goldens above pin
// the byte identity of that case).
func TestSamplingTrack(t *testing.T) {
	full, reg := fixtureRun()
	for _, e := range Build(full, reg).TraceEvents {
		if e.Pid == PidSampling {
			t.Fatalf("full-detail export emits sampling event %q", e.Name)
		}
	}

	res, reg := fixtureRun()
	res.Samples[1].FF = true
	doc := Build(res, reg)
	var names []string
	metas := 0
	for _, e := range doc.TraceEvents {
		if e.Pid != PidSampling {
			continue
		}
		switch e.Ph {
		case "X":
			names = append(names, e.Name)
		case "M":
			metas++
		default:
			t.Errorf("unexpected phase %q on sampling track", e.Ph)
		}
	}
	want := []string{"detailed", "fast-forward"}
	if len(names) != len(want) || names[0] != want[0] || names[1] != want[1] {
		t.Errorf("sampling track events %v, want %v", names, want)
	}
	if metas != 1 {
		t.Errorf("%d sampling process_name records, want 1", metas)
	}
}

// TestSchemaStability pins the trace_event wire format: the top-level
// wrapper keys, the per-event keys, and the track pid assignments that
// viewers and the golden files depend on.
func TestSchemaStability(t *testing.T) {
	if PidThreads != 1 || PidGC != 2 || PidDVFS != 3 || PidEpochs != 4 || PidDRAM != 5 || PidSampling != 6 {
		t.Error("track pid constants changed; goldens and consumers must be updated together")
	}
	res, reg := fixtureRun()
	raw, err := json.Marshal(Build(res, reg))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"displayTimeUnit", "traceEvents"} {
		if _, ok := doc[k]; !ok {
			t.Errorf("top-level key %q missing", k)
		}
	}
	if len(doc) != 2 {
		t.Errorf("top level has %d keys, want 2", len(doc))
	}
	var events []map[string]json.RawMessage
	if err := json.Unmarshal(doc["traceEvents"], &events); err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{
		"name": true, "ph": true, "ts": true, "dur": true,
		"pid": true, "tid": true, "cat": true, "s": true, "args": true,
	}
	for _, e := range events {
		for k := range e {
			if !allowed[k] {
				t.Fatalf("unexpected event key %q (trace_event schema change)", k)
			}
		}
		for _, k := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Fatalf("required event key %q missing", k)
			}
		}
	}
}
