// Package tracefmt exports a simulated run's timeline in the Chrome
// trace_event JSON format, loadable in chrome://tracing and Perfetto
// (https://ui.perfetto.dev). One track per kernel thread shows scheduling
// lifetimes, a GC track shows stop-the-world windows, counter tracks show
// each core's frequency and the DRAM activity series, and instant events
// mark DVFS transitions, epoch boundaries and runtime phase marks. Runs
// executed in sampled mode additionally get a track labelling each quantum
// fast-forward or detailed.
//
// The document is built from structs and slices in a fixed order, so
// identical runs export byte-identical timelines — the golden and
// determinism tests rely on it.
package tracefmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"depburst/internal/metrics"
	"depburst/internal/sim"
	"depburst/internal/units"
)

// Process IDs group the timeline's tracks in trace viewers. They are part
// of the exported contract (the schema test pins them).
const (
	PidThreads  = 1 // one track per kernel thread
	PidGC       = 2 // stop-the-world windows and runtime marks
	PidDVFS     = 3 // per-core frequency counters and transition instants
	PidEpochs   = 4 // synchronization epoch boundaries
	PidDRAM     = 5 // memory-system counter tracks
	PidSampling = 6 // sampled-vs-detailed quanta (sampled runs only)
)

// Event is one Chrome trace_event entry. Only the fields the format
// requires are emitted; Args marshals with sorted keys (encoding/json
// sorts map keys), keeping the output deterministic.
type Event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// Document is the top-level Chrome trace wrapper.
type Document struct {
	DisplayTimeUnit string  `json:"displayTimeUnit"`
	TraceEvents     []Event `json:"traceEvents"`
}

// us converts simulated picoseconds to trace microseconds.
func us(t units.Time) float64 { return float64(t) / 1e6 }

// meta emits a process/thread naming metadata event.
func meta(name, kind string, pid, tid int) Event {
	return Event{
		Name: kind, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	}
}

// Build assembles the timeline document from a run's observations. reg may
// be nil: the tracks that need registry data (DVFS transition instants,
// DRAM series, GC spans recorded by the JVM) are then reconstructed from
// the result where possible (GC pauses, per-quantum frequencies) and
// omitted otherwise.
func Build(res *sim.Result, reg *metrics.Registry) Document {
	doc := Document{DisplayTimeUnit: "ns"}
	ev := make([]Event, 0, 256)

	// Thread lifetime tracks: one complete event per kernel thread.
	for _, t := range res.Threads {
		end := t.End
		if end < t.Start {
			end = t.Start
		}
		ev = append(ev, Event{
			Name: fmt.Sprintf("%s (tid %d)", t.Name, t.ID),
			Ph:   "X", Ts: us(t.Start), Dur: us(end - t.Start),
			Pid: PidThreads, Tid: int(t.ID), Cat: t.Class.String(),
			Args: map[string]any{
				"instrs":    float64(t.C.Instrs),
				"active_us": us(t.C.Active),
				"crit_us":   us(t.C.CritNS),
				"sqfull_us": us(t.C.SQFull),
			},
		})
	}

	// Stop-the-world windows. Prefer the registry's spans (recorded by
	// the JVM as they close); fall back to the result's pause list.
	spans := reg.GCSpans()
	if spans == nil {
		for _, p := range res.GC.Pauses {
			spans = append(spans, metrics.Span{Start: p.Start, End: p.End, Major: p.Major})
		}
	}
	for _, s := range spans {
		name := "minor GC (STW)"
		if s.Major {
			name = "major GC (STW)"
		}
		ev = append(ev, Event{
			Name: name, Ph: "X", Ts: us(s.Start), Dur: us(s.End - s.Start),
			Pid: PidGC, Tid: 0, Cat: "gc",
		})
	}
	// Runtime phase marks (gc-start/gc-end and friends).
	for _, m := range res.Marks {
		ev = append(ev, Event{
			Name: m.Label, Ph: "i", Ts: us(m.At),
			Pid: PidGC, Tid: 1, Cat: "mark", S: "p",
		})
	}

	// Per-core frequency counter tracks, one point per quantum.
	for _, s := range res.Samples {
		for i, c := range s.PerCore {
			ev = append(ev, Event{
				Name: fmt.Sprintf("core%d freq", i), Ph: "C", Ts: us(s.Start),
				Pid: PidDVFS, Tid: i,
				Args: map[string]any{"mhz": float64(c.Freq)},
			})
		}
	}
	// Exact DVFS transition instants (registry only: the machine records
	// them as they are applied).
	for _, c := range reg.FreqChanges() {
		name := "dvfs chip"
		if c.Core >= 0 {
			name = fmt.Sprintf("dvfs core%d", c.Core)
		}
		tid := c.Core
		if tid < 0 {
			tid = 0
		}
		ev = append(ev, Event{
			Name: name, Ph: "i", Ts: us(c.At),
			Pid: PidDVFS, Tid: tid, Cat: "dvfs", S: "g",
			Args: map[string]any{"mhz": float64(c.Freq)},
		})
	}

	// Synchronization epoch boundaries: one instant per epoch close, the
	// paper's unit of prediction.
	for _, ep := range res.Epochs {
		ev = append(ev, Event{
			Name: "epoch " + ep.EndKind.String(), Ph: "i", Ts: us(ep.End),
			Pid: PidEpochs, Tid: 0, Cat: "epoch", S: "t",
			Args: map[string]any{
				"dur_us":  us(ep.Duration()),
				"threads": float64(len(ep.Slices)),
			},
		})
	}

	// DRAM activity counter tracks: per-quantum reads/writes/bank
	// conflicts (registry) or access totals from the samples.
	if pts := reg.DRAMSeries(); pts != nil {
		for _, p := range pts {
			ev = append(ev, Event{
				Name: "DRAM", Ph: "C", Ts: us(p.At),
				Pid: PidDRAM, Tid: 0,
				Args: map[string]any{
					"reads":     float64(p.Reads),
					"writes":    float64(p.Writes),
					"conflicts": float64(p.Conflicts),
				},
			})
		}
	} else {
		for _, s := range res.Samples {
			ev = append(ev, Event{
				Name: "DRAM", Ph: "C", Ts: us(s.Start),
				Pid: PidDRAM, Tid: 0,
				Args: map[string]any{"accesses": float64(s.DRAMAccesses)},
			})
		}
	}

	// Sampled-simulation track: one complete event per quantum, labelled
	// fast-forward or detailed, so the viewer shows which stretches were
	// extrapolated. Emitted only when the run actually fast-forwarded —
	// full-detail exports stay byte-identical to their goldens.
	sampled := false
	for _, s := range res.Samples {
		if s.FF {
			sampled = true
			break
		}
	}
	if sampled {
		for _, s := range res.Samples {
			name := "detailed"
			if s.FF {
				name = "fast-forward"
			}
			ev = append(ev, Event{
				Name: name, Ph: "X", Ts: us(s.Start), Dur: us(s.End - s.Start),
				Pid: PidSampling, Tid: 0, Cat: "sampling",
			})
		}
	}

	// Track-naming metadata, emitted last so viewers associate names
	// after all tracks exist.
	ev = append(ev,
		meta("threads", "process_name", PidThreads, 0),
		meta("gc", "process_name", PidGC, 0),
		meta("dvfs", "process_name", PidDVFS, 0),
		meta("epochs", "process_name", PidEpochs, 0),
		meta("dram", "process_name", PidDRAM, 0),
	)
	if sampled {
		ev = append(ev, meta("sampling", "process_name", PidSampling, 0))
	}

	doc.TraceEvents = ev
	return doc
}

// Write exports the run's timeline as Chrome trace JSON.
func Write(w io.Writer, res *sim.Result, reg *metrics.Registry) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	//depburst:allow goldenio -- the trace_event format defines args as an open object; encoding/json sorts its keys, which the schema test pins
	if err := enc.Encode(Build(res, reg)); err != nil {
		return fmt.Errorf("tracefmt: encode: %w", err)
	}
	return bw.Flush()
}
