package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoLife enforces goroutine lifecycle hygiene: the fleet-scale refactors the
// ROADMAP plans (shard coordinators, per-node samplers) multiply long-lived
// goroutines, and a leaked one is invisible until a process refuses to
// drain. Every `go` statement must have a provable termination story:
//
//   - the spawned body contains no unbounded loop (a straight-line goroutine
//     ends when its work does), or
//   - every unbounded `for {}` loop blocks on a channel — a select with a
//     receive case, or a direct receive — and carries an exit (return or
//     break), the ctx.Done()/quit-channel idiom, or
//   - the goroutine is joined: its body calls Done on a sync.WaitGroup
//     (errgroup-style counters with a Done method count too), or
//   - the go statement is annotated //depburst:daemon -- <reason>.
//
// Two capture hazards are flagged alongside: a go closure referencing its
// enclosing for/range loop variables directly (pass them as arguments — the
// pre-Go1.22 rebinding bug, and still a correctness trap when the module
// version is ever lowered), and a go closure assigning to a variable of the
// enclosing function without synchronization (no mutex held at the write, no
// sync.Once.Do wrapper) — a write-write or write-read race with the spawner.
var GoLife = &Analyzer{
	Name: "golife",
	Doc:  "go statements must terminate (ctx/quit loop exit, WaitGroup join) or be //depburst:daemon",
	Run:  runGoLife,
}

func runGoLife(p *Pass) {
	for _, f := range p.Pkg.Files {
		daemon := daemonLines(p, f)
		var loops []ast.Node // enclosing for/range statements
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if len(loops) > 0 && loops[len(loops)-1] == top {
					loops = loops[:len(loops)-1]
				}
				return true
			}
			stack = append(stack, n)
			switch s := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, s)
			case *ast.GoStmt:
				checkGoStmt(p, s, daemon, loops)
			}
			return true
		})
	}
}

// daemonLines indexes //depburst:daemon directives: the directive's own line
// and the next, mirroring allow placement. A directive without a reason
// (after "--" or plain trailing words) is reported and ignored.
func daemonLines(p *Pass, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, grp := range f.Comments {
		for _, c := range grp.List {
			rest, ok := strings.CutPrefix(c.Text, directiveDaemon)
			if !ok {
				continue
			}
			reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), "--"))
			pos := p.L.Fset.Position(c.Pos())
			if reason == "" {
				p.Reportf(c.Pos(), "write //depburst:daemon -- <why this goroutine may outlive its spawner>",
					"//depburst:daemon directive without a reason")
				continue
			}
			lines[pos.Line] = true
			lines[pos.Line+1] = true
		}
	}
	return lines
}

// checkGoStmt applies the lifecycle rules to one go statement.
func checkGoStmt(p *Pass, g *ast.GoStmt, daemon map[int]bool, loops []ast.Node) {
	if daemon[p.L.Fset.Position(g.Pos()).Line] {
		return
	}
	body := goBody(p, g)
	if body == nil {
		p.Reportf(g.Pos(), "spawn a func literal or a module function golife can see into, or annotate //depburst:daemon -- <reason>",
			"go statement spawns a dynamically-resolved function; its lifecycle cannot be verified")
		return
	}
	if fl, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		checkLoopVarCapture(p, g, fl, loops)
		checkCapturedWrites(p, fl)
	}
	if joined(p.Pkg.Info, body) {
		return
	}
	for _, loop := range unboundedLoops(body) {
		if !loopHasExit(p.Pkg.Info, loop) {
			p.Reportf(loop.Pos(), "add a `case <-ctx.Done(): return` (or quit-channel receive) to the loop, join via sync.WaitGroup, or annotate the go statement //depburst:daemon -- <reason>",
				"goroutine loop has no termination path (no channel receive with an exit, no join)")
		}
	}
}

// goBody resolves the statements the goroutine will run: a func literal's
// body, or the declaration of a statically-resolved module function. nil
// means the callee is dynamic.
func goBody(p *Pass, g *ast.GoStmt) *ast.BlockStmt {
	if fl, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return fl.Body
	}
	fn := calleeOf(p.Pkg.Info, g.Call)
	if fn == nil {
		return nil
	}
	if _, decl := p.L.FuncDecl(fn); decl != nil {
		return decl.Body
	}
	return nil
}

// joined reports whether the body signals completion through a WaitGroup:
// any call to a method named Done on a sync.WaitGroup (or an errgroup-style
// counter — any non-context type with a Done method taking no arguments).
func joined(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" || len(call.Args) != 0 {
			return true
		}
		selection, ok := info.Selections[sel]
		if !ok {
			return true
		}
		if _, ok := selection.Obj().(*types.Func); !ok {
			return true
		}
		// ctx.Done() is a receive source, not a join; everything else named
		// Done with no arguments is counted as a completion signal.
		if isContextDone(info, sel) {
			return true
		}
		found = true
		return false
	})
	return found
}

// isContextDone matches x.Done() where x is a context.Context.
func isContextDone(info *types.Info, sel *ast.SelectorExpr) bool {
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// unboundedLoops collects `for {}` loops (no condition) in the body,
// including inside nested func literals that run on this goroutine, but not
// inside nested go statements (those get their own check).
func unboundedLoops(body *ast.BlockStmt) []*ast.ForStmt {
	var out []*ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.ForStmt:
			if n.Cond == nil {
				out = append(out, n)
			}
		}
		return true
	})
	return out
}

// loopHasExit reports whether an unbounded loop blocks on a channel and can
// leave: a select receive case or a direct receive expression, plus a return
// or a break that applies to this loop.
func loopHasExit(info *types.Info, loop *ast.ForStmt) bool {
	receives := false
	exits := false
	depth := 0
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					continue
				}
				if commReceives(cc.Comm) {
					receives = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				receives = true
			}
		case *ast.ReturnStmt:
			exits = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && depth == 0 {
				exits = true
			}
		}
		return true
	})
	return receives && exits
}

// commReceives reports whether a select communication is a receive.
func commReceives(comm ast.Stmt) bool {
	switch c := comm.(type) {
	case *ast.ExprStmt:
		u, ok := ast.Unparen(c.X).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			u, ok := ast.Unparen(c.Rhs[0]).(*ast.UnaryExpr)
			return ok && u.Op == token.ARROW
		}
	}
	return false
}

// checkLoopVarCapture flags go closures referencing the iteration variables
// of an enclosing for/range statement instead of taking them as arguments.
func checkLoopVarCapture(p *Pass, g *ast.GoStmt, fl *ast.FuncLit, loops []ast.Node) {
	if len(loops) == 0 {
		return
	}
	info := p.Pkg.Info
	vars := make(map[types.Object]bool)
	for _, loop := range loops {
		switch l := loop.(type) {
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{l.Key, l.Value} {
				if id, ok := e.(*ast.Ident); ok && id != nil {
					if obj := info.Defs[id]; obj != nil {
						vars[obj] = true
					}
				}
			}
		case *ast.ForStmt:
			if init, ok := l.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, e := range init.Lhs {
					if id, ok := e.(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							vars[obj] = true
						}
					}
				}
			}
		}
	}
	if len(vars) == 0 {
		return
	}
	reported := make(map[types.Object]bool)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || !vars[obj] || reported[obj] {
			return true
		}
		reported[obj] = true
		p.Reportf(id.Pos(), "pass "+id.Name+" to the closure as an argument (go func(x T){...}("+id.Name+"))",
			"go closure captures loop variable %s by reference", id.Name)
		return true
	})
}

// checkCapturedWrites flags assignments inside a go closure to variables
// declared outside it, unless the write is synchronized: made while a mutex
// is lexically held inside the closure, wrapped in sync.Once.Do, or the
// variable is atomic-typed (its methods, not assignment, would be the bug —
// atomiccheck covers that).
func checkCapturedWrites(p *Pass, fl *ast.FuncLit) {
	info := p.Pkg.Info
	var walk func(stmts []ast.Stmt, held int)
	captured := func(e ast.Expr) *ast.Ident {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return nil
		}
		// Package-level variables are shared state with their own story;
		// only function-local captures are the silent-race shape.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return nil
		}
		if v.Pos() >= fl.Body.Pos() && v.Pos() <= fl.Body.End() {
			return nil // declared inside the closure
		}
		if v.Pos() >= fl.Type.Pos() && v.Pos() < fl.Body.Pos() {
			return nil // closure parameter
		}
		return id
	}
	report := func(id *ast.Ident) {
		p.Reportf(id.Pos(), "send the value over a channel, guard the write with a mutex, or make "+id.Name+" atomic",
			"go closure writes captured variable %s without synchronization", id.Name)
	}
	var checkStmt func(s ast.Stmt, held int)
	checkStmt = func(s ast.Stmt, held int) {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if _, op, ok := lockCall(info, call); ok {
					_ = op
					return
				}
				// sync.Once.Do(func(){...}): the callback is synchronized.
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Do" {
					if selection, ok := info.Selections[sel]; ok {
						if fn, ok := selection.Obj().(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
							return
						}
					}
				}
			}
		case *ast.AssignStmt:
			if held == 0 {
				for _, lhs := range s.Lhs {
					if s.Tok == token.DEFINE {
						continue
					}
					if id := captured(lhs); id != nil {
						report(id)
					}
				}
			}
			return
		case *ast.IncDecStmt:
			if held == 0 {
				if id := captured(s.X); id != nil {
					report(id)
				}
			}
			return
		case *ast.BlockStmt:
			walk(s.List, held)
			return
		case *ast.IfStmt:
			if s.Init != nil {
				checkStmt(s.Init, held)
			}
			walk(s.Body.List, held)
			if s.Else != nil {
				checkStmt(s.Else, held)
			}
			return
		case *ast.ForStmt:
			walk(s.Body.List, held)
			return
		case *ast.RangeStmt:
			walk(s.Body.List, held)
			return
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				walk(c.(*ast.CommClause).Body, held)
			}
			return
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				walk(c.(*ast.CaseClause).Body, held)
			}
			return
		case *ast.DeferStmt, *ast.GoStmt:
			return // deferred/spawned bodies have their own stories
		}
	}
	walk = func(stmts []ast.Stmt, held int) {
		for _, s := range stmts {
			if es, ok := s.(*ast.ExprStmt); ok {
				if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
					if _, op, ok := lockCall(info, call); ok {
						switch op {
						case "Lock", "RLock":
							held++
						case "Unlock", "RUnlock":
							if held > 0 {
								held--
							}
						}
						continue
					}
				}
			}
			checkStmt(s, held)
		}
	}
	walk(fl.Body.List, 0)
}
