package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// Determinism enforces the repo's reproducibility contract: every experiment
// table, metrics document and server response must be a pure function of its
// inputs, byte-identical across -j1/-j8 and cold/warm cache replays.
//
// It flags the three ways nondeterminism has historically leaked into such
// outputs:
//
//   - wall-clock reads (time.Now / time.Since / time.Until);
//   - the global math/rand generators (internal/rng's seeded, forkable
//     Source is the only sanctioned randomness);
//   - ranging over a map where the iteration order can reach an output.
//
// A map range is accepted when its body is provably order-insensitive:
// commutative accumulation (x++, x += v), writes into another map, deletes,
// or collecting keys into a slice that the same function later sorts. Wall
// clock telemetry sites (serving latency, bench timing, cache LRU stamps)
// carry //depburst:allow determinism annotations with their justification.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global math/rand and unsorted map iteration in output-feeding code",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "draw from a seeded internal/rng.Source instead",
					"import of %s: global randomness breaks replay determinism", path)
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDeterminismFunc(p, fd)
		}
	}
}

func checkDeterminismFunc(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if obj := calleeOf(info, n); obj != nil && isPkgFunc(obj, "time") {
				switch obj.Name() {
				case "Now", "Since", "Until":
					p.Reportf(n.Pos(), "derive times from the simulated clock or the run config",
						"time.%s reads the wall clock; output depending on it cannot replay byte-identically", obj.Name())
				}
			}
		case *ast.RangeStmt:
			t := info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); ok {
				checkMapRange(p, fd, n)
			}
		}
		return true
	})
}

// checkMapRange vets one range-over-map for order sensitivity.
func checkMapRange(p *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	info := p.Pkg.Info
	// collected tracks slices the body appends to; each must be sorted
	// later in the function for the iteration to be order-insensitive.
	var collected []string
	for _, stmt := range rng.Body.List {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			// x++ / x-- accumulate commutatively.
		case *ast.AssignStmt:
			if key, ok := appendTarget(info, s); ok {
				collected = append(collected, key)
				continue
			}
			if !commutativeAssign(info, s) {
				p.Reportf(rng.Pos(), "iterate a sorted key slice instead (collect keys, sort, then index)",
					"map iteration order is nondeterministic and this body is order-sensitive")
				return
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !isBuiltin(info, call, "delete") {
				p.Reportf(rng.Pos(), "iterate a sorted key slice instead (collect keys, sort, then index)",
					"map iteration order is nondeterministic and this body is order-sensitive")
				return
			}
		default:
			p.Reportf(rng.Pos(), "iterate a sorted key slice instead (collect keys, sort, then index)",
				"map iteration order is nondeterministic and this body is order-sensitive")
			return
		}
	}
	for _, key := range collected {
		if !sortedAfter(info, fd, rng, key) {
			p.Reportf(rng.Pos(), "sort the collected keys (sort.Strings/sort.Slice) before they feed an output",
				"map keys collected into %q are never sorted; downstream output inherits map order", key)
		}
	}
}

// appendTarget matches the self-append `x = append(x, ...)` — including the
// struct-field form `e.free = append(e.free, it)` — and returns x's
// structural key (see exprKey).
func appendTarget(info *types.Info, s *ast.AssignStmt) (string, bool) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return "", false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 {
		return "", false
	}
	key := exprKey(s.Lhs[0])
	if key == "" || key != exprKey(call.Args[0]) {
		return "", false
	}
	return key, true
}

// commutativeAssign reports whether an assignment inside a map range is
// order-insensitive: writes into map elements (m[k] = v, m[k] += v) or
// compound accumulation into plain variables (sum += v, bits |= v).
func commutativeAssign(info *types.Info, s *ast.AssignStmt) bool {
	for _, lhs := range s.Lhs {
		switch l := lhs.(type) {
		case *ast.IndexExpr:
			t := info.TypeOf(l.X)
			if t == nil {
				return false
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return false
			}
		case *ast.Ident:
			// Plain variables only accumulate commutatively through
			// compound assignment (+=, |=, ^=, &=, *=); x = v overwrites
			// and keeps whichever key iterated last.
			switch s.Tok.String() {
			case "+=", "|=", "^=", "&=", "*=":
			default:
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sortedAfter reports whether the keyed slice is passed to a sort call after
// rng within fd's body.
func sortedAfter(info *types.Info, fd *ast.FuncDecl, rng *ast.RangeStmt, key string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil || !isSortFunc(fn) {
			return true
		}
		if exprKey(call.Args[0]) == key {
			found = true
			return false
		}
		return true
	})
	return found
}

// isSortFunc recognises the stdlib sorters: package sort and package slices.
func isSortFunc(fn *types.Func) bool {
	if isPkgFunc(fn, "sort") {
		return true
	}
	return isPkgFunc(fn, "slices") && strings.HasPrefix(fn.Name(), "Sort")
}
