package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces deadline propagation: once a function receives a
// context.Context, the context must flow through every downstream call that
// can carry it. The serving path depends on this end to end — a request
// deadline reaches the simulator's sampling loop only if no link in the
// chain drops it (the class of bug fixed in sim.RunContext during the
// serving PR, which this analyzer would have caught pre-review).
//
// Inside any function with a context.Context parameter it flags:
//
//   - context.Background() / context.TODO(): minting a fresh root detaches
//     the callee from the caller's deadline and cancellation;
//   - a nil literal passed as a context argument;
//   - calling X when the same package or receiver offers XContext/XCtx
//     accepting a context — the context-free variant silently drops ctx.
//
// The delegation idiom is exempt: XContext calling X on the same receiver
// is the wrapper's implementation, not a dropped context. Intentional
// detachment (a drain context that must outlive the request) is annotated
// //depburst:allow ctxflow with its reason.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "a function holding a context must pass it to every context-capable callee",
	Run:  runCtxFlow,
}

// ctxSuffixes are the conventional names for the context-accepting variant
// of a function.
var ctxSuffixes = [...]string{"Context", "Ctx"}

func runCtxFlow(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !funcHasCtxParam(p.Pkg.Info, fd) {
				continue
			}
			checkCtxFunc(p, fd)
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// funcHasCtxParam reports whether fd declares a context.Context parameter.
func funcHasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if t := info.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

func checkCtxFunc(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A nested closure is its own scope; if it takes a ctx param it
			// is vetted as part of this walk anyway, and if it captures the
			// outer ctx the calls inside still resolve below.
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil {
			return true
		}
		if isPkgFunc(fn, "context") && (fn.Name() == "Background" || fn.Name() == "TODO") {
			p.Reportf(call.Pos(), "thread the function's ctx parameter through instead",
				"context.%s detaches the call tree from the caller's deadline and cancellation", fn.Name())
			return true
		}
		checkNilCtxArg(p, info, call, fn)
		checkDroppedCtx(p, fd, call, fn)
		return true
	})
}

// checkNilCtxArg flags passing a nil literal where the callee expects a
// context.
func checkNilCtxArg(p *Pass, info *types.Info, call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if i >= params.Len() || !isContextType(params.At(i).Type()) {
			continue
		}
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && id.Name == "nil" && info.Uses[id] == types.Universe.Lookup("nil") {
			p.Reportf(arg.Pos(), "pass the function's ctx parameter",
				"nil context passed to %s", funcDisplayName(fn))
		}
	}
}

// checkDroppedCtx flags calling X from a ctx-holding function when a
// context-accepting sibling XContext/XCtx exists.
func checkDroppedCtx(p *Pass, caller *ast.FuncDecl, call *ast.CallExpr, fn *types.Func) {
	if acceptsContext(fn) {
		return
	}
	for _, suffix := range ctxSuffixes {
		if caller.Name.Name == fn.Name()+suffix {
			return // the wrapper's own delegation to its context-free core
		}
	}
	sibling := ctxSibling(fn)
	if sibling == nil {
		return
	}
	p.Reportf(call.Pos(), "call "+sibling.Name()+" with the function's ctx",
		"call to %s drops ctx; %s accepts one", funcDisplayName(fn), sibling.Name())
}

// acceptsContext reports whether fn takes a context.Context parameter.
func acceptsContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// ctxSibling looks for the context-accepting variant of fn: a method on the
// same receiver or a function in the same package named fn+Context/Ctx.
func ctxSibling(fn *types.Func) *types.Func {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	for _, suffix := range ctxSuffixes {
		name := fn.Name() + suffix
		// Trailing "Context" on an already-suffixed name never matches a
		// real sibling; skip the obvious self case.
		if strings.HasSuffix(fn.Name(), suffix) {
			continue
		}
		var obj types.Object
		if recv := sig.Recv(); recv != nil {
			obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name)
		} else {
			obj = fn.Pkg().Scope().Lookup(name)
		}
		if sib, ok := obj.(*types.Func); ok && acceptsContext(sib) {
			return sib
		}
	}
	return nil
}
