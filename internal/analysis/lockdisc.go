package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDisc enforces the repo's lock discipline at lint time. Struct fields
// annotated
//
//	//depburst:guardedby <mu>
//
// (where <mu> names a sibling sync.Mutex / sync.RWMutex field, or "Mutex" /
// "RWMutex" for an embedded one) may only be read or written while the named
// mutex is held: a Lock/RLock call on the same base expression lexically
// dominates the access in the enclosing statement list, with defer-Unlock
// recognised as keeping the lock to function end. Helper methods the caller
// invokes with the lock already held are annotated
//
//	//depburst:locked <mu>
//
// and analyzed as if the receiver's mutex were held on entry. Writes made
// while only an RLock is held are flagged separately — an RWMutex read lock
// does not license mutation.
//
// The analysis is lexical, mirroring nilreg's nil-check tracking: lock state
// is followed through the statement list in source order, branch-local
// lock/unlock pairs are assumed balanced or terminal (a branch that unlocks
// and returns does not release the fall-through path), and closures and go
// statements start with no locks held. Accesses through a local variable
// freshly allocated in the same function (`s := &Server{...}`) are exempt:
// the value has not escaped yet, so construction needs no lock.
var LockDisc = &Analyzer{
	Name: "lockdisc",
	Doc:  "//depburst:guardedby fields must only be accessed under their mutex",
	Run:  runLockDisc,
}

// lockState is how a mutex is currently held on the lexical path.
type lockState uint8

const (
	lockNone lockState = iota
	lockRead
	lockWrite
)

// guardedField records one //depburst:guardedby annotation: the field object
// and the name of the sibling mutex that guards it.
type guardedField struct {
	mu string
}

// collectGuarded indexes every annotated struct field in the package and
// validates that the named mutex exists as a sibling field of a sync mutex
// type. Invalid annotations are reported immediately: a guard that cannot be
// checked is worse than none.
func collectGuarded(p *Pass) map[*types.Var]guardedField {
	out := make(map[*types.Var]guardedField)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				mu, ok := guardedByName(field)
				if !ok {
					continue
				}
				if !structHasMutex(p.Pkg.Info, st, mu) {
					p.Reportf(field.Pos(), "name a sibling sync.Mutex/RWMutex field (or \"Mutex\" for an embedded one)",
						"//depburst:guardedby names %q, which is not a mutex field of this struct", mu)
					continue
				}
				for _, name := range field.Names {
					if obj, ok := p.Pkg.Info.Defs[name].(*types.Var); ok {
						out[obj] = guardedField{mu: mu}
					}
				}
			}
			return true
		})
	}
	return out
}

// guardedByName extracts the mutex name from a field's //depburst:guardedby
// directive (doc comment or trailing line comment).
func guardedByName(field *ast.Field) (string, bool) {
	for _, grp := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if grp == nil {
			continue
		}
		for _, c := range grp.List {
			if rest, ok := strings.CutPrefix(c.Text, directiveGuardedBy); ok {
				fields := strings.Fields(rest)
				if len(fields) >= 1 {
					return fields[0], true
				}
			}
		}
	}
	return "", false
}

// structHasMutex reports whether the struct type syntax declares a field
// named mu (or embeds a mutex whose type name is mu) of a sync mutex type.
func structHasMutex(info *types.Info, st *ast.StructType, mu string) bool {
	for _, field := range st.Fields.List {
		t := info.TypeOf(field.Type)
		if t == nil || !isSyncMutexType(t) {
			continue
		}
		if len(field.Names) == 0 {
			// Embedded: the implicit name is the type name.
			if named, ok := t.(*types.Named); ok && named.Obj().Name() == mu {
				return true
			}
			continue
		}
		for _, name := range field.Names {
			if name.Name == mu {
				return true
			}
		}
	}
	return false
}

// isSyncMutexType matches sync.Mutex and sync.RWMutex.
func isSyncMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockCall classifies a call expression as a mutex operation, returning the
// canonical key of the mutex it operates on ("s.mu", "s.flights.Mutex") and
// the operation. ok is false for anything that is not a sync mutex method.
func lockCall(info *types.Info, call *ast.CallExpr) (key string, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	selection, isSel := info.Selections[sel]
	if !isSel {
		return "", "", false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	base := exprKey(sel.X)
	if base == "" {
		return "", "", false
	}
	// A promoted method call (s.flights.Lock() with an embedded Mutex)
	// resolves through field embeddings; append the embedded field names so
	// the key matches the //depburst:guardedby spelling.
	recvT := selection.Recv()
	index := selection.Index()
	for _, fi := range index[:len(index)-1] {
		st, isStruct := recvT.Underlying().(*types.Struct)
		if !isStruct {
			if ptr, isPtr := recvT.Underlying().(*types.Pointer); isPtr {
				st, isStruct = ptr.Elem().Underlying().(*types.Struct)
			}
			if !isStruct {
				return "", "", false
			}
		}
		f := st.Field(fi)
		base += "." + f.Name()
		recvT = f.Type()
	}
	return base, sel.Sel.Name, true
}

// guardedAccess is one use of a guarded field found during the walk.
type guardedAccess struct {
	sel   *ast.SelectorExpr // x.f
	field *types.Var
	write bool
	// need is the canonical key of the mutex that must be held.
	need string
}

func runLockDisc(p *Pass) {
	guarded := collectGuarded(p)
	if len(guarded) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := make(map[string]lockState)
			for _, mu := range lockedDirectives(fd) {
				if key := recvLockKey(p.Pkg.Info, fd, mu); key != "" {
					held[key] = lockWrite
				}
			}
			w := &lockWalker{p: p, guarded: guarded, fresh: freshLocals(p.Pkg.Info, fd.Body)}
			w.walkBlock(fd.Body.List, held)
		}
	}
}

// lockedDirectives returns the mutex names a //depburst:locked annotation
// asserts the caller holds.
func lockedDirectives(fd *ast.FuncDecl) []string {
	if fd.Doc == nil {
		return nil
	}
	var out []string
	for _, c := range fd.Doc.List {
		if rest, ok := strings.CutPrefix(c.Text, directiveLocked); ok {
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				out = append(out, fields[0])
			}
		}
	}
	return out
}

// recvLockKey maps a //depburst:locked mutex name onto the canonical key for
// this method's receiver ("m" + "." + "mu" -> "m.mu").
func recvLockKey(info *types.Info, fd *ast.FuncDecl, mu string) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name + "." + mu
}

// freshLocals collects local variables bound to freshly-allocated values
// (`x := T{...}`, `x := &T{...}`, `x := new(T)`): accesses through them are
// pre-publication initialization and need no lock.
func freshLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				continue
			}
			switch rhs := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.CompositeLit:
				fresh[obj] = true
			case *ast.UnaryExpr:
				if rhs.Op == token.AND {
					if _, isLit := rhs.X.(*ast.CompositeLit); isLit {
						fresh[obj] = true
					}
				}
			case *ast.CallExpr:
				if isBuiltin(info, rhs, "new") {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

// lockWalker carries one function's lexical lock analysis.
type lockWalker struct {
	p       *Pass
	guarded map[*types.Var]guardedField
	fresh   map[types.Object]bool
}

// walkBlock processes a statement list in source order, threading the held
// set through it. Compound statements recurse with a copy: branch-local
// effects are assumed balanced or terminal.
func (w *lockWalker) walkBlock(stmts []ast.Stmt, held map[string]lockState) {
	for _, stmt := range stmts {
		w.walkStmt(stmt, held)
	}
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, held map[string]lockState) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, op, ok := lockCall(w.p.Pkg.Info, call); ok {
				switch op {
				case "Lock":
					held[key] = lockWrite
				case "RLock":
					if held[key] == lockNone {
						held[key] = lockRead
					}
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return
			}
		}
		w.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end; a deferred
		// closure runs after the body, so it is analyzed lock-free.
		if _, _, ok := lockCall(w.p.Pkg.Info, s.Call); ok {
			return
		}
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.walkBlock(fl.Body.List, make(map[string]lockState))
			for _, arg := range s.Call.Args {
				w.checkExpr(arg, held)
			}
			return
		}
		w.checkExpr(s.Call, held)
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the spawner's locks.
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.walkBlock(fl.Body.List, make(map[string]lockState))
			for _, arg := range s.Call.Args {
				w.checkExpr(arg, held)
			}
			return
		}
		w.checkExpr(s.Call, held)
	case *ast.BlockStmt:
		w.walkBlock(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		w.walkBlock(s.Body.List, cloneHeld(held))
		if s.Else != nil {
			w.walkStmt(s.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, held)
		}
		inner := cloneHeld(held)
		if s.Post != nil {
			w.walkStmt(s.Post, inner)
		}
		w.walkBlock(s.Body.List, inner)
	case *ast.RangeStmt:
		w.checkExpr(s.X, held)
		w.walkBlock(s.Body.List, cloneHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			inner := cloneHeld(held)
			for _, e := range cc.List {
				w.checkExpr(e, inner)
			}
			w.walkBlock(cc.Body, inner)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.walkStmt(s.Assign, held)
		for _, c := range s.Body.List {
			w.walkBlock(c.(*ast.CaseClause).Body, cloneHeld(held))
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			inner := cloneHeld(held)
			if cc.Comm != nil {
				w.walkStmt(cc.Comm, inner)
			}
			w.walkBlock(cc.Body, inner)
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	default:
		if stmt != nil {
			w.checkNode(stmt, held)
		}
	}
}

func cloneHeld(held map[string]lockState) map[string]lockState {
	out := make(map[string]lockState, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// checkExpr checks every guarded-field access in an expression against the
// current held set. Nested func literals start lock-free.
func (w *lockWalker) checkExpr(e ast.Expr, held map[string]lockState) {
	if e == nil {
		return
	}
	w.checkNode(e, held)
}

// checkNode inspects a subtree for guarded accesses. Nested func literals
// passed directly as call arguments (sort.Search/sort.Slice comparators and
// the like) run synchronously inside the call, so they inherit the held
// set; every other literal — assigned, returned, stored — may run after the
// lock is released and starts lock-free.
func (w *lockWalker) checkNode(n ast.Node, held map[string]lockState) {
	var stack []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch c := c.(type) {
		case *ast.FuncLit:
			inner := make(map[string]lockState)
			if callArgLit(stack, c) {
				inner = cloneHeld(held)
			}
			w.walkBlock(c.Body.List, inner)
			return false // children handled; Inspect skips the closing nil
		case *ast.SelectorExpr:
			if acc, ok := w.accessOf(c); ok {
				w.report(acc, held)
			}
		}
		stack = append(stack, c)
		return true
	})
}

// callArgLit reports whether the func literal sits directly in a call's
// argument list (or is itself immediately invoked), given the ancestor
// stack of the enclosing expression walk.
func callArgLit(stack []ast.Node, lit *ast.FuncLit) bool {
	i := len(stack) - 1
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	call, ok := stack[i].(*ast.CallExpr)
	if !ok {
		return false
	}
	if ast.Unparen(call.Fun) == lit {
		return true
	}
	for _, arg := range call.Args {
		if ast.Unparen(arg) == lit {
			return true
		}
	}
	return false
}

// accessOf resolves a selector to a guarded-field access, classifying it as
// read or write from its syntactic context.
func (w *lockWalker) accessOf(sel *ast.SelectorExpr) (guardedAccess, bool) {
	obj, ok := w.p.Pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok {
		return guardedAccess{}, false
	}
	g, ok := w.guarded[obj]
	if !ok {
		return guardedAccess{}, false
	}
	base := exprKey(sel.X)
	if base == "" {
		return guardedAccess{}, false
	}
	if w.fresh[rootObject(w.p.Pkg.Info, sel.X)] {
		return guardedAccess{}, false
	}
	return guardedAccess{
		sel:   sel,
		field: obj,
		need:  base + "." + g.mu,
	}, true
}

// rootObject resolves the leftmost identifier of a selector chain.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// report files the diagnostic for an access made without the required lock.
func (w *lockWalker) report(acc guardedAccess, held map[string]lockState) {
	write := w.isWrite(acc.sel)
	switch held[acc.need] {
	case lockWrite:
		return
	case lockRead:
		if !write {
			return
		}
		w.p.Reportf(acc.sel.Pos(), "upgrade to "+acc.need+".Lock() — an RLock does not license writes",
			"write to %s guarded by %s under RLock only", acc.field.Name(), acc.need)
		return
	}
	verb := "read of"
	if write {
		verb = "write to"
	}
	w.p.Reportf(acc.sel.Pos(), "hold "+acc.need+".Lock() (or annotate the helper //depburst:locked "+muNameOf(acc.need)+")",
		"%s %s guarded by %s without holding the lock", verb, acc.field.Name(), acc.need)
}

// muNameOf extracts the mutex field name from a canonical key.
func muNameOf(key string) string {
	if i := strings.LastIndex(key, "."); i >= 0 {
		return key[i+1:]
	}
	return key
}

// isWrite classifies the selector's use: assignment target, inc/dec operand,
// or address-taken (a pointer escape licenses arbitrary mutation).
func (w *lockWalker) isWrite(sel *ast.SelectorExpr) bool {
	parent := w.parentOf(sel)
	switch p := parent.(type) {
	case *ast.CallExpr:
		return isBuiltin(w.p.Pkg.Info, p, "delete") && len(p.Args) > 0 && ast.Unparen(p.Args[0]) == sel
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == sel {
				return true
			}
		}
	case *ast.IncDecStmt:
		return ast.Unparen(p.X) == sel
	case *ast.UnaryExpr:
		return p.Op == token.AND && ast.Unparen(p.X) == sel
	case *ast.IndexExpr:
		// s.m[k] = v / s.m[k]++ : indexing is a write when the index
		// expression itself is the assignment target.
		if ast.Unparen(p.X) == sel {
			return w.indexWritten(p)
		}
	}
	return false
}

// indexWritten reports whether an index expression over the guarded field is
// itself assigned (map/slice element write) or deleted from.
func (w *lockWalker) indexWritten(idx *ast.IndexExpr) bool {
	switch p := w.parentOf(idx).(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == idx {
				return true
			}
		}
	case *ast.IncDecStmt:
		return ast.Unparen(p.X) == idx
	case *ast.UnaryExpr:
		return p.Op == token.AND && ast.Unparen(p.X) == idx
	}
	return false
}

// parentOf finds the immediate parent node of target within the package
// syntax. Parent lookups are rare (only on guarded accesses), so a targeted
// walk is cheap enough.
func (w *lockWalker) parentOf(target ast.Node) ast.Node {
	var parent ast.Node
	for _, f := range w.p.Pkg.Files {
		if target.Pos() < f.Pos() || target.Pos() > f.End() {
			continue
		}
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if parent != nil {
				return false
			}
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if n == target && len(stack) > 0 {
				for i := len(stack) - 1; i >= 0; i-- {
					if _, ok := stack[i].(*ast.ParenExpr); ok {
						continue
					}
					parent = stack[i]
					break
				}
				return false
			}
			stack = append(stack, n)
			return true
		})
		if parent != nil {
			break
		}
	}
	return parent
}

// Also checked by lockdisc: calls to functions annotated //depburst:locked
// are trusted, not verified — the annotation documents a caller contract the
// reviewer checks, exactly like //depburst:niltolerant.
