package analysis

import (
	"go/types"
	"strings"
	"testing"
)

func fixLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(fixRoot)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLoaderModulePath(t *testing.T) {
	l := fixLoader(t)
	if l.Module != "fix" {
		t.Errorf("module = %q, want fix", l.Module)
	}
	if _, err := NewLoader("testdata"); err == nil {
		t.Error("expected error for a directory without go.mod")
	}
}

func TestMatchPatterns(t *testing.T) {
	l := fixLoader(t)

	all, err := l.Match("./...")
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range all {
		paths = append(paths, p.Path)
	}
	want := []string{"fix/atomiccheck", "fix/chanproto", "fix/clean", "fix/ctxflow", "fix/determinism", "fix/goldenio", "fix/golife", "fix/hotpath", "fix/lockdisc", "fix/nilreg/metrics", "fix/nilreg/user"}
	if strings.Join(paths, ",") != strings.Join(want, ",") {
		t.Errorf("Match(./...) = %v, want %v", paths, want)
	}

	// Single directory, recursive subtree, and import-path forms.
	one, err := l.Match("./clean")
	if err != nil || len(one) != 1 || one[0].Path != "fix/clean" {
		t.Errorf("Match(./clean) = %v, %v", one, err)
	}
	sub, err := l.Match("./nilreg/...")
	if err != nil || len(sub) != 2 {
		t.Errorf("Match(./nilreg/...) = %v, %v", sub, err)
	}
	byPath, err := l.Match("fix/clean")
	if err != nil || len(byPath) != 1 || byPath[0].Path != "fix/clean" {
		t.Errorf("Match(fix/clean) = %v, %v", byPath, err)
	}

	// Duplicate patterns collapse.
	dup, err := l.Match("./clean", "./clean", "fix/clean")
	if err != nil || len(dup) != 1 {
		t.Errorf("duplicate patterns must dedup, got %v, %v", dup, err)
	}

	if _, err := l.Match("./no-such-dir"); err == nil {
		t.Error("expected error for an unmatched single-package pattern")
	}
	if _, err := l.Match("./no-such-dir/..."); err == nil {
		t.Error("expected error for an unmatched recursive pattern")
	}
}

func TestLoadCachesAndIndexes(t *testing.T) {
	l := fixLoader(t)
	p1, err := l.Load("fix/hotpath")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := l.Load("fix/hotpath")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("Load must cache packages")
	}
	if l.Package("fix/hotpath") != p1 {
		t.Error("Package must return the cached load")
	}
	if l.Package("fix/never-loaded") != nil {
		t.Error("Package must return nil for unloaded paths")
	}
	if len(p1.Hot) == 0 {
		t.Error("hotpath fixture must have hot roots indexed")
	}
	if len(p1.Funcs) == 0 {
		t.Error("Funcs index must be populated")
	}

	// FuncDecl resolves module functions and rejects stdlib ones.
	for fn, fd := range p1.Funcs {
		pkg, decl := l.FuncDecl(fn)
		if pkg != p1 || decl != fd {
			t.Errorf("FuncDecl(%s) did not round-trip", fn.Name())
		}
		break
	}
	if _, decl := l.FuncDecl(nil); decl != nil {
		t.Error("FuncDecl(nil) must be nil")
	}
}

func TestAllowIndex(t *testing.T) {
	l := fixLoader(t)
	if _, err := l.Load("fix/determinism"); err != nil {
		t.Fatal(err)
	}
	// The fixture carries exactly one determinism allow (Telemetry).
	found := false
	for file, lines := range l.allow {
		for line, names := range lines {
			for _, n := range names {
				if n == "determinism" {
					found = true
					if !l.allowed(file, line, "determinism") {
						t.Error("allowed() must report the indexed line")
					}
					if l.allowed(file, line, "hotpath") {
						t.Error("allow is per-analyzer")
					}
				}
			}
		}
	}
	if !found {
		t.Error("expected a determinism allow in the fixture")
	}
	if l.allowed("nope.go", 1, "determinism") {
		t.Error("unknown file must not be allowed")
	}
}

func TestDiagnosticPos(t *testing.T) {
	d := Diagnostic{File: "a/b.go", Line: 3, Col: 7}
	if d.Pos() != "a/b.go:3:7" {
		t.Errorf("Pos = %q", d.Pos())
	}
}

func TestReportfRespectsAllow(t *testing.T) {
	l := fixLoader(t)
	pkg, err := l.Load("fix/determinism")
	if err != nil {
		t.Fatal(err)
	}
	var sink []Diagnostic
	pass := &Pass{An: Determinism, L: l, Pkg: pkg, sink: &sink}
	pos := pkg.Files[0].Pos()
	pass.Reportf(pos, "", "plain finding at %s", "top")
	if len(sink) != 1 {
		t.Fatalf("Reportf must append, got %d", len(sink))
	}
	if sink[0].File != "determinism/determinism.go" || sink[0].Line == 0 {
		t.Errorf("position not resolved: %+v", sink[0])
	}
}

func TestRunPackagesSortsAndDedups(t *testing.T) {
	l := fixLoader(t)
	pkg, err := l.Load("fix/goldenio")
	if err != nil {
		t.Fatal(err)
	}
	// Running the same analyzer twice over one package duplicates every
	// finding; RunPackages must collapse them and keep sorted order.
	diags := RunPackages(l, []*Package{pkg}, []*Analyzer{GoldenIO, GoldenIO})
	seen := make(map[string]bool)
	prev := Diagnostic{}
	for i, d := range diags {
		key := d.Pos() + d.Message
		if seen[key] {
			t.Errorf("duplicate diagnostic survived: %s", key)
		}
		seen[key] = true
		if i > 0 && (d.File < prev.File || (d.File == prev.File && d.Line < prev.Line)) {
			t.Errorf("diagnostics out of order at %d: %+v after %+v", i, d, prev)
		}
		prev = d
	}
	if len(diags) == 0 {
		t.Fatal("expected findings")
	}
}

func TestHasDirective(t *testing.T) {
	l := fixLoader(t)
	pkg, err := l.Load("fix/hotpath")
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for _, fd := range pkg.Hot {
		if !hasDirective(fd.Doc, directiveHotPath) {
			t.Errorf("%s indexed as hot without the directive", fd.Name.Name)
		}
		hot++
	}
	if hot == 0 {
		t.Fatal("no hot roots in fixture")
	}
	if hasDirective(nil, directiveHotPath) {
		t.Error("nil doc must not carry directives")
	}
}

func TestRelPath(t *testing.T) {
	l := fixLoader(t)
	if got := l.rel("/absolutely/elsewhere/x.go"); got != "/absolutely/elsewhere/x.go" {
		t.Errorf("paths outside the module must pass through, got %q", got)
	}
}

func TestRootPackageMapping(t *testing.T) {
	l := fixLoader(t)
	// The module path itself maps to the module root in both directions,
	// even though the fixture keeps all its packages in subdirectories.
	if got := l.dirFor(l.Module); got != l.Root {
		t.Errorf("dirFor(module) = %q, want %q", got, l.Root)
	}
	if got := l.pathFor(l.Root); got != l.Module {
		t.Errorf("pathFor(root) = %q, want %q", got, l.Module)
	}
	if got := l.dirFor(l.Module + "/clean"); !strings.HasSuffix(got, "clean") {
		t.Errorf("dirFor(module/clean) = %q", got)
	}
}

func TestImportStdlibAndUnsafe(t *testing.T) {
	l := fixLoader(t)
	up, err := l.Import("unsafe")
	if err != nil || up == nil || up.Path() != "unsafe" {
		t.Errorf("unsafe import: %v, %v", up, err)
	}
	sp, err := l.Import("sort")
	if err != nil || sp == nil {
		t.Errorf("stdlib import: %v, %v", sp, err)
	}
	// Stdlib functions have no module declaration to resolve to.
	if fn, ok := sp.Scope().Lookup("Strings").(*types.Func); ok {
		if pkg, decl := l.FuncDecl(fn); pkg != nil || decl != nil {
			t.Error("FuncDecl must be nil for stdlib functions")
		}
	} else {
		t.Error("sort.Strings did not resolve to a *types.Func")
	}
	if _, err := l.Load("fix/does-not-exist"); err == nil {
		t.Error("loading a missing package must fail")
	}
}
