package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// ChanProto checks the send/receive/close protocol of function-local
// channels. It only analyzes channels whose every use is visible inside the
// declaring function (including its closures and go statements); a channel
// that escapes — returned, stored in a field, passed to another function —
// is skipped rather than guessed at.
//
// Checked, per local channel:
//
//   - sends with no receive anywhere in the function: the send blocks
//     forever (unbuffered) or the values are never consumed (buffered);
//   - close on the receiving side: a scope that receives from the channel
//     must not also close it while another scope sends — only the sender
//     knows when the stream ends;
//   - double-close reachability: two close calls not separated by mutually
//     exclusive branches, or a close inside a loop, panics on the second
//     execution;
//   - sends on a buffered channel inside an unbounded `for {}` loop with no
//     receive in the same loop: once the buffer fills, every iteration
//     blocks and queued work grows without bound up to the cap.
var ChanProto = &Analyzer{
	Name: "chanproto",
	Doc:  "function-local channels must have a matching receive path, sender-side close, and no reachable double-close",
	Run:  runChanProto,
}

const (
	chanSend = iota
	chanRecv
	chanClose
)

// chanUse is one syntactic use of a tracked channel.
type chanUse struct {
	kind  int
	pos   token.Pos
	scope *ast.FuncLit // innermost closure containing the use; nil = the declaring function body
	path  []ast.Node   // ancestors from the function body down to the use
}

// chanInfo aggregates all uses of one local channel.
type chanInfo struct {
	name     string
	buffered bool
	declPos  token.Pos
	uses     []chanUse
	escaped  bool
}

func runChanProto(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkChannels(p, fd.Body)
		}
	}
}

func checkChannels(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	chans := collectLocalChans(p, body)
	if len(chans) == 0 {
		return
	}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, _ := info.Uses[id].(*types.Var)
		ci := chans[v]
		if ci == nil {
			return true
		}
		use := classifyChanUse(info, stack, id)
		use.path = append([]ast.Node(nil), stack...)
		use.scope = innermostFuncLit(stack)
		ci.uses = append(ci.uses, use)
		return true
	})
	for _, v := range sortedChanVars(chans) {
		reportChan(p, chans[v])
	}
}

// collectLocalChans finds `ch := make(chan T[, n])` declarations in body.
func collectLocalChans(p *Pass, body *ast.BlockStmt) map[*types.Var]*chanInfo {
	info := p.Pkg.Info
	out := make(map[*types.Var]*chanInfo)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Defs[id].(*types.Var)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "make") || len(call.Args) == 0 {
			return true
		}
		if _, ok := info.TypeOf(as.Rhs[0]).Underlying().(*types.Chan); !ok {
			return true
		}
		ci := &chanInfo{name: id.Name, declPos: id.Pos()}
		if len(call.Args) >= 2 {
			ci.buffered = true
			if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil {
				if c, exact := constant.Int64Val(tv.Value); exact && c == 0 {
					ci.buffered = false
				}
			}
		}
		out[v] = ci
		return true
	})
	return out
}

// classifyChanUse decides what one identifier occurrence does to the channel
// from its immediate parent node. Anything that is not a send, receive,
// close, or len/cap marks the channel as escaped.
func classifyChanUse(info *types.Info, stack []ast.Node, id *ast.Ident) chanUse {
	use := chanUse{kind: -1, pos: id.Pos()}
	if len(stack) < 2 {
		return use
	}
	parent := stack[len(stack)-2]
	if _, ok := parent.(*ast.ParenExpr); ok && len(stack) >= 3 {
		parent = stack[len(stack)-3]
	}
	switch pn := parent.(type) {
	case *ast.SendStmt:
		if ast.Unparen(pn.Chan) == id {
			use.kind = chanSend
			return use
		}
	case *ast.UnaryExpr:
		if pn.Op == token.ARROW && ast.Unparen(pn.X) == id {
			use.kind = chanRecv
			return use
		}
	case *ast.RangeStmt:
		if ast.Unparen(pn.X) == id {
			use.kind = chanRecv
			return use
		}
	case *ast.CallExpr:
		if isBuiltin(info, pn, "close") && len(pn.Args) == 1 && ast.Unparen(pn.Args[0]) == id {
			use.kind = chanClose
			return use
		}
		if isBuiltin(info, pn, "len") || isBuiltin(info, pn, "cap") {
			use.kind = -2 // neutral
			return use
		}
	}
	return use // kind -1 = escape
}

// innermostFuncLit returns the closest enclosing closure, or nil if the use
// sits directly in the declaring function's body.
func innermostFuncLit(stack []ast.Node) *ast.FuncLit {
	for i := len(stack) - 1; i >= 0; i-- {
		if fl, ok := stack[i].(*ast.FuncLit); ok {
			return fl
		}
	}
	return nil
}

// sortedChanVars orders channels by declaration position so diagnostics are
// emitted deterministically regardless of map iteration order.
func sortedChanVars(chans map[*types.Var]*chanInfo) []*types.Var {
	vars := make([]*types.Var, 0, len(chans))
	for v := range chans {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return chans[vars[i]].declPos < chans[vars[j]].declPos })
	return vars
}

func reportChan(p *Pass, ci *chanInfo) {
	var sends, recvs, closes []chanUse
	for _, u := range ci.uses {
		switch u.kind {
		case chanSend:
			sends = append(sends, u)
		case chanRecv:
			recvs = append(recvs, u)
		case chanClose:
			closes = append(closes, u)
		case -2: // len/cap: neutral
		default:
			ci.escaped = true
		}
	}
	if ci.escaped {
		return
	}
	if len(sends) > 0 && len(recvs) == 0 {
		p.Reportf(sends[0].pos, "add a receive (<-"+ci.name+", range, or select case), or let the channel escape to its consumer",
			"send on %s but no receive path in this function", ci.name)
	}
	checkCloseSide(p, ci, sends, recvs, closes)
	checkDoubleClose(p, ci, closes)
	checkBufferedLoopSends(p, ci, sends, recvs)
}

// checkCloseSide flags a close executed in a scope that receives from the
// channel while a different scope sends on it: only the sending side can
// know no more sends are coming.
func checkCloseSide(p *Pass, ci *chanInfo, sends, recvs, closes []chanUse) {
	for _, c := range closes {
		receivesHere := false
		for _, r := range recvs {
			if r.scope == c.scope {
				receivesHere = true
				break
			}
		}
		if !receivesHere {
			continue
		}
		for _, s := range sends {
			if s.scope != c.scope {
				p.Reportf(c.pos, "move close("+ci.name+") to the sending goroutine (or a dedicated closer after joining the senders)",
					"close of %s on its receiving side while another goroutine sends", ci.name)
				break
			}
		}
	}
}

// checkDoubleClose flags close calls that can both execute: two closes not
// separated by mutually exclusive branches, or one close inside a loop whose
// body does not terminate right after it.
func checkDoubleClose(p *Pass, ci *chanInfo, closes []chanUse) {
	for _, c := range closes {
		if closeInLoop(c) {
			p.Reportf(c.pos, "close "+ci.name+" once, after the loop",
				"close of %s inside a loop closes it twice", ci.name)
			return
		}
	}
	for i := 0; i < len(closes); i++ {
		for j := i + 1; j < len(closes); j++ {
			if !exclusivePaths(closes[i].path, closes[j].path) {
				p.Reportf(closes[j].pos, "guard the second close or consolidate to one owner",
					"second close of %s is reachable after the close at line %d", ci.name, p.L.Fset.Position(closes[i].pos).Line)
				return
			}
		}
	}
}

// closeInLoop reports whether a close executes per loop iteration: a
// For/Range ancestor with no intervening closure boundary, unless the
// statement list holding the close ends in return or break (the
// `case <-done: close(ch); return` idiom closes once).
func closeInLoop(c chanUse) bool {
	loopIdx := -1
	for i, n := range c.path {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopIdx = i
		case *ast.FuncLit:
			loopIdx = -1 // a closure resets the iteration context for the close itself
		}
	}
	if loopIdx == -1 {
		return false
	}
	// Terminal statement lists after the close mean one execution at most.
	for i := len(c.path) - 1; i > loopIdx; i-- {
		var list []ast.Stmt
		switch n := c.path[i].(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			continue
		}
		if len(list) == 0 {
			return true
		}
		switch last := list[len(list)-1].(type) {
		case *ast.ReturnStmt:
			return false
		case *ast.BranchStmt:
			if last.Tok == token.BREAK || last.Tok == token.GOTO {
				return false
			}
		}
		return true
	}
	return true
}

// exclusivePaths reports whether two ancestor paths diverge into mutually
// exclusive branches (then/else of one if, different cases of one switch or
// select), so at most one of the two uses executes per pass.
func exclusivePaths(a, b []ast.Node) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			continue
		}
		// First divergence. Exclusive iff the siblings are distinct
		// branches of the shared parent.
		if i == 0 {
			return false
		}
		switch parent := a[i-1].(type) {
		case *ast.IfStmt:
			ab, bb := a[i], b[i]
			return (ab == parent.Body && bb == parent.Else) || (ab == parent.Else && bb == parent.Body)
		case *ast.BlockStmt:
			_, aCase := a[i].(*ast.CaseClause)
			_, bCase := b[i].(*ast.CaseClause)
			if aCase && bCase {
				return true
			}
			_, aComm := a[i].(*ast.CommClause)
			_, bComm := b[i].(*ast.CommClause)
			return aComm && bComm
		}
		return false
	}
	return false
}

// checkBufferedLoopSends flags sends on a buffered channel inside an
// unbounded `for {}` loop with no receive in the same loop body.
func checkBufferedLoopSends(p *Pass, ci *chanInfo, sends, recvs []chanUse) {
	if !ci.buffered {
		return
	}
	for _, s := range sends {
		var loop *ast.ForStmt
		for _, n := range s.path {
			if f, ok := n.(*ast.ForStmt); ok && f.Cond == nil {
				loop = f
			}
		}
		if loop == nil {
			continue
		}
		drained := false
		for _, r := range recvs {
			for _, n := range r.path {
				if n == loop {
					drained = true
					break
				}
			}
		}
		if !drained {
			p.Reportf(s.pos, "receive from "+ci.name+" inside the loop or bound the loop",
				"send on buffered %s in an unbounded loop with no receive; the buffer fills and every later iteration blocks", ci.name)
			return
		}
	}
}
