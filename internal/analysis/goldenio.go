package analysis

import (
	"go/ast"
	"go/types"
)

// GoldenIO polices the repo's export surfaces: golden files, BENCH records
// and server documents are diffed byte-for-byte by the determinism walls, so
// their encoded shape must be an explicitly ordered structure. Marshalling a
// map delegates key ordering to the encoder — encoding/json happens to sort,
// but the contract then lives in the encoder instead of the document, and
// any second encoder (the Prometheus writer, a CSV export, a hand-rolled
// fast path) silently diverges.
//
// The analyzer flags json.Marshal / json.MarshalIndent / (*json.Encoder).
// Encode calls whose argument is a map, or a struct carrying a map-typed
// field (transitively through named struct fields, slices and pointers).
// The fix is the one the metrics package already uses: collect keys, sort,
// and emit a slice of key/value structs.
var GoldenIO = &Analyzer{
	Name: "goldenio",
	Doc:  "exported documents must marshal ordered structures, never maps",
	Run:  runGoldenIO,
}

func runGoldenIO(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeOf(info, call)
			if fn == nil || !isMarshalFunc(fn) {
				return true
			}
			at := info.TypeOf(call.Args[0])
			if at == nil {
				return true
			}
			if path, found := findMapIn(at, nil); found {
				p.Reportf(call.Args[0].Pos(), "collect the keys, sort them, and marshal a slice of key/value structs",
					"%s encodes a map (%s); export bytes must come from explicitly ordered structures", fn.Name(), path)
			}
			return true
		})
	}
}

// isMarshalFunc matches the encoding/json entry points whose output can
// become export bytes.
func isMarshalFunc(fn *types.Func) bool {
	if isPkgFunc(fn, "encoding/json") {
		switch fn.Name() {
		case "Marshal", "MarshalIndent", "Encode":
			return true
		}
	}
	return false
}

// findMapIn walks a type looking for a map, descending through pointers,
// slices, arrays and named struct fields. It returns a human-readable path
// to the first map found. visited guards recursive types.
func findMapIn(t types.Type, visited map[types.Type]bool) (string, bool) {
	if visited[t] {
		return "", false
	}
	if visited == nil {
		visited = make(map[types.Type]bool)
	}
	visited[t] = true

	name := ""
	if n, ok := t.(*types.Named); ok {
		name = n.Obj().Name()
	}
	switch u := t.Underlying().(type) {
	case *types.Map:
		if name != "" {
			return name, true
		}
		return u.String(), true
	case *types.Pointer:
		return findMapIn(u.Elem(), visited)
	case *types.Slice:
		return findMapIn(u.Elem(), visited)
	case *types.Array:
		return findMapIn(u.Elem(), visited)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if path, found := findMapIn(f.Type(), visited); found {
				prefix := name
				if prefix == "" {
					prefix = "struct"
				}
				return prefix + "." + f.Name() + " -> " + path, true
			}
		}
	}
	return "", false
}
