package analysis

import (
	"testing"
)

// TestRepoIsLintClean self-runs the full analyzer suite over this
// repository. The tree is lint-clean by construction: every sanctioned
// exception carries a //depburst:allow annotation with its reason, so any
// new wall-clock read, allocation on a hot path, dropped context,
// unguarded registry use, or map-shaped export fails this test (and the CI
// lint job) immediately.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped under -short")
	}
	diags, err := Run("../..", []string{"./..."}, All())
	if err != nil {
		t.Fatalf("self-run failed: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", d.Pos(), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		t.Errorf("%d diagnostics; fix them or annotate with //depburst:allow <analyzer> <reason>", len(diags))
	}
}

// TestSelfRunCoversAnnotations ensures the self-run actually exercises the
// directive machinery: the repo declares hot roots, and the loader indexed
// allow directives while loading it.
func TestSelfRunCoversAnnotations(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped under -short")
	}
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Match("./...")
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for _, p := range pkgs {
		hot += len(p.Hot)
	}
	if hot < 3 {
		t.Errorf("expected at least 3 //depburst:hotpath roots in the repo, found %d", hot)
	}
	if len(l.allow) == 0 {
		t.Error("expected //depburst:allow annotations to be indexed from the repo")
	}
}
