package analysis

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 output. The structs carry exactly the subset of the schema
// that code-scanning consumers require — rules, results, physical locations
// — and marshal in declaration order, so the report is byte-deterministic
// for a given diagnostic list (which RunPackages already sorts). The keys
// are pinned by TestSARIFSchemaStable.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name    string      `json:"name"`
	Version string      `json:"version"`
	Rules   []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

const sarifSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"

// writeSARIF renders diagnostics as one SARIF run. analyzers is the suite
// that executed (its canonical order becomes the rules array), diags the
// sorted findings. Every diagnostic is level "error": the repo treats lint
// findings as build breaks.
func writeSARIF(out io.Writer, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		msg := d.Message
		if d.Hint != "" {
			msg += " (fix: " + d.Hint + ")"
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "depburst lint", Version: "2", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
