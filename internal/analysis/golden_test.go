package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// fixRoot is the fixture module every analyzer is exercised against.
const fixRoot = "testdata/src/fixmod"

// goldenCases pairs each analyzer with the fixture packages that exercise
// it. Each golden pins exactly which fixture lines fire — a new false
// positive or a lost detection both show up as a golden diff.
var goldenCases = []struct {
	analyzer *Analyzer
	patterns []string
}{
	{Determinism, []string{"./determinism"}},
	{HotPath, []string{"./hotpath"}},
	{CtxFlow, []string{"./ctxflow"}},
	{NilReg, []string{"./nilreg/..."}},
	{GoldenIO, []string{"./goldenio"}},
	{LockDisc, []string{"./lockdisc"}},
	{GoLife, []string{"./golife"}},
	{AtomicCheck, []string{"./atomiccheck"}},
	{ChanProto, []string{"./chanproto"}},
}

// renderDiags formats diagnostics the way the goldens store them.
func renderDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s: [%s] %s\n", d.Pos(), d.Analyzer, d.Message)
		if d.Hint != "" {
			fmt.Fprintf(&b, "\thint: %s\n", d.Hint)
		}
	}
	return b.String()
}

func TestGoldens(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			diags, err := Run(fixRoot, tc.patterns, []*Analyzer{tc.analyzer})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(diags) == 0 {
				t.Fatalf("analyzer %s fired no diagnostics on its fixture", tc.analyzer.Name)
			}
			for _, d := range diags {
				if d.Analyzer != tc.analyzer.Name {
					t.Errorf("diagnostic from %q leaked into the %s run", d.Analyzer, tc.analyzer.Name)
				}
			}
			got := renderDiags(diags)
			golden := filepath.Join("testdata", "golden", tc.analyzer.Name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run `go test ./internal/analysis -run TestGoldens -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s\n--- got ---\n%s--- want ---\n%s", tc.analyzer.Name, got, want)
			}
		})
	}
}

// TestCleanFixture is the suite-wide negative test: the clean fixture leans
// on every sanctioned idiom at once, and no analyzer may fire on it.
func TestCleanFixture(t *testing.T) {
	for _, a := range All() {
		diags, err := Run(fixRoot, []string{"./clean"}, []*Analyzer{a})
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if len(diags) != 0 {
			t.Errorf("%s produced false positives on the clean fixture:\n%s", a.Name, renderDiags(diags))
		}
	}
}

// TestDeterministicOutput runs the full suite twice through independent
// loaders and requires byte-identical reports — the lint output is itself
// an export the repo's determinism invariant applies to.
func TestDeterministicOutput(t *testing.T) {
	run := func() string {
		diags, err := Run(fixRoot, []string{"./..."}, All())
		if err != nil {
			t.Fatal(err)
		}
		return renderDiags(diags)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs diverged:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
	if a == "" {
		t.Error("full-suite fixture run produced no diagnostics")
	}
}
