package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilReg enforces the observability layer's "nil registry is free"
// contract: simulator code is threaded with *metrics.Registry /
// *metrics.ServerRegistry handles and must run identically with metrics
// disabled, so every registry method must be safe on a nil receiver.
//
// In the metrics package itself, every pointer-receiver method on
// Registry/ServerRegistry must be nil-tolerant: it opens with an
// `if r == nil { return }` guard, or every receiver use delegates to an
// already-tolerant method (computed to a fixed point, so WriteJSON
// delegating to the guarded Export needs no annotation), or it carries an
// explicit //depburst:niltolerant assertion.
//
// Everywhere else, a call to a method outside the tolerant set must sit
// under a lexical nil check of the same receiver expression
// (`if reg != nil { ... }` or an earlier `if reg == nil { return }`).
var NilReg = &Analyzer{
	Name: "nilreg",
	Doc:  "metrics registry methods must be nil-tolerant or nil-checked at the call site",
	Run:  runNilReg,
}

// isRegistryTypeName matches the nil-tolerant-by-contract types of the
// metrics package.
func isRegistryTypeName(name string) bool {
	return name == "Registry" || name == "ServerRegistry"
}

// isRegistryType reports whether t (or its pointee) is one of the metrics
// registry types. Matching is by package name, so fixture packages exercise
// the rule too.
func isRegistryType(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "metrics" || !isRegistryTypeName(obj.Name()) {
		return nil, false
	}
	return n, true
}

func runNilReg(p *Pass) {
	if p.Pkg.Types.Name() == "metrics" {
		checkRegistryDecls(p)
		return
	}
	checkRegistryCallSites(p)
}

// regMethod pairs a registry method declaration with its receiver variable
// (nil when the receiver is unnamed).
type regMethod struct {
	fd   *ast.FuncDecl
	recv *types.Var
}

// registryMethods collects every pointer-receiver method declaration on a
// registry type in pkg, in file order (deterministic).
func registryMethods(pkg *Package) []regMethod {
	var out []regMethod
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv()
			if _, ok := recv.Type().(*types.Pointer); !ok {
				continue
			}
			if _, ok := isRegistryType(recv.Type()); !ok {
				continue
			}
			var rv *types.Var
			if names := fd.Recv.List[0].Names; len(names) == 1 {
				rv, _ = pkg.Info.Defs[names[0]].(*types.Var)
			}
			out = append(out, regMethod{fd: fd, recv: rv})
		}
	}
	return out
}

// tolerantSet computes, to a fixed point, which registry methods of a
// metrics package tolerate a nil receiver. Keys are "Type.Method", e.g.
// "Registry.Export".
func tolerantSet(pkg *Package, methods []regMethod) map[string]bool {
	tolerant := make(map[string]bool)
	for {
		changed := false
		for _, m := range methods {
			key := methodKey(pkg, m.fd)
			if tolerant[key] {
				continue
			}
			if methodNilTolerant(pkg, m, tolerant) {
				tolerant[key] = true
				changed = true
			}
		}
		if !changed {
			return tolerant
		}
	}
}

// methodKey names a method declaration as "Type.Method".
func methodKey(pkg *Package, fd *ast.FuncDecl) string {
	fn := pkg.Info.Defs[fd.Name].(*types.Func)
	named, _ := isRegistryType(fn.Type().(*types.Signature).Recv().Type())
	return named.Obj().Name() + "." + fd.Name.Name
}

// methodNilTolerant decides one method against the current tolerant set.
func methodNilTolerant(pkg *Package, m regMethod, tolerant map[string]bool) bool {
	if hasDirective(m.fd.Doc, directiveNilTolerant) {
		return true
	}
	if m.recv == nil {
		return true // unnamed receiver: the body cannot dereference it
	}
	if leadingNilGuard(pkg.Info, m.fd, m.recv) {
		return true
	}
	// No guard: every receiver use must be the receiver of a call to an
	// already-tolerant method. Precompute which idents are covered that way.
	covered := make(map[*ast.Ident]bool)
	ast.Inspect(m.fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pkg.Info.Uses[x] != m.recv {
			return true
		}
		selection, ok := pkg.Info.Selections[sel]
		if !ok {
			return true
		}
		fn, ok := selection.Obj().(*types.Func)
		if !ok {
			return true
		}
		named, ok := isRegistryType(selection.Recv())
		if ok && tolerant[named.Obj().Name()+"."+fn.Name()] {
			covered[x] = true
		}
		return true
	})
	ok := true
	ast.Inspect(m.fd.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		id, isIdent := n.(*ast.Ident)
		if isIdent && pkg.Info.Uses[id] == m.recv && !covered[id] {
			ok = false
		}
		return true
	})
	return ok
}

// leadingNilGuard reports whether a top-level `if recv == nil { return ... }`
// opens the method body before any other receiver use.
func leadingNilGuard(info *types.Info, fd *ast.FuncDecl, recv *types.Var) bool {
	for _, stmt := range fd.Body.List {
		ifs, ok := stmt.(*ast.IfStmt)
		if ok && ifs.Init == nil && isNilCompare(info, ifs.Cond, recv, token.EQL) && endsInReturn(ifs.Body) {
			return true
		}
		// Any earlier statement using the receiver defeats the guard.
		if usesObject(info, stmt, recv) {
			return false
		}
	}
	return false
}

// usesObject reports whether the subtree mentions obj.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// isNilCompare matches `x <op> nil` / `nil <op> x` for the given operator
// with x resolving to obj.
func isNilCompare(info *types.Info, cond ast.Expr, obj types.Object, op token.Token) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != op {
		return false
	}
	matches := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == obj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == types.Universe.Lookup("nil")
	}
	return (matches(b.X) && isNil(b.Y)) || (matches(b.Y) && isNil(b.X))
}

// endsInReturn reports whether a block's final statement returns.
func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

// checkRegistryDecls reports metrics methods that are neither guarded,
// delegating, nor annotated.
func checkRegistryDecls(p *Pass) {
	methods := registryMethods(p.Pkg)
	tolerant := tolerantSet(p.Pkg, methods)
	for _, m := range methods {
		key := methodKey(p.Pkg, m.fd)
		if tolerant[key] {
			continue
		}
		p.Reportf(m.fd.Name.Pos(), "open with `if r == nil { return }`, or annotate //depburst:niltolerant with a reason",
			"registry method %s is not nil-tolerant; a disabled-metrics run would panic", key)
	}
}

// checkRegistryCallSites flags calls to non-tolerant registry methods that
// are not under a lexical nil check of the receiver.
func checkRegistryCallSites(p *Pass) {
	// Tolerant sets of the metrics packages this package calls into (the
	// real one, or a fixture's), resolved lazily.
	tolerantByPkg := make(map[*types.Package]map[string]bool)
	tolerantFor := func(named *types.Named) map[string]bool {
		tp := named.Obj().Pkg()
		if set, ok := tolerantByPkg[tp]; ok {
			return set
		}
		var set map[string]bool
		if mp := p.L.Package(tp.Path()); mp != nil {
			set = tolerantSet(mp, registryMethods(mp))
		}
		tolerantByPkg[tp] = set
		return set
	}

	for _, f := range p.Pkg.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := p.Pkg.Info.Selections[sel]
			if !ok {
				return true
			}
			fn, ok := selection.Obj().(*types.Func)
			if !ok {
				return true
			}
			named, ok := isRegistryType(selection.Recv())
			if !ok {
				return true
			}
			set := tolerantFor(named)
			if set == nil || set[named.Obj().Name()+"."+fn.Name()] {
				return true
			}
			if nilCheckedAt(stack, sel.X) {
				return true
			}
			p.Reportf(call.Pos(), "wrap the call in `if "+exprKey(sel.X)+" != nil` or make the method nil-tolerant",
				"%s.%s is not nil-tolerant and %s is not nil-checked here",
				named.Obj().Name(), fn.Name(), exprKey(sel.X))
			return true
		})
	}
}

// exprKey renders simple receiver expressions (r, m.reg, s.cfg.Metrics) for
// structural comparison; unrepresentable shapes yield "".
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x := exprKey(e.X); x != "" {
			return x + "." + e.Sel.Name
		}
	}
	return ""
}

// nilCheckedAt reports whether the statements enclosing the call establish
// `recv != nil`: an ancestor `if recv != nil { ... }` whose body holds the
// call, or an earlier sibling `if recv == nil { return }` in an enclosing
// block. Lexical guarantees end at a closure boundary.
func nilCheckedAt(stack []ast.Node, recv ast.Expr) bool {
	key := exprKey(recv)
	if key == "" {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.IfStmt:
			if i+1 < len(stack) && stack[i+1] == anc.Body && condAssertsNotNil(anc.Cond, key) {
				return true
			}
		case *ast.BlockStmt:
			var holder ast.Node
			if i+1 < len(stack) {
				holder = stack[i+1]
			}
			for _, stmt := range anc.List {
				if holder != nil && stmt == holder {
					break
				}
				ifs, ok := stmt.(*ast.IfStmt)
				if ok && condIsNilEq(ifs.Cond, key) && endsInReturn(ifs.Body) {
					return true
				}
			}
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// condAssertsNotNil matches conditions that include `key != nil` as a
// top-level conjunct.
func condAssertsNotNil(cond ast.Expr, key string) bool {
	c, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch c.Op {
	case token.LAND:
		return condAssertsNotNil(c.X, key) || condAssertsNotNil(c.Y, key)
	case token.NEQ:
		return nilCompareKey(c, key)
	}
	return false
}

// condIsNilEq matches `key == nil`.
func condIsNilEq(cond ast.Expr, key string) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	return ok && b.Op == token.EQL && nilCompareKey(b, key)
}

// nilCompareKey matches a binary comparison between the keyed expression
// and nil, in either order.
func nilCompareKey(b *ast.BinaryExpr, key string) bool {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (exprKey(b.X) == key && isNil(b.Y)) || (exprKey(b.Y) == key && isNil(b.X))
}
