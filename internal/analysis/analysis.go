// Package analysis is the repo's own static-analysis suite: a stdlib-only
// analyzer framework (go/parser + go/ast + go/types with manual package
// loading — no golang.org/x/tools) plus the analyzers that turn this
// codebase's load-bearing conventions into build-time errors.
//
// DEP+BURST's evaluation rests on reproducible per-quantum numbers: byte
// identical exports across -j settings and cache replays, zero-allocation
// simulator hot loops, context propagation from the HTTP layer down into
// the sampling loop, and nil-registry-is-free observability. The test suite
// can probe single instances of those invariants; the analyzers prove the
// whole class at lint time:
//
//	determinism  no wall-clock reads, global math/rand, or unsorted map
//	             iteration in code that feeds experiment or server output
//	hotpath      //depburst:hotpath functions (and their statically
//	             resolved module callees) must not allocate
//	ctxflow      a function holding a context.Context must pass it on —
//	             no context.Background() detours, no dropping ctx when a
//	             Context-taking sibling of the callee exists
//	nilreg       metrics Registry/ServerRegistry methods stay nil-tolerant,
//	             and calls to non-tolerant methods need a nil check
//	goldenio     exported bytes (goldens, BENCH records, documents) never
//	             come from marshalling maps; use sorted slices or obsio
//	lockdisc     //depburst:guardedby fields are only touched with their
//	             mutex held; RWMutex writes never happen under RLock
//	golife       every go statement has a provable termination path (ctx
//	             select, WaitGroup join, or //depburst:daemon), and spawned
//	             closures neither capture loop variables by reference nor
//	             write captured locals unsynchronized
//	atomiccheck  fields accessed via sync/atomic are never read or written
//	             plainly, and typed atomics are never copied by value
//	chanproto    function-local channels have a receive path, sender-side
//	             close, and no reachable double-close
//
// Sanctioned exceptions are annotated in the source: //depburst:allow
// <analyzer> <reason> suppresses one line, //depburst:hotpath marks roots,
// //depburst:niltolerant asserts nil tolerance by delegation,
// //depburst:guardedby and //depburst:locked declare lock discipline, and
// //depburst:daemon sanctions process-lifetime goroutines. The driver is
// exposed as `depburst lint`, and the suite's own test wall self-runs the
// analyzers over this repository, so the tree is lint-clean by
// construction.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one analyzer finding. File is module-root-relative; the
// JSON field names are pinned by the driver's schema test.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// Hint is a one-line suggested fix, printed under -fix-hints.
	Hint string `json:"hint,omitempty"`
}

// Pos renders the diagnostic's file:line:col prefix.
func (d Diagnostic) Pos() string {
	return fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col)
}

// Analyzer is one lint pass. Run inspects pass.Pkg and reports through the
// pass; the driver invokes it once per matched package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) execution: the package under
// analysis, the loader for cross-package resolution (callee bodies,
// annotations), and the diagnostic sink.
type Pass struct {
	An  *Analyzer
	L   *Loader
	Pkg *Package

	sink *[]Diagnostic
}

// Reportf files a diagnostic at pos unless an //depburst:allow directive
// sanctions that line. hint may be empty.
func (p *Pass) Reportf(pos token.Pos, hint, format string, args ...any) {
	position := p.L.Fset.Position(pos)
	if p.L.allowed(position.Filename, position.Line, p.An.Name) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{
		Analyzer: p.An.Name,
		File:     p.L.rel(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Hint:     hint,
	})
}

// All returns the full analyzer suite in its canonical order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		HotPath,
		CtxFlow,
		NilReg,
		GoldenIO,
		LockDisc,
		GoLife,
		AtomicCheck,
		ChanProto,
	}
}

// ByName resolves a comma-separated analyzer selection against the suite.
func ByName(names []string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
	}
	return out, nil
}

// Run executes the given analyzers over every package matching patterns in
// the module rooted at dir. Diagnostics come back sorted by position, then
// analyzer, and exact duplicates (the same finding reached from two hotpath
// roots) are collapsed — the order is deterministic by construction, since
// the lint output is itself an export the repo's invariants apply to.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.Match(patterns...)
	if err != nil {
		return nil, err
	}
	return RunPackages(l, pkgs, analyzers), nil
}

// RunPackages executes analyzers over already-loaded packages.
func RunPackages(l *Loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{An: a, L: l, Pkg: pkg, sink: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}
