package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exportSrc is a miniature of the repo's metrics export path: map keys
// collected and sorted before feeding the document. The mutation test
// removes the sort line and requires the determinism analyzer to catch it —
// the exact bug class the analyzer exists for.
const exportSrc = `package export

import "sort"

func Export(gauges map[string]float64) []string {
	names := make([]string, 0, len(gauges))
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
`

// writeModule materialises a one-package module in a temp dir.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module mut\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "export"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "export", "export.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestMutationUnsortedExport proves the determinism analyzer guards the
// export idiom: the intact code is clean, and deleting only the sort call
// turns the map range into a finding.
func TestMutationUnsortedExport(t *testing.T) {
	clean := writeModule(t, exportSrc)
	diags, err := Run(clean, []string{"./..."}, []*Analyzer{Determinism})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("sorted export should be clean, got: %+v", diags)
	}

	mutated := strings.Replace(exportSrc, "\tsort.Strings(names)\n", "", 1)
	if mutated == exportSrc {
		t.Fatal("mutation did not apply")
	}
	mutated = strings.Replace(mutated, "import \"sort\"\n", "", 1) // keep it compiling
	dir := writeModule(t, mutated)
	diags, err = Run(dir, []string{"./..."}, []*Analyzer{Determinism})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("unsorted export must produce exactly one finding, got %d: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "determinism" || !strings.Contains(d.Message, "never sorted") {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
}

// TestMutationUnguardedRegistry does the same for nilreg: deleting the nil
// guard from a registry method turns the declaration into a finding.
func TestMutationUnguardedRegistry(t *testing.T) {
	const guarded = `package metrics

type Registry struct{ n int }

func (r *Registry) Inc() {
	if r == nil {
		return
	}
	r.n++
}
`
	dir := t.TempDir()
	write := func(src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module mut\n\ngo 1.22\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Join(dir, "metrics"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "metrics", "metrics.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(guarded)
	diags, err := Run(dir, []string{"./..."}, []*Analyzer{NilReg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("guarded registry should be clean, got %+v", diags)
	}

	mutated := strings.Replace(guarded, "\tif r == nil {\n\t\treturn\n\t}\n", "", 1)
	if mutated == guarded {
		t.Fatal("mutation did not apply")
	}
	dir2 := t.TempDir()
	dir = dir2
	write(mutated)
	diags, err = Run(dir2, []string{"./..."}, []*Analyzer{NilReg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "not nil-tolerant") {
		t.Fatalf("unguarded registry must fire nilreg, got %+v", diags)
	}
}
