package analysis

import (
	"go/ast"
	"go/types"
)

// calleeOf statically resolves a call expression to the function or method
// it invokes. Calls through function values, interfaces the type checker
// cannot devirtualise, and type conversions resolve to nil.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgFunc reports whether fn is declared in the package with the given
// import path.
func isPkgFunc(fn *types.Func, pkgPath string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// isBuiltin reports whether call invokes the named builtin (append, delete,
// make, new, ...).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isConversion reports whether call is a type conversion, returning the
// target type.
func isConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// pointerShaped reports whether values of t are stored directly in an
// interface word, so converting them to an interface does not allocate.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

// funcDisplayName renders a function for diagnostics: "(*Core).Run" for
// methods, "New" for package functions.
func funcDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	rt := sig.Recv().Type()
	name := ""
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
		name = "*"
	}
	if n, ok := rt.(*types.Named); ok {
		name += n.Obj().Name()
	} else {
		name += rt.String()
	}
	return "(" + name + ")." + fn.Name()
}
