package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package of the module under
// analysis. Only module packages carry syntax; imports that leave the module
// (the standard library) are type-checked through the toolchain's source
// importer and expose types only.
type Package struct {
	// Path is the import path ("depburst/internal/cpu").
	Path string
	// Dir is the absolute directory the sources were read from.
	Dir string
	// Files holds the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	// Info carries the resolved uses/defs/selections for Files.
	Info *types.Info
	// Funcs maps every declared function or method to its syntax, so
	// analyzers can descend from a call site into the callee's body.
	Funcs map[*types.Func]*ast.FuncDecl
	// Hot lists the declarations carrying a //depburst:hotpath directive.
	Hot []*ast.FuncDecl
}

// Loader parses and type-checks the packages of one Go module using only the
// standard library: module-internal imports resolve against the module tree,
// everything else goes through go/importer's source importer. Loaded
// packages are cached, so a whole-module load type-checks each package once.
type Loader struct {
	// Fset positions every parsed file; diagnostics resolve through it.
	Fset *token.FileSet
	// Root is the absolute module root (the directory holding go.mod).
	Root string
	// Module is the module path declared in go.mod.
	Module string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
	// allow records //depburst:allow directives: file -> line -> analyzer
	// names suppressed on that line.
	allow map[string]map[int][]string
}

// NewLoader opens the module rooted at dir (the directory containing
// go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		Root:    root,
		Module:  mod,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		allow:   make(map[string]map[int][]string),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w (need a module root)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module paths load from the
// module tree, everything else from the standard library source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.inModule(path) {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// inModule reports whether an import path belongs to the loaded module.
func (l *Loader) inModule(path string) bool {
	return path == l.Module || strings.HasPrefix(path, l.Module+"/")
}

// dirFor maps a module import path to its source directory.
func (l *Loader) dirFor(path string) string {
	if path == l.Module {
		return l.Root
	}
	return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module+"/")))
}

// Load parses and type-checks one module package (cached). Test files are
// excluded: the analyzers enforce invariants on shipped code.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}

	p := &Package{
		Path:  path,
		Dir:   dir,
		Files: files,
		Types: tpkg,
		Info:  info,
		Funcs: make(map[*types.Func]*ast.FuncDecl),
	}
	for _, f := range files {
		l.recordAllows(f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				p.Funcs[fn] = fd
			}
			if hasDirective(fd.Doc, directiveHotPath) {
				p.Hot = append(p.Hot, fd)
			}
		}
	}
	l.pkgs[path] = p
	return p, nil
}

// Match resolves package patterns against the module tree and loads every
// match. Supported patterns: "./...", "./dir/...", "./dir", and full import
// paths; "testdata" and hidden directories never match.
func (l *Loader) Match(patterns ...string) ([]*Package, error) {
	seen := make(map[string]bool)
	var paths []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		if l.inModule(pat) { // full import path
			pat = strings.TrimPrefix(strings.TrimPrefix(pat, l.Module), "/")
		}
		rec := false
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			rec = true
			pat = strings.TrimSuffix(rest, "/")
		}
		if !rec {
			dir := filepath.Join(l.Root, filepath.FromSlash(pat))
			if !hasGoSource(dir) {
				return nil, fmt.Errorf("analysis: no Go package matches %q", pat)
			}
			add(l.pathFor(dir))
			continue
		}
		n := 0
		root := filepath.Join(l.Root, filepath.FromSlash(pat))
		err := filepath.WalkDir(root, func(dir string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if name := d.Name(); dir != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoSource(dir) {
				add(l.pathFor(dir))
				n++
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, fmt.Errorf("analysis: no Go packages match %q", pat)
		}
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// pathFor maps a directory under the module root to its import path.
func (l *Loader) pathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// hasGoSource reports whether dir directly contains non-test Go files.
func hasGoSource(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Package returns an already-loaded module package, or nil.
func (l *Loader) Package(path string) *Package { return l.pkgs[path] }

// FuncDecl resolves a function object to its declaration, looking across
// every loaded module package. It returns nil for stdlib functions,
// interface methods and anything without a body.
func (l *Loader) FuncDecl(fn *types.Func) (*Package, *ast.FuncDecl) {
	if fn == nil || fn.Pkg() == nil {
		return nil, nil
	}
	pkg := l.pkgs[fn.Pkg().Path()]
	if pkg == nil {
		return nil, nil
	}
	return pkg, pkg.Funcs[fn]
}

// rel makes a source path module-root-relative for diagnostics.
func (l *Loader) rel(file string) string {
	if r, err := filepath.Rel(l.Root, file); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return file
}
