package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// LintConfig configures one driver invocation (`depburst lint`).
type LintConfig struct {
	// Dir is the module root to analyze.
	Dir string
	// Patterns are package patterns ("./...", "./internal/cpu", import
	// paths). Empty defaults to the whole module.
	Patterns []string
	// Analyzers selects a subset by name; empty runs the full suite.
	Analyzers []string
	// JSON emits the machine-readable report instead of text lines.
	JSON bool
	// FixHints appends each diagnostic's suggested fix in text mode (hints
	// are always present in JSON).
	FixHints bool
}

// jsonReport is the -json output shape. The keys are part of the tool's
// contract and pinned by the driver test.
type jsonReport struct {
	Version     int          `json:"version"`
	Count       int          `json:"count"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// Lint runs the configured analyzers and writes the report to out. It
// returns the number of diagnostics; the CLI maps a nonzero count to exit
// status 1.
func Lint(cfg LintConfig, out io.Writer) (int, error) {
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers := All()
	if len(cfg.Analyzers) > 0 {
		var err error
		analyzers, err = ByName(cfg.Analyzers)
		if err != nil {
			return 0, err
		}
	}
	diags, err := Run(cfg.Dir, patterns, analyzers)
	if err != nil {
		return 0, err
	}
	if cfg.JSON {
		rep := jsonReport{Version: 1, Count: len(diags), Diagnostics: diags}
		if rep.Diagnostics == nil {
			rep.Diagnostics = []Diagnostic{}
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return len(diags), err
		}
		return len(diags), nil
	}
	for _, d := range diags {
		if _, err := fmt.Fprintf(out, "%s: [%s] %s\n", d.Pos(), d.Analyzer, d.Message); err != nil {
			return len(diags), err
		}
		if cfg.FixHints && d.Hint != "" {
			if _, err := fmt.Fprintf(out, "\tfix: %s\n", d.Hint); err != nil {
				return len(diags), err
			}
		}
	}
	if len(diags) > 0 {
		if _, err := fmt.Fprintf(out, "%d issue(s) found\n", len(diags)); err != nil {
			return len(diags), err
		}
	}
	return len(diags), nil
}
