package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// LintConfig configures one driver invocation (`depburst lint`).
type LintConfig struct {
	// Dir is the module root to analyze.
	Dir string
	// Patterns are package patterns ("./...", "./internal/cpu", import
	// paths). Empty defaults to the whole module.
	Patterns []string
	// Analyzers selects a subset by name; empty runs the full suite.
	Analyzers []string
	// JSON emits the machine-readable report instead of text lines.
	JSON bool
	// SARIF emits a SARIF 2.1.0 report instead of text lines. Mutually
	// exclusive with JSON.
	SARIF bool
	// Baseline, when set, names a fingerprint file: findings recorded there
	// are suppressed (up to their recorded count), so only new findings
	// surface. A missing file acts as an empty baseline.
	Baseline string
	// WriteBaseline records the run's findings into Baseline instead of
	// reporting them; the run then exits clean by construction.
	WriteBaseline bool
	// FixHints appends each diagnostic's suggested fix in text mode (hints
	// are always present in JSON and folded into SARIF messages).
	FixHints bool
}

// jsonReport is the -json output shape. The keys are part of the tool's
// contract and pinned by the driver test.
type jsonReport struct {
	Version     int          `json:"version"`
	Count       int          `json:"count"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// Lint runs the configured analyzers and writes the report to out. It
// returns the number of diagnostics; the CLI maps a nonzero count to exit
// status 1.
func Lint(cfg LintConfig, out io.Writer) (int, error) {
	if cfg.JSON && cfg.SARIF {
		return 0, fmt.Errorf("analysis: -json and -sarif are mutually exclusive")
	}
	if cfg.WriteBaseline && cfg.Baseline == "" {
		return 0, fmt.Errorf("analysis: -write-baseline requires -baseline FILE")
	}
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers := All()
	if len(cfg.Analyzers) > 0 {
		var err error
		analyzers, err = ByName(cfg.Analyzers)
		if err != nil {
			return 0, err
		}
	}
	diags, err := Run(cfg.Dir, patterns, analyzers)
	if err != nil {
		return 0, err
	}
	if cfg.WriteBaseline {
		if err := WriteBaseline(cfg.Baseline, diags); err != nil {
			return 0, err
		}
		_, err := fmt.Fprintf(out, "wrote %s (%d finding(s) baselined)\n", cfg.Baseline, len(diags))
		return 0, err
	}
	if cfg.Baseline != "" {
		baseline, err := ReadBaseline(cfg.Baseline)
		if err != nil {
			return 0, err
		}
		diags = FilterBaseline(diags, baseline)
	}
	if cfg.SARIF {
		if err := writeSARIF(out, analyzers, diags); err != nil {
			return len(diags), err
		}
		return len(diags), nil
	}
	if cfg.JSON {
		rep := jsonReport{Version: 1, Count: len(diags), Diagnostics: diags}
		if rep.Diagnostics == nil {
			rep.Diagnostics = []Diagnostic{}
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return len(diags), err
		}
		return len(diags), nil
	}
	for _, d := range diags {
		if _, err := fmt.Fprintf(out, "%s: [%s] %s\n", d.Pos(), d.Analyzer, d.Message); err != nil {
			return len(diags), err
		}
		if cfg.FixHints && d.Hint != "" {
			if _, err := fmt.Fprintf(out, "\tfix: %s\n", d.Hint); err != nil {
				return len(diags), err
			}
		}
	}
	if len(diags) > 0 {
		if _, err := fmt.Fprintf(out, "%d issue(s) found\n", len(diags)); err != nil {
			return len(diags), err
		}
	}
	return len(diags), nil
}
