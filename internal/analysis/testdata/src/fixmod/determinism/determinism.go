// Package determinism is the determinism analyzer's fixture: each function
// is one violation or one sanctioned idiom, and the golden file pins which
// lines fire.
package determinism

import (
	"math/rand"
	"slices"
	"sort"
	"time"
)

// Stamp reads the wall clock into an output value.
func Stamp() int64 {
	return time.Now().Unix()
}

// Age depends on the wall clock through Since.
func Age(t0 time.Time) time.Duration {
	return time.Since(t0)
}

// Deadline depends on the wall clock through Until.
func Deadline(t0 time.Time) time.Duration {
	return time.Until(t0)
}

// Telemetry is sanctioned: the annotation names the analyzer and a reason.
func Telemetry() int64 {
	return time.Now().Unix() //depburst:allow determinism -- fixture: telemetry stamp never feeds an export
}

// Roll uses the (flagged) global generator import.
func Roll() int { return rand.Intn(6) }

// JoinKeys is order-sensitive: plain assignment keeps the last-iterated key.
func JoinKeys(m map[string]int) string {
	out := ""
	for k := range m {
		out = out + k
	}
	return out
}

// SortedKeys is the sanctioned export idiom: collect, sort, emit.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// UnsortedKeys collects map keys but never sorts them.
func UnsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// SlicesSorted uses the slices-package sorter, which is also recognised.
func SlicesSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// FillSlice writes through a slice index inside the range: the element
// order is whatever the map yields, so this is order-sensitive.
func FillSlice(m map[int]string, out []string) {
	i := 0
	for _, v := range m {
		out[i] = v
		i++
	}
}

// Sum accumulates commutatively: order-insensitive.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Histogram writes map elements and counts: both order-insensitive.
func Histogram(m map[string]int) map[int]int {
	h := make(map[int]int, len(m))
	n := 0
	for _, v := range m {
		h[v] = h[v] + 1
		n++
	}
	_ = n
	return h
}

// Clear deletes during iteration, which the spec blesses.
func Clear(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// Branchy has a control-flow body the analyzer cannot prove commutative.
func Branchy(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
