// Package lockdisc exercises the lock-discipline analyzer: unguarded
// reads/writes of annotated fields, RWMutex writes under RLock, embedded
// mutex guards, and an annotation naming a mutex that does not exist.
package lockdisc

import "sync"

type counter struct {
	mu sync.Mutex
	//depburst:guardedby mu
	n int
}

// unguardedRead touches n without the lock.
func (c *counter) unguardedRead() int {
	return c.n
}

// unguardedWrite mutates n without the lock.
func (c *counter) unguardedWrite(v int) {
	c.n = v
}

// ok holds the lock with the defer-unlock idiom.
func (c *counter) ok() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// okBranch unlocks and returns inside a branch; the fall-through path
// keeps the lock.
func (c *counter) okBranch(limit int) int {
	c.mu.Lock()
	if c.n > limit {
		c.mu.Unlock()
		return limit
	}
	v := c.n
	c.mu.Unlock()
	return v
}

// helper is a caller-holds-lock helper; its body is analyzed as locked.
//
//depburst:locked mu
func (c *counter) helper() int {
	return c.n
}

// okFresh initializes a freshly-built value pre-publication: no lock.
func okFresh() *counter {
	c := &counter{}
	c.n = 1
	return c
}

type gauges struct {
	mu sync.RWMutex
	//depburst:guardedby mu
	vals map[string]float64
}

// writeUnderRLock mutates under a read lock only.
func (g *gauges) writeUnderRLock(k string, v float64) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.vals[k] = v
}

// okRead reads under RLock, which is sufficient.
func (g *gauges) okRead(k string) float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.vals[k]
}

type table struct {
	reg struct {
		sync.Mutex
		//depburst:guardedby Mutex
		m map[string]int
	}
}

// unguardedEmbedded reads through the embedded-mutex struct without
// locking it.
func (t *table) unguardedEmbedded(k string) int {
	return t.reg.m[k]
}

// okEmbedded locks via the promoted method, which keys to the embedded
// Mutex field.
func (t *table) okEmbedded(k string, v int) {
	t.reg.Lock()
	t.reg.m[k] = v
	t.reg.Unlock()
}

type mislabeled struct {
	mu sync.Mutex
	//depburst:guardedby lock
	v int
}

// use keeps the struct referenced.
func (m *mislabeled) use() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.v
}
