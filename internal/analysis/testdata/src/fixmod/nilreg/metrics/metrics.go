// Package metrics mirrors the real registry contract for the nilreg
// fixture: guarded, delegating, asserted, and broken methods.
package metrics

// Registry is the fixture twin of the repo's metrics.Registry.
type Registry struct {
	hits  int
	names []string
}

// Inc is tolerant the canonical way: a leading nil guard.
func (r *Registry) Inc() {
	if r == nil {
		return
	}
	r.hits++
}

// IncTwice is tolerant by delegation: every receiver use calls a tolerant
// method, which the fixed point resolves.
func (r *Registry) IncTwice() {
	r.Inc()
	r.Inc()
}

// Hits dereferences the receiver with no guard: flagged.
func (r *Registry) Hits() int {
	return r.hits
}

// Asserted is unguarded but carries the explicit tolerance assertion.
//
//depburst:niltolerant -- fixture: tolerance asserted for the test
func (r *Registry) Asserted() int {
	return len(r.names)
}

// Reset guards with the swapped comparison order.
func (r *Registry) Reset() {
	if nil == r {
		return
	}
	r.hits = 0
}

// ServerRegistry checks the second contract type.
type ServerRegistry struct{ gauges map[string]float64 }

// Set is guarded.
func (s *ServerRegistry) Set(name string, v float64) {
	if s == nil {
		return
	}
	s.gauges[name] = v
}

// Len is not: flagged.
func (s *ServerRegistry) Len() int {
	return len(s.gauges)
}
