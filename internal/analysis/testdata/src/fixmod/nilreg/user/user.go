// Package user exercises the nilreg call-site rule: calls to non-tolerant
// registry methods must sit under a lexical nil check.
package user

import "fix/nilreg/metrics"

// Guarded wraps the call in the positive check.
func Guarded(r *metrics.Registry) int {
	if r != nil {
		return r.Hits()
	}
	return 0
}

// EarlyReturn guards with the early-out form.
func EarlyReturn(r *metrics.Registry) int {
	if r == nil {
		return 0
	}
	return r.Hits()
}

// Unchecked calls a non-tolerant method with no check: flagged.
func Unchecked(r *metrics.Registry) int {
	return r.Hits()
}

// Tolerant calls only nil-safe methods: no check needed.
func Tolerant(r *metrics.Registry) {
	r.Inc()
	r.IncTwice()
	_ = r.Asserted()
}

// Holder shows the field-receiver form.
type Holder struct{ Reg *metrics.Registry }

// Bump mixes a tolerant call (fine) with an unchecked non-tolerant one
// (flagged).
func (h *Holder) Bump() int {
	h.Reg.Inc()
	return h.Reg.Hits()
}

// BumpChecked checks the same field expression first.
func (h *Holder) BumpChecked() int {
	if h.Reg == nil {
		return 0
	}
	return h.Reg.Hits()
}

// Conjunct accepts `!= nil` as one arm of a conjunction.
func Conjunct(r *metrics.Registry, on bool) int {
	if on && r != nil {
		return r.Hits()
	}
	return 0
}

// Server exercises the second registry type at a call site.
func Server(s *metrics.ServerRegistry) int {
	if s != nil {
		return s.Len()
	}
	return 0
}
