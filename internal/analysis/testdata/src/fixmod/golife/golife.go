// Package golife exercises the goroutine-lifecycle analyzer: loops with no
// termination path, dynamically-resolved spawns, loop-variable capture,
// unsynchronized captured writes, and a reasonless daemon directive.
package golife

import (
	"context"
	"sync"
)

// leak spawns an unbounded loop with no exit, no join, no annotation.
func leak() {
	go func() {
		for {
			step()
		}
	}()
}

// dynamic spawns through a function value the analyzer cannot resolve.
func dynamic(f func()) {
	go f()
}

// capture hands the loop variable to the closure by reference.
func capture(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sink(it)
		}()
	}
	wg.Wait()
}

// racyWrite mutates a captured local from the goroutine with no lock.
func racyWrite() int {
	total := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		total++
	}()
	wg.Wait()
	return total
}

// reasonlessDaemon carries the directive without the mandatory reason, so
// it is reported and the loop is still checked.
func reasonlessDaemon() {
	//depburst:daemon
	go func() {
		for {
			step()
		}
	}()
}

// okCtxLoop selects on ctx.Done, the sanctioned termination path.
func okCtxLoop(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				sink(v)
			}
		}
	}()
}

// okJoined is joined through the WaitGroup; bounded loops need no exit.
func okJoined(items []int) {
	var wg sync.WaitGroup
	for i := 0; i < len(items); i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			sink(v)
		}(items[i])
	}
	wg.Wait()
}

// okDaemon is sanctioned with a reason.
func okDaemon() {
	//depburst:daemon -- fixture flusher runs for process lifetime
	go func() {
		for {
			step()
		}
	}()
}

func step()      {}
func sink(v int) { _ = v }
