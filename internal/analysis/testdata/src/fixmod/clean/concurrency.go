// Sanctioned concurrency idioms: the lockdisc/golife/atomiccheck/chanproto
// analyzers must all pass this file with zero diagnostics.
package clean

import (
	"context"
	"sync"
	"sync/atomic"
)

// Store is the canonical guarded aggregate: annotated fields, defer-unlock
// accessors, a caller-holds helper, and an RWMutex read path.
type Store struct {
	mu sync.RWMutex
	//depburst:guardedby mu
	vals map[string]int
	//depburst:guardedby mu
	total int
}

// NewStore builds the store pre-publication: fresh values need no lock.
func NewStore() *Store {
	s := &Store{vals: map[string]int{}}
	s.total = 0
	return s
}

// Put takes the write lock and delegates to the locked helper.
func (s *Store) Put(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.put(k, v)
}

// put requires the caller to hold mu.
//
//depburst:locked mu
func (s *Store) put(k string, v int) {
	s.vals[k] = v
	s.total += v
}

// Get reads under the read lock, sorting nothing and mutating nothing.
func (s *Store) Get(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.vals[k]
}

// Flights mirrors the server's embedded-mutex map guard.
type Flights struct {
	reg struct {
		sync.Mutex
		//depburst:guardedby Mutex
		m map[string]bool
	}
}

// Mark locks through the promoted method.
func (f *Flights) Mark(k string) {
	f.reg.Lock()
	if f.reg.m == nil {
		f.reg.m = map[string]bool{}
	}
	f.reg.m[k] = true
	f.reg.Unlock()
}

// Hits is the all-atomic counter: every access goes through sync/atomic.
type Hits struct {
	n int64
}

// Bump and Read agree on atomicity.
func (h *Hits) Bump()       { atomic.AddInt64(&h.n, 1) }
func (h *Hits) Read() int64 { return atomic.LoadInt64(&h.n) }

// Pump is the sanctioned pipeline: the sender closes, the consumer ranges,
// the worker loop exits on ctx.Done, and the fan-out goroutines are joined.
func Pump(ctx context.Context, items []int) int {
	ch := make(chan int)
	go func() {
		defer close(ch)
		for _, v := range items {
			select {
			case ch <- v:
			case <-ctx.Done():
				return
			}
		}
	}()
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// FanOut joins every spawned goroutine and passes the loop value as an
// argument instead of capturing it.
func FanOut(items []int) int {
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			mu.Lock()
			total += v
			mu.Unlock()
		}(items[i])
	}
	wg.Wait()
	return total
}

// Watch runs for the process lifetime by design.
func Watch(tick chan struct{}) {
	//depburst:daemon -- fixture watcher mirrors the metrics flusher
	go func() {
		for {
			<-tick
		}
	}()
}
