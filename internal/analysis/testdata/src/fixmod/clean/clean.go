// Package clean is the negative fixture: every analyzer must pass it with
// zero diagnostics. It leans on each analyzer's sanctioned idioms at once —
// sorted map exports, reusing hot-path storage, threaded contexts, guarded
// registries, and struct-shaped documents.
package clean

import (
	"context"
	"encoding/json"
	"sort"
)

// Registry is guarded like the real metrics registry.
type Registry struct{ n int }

// Bump tolerates nil.
func (r *Registry) Bump() {
	if r == nil {
		return
	}
	r.n++
}

// Export is the canonical deterministic map export.
func Export(m map[string]int) ([]byte, error) {
	type kv struct {
		K string `json:"k"`
		V int    `json:"v"`
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]kv, 0, len(keys))
	for _, k := range keys {
		out = append(out, kv{K: k, V: m[k]})
	}
	return json.Marshal(out)
}

// Engine reuses pooled storage on its hot path.
type Engine struct {
	q    []int
	free []int
}

// Push is hot and allocation-free in steady state.
//
//depburst:hotpath
func (e *Engine) Push(v int) {
	if n := len(e.free); n > 0 {
		e.free = e.free[:n-1]
	}
	e.q = append(e.q, v)
}

// Runner threads its context everywhere.
type Runner struct{ reg *Registry }

// Run is the context-free core.
func (r *Runner) Run() int { return 1 }

// RunContext wraps Run, checking the deadline first.
func (r *Runner) RunContext(ctx context.Context) int {
	if ctx != nil && ctx.Err() != nil {
		return 0
	}
	return r.Run()
}

// Drive passes ctx through and guards its registry use.
func Drive(ctx context.Context, r *Runner) int {
	if r.reg != nil {
		r.reg.Bump()
	}
	return r.RunContext(ctx)
}
