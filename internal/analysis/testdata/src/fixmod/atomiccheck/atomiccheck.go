// Package atomiccheck exercises the atomics analyzer: plain reads and
// writes of fields accessed through sync/atomic, copies of values holding
// typed atomics, and value receivers on atomic-bearing types.
package atomiccheck

import "sync/atomic"

type stats struct {
	hits int64
	miss int64
}

// bump is the sanctioned access: address into sync/atomic.
func (s *stats) bump() {
	atomic.AddInt64(&s.hits, 1)
	atomic.AddInt64(&s.miss, 1)
}

// plainRead reads an atomically-written field without atomic.Load.
func (s *stats) plainRead() int64 {
	return s.hits
}

// plainWrite stores into an atomically-written field directly.
func (s *stats) plainWrite() {
	s.miss = 0
}

// okLoad is the matching correct read.
func (s *stats) okLoad() int64 {
	return atomic.LoadInt64(&s.hits)
}

type holder struct {
	v atomic.Int64
}

// copyValue copies the holder, shearing the atomic from its address.
func copyValue(h *holder) int64 {
	c := *h
	return c.v.Load()
}

// valueRecv copies the receiver on every call.
func (h holder) valueRecv() int64 {
	return h.v.Load()
}

// byValueParam copies the holder into the callee.
func byValueParam(h *holder) {
	consume(*h)
}

func consume(h holder) { _ = h }

// okPointer shares the holder the sanctioned way.
func okPointer(h *holder) int64 {
	return h.v.Load()
}
