// Package goldenio is the goldenio analyzer's fixture: export bytes minted
// from maps versus explicitly ordered structures.
package goldenio

import (
	"encoding/json"
	"io"
)

// Doc is an explicitly ordered document: clean.
type Doc struct {
	Name string
	Vals []int
}

// MapDoc hides a map one field deep.
type MapDoc struct {
	Name string
	Tags map[string]string
}

// Nested hides it two levels deep, behind a pointer and a slice.
type Nested struct {
	Inner []*MapDoc
}

// Clean marshals an ordered struct.
func Clean(d Doc) ([]byte, error) { return json.Marshal(d) }

// CleanSlice marshals a slice of ordered structs.
func CleanSlice(d []Doc) ([]byte, error) { return json.Marshal(d) }

// RawMap marshals a bare map: flagged.
func RawMap(m map[string]int) ([]byte, error) {
	return json.Marshal(m)
}

// FieldMap marshals a struct with a map field: flagged.
func FieldMap(d MapDoc) ([]byte, error) {
	return json.MarshalIndent(d, "", " ")
}

// DeepMap finds the map through pointer and slice indirection: flagged.
func DeepMap(n Nested) ([]byte, error) {
	return json.Marshal(n)
}

// Stream catches the encoder entry point too: flagged.
func Stream(w io.Writer, m map[string]int) error {
	return json.NewEncoder(w).Encode(m)
}

// Allowed documents a sanctioned map export.
func Allowed(m map[string]int) ([]byte, error) {
	//depburst:allow goldenio -- fixture: schema-preserving merge document
	return json.Marshal(m)
}
