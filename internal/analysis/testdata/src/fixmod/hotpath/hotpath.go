// Package hotpath is the hotpath analyzer's fixture: roots marked
// //depburst:hotpath exercise every allocation source the analyzer knows,
// plus the idioms it must accept (self-append reuse, open-coded defer,
// immediately-invoked literals, pooled cold paths).
package hotpath

import "fmt"

type node struct{ v int }

// Ring is a steady-state structure: its hot methods reuse backing storage.
type Ring struct {
	buf  []int
	free []*node
}

// Step is a hot root; the self-append reuse idiom is allowed, and the
// analyzer descends into helper.
//
//depburst:hotpath
func (r *Ring) Step(v int) {
	r.buf = append(r.buf, v)
	r.helper(v)
}

// helper is not annotated: it is checked because Step reaches it.
func (r *Ring) helper(v int) {
	fmt.Println(v)
}

// Grow trips make, growing append, and fmt.
//
//depburst:hotpath
func Grow(xs []int, n int) []int {
	ys := make([]int, n)
	xs = append(xs, ys...)
	s := fmt.Sprintf("%d", n)
	_ = s
	return xs
}

// Mint escapes a composite literal.
//
//depburst:hotpath
func Mint() *node {
	return &node{}
}

// MintPooled only allocates on the sanctioned cold path.
//
//depburst:hotpath
func MintPooled(free []*node) *node {
	if len(free) > 0 {
		return free[len(free)-1]
	}
	return &node{} //depburst:allow hotpath -- fixture: cold path feeding the pool
}

// Sink is a dynamic callee: outside the static closure, so Push is clean
// here (the AllocsPerRun walls are the backstop).
type Sink interface{ Put(int) }

//depburst:hotpath
func Push(s Sink, v int) {
	s.Put(v)
}

func put(v any) { _ = v }

// Box boxes an int into an interface parameter.
//
//depburst:hotpath
func Box(v int) {
	put(v)
}

// Accept passes the argument shapes that do NOT box: untyped nil,
// pointer-shaped values, and values that are already interfaces.
//
//depburst:hotpath
func Accept(p *node, a any) {
	put(nil)
	put(p)
	put(a)
}

func putAll(vs ...any) { _ = vs }

// Variadic boxes each bare element; forwarding a slice is free.
//
//depburst:hotpath
func Variadic(v int, vs []any) {
	putAll(vs...)
	putAll(v)
}

// Str copies through a slice-to-string conversion.
//
//depburst:hotpath
func Str(b []byte) string {
	return string(b)
}

// Closure returns a capturing literal that outlives the call.
//
//depburst:hotpath
func Closure(total int) func() int {
	return func() int { return total }
}

// Deferred uses the two literal forms that stay on the stack.
//
//depburst:hotpath
func Deferred() (err error) {
	defer func() { err = nil }()
	x := func() int { return 1 }()
	_ = x
	return nil
}

// Concat allocates a fresh string.
//
//depburst:hotpath
func Concat(a, b string) string {
	return a + b
}

// Bytes copies through a string-to-slice conversion.
//
//depburst:hotpath
func Bytes(s string) []byte {
	return []byte(s)
}

// Spawn starts a goroutine from a hot path.
//
//depburst:hotpath
func Spawn(fn func()) {
	go fn()
}

// Literal materialises a slice literal.
//
//depburst:hotpath
func Literal() []int {
	return []int{1, 2, 3}
}
