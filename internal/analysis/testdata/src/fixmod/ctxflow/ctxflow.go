// Package ctxflow is the ctxflow analyzer's fixture: context-holding
// functions that detach, drop, or correctly thread their context.
package ctxflow

import "context"

type Sim struct{ n int }

// Run is the context-free core.
func (s *Sim) Run() int { return s.n }

// RunContext delegates to Run: the wrapper idiom the analyzer must exempt.
func (s *Sim) RunContext(ctx context.Context) int {
	if ctx != nil && ctx.Err() != nil {
		return 0
	}
	return s.Run()
}

// Detach mints a fresh root instead of threading ctx.
func Detach(ctx context.Context, s *Sim) int {
	_ = ctx
	return s.RunContext(context.Background())
}

// Todo reaches for the other fresh root.
func Todo(ctx context.Context, s *Sim) int {
	_ = ctx
	return s.RunContext(context.TODO())
}

// NilCtx passes a nil literal where a context is expected.
func NilCtx(ctx context.Context, s *Sim) int {
	_ = ctx
	return s.RunContext(nil)
}

// Drops calls the context-free method although RunContext exists.
func Drops(ctx context.Context, s *Sim) int {
	return s.Run()
}

// Threads is correct: ctx flows through.
func Threads(ctx context.Context, s *Sim) int {
	return s.RunContext(ctx)
}

// Allowed documents an intentional detachment.
func Allowed(ctx context.Context, s *Sim) int {
	_ = ctx
	return s.Run() //depburst:allow ctxflow -- fixture: deliberate detachment
}

// NoCtx holds no context, so calling Run is fine.
func NoCtx(s *Sim) int {
	return s.Run()
}

// Work is a package-level pair: WorkCtx is its context sibling.
func Work(n int) int { return n }

// WorkCtx is the context-accepting variant (the "Ctx" suffix form).
func WorkCtx(ctx context.Context, n int) int {
	if ctx != nil && ctx.Err() != nil {
		return 0
	}
	return Work(n)
}

// CallsWork drops ctx although WorkCtx exists.
func CallsWork(ctx context.Context) int {
	_ = ctx
	return Work(1)
}
