// Package chanproto exercises the channel-protocol analyzer: sends with no
// receive path, closes from the receiving side, reachable double-closes,
// closes inside loops, and buffered sends in unbounded loops.
package chanproto

// sendNoRecv sends on a local channel nothing ever receives from.
func sendNoRecv() {
	done := make(chan struct{})
	done <- struct{}{}
}

// closeReceiverSide closes from the scope that receives while the
// goroutine is the sender.
func closeReceiverSide() int {
	ch := make(chan int)
	go func() {
		for i := 0; i < 3; i++ {
			ch <- i
		}
	}()
	v := <-ch
	close(ch)
	return v
}

// doubleClose closes the same channel twice on one path.
func doubleClose() {
	ch := make(chan int, 1)
	ch <- 1
	<-ch
	close(ch)
	close(ch)
}

// closeInLoop re-closes on every iteration.
func closeInLoop(n int) {
	ch := make(chan int, 1)
	ch <- 1
	<-ch
	for i := 0; i < n; i++ {
		close(ch)
	}
}

// bufferedLoopSend fills the buffer from an unbounded loop that never
// drains it.
func bufferedLoopSend(src func() int) int {
	ch := make(chan int, 8)
	go func() {
		for {
			ch <- src()
		}
	}()
	return <-ch
}

// okProducer closes from the sending goroutine; the consumer ranges.
func okProducer(items []int) int {
	ch := make(chan int)
	go func() {
		for _, v := range items {
			ch <- v
		}
		close(ch)
	}()
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// okBranchClose closes exactly once across exclusive branches.
func okBranchClose(fast bool) {
	ch := make(chan struct{}, 1)
	ch <- struct{}{}
	<-ch
	if fast {
		close(ch)
	} else {
		close(ch)
	}
}

// okEscape hands the channel to its consumer; escaped channels are not
// guessed at.
func okEscape() chan int {
	ch := make(chan int)
	ch <- 0 // not flagged: the receive lives with the caller
	return ch
}
