package analysis

import (
	"strings"
	"testing"
)

// The concurrency mutation tests follow TestMutationUnsortedExport: each
// source is correct as written and clean under its analyzer; deleting one
// load-bearing line (a Lock call, a ctx.Done case, an atomic load) must
// produce exactly one finding from exactly the analyzer that owns the
// invariant. This proves each analyzer fires on its seeded violation and
// nothing else.

const lockSrc = `package export

import "sync"

type counter struct {
	mu sync.Mutex
	//depburst:guardedby mu
	n int
}

func (c *counter) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}
`

func TestMutationDeletedLock(t *testing.T) {
	clean := writeModule(t, lockSrc)
	diags, err := Run(clean, []string{"./..."}, []*Analyzer{LockDisc})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("locked counter should be clean, got: %+v", diags)
	}

	mutated := strings.Replace(lockSrc, "\tc.mu.Lock()\n\tdefer c.mu.Unlock()\n", "", 1)
	if mutated == lockSrc {
		t.Fatal("mutation did not apply")
	}
	diags, err = Run(writeModule(t, mutated), []string{"./..."}, []*Analyzer{LockDisc})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "lockdisc" {
		t.Fatalf("deleting the Lock call should yield exactly one lockdisc finding, got: %+v", diags)
	}
	if !strings.Contains(diags[0].Message, "write to n") {
		t.Errorf("finding should name the unguarded write: %s", diags[0].Message)
	}
}

const ctxLoopSrc = `package export

import "context"

func Watch(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}
`

func TestMutationDeletedCtxDone(t *testing.T) {
	clean := writeModule(t, ctxLoopSrc)
	diags, err := Run(clean, []string{"./..."}, []*Analyzer{GoLife})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("ctx-selecting loop should be clean, got: %+v", diags)
	}

	mutated := strings.Replace(ctxLoopSrc, "\t\t\tcase <-ctx.Done():\n\t\t\t\treturn\n", "", 1)
	if mutated == ctxLoopSrc {
		t.Fatal("mutation did not apply")
	}
	diags, err = Run(writeModule(t, mutated), []string{"./..."}, []*Analyzer{GoLife})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "golife" {
		t.Fatalf("deleting the ctx.Done case should yield exactly one golife finding, got: %+v", diags)
	}
	if !strings.Contains(diags[0].Message, "no termination path") {
		t.Errorf("finding should name the missing exit: %s", diags[0].Message)
	}
}

const atomicSrc = `package export

import "sync/atomic"

type stats struct {
	hits int64
}

func (s *stats) Bump() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) Read() int64 {
	return atomic.LoadInt64(&s.hits)
}
`

func TestMutationPlainAtomicRead(t *testing.T) {
	clean := writeModule(t, atomicSrc)
	diags, err := Run(clean, []string{"./..."}, []*Analyzer{AtomicCheck})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("all-atomic stats should be clean, got: %+v", diags)
	}

	mutated := strings.Replace(atomicSrc, "atomic.LoadInt64(&s.hits)", "s.hits", 1)
	if mutated == atomicSrc {
		t.Fatal("mutation did not apply")
	}
	diags, err = Run(writeModule(t, mutated), []string{"./..."}, []*Analyzer{AtomicCheck})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "atomiccheck" {
		t.Fatalf("replacing the atomic load should yield exactly one atomiccheck finding, got: %+v", diags)
	}
	if !strings.Contains(diags[0].Message, "plain read of hits") {
		t.Errorf("finding should name the plain read: %s", diags[0].Message)
	}
}

const pipeSrc = `package export

func Drain(items []int) int {
	ch := make(chan int)
	go func() {
		for _, v := range items {
			ch <- v
		}
		close(ch)
	}()
	total := 0
	for v := range ch {
		total += v
	}
	return total
}
`

func TestMutationDeletedReceive(t *testing.T) {
	clean := writeModule(t, pipeSrc)
	diags, err := Run(clean, []string{"./..."}, []*Analyzer{ChanProto})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("producer/consumer pipeline should be clean, got: %+v", diags)
	}

	mutated := strings.Replace(pipeSrc, "\tfor v := range ch {\n\t\ttotal += v\n\t}\n", "", 1)
	if mutated == pipeSrc {
		t.Fatal("mutation did not apply")
	}
	diags, err = Run(writeModule(t, mutated), []string{"./..."}, []*Analyzer{ChanProto})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "chanproto" {
		t.Fatalf("deleting the receive loop should yield exactly one chanproto finding, got: %+v", diags)
	}
	if !strings.Contains(diags[0].Message, "no receive path") {
		t.Errorf("finding should name the missing receive: %s", diags[0].Message)
	}
}

// TestLockedHelperTrusted pins the //depburst:locked contract: the helper
// body is analyzed with the receiver's mutex held, and removing the
// directive immediately re-flags the access.
func TestLockedHelperTrusted(t *testing.T) {
	src := `package export

import "sync"

type reg struct {
	mu sync.Mutex
	//depburst:guardedby mu
	m map[string]int
}

func (r *reg) Get(k string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.get(k)
}

//depburst:locked mu
func (r *reg) get(k string) int {
	return r.m[k]
}
`
	diags, err := Run(writeModule(t, src), []string{"./..."}, []*Analyzer{LockDisc})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("locked helper should be trusted, got: %+v", diags)
	}

	mutated := strings.Replace(src, "//depburst:locked mu\n", "", 1)
	diags, err = Run(writeModule(t, mutated), []string{"./..."}, []*Analyzer{LockDisc})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("unannotated helper should be flagged once, got: %+v", diags)
	}
}

// TestRWLockUpgradeRequired pins the RWMutex rule: reads pass under RLock,
// and swapping one read for a write under the same RLock is flagged as an
// upgrade violation, not a generic missing-lock finding.
func TestRWLockUpgradeRequired(t *testing.T) {
	src := `package export

import "sync"

type gauges struct {
	mu sync.RWMutex
	//depburst:guardedby mu
	v float64
}

func (g *gauges) Snapshot() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}
`
	diags, err := Run(writeModule(t, src), []string{"./..."}, []*Analyzer{LockDisc})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("RLock read should be clean, got: %+v", diags)
	}

	mutated := strings.Replace(src, "return g.v", "g.v = 0\n\treturn g.v", 1)
	diags, err = Run(writeModule(t, mutated), []string{"./..."}, []*Analyzer{LockDisc})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "under RLock only") {
		t.Fatalf("write under RLock should be flagged as an upgrade violation, got: %+v", diags)
	}
}
