package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicCheck enforces all-or-nothing atomicity: once a field is accessed
// through sync/atomic — either by address (`atomic.AddInt64(&x.n, 1)`) or by
// being declared one of the typed atomics (atomic.Int64, atomic.Bool, ...) —
// every access must stay atomic. A single plain read of an atomically
// written counter is a data race the race detector only catches when a test
// happens to execute both sides; statically, the mixed access is visible on
// every path.
//
// Checked:
//
//   - a field passed by address to a sync/atomic function anywhere in the
//     package must never be read or written plainly elsewhere;
//   - values of types that contain a typed atomic (directly, or through
//     nested structs and arrays) must not be copied: no value receivers, no
//     `y := x` / `y := *p` copies, no passing by value — the copy shears the
//     atomic's state from its address, exactly like copying a sync.Mutex.
//
// Fresh values (composite literals, new(T), function call results) may be
// assigned; it is copying an existing, possibly-shared value that is flagged.
var AtomicCheck = &Analyzer{
	Name: "atomiccheck",
	Doc:  "atomically-accessed fields must never be accessed plainly, and atomics must not be copied",
	Run:  runAtomicCheck,
}

func runAtomicCheck(p *Pass) {
	atomicFields, exempt := collectAtomicFields(p)
	for _, f := range p.Pkg.Files {
		checkPlainAccess(p, f, atomicFields, exempt)
		checkAtomicCopies(p, f)
	}
	checkValueReceivers(p)
}

// collectAtomicFields finds every variable whose address is taken as an
// argument of a sync/atomic function call anywhere in the package. The
// second map records those &x expressions themselves, which are the
// sanctioned accesses.
func collectAtomicFields(p *Pass) (map[*types.Var]bool, map[ast.Expr]bool) {
	fields := make(map[*types.Var]bool)
	exempt := make(map[ast.Expr]bool)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(p.Pkg.Info, call)
			if !isPkgFunc(fn, "sync/atomic") {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if v := varOf(p.Pkg.Info, u.X); v != nil {
					fields[v] = true
					exempt[u.X] = true
				}
			}
			return true
		})
	}
	return fields, exempt
}

// varOf resolves an expression to the variable it denotes (x, x.f, (*p).f).
func varOf(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		if v == nil {
			v, _ = info.Defs[e].(*types.Var)
		}
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}

// checkPlainAccess flags non-atomic uses of variables the package accesses
// atomically. An access is atomic when its address is taken directly into a
// sync/atomic call; everything else — plain reads, plain assignments,
// increments — is mixed access.
func checkPlainAccess(p *Pass, f *ast.File, atomicFields map[*types.Var]bool, exempt map[ast.Expr]bool) {
	if len(atomicFields) == 0 {
		return
	}
	info := p.Pkg.Info
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		var v *types.Var
		var at ast.Expr
		switch e := n.(type) {
		case *ast.Ident:
			// Only bare identifiers (locals/globals); field uses are
			// reached through their SelectorExpr below.
			if len(stack) >= 2 {
				if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.Sel == e {
					return true
				}
			}
			v, _ = info.Uses[e].(*types.Var)
			at = e
		case *ast.SelectorExpr:
			v, _ = info.Uses[e.Sel].(*types.Var)
			at = e
		default:
			return true
		}
		if v == nil || exempt[at] || !atomicFields[v] {
			return true
		}
		// Declaration sites and struct literal keys are not accesses.
		if id, ok := at.(*ast.Ident); ok && info.Defs[id] != nil {
			return true
		}
		verb := "read"
		if isMutatingContext(info, stack, at) {
			verb = "write"
		}
		p.Reportf(at.Pos(), "use atomic.Load/atomic.Store (or the typed atomic's methods) for every access of "+v.Name(),
			"plain %s of %s, which is accessed atomically elsewhere in this package", verb, v.Name())
		return true
	})
}

// isMutatingContext reports whether the accessed expression is written:
// assignment target, inc/dec operand, or address-taken outside an atomic
// call.
func isMutatingContext(info *types.Info, stack []ast.Node, at ast.Expr) bool {
	if len(stack) < 2 {
		return false
	}
	for i := len(stack) - 2; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				if ast.Unparen(lhs) == at {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return ast.Unparen(parent.X) == at
		case *ast.UnaryExpr:
			return parent.Op == token.AND && ast.Unparen(parent.X) == at
		default:
			return false
		}
	}
	return false
}

// containsAtomic reports whether t holds a sync/atomic typed value by value,
// traversing structs and arrays but not pointers, slices, maps or channels
// (those share, they don't copy).
func containsAtomic(t types.Type) bool {
	seen := make(map[types.Type]bool)
	var walk func(types.Type) bool
	walk = func(t types.Type) bool {
		if seen[t] {
			return false
		}
		seen[t] = true
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
				// atomic.Value, atomic.Int64, atomic.Pointer[T], ...
				return true
			}
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return walk(u.Elem())
		}
		return false
	}
	return walk(t)
}

// checkAtomicCopies flags assignments and call arguments that copy a value
// containing typed atomics.
func checkAtomicCopies(p *Pass, f *ast.File) {
	info := p.Pkg.Info
	copied := func(e ast.Expr) bool {
		switch ast.Unparen(e).(type) {
		case *ast.CompositeLit, *ast.CallExpr:
			return false // fresh value, not a copy of shared state
		}
		t := info.TypeOf(e)
		return t != nil && containsAtomic(t)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				// Discarding to blank copies nothing anyone can observe.
				if len(n.Lhs) == len(n.Rhs) {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				if copied(rhs) {
					p.Reportf(rhs.Pos(), "share the value through a pointer instead of copying it",
						"copy of a value containing a typed atomic shears its state from its address")
				}
			}
		case *ast.CallExpr:
			fn := calleeOf(info, n)
			if fn == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			for i, arg := range n.Args {
				if i >= sig.Params().Len() {
					break
				}
				pt := sig.Params().At(i).Type()
				if _, isPtr := pt.Underlying().(*types.Pointer); isPtr {
					continue
				}
				if copied(arg) {
					p.Reportf(arg.Pos(), "take a pointer parameter for atomic-bearing types",
						"passing a value containing a typed atomic copies it")
				}
			}
		}
		return true
	})
}

// checkValueReceivers flags methods declared with a value receiver on a type
// that contains typed atomics: every call copies the receiver.
func checkValueReceivers(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil {
				continue
			}
			if _, isPtr := recv.Type().(*types.Pointer); isPtr {
				continue
			}
			if containsAtomic(recv.Type()) {
				p.Reportf(fd.Name.Pos(), "declare the method on *"+recvTypeName(recv.Type()),
					"value receiver on %s copies its atomic fields on every call", recvTypeName(recv.Type()))
			}
		}
	}
}

// recvTypeName names a receiver type for diagnostics.
func recvTypeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
