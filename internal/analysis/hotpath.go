package analysis

import (
	"go/ast"
	"go/types"
)

// HotPath proves the simulator's per-event code allocation-free at lint
// time, complementing the AllocsPerRun walls (which probe one input) with a
// whole-class static check.
//
// A function marked //depburst:hotpath is a root. The analyzer walks the
// root and every statically-resolved callee inside the module (methods on
// concrete receivers, package functions), and flags the allocation sources
// the repo has actually been bitten by:
//
//   - any call into fmt (formats, boxes and allocates);
//   - make/new and escaping composite literals (&T{}, slice/map literals);
//   - interface boxing: passing a non-pointer-shaped concrete value where a
//     parameter is an interface;
//   - closures that outlive the call (assigned or passed — a deferred or
//     immediately-invoked func literal stays on the stack);
//   - go statements (a goroutine is an allocation and a scheduling hazard);
//   - string concatenation and string<->[]byte conversions;
//   - append, except the steady-state reuse idiom `x = append(x, elem)`
//     (free lists and fixed-capacity heaps grow once, then recycle).
//
// Dynamic calls (func values, un-devirtualised interface methods) are
// outside the static closure; the AllocsPerRun guards remain the backstop
// for those.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocation in //depburst:hotpath functions and their static callees",
	Run:  runHotPath,
}

func runHotPath(p *Pass) {
	visited := make(map[*types.Func]bool)
	for _, root := range p.Pkg.Hot {
		rootFn, _ := p.Pkg.Info.Defs[root.Name].(*types.Func)
		if rootFn == nil {
			continue
		}
		checkHotFunc(p, p.Pkg, root, rootFn, funcDisplayName(rootFn), visited)
	}
}

// checkHotFunc inspects one function body reached from a hot root and
// recurses into its module callees. visited spans the package pass, so a
// shared callee is analyzed once; callees that are hot roots themselves are
// covered by their own package's pass.
func checkHotFunc(p *Pass, pkg *Package, fd *ast.FuncDecl, fn *types.Func, root string, visited map[*types.Func]bool) {
	if visited[fn] || fd.Body == nil {
		return
	}
	visited[fn] = true
	info := pkg.Info
	where := funcDisplayName(fn)
	report := func(n ast.Node, hint, what string) {
		p.Reportf(n.Pos(), hint, "%s in %s (hot via %s)", what, where, root)
	}

	// handled marks nodes cleared by an enclosing construct: append calls
	// matched by the reuse idiom, func literals that are deferred or
	// invoked in place.
	handled := make(map[ast.Node]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n, "hot paths are single-threaded; schedule through the event engine",
				"go statement spawns a goroutine")
		case *ast.DeferStmt:
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				handled[fl] = true // open-coded defer, stack-allocated
			}
		case *ast.AssignStmt:
			if _, ok := appendTarget(info, n); ok {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && len(call.Args) == 2 && !call.Ellipsis.IsValid() {
					handled[call] = true // x = append(x, one): amortised reuse
				}
			}
		case *ast.FuncLit:
			if !handled[n] {
				report(n, "hoist the closure out of the hot path or restructure to a method value",
					"closure capture allocates")
			}
			handled[n] = true // don't descend re-reporting inner nodes twice
		case *ast.UnaryExpr:
			if cl, ok := n.X.(*ast.CompositeLit); ok && n.Op.String() == "&" {
				report(n, "pool the object (free list) or reuse a struct field",
					"&composite literal escapes to the heap")
				handled[cl] = true
			}
		case *ast.CompositeLit:
			if handled[n] {
				break
			}
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n, "preallocate the backing storage outside the hot loop",
						"slice/map literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t := info.TypeOf(n); t != nil && types.AssignableTo(t, types.Typ[types.String]) {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n, "format off the hot path, or write into a reused []byte",
							"string concatenation allocates")
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(p, pkg, n, report, handled, root, visited)
		}
		return true
	})
}

func checkHotCall(p *Pass, pkg *Package, call *ast.CallExpr, report func(ast.Node, string, string), handled map[ast.Node]bool, root string, visited map[*types.Func]bool) {
	info := pkg.Info
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		handled[fl] = true // immediately invoked, stays on the stack
		return
	}
	if target, ok := isConversion(info, call); ok {
		checkHotConversion(info, call, target, report)
		return
	}
	switch {
	case isBuiltin(info, call, "make"):
		report(call, "allocate once at construction and reuse", "make allocates")
		return
	case isBuiltin(info, call, "new"):
		report(call, "allocate once at construction and reuse", "new allocates")
		return
	case isBuiltin(info, call, "append"):
		if !handled[call] {
			report(call, "use the self-append reuse idiom `x = append(x, elem)` or preallocate",
				"append may grow and allocate")
		}
		return
	}
	fn := calleeOf(info, call)
	if fn == nil {
		return // dynamic call: outside the static closure
	}
	if isPkgFunc(fn, "fmt") {
		report(call, "move formatting off the hot path", "fmt."+fn.Name()+" allocates")
		return
	}
	checkBoxing(info, call, fn, report)
	// Descend into module callees we have source for, unless the callee is
	// itself a hot root (its own pass covers it).
	cpkg, decl := p.L.FuncDecl(fn)
	if decl == nil || hasDirective(decl.Doc, directiveHotPath) {
		return
	}
	checkHotFunc(p, cpkg, decl, fn, root, visited)
}

// checkHotConversion flags converting between strings and byte/rune slices,
// which copies through a fresh allocation.
func checkHotConversion(info *types.Info, call *ast.CallExpr, target types.Type, report func(ast.Node, string, string)) {
	if len(call.Args) != 1 {
		return
	}
	src := info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	tIsString := isStringType(target)
	sIsString := isStringType(src)
	_, tIsSlice := target.Underlying().(*types.Slice)
	_, sIsSlice := src.Underlying().(*types.Slice)
	if (tIsString && sIsSlice) || (tIsSlice && sIsString) {
		report(call, "keep one representation across the hot path",
			"string <-> slice conversion copies and allocates")
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// checkBoxing flags arguments boxed into interface parameters: the concrete
// value escapes to the heap unless it is pointer-shaped.
func checkBoxing(info *types.Info, call *ast.CallExpr, fn *types.Func, report func(ast.Node, string, string)) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(arg, "take a concrete parameter type, or pass a pointer",
			"interface boxing of "+at.String()+" allocates")
	}
}
