package analysis

import (
	"strings"
	"testing"
)

// These tests pin the branch behavior of the concurrency analyzers on the
// statement and expression forms the fixtures do not reach: every compound
// statement kind under a held lock, closures in call-argument position,
// named-function goroutines, and package-level atomics. Each source is a
// complete module; wantFindings asserts the exact diagnostics in source
// order (the driver sorts by position).

func runOn(t *testing.T, src string, ans ...*Analyzer) []Diagnostic {
	t.Helper()
	diags, err := Run(writeModule(t, src), []string{"./..."}, ans)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func wantFindings(t *testing.T, diags []Diagnostic, subs ...string) {
	t.Helper()
	if len(diags) != len(subs) {
		t.Fatalf("got %d findings, want %d:\n%+v", len(diags), len(subs), diags)
	}
	for i, sub := range subs {
		if !strings.Contains(diags[i].Message, sub) {
			t.Errorf("finding %d = %q, want substring %q", i, diags[i].Message, sub)
		}
	}
}

// TestLockDiscStatementForms drives guarded accesses through every compound
// statement the lexical walker models — switch with init and tag, type
// switch, select, labeled loops, range, for with init/cond/post, deferred
// and spawned calls with guarded arguments, and closures that run
// synchronously inside the locked region (sort.Search comparators,
// immediately-invoked literals). All of it holds the lock, so all of it is
// clean.
func TestLockDiscStatementForms(t *testing.T) {
	src := `package export

import (
	"sort"
	"sync"
)

type table struct {
	mu sync.Mutex
	//depburst:guardedby mu
	m map[string]int
	//depburst:guardedby mu
	n int
}

func (t *table) Forms(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch v := t.m[k]; v {
	case 0:
		t.n++
	default:
		t.n = v
	}
	switch x := interface{}(t.n).(type) {
	case int:
		t.n = x
	}
	for i := 0; i < t.n; i++ {
		t.m[k] = i
	}
	for range t.m {
		t.n--
	}
loop:
	for {
		if t.n > 0 {
			break loop
		}
		delete(t.m, k)
	}
	return t.n
}

func (t *table) Wait(ch chan int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case v := <-ch:
		t.n = v
	default:
		t.n++
	}
}

func (t *table) Rank() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return sort.Search(8, func(i int) bool { return i >= t.n })
}

func (t *table) Imm() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return func() int { return t.n }()
}

func (t *table) sink(int) {}

func (t *table) Handoff() {
	t.mu.Lock()
	defer t.mu.Unlock()
	defer t.sink(t.n)
	defer func(v int) { t.sink(v) }(t.n)
	go t.sink(t.n)
}
`
	wantFindings(t, runOn(t, src, LockDisc))
}

// TestLockDiscEscapingClosures: a closure that is stored or deferred may run
// after the lock is released, so its guarded accesses are analyzed
// lock-free — unlike the call-argument closures above. A //depburst:locked
// directive on a plain function (no receiver to key the mutex to) protects
// nothing.
func TestLockDiscEscapingClosures(t *testing.T) {
	src := `package export

import "sync"

type table struct {
	mu sync.Mutex
	//depburst:guardedby mu
	n int
}

func (t *table) Stored() func() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	f := func() int { return t.n }
	return f
}

func (t *table) Cleanup() {
	t.mu.Lock()
	defer t.mu.Unlock()
	defer func() { t.n = 0 }()
}

//depburst:locked mu
func orphan(t *table) {
	t.n++
}
`
	wantFindings(t, runOn(t, src, LockDisc),
		"read of n guarded by t.mu without holding the lock",
		"write to n guarded by t.mu without holding the lock",
		"write to n guarded by t.mu without holding the lock",
	)
}

// TestLockDiscIndexAndImposterLock: taking the address of a guarded slice
// element is a write (the pointer escapes the lock), element increments
// under the lock are fine, and a Lock method on a non-sync type does not
// satisfy the guard.
func TestLockDiscIndexAndImposterLock(t *testing.T) {
	src := `package export

import "sync"

type grid struct {
	mu sync.Mutex
	//depburst:guardedby mu
	cells []int
}

func (g *grid) Pin(i int) *int {
	return &g.cells[i]
}

func (g *grid) Bump(i int) {
	g.mu.Lock()
	g.cells[i]++
	g.mu.Unlock()
}

type fakeLock struct{}

func (fakeLock) Lock()   {}
func (fakeLock) Unlock() {}

type odd struct {
	fl fakeLock
	mu sync.Mutex
	//depburst:guardedby mu
	x int
}

func (o *odd) Use() {
	o.fl.Lock()
	o.x++
	o.fl.Unlock()
}
`
	wantFindings(t, runOn(t, src, LockDisc),
		"write to cells guarded by g.mu without holding the lock",
		"write to x guarded by o.mu without holding the lock",
	)
}

// TestGoLifeNamedAndNested: go statements over named module functions are
// resolved to their declarations; function values stay dynamic. A break
// inside a nested bounded loop does not exit the outer unbounded one, while
// a receive-and-break in the loop itself does. A custom Done method counts
// as a join.
func TestGoLifeNamedAndNested(t *testing.T) {
	src := `package export

func spin() {
	for {
	}
}

func step() {}

func SpawnNamed() { go spin() }

func SpawnStep() { go step() }

func SpawnDyn(f func()) { go f() }

func DrainQuit(quit chan int) {
	go func() {
		for {
			if _, ok := <-quit; !ok {
				break
			}
		}
	}()
}

func NestedBreak(ch chan int) {
	go func() {
		for {
			for i := 0; i < 3; i++ {
				break
			}
			<-ch
		}
	}()
}

type counter struct{}

func (counter) Done() {}

func JoinedCustom(c counter, ch chan int) {
	go func() {
		defer c.Done()
		for {
			<-ch
		}
	}()
}
`
	wantFindings(t, runOn(t, src, GoLife),
		"goroutine loop has no termination path",
		"go statement spawns a dynamically-resolved function",
		"goroutine loop has no termination path",
	)
}

// TestGoLifeCapturedWriteBranches: every statement form inside a go closure
// that can carry an unsynchronized captured write is flagged, and a write
// wrapped in sync.Once.Do is not.
func TestGoLifeCapturedWriteBranches(t *testing.T) {
	src := `package export

import "sync"

func RacyBranch(ch chan int, mode int) {
	hits := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		switch mode {
		case 1:
			hits++
		}
		select {
		case v := <-ch:
			hits = v
		}
		if mode > 2 {
			hits--
		} else {
			hits = 9
		}
		for range ch {
			hits++
		}
	}()
	wg.Wait()
	_ = hits
}

func OnceFlag(n int) {
	var once sync.Once
	flag := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		once.Do(func() { flag = n })
	}()
	wg.Wait()
	_ = flag
}
`
	wantFindings(t, runOn(t, src, GoLife),
		"writes captured variable hits",
		"writes captured variable hits",
		"writes captured variable hits",
		"writes captured variable hits",
		"writes captured variable hits",
	)
}

// TestChanProtoIdioms: the sanctioned shapes the fixture wall does not
// cover — len/cap as neutral uses, escape through a function argument,
// close-then-return inside a select case in a loop (one execution), closes
// in mutually exclusive switch cases and select cases, and a close inside a
// closure built in a loop (the closure boundary resets the iteration
// context). All clean, under both chanproto and golife.
func TestChanProtoIdioms(t *testing.T) {
	src := `package export

func Gauge(items []int) int {
	ch := make(chan int, len(items))
	for _, v := range items {
		ch <- v
	}
	for range items {
		<-ch
	}
	return len(ch) + cap(ch)
}

func Handoff(sink func(chan int)) {
	ch := make(chan int)
	sink(ch)
	ch <- 1
}

func Fanin(done chan struct{}, src chan int) int {
	out := make(chan int)
	go func() {
		for {
			select {
			case <-done:
				close(out)
				return
			case v := <-src:
				out <- v
			}
		}
	}()
	total := 0
	for v := range out {
		total += v
	}
	return total
}

func Modal(mode int) {
	ch := make(chan int, 1)
	ch <- mode
	<-ch
	switch mode {
	case 0:
		close(ch)
	default:
		close(ch)
	}
}

func Either(a, b chan struct{}) {
	ch := make(chan int, 1)
	ch <- 1
	<-ch
	select {
	case <-a:
		close(ch)
	case <-b:
		close(ch)
	}
}

func PerItem(items []int) {
	ch := make(chan int, 1)
	ch <- 1
	<-ch
	var closer func()
	for range items {
		closer = func() { close(ch) }
	}
	if closer != nil {
		closer()
	}
}
`
	wantFindings(t, runOn(t, src, ChanProto, GoLife))
}

// TestAtomicPackageVars: the all-or-nothing rule applies to package-level
// variables reached as bare identifiers, and each mutating context — plain
// assignment, increment, address escape — is classified as a write.
func TestAtomicPackageVars(t *testing.T) {
	src := `package export

import "sync/atomic"

var hits int64

func Bump() { atomic.AddInt64(&hits, 1) }

func Read() int64 { return hits }

var total int64

func Add() { atomic.AddInt64(&total, 2) }

func Reset() { total = 0 }

func Inc() { total++ }

func Leak() *int64 { return &total }
`
	wantFindings(t, runOn(t, src, AtomicCheck),
		"plain read of hits",
		"plain write of total",
		"plain write of total",
		"plain write of total",
	)
}
