package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestSARIFSchemaStable pins the SARIF 2.1.0 contract: the keys code-
// scanning consumers navigate ($schema, version, runs[0].tool.driver.rules,
// runs[0].results with ruleId/level/message/locations) must not drift.
func TestSARIFSchemaStable(t *testing.T) {
	var buf strings.Builder
	count, err := Lint(LintConfig{
		Dir:       fixRoot,
		Patterns:  []string{"./lockdisc"},
		Analyzers: []string{"lockdisc"},
		SARIF:     true,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("expected findings on the lockdisc fixture")
	}

	var top map[string]json.RawMessage
	if err := json.Unmarshal([]byte(buf.String()), &top); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	for _, key := range []string{"$schema", "version", "runs"} {
		if _, ok := top[key]; !ok {
			t.Errorf("missing top-level key %q", key)
		}
	}
	var version string
	if err := json.Unmarshal(top["version"], &version); err != nil || version != "2.1.0" {
		t.Errorf("version = %s, want \"2.1.0\"", top["version"])
	}

	var runs []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID               string `json:"id"`
					ShortDescription struct {
						Text string `json:"text"`
					} `json:"shortDescription"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID  string `json:"ruleId"`
			Level   string `json:"level"`
			Message struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI string `json:"uri"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine   int `json:"startLine"`
						StartColumn int `json:"startColumn"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
		} `json:"results"`
	}
	if err := json.Unmarshal(top["runs"], &runs); err != nil {
		t.Fatalf("runs: %v", err)
	}
	if len(runs) != 1 {
		t.Fatalf("len(runs) = %d, want 1", len(runs))
	}
	if runs[0].Tool.Driver.Name != "depburst lint" {
		t.Errorf("driver name = %q", runs[0].Tool.Driver.Name)
	}
	if len(runs[0].Tool.Driver.Rules) != 1 || runs[0].Tool.Driver.Rules[0].ID != "lockdisc" {
		t.Errorf("rules = %+v, want the selected analyzer only", runs[0].Tool.Driver.Rules)
	}
	if len(runs[0].Results) != count {
		t.Fatalf("len(results) = %d, want %d", len(runs[0].Results), count)
	}
	r := runs[0].Results[0]
	if r.RuleID != "lockdisc" || r.Level != "error" || r.Message.Text == "" {
		t.Errorf("result shape wrong: %+v", r)
	}
	loc := r.Locations[0].PhysicalLocation
	if !strings.HasPrefix(loc.ArtifactLocation.URI, "lockdisc/") || loc.Region.StartLine == 0 || loc.Region.StartColumn == 0 {
		t.Errorf("location shape wrong: %+v", loc)
	}
}

// TestSARIFByteDeterministic requires byte-identical SARIF and JSON reports
// across repeated runs and across GOMAXPROCS settings — the lint report is
// an export, so the repo's determinism invariant applies to it.
func TestSARIFByteDeterministic(t *testing.T) {
	render := func(sarif bool) string {
		var buf strings.Builder
		_, err := Lint(LintConfig{Dir: fixRoot, SARIF: sarif, JSON: !sarif}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	for _, sarif := range []bool{true, false} {
		first := render(sarif)
		prev := runtime.GOMAXPROCS(8)
		second := render(sarif)
		runtime.GOMAXPROCS(prev)
		if first != second {
			t.Errorf("sarif=%v report differs across runs/-j settings:\n--- first ---\n%s--- second ---\n%s", sarif, first, second)
		}
	}
}

// TestBaselineRoundTrip covers the strict-on-new-code loop: write a
// baseline, re-run against it (zero findings), then introduce a new
// violation and require that only the new finding surfaces.
func TestBaselineRoundTrip(t *testing.T) {
	dir := writeModule(t, atomicSrc)
	mutated := strings.Replace(atomicSrc, "atomic.LoadInt64(&s.hits)", "s.hits", 1)
	if err := os.WriteFile(filepath.Join(dir, "export", "export.go"), []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "lint.baseline")

	var buf strings.Builder
	count, err := Lint(LintConfig{Dir: dir, Baseline: base, WriteBaseline: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("write-baseline run should report clean, got %d", count)
	}
	if !strings.Contains(buf.String(), "1 finding(s) baselined") {
		t.Errorf("write-baseline should report what it recorded: %s", buf.String())
	}

	buf.Reset()
	count, err = Lint(LintConfig{Dir: dir, Baseline: base}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("baselined run should be clean, got %d:\n%s", count, buf.String())
	}

	// A second copy of the same violation exceeds the baselined count and
	// is reported as new.
	doubled := mutated + `
func (s *stats) ReadAgain() int64 {
	return s.hits
}
`
	if err := os.WriteFile(filepath.Join(dir, "export", "export.go"), []byte(doubled), 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	count, err = Lint(LintConfig{Dir: dir, Baseline: base}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("new finding should survive the baseline, got %d:\n%s", count, buf.String())
	}
	if !strings.Contains(buf.String(), "plain read of hits") {
		t.Errorf("surviving finding should be the new violation:\n%s", buf.String())
	}
}

// TestBaselineMissingFileIsEmpty: pointing -baseline at a nonexistent file
// suppresses nothing and does not error, so fresh checkouts work.
func TestBaselineMissingFileIsEmpty(t *testing.T) {
	dir := writeModule(t, strings.Replace(atomicSrc, "atomic.LoadInt64(&s.hits)", "s.hits", 1))
	var buf strings.Builder
	count, err := Lint(LintConfig{Dir: dir, Baseline: filepath.Join(t.TempDir(), "absent")}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("missing baseline must suppress nothing, got %d", count)
	}
}

// TestBaselineVersionPinned: a future-versioned baseline is rejected
// instead of silently mis-suppressing.
func TestBaselineVersionPinned(t *testing.T) {
	base := filepath.Join(t.TempDir(), "lint.baseline")
	if err := os.WriteFile(base, []byte(`{"version": 99, "entries": []}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(base); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("future version must be rejected, got err=%v", err)
	}
}

// TestLintConfigExclusivity: -json/-sarif conflict and -write-baseline
// without a path are usage errors, not silent choices.
func TestLintConfigExclusivity(t *testing.T) {
	var buf strings.Builder
	if _, err := Lint(LintConfig{Dir: fixRoot, JSON: true, SARIF: true}, &buf); err == nil {
		t.Error("JSON+SARIF should be rejected")
	}
	if _, err := Lint(LintConfig{Dir: fixRoot, WriteBaseline: true}, &buf); err == nil {
		t.Error("WriteBaseline without Baseline should be rejected")
	}
}

// TestFingerprintStability pins the fingerprint inputs: position-
// independent (line moves do not resurface a suppressed finding) but
// sensitive to analyzer, file, and message.
func TestFingerprintStability(t *testing.T) {
	d := Diagnostic{Analyzer: "lockdisc", File: "a/b.go", Line: 10, Col: 2, Message: "m"}
	moved := d
	moved.Line, moved.Col = 99, 7
	if d.Fingerprint() != moved.Fingerprint() {
		t.Error("fingerprint must ignore position")
	}
	for _, alt := range []Diagnostic{
		{Analyzer: "golife", File: "a/b.go", Message: "m"},
		{Analyzer: "lockdisc", File: "a/c.go", Message: "m"},
		{Analyzer: "lockdisc", File: "a/b.go", Message: "other"},
	} {
		if alt.Fingerprint() == d.Fingerprint() {
			t.Errorf("fingerprint collision with %+v", alt)
		}
	}
	if len(d.Fingerprint()) != 16 {
		t.Errorf("fingerprint length = %d, want 16 hex digits", len(d.Fingerprint()))
	}
}
