package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baselines let a new analyzer land strict-on-new-code: existing findings
// are recorded once by stable fingerprint, suppressed on later runs, and any
// finding not in the file still fails the build. The fingerprint is
// analyzer + file + message — deliberately not the line number, so an
// unrelated edit that shifts a suppressed finding down the file does not
// resurface it. Two identical findings in one file (same analyzer, same
// message) share a fingerprint; the baseline stores a count and suppresses
// at most that many, so introducing a third copy of a baselined bug is
// still reported.

// baselineVersion pins the file format; a reader rejects other versions
// instead of mis-suppressing.
const baselineVersion = 1

// baselineEntry is one (fingerprint, count) pair. Entries are sorted by
// fingerprint so the written file is byte-deterministic.
type baselineEntry struct {
	Fingerprint string `json:"fingerprint"`
	Count       int    `json:"count"`
}

// baselineFile is the on-disk shape. Keys are pinned by the baseline
// round-trip test.
type baselineFile struct {
	Version int             `json:"version"`
	Entries []baselineEntry `json:"entries"`
}

// Fingerprint returns the diagnostic's stable identity for baselining:
// the first 16 hex digits of sha256(analyzer NUL file NUL message).
func (d Diagnostic) Fingerprint() string {
	h := sha256.Sum256([]byte(d.Analyzer + "\x00" + d.File + "\x00" + d.Message))
	return hex.EncodeToString(h[:8])
}

// WriteBaseline records diags into path, replacing any previous baseline.
func WriteBaseline(path string, diags []Diagnostic) error {
	counts := make(map[string]int)
	for _, d := range diags {
		counts[d.Fingerprint()]++
	}
	entries := make([]baselineEntry, 0, len(counts))
	for fp, n := range counts {
		entries = append(entries, baselineEntry{Fingerprint: fp, Count: n})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Fingerprint < entries[j].Fingerprint })
	data, err := json.MarshalIndent(baselineFile{Version: baselineVersion, Entries: entries}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaseline loads a baseline written by WriteBaseline. A missing file is
// not an error — it behaves as an empty baseline, so a fresh checkout can
// run `lint -baseline lint.baseline` before anyone has written one.
func ReadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]int{}, nil
	}
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %w", path, err)
	}
	if bf.Version != baselineVersion {
		return nil, fmt.Errorf("analysis: baseline %s: version %d, want %d", path, bf.Version, baselineVersion)
	}
	counts := make(map[string]int, len(bf.Entries))
	for _, e := range bf.Entries {
		counts[e.Fingerprint] += e.Count
	}
	return counts, nil
}

// FilterBaseline drops diagnostics covered by the baseline, consuming at
// most the recorded count per fingerprint in the diags' (sorted) order.
// What remains is new relative to the baseline.
func FilterBaseline(diags []Diagnostic, baseline map[string]int) []Diagnostic {
	if len(baseline) == 0 {
		return diags
	}
	budget := make(map[string]int, len(baseline))
	for fp, n := range baseline {
		budget[fp] = n
	}
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		fp := d.Fingerprint()
		if budget[fp] > 0 {
			budget[fp]--
			continue
		}
		out = append(out, d)
	}
	return out
}
