package analysis

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestLintJSONSchema pins the -json contract: top-level keys, diagnostic
// keys, and the version number. CI and editor integrations parse this.
func TestLintJSONSchema(t *testing.T) {
	var buf strings.Builder
	count, err := Lint(LintConfig{
		Dir:       fixRoot,
		Patterns:  []string{"./goldenio"},
		Analyzers: []string{"goldenio"},
		JSON:      true,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("expected findings on the goldenio fixture")
	}

	var top map[string]json.RawMessage
	if err := json.Unmarshal([]byte(buf.String()), &top); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	for _, key := range []string{"version", "count", "diagnostics"} {
		if _, ok := top[key]; !ok {
			t.Errorf("missing top-level key %q", key)
		}
	}
	if len(top) != 3 {
		t.Errorf("top-level keys changed: %d keys", len(top))
	}
	var version int
	if err := json.Unmarshal(top["version"], &version); err != nil || version != 1 {
		t.Errorf("version = %s, want 1", top["version"])
	}
	var n int
	if err := json.Unmarshal(top["count"], &n); err != nil || n != count {
		t.Errorf("count = %s, want %d", top["count"], count)
	}

	var diags []map[string]any
	if err := json.Unmarshal(top["diagnostics"], &diags); err != nil {
		t.Fatalf("diagnostics: %v", err)
	}
	if len(diags) != count {
		t.Fatalf("len(diagnostics) = %d, want %d", len(diags), count)
	}
	for _, key := range []string{"analyzer", "file", "line", "col", "message", "hint"} {
		if _, ok := diags[0][key]; !ok {
			t.Errorf("missing diagnostic key %q", key)
		}
	}
}

// TestLintJSONEmptyDiagnostics: a clean run must emit an empty array, not
// null, so `jq '.diagnostics[]'` always works.
func TestLintJSONEmptyDiagnostics(t *testing.T) {
	var buf strings.Builder
	count, err := Lint(LintConfig{Dir: fixRoot, Patterns: []string{"./clean"}, JSON: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("clean fixture produced %d findings", count)
	}
	if !strings.Contains(buf.String(), "\"diagnostics\": []") {
		t.Errorf("empty run must marshal diagnostics as []:\n%s", buf.String())
	}
}

// TestLintText covers the human format, with and without fix hints.
func TestLintText(t *testing.T) {
	var buf strings.Builder
	count, err := Lint(LintConfig{
		Dir:       fixRoot,
		Patterns:  []string{"./goldenio"},
		Analyzers: []string{"goldenio"},
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "goldenio/goldenio.go:") || !strings.Contains(out, "[goldenio]") {
		t.Errorf("text output missing position or analyzer tag:\n%s", out)
	}
	if !strings.Contains(out, "issue(s) found") {
		t.Errorf("text output missing summary line:\n%s", out)
	}
	if strings.Contains(out, "fix:") {
		t.Errorf("hints printed without FixHints:\n%s", out)
	}

	buf.Reset()
	if _, err := Lint(LintConfig{
		Dir:       fixRoot,
		Patterns:  []string{"./goldenio"},
		Analyzers: []string{"goldenio"},
		FixHints:  true,
	}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fix: collect the keys") {
		t.Errorf("FixHints output missing hint lines:\n%s", buf.String())
	}
	_ = count
}

// TestLintUnknownAnalyzer: selection errors surface instead of silently
// running nothing.
func TestLintUnknownAnalyzer(t *testing.T) {
	if _, err := Lint(LintConfig{Dir: fixRoot, Analyzers: []string{"nope"}}, &strings.Builder{}); err == nil {
		t.Fatal("expected an error for an unknown analyzer")
	}
	if _, err := ByName([]string{"determinism", "hotpath"}); err != nil {
		t.Fatalf("known analyzers must resolve: %v", err)
	}
}

// TestLintBadDir: a missing module root or an unmatched pattern is an
// error, not a clean run.
func TestLintBadDir(t *testing.T) {
	if _, err := Lint(LintConfig{Dir: "testdata/does-not-exist"}, &strings.Builder{}); err == nil {
		t.Fatal("expected an error for a missing module root")
	}
	if _, err := Lint(LintConfig{Dir: fixRoot, Patterns: []string{"./no-such/..."}}, &strings.Builder{}); err == nil {
		t.Fatal("expected an error for an unmatched pattern")
	}
}
