package analysis

import (
	"go/ast"
	"strings"
)

// The repo's analysis directives. Directives are machine-readable comments
// (no space after "//", like //go:noinline), so gofmt leaves them alone and
// ast.CommentGroup.Text — which strips directives — never hides them from
// humans reading the rendered docs.
const (
	// directiveHotPath marks a function as an allocation-free hot path
	// root; the hotpath analyzer checks it and its statically-resolved
	// module callees.
	directiveHotPath = "//depburst:hotpath"
	// directiveNilTolerant asserts a registry method tolerates a nil
	// receiver by construction (e.g. it only delegates to guarded
	// methods); the nilreg analyzer trusts it instead of requiring a
	// leading nil guard.
	directiveNilTolerant = "//depburst:niltolerant"
	// directiveGuardedBy marks a struct field as protected by a sibling
	// mutex field:
	//
	//	//depburst:guardedby <mu>
	//
	// on the field's doc or trailing comment. The lockdisc analyzer then
	// requires every read/write of the field to hold <mu> (name an embedded
	// mutex by its type name, "Mutex"/"RWMutex").
	directiveGuardedBy = "//depburst:guardedby"
	// directiveLocked asserts a helper is only called with the receiver's
	// named mutex already held:
	//
	//	//depburst:locked <mu>
	//
	// lockdisc analyzes the body as if <mu> were write-held on entry. The
	// call-site obligation is the caller's, documented by the annotation.
	directiveLocked = "//depburst:locked"
	// directiveDaemon sanctions one go statement as an intentionally
	// process-lifetime goroutine:
	//
	//	//depburst:daemon -- <reason>
	//
	// on the go statement's line or the line above. The reason is mandatory;
	// golife ignores the directive without one.
	directiveDaemon = "//depburst:daemon"
	// directiveAllow suppresses one analyzer on the line it annotates:
	//
	//	//depburst:allow <analyzer> <reason...>
	//
	// placed at the end of the offending line or on its own line directly
	// above it. The reason is mandatory by convention: an unexplained
	// exemption is a review smell.
	directiveAllow = "//depburst:allow"
)

// hasDirective reports whether a doc comment carries the given directive.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if text, ok := strings.CutPrefix(c.Text, directive); ok {
			if text == "" || text[0] == ' ' || text[0] == '\t' {
				return true
			}
		}
	}
	return false
}

// recordAllows indexes every //depburst:allow directive in f. A directive
// applies to its own source line and the line below, covering both the
// trailing-comment and the standalone-comment placements.
func (l *Loader) recordAllows(f *ast.File) {
	for _, grp := range f.Comments {
		for _, c := range grp.List {
			rest, ok := strings.CutPrefix(c.Text, directiveAllow)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			name := fields[0]
			pos := l.Fset.Position(c.Pos())
			lines := l.allow[pos.Filename]
			if lines == nil {
				lines = make(map[int][]string)
				l.allow[pos.Filename] = lines
			}
			lines[pos.Line] = append(lines[pos.Line], name)
			lines[pos.Line+1] = append(lines[pos.Line+1], name)
		}
	}
}

// allowed reports whether diagnostics from the named analyzer are suppressed
// at file:line by an //depburst:allow directive.
func (l *Loader) allowed(file string, line int, analyzer string) bool {
	for _, name := range l.allow[file][line] {
		if name == analyzer {
			return true
		}
	}
	return false
}
