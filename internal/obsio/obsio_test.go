package obsio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"depburst/internal/core"
	"depburst/internal/cpu"
	"depburst/internal/kernel"
)

func sampleObs() *core.Observation {
	return &core.Observation{
		Base:  1000,
		Total: 5000,
		Threads: []core.ThreadObs{
			{TID: 0, Name: "main", Class: kernel.ClassApp, Start: 0, End: 5000,
				C: cpu.Counters{Active: 4000, CritNS: 700, SQFull: 100, Instrs: 9999}},
		},
		Epochs: []kernel.Epoch{
			{Start: 0, End: 2000, StallTID: 0, EndKind: kernel.BoundarySleep,
				Slices: []kernel.ThreadSlice{{TID: 0, Delta: cpu.Counters{Active: 2000, CritNS: 300}}}},
			{Start: 2000, End: 5000, StallTID: kernel.NoThread, EndKind: kernel.BoundaryExit,
				Slices: []kernel.ThreadSlice{{TID: 0, Delta: cpu.Counters{Active: 2000, CritNS: 400}}}},
		},
		Marks: []kernel.Mark{{At: 2000, Label: "gc-start"}},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	obs := sampleObs()
	if err := Write(&buf, "demo", obs); err != nil {
		t.Fatal(err)
	}
	name, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "demo" {
		t.Errorf("workload %q", name)
	}
	if got.Base != obs.Base || got.Total != obs.Total {
		t.Errorf("base/total changed: %+v", got)
	}
	if len(got.Threads) != 1 || got.Threads[0].C != obs.Threads[0].C {
		t.Errorf("threads changed: %+v", got.Threads)
	}
	if len(got.Epochs) != 2 || got.Epochs[0].Slices[0].Delta != obs.Epochs[0].Slices[0].Delta {
		t.Errorf("epochs changed: %+v", got.Epochs)
	}
	if len(got.Marks) != 1 || got.Marks[0].Label != "gc-start" {
		t.Errorf("marks changed: %+v", got.Marks)
	}

	// Predictions agree between original and round-tripped observation.
	m := core.NewDEPBurst()
	if a, b := m.Predict(obs, 4000), m.Predict(got, 4000); a != b {
		t.Errorf("prediction changed across round trip: %v vs %v", a, b)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.json")
	if err := WriteFile(path, "f", sampleObs()); err != nil {
		t.Fatal(err)
	}
	name, got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != "f" || got == nil {
		t.Error("file round trip lost data")
	}
}

func TestVersionRejected(t *testing.T) {
	var buf bytes.Buffer
	Write(&buf, "x", sampleObs())
	raw := strings.Replace(buf.String(), `"version":1`, `"version":99`, 1)
	if _, _, err := Read(strings.NewReader(raw)); err == nil {
		t.Error("future version accepted")
	}
}

func TestGarbageRejected(t *testing.T) {
	if _, _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if err := Write(&bytes.Buffer{}, "x", nil); err == nil {
		t.Error("nil observation accepted")
	}
}

func TestValidation(t *testing.T) {
	bad := sampleObs()
	bad.Base = 0
	var buf bytes.Buffer
	Write(&buf, "x", bad)
	if _, _, err := Read(&buf); err == nil {
		t.Error("zero base frequency accepted")
	}

	bad = sampleObs()
	bad.Epochs[1].Start = 1000 // overlaps epoch 0
	buf.Reset()
	Write(&buf, "x", bad)
	if _, _, err := Read(&buf); err == nil {
		t.Error("overlapping epochs accepted")
	}

	bad = sampleObs()
	bad.Threads[0].End = -1
	buf.Reset()
	Write(&buf, "x", bad)
	if _, _, err := Read(&buf); err == nil {
		t.Error("inverted thread lifetime accepted")
	}
}
