package obsio

import (
	"bytes"
	"reflect"
	"testing"

	"depburst/internal/core"
	"depburst/internal/cpu"
	"depburst/internal/kernel"
)

// seedObservation is a small valid recording for the fuzz corpus.
func seedObservation() *core.Observation {
	return &core.Observation{
		Base:  1000,
		Total: 5_000_000,
		Threads: []core.ThreadObs{
			{TID: 0, Name: "main", Class: kernel.ClassApp, Start: 0, End: 5_000_000,
				C: cpu.Counters{Instrs: 1000, Active: 4_000_000, CritNS: 500_000}},
		},
		Epochs: []kernel.Epoch{
			{Start: 0, End: 2_000_000, StallTID: 0, EndKind: kernel.BoundarySleep,
				Slices: []kernel.ThreadSlice{{TID: 0, Delta: cpu.Counters{Instrs: 600, Active: 2_000_000}}}},
			{Start: 2_000_000, End: 5_000_000, StallTID: kernel.NoThread, EndKind: kernel.BoundaryWake},
		},
		Marks: []kernel.Mark{{At: 1_000_000, Label: "gc-start"}},
	}
}

// FuzzObsRoundTrip feeds arbitrary bytes to the observation reader. Any
// input the reader accepts must survive Write -> Read unchanged, and the
// written form must be canonical (a second Write of the re-read
// observation is byte-identical).
func FuzzObsRoundTrip(f *testing.F) {
	var buf bytes.Buffer
	if err := Write(&buf, "seed", seedObservation()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"observation":{"Base":1000,"Total":5}}`))
	f.Add([]byte(`{"version":2,"observation":{"Base":1000}}`))
	f.Add([]byte(`{"version":1,"workload":"w","observation":{"Base":-1}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		name, obs, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: nothing else to check
		}
		var out bytes.Buffer
		if err := Write(&out, name, obs); err != nil {
			t.Fatalf("accepted observation failed to write: %v", err)
		}
		name2, obs2, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written observation failed: %v", err)
		}
		if name != name2 {
			t.Fatalf("workload changed across round trip: %q -> %q", name, name2)
		}
		if !reflect.DeepEqual(obs, obs2) {
			t.Fatalf("observation changed across round trip:\nbefore: %+v\nafter:  %+v", obs, obs2)
		}
		var out2 bytes.Buffer
		if err := Write(&out2, name2, obs2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("written form is not canonical: two writes of the same observation differ")
		}
	})
}
