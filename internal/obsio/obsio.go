// Package obsio serialises predictor observations to and from JSON, so a
// run's counters and epoch stream can be recorded once and analysed
// offline — the way a deployed DEP+BURST would be used (collect cheap
// counters online, decide or study offline).
package obsio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"depburst/internal/core"
)

// formatVersion guards against loading observations written by an
// incompatible build.
const formatVersion = 1

// envelope wraps an observation with versioning metadata.
type envelope struct {
	Version  int               `json:"version"`
	Workload string            `json:"workload,omitempty"`
	Obs      *core.Observation `json:"observation"`
}

// Write serialises obs to w as versioned JSON.
func Write(w io.Writer, workload string, obs *core.Observation) error {
	if obs == nil {
		return fmt.Errorf("obsio: nil observation")
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(envelope{Version: formatVersion, Workload: workload, Obs: obs}); err != nil {
		return fmt.Errorf("obsio: encode: %w", err)
	}
	return bw.Flush()
}

// Read deserialises an observation written by Write.
func Read(r io.Reader) (workload string, obs *core.Observation, err error) {
	var env envelope
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&env); err != nil {
		return "", nil, fmt.Errorf("obsio: decode: %w", err)
	}
	if env.Version != formatVersion {
		return "", nil, fmt.Errorf("obsio: unsupported format version %d (want %d)", env.Version, formatVersion)
	}
	if env.Obs == nil {
		return "", nil, fmt.Errorf("obsio: no observation in file")
	}
	if err := validate(env.Obs); err != nil {
		return "", nil, err
	}
	return env.Workload, env.Obs, nil
}

// WriteFile records obs to path.
func WriteFile(path, workload string, obs *core.Observation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, workload, obs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads an observation from path.
func ReadFile(path string) (string, *core.Observation, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, err
	}
	defer f.Close()
	return Read(f)
}

// validate rejects observations that would make predictors misbehave.
func validate(obs *core.Observation) error {
	if obs.Base <= 0 {
		return fmt.Errorf("obsio: non-positive base frequency %v", obs.Base)
	}
	if obs.Total < 0 {
		return fmt.Errorf("obsio: negative total time %v", obs.Total)
	}
	var prevEnd int64 = -1
	for i, ep := range obs.Epochs {
		if ep.End < ep.Start {
			return fmt.Errorf("obsio: epoch %d ends before it starts", i)
		}
		if int64(ep.Start) < prevEnd {
			return fmt.Errorf("obsio: epoch %d overlaps its predecessor", i)
		}
		prevEnd = int64(ep.End)
	}
	for i, t := range obs.Threads {
		if t.End < t.Start {
			return fmt.Errorf("obsio: thread %d ends before it starts", i)
		}
	}
	return nil
}
