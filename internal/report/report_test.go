package report

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-longer", "22")
	tb.AddNote("a note with %d", 42)
	out := tb.String()

	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "note: a note with 42") {
		t.Error("missing note")
	}
	lines := strings.Split(out, "\n")
	// Header, separator, two rows all present.
	if len(lines) < 5 {
		t.Fatalf("too few lines: %q", out)
	}
	// Columns align: "value" and "22" end at the same column.
	hdr := lines[1] // lines[0] is the title
	row := lines[3]
	if len(hdr) == 0 || len(row) == 0 {
		t.Fatal("empty lines")
	}
	if !strings.HasSuffix(strings.TrimRight(hdr, " "), "value") {
		t.Errorf("header %q", hdr)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.123); got != "+12.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(-0.05); got != "-5.0%" {
		t.Errorf("Pct = %q", got)
	}
	if got := PctAbs(-0.05); got != "5.0%" {
		t.Errorf("PctAbs = %q", got)
	}
}

func TestRelError(t *testing.T) {
	if got := RelError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelError = %v", got)
	}
	if got := RelError(90, 100); math.Abs(got+0.1) > 1e-12 {
		t.Errorf("RelError = %v", got)
	}
	if got := RelError(5, 0); got != 0 {
		t.Errorf("RelError with zero actual = %v", got)
	}
}

func TestMeans(t *testing.T) {
	xs := []float64{-0.2, 0.1, 0.3}
	if got := MeanAbs(xs); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("MeanAbs = %v", got)
	}
	if got := Mean(xs); math.Abs(got-0.0666666666) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
	if MeanAbs(nil) != 0 || Mean(nil) != 0 {
		t.Error("empty slices should give 0")
	}
}

func TestFprintJSON(t *testing.T) {
	tb := &Table{
		Title:  "j",
		Header: []string{"a", "b"},
	}
	tb.AddRow("x", "1")
	tb.AddRow("y") // short row: missing cells simply absent
	tb.AddNote("n")
	var buf strings.Builder
	if err := tb.FprintJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title string              `json:"title"`
		Rows  []map[string]string `json:"rows"`
		Notes []string            `json:"notes"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if doc.Title != "j" || len(doc.Rows) != 2 || doc.Rows[0]["a"] != "x" || doc.Rows[0]["b"] != "1" {
		t.Errorf("doc %+v", doc)
	}
	if len(doc.Notes) != 1 || doc.Notes[0] != "n" {
		t.Errorf("notes %v", doc.Notes)
	}
}
