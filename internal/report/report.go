// Package report provides the table formatting and error metrics used to
// print paper-style experiment outputs.
package report

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of rows printed with aligned columns.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			wd := 0
			if i < len(widths) {
				wd = widths[i]
			}
			if i == 0 {
				parts[i] = fmt.Sprintf("%-*s", wd, c)
			} else {
				parts[i] = fmt.Sprintf("%*s", wd, c)
			}
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// jsonRow marshals one table row as a JSON object whose keys appear in
// column order. The explicit ordering keeps the document's shape in the
// document itself instead of delegating it to the encoder's map handling
// (the goldenio invariant), and renders columns in their table order.
type jsonRow struct {
	keys, vals []string
}

func (r jsonRow) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, k := range r.keys {
		if i > 0 {
			b.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		b.Write(kb)
		b.WriteByte(':')
		vb, err := json.Marshal(r.vals[i])
		if err != nil {
			return nil, err
		}
		b.Write(vb)
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// FprintJSON renders the table as a JSON object with the rows keyed by the
// header, for machine consumption (`depburst <cmd> -json`). Row keys keep
// the table's column order.
func (t *Table) FprintJSON(w io.Writer) error {
	type doc struct {
		Title string    `json:"title"`
		Rows  []jsonRow `json:"rows"`
		Notes []string  `json:"notes,omitempty"`
	}
	d := doc{Title: t.Title, Notes: t.Notes, Rows: make([]jsonRow, 0, len(t.Rows))}
	for _, row := range t.Rows {
		var r jsonRow
		for i, c := range row {
			key := fmt.Sprintf("col%d", i)
			if i < len(t.Header) {
				key = t.Header[i]
			}
			r.keys = append(r.keys, key)
			r.vals = append(r.vals, c)
		}
		d.Rows = append(d.Rows, r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Pct formats a ratio as a signed percentage ("-12.3%").
func Pct(x float64) string { return fmt.Sprintf("%+.1f%%", 100*x) }

// PctAbs formats a ratio as an unsigned percentage ("12.3%").
func PctAbs(x float64) string {
	if x < 0 {
		x = -x
	}
	return fmt.Sprintf("%.1f%%", 100*x)
}

// RelError returns predicted/actual - 1; negative means underestimation.
func RelError(predicted, actual float64) float64 {
	if actual == 0 {
		return 0
	}
	return predicted/actual - 1
}

// MeanAbs returns the mean of |xs|.
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x < 0 {
			x = -x
		}
		s += x
	}
	return s / float64(len(xs))
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
