package energy

import (
	"testing"

	"depburst/internal/cpu"
	"depburst/internal/dacapo"
	"depburst/internal/kernel"
	"depburst/internal/sim"
	"depburst/internal/units"
)

// skewedWorkload keeps core 0 busy with compute while cores 1-3 idle: the
// situation per-core DVFS exploits and chip-wide DVFS cannot.
type skewedWorkload struct{}

func (skewedWorkload) Name() string { return "skewed" }

func (skewedWorkload) Setup(m *sim.Machine) {
	m.Kern.Spawn("busy", kernel.ClassApp, 0, func(e *kernel.Env) {
		for i := 0; i < 150; i++ {
			e.Compute(&cpu.Block{Instrs: 100_000, IPC: 2})
		}
	})
}

func TestPerCoreManagerDropsIdleCores(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Freq = 4000
	mg := NewPerCoreManager(DefaultManagerConfig(0.05))
	m := sim.New(cfg)
	m.SetCoreGovernor(mg.Governor())
	if _, err := m.Run(skewedWorkload{}); err != nil {
		t.Fatal(err)
	}
	if len(mg.Decisions) == 0 {
		t.Fatal("no decisions made")
	}
	// After warmup, idle cores must sit at the floor while the busy core
	// stays near the top.
	last := mg.Decisions[len(mg.Decisions)/2]
	if last[0] < 3500 {
		t.Errorf("busy core clocked down to %v under a 5%% bound", last[0])
	}
	for i := 1; i < len(last); i++ {
		if last[i] != 1000 {
			t.Errorf("idle core %d at %v, want the 1 GHz floor", i, last[i])
		}
	}
}

func TestPerCoreBeatsChipWideOnSkewedWork(t *testing.T) {
	run := func(perCore bool) sim.Result {
		cfg := sim.DefaultConfig()
		cfg.Freq = 4000
		m := sim.New(cfg)
		if perCore {
			m.SetCoreGovernor(NewPerCoreManager(DefaultManagerConfig(0.05)).Governor())
		} else {
			m.SetGovernor(NewManager(DefaultManagerConfig(0.05)).Governor())
		}
		res, err := m.Run(skewedWorkload{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	chip := run(false)
	pc := run(true)
	if pc.Energy >= chip.Energy {
		t.Errorf("per-core (%v) did not save energy vs chip-wide (%v) on skewed work",
			pc.Energy, chip.Energy)
	}
	// The busy core must not be slowed much more than the bound allows.
	if float64(pc.Time) > 1.12*float64(chip.Time) {
		t.Errorf("per-core time %v far beyond chip-wide %v", pc.Time, chip.Time)
	}
}

func TestPerCoreManagerValidation(t *testing.T) {
	if NewPerCoreManager(ManagerConfig{Threshold: 0.1}).cfg.HoldOff != 1 {
		t.Error("HoldOff not clamped")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative threshold accepted")
		}
	}()
	NewPerCoreManager(ManagerConfig{Threshold: -1})
}

func TestDecideIdleAndBusy(t *testing.T) {
	mg := NewPerCoreManager(DefaultManagerConfig(0.05))
	dur := 50 * units.Microsecond
	// Idle core: floor frequency.
	if f := mg.decide(sim.CoreSample{Freq: 4000}, dur); f != 1000 {
		t.Errorf("idle core frequency %v", f)
	}
	// Fully busy, pure scaling: must stay at (or near) max.
	busy := sim.CoreSample{Freq: 4000, Delta: cpu.Counters{Active: dur, Instrs: 100_000}}
	if f := mg.decide(busy, dur); f < 3500 {
		t.Errorf("compute-bound core dropped to %v", f)
	}
	// Fully memory-bound: can drop to the floor.
	memb := sim.CoreSample{Freq: 4000, Delta: cpu.Counters{Active: dur, CritNS: dur}}
	if f := mg.decide(memb, dur); f != 1000 {
		t.Errorf("memory-bound core at %v, want 1 GHz", f)
	}
}

func TestFeedbackManagerHoldsBound(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	spec, err := dacapo.ByName("pmd.scale")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Freq = 4000
	spec.Configure(&cfg)
	ref, err := sim.New(cfg).Run(dacapo.New(spec))
	if err != nil {
		t.Fatal(err)
	}
	mg := NewFeedbackManager(DefaultManagerConfig(0.10))
	m := sim.New(cfg)
	m.SetGovernor(mg.Governor())
	res, err := m.Run(dacapo.New(spec))
	if err != nil {
		t.Fatal(err)
	}
	slow := float64(res.Time)/float64(ref.Time) - 1
	if slow < 0.02 || slow > 0.15 {
		t.Errorf("feedback slowdown %.1f%% not near the 10%% bound", slow*100)
	}
	if mg.RealizedSlowdown() <= 0 {
		t.Error("realized-slowdown ledger never moved")
	}
}

func TestFeedbackManagerValidation(t *testing.T) {
	if NewFeedbackManager(ManagerConfig{Threshold: 0.1}).cfg.HoldOff != 1 {
		t.Error("HoldOff not clamped")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative threshold accepted")
		}
	}()
	NewFeedbackManager(ManagerConfig{Threshold: -1})
}
