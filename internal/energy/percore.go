package energy

import (
	"depburst/internal/core"
	"depburst/internal/sim"
	"depburst/internal/units"
)

// PerCoreManager is the per-core DVFS extension the paper leaves as future
// work (§VII): each core gets its own frequency every quantum, chosen so
// that the core's own predicted slowdown versus the maximum frequency
// stays within the bound.
//
// The per-core decision uses each core's aggregate counters rather than
// the epoch stream: epochs describe inter-thread dependencies, which a
// per-core decision cannot resolve (slowing one core shifts work onto the
// critical path of another). This is precisely the open problem the paper
// defers; the implementation makes the trade-off measurable (see the
// PerCoreDVFS experiment): idle and memory-bound cores clock down
// independently, but the slowdown guarantee is weaker than chip-wide
// DEP+BURST's.
type PerCoreManager struct {
	cfg  ManagerConfig
	hold int

	// Decisions records the chosen frequency vector per quantum.
	Decisions [][]units.Freq
}

// NewPerCoreManager returns a per-core manager with the given config.
func NewPerCoreManager(cfg ManagerConfig) *PerCoreManager {
	if cfg.Threshold < 0 {
		panic("energy: negative slowdown threshold")
	}
	if cfg.HoldOff < 1 {
		cfg.HoldOff = 1
	}
	return &PerCoreManager{cfg: cfg}
}

// Governor returns the per-core DVFS policy.
func (mg *PerCoreManager) Governor() sim.CoreGovernor {
	return func(m *sim.Machine, s sim.QuantumSample) []units.Freq {
		if mg.hold > 1 {
			mg.hold--
			return nil
		}
		mg.hold = mg.cfg.HoldOff

		dur := s.End - s.Start
		out := make([]units.Freq, len(s.PerCore))
		for i, cs := range s.PerCore {
			out[i] = mg.decide(cs, dur)
		}
		mg.Decisions = append(mg.Decisions, out)
		return out
	}
}

// decide picks one core's frequency from its quantum delta.
func (mg *PerCoreManager) decide(cs sim.CoreSample, dur units.Time) units.Freq {
	// A (nearly) idle core drops to the floor: it burns only leakage and
	// wakes at the next quantum boundary if work arrives.
	if cs.Delta.Active < dur/64 {
		return mg.cfg.Min
	}
	predMax := core.PredictAggregate(cs.Delta, cs.Freq, mg.cfg.Max, mg.cfg.Opts)
	if predMax <= 0 {
		return cs.Freq
	}
	limit := units.Time(float64(predMax) * (1 + mg.cfg.Threshold))
	for f := mg.cfg.Min; f < mg.cfg.Max; f += mg.cfg.Step {
		if core.PredictAggregate(cs.Delta, cs.Freq, f, mg.cfg.Opts) <= limit {
			return f
		}
	}
	return mg.cfg.Max
}
