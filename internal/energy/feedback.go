package energy

import (
	"depburst/internal/sim"
	"depburst/internal/units"
)

// FeedbackManager extends the paper's energy manager with closed-loop
// budget tracking. The paper's manager enforces the slowdown bound
// per-interval using predictions only, so prediction errors at phase
// boundaries accumulate into overshoot. The feedback variant additionally
// tracks the realised slowdown so far — elapsed time against the predicted
// always-at-maximum time — and tightens or relaxes the per-interval
// threshold proportionally, spending exactly the user's budget.
//
// This is an extension beyond the paper (its §VI manager is open-loop);
// the FeedbackAblation experiment quantifies what the feedback buys.
type FeedbackManager struct {
	cfg  ManagerConfig
	hold int

	predAtMax units.Time // predicted total so far at the max frequency
	elapsed   units.Time // measured total so far

	Decisions []Decision
}

// NewFeedbackManager returns a feedback manager with the given config.
func NewFeedbackManager(cfg ManagerConfig) *FeedbackManager {
	if cfg.Threshold < 0 {
		panic("energy: negative slowdown threshold")
	}
	if cfg.HoldOff < 1 {
		cfg.HoldOff = 1
	}
	return &FeedbackManager{cfg: cfg}
}

// RealizedSlowdown reports the cumulative slowdown estimate so far.
func (mg *FeedbackManager) RealizedSlowdown() float64 {
	if mg.predAtMax <= 0 {
		return 0
	}
	return float64(mg.elapsed)/float64(mg.predAtMax) - 1
}

// Governor returns the closed-loop DVFS policy.
func (mg *FeedbackManager) Governor() sim.Governor {
	return func(m *sim.Machine, s sim.QuantumSample) units.Freq {
		predict := func(f units.Freq) units.Time {
			return predictInterval(m, s, f, mg.cfg.Opts)
		}
		predMax := predict(mg.cfg.Max)
		if predMax <= 0 {
			return m.Freq()
		}
		// Account the interval just finished. The ledger uses the
		// per-interval wall ratio rather than the epoch window: epochs
		// can span several quanta, and accounting them at each quantum
		// they end in would double-count time.
		mg.predAtMax += wallRatioPredict(s, mg.cfg.Max, mg.cfg.Opts)
		mg.elapsed += s.End - s.Start

		if mg.hold > 1 {
			mg.hold--
			return m.Freq()
		}
		mg.hold = mg.cfg.HoldOff

		// Closed loop: spend the remaining budget. If the run so far is
		// ahead of the bound, the next interval may slow more; if it
		// overshot, the next interval must claw time back.
		thr := mg.cfg.Threshold + (mg.cfg.Threshold - mg.RealizedSlowdown())
		if thr < 0 {
			thr = 0
		}
		if max := 3 * mg.cfg.Threshold; thr > max {
			thr = max
		}
		limit := units.Time(float64(predMax) * (1 + thr))

		chosen := mg.cfg.Max
		pred := predMax
		for f := mg.cfg.Min; f < mg.cfg.Max; f += mg.cfg.Step {
			if p := predict(f); p <= limit {
				chosen = f
				pred = p
				break
			}
		}
		mg.Decisions = append(mg.Decisions, Decision{
			At: s.End, Freq: chosen, PredMax: predMax, PredChosen: pred,
			EpochsInLag: s.EpochHi - s.EpochLo,
		})
		return chosen
	}
}
