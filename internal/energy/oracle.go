package energy

import (
	"depburst/internal/sim"
	"depburst/internal/units"
)

// StaticResult is one point of a static-frequency sweep.
type StaticResult struct {
	Freq   units.Freq
	Time   units.Time
	Energy units.Energy
}

// StaticSweep runs the workload at each static frequency and returns the
// results in sweep order. The paper's "static-optimal" oracle is the sweep
// point with minimum energy (it requires running the application multiple
// times with the same input, hence "oracle").
func StaticSweep(base sim.Config, mk func() sim.Workload, freqs []units.Freq) []StaticResult {
	out := make([]StaticResult, 0, len(freqs))
	for _, f := range freqs {
		cfg := base
		cfg.Freq = f
		m := sim.New(cfg)
		res, err := m.Run(mk())
		if err != nil {
			panic(err)
		}
		out = append(out, StaticResult{Freq: f, Time: res.Time, Energy: res.Energy})
	}
	return out
}

// StaticOptimal returns the minimum-energy point of a sweep.
func StaticOptimal(sweep []StaticResult) StaticResult {
	best := sweep[0]
	for _, s := range sweep[1:] {
		if s.Energy < best.Energy {
			best = s
		}
	}
	return best
}

// StaticOptimalConstrained returns the minimum-energy sweep point whose
// slowdown relative to refTime stays within threshold — the oracle the
// dynamic manager is compared against in the paper's Figure 7 (both
// operate under the same user-specified performance bound). If no point
// qualifies, the fastest point is returned.
func StaticOptimalConstrained(sweep []StaticResult, refTime units.Time, threshold float64) StaticResult {
	limit := units.Time(float64(refTime) * (1 + threshold))
	var best *StaticResult
	for i := range sweep {
		s := &sweep[i]
		if s.Time > limit {
			continue
		}
		if best == nil || s.Energy < best.Energy {
			best = s
		}
	}
	if best == nil {
		fastest := &sweep[0]
		for i := range sweep {
			if sweep[i].Time < fastest.Time {
				fastest = &sweep[i]
			}
		}
		return *fastest
	}
	return *best
}
