package energy

import (
	"testing"

	"depburst/internal/core"
	"depburst/internal/cpu"
	"depburst/internal/dacapo"
	"depburst/internal/kernel"
	"depburst/internal/mem"
	"depburst/internal/sim"
)

func TestStaticOptimalPicksMinEnergy(t *testing.T) {
	sweep := []StaticResult{
		{Freq: 1000, Time: 120, Energy: 60},
		{Freq: 2000, Time: 105, Energy: 50},
		{Freq: 4000, Time: 100, Energy: 80},
	}
	if best := StaticOptimal(sweep); best.Freq != 2000 {
		t.Errorf("static optimal = %v", best.Freq)
	}
}

func TestStaticOptimalConstrained(t *testing.T) {
	sweep := []StaticResult{
		{Freq: 1000, Time: 150, Energy: 40}, // cheapest but too slow
		{Freq: 2000, Time: 108, Energy: 55},
		{Freq: 3000, Time: 104, Energy: 65},
		{Freq: 4000, Time: 100, Energy: 80},
	}
	best := StaticOptimalConstrained(sweep, 100, 0.10)
	if best.Freq != 2000 {
		t.Errorf("constrained optimal = %v, want 2GHz", best.Freq)
	}
	// Impossible constraint: fall back to the fastest point.
	best = StaticOptimalConstrained(sweep, 50, 0.10)
	if best.Freq != 4000 {
		t.Errorf("fallback = %v, want 4GHz", best.Freq)
	}
}

func TestManagerConfigDefaults(t *testing.T) {
	cfg := DefaultManagerConfig(0.05)
	if cfg.Threshold != 0.05 || cfg.Step != 125 || cfg.Min != 1000 || cfg.Max != 4000 {
		t.Errorf("defaults %+v", cfg)
	}
	if !cfg.Opts.Burst || cfg.Opts.Engine != core.CRIT {
		t.Error("default predictor is not DEP+BURST")
	}
	if NewManager(ManagerConfig{Threshold: 0.05, HoldOff: 0}).cfg.HoldOff != 1 {
		t.Error("HoldOff not clamped to 1")
	}
}

func TestManagerNegativeThresholdPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative threshold accepted")
		}
	}()
	NewManager(ManagerConfig{Threshold: -0.1})
}

// syntheticWorkload drives a single thread that is either compute-bound
// (pure scaling) or memory-bound (dependent DRAM misses, non-scaling), so
// governor decisions can be asserted directly.
type syntheticWorkload struct {
	name   string
	memory bool
}

func (w syntheticWorkload) Name() string { return w.name }

func (w syntheticWorkload) Setup(m *sim.Machine) {
	m.Kern.Spawn("w", kernel.ClassApp, -1, func(e *kernel.Env) {
		if w.memory {
			for i := 0; i < 4000; i++ {
				blk := &cpu.Block{Instrs: 64, IPC: 2}
				for j := 0; j < 16; j++ {
					blk.Events = append(blk.Events, cpu.MemEvent{
						At:      int64(j * 4),
						Addr:    mem.Addr(uint64(i*16+j) * 64 * 1024 % (1 << 32)),
						DepPrev: j > 0,
					})
				}
				e.Compute(blk)
			}
			return
		}
		for i := 0; i < 200; i++ {
			e.Compute(&cpu.Block{Instrs: 100_000, IPC: 2})
		}
	})
}

func TestGovernorKeepsMaxForComputeBound(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Freq = 4000
	mg := NewManager(DefaultManagerConfig(0.05))
	m := sim.New(cfg)
	m.SetGovernor(mg.Governor())
	res, err := m.Run(syntheticWorkload{name: "compute"})
	if err != nil {
		t.Fatal(err)
	}
	// A pure-compute workload slows proportionally: the manager may only
	// drop a state or two within a 5% budget.
	for _, d := range mg.Decisions {
		if d.Freq < 3500 {
			t.Errorf("compute-bound decision dropped to %v", d.Freq)
		}
	}
	if res.Time <= 0 {
		t.Error("no time")
	}
}

func TestGovernorDropsForMemoryBound(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Freq = 4000
	mg := NewManager(DefaultManagerConfig(0.10))
	m := sim.New(cfg)
	m.SetGovernor(mg.Governor())
	if _, err := m.Run(syntheticWorkload{name: "memory", memory: true}); err != nil {
		t.Fatal(err)
	}
	low := 0
	for _, d := range mg.Decisions {
		if d.Freq <= 2000 {
			low++
		}
	}
	if low == 0 {
		t.Errorf("memory-bound workload never ran below 2 GHz (%d decisions)", len(mg.Decisions))
	}
}

func TestManagedSlowdownNearThreshold(t *testing.T) {
	// End-to-end check on one real benchmark: slowdown close to the
	// bound and positive savings.
	if testing.Short() {
		t.Skip("long")
	}
	spec, err := dacapo.ByName("pmd.scale")
	if err != nil {
		t.Fatal(err)
	}
	base := sim.DefaultConfig()
	base.Freq = 4000
	spec.Configure(&base)
	ref, err := sim.New(base).Run(dacapo.New(spec))
	if err != nil {
		t.Fatal(err)
	}

	mg := NewManager(DefaultManagerConfig(0.10))
	m := sim.New(base)
	m.SetGovernor(mg.Governor())
	res, err := m.Run(dacapo.New(spec))
	if err != nil {
		t.Fatal(err)
	}
	slow := float64(res.Time)/float64(ref.Time) - 1
	save := 1 - float64(res.Energy)/float64(ref.Energy)
	if slow < 0 || slow > 0.20 {
		t.Errorf("slowdown %.1f%% far from the 10%% bound", slow*100)
	}
	if save <= 0.05 {
		t.Errorf("savings %.1f%% too small for a memory-intensive benchmark", save*100)
	}
}
