package energy

import (
	"depburst/internal/core"
	"depburst/internal/sim"
	"depburst/internal/units"
)

// predictInterval estimates the wall-clock duration of one scheduling
// interval at frequency f.
//
// When the interval contains synchronization epochs, DEP's epoch
// aggregation already produces wall time. When it does not (a long compute
// phase), the aggregate counters cover *core time* summed over every
// thread; the interval's wall time is scaled by the predicted-to-measured
// core-time ratio, which assumes the interval's parallelism is unchanged
// by the frequency switch — exact for phases with no scheduling activity,
// which is the only case that reaches the fallback.
func predictInterval(m *sim.Machine, s sim.QuantumSample, f units.Freq, opts core.Options) units.Time {
	epochs := m.Kern.Recorder().Epochs()
	hi := s.EpochHi
	if hi > len(epochs) {
		hi = len(epochs)
	}
	if window := epochs[s.EpochLo:hi]; len(window) > 0 {
		return core.PredictEpochs(window, s.Freq, f, opts)
	}
	if s.Delta.Active <= 0 {
		return 0
	}
	return wallRatioPredict(s, f, opts)
}

// wallRatioPredict scales the interval's wall duration by the predicted-to-
// measured core-time ratio of its aggregate counters. Unlike the epoch
// window (whose epochs can span several quanta), it covers exactly this
// interval, which makes it the right unit for cumulative accounting.
func wallRatioPredict(s sim.QuantumSample, f units.Freq, opts core.Options) units.Time {
	dur := s.End - s.Start
	if s.Delta.Active <= 0 {
		// Idle interval: timers and waits do not scale.
		return dur
	}
	coreTime := core.PredictAggregate(s.Delta, s.Freq, f, opts)
	return units.Time(float64(dur) * float64(coreTime) / float64(s.Delta.Active))
}
