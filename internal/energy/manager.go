// Package energy implements the paper's case study (§VI): an energy
// manager that uses a DVFS performance predictor to pick, every scheduling
// quantum, the lowest frequency whose predicted slowdown relative to the
// maximum frequency stays within a user-specified bound — saving energy
// while guaranteeing performance.
package energy

import (
	"depburst/internal/core"
	"depburst/internal/metrics"
	"depburst/internal/sim"
	"depburst/internal/units"
)

// ManagerConfig parameterises the energy manager.
type ManagerConfig struct {
	// Threshold is the tolerable slowdown versus always running at the
	// maximum frequency (e.g. 0.05 for 5%).
	Threshold float64
	// HoldOff is the number of quanta to wait between frequency changes
	// (paper: 1, i.e. re-decide every quantum).
	HoldOff int
	// Step is the DVFS frequency granularity (paper: 125 MHz).
	Step units.Freq
	// Min and Max bound the DVFS range.
	Min, Max units.Freq
	// Predictor options; the paper uses DEP+BURST.
	Opts core.Options
}

// DefaultManagerConfig returns the paper's setup: DEP+BURST, 125 MHz steps,
// hold-off 1, over the 1-4 GHz range.
func DefaultManagerConfig(threshold float64) ManagerConfig {
	return ManagerConfig{
		Threshold: threshold,
		HoldOff:   1,
		Step:      125,
		Min:       1000,
		Max:       4000,
		Opts:      core.Options{Burst: true},
	}
}

// Manager holds the controller state across quanta.
type Manager struct {
	cfg     ManagerConfig
	hold    int
	lastReq units.Freq

	// Decisions records each quantum's chosen frequency for analysis.
	Decisions []Decision
}

// Decision is one governor decision.
type Decision struct {
	At          units.Time
	Freq        units.Freq
	PredMax     units.Time // predicted quantum duration at Max
	PredChosen  units.Time // predicted duration at the chosen frequency
	EpochsInLag int
}

// NewManager returns a manager with the given configuration.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.Threshold < 0 {
		panic("energy: negative slowdown threshold")
	}
	if cfg.HoldOff < 1 {
		cfg.HoldOff = 1
	}
	return &Manager{cfg: cfg}
}

// Governor returns the sim.Governor implementing the paper's policy: from
// the quantum's epoch stream, predict the interval's duration at the
// maximum frequency and at every candidate state, then pick the lowest
// frequency whose slowdown versus the maximum stays within the threshold.
func (mg *Manager) Governor() sim.Governor {
	return func(m *sim.Machine, s sim.QuantumSample) units.Freq {
		if mg.hold > 1 {
			mg.hold--
			return m.Freq()
		}
		mg.hold = mg.cfg.HoldOff

		// Predict the interval's duration at frequency f; see
		// predictInterval for the epoch/aggregate split.
		predict := func(f units.Freq) units.Time {
			return predictInterval(m, s, f, mg.cfg.Opts)
		}

		// Step 1 (paper §VI-A): estimate this interval's duration at
		// the highest frequency.
		predMax := predict(mg.cfg.Max)
		if predMax <= 0 {
			return m.Freq()
		}
		limit := units.Time(float64(predMax) * (1 + mg.cfg.Threshold))

		// Step 2: walk candidate states bottom-up and take the lowest
		// one that satisfies the constraint. Power decreases
		// monotonically with frequency, so the lowest admissible
		// frequency minimises energy.
		chosen := mg.cfg.Max
		pred := predMax
		for f := mg.cfg.Min; f < mg.cfg.Max; f += mg.cfg.Step {
			if p := predict(f); p <= limit {
				chosen = f
				pred = p
				break
			}
		}
		// Hysteresis: a one-step move must be requested in two
		// consecutive quanta before it is applied, so prediction noise
		// at the 125 MHz granularity does not pay a 2 µs transition
		// every quantum.
		apply := chosen
		cur := m.Freq()
		oneStep := chosen > cur-2*mg.cfg.Step && chosen < cur+2*mg.cfg.Step && chosen != cur
		if oneStep && chosen != mg.lastReq {
			apply = cur
		}
		mg.lastReq = chosen

		mg.Decisions = append(mg.Decisions, Decision{
			At:          s.End,
			Freq:        apply,
			PredMax:     predMax,
			PredChosen:  pred,
			EpochsInLag: s.EpochHi - s.EpochLo,
		})
		// Observability: mirror the decision into the run's registry so
		// the exported metrics document carries the manager's
		// per-quantum prediction telemetry.
		m.Metrics().RecordQuantumPred(metrics.QuantumPred{
			At:         s.End,
			Freq:       apply,
			PredMax:    predMax,
			PredChosen: pred,
			Epochs:     s.EpochHi - s.EpochLo,
		})
		return apply
	}
}
