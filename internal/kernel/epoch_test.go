package kernel

import (
	"testing"

	"depburst/internal/cpu"
	"depburst/internal/units"
)

// runContended drives a small contended workload and returns the kernel.
func runContended(t *testing.T, threads, cores int) *Kernel {
	t.Helper()
	k := testKernel(cores)
	var mu Mutex
	b := NewBarrier(threads)
	for i := 0; i < threads; i++ {
		k.Spawn("w", ClassApp, -1, func(e *Env) {
			for j := 0; j < 8; j++ {
				e.Compute(block(4_000))
				e.Lock(&mu)
				e.Compute(block(2_000))
				e.Unlock(&mu)
			}
			e.BarrierWait(b)
		})
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestEpochsContiguous(t *testing.T) {
	k := runContended(t, 3, 2)
	eps := k.Recorder().Epochs()
	if len(eps) == 0 {
		t.Fatal("no epochs recorded")
	}
	prev := units.Time(0)
	for i, ep := range eps {
		if ep.Start != prev {
			t.Fatalf("epoch %d starts at %v, previous ended at %v", i, ep.Start, prev)
		}
		if ep.End < ep.Start {
			t.Fatalf("epoch %d ends before it starts", i)
		}
		prev = ep.End
	}
	if got := k.Recorder().End(); got != prev {
		t.Errorf("recorder end %v, last epoch end %v", got, prev)
	}
}

func TestEpochCounterConservation(t *testing.T) {
	// The sum of all slice deltas must equal the threads' final counters:
	// epoch slicing neither loses nor duplicates work.
	k := runContended(t, 4, 2)
	var sliced cpu.Counters
	for _, ep := range k.Recorder().Epochs() {
		for _, sl := range ep.Slices {
			sliced.Add(sl.Delta)
		}
	}
	var total cpu.Counters
	for _, th := range k.Threads() {
		total.Add(th.Counters())
	}
	if sliced != total {
		t.Errorf("slices sum %+v\n != thread totals %+v", sliced, total)
	}
}

func TestEpochActiveBounded(t *testing.T) {
	// Within an epoch, a thread's active time is bounded by the epoch's
	// duration plus one in-flight operation of skew (a block whose local
	// time straddles the boundary charges into the epoch it started in).
	// The workload's blocks are <= 4000 instructions = 2 µs at 1 GHz.
	const skew = 3 * units.Microsecond
	k := runContended(t, 4, 2)
	for i, ep := range k.Recorder().Epochs() {
		dur := ep.Duration()
		var sum units.Time
		for _, sl := range ep.Slices {
			if sl.Delta.Active > dur+skew {
				t.Fatalf("epoch %d: slice active %v exceeds duration %v + skew", i, sl.Delta.Active, dur)
			}
			sum += sl.Delta.Active
		}
		if sum > 2*(dur+skew)+2*skew {
			t.Fatalf("epoch %d: total active %v for duration %v on 2 cores", i, sum, dur)
		}
	}
}

func TestStallTIDOnSleep(t *testing.T) {
	k := runContended(t, 3, 1) // single core: plenty of sleeps/preempts
	found := false
	for _, ep := range k.Recorder().Epochs() {
		switch ep.EndKind {
		case BoundarySleep, BoundaryPreempt, BoundaryExit:
			if ep.StallTID == NoThread {
				t.Errorf("%v-bounded epoch has no stall TID", ep.EndKind)
			}
			found = true
		case BoundaryWake, BoundarySpawn:
			if ep.StallTID != NoThread {
				t.Errorf("%v-bounded epoch has stall TID %d", ep.EndKind, ep.StallTID)
			}
		}
	}
	if !found {
		t.Error("no sleep-bounded epochs in a contended run")
	}
}

func TestMarks(t *testing.T) {
	r := NewRecorder()
	r.Mark(10, "gc-start")
	r.Mark(20, "gc-end")
	marks := r.Marks()
	if len(marks) != 2 || marks[0].Label != "gc-start" || marks[1].At != 20 {
		t.Errorf("marks %+v", marks)
	}
}

func TestBoundaryKindString(t *testing.T) {
	kinds := map[BoundaryKind]string{
		BoundarySpawn: "spawn", BoundarySleep: "sleep", BoundaryWake: "wake",
		BoundaryPreempt: "preempt", BoundaryExit: "exit", BoundaryKind(42): "?",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestThreadStateString(t *testing.T) {
	states := map[threadState]string{
		stateNew: "new", stateRunnable: "runnable", stateRunning: "running",
		stateSleeping: "sleeping", stateExited: "exited", threadState(9): "?",
	}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("state %d = %q", s, s.String())
		}
	}
}
