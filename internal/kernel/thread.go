// Package kernel simulates the operating-system layer: threads, a
// core scheduler with affinity and timeslicing, futex-based sleeping and
// waking, and the synchronisation-epoch recorder that the DEP predictor
// consumes.
//
// Each simulated thread is a goroutine, but exactly one goroutine (either
// the engine driver or a single thread) ever runs at a time: the kernel
// resumes a thread, the thread performs one operation against its Env,
// yields, and the kernel regains control. All kernel state is therefore
// accessed without locks and every run is deterministic.
package kernel

import (
	"fmt"

	"depburst/internal/cpu"
	"depburst/internal/units"
)

// ThreadID identifies a simulated thread.
type ThreadID int

// NoThread is the ThreadID used when no thread applies (e.g. an epoch that
// was not closed by a sleep).
const NoThread ThreadID = -1

// Class distinguishes application threads from managed-runtime service
// threads; the COOP predictor and the JVM's stop-the-world logic use it.
type Class int

// Thread classes.
const (
	ClassApp Class = iota
	ClassService
)

func (c Class) String() string {
	switch c {
	case ClassApp:
		return "app"
	case ClassService:
		return "service"
	default:
		return "?"
	}
}

// Program is the body of a simulated thread. It runs on its own goroutine
// and interacts with the simulation only through the Env.
type Program func(e *Env)

type threadState int

const (
	stateNew threadState = iota
	stateRunnable
	stateRunning
	stateSleeping
	stateExited
)

func (s threadState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateRunnable:
		return "runnable"
	case stateRunning:
		return "running"
	case stateSleeping:
		return "sleeping"
	case stateExited:
		return "exited"
	default:
		return "?"
	}
}

type yieldKind int

const (
	yieldOp      yieldKind = iota // op complete, thread still running
	yieldBlocked                  // thread parked on a futex
	yieldExited                   // program returned
)

// Thread is one simulated OS thread.
type Thread struct {
	id      ThreadID
	name    string
	class   Class
	group   int
	program Program

	ctr   cpu.Counters
	state threadState

	// affinity is the preferred core; -1 means any.
	affinity int
	core     int // core currently (or last) running on

	now      units.Time // thread-local time while running
	runStart units.Time // when the current scheduling-in happened
	sliceEnd units.Time
	spawnAt  units.Time
	endAt    units.Time

	resume chan struct{}
	out    chan yieldKind
	killed bool

	// wakeGen invalidates stale park timers; timedOut reports whether the
	// last ParkTimeout expired rather than being woken.
	wakeGen  uint64
	timedOut bool

	// sleepHandle tracks a pending timed wakeup so Sleep can be cancelled.
	waking bool // woken but not yet dispatched (runnable in queue)
}

// ID returns the thread's identifier.
func (t *Thread) ID() ThreadID { return t.id }

// Name returns the thread's debug name.
func (t *Thread) Name() string { return t.name }

// Class returns whether this is an application or service thread.
func (t *Thread) Class() Class { return t.class }

// Group returns the thread group (one per co-running runtime instance;
// the default group is 0).
func (t *Thread) Group() int { return t.group }

// Counters returns a snapshot of the thread's performance counters.
func (t *Thread) Counters() cpu.Counters { return t.ctr }

// Exited reports whether the thread's program has returned.
func (t *Thread) Exited() bool { return t.state == stateExited }

// SpawnTime returns when the thread was created.
func (t *Thread) SpawnTime() units.Time { return t.spawnAt }

// EndTime returns when the thread exited (its local time at exit), or the
// thread's current local time if it has not exited.
func (t *Thread) EndTime() units.Time {
	if t.state == stateExited {
		return t.endAt
	}
	return t.now
}

func (t *Thread) String() string {
	return fmt.Sprintf("thread %d (%s, %s)", t.id, t.name, t.state)
}

// killSignal is panicked through a thread goroutine when the kernel shuts
// down daemon threads at the end of a run.
type killSignal struct{}
