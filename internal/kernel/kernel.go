package kernel

import (
	"fmt"

	"depburst/internal/cpu"
	"depburst/internal/event"
	"depburst/internal/units"
)

// Config holds scheduler parameters.
type Config struct {
	// Timeslice is how long a thread may run before a waiting runnable
	// thread preempts it (wall time: timer-driven).
	Timeslice units.Time
	// ContextSwitchCycles is the cost of switching a core between
	// threads, in core cycles — kernel code executes on the core, so its
	// cost scales with frequency.
	ContextSwitchCycles int64
	// ValidateBlocks makes Env.Compute validate every block before
	// simulating it. Costs a pass over the block's events; intended for
	// developing custom workloads, off for the stock benchmarks.
	ValidateBlocks bool
}

// DefaultConfig returns scheduler parameters scaled to match the
// simulator's ~100x-compressed benchmark durations.
func DefaultConfig() Config {
	return Config{
		Timeslice:           100 * units.Microsecond,
		ContextSwitchCycles: 2000, // 2 µs at 1 GHz
	}
}

// Kernel owns the cores, the run queue, and all thread state.
type Kernel struct {
	cfg   Config
	eng   *event.Engine
	cores []*cpu.Core

	threads  []*Thread
	running  []*Thread // indexed by core; nil when idle
	lastTID  []ThreadID
	runq     []*Thread
	liveApp  int
	liveAll  int
	appEnd   units.Time
	recorder *Recorder

	// onPark hooks fire after any thread goes to sleep; each JVM
	// instance uses one to detect that its world has stopped.
	onPark []func(now units.Time)

	// ffPool / ffPoolTime accumulate the counters and simulated time of
	// exactly the detailed blocks that sampled simulation's fast-forward
	// mode replaces (those submitted via Env.ComputeSampled). The sampling
	// detector learns its extrapolation rates from this pool's per-quantum
	// growth.
	ffPool     cpu.Counters
	ffPoolTime units.Time

	// abortErr, once set by Abort, makes Run stop before its next event,
	// kill the remaining threads and return the error.
	abortErr error
}

// New builds a kernel over the given cores and event engine.
func New(eng *event.Engine, cores []*cpu.Core, cfg Config) *Kernel {
	k := &Kernel{
		cfg:      cfg,
		eng:      eng,
		cores:    cores,
		running:  make([]*Thread, len(cores)),
		lastTID:  make([]ThreadID, len(cores)),
		recorder: NewRecorder(),
	}
	for i := range k.lastTID {
		k.lastTID[i] = NoThread
	}
	return k
}

// FFPool returns the cumulative fast-forward rate pool: the counter
// deltas and simulated time of every block submitted via
// Env.ComputeSampled while detailed simulation was active.
func (k *Kernel) FFPool() (cpu.Counters, units.Time) { return k.ffPool, k.ffPoolTime }

// Recorder returns the epoch recorder for this kernel.
func (k *Kernel) Recorder() *Recorder { return k.recorder }

// Engine returns the event engine driving this kernel.
func (k *Kernel) Engine() *event.Engine { return k.eng }

// Cores returns the number of cores.
func (k *Kernel) Cores() int { return len(k.cores) }

// Threads returns all threads ever spawned.
func (k *Kernel) Threads() []*Thread { return k.threads }

// SetParkHook registers fn to run whenever a thread goes to sleep. Hooks
// accumulate: every co-running runtime instance installs its own.
func (k *Kernel) SetParkHook(fn func(now units.Time)) { k.onPark = append(k.onPark, fn) }

// LiveAppThreads reports how many application threads have not exited.
func (k *Kernel) LiveAppThreads() int { return k.liveApp }

// RunningOrRunnable reports whether any thread of the given class is
// currently running or waiting to run (i.e. not asleep and not exited).
func (k *Kernel) RunningOrRunnable(c Class) bool {
	return k.RunningOrRunnableGroup(c, -1)
}

// RunningOrRunnableGroup is RunningOrRunnable restricted to one thread
// group (-1 means any group). A stop-the-world collector only needs its
// own group's application threads stopped.
func (k *Kernel) RunningOrRunnableGroup(c Class, group int) bool {
	for _, t := range k.threads {
		if t.class != c || (group >= 0 && t.group != group) {
			continue
		}
		switch t.state {
		case stateRunning, stateRunnable, stateNew:
			return true
		}
	}
	return false
}

// Spawn creates a thread in group 0 and makes it runnable at the engine's
// current time. affinity < 0 lets the scheduler place it anywhere.
func (k *Kernel) Spawn(name string, class Class, affinity int, p Program) *Thread {
	return k.SpawnGroup(name, class, 0, affinity, p)
}

// SpawnGroup is Spawn with an explicit thread group (one group per
// co-running runtime instance).
func (k *Kernel) SpawnGroup(name string, class Class, group, affinity int, p Program) *Thread {
	t := &Thread{
		id:       ThreadID(len(k.threads)),
		name:     name,
		class:    class,
		group:    group,
		program:  p,
		affinity: affinity,
		core:     -1,
		state:    stateNew,
		resume:   make(chan struct{}),
		out:      make(chan yieldKind),
		spawnAt:  k.eng.Now(),
	}
	k.threads = append(k.threads, t)
	k.liveAll++
	if class == ClassApp {
		k.liveApp++
	}
	go t.run(k)
	k.enqueue(t)
	k.dispatchAll(k.eng.Now())
	return t
}

func (t *Thread) run(k *Kernel) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSignal); ok {
				// Forced shutdown of a daemon thread: report exit
				// without touching kernel state further.
				t.out <- yieldExited
				return
			}
			panic(r)
		}
	}()
	<-t.resume
	if t.killed {
		panic(killSignal{})
	}
	t.program(&Env{k: k, t: t})
	t.out <- yieldExited
}

// enqueue adds t to the tail of the run queue.
func (k *Kernel) enqueue(t *Thread) {
	if t.state == stateRunning || t.state == stateExited {
		panic("kernel: enqueueing a " + t.state.String() + " thread")
	}
	if t.state != stateNew {
		t.state = stateRunnable
	}
	k.runq = append(k.runq, t)
}

// dispatchAll fills every idle core from the run queue.
func (k *Kernel) dispatchAll(now units.Time) {
	for core := range k.cores {
		k.dispatch(core, now)
	}
}

// dispatch places the best runnable thread onto an idle core.
func (k *Kernel) dispatch(core int, now units.Time) {
	if k.running[core] != nil || len(k.runq) == 0 {
		return
	}
	// Prefer a thread with affinity for this core or that last ran here;
	// otherwise take the queue head.
	pick := -1
	for i, t := range k.runq {
		if t.affinity == core || (t.affinity < 0 && t.core == core) {
			pick = i
			break
		}
	}
	if pick < 0 {
		for i, t := range k.runq {
			if t.affinity < 0 || k.running[t.affinity] != nil {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		return
	}
	t := k.runq[pick]
	k.runq = append(k.runq[:pick], k.runq[pick+1:]...)

	wasNew := t.state == stateNew
	start := now
	if k.lastTID[core] != t.id && k.lastTID[core] != NoThread {
		start += k.cycleCost(core, k.cfg.ContextSwitchCycles)
	}
	t.core = core
	t.now = start
	// The context-switch window is CPU work on this core (it scales with
	// frequency), so it counts as the thread's active time: runStart is
	// the dispatch instant, not the post-switch instant.
	t.runStart = now
	t.sliceEnd = start + k.cfg.Timeslice
	t.state = stateRunning
	k.running[core] = t
	k.lastTID[core] = t.id

	// Scheduling a new or sleeping thread onto a core opens an epoch.
	kind := BoundaryWake
	if wasNew {
		kind = BoundarySpawn
	}
	k.boundary(now, kind, t.id)

	k.eng.Schedule(start, func(at units.Time) { k.step(t) })
}

// step resumes t for one operation and handles its yield.
func (k *Kernel) step(t *Thread) {
	if t.state != stateRunning {
		panic("kernel: stepping a " + t.state.String() + " thread")
	}
	t.resume <- struct{}{}
	kind := <-t.out

	switch kind {
	case yieldOp:
		// Preempt if the slice expired and someone could use this core.
		if t.now >= t.sliceEnd && k.wantsCore(t.core) {
			k.chargeActive(t)
			k.running[t.core] = nil
			k.boundary(t.now, BoundaryPreempt, t.id)
			t.state = stateRunnable
			k.enqueue(t)
			k.dispatchAll(t.now)
			return
		}
		k.eng.Schedule(t.now, func(at units.Time) { k.step(t) })

	case yieldBlocked:
		k.chargeActive(t)
		core := t.core
		k.running[core] = nil
		k.boundary(t.now, BoundarySleep, t.id)
		k.dispatchAll(t.now)
		for _, hook := range k.onPark {
			hook(t.now)
		}

	case yieldExited:
		k.chargeActive(t)
		t.state = stateExited
		t.endAt = t.now
		core := t.core
		if core >= 0 && k.running[core] == t {
			k.running[core] = nil
		}
		k.liveAll--
		if t.class == ClassApp {
			k.liveApp--
			if t.now > k.appEnd {
				k.appEnd = t.now
			}
		}
		k.boundary(t.now, BoundaryExit, t.id)
		k.dispatchAll(t.now)
		for _, hook := range k.onPark {
			hook(t.now)
		}
	}
}

// cycleCost converts a cycle count on the given core into wall time at the
// core's current frequency.
func (k *Kernel) cycleCost(core int, cycles int64) units.Time {
	return k.cores[core].Clock().Freq().CyclesToTime(cycles)
}

// wantsCore reports whether some runnable thread could run on core.
func (k *Kernel) wantsCore(core int) bool {
	for _, t := range k.runq {
		if t.affinity < 0 || t.affinity == core {
			return true
		}
	}
	return false
}

// SyncActive brings every running thread's Active counter up to the given
// instant, so out-of-band samplers (the per-quantum meter) see consistent
// counters even in the middle of long uninterrupted compute phases.
func (k *Kernel) SyncActive() {
	now := k.eng.Now()
	for _, rt := range k.running {
		if rt != nil {
			k.chargeActiveUpTo(rt, now)
		}
	}
}

// chargeActive accrues the running thread's scheduled time into its
// counters up to its local time.
func (k *Kernel) chargeActive(t *Thread) {
	k.chargeActiveUpTo(t, t.now)
}

// chargeActiveUpTo accrues scheduled time up to min(t.now, upTo). Capping
// at an epoch or quantum boundary keeps a thread's in-flight block (whose
// local time runs ahead of the global clock) from being attributed wholly
// to the interval that is closing; the remainder lands in the next one.
func (k *Kernel) chargeActiveUpTo(t *Thread, upTo units.Time) {
	end := t.now
	if upTo < end {
		end = upTo
	}
	if end > t.runStart {
		t.ctr.Active += end - t.runStart
		if t.core >= 0 {
			k.cores[t.core].AddActive(end - t.runStart)
		}
		t.runStart = end
	}
}

// boundary closes the current epoch at time now: it brings every running
// thread's counters up to date and hands them to the recorder.
func (k *Kernel) boundary(now units.Time, kind BoundaryKind, tid ThreadID) {
	for _, rt := range k.running {
		if rt != nil {
			k.chargeActiveUpTo(rt, now)
		}
	}
	k.recorder.Boundary(now, kind, tid, k.threads)
}

// makeRunnable marks a sleeping thread runnable at time at (the waker's
// local time) and kicks dispatch.
func (k *Kernel) makeRunnable(t *Thread, at units.Time) {
	if t.state != stateSleeping {
		panic("kernel: waking a " + t.state.String() + " thread")
	}
	engNow := k.eng.Now()
	if at < engNow {
		at = engNow
	}
	t.state = stateRunnable
	k.eng.Schedule(at, func(now units.Time) {
		k.runq = append(k.runq, t)
		k.dispatchAll(now)
	})
}

// WakeAt wakes up to n sleepers on f at time at. It is for engine-context
// hooks (e.g. the JVM's stop-the-world trigger); simulated threads use
// Env.Wake instead.
func (k *Kernel) WakeAt(f *Futex, n int, at units.Time) int { return k.wake(f, n, at) }

// AppEndTime returns the local time at which the last application thread
// exited (zero until then).
func (k *Kernel) AppEndTime() units.Time { return k.appEnd }

// Run drives the simulation until every thread has exited or deadlock. It
// returns the time the last thread exited. Daemon service threads still
// alive when all application threads have exited are forcibly killed.
func (k *Kernel) Run() (units.Time, error) {
	for {
		if k.abortErr != nil {
			k.Shutdown()
			return k.eng.Now(), fmt.Errorf("kernel: aborted: %w", k.abortErr)
		}
		if !k.eng.Step() {
			break
		}
		if k.liveAll == 0 {
			break
		}
	}
	if k.liveApp > 0 {
		var stuck []string
		for _, t := range k.threads {
			if t.class == ClassApp && t.state != stateExited {
				stuck = append(stuck, t.String())
			}
		}
		return k.eng.Now(), fmt.Errorf("kernel: deadlock, %d app threads stuck: %v", len(stuck), stuck)
	}
	k.Shutdown()
	return k.eng.Now(), nil
}

// Abort makes Run stop before dispatching its next event, forcibly
// terminate every remaining thread (so no goroutine leaks) and return err.
// Call it from inside an event callback — e.g. the machine's sampling
// quantum — to cancel a simulation mid-flight; the partial state is not
// meaningful afterwards.
func (k *Kernel) Abort(err error) {
	if err == nil {
		err = fmt.Errorf("abort")
	}
	if k.abortErr == nil {
		k.abortErr = err
	}
}

// Shutdown forcibly terminates remaining (daemon) threads so their
// goroutines exit.
func (k *Kernel) Shutdown() {
	for _, t := range k.threads {
		if t.state == stateExited {
			continue
		}
		t.killed = true
		switch t.state {
		case stateRunning:
			// Will observe killed at its next yield resume; force it.
			t.resume <- struct{}{}
			<-t.out
		default:
			t.resume <- struct{}{}
			<-t.out
		}
		t.state = stateExited
		t.endAt = t.now
		k.liveAll--
		if t.class == ClassApp {
			k.liveApp--
		}
		if t.core >= 0 && k.running[t.core] == t {
			k.running[t.core] = nil
		}
	}
}
