package kernel

import (
	"testing"

	"depburst/internal/units"
)

func TestParkTimeoutExpires(t *testing.T) {
	k := testKernel(1)
	var fu Futex
	var woken bool
	var at units.Time
	k.Spawn("w", ClassApp, -1, func(e *Env) {
		woken = e.ParkTimeout(&fu, nil, 40*units.Microsecond)
		at = e.Now()
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woken {
		t.Error("timeout reported as wake")
	}
	if at < 40*units.Microsecond || at > 45*units.Microsecond {
		t.Errorf("woke at %v, want ~40us", at)
	}
	if fu.Waiters() != 0 {
		t.Error("timed-out thread still on the wait queue")
	}
}

func TestParkTimeoutWokenEarly(t *testing.T) {
	k := testKernel(2)
	var fu Futex
	var woken bool
	k.Spawn("sleeper", ClassApp, 0, func(e *Env) {
		woken = e.ParkTimeout(&fu, nil, 10*units.Millisecond)
	})
	k.Spawn("waker", ClassApp, 1, func(e *Env) {
		e.Compute(block(20_000))
		e.Wake(&fu, 1)
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !woken {
		t.Error("early wake reported as timeout")
	}
}

func TestParkTimeoutConditionAlreadyTrue(t *testing.T) {
	k := testKernel(1)
	var fu Futex
	k.Spawn("w", ClassApp, -1, func(e *Env) {
		if !e.ParkTimeout(&fu, func() bool { return false }, units.Millisecond) {
			t.Error("satisfied condition reported as timeout")
		}
		if e.Now() > 100*units.Microsecond {
			t.Error("satisfied condition still slept")
		}
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStaleTimerDoesNotWakeLaterSleep(t *testing.T) {
	// A thread does a timed wait, is woken early, then sleeps again on a
	// different futex. The stale timer from the first wait must not wake
	// the second sleep.
	k := testKernel(2)
	var fu1, fu2 Futex
	var secondWake units.Time
	k.Spawn("sleeper", ClassApp, 0, func(e *Env) {
		e.ParkTimeout(&fu1, nil, 50*units.Microsecond) // woken at ~10us
		e.ParkIf(&fu2, nil)                            // must sleep until ~200us
		secondWake = e.Now()
	})
	k.Spawn("waker", ClassApp, 1, func(e *Env) {
		e.Compute(block(20_000)) // ~10us
		e.Wake(&fu1, 1)
		e.Compute(block(380_000)) // to ~200us
		e.Wake(&fu2, 1)
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if secondWake < 150*units.Microsecond {
		t.Errorf("second sleep woke at %v: the stale timer fired", secondWake)
	}
}

func TestRequeueMovesWaiters(t *testing.T) {
	k := testKernel(1)
	var from, to Futex
	for i := 0; i < 3; i++ {
		k.Spawn("w", ClassApp, -1, func(e *Env) {
			e.ParkIf(&from, nil)
		})
	}
	k.Spawn("mover", ClassApp, -1, func(e *Env) {
		e.Compute(block(100_000)) // let the waiters park
		woken, moved := e.Requeue(&from, &to, 1, 10)
		if woken != 1 || moved != 2 {
			t.Errorf("requeue woke %d moved %d, want 1/2", woken, moved)
		}
		if from.Waiters() != 0 || to.Waiters() != 2 {
			t.Errorf("queues after requeue: from=%d to=%d", from.Waiters(), to.Waiters())
		}
		e.Wake(&to, 2) // release the moved waiters so the run finishes
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCondBroadcastRequeueHandsOverSerially(t *testing.T) {
	// Broadcast-with-requeue must wake exactly one waiter; the others
	// acquire the mutex one at a time as it is handed over, and all
	// eventually proceed.
	k := testKernel(4)
	var mu Mutex
	var cond Cond
	ready := false
	passed := 0
	for i := 0; i < 3; i++ {
		k.Spawn("waiter", ClassApp, -1, func(e *Env) {
			e.Lock(&mu)
			for !ready {
				e.CondWait(&cond, &mu)
			}
			passed++
			e.Compute(block(5_000)) // hold the mutex briefly
			e.Unlock(&mu)
		})
	}
	k.Spawn("broadcaster", ClassApp, -1, func(e *Env) {
		e.Compute(block(100_000)) // let the waiters block
		e.Lock(&mu)
		ready = true
		e.CondBroadcastRequeue(&cond, &mu)
		e.Unlock(&mu)
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if passed != 3 {
		t.Errorf("%d waiters passed, want 3", passed)
	}
}
