package kernel

import (
	"testing"

	"depburst/internal/cpu"
	"depburst/internal/event"
	"depburst/internal/mem"
	"depburst/internal/units"
)

// testKernel builds a kernel over n cores at 1 GHz.
func testKernel(n int) *Kernel {
	eng := event.New()
	hier := mem.NewHierarchy(mem.DefaultHierarchyConfig(n))
	clock := units.NewClock(1000 * units.MHz)
	cores := make([]*cpu.Core, n)
	for i := range cores {
		cores[i] = cpu.NewCore(i, cpu.DefaultConfig(), clock, hier)
	}
	return New(eng, cores, DefaultConfig())
}

func block(instrs int64) *cpu.Block {
	return &cpu.Block{Instrs: instrs, IPC: 2.0}
}

func TestSpawnRunExit(t *testing.T) {
	k := testKernel(2)
	ran := false
	k.Spawn("t", ClassApp, -1, func(e *Env) {
		e.Compute(block(1000))
		ran = true
	})
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("program did not run")
	}
	if end <= 0 {
		t.Errorf("end time %v", end)
	}
	if k.AppEndTime() != end {
		t.Errorf("AppEndTime %v != end %v", k.AppEndTime(), end)
	}
	th := k.Threads()[0]
	if !th.Exited() || th.EndTime() != end || th.SpawnTime() != 0 {
		t.Errorf("thread state: exited=%v end=%v spawn=%v", th.Exited(), th.EndTime(), th.SpawnTime())
	}
	if th.Counters().Active <= 0 || th.Counters().Instrs != 1000 {
		t.Errorf("counters %+v", th.Counters())
	}
}

func TestParallelismAcrossCores(t *testing.T) {
	// Two equal threads on two cores should finish in ~the time of one.
	solo := testKernel(1)
	solo.Spawn("a", ClassApp, -1, func(e *Env) { e.Compute(block(100_000)) })
	soloEnd, _ := solo.Run()

	duo := testKernel(2)
	for i := 0; i < 2; i++ {
		duo.Spawn("w", ClassApp, i, func(e *Env) { e.Compute(block(100_000)) })
	}
	duoEnd, _ := duo.Run()
	if float64(duoEnd) > 1.1*float64(soloEnd) {
		t.Errorf("2 threads on 2 cores took %v vs solo %v", duoEnd, soloEnd)
	}
}

func TestTimesliceMultiplexing(t *testing.T) {
	// Two threads on one core must interleave and both finish; total time
	// about the sum of their work.
	k := testKernel(1)
	var ends []units.Time
	for i := 0; i < 2; i++ {
		k.Spawn("w", ClassApp, 0, func(e *Env) {
			for j := 0; j < 20; j++ {
				e.Compute(block(20_000)) // 10 µs per block > timeslice/10
			}
			ends = append(ends, e.Now())
		})
	}
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(ends) != 2 {
		t.Fatalf("not all threads finished")
	}
	// Interleaving: the first finisher must end well after half the run
	// (they share the core), not after its own 200 µs of work alone.
	if float64(ends[0]) < 0.7*float64(end) {
		t.Errorf("first finisher at %v of %v: threads did not share the core", ends[0], end)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	k := testKernel(4)
	var mu Mutex
	type span struct{ lo, hi units.Time }
	var spans []span
	for i := 0; i < 4; i++ {
		k.Spawn("w", ClassApp, -1, func(e *Env) {
			for j := 0; j < 10; j++ {
				e.Lock(&mu)
				lo := e.Now()
				e.Compute(block(5_000))
				spans = append(spans, span{lo, e.Now()})
				e.Unlock(&mu)
			}
		})
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 40 {
		t.Fatalf("%d critical sections, want 40", len(spans))
	}
	for i := 0; i < len(spans); i++ {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Fatalf("critical sections overlap: %+v and %+v", a, b)
			}
		}
	}
	if mu.Acquisitions != 40 {
		t.Errorf("acquisitions %d", mu.Acquisitions)
	}
	if mu.Contentions == 0 {
		t.Error("no contention with 4 threads hammering one lock")
	}
}

func TestContentionCreatesEpochs(t *testing.T) {
	k := testKernel(2)
	var mu Mutex
	for i := 0; i < 2; i++ {
		k.Spawn("w", ClassApp, i, func(e *Env) {
			for j := 0; j < 5; j++ {
				e.Lock(&mu)
				e.Compute(block(10_000))
				e.Unlock(&mu)
			}
		})
	}
	k.Run()
	sleeps := 0
	for _, ep := range k.Recorder().Epochs() {
		if ep.EndKind == BoundarySleep && ep.StallTID != NoThread {
			sleeps++
		}
	}
	if sleeps == 0 {
		t.Error("contended locking produced no sleep-bounded epochs")
	}
}

func TestUncontendedLockNoEpochs(t *testing.T) {
	k := testKernel(1)
	var mu Mutex
	k.Spawn("solo", ClassApp, -1, func(e *Env) {
		for j := 0; j < 50; j++ {
			e.Lock(&mu)
			e.Compute(block(100))
			e.Unlock(&mu)
		}
	})
	k.Run()
	// Only spawn and exit boundaries: 2 epochs.
	if n := len(k.Recorder().Epochs()); n > 3 {
		t.Errorf("uncontended locking produced %d epochs", n)
	}
	if mu.Contentions != 0 {
		t.Errorf("contentions %d", mu.Contentions)
	}
}

func TestUnlockNotOwnerPanics(t *testing.T) {
	k := testKernel(1)
	var mu Mutex
	panicked := make(chan bool, 1)
	k.Spawn("bad", ClassApp, -1, func(e *Env) {
		defer func() {
			panicked <- recover() != nil
			panic(killSignal{}) // unwind the thread cleanly
		}()
		e.Unlock(&mu)
	})
	k.Run()
	select {
	case p := <-panicked:
		if !p {
			t.Error("unlock of unheld mutex did not panic")
		}
	default:
		t.Error("program never ran")
	}
}

func TestBarrierReleasesAll(t *testing.T) {
	k := testKernel(4)
	b := NewBarrier(4)
	var after []units.Time
	for i := 0; i < 4; i++ {
		amount := int64(10_000 * (i + 1)) // staggered arrivals
		k.Spawn("w", ClassApp, i, func(e *Env) {
			e.Compute(block(amount))
			e.BarrierWait(b)
			after = append(after, e.Now())
		})
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(after) != 4 {
		t.Fatalf("%d threads passed the barrier", len(after))
	}
	// No one passes before the slowest arrives (~20 µs of work).
	for _, at := range after {
		if at < 20*units.Microsecond {
			t.Errorf("thread passed barrier at %v, before the last arrival", at)
		}
	}
	if b.Parties() != 4 {
		t.Errorf("parties %d", b.Parties())
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	k := testKernel(2)
	b := NewBarrier(2)
	counts := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("w", ClassApp, i, func(e *Env) {
			for r := 0; r < 10; r++ {
				e.Compute(block(1000))
				e.BarrierWait(b)
				counts[i]++
			}
		})
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if counts[0] != 10 || counts[1] != 10 {
		t.Errorf("rounds: %v", counts)
	}
}

func TestCondProducerConsumer(t *testing.T) {
	k := testKernel(2)
	var mu Mutex
	var notEmpty Cond
	queue := 0
	consumed := 0
	k.Spawn("producer", ClassApp, 0, func(e *Env) {
		for i := 0; i < 20; i++ {
			e.Compute(block(2000))
			e.Lock(&mu)
			queue++
			e.CondSignal(&notEmpty)
			e.Unlock(&mu)
		}
	})
	k.Spawn("consumer", ClassApp, 1, func(e *Env) {
		for consumed < 20 {
			e.Lock(&mu)
			for queue == 0 {
				e.CondWait(&notEmpty, &mu)
			}
			queue--
			consumed++
			e.Unlock(&mu)
			e.Compute(block(500))
		}
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if consumed != 20 || queue != 0 {
		t.Errorf("consumed=%d queue=%d", consumed, queue)
	}
}

func TestSleepDuration(t *testing.T) {
	k := testKernel(1)
	var woke units.Time
	k.Spawn("sleeper", ClassApp, -1, func(e *Env) {
		e.Sleep(50 * units.Microsecond)
		woke = e.Now()
	})
	k.Run()
	if woke < 50*units.Microsecond || woke > 55*units.Microsecond {
		t.Errorf("woke at %v, want ~50us", woke)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := testKernel(1)
	var fu Futex
	k.Spawn("stuck", ClassApp, -1, func(e *Env) {
		e.ParkIf(&fu, nil) // sleeps forever
	})
	_, err := k.Run()
	if err == nil {
		t.Fatal("deadlocked run returned no error")
	}
}

func TestDaemonKilledAtShutdown(t *testing.T) {
	k := testKernel(2)
	var fu Futex
	k.Spawn("daemon", ClassService, -1, func(e *Env) {
		for {
			e.ParkIf(&fu, nil)
		}
	})
	k.Spawn("app", ClassApp, -1, func(e *Env) { e.Compute(block(1000)) })
	_, err := k.Run()
	if err != nil {
		t.Fatalf("daemon blocked shutdown: %v", err)
	}
	for _, th := range k.Threads() {
		if !th.Exited() {
			t.Errorf("%v not exited after shutdown", th)
		}
	}
}

func TestWakeOrderFIFO(t *testing.T) {
	k := testKernel(1)
	var fu Futex
	var order []ThreadID
	for i := 0; i < 3; i++ {
		k.Spawn("waiter", ClassApp, -1, func(e *Env) {
			e.ParkIf(&fu, nil)
			order = append(order, e.ID())
		})
	}
	k.Spawn("waker", ClassApp, -1, func(e *Env) {
		e.Compute(block(50_000)) // let the waiters park
		for fu.Waiters() > 0 {
			e.Wake(&fu, 1)
		}
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Errorf("wake order %v not FIFO", order)
		}
	}
}

func TestAffinityPreferred(t *testing.T) {
	k := testKernel(2)
	cores := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("w", ClassApp, i, func(e *Env) {
			e.Compute(block(1000))
			cores[i] = e.CoreID()
		})
	}
	k.Run()
	if cores[0] != 0 || cores[1] != 1 {
		t.Errorf("affinity ignored: %v", cores)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (units.Time, int) {
		k := testKernel(2)
		var mu Mutex
		for i := 0; i < 3; i++ {
			k.Spawn("w", ClassApp, -1, func(e *Env) {
				for j := 0; j < 10; j++ {
					e.Lock(&mu)
					e.Compute(block(3_000))
					e.Unlock(&mu)
					e.Compute(block(7_000))
				}
			})
		}
		end, _ := k.Run()
		return end, len(k.Recorder().Epochs())
	}
	e1, n1 := run()
	e2, n2 := run()
	if e1 != e2 || n1 != n2 {
		t.Errorf("nondeterministic: (%v,%d) vs (%v,%d)", e1, n1, e2, n2)
	}
}

func TestContextSwitchCostScalesWithFrequency(t *testing.T) {
	run := func(f units.Freq) units.Time {
		eng := event.New()
		hier := mem.NewHierarchy(mem.DefaultHierarchyConfig(1))
		clock := units.NewClock(f)
		cores := []*cpu.Core{cpu.NewCore(0, cpu.DefaultConfig(), clock, hier)}
		k := New(eng, cores, DefaultConfig())
		var fu Futex
		k.Spawn("a", ClassApp, 0, func(e *Env) {
			for i := 0; i < 50; i++ {
				e.ParkIf(&fu, func() bool { return fu.Waiters() == 0 })
				e.Wake(&fu, 1)
			}
		})
		k.Spawn("b", ClassApp, 0, func(e *Env) {
			for i := 0; i < 50; i++ {
				e.Wake(&fu, 1)
				e.ParkIf(&fu, func() bool { return fu.Waiters() == 0 })
			}
		})
		end, _ := k.Run()
		return end
	}
	t1 := run(1000 * units.MHz)
	t4 := run(4000 * units.MHz)
	// Ping-pong is pure kernel overhead (syscalls + context switches),
	// which is cycle-based: 4 GHz must be ~4x faster.
	ratio := float64(t1) / float64(t4)
	if ratio < 3 {
		t.Errorf("kernel overhead did not scale with frequency: ratio %.2f", ratio)
	}
}
