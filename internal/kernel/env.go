package kernel

import (
	"depburst/internal/cpu"
	"depburst/internal/units"
)

// syscallCycles approximates kernel entry/exit overhead for futex calls;
// lockCycles approximates an uncontended user-space atomic lock operation.
// Both are CPU work, so they scale with the core's frequency.
const (
	syscallCycles = 300
	lockCycles    = 25
)

// Env is a thread's window into the simulation. Every method executes
// atomically with respect to other threads: the kernel runs exactly one
// thread at a time, and a thread only cedes control where an Env method
// yields.
type Env struct {
	k *Kernel
	t *Thread
}

// Now returns the thread's local simulated time.
func (e *Env) Now() units.Time { return e.t.now }

// ID returns the current thread's identifier.
func (e *Env) ID() ThreadID { return e.t.id }

// CoreID returns the core the thread currently runs on.
func (e *Env) CoreID() int { return e.t.core }

// Counters gives the thread's own performance counters (read-only use).
func (e *Env) Counters() cpu.Counters { return e.t.ctr }

// Kernel returns the owning kernel, for spawning helper threads.
func (e *Env) Kernel() *Kernel { return e.k }

// cost advances the thread's local time by n cycles at its core's current
// frequency.
func (e *Env) cost(cycles int64) {
	t := e.t
	t.now += e.k.cores[t.core].Clock().Freq().CyclesToTime(cycles)
}

// yield hands control back to the kernel and blocks until rescheduled.
func (t *Thread) yield(kind yieldKind) {
	t.out <- kind
	<-t.resume
	if t.killed {
		panic(killSignal{})
	}
}

// Compute simulates a block of instructions on the thread's current core,
// advancing the thread's local time.
func (e *Env) Compute(b *cpu.Block) {
	t := e.t
	if e.k.cfg.ValidateBlocks {
		if err := b.Validate(); err != nil {
			panic("kernel: " + t.name + ": " + err.Error())
		}
	}
	t.now = e.k.cores[t.core].Run(t.now, b, &t.ctr)
	t.yield(yieldOp)
}

// ComputeSampled simulates blk like Compute and additionally accrues the
// block's counters and simulated time into the kernel's fast-forward rate
// pool. Workloads use it for the bulk compute that sampled simulation may
// replace with extrapolation, so the sampling detector learns its rates
// from exactly the class of work fast-forward mode skips.
func (e *Env) ComputeSampled(b *cpu.Block) {
	t := e.t
	if e.k.cfg.ValidateBlocks {
		if err := b.Validate(); err != nil {
			panic("kernel: " + t.name + ": " + err.Error())
		}
	}
	pre := t.ctr
	start := t.now
	t.now = e.k.cores[t.core].Run(t.now, b, &t.ctr)
	e.k.ffPool.Add(t.ctr.Sub(pre))
	e.k.ffPoolTime += t.now - start
	t.yield(yieldOp)
}

// FastCompute simulates n instructions through the core's fast-forward
// extrapolation model when the calling application thread's core is in
// fast-forward mode, reporting whether it did. When it returns false the
// caller must build and simulate a detailed block instead (the
// ComputeSampled path). Service threads (GC, JIT) never fast-forward:
// their bursts are exactly what the sampled mode must keep detailed.
func (e *Env) FastCompute(n int64) bool {
	t := e.t
	c := e.k.cores[t.core]
	if t.class != ClassApp || !c.FastForwarding() {
		return false
	}
	t.now = c.RunFast(t.now, n, &t.ctr)
	t.yield(yieldOp)
	return true
}

// Advance moves the thread's local time forward by d without simulating
// instructions (pure think/IO time; it scales with nothing).
func (e *Env) Advance(d units.Time) {
	e.t.now += d
	e.t.yield(yieldOp)
}

// park puts the calling thread to sleep on f. The caller must have
// established the sleep condition in the same atomic step.
func (e *Env) park(f *Futex) {
	t := e.t
	e.cost(syscallCycles)
	f.waiters = append(f.waiters, t)
	t.state = stateSleeping
	t.wakeGen++ // invalidate any stale park timers
	t.yield(yieldBlocked)
}

// ParkIf atomically evaluates cond and, when true, sleeps on f until some
// thread wakes it. It returns whether it slept.
func (e *Env) ParkIf(f *Futex, cond func() bool) bool {
	if cond != nil && !cond() {
		return false
	}
	e.park(f)
	return true
}

// ParkTimeout sleeps on f until woken or until d elapses (FUTEX_WAIT with
// a timeout). It returns true if woken by another thread, false on
// timeout. cond follows ParkIf semantics; if it returns false the call
// returns true immediately (the condition was already satisfied).
func (e *Env) ParkTimeout(f *Futex, cond func() bool, d units.Time) bool {
	if cond != nil && !cond() {
		return true
	}
	t := e.t
	k := e.k
	e.cost(syscallCycles)
	f.waiters = append(f.waiters, t)
	t.state = stateSleeping
	t.wakeGen++ // fresh generation for this timed sleep
	gen := t.wakeGen
	k.eng.Schedule(t.now+d, func(now units.Time) {
		// Fire only if the thread is still asleep from THIS park (the
		// generation guards against a stale timer hitting a later sleep).
		if t.state != stateSleeping || t.wakeGen != gen {
			return
		}
		f.remove(t)
		t.timedOut = true
		t.state = stateRunnable
		k.runq = append(k.runq, t)
		k.dispatchAll(now)
	})
	t.timedOut = false
	t.yield(yieldBlocked)
	return !t.timedOut
}

// Requeue wakes up to wake threads sleeping on from and moves up to move
// of the remaining waiters onto to without waking them — FUTEX_REQUEUE,
// the primitive glibc uses to broadcast a condition variable without a
// thundering herd. It returns (woken, moved).
func (e *Env) Requeue(from, to *Futex, wake, move int) (int, int) {
	t := e.t
	e.cost(syscallCycles)
	woken := e.k.wake(from, wake, t.now)
	moved := 0
	for moved < move && len(from.waiters) > 0 {
		w := from.waiters[0]
		from.waiters = from.waiters[1:]
		to.waiters = append(to.waiters, w)
		moved++
	}
	t.yield(yieldOp)
	return woken, moved
}

// Wake makes up to n threads sleeping on f runnable and returns how many
// were woken (the futex_wake system call).
func (e *Env) Wake(f *Futex, n int) int {
	t := e.t
	e.cost(syscallCycles)
	woken := e.k.wake(f, n, t.now)
	t.yield(yieldOp)
	return woken
}

// wake moves up to n waiters off f's queue; at is the waker's local time.
func (k *Kernel) wake(f *Futex, n int, at units.Time) int {
	woken := 0
	for woken < n && len(f.waiters) > 0 {
		w := f.waiters[0]
		f.waiters = f.waiters[1:]
		k.makeRunnable(w, at)
		woken++
	}
	return woken
}

// Sleep parks the thread for d of simulated time.
func (e *Env) Sleep(d units.Time) {
	t := e.t
	k := e.k
	wake := t.now + d
	t.state = stateSleeping
	k.eng.Schedule(wake, func(now units.Time) {
		// The thread can only be woken by this timer (it is on no futex
		// queue), but it may have been force-killed meanwhile.
		if t.state == stateSleeping {
			t.state = stateRunnable
			k.runq = append(k.runq, t)
			k.dispatchAll(now)
		}
	})
	t.yield(yieldBlocked)
}

// Lock acquires m, sleeping via futex when contended. The uncontended path
// is a user-space atomic: no kernel interaction, no epoch boundary — just
// like real futex-based locks (paper §III-B).
func (e *Env) Lock(m *Mutex) {
	t := e.t
	e.cost(lockCycles)
	for m.locked {
		m.Contentions++
		e.park(&m.fu)
	}
	m.locked = true
	m.owner = t.id
	m.Acquisitions++
}

// TryLock acquires m if free, returning whether it succeeded.
func (e *Env) TryLock(m *Mutex) bool {
	e.cost(lockCycles)
	if m.locked {
		return false
	}
	m.locked = true
	m.owner = e.t.id
	m.Acquisitions++
	return true
}

// Unlock releases m, waking one contended waiter if present.
func (e *Env) Unlock(m *Mutex) {
	t := e.t
	if !m.locked || m.owner != t.id {
		panic("kernel: unlock of mutex not held by caller")
	}
	e.cost(lockCycles)
	m.locked = false
	m.owner = NoThread
	if len(m.fu.waiters) > 0 {
		e.cost(syscallCycles)
		e.k.wake(&m.fu, 1, t.now)
		t.yield(yieldOp)
	}
}

// BarrierWait blocks until all parties have arrived, then releases them.
func (e *Env) BarrierWait(b *Barrier) {
	t := e.t
	e.cost(lockCycles)
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		e.cost(syscallCycles)
		e.k.wake(&b.fu, len(b.fu.waiters), t.now)
		t.yield(yieldOp)
		return
	}
	gen := b.gen
	for gen == b.gen {
		e.park(&b.fu)
	}
}

// CondWait atomically releases m, sleeps on c, and reacquires m when woken.
func (e *Env) CondWait(c *Cond, m *Mutex) {
	t := e.t
	if !m.locked || m.owner != t.id {
		panic("kernel: CondWait without holding the mutex")
	}
	// Enqueue on the condition, release the mutex, and hand it to a
	// waiter — all in one atomic step, then sleep.
	m.locked = false
	m.owner = NoThread
	if len(m.fu.waiters) > 0 {
		e.k.wake(&m.fu, 1, t.now)
	}
	e.park(&c.fu)
	e.Lock(m)
}

// CondSignal wakes one waiter on c.
func (e *Env) CondSignal(c *Cond) { e.Wake(&c.fu, 1) }

// CondBroadcast wakes every waiter on c. All woken threads then contend
// for the mutex inside CondWait (a thundering herd); see
// CondBroadcastRequeue for the glibc-style alternative.
func (e *Env) CondBroadcast(c *Cond) { e.Wake(&c.fu, len(c.fu.waiters)) }

// CondBroadcastRequeue wakes one waiter and requeues the rest directly
// onto m's wait queue (FUTEX_REQUEUE) — glibc's broadcast strategy, which
// avoids waking every thread only to have them fight for the mutex. The
// requeued threads wake one at a time as the mutex is handed over.
func (e *Env) CondBroadcastRequeue(c *Cond, m *Mutex) {
	e.Requeue(&c.fu, &m.fu, 1, len(c.fu.waiters))
}
