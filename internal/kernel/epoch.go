package kernel

import (
	"depburst/internal/cpu"
	"depburst/internal/units"
)

// BoundaryKind says which scheduling event opened or closed an epoch.
type BoundaryKind int

// Boundary kinds. Sleep, Exit and Preempt take a thread off a core;
// Spawn and Wake put one on.
const (
	BoundarySpawn BoundaryKind = iota
	BoundarySleep
	BoundaryWake
	BoundaryPreempt
	BoundaryExit
)

func (b BoundaryKind) String() string {
	switch b {
	case BoundarySpawn:
		return "spawn"
	case BoundarySleep:
		return "sleep"
	case BoundaryWake:
		return "wake"
	case BoundaryPreempt:
		return "preempt"
	case BoundaryExit:
		return "exit"
	default:
		return "?"
	}
}

// ThreadSlice is one thread's share of a synchronization epoch: the
// performance-counter deltas it accumulated between the epoch's boundaries.
type ThreadSlice struct {
	TID   ThreadID
	Class Class
	Delta cpu.Counters
}

// Epoch is the execution between two consecutive scheduling events, the
// unit over which DEP predicts (paper §III-B). Threads listed in Slices
// were active (scheduled on a core) at some point during the epoch.
type Epoch struct {
	Start, End units.Time
	// StallTID is the thread whose going-to-sleep closed this epoch, or
	// NoThread when the boundary was a wake/spawn. Algorithm 1 resets
	// that thread's delta counter.
	StallTID ThreadID
	EndKind  BoundaryKind
	Slices   []ThreadSlice
}

// Duration returns the epoch's measured length.
func (ep *Epoch) Duration() units.Time { return ep.End - ep.Start }

// Mark is an out-of-band annotation in the epoch stream; the JVM marks
// garbage-collection phase transitions for the COOP predictor.
type Mark struct {
	At    units.Time
	Label string
}

// Recorder observes every scheduling boundary and slices each thread's
// counters into epochs. This is the software side of the paper's
// kernel-module-based epoch detection.
type Recorder struct {
	epochs []Epoch
	marks  []Mark
	last   units.Time
	snaps  []cpu.Counters // indexed by ThreadID
}

// NewRecorder returns an empty recorder starting at time zero.
func NewRecorder() *Recorder { return &Recorder{} }

// Boundary closes the epoch ending at now. threads is the kernel's full
// thread table; per-thread deltas are taken against the previous boundary's
// snapshots.
func (r *Recorder) Boundary(now units.Time, kind BoundaryKind, tid ThreadID, threads []*Thread) {
	// Boundary timestamps mix thread-local clocks (which run up to one
	// block ahead of the engine) with engine time, so a boundary can
	// arrive with a slightly older timestamp than the previous one.
	// Clamp: the epoch stream stays monotone and the work lands in a
	// zero-length epoch at the same instant.
	if now < r.last {
		now = r.last
	}
	for len(r.snaps) < len(threads) {
		r.snaps = append(r.snaps, cpu.Counters{})
	}
	var slices []ThreadSlice
	for _, t := range threads {
		delta := t.ctr.Sub(r.snaps[t.id])
		if delta == (cpu.Counters{}) {
			continue
		}
		r.snaps[t.id] = t.ctr
		slices = append(slices, ThreadSlice{TID: t.id, Class: t.class, Delta: delta})
	}

	stall := NoThread
	switch kind {
	case BoundarySleep, BoundaryPreempt, BoundaryExit:
		stall = tid
	}

	// Coalesce a boundary that adds nothing: same instant, no new work.
	if now == r.last && len(slices) == 0 && len(r.epochs) > 0 {
		last := &r.epochs[len(r.epochs)-1]
		if stall != NoThread && last.End == now {
			last.StallTID = stall
			last.EndKind = kind
		}
		return
	}

	r.epochs = append(r.epochs, Epoch{
		Start:    r.last,
		End:      now,
		StallTID: stall,
		EndKind:  kind,
		Slices:   slices,
	})
	r.last = now
}

// Mark records a labelled instant (e.g. "gc-start", "gc-end").
func (r *Recorder) Mark(now units.Time, label string) {
	r.marks = append(r.marks, Mark{At: now, Label: label})
}

// Epochs returns the recorded epochs in time order.
func (r *Recorder) Epochs() []Epoch { return r.epochs }

// Marks returns the recorded annotations in time order.
func (r *Recorder) Marks() []Mark { return r.marks }

// End returns the time of the last recorded boundary.
func (r *Recorder) End() units.Time { return r.last }
