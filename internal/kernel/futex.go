package kernel

// Futex is a kernel wait queue, the analogue of a Linux futex word's
// kernel-side state. User-level primitives (Mutex, Barrier, Cond) sleep and
// wake through a Futex; each sleep and each wake-induced schedule-in marks
// a synchronization-epoch boundary, exactly the events the paper's DEP
// predictor intercepts.
//
// The zero value is ready to use.
type Futex struct {
	waiters []*Thread
}

// Waiters reports how many threads currently sleep on f.
func (f *Futex) Waiters() int { return len(f.waiters) }

// remove drops t from f's wait queue if present (timeout path).
func (f *Futex) remove(t *Thread) {
	for i, w := range f.waiters {
		if w == t {
			f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
			return
		}
	}
}

// Mutex is a futex-based lock. The zero value is unlocked. Use through
// Env.Lock/Env.Unlock.
type Mutex struct {
	fu     Futex
	locked bool
	owner  ThreadID

	// Acquisitions counts successful lock operations; Contentions counts
	// futex sleeps caused by contention.
	Acquisitions uint64
	Contentions  uint64
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.locked }

// Owner returns the holder's thread ID, or NoThread.
func (m *Mutex) Owner() ThreadID {
	if !m.locked {
		return NoThread
	}
	return m.owner
}

// Barrier blocks threads until a fixed number have arrived. Use through
// Env.BarrierWait.
type Barrier struct {
	parties int
	arrived int
	gen     uint64
	fu      Futex
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("kernel: barrier needs at least one party")
	}
	return &Barrier{parties: n}
}

// Parties returns the number of threads the barrier waits for.
func (b *Barrier) Parties() int { return b.parties }

// Cond is a futex-based condition variable. The zero value is ready to
// use. Use through Env.CondWait/CondSignal/CondBroadcast.
type Cond struct {
	fu Futex
}

// Waiters reports how many threads are blocked on the condition.
func (c *Cond) Waiters() int { return c.fu.Waiters() }
