package kernel

import (
	"testing"

	"depburst/internal/units"
)

func TestAdvance(t *testing.T) {
	k := testKernel(1)
	var end units.Time
	k.Spawn("t", ClassApp, -1, func(e *Env) {
		e.Advance(5 * units.Microsecond)
		end = e.Now()
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 5*units.Microsecond {
		t.Errorf("Advance moved to %v", end)
	}
	// Advance is pure wall time: no instructions, no active scaling
	// bookkeeping beyond Active.
	ctr := k.Threads()[0].Counters()
	if ctr.Instrs != 0 {
		t.Errorf("Advance executed %d instructions", ctr.Instrs)
	}
	if ctr.Active != 5*units.Microsecond {
		t.Errorf("Active = %v", ctr.Active)
	}
}

func TestTryLock(t *testing.T) {
	k := testKernel(1)
	var mu Mutex
	k.Spawn("t", ClassApp, -1, func(e *Env) {
		if !e.TryLock(&mu) {
			t.Error("TryLock on a free mutex failed")
		}
		if e.TryLock(&mu) {
			t.Error("TryLock on a held mutex succeeded")
		}
		e.Unlock(&mu)
		if mu.Locked() {
			t.Error("mutex still locked after unlock")
		}
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutexOwner(t *testing.T) {
	k := testKernel(1)
	var mu Mutex
	if mu.Owner() != NoThread {
		t.Error("free mutex has an owner")
	}
	k.Spawn("t", ClassApp, -1, func(e *Env) {
		e.Lock(&mu)
		if mu.Owner() != e.ID() {
			t.Errorf("owner %v, want %v", mu.Owner(), e.ID())
		}
		e.Unlock(&mu)
	})
	k.Run()
}

func TestWakeOnEmptyFutex(t *testing.T) {
	k := testKernel(1)
	var fu Futex
	k.Spawn("t", ClassApp, -1, func(e *Env) {
		if woken := e.Wake(&fu, 5); woken != 0 {
			t.Errorf("woke %d threads on an empty futex", woken)
		}
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRequeueEmptyQueues(t *testing.T) {
	k := testKernel(1)
	var a, b Futex
	k.Spawn("t", ClassApp, -1, func(e *Env) {
		woken, moved := e.Requeue(&a, &b, 1, 5)
		if woken != 0 || moved != 0 {
			t.Errorf("requeue on empty queues: %d/%d", woken, moved)
		}
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	k := testKernel(4)
	var mu Mutex
	var cond Cond
	ready := false
	passed := 0
	for i := 0; i < 3; i++ {
		k.Spawn("w", ClassApp, -1, func(e *Env) {
			e.Lock(&mu)
			for !ready {
				e.CondWait(&cond, &mu)
			}
			passed++
			e.Unlock(&mu)
		})
	}
	k.Spawn("b", ClassApp, -1, func(e *Env) {
		e.Compute(block(100_000))
		e.Lock(&mu)
		ready = true
		e.CondBroadcast(&cond)
		e.Unlock(&mu)
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if passed != 3 {
		t.Errorf("%d waiters passed", passed)
	}
}

func TestPreemptionCounts(t *testing.T) {
	// Two CPU-hungry threads on one core: preempt boundaries must appear
	// and both threads accumulate roughly equal active time.
	k := testKernel(1)
	for i := 0; i < 2; i++ {
		k.Spawn("w", ClassApp, 0, func(e *Env) {
			for j := 0; j < 40; j++ {
				e.Compute(block(50_000))
			}
		})
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	preempts := 0
	for _, ep := range k.Recorder().Epochs() {
		if ep.EndKind == BoundaryPreempt {
			preempts++
		}
	}
	if preempts == 0 {
		t.Error("no preemptions with two threads on one core")
	}
	a := k.Threads()[0].Counters().Active
	b := k.Threads()[1].Counters().Active
	ratio := float64(a) / float64(b)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("unfair sharing: active %v vs %v", a, b)
	}
}

func TestSpawnGroupTracked(t *testing.T) {
	k := testKernel(1)
	th := k.SpawnGroup("g", ClassApp, 3, -1, func(e *Env) {})
	if th.Group() != 3 {
		t.Errorf("group %d", th.Group())
	}
	if !k.RunningOrRunnableGroup(ClassApp, 3) {
		t.Error("group-3 thread invisible to group query")
	}
	if k.RunningOrRunnableGroup(ClassApp, 4) {
		t.Error("phantom group-4 thread")
	}
	k.Run()
}
