package units

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ps"},
		{999, "999ps"},
		{Nanosecond, "1.000ns"},
		{1500 * Nanosecond, "1.500us"},
		{Millisecond, "1.000ms"},
		{2500 * Millisecond, "2.500s"},
		{-Nanosecond, "-1.000ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFreqPeriod(t *testing.T) {
	if got := (1000 * MHz).Period(); got != 1000*Picosecond {
		t.Errorf("1 GHz period = %v, want 1000ps", got)
	}
	if got := (4000 * MHz).Period(); got != 250*Picosecond {
		t.Errorf("4 GHz period = %v, want 250ps", got)
	}
	if got := (2 * GHz).Period(); got != 500*Picosecond {
		t.Errorf("2 GHz period = %v, want 500ps", got)
	}
}

func TestCyclesToTimeExact(t *testing.T) {
	// At 1 GHz, n cycles is exactly n ns.
	if got := (1 * GHz).CyclesToTime(12345); got != 12345*Nanosecond {
		t.Errorf("1 GHz, 12345 cycles = %v", got)
	}
	// Round trip through TimeToCycles.
	f := 3 * GHz
	for _, n := range []int64{0, 1, 3, 999, 1_000_000} {
		d := f.CyclesToTime(n)
		back := f.TimeToCycles(d)
		if back != n && back != n-1 { // truncation may lose <1 cycle
			t.Errorf("round trip %d cycles @%v -> %v -> %d", n, f, d, back)
		}
	}
}

func TestClockCarriesRemainder(t *testing.T) {
	// 3 GHz: one cycle is 333.33.. ps. 3 cycles must be exactly 1000 ps,
	// regardless of how the advances are split.
	c := NewClock(3 * GHz)
	total := c.Advance(1) + c.Advance(1) + c.Advance(1)
	if total != 1000 {
		t.Errorf("3 cycles at 3 GHz = %dps, want 1000", int64(total))
	}

	// Property: for any frequency and any split of n cycles, the summed
	// time differs from the bulk conversion by at most one picosecond.
	err := quick.Check(func(fRaw uint16, parts []uint8) bool {
		f := Freq(fRaw%4000) + 1
		c1 := NewClock(f)
		c2 := NewClock(f)
		var split Time
		var n int64
		for _, p := range parts {
			split += c1.Advance(int64(p))
			n += int64(p)
		}
		bulk := c2.Advance(n)
		diff := split - bulk
		return diff == 0
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestClockSetFreq(t *testing.T) {
	c := NewClock(1000 * MHz)
	c.Advance(10)
	c.SetFreq(2000 * MHz)
	if got := c.Advance(2); got != 1000 {
		t.Errorf("2 cycles at 2 GHz = %dps, want 1000", int64(got))
	}
	c.SetFreq(2000 * MHz) // no-op
	if c.Freq() != 2000*MHz {
		t.Errorf("freq = %v", c.Freq())
	}
}

func TestClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewClock(0) did not panic")
		}
	}()
	NewClock(0)
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	c := NewClock(GHz)
	defer func() {
		if recover() == nil {
			t.Error("Advance(-1) did not panic")
		}
	}()
	c.Advance(-1)
}

func TestCyclesIn(t *testing.T) {
	c := NewClock(2 * GHz)
	if got := c.CyclesIn(1000 * Picosecond); got != 2 {
		t.Errorf("CyclesIn(1000ps)@2GHz = %d, want 2", got)
	}
	if got := c.CyclesIn(-5); got != 0 {
		t.Errorf("CyclesIn(negative) = %d, want 0", got)
	}
}

func TestEnergy(t *testing.T) {
	// 1 W for 1 ms = 1 mJ.
	if got := EnergyFromPower(1.0, Millisecond); got != Millijoule {
		t.Errorf("1W x 1ms = %v, want 1mJ", got)
	}
	if got := (1500 * Microjoule).String(); got != "1.500mJ" {
		t.Errorf("String = %q", got)
	}
	if got := Energy(2 * Joule).Joules(); got != 2.0 {
		t.Errorf("Joules = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	if MinTime(3, 5) != 3 || MinTime(5, 3) != 3 {
		t.Error("MinTime broken")
	}
	if MaxTimeOf(3, 5) != 5 || MaxTimeOf(5, 3) != 5 {
		t.Error("MaxTimeOf broken")
	}
}

func TestFreqString(t *testing.T) {
	if got := (4 * GHz).String(); got != "4GHz" {
		t.Errorf("4GHz String = %q", got)
	}
	if got := (1125 * MHz).String(); got != "1.125GHz" {
		t.Errorf("1125MHz String = %q", got)
	}
}
