// Package units provides the exact integer time, frequency, and energy
// arithmetic used throughout the simulator.
//
// All simulated time is kept in integer picoseconds so that event ordering
// is exact and runs are bit-reproducible. Core-local cycle counts are
// converted to picoseconds through a Clock, which carries the division
// remainder forward so no time is ever lost to rounding, no matter how many
// partial conversions happen.
package units

import "fmt"

// Time is a simulated duration or instant in picoseconds.
type Time int64

// Common time units expressed in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns t as a float64 number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a float64 number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns t as a float64 number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns t as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an auto-selected unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// MaxTime is the largest representable instant; used as "never".
const MaxTime Time = 1<<63 - 1

// Freq is a clock frequency in megahertz. Integer MHz is exact for every
// frequency this repository uses (the DVFS step is 125 MHz).
type Freq int64

// Common frequencies.
const (
	MHz Freq = 1
	GHz Freq = 1000
)

// Hz returns the frequency in hertz.
func (f Freq) Hz() float64 { return float64(f) * 1e6 }

// GHzF returns the frequency as a float64 number of gigahertz.
func (f Freq) GHzF() float64 { return float64(f) / 1000 }

func (f Freq) String() string {
	if f%GHz == 0 {
		return fmt.Sprintf("%dGHz", int64(f/GHz))
	}
	return fmt.Sprintf("%.3fGHz", f.GHzF())
}

// picosecondsPerSecond = 1e12; cycles at f MHz per second = f*1e6.
// Period numerator/denominator: period = 1e12/(f*1e6) = 1e6/f ps.
const periodNumerator = 1_000_000 // picoseconds per (MHz·cycle)

// Period returns the duration of one cycle at frequency f, truncated to a
// whole number of picoseconds. Use Clock for exact accumulated conversion.
func (f Freq) Period() Time {
	if f <= 0 {
		return 0
	}
	return Time(periodNumerator / int64(f))
}

// CyclesToTime converts a cycle count at frequency f to time, truncating
// the sub-picosecond remainder. Exact when (cycles*1e6)%f == 0.
func (f Freq) CyclesToTime(cycles int64) Time {
	if f <= 0 {
		return 0
	}
	return Time(cycles * periodNumerator / int64(f))
}

// TimeToCycles converts a duration to a whole number of cycles at f,
// truncating any partial cycle.
func (f Freq) TimeToCycles(t Time) int64 {
	if f <= 0 {
		return 0
	}
	return int64(t) * int64(f) / periodNumerator
}

// Clock converts between core-local cycles and global picosecond time for a
// core whose frequency may change at runtime (DVFS). It carries the exact
// sub-picosecond remainder so repeated conversions never drift.
//
// The zero value is a stopped clock; use NewClock.
type Clock struct {
	freq Freq
	// remainder of the last conversion, in units of (1/freq) picosecond
	// fractions: rem/freq picoseconds are owed to the next advance.
	rem int64
}

// NewClock returns a clock running at f.
func NewClock(f Freq) *Clock {
	if f <= 0 {
		panic("units: non-positive clock frequency")
	}
	return &Clock{freq: f}
}

// Freq returns the current frequency.
func (c *Clock) Freq() Freq { return c.freq }

// SetFreq changes the clock frequency. The carried remainder is rescaled to
// the new frequency so that at most one picosecond of accumulated phase is
// perturbed per transition.
func (c *Clock) SetFreq(f Freq) {
	if f <= 0 {
		panic("units: non-positive clock frequency")
	}
	if f == c.freq {
		return
	}
	// rem/oldFreq ps owed == rem*newFreq/oldFreq in new fraction units.
	c.rem = c.rem * int64(f) / int64(c.freq)
	c.freq = f
}

// Advance converts n cycles at the current frequency into picoseconds,
// including any remainder carried from earlier calls. n must be >= 0.
func (c *Clock) Advance(n int64) Time {
	if n < 0 {
		panic("units: negative cycle advance")
	}
	total := n*periodNumerator + c.rem
	t := total / int64(c.freq)
	c.rem = total % int64(c.freq)
	return Time(t)
}

// CyclesIn reports how many whole cycles at the current frequency fit in d.
func (c *Clock) CyclesIn(d Time) int64 {
	if d <= 0 {
		return 0
	}
	return int64(d) * int64(c.freq) / periodNumerator
}

// Energy is an amount of energy in picojoules.
type Energy int64

// Common energy units.
const (
	Picojoule  Energy = 1
	Nanojoule  Energy = 1000
	Microjoule Energy = 1000 * Nanojoule
	Millijoule Energy = 1000 * Microjoule
	Joule      Energy = 1000 * Millijoule
)

// Joules returns e as a float64 number of joules.
func (e Energy) Joules() float64 { return float64(e) / float64(Joule) }

// Millijoules returns e as a float64 number of millijoules.
func (e Energy) Millijoules() float64 { return float64(e) / float64(Millijoule) }

func (e Energy) String() string {
	switch {
	case e < 0:
		return "-" + (-e).String()
	case e < Nanojoule:
		return fmt.Sprintf("%dpJ", int64(e))
	case e < Microjoule:
		return fmt.Sprintf("%.3fnJ", float64(e)/float64(Nanojoule))
	case e < Millijoule:
		return fmt.Sprintf("%.3fuJ", float64(e)/float64(Microjoule))
	case e < Joule:
		return fmt.Sprintf("%.3fmJ", e.Millijoules())
	default:
		return fmt.Sprintf("%.3fJ", e.Joules())
	}
}

// EnergyFromPower integrates a constant power (watts) over a duration.
// 1 W over 1 ps = 1 pJ, so pJ = watts * ps.
func EnergyFromPower(watts float64, d Time) Energy {
	return Energy(watts * float64(d))
}

// MinTime returns the smaller of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxTimeOf returns the larger of a and b.
func MaxTimeOf(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
