package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// fixtureServerRegistry is the shared synthetic fixture for the serving-
// metrics golden and schema tests.
func fixtureServerRegistry() *ServerRegistry {
	s := NewServerRegistry()
	s.ObserveRequest("POST /v1/predict", 200, 800_000)    // warm hit, 0.8ms
	s.ObserveRequest("POST /v1/predict", 200, 45_000_000) // cold run, 45ms
	s.ObserveRequest("POST /v1/predict", 400, 120_000)    // bad request
	s.ObserveRequest("GET /v1/experiments/fig1", 200, 2_100_000_000)
	s.ObserveRequest("GET /healthz", 200, 30_000)
	s.IncCoalesced()
	s.IncCoalesced()
	s.IncRejected()
	s.ObserveTier("surrogate", 90_000)
	s.ObserveTier("surrogate", 140_000)
	s.ObserveTier("full", 45_000_000)
	s.SetGauge("simulations_total", 7)
	s.SetGauge("queue_depth", 0)
	return s
}

func TestServerRegistryNilDisabled(t *testing.T) {
	var s *ServerRegistry
	s.ObserveRequest("GET /healthz", 200, 1)
	s.IncCoalesced()
	s.IncRejected()
	s.ObserveTier("surrogate", 1)
	s.SetGauge("x", 1)
	if s.Coalesced() != 0 || s.Rejected() != 0 || s.TierCount("surrogate") != 0 {
		t.Fatal("nil registry reported non-zero counters")
	}
	doc := s.Export()
	if doc.Version != ServerFormatVersion || len(doc.Routes) != 0 {
		t.Fatalf("nil registry exported %+v", doc)
	}
}

func TestServerRegistryCounters(t *testing.T) {
	s := fixtureServerRegistry()
	if got := s.Coalesced(); got != 2 {
		t.Errorf("coalesced = %d, want 2", got)
	}
	if got := s.Rejected(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	doc := s.Export()
	if len(doc.Routes) != 3 {
		t.Fatalf("routes = %d, want 3", len(doc.Routes))
	}
	// Sorted by route name: experiments, healthz, predict.
	if doc.Routes[2].Route != "POST /v1/predict" {
		t.Fatalf("route order wrong: %q", doc.Routes[2].Route)
	}
	pr := doc.Routes[2]
	if pr.Count != 3 || pr.MinNS != 120_000 || pr.MaxNS != 45_000_000 {
		t.Errorf("predict stats wrong: %+v", pr)
	}
	if len(pr.Status) != 2 || pr.Status[0].Code != 200 || pr.Status[0].Count != 2 ||
		pr.Status[1].Code != 400 || pr.Status[1].Count != 1 {
		t.Errorf("predict status split wrong: %+v", pr.Status)
	}
	// Tiers are sorted by name: full, surrogate.
	if len(doc.Tiers) != 2 || doc.Tiers[0].Tier != "full" || doc.Tiers[1].Tier != "surrogate" {
		t.Fatalf("tier split wrong: %+v", doc.Tiers)
	}
	if sg := doc.Tiers[1]; sg.Count != 2 || sg.MinNS != 90_000 || sg.MaxNS != 140_000 {
		t.Errorf("surrogate tier stats wrong: %+v", sg)
	}
	if got := s.TierCount("surrogate"); got != 2 {
		t.Errorf("TierCount(surrogate) = %d, want 2", got)
	}
	if got := s.TierCount("sampled"); got != 0 {
		t.Errorf("TierCount(sampled) = %d, want 0", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]int64{10, 20, 30})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	for _, v := range []int64{1, 2, 3, 12, 25} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %d, want 10 (bucket upper bound)", got)
	}
	if got := h.Quantile(0.99); got != 30 {
		t.Errorf("p99 = %d, want 30", got)
	}
	h.Observe(1_000) // overflow bucket reports the observed max
	if got := h.Quantile(1.0); got != 1_000 {
		t.Errorf("p100 = %d, want 1000", got)
	}
	// Monotone in q.
	prev := int64(-1)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %d < %d", q, v, prev)
		}
		prev = v
	}
}

func TestServerGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureServerRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "server.golden.json", buf.Bytes())

	// Determinism: a second export is byte-identical.
	var buf2 bytes.Buffer
	if err := fixtureServerRegistry().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("server document is not deterministic")
	}
}

func TestServerGoldenPrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureServerRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "server.golden.prom", buf.Bytes())
}

// TestPrometheusBucketsCumulative: le buckets must be cumulative and end at
// +Inf equal to the count — the exposition-format invariant scrapers check.
func TestPrometheusBucketsCumulative(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureServerRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `le="+Inf"} 3`) {
		t.Errorf("missing cumulative +Inf bucket for predict route:\n%s", out)
	}
	if !strings.Contains(out, "depburst_http_coalesced_total 2") {
		t.Error("missing coalesced counter")
	}
	if !strings.Contains(out, "depburst_http_rejected_total 1") {
		t.Error("missing rejected counter")
	}
	if !strings.Contains(out, "depburst_simulations_total 7") {
		t.Error("missing simulations gauge")
	}
	// Cumulative monotonicity across the predict route's buckets.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `depburst_http_request_duration_seconds_bucket{route="POST /v1/predict"`) {
			continue
		}
		var v int64
		if _, err := fmtSscan(line, &v); err != nil {
			t.Fatalf("unparsable bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative: %d after %d in %q", v, prev, line)
		}
		prev = v
	}
}

// fmtSscan pulls the trailing integer off a Prometheus sample line.
func fmtSscan(line string, v *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	return 1, json.Unmarshal([]byte(line[i+1:]), v)
}

// TestServerSchemaStability pins the exported field names: renaming any of
// them is a breaking change that requires a ServerFormatVersion bump and a
// deliberate update here.
func TestServerSchemaStability(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureServerRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"version", "coalesced", "rejected", "gauges", "routes", "tiers"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("document lost key %q", key)
		}
	}
	tiers := doc["tiers"].([]any)
	t0 := tiers[0].(map[string]any)
	for _, key := range []string{"tier", "count", "sum_ns", "min_ns", "max_ns", "p50_ns", "p99_ns"} {
		if _, ok := t0[key]; !ok {
			t.Errorf("tier block lost key %q", key)
		}
	}
	routes := doc["routes"].([]any)
	r0 := routes[0].(map[string]any)
	for _, key := range []string{"route", "count", "sum_ns", "min_ns", "max_ns",
		"p50_ns", "p90_ns", "p99_ns", "bounds_ns", "counts", "status"} {
		if _, ok := r0[key]; !ok {
			t.Errorf("route block lost key %q", key)
		}
	}
}

// TestServerRegistryConcurrent hammers the registry from many goroutines;
// run under -race this is the data-race guard for the shared handler path.
func TestServerRegistryConcurrent(t *testing.T) {
	s := NewServerRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s.ObserveRequest("POST /v1/predict", 200, int64(j)*1000)
				s.IncCoalesced()
				s.IncRejected()
				s.SetGauge("queue_depth", float64(j))
			}
		}(i)
	}
	wg.Wait()
	doc := s.Export()
	if doc.Routes[0].Count != 8*200 {
		t.Fatalf("count = %d, want %d", doc.Routes[0].Count, 8*200)
	}
	if s.Coalesced() != 8*200 || s.Rejected() != 8*200 {
		t.Fatal("counter totals wrong under concurrency")
	}
}
