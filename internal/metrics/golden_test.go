package metrics

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureRegistry builds a small, fully-populated registry by hand. It is
// the shared fixture for the golden and schema tests: synthetic so the
// exported bytes survive simulator model tweaks, populated so every field
// of the document is exercised.
func fixtureRegistry() *Registry {
	r := NewRegistry()
	r.SetRun("synthetic", 2000)
	r.ObserveDRAM(false, 25_000, false)
	r.ObserveDRAM(false, 55_000, true)
	r.ObserveDRAM(true, 180_000, false)
	r.ObserveSQStall(12_000)
	r.ObserveMissCluster(95_000)
	r.ObserveEpoch(1_200_000)
	r.ObserveEpoch(350_000)
	r.RecordFreqChange(5_000_000, -1, 3500)
	r.RecordFreqChange(9_000_000, 1, 1500)
	r.RecordGCSpan(2_000_000, 2_400_000, false)
	r.RecordGCSpan(6_000_000, 7_100_000, true)
	r.RecordDRAMPoint(DRAMPoint{At: 1_000_000, Reads: 10, Writes: 4, Conflicts: 2, BusUtilization: 0.25})
	r.RecordDRAMPoint(DRAMPoint{At: 2_000_000, Reads: 7, Writes: 1, Conflicts: 0, BusUtilization: 0.125})
	r.RecordQuantumPred(QuantumPred{At: 5_000_000, Freq: 3500, PredMax: 4_800_000, PredChosen: 5_100_000, Epochs: 3})
	r.RecordEpochError(EpochError{
		Start: 0, Dur: 1_200_000, Pred: 700_000, Instrs: 1500,
		Pipeline: 300_000, Memory: 350_000, Burst: 50_000, Idle: 0,
		CPIBase: 1.6, CPIPred: 1.8,
	})
	r.RecordEpochError(EpochError{
		Start: 1_200_000, Dur: 350_000, Pred: 340_000, Instrs: 200,
		Pipeline: 40_000, Memory: 250_000, Burst: 30_000, Idle: 20_000,
		CPIBase: 3.5, CPIPred: 6.8,
	})
	r.SetPredictionSummary(PredictionSummary{
		Model: "DEP+BURST", Base: 2000, Target: 4000,
		Predicted: 1_040_000, Actual: 1_000_000, CPITruth: 2.35,
	})
	return r
}

// checkGolden compares got against the checked-in golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run 'go test -update ./...'): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (re-run with -update if the change is intended)\ngot:\n%s", path, got)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "registry.golden.json", buf.Bytes())
}

// TestWriteJSONDeterministic: identical registries must export identical
// bytes — the determinism tests at the experiments layer build on this.
func TestWriteJSONDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := fixtureRegistry().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := fixtureRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exports of the same fixture differ")
	}
}

// sortedKeys returns m's keys sorted, for order-independent comparison.
func sortedKeys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mustKeys decodes one JSON object and asserts its exact key set — any
// field rename, addition or removal fails here until FormatVersion and the
// goldens are updated together.
func mustKeys(t *testing.T, label string, raw json.RawMessage, want ...string) map[string]json.RawMessage {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	sort.Strings(want)
	if got := sortedKeys(m); !reflect.DeepEqual(got, want) {
		t.Errorf("%s keys = %v, want %v (schema change requires a FormatVersion bump)", label, got, want)
	}
	return m
}

// TestSchemaStability pins the exported metrics document's field names.
func TestSchemaStability(t *testing.T) {
	if FormatVersion != 1 {
		t.Fatalf("FormatVersion = %d; update this test's expected schema alongside the bump", FormatVersion)
	}
	raw, err := json.Marshal(fixtureRegistry().Export())
	if err != nil {
		t.Fatal(err)
	}
	doc := mustKeys(t, "document", raw,
		"version", "workload", "freq_mhz", "counters", "histograms",
		"gc_stw_spans", "freq_changes", "dram_series", "prediction")
	mustKeys(t, "counters", doc["counters"],
		"dram_reads", "dram_writes", "bank_conflicts", "sq_full_stalls",
		"miss_clusters", "dvfs_transitions", "gc_minor", "gc_major", "epochs")

	var hists []json.RawMessage
	if err := json.Unmarshal(doc["histograms"], &hists); err != nil {
		t.Fatal(err)
	}
	wantHists := []string{
		"dram_read_latency", "dram_write_latency", "epoch_duration",
		"gc_stw_pause", "sq_full_stall", "miss_cluster_critical_path",
	}
	if len(hists) != len(wantHists) {
		t.Fatalf("%d histograms, want %d", len(hists), len(wantHists))
	}
	for i, h := range hists {
		m := mustKeys(t, "histogram", h,
			"name", "unit", "bounds_ps", "counts", "count", "sum_ps", "min_ps", "max_ps")
		var name string
		if err := json.Unmarshal(m["name"], &name); err != nil {
			t.Fatal(err)
		}
		if name != wantHists[i] {
			t.Errorf("histogram %d = %q, want %q (export order is part of the contract)", i, name, wantHists[i])
		}
	}

	var spans, changes, series []json.RawMessage
	for _, f := range []struct {
		field string
		dst   *[]json.RawMessage
	}{{"gc_stw_spans", &spans}, {"freq_changes", &changes}, {"dram_series", &series}} {
		if err := json.Unmarshal(doc[f.field], f.dst); err != nil {
			t.Fatalf("%s: %v", f.field, err)
		}
	}
	mustKeys(t, "gc span", spans[0], "start_ps", "end_ps", "major")
	mustKeys(t, "freq change", changes[0], "at_ps", "core", "freq_mhz")
	mustKeys(t, "dram point", series[0], "at_ps", "reads", "writes", "conflicts", "bus_util")

	pred := mustKeys(t, "prediction", doc["prediction"],
		"model", "base_mhz", "target_mhz", "predicted_ps", "actual_ps",
		"rel_error", "cpi_truth", "components", "epochs", "quantums")
	mustKeys(t, "components", pred["components"],
		"pipeline_ps", "memory_ps", "burst_ps", "idle_ps")
	var epochs, quantums []json.RawMessage
	if err := json.Unmarshal(pred["epochs"], &epochs); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(pred["quantums"], &quantums); err != nil {
		t.Fatal(err)
	}
	mustKeys(t, "epoch error", epochs[0],
		"start_ps", "dur_ps", "pred_ps", "instrs", "pipeline_ps",
		"memory_ps", "burst_ps", "idle_ps", "cpi_base", "cpi_pred", "cpi_delta")
	mustKeys(t, "quantum pred", quantums[0],
		"at_ps", "freq_mhz", "pred_max_ps", "pred_chosen_ps", "epochs")
}
