package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// ServerFormatVersion guards consumers of the serving-layer metrics document
// against incompatible builds, exactly like FormatVersion does for the
// per-run document. Bump on any breaking schema change.
const ServerFormatVersion = 1

// Default latency bucket bounds in nanoseconds: 50µs to 10s, resolving both
// the warm-cache fast path (sub-10ms contract) and cold full simulations.
var serverLatBoundsNS = []int64{
	50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, 10_000_000,
	25_000_000, 50_000_000, 100_000_000, 250_000_000, 500_000_000,
	1_000_000_000, 2_500_000_000, 5_000_000_000, 10_000_000_000,
}

// routeStats is one route's request tally: a latency histogram plus
// per-status-code counters.
type routeStats struct {
	lat    Histogram
	status map[int]uint64
}

// ServerRegistry collects the serving layer's telemetry: per-route request
// latency histograms, per-status-code counters, and the coalescing and
// backpressure tallies the batching layer maintains. Unlike the per-run
// Registry — which lives inside one single-threaded simulation — the server
// registry is shared by concurrent HTTP handlers, so every method locks.
//
// A nil *ServerRegistry disables every method, mirroring the Registry
// convention, so handler code never branches on whether metrics are wired.
type ServerRegistry struct {
	mu sync.Mutex
	//depburst:guardedby mu
	routes map[string]*routeStats
	//depburst:guardedby mu
	tiers map[string]*Histogram
	//depburst:guardedby mu
	coalesced uint64
	//depburst:guardedby mu
	rejected uint64
	//depburst:guardedby mu
	gauges map[string]float64
}

// NewServerRegistry returns an enabled serving-layer registry.
func NewServerRegistry() *ServerRegistry {
	return &ServerRegistry{
		routes: make(map[string]*routeStats),
		tiers:  make(map[string]*Histogram),
		gauges: make(map[string]float64),
	}
}

// ObserveRequest records one completed request on a route (e.g.
// "POST /v1/predict"): its HTTP status and wall latency in nanoseconds.
func (s *ServerRegistry) ObserveRequest(route string, status int, latNS int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.routes[route]
	if !ok {
		rs = &routeStats{
			lat:    newHistogram(serverLatBoundsNS),
			status: make(map[int]uint64),
		}
		s.routes[route] = rs
	}
	rs.lat.Observe(latNS)
	rs.status[status]++
}

// ObserveTier records one predict computation served by the named tier
// ("surrogate", "sampled", "full") and its wall latency in nanoseconds.
// Tier counts split serving volume across the prediction ladder; the
// per-tier latency histograms are what the surrogate's speedup contract is
// measured against.
func (s *ServerRegistry) ObserveTier(tier string, latNS int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.tiers[tier]
	if !ok {
		h = new(Histogram)
		*h = newHistogram(serverLatBoundsNS)
		s.tiers[tier] = h
	}
	h.Observe(latNS)
}

// TierCount returns how many computations the named tier has served.
func (s *ServerRegistry) TierCount(tier string) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.tiers[tier]; ok {
		return h.n
	}
	return 0
}

// IncCoalesced records one request served by joining an identical in-flight
// prediction instead of starting its own work.
func (s *ServerRegistry) IncCoalesced() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.coalesced++
	s.mu.Unlock()
}

// IncRejected records one request refused with 429 by the backpressure gate.
func (s *ServerRegistry) IncRejected() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

// Coalesced returns the coalesced-request tally.
func (s *ServerRegistry) Coalesced() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coalesced
}

// Rejected returns the backpressure-rejection tally.
func (s *ServerRegistry) Rejected() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejected
}

// SetGauge publishes a point-in-time value (queue depth, simulations
// executed, cache size) under the given name. The server refreshes gauges
// when a scrape arrives.
func (s *ServerRegistry) SetGauge(name string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.gauges[name] = v
	s.mu.Unlock()
}

// Quantile estimates the q-quantile (0 < q <= 1) from the histogram's
// buckets: the upper bound of the bucket the quantile falls in (the overflow
// bucket reports the observed max). The estimate is deterministic and
// monotone in q, which is all the latency contract tests need.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// ServerDocument is the exported serving-metrics schema. Field names are a
// public contract; rename only with a ServerFormatVersion bump.
type ServerDocument struct {
	Version   int        `json:"version"`
	Coalesced uint64     `json:"coalesced"`
	Rejected  uint64     `json:"rejected"`
	Gauges    []GaugeDoc `json:"gauges"`
	Routes    []RouteDoc `json:"routes"`
	// Tiers is additive (serving-tier split of predict computations); it is
	// absent until the first ObserveTier call, so pre-tier consumers see an
	// unchanged document.
	Tiers []TierDoc `json:"tiers,omitempty"`
}

// GaugeDoc is one published point-in-time value.
type GaugeDoc struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// RouteDoc is one route's exported tally.
type RouteDoc struct {
	Route    string      `json:"route"`
	Count    uint64      `json:"count"`
	SumNS    int64       `json:"sum_ns"`
	MinNS    int64       `json:"min_ns"`
	MaxNS    int64       `json:"max_ns"`
	P50NS    int64       `json:"p50_ns"`
	P90NS    int64       `json:"p90_ns"`
	P99NS    int64       `json:"p99_ns"`
	BoundsNS []int64     `json:"bounds_ns"`
	Counts   []uint64    `json:"counts"`
	Status   []StatusDoc `json:"status"`
}

// StatusDoc is one status code's request count on a route.
type StatusDoc struct {
	Code  int    `json:"code"`
	Count uint64 `json:"count"`
}

// TierDoc is one serving tier's exported tally.
type TierDoc struct {
	Tier  string `json:"tier"`
	Count uint64 `json:"count"`
	SumNS int64  `json:"sum_ns"`
	MinNS int64  `json:"min_ns"`
	MaxNS int64  `json:"max_ns"`
	P50NS int64  `json:"p50_ns"`
	P99NS int64  `json:"p99_ns"`
}

// Export builds the registry's document. Routes and status codes are sorted,
// so the document is deterministic for a given request history.
func (s *ServerRegistry) Export() ServerDocument {
	doc := ServerDocument{Version: ServerFormatVersion}
	if s == nil {
		return doc
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	doc.Coalesced = s.coalesced
	doc.Rejected = s.rejected

	names := make([]string, 0, len(s.gauges))
	for n := range s.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	doc.Gauges = make([]GaugeDoc, 0, len(names))
	for _, n := range names {
		doc.Gauges = append(doc.Gauges, GaugeDoc{Name: n, Value: s.gauges[n]})
	}

	routes := make([]string, 0, len(s.routes))
	for r := range s.routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	doc.Routes = make([]RouteDoc, 0, len(routes))
	for _, route := range routes {
		rs := s.routes[route]
		rd := RouteDoc{
			Route:    route,
			Count:    rs.lat.n,
			SumNS:    rs.lat.sum,
			MinNS:    rs.lat.min,
			MaxNS:    rs.lat.max,
			P50NS:    rs.lat.Quantile(0.50),
			P90NS:    rs.lat.Quantile(0.90),
			P99NS:    rs.lat.Quantile(0.99),
			BoundsNS: rs.lat.bounds,
			Counts:   rs.lat.counts,
		}
		codes := make([]int, 0, len(rs.status))
		for c := range rs.status {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			rd.Status = append(rd.Status, StatusDoc{Code: c, Count: rs.status[c]})
		}
		doc.Routes = append(doc.Routes, rd)
	}

	tiers := make([]string, 0, len(s.tiers))
	for t := range s.tiers {
		tiers = append(tiers, t)
	}
	sort.Strings(tiers)
	for _, tier := range tiers {
		h := s.tiers[tier]
		doc.Tiers = append(doc.Tiers, TierDoc{
			Tier:  tier,
			Count: h.n,
			SumNS: h.sum,
			MinNS: h.min,
			MaxNS: h.max,
			P50NS: h.Quantile(0.50),
			P99NS: h.Quantile(0.99),
		})
	}
	return doc
}

// WriteJSON writes the indented serving-metrics document.
func (s *ServerRegistry) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Export()); err != nil {
		return err
	}
	return bw.Flush()
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): cumulative le buckets, _sum/_count in seconds, and
// the coalescing/backpressure counters. Output is deterministic (sorted
// routes, codes and gauges).
func (s *ServerRegistry) WritePrometheus(w io.Writer) error {
	doc := s.Export()
	bw := bufio.NewWriter(w)

	fmt.Fprintf(bw, "# HELP depburst_http_requests_total Requests served, by route and status code.\n")
	fmt.Fprintf(bw, "# TYPE depburst_http_requests_total counter\n")
	for _, r := range doc.Routes {
		for _, st := range r.Status {
			fmt.Fprintf(bw, "depburst_http_requests_total{route=%q,code=\"%d\"} %d\n", r.Route, st.Code, st.Count)
		}
	}

	fmt.Fprintf(bw, "# HELP depburst_http_request_duration_seconds Request wall latency.\n")
	fmt.Fprintf(bw, "# TYPE depburst_http_request_duration_seconds histogram\n")
	for _, r := range doc.Routes {
		var cum uint64
		for i, bound := range r.BoundsNS {
			cum += r.Counts[i]
			fmt.Fprintf(bw, "depburst_http_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n",
				r.Route, float64(bound)/1e9, cum)
		}
		fmt.Fprintf(bw, "depburst_http_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r.Route, r.Count)
		fmt.Fprintf(bw, "depburst_http_request_duration_seconds_sum{route=%q} %g\n", r.Route, float64(r.SumNS)/1e9)
		fmt.Fprintf(bw, "depburst_http_request_duration_seconds_count{route=%q} %d\n", r.Route, r.Count)
	}

	fmt.Fprintf(bw, "# HELP depburst_http_coalesced_total Requests served by joining an in-flight prediction.\n")
	fmt.Fprintf(bw, "# TYPE depburst_http_coalesced_total counter\n")
	fmt.Fprintf(bw, "depburst_http_coalesced_total %d\n", doc.Coalesced)

	fmt.Fprintf(bw, "# HELP depburst_http_rejected_total Requests refused by the backpressure gate.\n")
	fmt.Fprintf(bw, "# TYPE depburst_http_rejected_total counter\n")
	fmt.Fprintf(bw, "depburst_http_rejected_total %d\n", doc.Rejected)

	if len(doc.Tiers) > 0 {
		fmt.Fprintf(bw, "# HELP depburst_predict_tier_total Predict computations by serving tier.\n")
		fmt.Fprintf(bw, "# TYPE depburst_predict_tier_total counter\n")
		for _, td := range doc.Tiers {
			fmt.Fprintf(bw, "depburst_predict_tier_total{tier=%q} %d\n", td.Tier, td.Count)
		}
		fmt.Fprintf(bw, "# HELP depburst_predict_tier_duration_seconds Predict computation wall latency, by serving tier.\n")
		fmt.Fprintf(bw, "# TYPE depburst_predict_tier_duration_seconds summary\n")
		for _, td := range doc.Tiers {
			fmt.Fprintf(bw, "depburst_predict_tier_duration_seconds{tier=%q,quantile=\"0.5\"} %g\n", td.Tier, float64(td.P50NS)/1e9)
			fmt.Fprintf(bw, "depburst_predict_tier_duration_seconds{tier=%q,quantile=\"0.99\"} %g\n", td.Tier, float64(td.P99NS)/1e9)
			fmt.Fprintf(bw, "depburst_predict_tier_duration_seconds_sum{tier=%q} %g\n", td.Tier, float64(td.SumNS)/1e9)
			fmt.Fprintf(bw, "depburst_predict_tier_duration_seconds_count{tier=%q} %d\n", td.Tier, td.Count)
		}
	}

	for _, g := range doc.Gauges {
		fmt.Fprintf(bw, "# TYPE depburst_%s gauge\n", g.Name)
		fmt.Fprintf(bw, "depburst_%s %g\n", g.Name, g.Value)
	}
	return bw.Flush()
}
