package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// FormatVersion guards consumers against documents written by an
// incompatible build. Bump it on any breaking schema change; the schema
// stability test pins the field names of the current version.
const FormatVersion = 1

// Document is the exported metrics schema. Field names are part of the
// public contract (golden files and the schema-stability test lock them);
// rename only with a FormatVersion bump.
type Document struct {
	Version     int             `json:"version"`
	Workload    string          `json:"workload"`
	FreqMHz     int64           `json:"freq_mhz"`
	Counters    CountersDoc     `json:"counters"`
	Histograms  []HistogramDoc  `json:"histograms"`
	GCStwSpans  []SpanDoc       `json:"gc_stw_spans"`
	FreqChanges []FreqChangeDoc `json:"freq_changes"`
	DRAMSeries  []DRAMPointDoc  `json:"dram_series"`
	Prediction  *PredictionDoc  `json:"prediction,omitempty"`
}

// CountersDoc is the exported counter block.
type CountersDoc struct {
	DRAMReads       int64 `json:"dram_reads"`
	DRAMWrites      int64 `json:"dram_writes"`
	BankConflicts   int64 `json:"bank_conflicts"`
	SQFullStalls    int64 `json:"sq_full_stalls"`
	MissClusters    int64 `json:"miss_clusters"`
	DVFSTransitions int64 `json:"dvfs_transitions"`
	GCMinor         int64 `json:"gc_minor"`
	GCMajor         int64 `json:"gc_major"`
	Epochs          int64 `json:"epochs"`
}

// HistogramDoc is one exported histogram. Bounds are inclusive upper
// bucket bounds in picoseconds; counts has one extra overflow bucket.
type HistogramDoc struct {
	Name     string   `json:"name"`
	Unit     string   `json:"unit"`
	BoundsPS []int64  `json:"bounds_ps"`
	Counts   []uint64 `json:"counts"`
	Count    uint64   `json:"count"`
	SumPS    int64    `json:"sum_ps"`
	MinPS    int64    `json:"min_ps"`
	MaxPS    int64    `json:"max_ps"`
}

// SpanDoc is one stop-the-world window.
type SpanDoc struct {
	StartPS int64 `json:"start_ps"`
	EndPS   int64 `json:"end_ps"`
	Major   bool  `json:"major"`
}

// FreqChangeDoc is one applied DVFS transition.
type FreqChangeDoc struct {
	AtPS    int64 `json:"at_ps"`
	Core    int   `json:"core"`
	FreqMHz int64 `json:"freq_mhz"`
}

// DRAMPointDoc is one per-quantum memory activity slice.
type DRAMPointDoc struct {
	AtPS      int64   `json:"at_ps"`
	Reads     uint64  `json:"reads"`
	Writes    uint64  `json:"writes"`
	Conflicts uint64  `json:"conflicts"`
	BusUtil   float64 `json:"bus_util"`
}

// PredictionDoc carries the prediction-error telemetry: the run-level
// summary, the per-epoch component breakdown, and the energy manager's
// per-quantum decisions when the run was governed.
type PredictionDoc struct {
	Model       string           `json:"model"`
	BaseMHz     int64            `json:"base_mhz"`
	TargetMHz   int64            `json:"target_mhz"`
	PredictedPS int64            `json:"predicted_ps"`
	ActualPS    int64            `json:"actual_ps"`
	RelError    float64          `json:"rel_error"`
	CPITruth    float64          `json:"cpi_truth"`
	Components  ComponentsDoc    `json:"components"`
	Epochs      []EpochErrorDoc  `json:"epochs"`
	Quantums    []QuantumPredDoc `json:"quantums"`
}

// ComponentsDoc is the aggregate component split of a prediction.
type ComponentsDoc struct {
	PipelinePS int64 `json:"pipeline_ps"`
	MemoryPS   int64 `json:"memory_ps"`
	BurstPS    int64 `json:"burst_ps"`
	IdlePS     int64 `json:"idle_ps"`
}

// EpochErrorDoc is one epoch's exported telemetry.
type EpochErrorDoc struct {
	StartPS    int64   `json:"start_ps"`
	DurPS      int64   `json:"dur_ps"`
	PredPS     int64   `json:"pred_ps"`
	Instrs     int64   `json:"instrs"`
	PipelinePS int64   `json:"pipeline_ps"`
	MemoryPS   int64   `json:"memory_ps"`
	BurstPS    int64   `json:"burst_ps"`
	IdlePS     int64   `json:"idle_ps"`
	CPIBase    float64 `json:"cpi_base"`
	CPIPred    float64 `json:"cpi_pred"`
	CPIDelta   float64 `json:"cpi_delta"`
}

// QuantumPredDoc is one governed-run decision record.
type QuantumPredDoc struct {
	AtPS         int64 `json:"at_ps"`
	FreqMHz      int64 `json:"freq_mhz"`
	PredMaxPS    int64 `json:"pred_max_ps"`
	PredChosenPS int64 `json:"pred_chosen_ps"`
	Epochs       int   `json:"epochs"`
}

// histDoc converts one histogram for export.
func histDoc(name string, h *Histogram) HistogramDoc {
	return HistogramDoc{
		Name:     name,
		Unit:     "ps",
		BoundsPS: h.bounds,
		Counts:   h.counts,
		Count:    h.n,
		SumPS:    h.sum,
		MinPS:    h.min,
		MaxPS:    h.max,
	}
}

// Export builds the registry's document. The histogram order, like every
// field name, is part of the schema contract.
func (r *Registry) Export() Document {
	if r == nil {
		return Document{Version: FormatVersion}
	}
	doc := Document{
		Version:  FormatVersion,
		Workload: r.workload,
		FreqMHz:  int64(r.freq),
		Counters: CountersDoc{
			DRAMReads:       r.n.DRAMReads,
			DRAMWrites:      r.n.DRAMWrites,
			BankConflicts:   r.n.BankConflicts,
			SQFullStalls:    r.n.SQFullStalls,
			MissClusters:    r.n.MissClusters,
			DVFSTransitions: r.n.DVFSTransitions,
			GCMinor:         r.n.GCMinor,
			GCMajor:         r.n.GCMajor,
			Epochs:          r.n.Epochs,
		},
		Histograms: []HistogramDoc{
			histDoc("dram_read_latency", &r.dramReadLat),
			histDoc("dram_write_latency", &r.dramWriteLat),
			histDoc("epoch_duration", &r.epochDur),
			histDoc("gc_stw_pause", &r.gcPause),
			histDoc("sq_full_stall", &r.sqStall),
			histDoc("miss_cluster_critical_path", &r.missCluster),
		},
		GCStwSpans:  make([]SpanDoc, 0, len(r.gcSpans)),
		FreqChanges: make([]FreqChangeDoc, 0, len(r.freqChanges)),
		DRAMSeries:  make([]DRAMPointDoc, 0, len(r.dramSeries)),
	}
	for _, s := range r.gcSpans {
		doc.GCStwSpans = append(doc.GCStwSpans, SpanDoc{
			StartPS: int64(s.Start), EndPS: int64(s.End), Major: s.Major,
		})
	}
	for _, c := range r.freqChanges {
		doc.FreqChanges = append(doc.FreqChanges, FreqChangeDoc{
			AtPS: int64(c.At), Core: c.Core, FreqMHz: int64(c.Freq),
		})
	}
	for _, p := range r.dramSeries {
		doc.DRAMSeries = append(doc.DRAMSeries, DRAMPointDoc{
			AtPS: int64(p.At), Reads: p.Reads, Writes: p.Writes,
			Conflicts: p.Conflicts, BusUtil: p.BusUtilization,
		})
	}
	if r.summary != nil || len(r.epochErrs) > 0 || len(r.quantums) > 0 {
		pd := &PredictionDoc{
			Epochs:   make([]EpochErrorDoc, 0, len(r.epochErrs)),
			Quantums: make([]QuantumPredDoc, 0, len(r.quantums)),
		}
		if s := r.summary; s != nil {
			pd.Model = s.Model
			pd.BaseMHz = int64(s.Base)
			pd.TargetMHz = int64(s.Target)
			pd.PredictedPS = int64(s.Predicted)
			pd.ActualPS = int64(s.Actual)
			pd.CPITruth = s.CPITruth
			if s.Actual > 0 {
				pd.RelError = float64(s.Predicted)/float64(s.Actual) - 1
			}
		}
		var comp ComponentsDoc
		for _, e := range r.epochErrs {
			pd.Epochs = append(pd.Epochs, EpochErrorDoc{
				StartPS:    int64(e.Start),
				DurPS:      int64(e.Dur),
				PredPS:     int64(e.Pred),
				Instrs:     e.Instrs,
				PipelinePS: int64(e.Pipeline),
				MemoryPS:   int64(e.Memory),
				BurstPS:    int64(e.Burst),
				IdlePS:     int64(e.Idle),
				CPIBase:    e.CPIBase,
				CPIPred:    e.CPIPred,
				CPIDelta:   e.CPIPred - e.CPIBase,
			})
			comp.PipelinePS += int64(e.Pipeline)
			comp.MemoryPS += int64(e.Memory)
			comp.BurstPS += int64(e.Burst)
			comp.IdlePS += int64(e.Idle)
		}
		pd.Components = comp
		for _, q := range r.quantums {
			pd.Quantums = append(pd.Quantums, QuantumPredDoc{
				AtPS:         int64(q.At),
				FreqMHz:      int64(q.Freq),
				PredMaxPS:    int64(q.PredMax),
				PredChosenPS: int64(q.PredChosen),
				Epochs:       q.Epochs,
			})
		}
		doc.Prediction = pd
	}
	return doc
}

// WriteJSON writes the registry's document as deterministic, indented
// JSON. Output is byte-identical for identical registries: the document is
// built from structs (no map iteration order involved).
func (r *Registry) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Export()); err != nil {
		return fmt.Errorf("metrics: encode: %w", err)
	}
	return bw.Flush()
}
