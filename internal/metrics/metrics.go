// Package metrics is the simulator's per-run observability layer: a
// Registry of zero-alloc-on-hot-path counters and fixed-bucket histograms,
// threaded through the machine assembly (sim), the core model (cpu), the
// memory system (mem), the managed runtime (jvm) and the energy manager
// (energy).
//
// A nil *Registry is the disabled state: every recording method is a no-op
// on a nil receiver, so instrumented hot loops pay a single predictable
// branch when observability is off (guarded by AllocsPerRun tests next to
// the event-engine and DRAM benchmarks). When enabled, the hot-path
// observations (histogram Observe, counter increments) are allocation-free
// too; only the cold timeline records (GC spans, DVFS transitions,
// per-quantum series) append to slices.
//
// All data a Registry collects is produced inside one simulation's
// single-threaded event loop, so a run's registry is deterministic
// regardless of how many runs execute concurrently, and the exported JSON
// document (WriteJSON) is byte-identical across -j settings.
package metrics

import "depburst/internal/units"

// Histogram is a fixed-bucket histogram over int64 samples (picosecond
// durations throughout the simulator). Bucket i counts samples v with
// v <= bounds[i]; the final implicit bucket counts everything larger.
// Observe is allocation-free.
type Histogram struct {
	bounds []int64
	counts []uint64
	n      uint64
	sum    int64
	min    int64
	max    int64
}

// newHistogram builds a histogram with the given ascending upper bounds.
func newHistogram(bounds []int64) Histogram {
	return Histogram{
		bounds: bounds,
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Counts is the registry's named event counters. They complement the
// simulator's own statistics with the observability-specific tallies the
// exported document reports.
type Counts struct {
	DRAMReads       int64 // demand reads serviced by the DRAM model
	DRAMWrites      int64 // buffered writes drained by the DRAM model
	BankConflicts   int64 // row-buffer conflicts (precharge needed)
	SQFullStalls    int64 // commit stalls on a full store queue (BURST)
	MissClusters    int64 // in-ROB long-latency miss clusters
	DVFSTransitions int64 // frequency changes applied (chip or core)
	GCMinor         int64 // minor stop-the-world collections
	GCMajor         int64 // major stop-the-world collections
	Epochs          int64 // synchronization epochs recorded
}

// FreqChange is one applied DVFS transition. Core is the core index, or -1
// for a chip-wide transition.
type FreqChange struct {
	At   units.Time
	Core int
	Freq units.Freq
}

// Span is one stop-the-world garbage-collection window.
type Span struct {
	Start, End units.Time
	Major      bool
}

// DRAMPoint is one sampling-quantum slice of memory-system activity, for
// counter tracks on the exported timeline.
type DRAMPoint struct {
	At             units.Time
	Reads, Writes  uint64
	Conflicts      uint64
	BusUtilization float64
}

// QuantumPred is the energy manager's per-quantum prediction telemetry:
// what it predicted the elapsed interval would take at the maximum and at
// the chosen frequency when it made its decision.
type QuantumPred struct {
	At         units.Time
	Freq       units.Freq
	PredMax    units.Time
	PredChosen units.Time
	Epochs     int
}

// EpochError is one epoch's prediction-error telemetry: the predicted
// duration and its pipeline (scaling), memory (non-scaling CRIT) and burst
// (store-queue) components at the target frequency, plus the CPI the
// predictor implies versus the CPI measured at the base frequency.
type EpochError struct {
	Start    units.Time
	Dur      units.Time // measured duration at the base frequency
	Pred     units.Time // predicted duration at the target frequency
	Instrs   int64
	Pipeline units.Time // frequency-scaling component of the prediction
	Memory   units.Time // non-scaling memory component (CRIT/LL/STALL)
	Burst    units.Time // non-scaling store-burst component (SQ full)
	Idle     units.Time // scheduler/idle time that does not scale
	CPIBase  float64    // measured cycles per instruction at base
	CPIPred  float64    // predicted cycles per instruction at target
}

// PredictionSummary ties a run's per-epoch telemetry to the ground truth:
// the total predicted time at the target frequency versus the measured
// truth run, and the aggregate component split.
type PredictionSummary struct {
	Model     string
	Base      units.Freq
	Target    units.Freq
	Predicted units.Time
	Actual    units.Time // 0 when no truth run is available
	CPITruth  float64    // measured cycles per instruction of the truth run
}

// Registry collects one run's observability data. The zero value is not
// usable; construct with NewRegistry. A nil *Registry disables every
// method, which is the fast path the simulator hot loops take by default.
type Registry struct {
	workload string
	freq     units.Freq

	// Histograms over the run. Bucket bounds are fixed at construction so
	// two runs of the same build always export comparable documents.
	dramReadLat  Histogram // demand-read latency, ps
	dramWriteLat Histogram // buffered-write drain latency, ps
	epochDur     Histogram // synchronization epoch durations, ps
	gcPause      Histogram // stop-the-world pause durations, ps
	sqStall      Histogram // store-queue-full commit stalls, ps
	missCluster  Histogram // critical-path latency per miss cluster, ps

	n Counts

	freqChanges []FreqChange
	gcSpans     []Span
	dramSeries  []DRAMPoint
	quantums    []QuantumPred
	epochErrs   []EpochError
	summary     *PredictionSummary
}

// Fixed bucket bounds (picoseconds). Chosen to resolve the phenomena the
// paper's predictors key on: DRAM row hits (~25 ns) vs conflicts
// (~50-60 ns) vs queueing tails, microsecond-scale GC pauses and epochs.
var (
	latBounds = []int64{
		10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 80_000, 100_000,
		150_000, 200_000, 300_000, 500_000, 750_000, 1_000_000, 2_000_000,
	}
	durBounds = []int64{
		100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000,
		10_000_000, 25_000_000, 50_000_000, 100_000_000, 250_000_000,
		500_000_000, 1_000_000_000, 5_000_000_000, 25_000_000_000,
	}
)

// NewRegistry returns an enabled registry with the standard histogram
// geometry.
func NewRegistry() *Registry {
	return &Registry{
		dramReadLat:  newHistogram(latBounds),
		dramWriteLat: newHistogram(latBounds),
		epochDur:     newHistogram(durBounds),
		gcPause:      newHistogram(durBounds),
		sqStall:      newHistogram(latBounds),
		missCluster:  newHistogram(latBounds),
	}
}

// SetRun labels the registry with the run it observed.
func (r *Registry) SetRun(workload string, f units.Freq) {
	if r == nil {
		return
	}
	r.workload = workload
	r.freq = f
}

// Counts returns the registry's counter snapshot (zero value when disabled).
func (r *Registry) Counts() Counts {
	if r == nil {
		return Counts{}
	}
	return r.n
}

// ObserveDRAM records one DRAM access: its wall-clock latency and whether
// it hit a row-buffer conflict. Hot path: called for every access the DRAM
// model services.
func (r *Registry) ObserveDRAM(write bool, lat units.Time, conflict bool) {
	if r == nil {
		return
	}
	if write {
		r.n.DRAMWrites++
		r.dramWriteLat.Observe(int64(lat))
	} else {
		r.n.DRAMReads++
		r.dramReadLat.Observe(int64(lat))
	}
	if conflict {
		r.n.BankConflicts++
	}
}

// ObserveSQStall records one store-queue-full commit stall (the BURST
// phenomenon). Hot path: called from the core's store-commit loop.
func (r *Registry) ObserveSQStall(d units.Time) {
	if r == nil {
		return
	}
	r.n.SQFullStalls++
	r.sqStall.Observe(int64(d))
}

// ObserveMissCluster records the critical-path latency of one in-ROB
// long-latency miss cluster (what CRIT accumulates). Hot path.
func (r *Registry) ObserveMissCluster(critPath units.Time) {
	if r == nil {
		return
	}
	r.n.MissClusters++
	r.missCluster.Observe(int64(critPath))
}

// ObserveEpoch records one synchronization epoch's duration.
func (r *Registry) ObserveEpoch(d units.Time) {
	if r == nil {
		return
	}
	r.n.Epochs++
	r.epochDur.Observe(int64(d))
}

// RecordFreqChange records an applied DVFS transition (core -1 when
// chip-wide).
func (r *Registry) RecordFreqChange(at units.Time, core int, f units.Freq) {
	if r == nil {
		return
	}
	r.n.DVFSTransitions++
	r.freqChanges = append(r.freqChanges, FreqChange{At: at, Core: core, Freq: f})
}

// RecordGCSpan records one stop-the-world collection window.
func (r *Registry) RecordGCSpan(start, end units.Time, major bool) {
	if r == nil {
		return
	}
	if major {
		r.n.GCMajor++
	} else {
		r.n.GCMinor++
	}
	r.gcPause.Observe(int64(end - start))
	r.gcSpans = append(r.gcSpans, Span{Start: start, End: end, Major: major})
}

// RecordDRAMPoint records one sampling-quantum slice of memory activity.
func (r *Registry) RecordDRAMPoint(p DRAMPoint) {
	if r == nil {
		return
	}
	r.dramSeries = append(r.dramSeries, p)
}

// RecordQuantumPred records the energy manager's per-quantum prediction.
func (r *Registry) RecordQuantumPred(q QuantumPred) {
	if r == nil {
		return
	}
	r.quantums = append(r.quantums, q)
}

// RecordEpochError records one epoch's prediction-error telemetry.
func (r *Registry) RecordEpochError(e EpochError) {
	if r == nil {
		return
	}
	r.epochErrs = append(r.epochErrs, e)
}

// SetPredictionSummary attaches the run-level predicted-vs-truth summary.
func (r *Registry) SetPredictionSummary(s PredictionSummary) {
	if r == nil {
		return
	}
	r.summary = &s
}

// GCSpans returns the recorded stop-the-world windows.
func (r *Registry) GCSpans() []Span {
	if r == nil {
		return nil
	}
	return r.gcSpans
}

// FreqChanges returns the recorded DVFS transitions.
func (r *Registry) FreqChanges() []FreqChange {
	if r == nil {
		return nil
	}
	return r.freqChanges
}

// DRAMSeries returns the per-quantum memory activity slices.
func (r *Registry) DRAMSeries() []DRAMPoint {
	if r == nil {
		return nil
	}
	return r.dramSeries
}

// QuantumPreds returns the energy manager's per-quantum telemetry.
func (r *Registry) QuantumPreds() []QuantumPred {
	if r == nil {
		return nil
	}
	return r.quantums
}

// EpochErrors returns the per-epoch prediction-error telemetry.
func (r *Registry) EpochErrors() []EpochError {
	if r == nil {
		return nil
	}
	return r.epochErrs
}

// Summary returns the predicted-vs-truth summary, or nil.
func (r *Registry) Summary() *PredictionSummary {
	if r == nil {
		return nil
	}
	return r.summary
}
