package metrics

import (
	"testing"

	"depburst/internal/units"
)

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]int64{10, 20, 30})
	for _, v := range []int64{5, 10, 11, 25, 31, 1000} {
		h.Observe(v)
	}
	want := []uint64{2, 1, 1, 2} // (<=10)x2, (<=20)x1, (<=30)x1, overflow x2
	for i, w := range want {
		if h.counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.counts[i], w)
		}
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if h.Sum() != 5+10+11+25+31+1000 {
		t.Errorf("Sum = %d", h.Sum())
	}
	if h.min != 5 || h.max != 1000 {
		t.Errorf("min/max = %d/%d, want 5/1000", h.min, h.max)
	}
	if m := h.Mean(); m < 180 || m > 181 {
		t.Errorf("Mean = %v", m)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram(latBounds)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Error("empty histogram not all-zero")
	}
}

// TestNilRegistryIsSafe locks the disabled state: every method on a nil
// *Registry must be a no-op, never a panic — the simulator's hot loops call
// them unconditionally.
func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.SetRun("x", 1000)
	r.ObserveDRAM(false, 10, true)
	r.ObserveDRAM(true, 10, false)
	r.ObserveSQStall(5)
	r.ObserveMissCluster(7)
	r.ObserveEpoch(100)
	r.RecordFreqChange(1, 0, 2000)
	r.RecordGCSpan(0, 10, false)
	r.RecordDRAMPoint(DRAMPoint{})
	r.RecordQuantumPred(QuantumPred{})
	r.RecordEpochError(EpochError{})
	r.SetPredictionSummary(PredictionSummary{})
	if r.Counts() != (Counts{}) {
		t.Error("nil registry Counts not zero")
	}
	if r.GCSpans() != nil || r.FreqChanges() != nil || r.DRAMSeries() != nil ||
		r.QuantumPreds() != nil || r.EpochErrors() != nil || r.Summary() != nil {
		t.Error("nil registry accessors not nil")
	}
	doc := r.Export()
	if doc.Version != FormatVersion {
		t.Errorf("nil Export version = %d", doc.Version)
	}
}

func TestRegistryCounters(t *testing.T) {
	r := NewRegistry()
	r.ObserveDRAM(false, 25_000, false)
	r.ObserveDRAM(false, 55_000, true)
	r.ObserveDRAM(true, 120_000, false)
	r.ObserveSQStall(4_000)
	r.ObserveMissCluster(90_000)
	r.ObserveEpoch(1_000_000)
	r.RecordFreqChange(10, -1, 3000)
	r.RecordGCSpan(0, 500_000, false)
	r.RecordGCSpan(1_000_000, 3_000_000, true)

	n := r.Counts()
	want := Counts{
		DRAMReads: 2, DRAMWrites: 1, BankConflicts: 1,
		SQFullStalls: 1, MissClusters: 1, DVFSTransitions: 1,
		GCMinor: 1, GCMajor: 1, Epochs: 1,
	}
	if n != want {
		t.Errorf("Counts = %+v, want %+v", n, want)
	}
	if got := r.gcPause.Count(); got != 2 {
		t.Errorf("gc pause histogram count = %d, want 2", got)
	}
	if len(r.GCSpans()) != 2 || len(r.FreqChanges()) != 1 {
		t.Error("span/transition records missing")
	}
}

// TestHotPathZeroAllocs locks the tentpole guarantee on BOTH sides of the
// nil check: the disabled (nil-registry) path and the enabled observation
// path are allocation-free. Only cold records (spans, series) may append.
func TestHotPathZeroAllocs(t *testing.T) {
	var lat units.Time = 42_000
	t.Run("nil", func(t *testing.T) {
		var r *Registry
		avg := testing.AllocsPerRun(1000, func() {
			r.ObserveDRAM(false, lat, true)
			r.ObserveSQStall(lat)
			r.ObserveMissCluster(lat)
			r.ObserveEpoch(lat)
		})
		if avg != 0 {
			t.Errorf("nil-registry hot path allocates %.2f objects/op, want 0", avg)
		}
	})
	t.Run("enabled", func(t *testing.T) {
		r := NewRegistry()
		avg := testing.AllocsPerRun(1000, func() {
			r.ObserveDRAM(false, lat, true)
			r.ObserveDRAM(true, lat, false)
			r.ObserveSQStall(lat)
			r.ObserveMissCluster(lat)
			r.ObserveEpoch(lat)
		})
		if avg != 0 {
			t.Errorf("enabled hot path allocates %.2f objects/op, want 0", avg)
		}
	})
}

func TestExportRelError(t *testing.T) {
	r := NewRegistry()
	r.SetPredictionSummary(PredictionSummary{
		Model: "DEP", Base: 1000, Target: 4000,
		Predicted: 110, Actual: 100,
	})
	doc := r.Export()
	if doc.Prediction == nil {
		t.Fatal("summary did not produce a prediction block")
	}
	if e := doc.Prediction.RelError; e < 0.0999 || e > 0.1001 {
		t.Errorf("RelError = %v, want 0.1", e)
	}
}

// TestExportComponentsSum locks the component invariant: the aggregate
// split equals the per-epoch sums.
func TestExportComponentsSum(t *testing.T) {
	r := NewRegistry()
	r.RecordEpochError(EpochError{Pred: 100, Pipeline: 40, Memory: 50, Burst: 10})
	r.RecordEpochError(EpochError{Pred: 60, Pipeline: 20, Memory: 30, Burst: 5, Idle: 5})
	doc := r.Export()
	c := doc.Prediction.Components
	if c.PipelinePS != 60 || c.MemoryPS != 80 || c.BurstPS != 15 || c.IdlePS != 5 {
		t.Errorf("components = %+v", c)
	}
}
