package sampling

import (
	"testing"

	"depburst/internal/cpu"
	"depburst/internal/units"
)

// quantum builds one detailed observation with a clean, learnable
// signature: CPI 1 at the given DRAM intensity (accesses per KI), half the
// machine busy, and a live rate pool.
func quantum(dramPerKI float64) Quantum {
	const instrs = 2_000_000
	return Quantum{
		Dur:  units.Time(1e9), // 1 ms
		Freq: 1000,
		Delta: cpu.Counters{
			Instrs: instrs,
			Active: units.Time(2e9), // 2 core-ms of 4 → BusyFrac 0.5
		},
		DRAM: uint64(dramPerKI * instrs / 1000),
		PoolDelta: cpu.Counters{
			Instrs: instrs / 2,
			Stores: 1000,
		},
		PoolTime: units.Time(5e8),
	}
}

// fastQuantum is the synthetic observation of a fast-forwarded quantum.
func fastQuantum() Quantum {
	q := quantum(1)
	q.Fast = true
	q.PoolDelta = cpu.Counters{}
	q.PoolTime = 0
	return q
}

func newTestDetector() *Detector { return NewDetector(DefaultPolicy(), 4) }

// reachSteady feeds identical quanta until the detector fast-forwards,
// failing the test if it never does within the policy's K.
func reachSteady(t *testing.T, d *Detector, dramPerKI float64) {
	t.Helper()
	for i := 0; i < d.Policy().K; i++ {
		if d.Observe(quantum(dramPerKI)) {
			return
		}
	}
	if !d.Observe(quantum(dramPerKI)) {
		t.Fatalf("no steady state after %d matching quanta", d.Policy().K+1)
	}
}

func TestNormalized(t *testing.T) {
	if got := (Policy{}).Normalized(); got != (Policy{}) {
		t.Errorf("disabled zero policy normalised to %+v", got)
	}
	// A disabled policy with junk tunables is the same policy as plain
	// disabled — they must hash equal in the result cache.
	if got := (Policy{K: 99, Tolerance: 3}).Normalized(); got != (Policy{}) {
		t.Errorf("disabled policy kept tunables: %+v", got)
	}
	if got := (Policy{Enabled: true}).Normalized(); got != DefaultPolicy() {
		t.Errorf("enabled empty policy normalised to %+v, want defaults", got)
	}
	custom := Policy{Enabled: true, K: 3, Tolerance: 0.5, CheckInterval: 7, SafetyFactor: 2}
	if got := custom.Normalized(); got != custom {
		t.Errorf("explicit policy changed under normalisation: %+v", got)
	}
}

func TestSteadyStateAfterK(t *testing.T) {
	d := newTestDetector()
	k := d.Policy().K
	for i := 0; i < k-1; i++ {
		if d.Observe(quantum(1)) {
			t.Fatalf("fast-forward granted after %d quanta, want %d", i+1, k)
		}
	}
	if !d.Observe(quantum(1)) {
		t.Fatalf("no fast-forward after %d matching quanta", k)
	}
	r := d.Rates()
	if r.PsPerInstr <= 0 {
		t.Errorf("steady state with no extrapolation rate: %+v", r)
	}
	// PoolTime/PoolDelta.Instrs = 5e8 / 1e6 ps per instr.
	if want := 500.0; r.PsPerInstr != want {
		t.Errorf("PsPerInstr = %v, want %v", r.PsPerInstr, want)
	}
}

func TestCheckQuantumCadence(t *testing.T) {
	d := newTestDetector()
	reachSteady(t, d, 1)
	ci := d.Policy().CheckInterval
	for i := 0; i < ci-1; i++ {
		if !d.Observe(fastQuantum()) {
			t.Fatalf("dropped out of fast-forward at fast quantum %d", i+1)
		}
	}
	if d.Observe(fastQuantum()) {
		t.Fatalf("no detailed check scheduled after %d fast quanta", ci)
	}
	// The check quantum matches the phase: fast-forward resumes at once,
	// and the scheduled check is not a drop.
	if !d.Observe(quantum(1)) {
		t.Fatal("matching check quantum did not resume fast-forward")
	}
	if drops := d.Report().Drops; drops != 0 {
		t.Errorf("clean check counted as %d drops", drops)
	}
}

func TestDriftDropsToDetailed(t *testing.T) {
	d := newTestDetector()
	reachSteady(t, d, 1)
	// A drifted signature (10x the DRAM intensity) at the next detailed
	// observation: drop, and the new phase must relearn from scratch.
	if d.Observe(quantum(10)) {
		t.Fatal("fast-forward survived a drifted signature")
	}
	if drops := d.Report().Drops; drops != 1 {
		t.Errorf("drift counted %d drops, want 1", drops)
	}
	for i := 0; i < d.Policy().K-2; i++ {
		if d.Observe(quantum(10)) {
			t.Fatalf("new phase fast-forwarded after %d quanta", i+2)
		}
	}
	if !d.Observe(quantum(10)) {
		t.Fatal("new phase never reached steady state")
	}
}

func TestPhaseTableResumesKnownPhase(t *testing.T) {
	d := newTestDetector()
	reachSteady(t, d, 1)  // learn phase A
	reachSteady(t, d, 10) // drift to and learn phase B
	// Flipping back to A: the single detailed flip-back quantum classifies
	// against the stored entry and fast-forwarding resumes immediately —
	// the point of keeping a table instead of a single hypothesis.
	if !d.Observe(quantum(1)) {
		t.Fatal("known phase did not resume fast-forward at the flip-back quantum")
	}
	if phases := d.Report().Phases; phases < 1 {
		t.Errorf("phase switches = %d, want >= 1", phases)
	}
}

func TestGCQuantaExcluded(t *testing.T) {
	d := newTestDetector()
	reachSteady(t, d, 1)
	// Quanta touched by a collection hold the mode and learn nothing.
	g := fastQuantum()
	g.InGC = true
	if !d.Observe(g) {
		t.Fatal("GC quantum dropped fast-forward mode")
	}
	g = fastQuantum()
	g.GCCount = 3
	if !d.Observe(g) {
		t.Fatal("GC-count change dropped fast-forward mode")
	}
	rep := d.Report()
	if rep.GCQuanta != 2 {
		t.Errorf("GCQuanta = %d, want 2", rep.GCQuanta)
	}
	if rep.Drops != 0 {
		t.Errorf("GC exclusion counted %d drops", rep.Drops)
	}
}

func TestDVFSTransitionResetsTable(t *testing.T) {
	d := newTestDetector()
	reachSteady(t, d, 1)
	q := fastQuantum()
	q.Transitions = 1
	if d.Observe(q) {
		t.Fatal("fast-forward survived a DVFS transition")
	}
	// Every learned rate was expressed against the old timing base: the
	// phase must be relearned in full, not resumed from the table. The
	// transition count is cumulative, so later quanta keep carrying it.
	after := func() Quantum { q := quantum(1); q.Transitions = 1; return q }
	for i := 0; i < d.Policy().K-1; i++ {
		if d.Observe(after()) {
			t.Fatalf("phase resumed after %d quanta post-transition", i+1)
		}
	}
	if !d.Observe(after()) {
		t.Fatal("phase never relearned after the transition")
	}
	if drops := d.Report().Drops; drops != 1 {
		t.Errorf("transition counted %d drops, want 1", drops)
	}
}

func TestIdleQuantumDrops(t *testing.T) {
	d := newTestDetector()
	reachSteady(t, d, 1)
	if d.Observe(Quantum{Dur: units.Time(1e9), Freq: 1000}) {
		t.Fatal("fast-forward survived an idle quantum")
	}
	// The table survives an idle spell: one matching quantum resumes.
	if !d.Observe(quantum(1)) {
		t.Fatal("known phase did not resume after the idle quantum")
	}
}

func TestReportErrorBound(t *testing.T) {
	d := newTestDetector()
	reachSteady(t, d, 1)
	for i := 0; i < 3; i++ {
		d.Observe(fastQuantum())
	}
	rep := d.Report()
	if rep.TotalQuanta != d.Policy().K+3 {
		t.Errorf("TotalQuanta = %d, want %d", rep.TotalQuanta, d.Policy().K+3)
	}
	if rep.FastQuanta != 3 {
		t.Errorf("FastQuanta = %d, want 3", rep.FastQuanta)
	}
	p := d.Policy()
	want := p.SafetyFactor * p.Tolerance * rep.FastFrac()
	if rep.ErrorBound != want {
		t.Errorf("ErrorBound = %v, want %v", rep.ErrorBound, want)
	}
	if rep.FastFrac() <= 0 || rep.FastFrac() >= 1 {
		t.Errorf("FastFrac = %v, want in (0,1)", rep.FastFrac())
	}
}

// TestObserveAllocs guards the per-quantum hot path: Observe runs once per
// sampling quantum inside the machine's event loop and must never allocate.
func TestObserveAllocs(t *testing.T) {
	d := newTestDetector()
	det, fast := quantum(1), fastQuantum()
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		if i%2 == 0 {
			d.Observe(det)
		} else {
			d.Observe(fast)
		}
		i++
	}); n != 0 {
		t.Fatalf("Observe allocates %.1f times per quantum, want 0", n)
	}
}
