// Package sampling implements live, online-sampled simulation in the
// Pac-Sim mold: an online phase detector fingerprints every sampling
// quantum from the counter vectors the machine already collects, declares
// steady state when K matching quanta accumulate for a phase, and
// switches the simulator into a fast-forward mode that extrapolates the
// interval model's own per-epoch attribution instead of stepping every
// memory event. The detector drops back to detailed simulation when the
// fingerprint drifts at a periodic check quantum or when a DVFS
// transition fires; quanta touched by a garbage collection are excluded
// from detection (the collector itself always simulates in detail).
//
// The package deliberately has no dependency on the machine assembly
// (sim imports sampling, not the other way around): the detector consumes
// primitive observations — counter deltas, epoch slices, block-pool
// statistics — and publishes a decision plus the learned extrapolation
// rates (cpu.FFRates) that the cores apply.
package sampling

import (
	"depburst/internal/core"
	"depburst/internal/cpu"
	"depburst/internal/kernel"
	"depburst/internal/units"
)

// Policy configures sampled simulation. The zero value disables sampling
// entirely (full-detail simulation, byte-identical to a build without this
// package). Field values are part of the persistent result-cache content
// key: any change produces results that can never alias a different
// policy's.
type Policy struct {
	// Enabled turns sampled simulation on.
	Enabled bool `json:"enabled"`
	// K is the number of matching quanta a phase must accumulate before
	// it may be fast-forwarded (default 6).
	K int `json:"k,omitempty"`
	// Tolerance is the per-dimension match tolerance for quantum
	// signatures against a phase's running mean: relative for rate
	// dimensions (CPI, DRAM/KI), absolute for the attribution fractions
	// (default 0.25 — individual quantum signatures are noisy; the phase
	// means they are matched against are not).
	Tolerance float64 `json:"tolerance,omitempty"`
	// CheckInterval forces one detailed check quantum after every
	// CheckInterval fast-forwarded quanta, bounding undetected drift
	// (default 24).
	CheckInterval int `json:"check_interval,omitempty"`
	// SafetyFactor scales Tolerance × fast-forwarded-time-fraction into
	// the reported error bound (default 1).
	SafetyFactor float64 `json:"safety_factor,omitempty"`
}

// DefaultPolicy returns the enabled policy with the documented defaults.
func DefaultPolicy() Policy {
	return Policy{Enabled: true, K: 6, Tolerance: 0.25, CheckInterval: 24, SafetyFactor: 1}
}

// Normalized fills unset tunables with their defaults when the policy is
// enabled, and zeroes every tunable when it is not, so equal effective
// policies compare (and hash) equal.
func (p Policy) Normalized() Policy {
	if !p.Enabled {
		return Policy{}
	}
	d := DefaultPolicy()
	if p.K <= 0 {
		p.K = d.K
	}
	if p.Tolerance <= 0 {
		p.Tolerance = d.Tolerance
	}
	if p.CheckInterval <= 0 {
		p.CheckInterval = d.CheckInterval
	}
	if p.SafetyFactor <= 0 {
		p.SafetyFactor = d.SafetyFactor
	}
	return p
}

// Signature is one quantum's phase fingerprint: machine-wide rate and
// attribution dimensions that are stable inside a program phase and move
// when the phase changes. The first two are rates (matched relatively),
// the remaining four are fractions of the quantum (matched absolutely).
type Signature struct {
	// CPI is cycles per committed instruction over the threads' active
	// time.
	CPI float64
	// DRAMPerKI is DRAM accesses per thousand committed instructions.
	DRAMPerKI float64
	// BusyFrac is the cores' active fraction of the quantum.
	BusyFrac float64
	// MemFrac, BurstFrac, IdleFrac are the DEP+BURST per-epoch
	// attribution (core.SumBreakdownEpochs) of the quantum's epochs,
	// normalised by predicted time: the non-scaling memory share, the
	// store-burst share, and the idle share.
	MemFrac, BurstFrac, IdleFrac float64
}

func (s *Signature) add(o Signature) {
	s.CPI += o.CPI
	s.DRAMPerKI += o.DRAMPerKI
	s.BusyFrac += o.BusyFrac
	s.MemFrac += o.MemFrac
	s.BurstFrac += o.BurstFrac
	s.IdleFrac += o.IdleFrac
}

func (s Signature) scale(f float64) Signature {
	s.CPI *= f
	s.DRAMPerKI *= f
	s.BusyFrac *= f
	s.MemFrac *= f
	s.BurstFrac *= f
	s.IdleFrac *= f
	return s
}

// Quantum is one closed sampling quantum's observation, assembled by the
// machine from state it already tracks. Epochs must be the recorder
// sub-slice of epochs that ended inside the quantum.
type Quantum struct {
	Dur    units.Time
	Freq   units.Freq
	Delta  cpu.Counters // all threads' counter deltas over the quantum
	DRAM   uint64       // DRAM accesses in the quantum
	Epochs []kernel.Epoch

	// PoolDelta / PoolTime are the quantum's growth of the kernel's
	// fast-forward rate pool: counters and simulated time of exactly the
	// detailed blocks that fast-forward mode would have replaced.
	PoolDelta cpu.Counters
	PoolTime  units.Time

	// GCCount is the cumulative collection count across every runtime
	// instance; InGC reports a collection in progress at the quantum
	// boundary. Transitions is the machine's cumulative DVFS transition
	// count.
	GCCount     int64
	InGC        bool
	Transitions int

	// Fast reports that the quantum just closed executed in fast-forward
	// mode (its Delta is partly synthesised).
	Fast bool
}

// phaseEntry is one learned program phase: the running mean of its
// signature and the accumulated rate pool its extrapolation model derives
// from. A small fixed table of these lets alternating phases (the
// memory-heavy / memory-light item phases the benchmarks model) resume
// fast-forwarding after a single detailed quantum instead of relearning
// from scratch at every flip.
type phaseEntry struct {
	used     bool
	sum      Signature // sum of member signatures
	n        int       // member quanta
	win      cpu.Counters
	winTime  units.Time
	lastSeen int // detector quantum index of last membership
}

func (p *phaseEntry) mean() Signature { return p.sum.scale(1 / float64(p.n)) }

// numPhases is the phase-table size: enough for the base/alternate phase
// pairs the workloads exhibit plus a transient, small enough to scan
// every quantum for free.
const numPhases = 4

// Detector is the online phase detector. It is driven once per sampling
// quantum from the machine's single-threaded event loop; Observe is
// allocation-free (guarded by a testing.AllocsPerRun test) so sampled
// runs pay no per-quantum GC tax.
type Detector struct {
	p     Policy
	cores int

	table [numPhases]phaseEntry
	cur   int  // active phase hypothesis (index into table)
	have  bool // table[cur] is live

	rates    cpu.FFRates
	fast     bool // next quantum runs fast-forwarded
	checking bool // next detailed quantum is a steady-state check
	fastRun  int  // fast quanta since the last detailed one

	lastGC    int64
	lastTrans int

	// Report statistics.
	total, fastQ, drops, phases, gcQ int
	totalTime, fastTime              units.Time
}

// NewDetector builds a detector for a machine with the given core count.
// The policy is normalised first.
func NewDetector(p Policy, cores int) *Detector {
	if cores < 1 {
		cores = 1
	}
	return &Detector{p: p.Normalized(), cores: cores}
}

// Policy returns the detector's normalised policy.
func (d *Detector) Policy() Policy { return d.p }

// Rates returns the extrapolation model learned for the current phase.
// Meaningful only while Observe returns true.
func (d *Detector) Rates() cpu.FFRates { return d.rates }

// signature fingerprints one detailed quantum. ok is false when the
// quantum carries too little signal to fingerprint (an idle quantum).
func (d *Detector) signature(q Quantum) (Signature, bool) {
	if q.Dur <= 0 || q.Delta.Instrs <= 0 || q.Delta.Active <= 0 {
		return Signature{}, false
	}
	var s Signature
	cycles := q.Delta.Active.Seconds() * q.Freq.Hz()
	s.CPI = cycles / float64(q.Delta.Instrs)
	s.DRAMPerKI = float64(q.DRAM) * 1000 / float64(q.Delta.Instrs)
	s.BusyFrac = float64(q.Delta.Active) / (float64(q.Dur) * float64(d.cores))
	// The interval model's own attribution of the quantum's epochs: how
	// much of the predicted time is non-scaling memory, store-burst, and
	// idle. base == target keeps the attribution on the measured
	// timeline.
	_, mem, burst, idle, pred := core.SumBreakdownEpochs(
		q.Epochs, q.Freq, q.Freq, core.Options{Burst: true})
	if pred > 0 {
		fp := float64(pred)
		s.MemFrac = float64(mem) / fp
		s.BurstFrac = float64(burst) / fp
		s.IdleFrac = float64(idle) / fp
	}
	return s, true
}

// relMatch reports |a-b| <= tol × max(|a|,|b|,floor).
func relMatch(a, b, tol, floor float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > scale {
		scale = b
	}
	if floor > scale {
		scale = floor
	}
	return diff <= tol*scale
}

// absMatch reports |a-b| <= tol (for fraction dimensions).
func absMatch(a, b, tol float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff <= tol
}

// matches reports whether sig agrees with a phase mean within the policy
// tolerance on every dimension.
func (d *Detector) matches(mean, sig Signature) bool {
	tol := d.p.Tolerance
	return relMatch(mean.CPI, sig.CPI, tol, 0.1) &&
		relMatch(mean.DRAMPerKI, sig.DRAMPerKI, tol, 1) &&
		absMatch(mean.BusyFrac, sig.BusyFrac, tol) &&
		absMatch(mean.MemFrac, sig.MemFrac, tol) &&
		absMatch(mean.BurstFrac, sig.BurstFrac, tol) &&
		absMatch(mean.IdleFrac, sig.IdleFrac, tol)
}

// classify finds the phase-table entry sig belongs to, preferring the
// current hypothesis, or -1 when it matches no known phase.
func (d *Detector) classify(sig Signature) int {
	if d.have && d.matches(d.table[d.cur].mean(), sig) {
		return d.cur
	}
	for i := range d.table {
		e := &d.table[i]
		if !e.used || (d.have && i == d.cur) {
			continue
		}
		if d.matches(e.mean(), sig) {
			return i
		}
	}
	return -1
}

// adopt folds one detailed quantum into phase entry i and makes it the
// current hypothesis.
func (d *Detector) adopt(i int, sig Signature, q Quantum) {
	e := &d.table[i]
	e.sum.add(sig)
	e.n++
	e.win.Add(q.PoolDelta)
	e.winTime += q.PoolTime
	e.lastSeen = d.total
	d.cur = i
	d.have = true
}

// newPhase claims a table slot (an unused one, else the least recently
// seen) for a previously unseen signature.
func (d *Detector) newPhase(sig Signature, q Quantum) {
	slot := 0
	for i := range d.table {
		e := &d.table[i]
		if !e.used {
			slot = i
			break
		}
		if e.lastSeen < d.table[slot].lastSeen {
			slot = i
		}
	}
	d.table[slot] = phaseEntry{used: true}
	d.adopt(slot, sig, q)
}

// learn recomputes the extrapolation rates from the current phase's rate
// pool. It reports whether the pool carries enough signal to extrapolate.
func (d *Detector) learn() bool {
	e := &d.table[d.cur]
	if e.win.Instrs <= 0 || e.winTime <= 0 {
		return false
	}
	n := float64(e.win.Instrs)
	d.rates = cpu.FFRates{
		PsPerInstr: float64(e.winTime) / n,
		LoadsL2:    float64(e.win.LoadsL2) / n,
		LoadsL3:    float64(e.win.LoadsL3) / n,
		LoadsDRAM:  float64(e.win.LoadsDRAM) / n,
		Stores:     float64(e.win.Stores) / n,
		StoresDRAM: float64(e.win.StoresDRAM) / n,
		CritPs:     float64(e.win.CritNS) / n,
		LeadPs:     float64(e.win.LeadNS) / n,
		StallPs:    float64(e.win.StallNS) / n,
		SQFullPs:   float64(e.win.SQFull) / n,
	}
	return d.rates.PsPerInstr > 0
}

// steady reports whether the current phase has accumulated enough
// evidence to fast-forward, refreshing the rates when it has.
func (d *Detector) steady() bool {
	return d.have && d.table[d.cur].n >= d.p.K && d.learn()
}

// Observe ingests one closed quantum and decides the mode for the next:
// true means the cores should fast-forward with Rates(), false means
// detailed simulation.
func (d *Detector) Observe(q Quantum) bool {
	d.total++
	d.totalTime += q.Dur
	if q.Fast {
		d.fastQ++
		d.fastTime += q.Dur
	}

	// A DVFS transition changes the timing base every learned rate is
	// expressed in: discard the phase table and restart detection.
	if q.Transitions != d.lastTrans {
		d.lastTrans = q.Transitions
		d.lastGC = q.GCCount
		if d.fast || d.checking {
			d.drops++
		}
		d.table = [numPhases]phaseEntry{}
		d.have = false
		d.fast = false
		d.checking = false
		d.fastRun = 0
		return false
	}

	// A quantum a collection touched carries a polluted fingerprint:
	// exclude it from detection — the current mode holds, nothing is
	// learned, and a pending steady-state check waits for a clean
	// quantum. The collector itself always runs in detail either way:
	// fast-forward only ever replaces application compute.
	if q.InGC || q.GCCount != d.lastGC {
		d.lastGC = q.GCCount
		d.gcQ++
		if q.Fast {
			d.fastRun++
		}
		return d.fast
	}

	if q.Fast {
		// Fast-forwarded quantum: counters are synthetic, nothing to
		// learn. Schedule the periodic detailed drift check.
		d.fastRun++
		if d.fastRun >= d.p.CheckInterval {
			d.fast = false
			d.checking = true
			d.fastRun = 0
		}
		return d.fast
	}

	sig, ok := d.signature(q)
	if !ok {
		// An idle quantum carries no phase signal; fast-forwarding
		// nothing saves nothing, so sit in detailed mode until signal
		// returns. Learned phases are kept.
		if d.fast || d.checking {
			d.drops++
		}
		d.fast = false
		d.checking = false
		d.fastRun = 0
		return false
	}

	wasChecking := d.checking
	d.checking = false
	wasFast := d.fast

	if i := d.classify(sig); i >= 0 {
		// A known phase: the current one (steady state holds) or a
		// stored alternate (the workload flipped back to a phase it
		// already taught us; resume fast-forwarding without relearning).
		if i != d.cur && d.have {
			d.phases++
		}
		d.adopt(i, sig, q)
	} else {
		// An unseen signature: start learning a new phase.
		if wasFast || wasChecking {
			d.drops++
		}
		d.newPhase(sig, q)
	}

	if d.steady() {
		if !wasFast {
			d.fastRun = 0
		}
		d.fast = true
		return true
	}
	d.fast = false
	return false
}

// Report summarises a finished sampled run: how much simulated time was
// fast-forwarded and the conservative error bound the extrapolation
// carries. ErrorBound bounds the relative completion-time error
// |sampled − full| / full as SafetyFactor × Tolerance × fast-forwarded
// time fraction (validated by the error-bound property test against the
// fig1 benchmarks).
type Report struct {
	Policy      Policy
	TotalQuanta int
	FastQuanta  int
	GCQuanta    int // quanta excluded from detection because a GC touched them
	Drops       int // drop-backs from steady state to detailed
	Phases      int // phase switches after the first phase was established
	TotalTime   units.Time
	FastTime    units.Time
	ErrorBound  float64
}

// FastFrac returns the fraction of simulated time that was
// fast-forwarded.
func (r Report) FastFrac() float64 {
	if r.TotalTime <= 0 {
		return 0
	}
	return float64(r.FastTime) / float64(r.TotalTime)
}

// Report returns the detector's run summary.
func (d *Detector) Report() Report {
	r := Report{
		Policy:      d.p,
		TotalQuanta: d.total,
		FastQuanta:  d.fastQ,
		GCQuanta:    d.gcQ,
		Drops:       d.drops,
		Phases:      d.phases,
		TotalTime:   d.totalTime,
		FastTime:    d.fastTime,
	}
	r.ErrorBound = d.p.SafetyFactor * d.p.Tolerance * r.FastFrac()
	return r
}
