package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadOptions configures one load run against a live server.
type LoadOptions struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// Path is the endpoint to hit (default "/v1/predict").
	Path string
	// Method defaults to POST when Body is set, GET otherwise.
	Method string
	// Body is sent on every request (a predict request, typically).
	Body []byte
	// RPS is the open-loop arrival rate (default 50).
	RPS int
	// Duration bounds the run (default 5s).
	Duration time.Duration
	// RequestTimeout bounds one request (default 30s).
	RequestTimeout time.Duration
}

// LoadReport summarises a load run. The latency quantiles are computed from
// the full sample set, not a histogram sketch.
type LoadReport struct {
	Requests  int     `json:"requests"`
	OK        int     `json:"ok"`         // 2xx
	Errors4xx int     `json:"errors_4xx"` // includes 429 rejections
	Errors5xx int     `json:"errors_5xx"`
	NetErrors int     `json:"net_errors"` // transport failures, timeouts
	P50Ms     float64 `json:"p50_ms"`
	P90Ms     float64 `json:"p90_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
	WallMs    float64 `json:"wall_ms"`
	RPS       float64 `json:"rps"` // achieved completion rate
}

// RunLoad drives the server open-loop at the configured rate until the
// duration (or ctx) expires, then reports counts and latency quantiles.
func RunLoad(ctx context.Context, o LoadOptions) (*LoadReport, error) {
	if o.BaseURL == "" {
		return nil, fmt.Errorf("load: BaseURL is required")
	}
	if o.Path == "" {
		o.Path = "/v1/predict"
	}
	if o.Method == "" {
		if len(o.Body) > 0 {
			o.Method = http.MethodPost
		} else {
			o.Method = http.MethodGet
		}
	}
	if o.RPS <= 0 {
		o.RPS = 50
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	client := &http.Client{Timeout: o.RequestTimeout}
	url := o.BaseURL + o.Path

	var (
		mu        sync.Mutex
		latencies []time.Duration
		rep       LoadReport
	)
	shoot := func() {
		req, err := http.NewRequestWithContext(ctx, o.Method, url, bytes.NewReader(o.Body))
		if err != nil {
			mu.Lock()
			rep.NetErrors++
			mu.Unlock()
			return
		}
		if len(o.Body) > 0 {
			req.Header.Set("Content-Type", "application/json")
		}
		start := time.Now() //depburst:allow determinism -- the load generator measures real request latency
		resp, err := client.Do(req)
		lat := time.Since(start) //depburst:allow determinism -- real latency is the measurement
		mu.Lock()
		defer mu.Unlock()
		rep.Requests++
		if err != nil {
			rep.NetErrors++
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		latencies = append(latencies, lat)
		switch {
		case resp.StatusCode >= 500:
			rep.Errors5xx++
		case resp.StatusCode >= 400:
			rep.Errors4xx++
		default:
			rep.OK++
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, o.Duration)
	defer cancel()
	interval := time.Second / time.Duration(o.RPS)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	start := time.Now() //depburst:allow determinism -- wall duration bounds the measured RPS
fire:
	for {
		select {
		case <-runCtx.Done():
			break fire
		case <-ticker.C:
			wg.Add(1)
			go func() {
				defer wg.Done()
				shoot()
			}()
		}
	}
	wg.Wait()
	wall := time.Since(start) //depburst:allow determinism -- wall duration bounds the measured RPS

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	q := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return float64(latencies[i]) / 1e6
	}
	rep.P50Ms = q(0.50)
	rep.P90Ms = q(0.90)
	rep.P99Ms = q(0.99)
	if n := len(latencies); n > 0 {
		rep.MaxMs = float64(latencies[n-1]) / 1e6
	}
	rep.WallMs = float64(wall) / 1e6
	if wall > 0 {
		rep.RPS = float64(rep.Requests) / wall.Seconds()
	}
	return &rep, nil
}

// WriteJSON writes the indented report.
func (r *LoadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
