// Package server exposes the simulator as a prediction service: a JSON HTTP
// API over the experiments Runner with request coalescing, bounded-queue
// backpressure, per-request deadline propagation into the simulator's
// sampling loop, and graceful drain.
//
// Serving is tiered (DESIGN.md "Tiered serving"): an optional learned
// surrogate answers eligible predict requests in microseconds when its
// confidence clears the gate (tier 0), sampled simulation trades a bounded
// error for severalfold faster cold runs (tier 1), and full-detail
// simulation is the ground truth backstop (tier 2). Every full-detail
// truth a fallback computes is fed back into the surrogate online.
//
// Endpoints:
//
//	POST /v1/predict              DEP+BURST (and friends) prediction for one
//	                              benchmark across a target-frequency set
//	GET  /v1/experiments/fig1     Figure 1 table (JSON)
//	GET  /v1/experiments/fig7     Figure 7 table (JSON, ?step=MHz)
//	GET  /v1/experiments/energy   Figure 6 energy-manager table (JSON)
//	GET  /v1/metrics              serving metrics (JSON, ?format=prometheus)
//	GET  /healthz                 liveness (always 200 while the process runs)
//	GET  /readyz                  readiness (503 once draining)
//
// The API schema stability policy is documented in DESIGN.md: response field
// names are frozen per /v1; breaking changes bump the path version.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"depburst/internal/experiments"
	"depburst/internal/metrics"
	"depburst/internal/report"
	"depburst/internal/sampling"
	"depburst/internal/surrogate"
	"depburst/internal/units"
)

// Config assembles a Server. Zero fields take the documented defaults.
type Config struct {
	// Runner executes and memoises simulations. Required.
	Runner *experiments.Runner

	// Workers caps concurrently-executing predict requests (default 2).
	// The Runner's own pool additionally caps simulations; this gate
	// bounds request-level work and defines the backpressure queue.
	Workers int

	// MaxQueue caps predict requests waiting for a worker slot. Arrivals
	// beyond it are refused with 429 + Retry-After instead of queueing
	// unboundedly (default 16).
	MaxQueue int

	// Timeout bounds each request's total work; the deadline propagates
	// through the Runner into the simulator's sampling loop. 0 disables.
	Timeout time.Duration

	// MaxBody caps the request body the decoder reads (default 1 MiB).
	MaxBody int64

	// DrainTimeout bounds graceful shutdown once Serve's context is
	// cancelled (default 10s).
	DrainTimeout time.Duration

	// Metrics receives per-route telemetry. nil disables recording.
	Metrics *metrics.ServerRegistry

	// Step is the fig7 static-sweep granularity in MHz when the request
	// does not override it with ?step= (default 500: the full 125 MHz
	// paper grid is a batch workload, not a request).
	Step units.Freq

	// Surrogate, when set, serves eligible predict requests from the
	// learned fast path (tier 0) before any simulation is scheduled, and
	// absorbs every full-detail truth the slower tiers compute (see
	// DESIGN.md "Tiered serving"). nil disables the tier.
	Surrogate *surrogate.Model

	// SurrogateMinConf is the confidence a surrogate estimate must reach
	// to answer a request; anything lower falls through to the Runner
	// (default surrogate.DefaultMinConfidence).
	SurrogateMinConf float64
}

// Server is the HTTP layer. Construct with New, run with Serve.
type Server struct {
	cfg Config
	mux *http.ServeMux

	sem     chan struct{} // predict worker slots
	waiting atomic.Int64  // predict requests queued for a slot

	draining atomic.Bool

	flights struct {
		sync.Mutex
		//depburst:guardedby Mutex
		m map[string]*flight
	}

	// samplers holds the per-sampling-policy Runner derivations (see
	// runnerFor); bounded by maxSamplingRunners.
	samplers struct {
		sync.Mutex
		//depburst:guardedby Mutex
		m map[sampling.Policy]*experiments.Runner
	}
}

// New validates cfg, applies defaults, and assembles the routing table.
func New(cfg Config) (*Server, error) {
	if cfg.Runner == nil {
		return nil, errors.New("server: Config.Runner is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 16
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 1 << 20
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.Step <= 0 {
		cfg.Step = 500
	}
	if cfg.SurrogateMinConf <= 0 {
		cfg.SurrogateMinConf = surrogate.DefaultMinConfidence
	}
	s := &Server{
		cfg: cfg,
		mux: http.NewServeMux(),
		sem: make(chan struct{}, cfg.Workers),
	}
	s.flights.m = make(map[string]*flight)
	s.samplers.m = make(map[sampling.Policy]*experiments.Runner)

	s.route("POST /v1/predict", s.handlePredict)
	s.route("GET /v1/experiments/fig1", s.experimentHandler("fig1"))
	s.route("GET /v1/experiments/fig7", s.experimentHandler("fig7"))
	s.route("GET /v1/experiments/energy", s.experimentHandler("energy"))
	s.route("GET /v1/metrics", s.handleMetrics)
	s.route("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.route("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return s, nil
}

// route registers a handler wrapped with per-route telemetry: the pattern is
// the metrics label, and the recorder captures status and wall latency.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now() //depburst:allow determinism -- latency telemetry observes the real clock; it never feeds prediction output
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		//depburst:allow determinism -- latency telemetry observes the real clock
		s.cfg.Metrics.ObserveRequest(pattern, rec.status, time.Since(start).Nanoseconds())
	})
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Handler returns the routing table, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler with the per-request deadline applied.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.mux.ServeHTTP(w, r)
}

// Serve accepts connections on ln until ctx is cancelled, then marks the
// server draining (readyz turns 503), stops accepting, and waits up to
// DrainTimeout for in-flight requests to finish.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	// The drain context must outlive the just-cancelled serve ctx, so it is
	// deliberately detached from it.
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout) //depburst:allow ctxflow -- deliberate detachment: draining starts when ctx is already done
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("server: drain: %w", err)
	}
	<-errc // Serve has returned http.ErrServerClosed
	return nil
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

// writeError emits the JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(apiError{Error: fmt.Sprintf(format, args...)})
}

// writeCtxError maps a context failure on a request to its HTTP status:
// deadline exceeded is 504; a client that went away gets a best-effort 499
// (the write is usually moot).
func writeCtxError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
		return
	}
	writeError(w, 499, "request cancelled")
}

// experimentHandler serves one experiment table as JSON. The request context
// is bound into the Runner, so a disconnect or deadline stops spawning
// simulations and unwinds the in-progress ones within a sampling quantum.
func (s *Server) experimentHandler(name string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		step := s.cfg.Step
		if v := r.URL.Query().Get("step"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 25 || n > 3000 {
				writeError(w, http.StatusBadRequest, "invalid step %q (want MHz in [25,3000])", v)
				return
			}
			step = units.Freq(n)
		}
		rc := s.cfg.Runner.WithContext(ctx)
		var table *report.Table
		err := experiments.Cancelable(func() {
			switch name {
			case "fig1":
				table = rc.Fig1()
			case "fig7":
				table = rc.Fig7(step)
			case "energy":
				table = rc.Fig6()
			}
		})
		if err != nil {
			writeCtxError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := table.FprintJSON(w); err != nil {
			// Headers are gone; nothing recoverable.
			return
		}
	}
}

// handleMetrics serves the serving-layer registry, refreshing the
// point-in-time gauges first. ?format=prometheus selects the text
// exposition format; the default is the JSON document.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.cfg.Metrics
	if reg == nil {
		writeError(w, http.StatusNotFound, "metrics disabled")
		return
	}
	reg.SetGauge("simulations_total", float64(s.cfg.Runner.Simulations()))
	reg.SetGauge("queue_depth", float64(s.waiting.Load()))
	if disk := s.cfg.Runner.DiskCache(); disk != nil {
		st := disk.Stats()
		reg.SetGauge("simcache_hits", float64(st.Hits))
		reg.SetGauge("simcache_misses", float64(st.Misses))
	}
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	reg.WriteJSON(w)
}
