package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"depburst/internal/experiments"
	"depburst/internal/simcache"
	"depburst/internal/surrogate"
	"depburst/internal/units"
)

// trainedSurrogate builds a training corpus by prewarming the test suite at
// the given frequencies through a disk-cached runner, then scans and trains
// a model from it. The corpus runner is returned so tests can compare
// surrogate answers against the truth it simulated.
func trainedSurrogate(t *testing.T, freqs ...units.Freq) (*surrogate.Model, *experiments.Runner) {
	t.Helper()
	st, err := simcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	r := experiments.NewRunnerWorkers(2)
	r.SetDiskCache(st)
	r.Prewarm(testSuite(t), freqs...)
	samples, err := surrogate.Scan(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("corpus scan found no training samples")
	}
	return surrogate.Train(samples), r
}

// TestSurrogateTierServes is the tier-0 contract: a request the trained
// model is confident about is answered without scheduling a single
// simulation, annotated with its tier and trust, and lands within the
// model's own error estimate of the simulated truth.
func TestSurrogateTierServes(t *testing.T) {
	model, corpus := trainedSurrogate(t, 1000, 2000, 3000, 4000)
	s, r := newTestServer(t, func(c *Config) { c.Surrogate = model })

	w := post(t, s, "/v1/predict", `{"bench":"pmd.scale","base_mhz":1000,"targets_mhz":[2000,3000]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if sims := r.Simulations(); sims != 0 {
		t.Fatalf("surrogate tier ran %d simulations, want 0", sims)
	}
	var resp PredictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Tier != TierSurrogate {
		t.Fatalf("tier = %q, want %q", resp.Tier, TierSurrogate)
	}
	if resp.Surrogate == nil || resp.Surrogate.Confidence < DefaultMinConfidenceForTest() ||
		resp.Surrogate.ErrEstimate <= 0 {
		t.Fatalf("surrogate annotation missing or weak: %+v", resp.Surrogate)
	}
	if len(resp.Predictions) != 2 {
		t.Fatalf("predictions = %d, want 2", len(resp.Predictions))
	}
	// The answer agrees with the simulated truth to within the model's own
	// error estimate (with slack for the estimate being a mean, not a max).
	spec := testSuite(t)[0]
	for _, p := range resp.Predictions {
		truth := corpus.Truth(spec, units.Freq(p.TargetMHz))
		re := relDiff(float64(p.PredictedPS), float64(truth.Time))
		if re > 4*resp.Surrogate.ErrEstimate {
			t.Errorf("target %d MHz: rel error %.4f exceeds 4x estimate %.4f",
				p.TargetMHz, re, resp.Surrogate.ErrEstimate)
		}
	}
	if n := s.cfg.Metrics.TierCount(TierSurrogate); n != 1 {
		t.Errorf("surrogate tier count = %d, want 1", n)
	}
}

func relDiff(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := (got - want) / want
	if d < 0 {
		d = -d
	}
	return d
}

// DefaultMinConfidenceForTest re-exports the serving threshold so the test
// reads as the contract it checks.
func DefaultMinConfidenceForTest() float64 { return surrogate.DefaultMinConfidence }

// TestSurrogateFallbackByteIdentical: when the confidence gate refuses the
// fast path, the fallback response must be byte-identical to what a
// surrogate-less server produces — clients cannot tell the tiers apart
// except by the additive annotation's presence.
func TestSurrogateFallbackByteIdentical(t *testing.T) {
	model, _ := trainedSurrogate(t, 1000, 2000, 3000, 4000)
	gated, gr := newTestServer(t, func(c *Config) {
		c.Surrogate = model
		c.SurrogateMinConf = 0.999 // above any attainable confidence
	})
	plain, _ := newTestServer(t, nil)

	body := `{"bench":"pmd.scale","base_mhz":1000,"targets_mhz":[2000,3000]}`
	wg := post(t, gated, "/v1/predict", body)
	wp := post(t, plain, "/v1/predict", body)
	if wg.Code != http.StatusOK || wp.Code != http.StatusOK {
		t.Fatalf("status %d / %d", wg.Code, wp.Code)
	}
	if !bytes.Equal(wg.Body.Bytes(), wp.Body.Bytes()) {
		t.Fatalf("fallback differs from surrogate-less response:\ngated: %s\nplain: %s", wg.Body, wp.Body)
	}
	if bytes.Contains(wg.Body.Bytes(), []byte(`"tier"`)) {
		t.Fatal("fallback response leaked a tier annotation")
	}
	if sims := gr.Simulations(); sims == 0 {
		t.Fatal("gated server answered without simulating")
	}
	if n := gated.cfg.Metrics.TierCount(TierFull); n != 1 {
		t.Errorf("full tier count = %d, want 1", n)
	}
	if n := gated.cfg.Metrics.TierCount(TierSurrogate); n != 0 {
		t.Errorf("surrogate tier count = %d, want 0", n)
	}
}

// TestSurrogateIneligibleRequests: actual, non-default-model and sampled
// requests bypass the fast path even when the model is confident, and their
// responses are byte-identical to a surrogate-less server's.
func TestSurrogateIneligibleRequests(t *testing.T) {
	model, _ := trainedSurrogate(t, 1000, 2000, 3000, 4000)
	cases := []struct {
		name string
		body string
	}{
		{"actual", `{"bench":"pmd.scale","base_mhz":1000,"targets_mhz":[2000],"actual":true}`},
		{"other model", `{"bench":"pmd.scale","base_mhz":1000,"targets_mhz":[2000],"models":["mcrit"]}`},
		{"two models", `{"bench":"pmd.scale","base_mhz":1000,"targets_mhz":[2000],"models":["dep+burst","dep"]}`},
		{"sampled", `{"bench":"pmd.scale","base_mhz":1000,"targets_mhz":[2000],"sampling":{"enabled":true}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sur, sr := newTestServer(t, func(c *Config) { c.Surrogate = model })
			plain, _ := newTestServer(t, nil)
			ws := post(t, sur, "/v1/predict", tc.body)
			wp := post(t, plain, "/v1/predict", tc.body)
			if ws.Code != http.StatusOK || wp.Code != http.StatusOK {
				t.Fatalf("status %d / %d: %s", ws.Code, wp.Code, ws.Body)
			}
			if !bytes.Equal(ws.Body.Bytes(), wp.Body.Bytes()) {
				t.Fatalf("ineligible request response differs:\nsur:   %s\nplain: %s", ws.Body, wp.Body)
			}
			if sims := sr.Simulations(); sims == 0 {
				t.Fatal("ineligible request did not simulate")
			}
			wantTier := TierFull
			if strings.Contains(tc.body, "sampling") {
				wantTier = TierSampled
			}
			if n := sur.cfg.Metrics.TierCount(wantTier); n != 1 {
				t.Errorf("%s tier count = %d, want 1", wantTier, n)
			}
		})
	}
}

// TestSurrogateFeedbackFlipsTier is the online-learning loop: a server
// whose surrogate starts empty answers its first request by simulating,
// feeds those truths back, and then serves the identical frequency band
// from the fast path without a single new simulation — agreeing with the
// truths it just absorbed.
func TestSurrogateFeedbackFlipsTier(t *testing.T) {
	s, r := newTestServer(t, func(c *Config) { c.Surrogate = surrogate.NewModel() })

	first := post(t, s, "/v1/predict",
		`{"bench":"pmd.scale","base_mhz":1000,"targets_mhz":[2000,4000],"actual":true}`)
	if first.Code != http.StatusOK {
		t.Fatalf("first status %d: %s", first.Code, first.Body)
	}
	if bytes.Contains(first.Body.Bytes(), []byte(`"tier"`)) {
		t.Fatal("empty surrogate answered the first request")
	}
	simsAfterFirst := r.Simulations()
	if simsAfterFirst == 0 {
		t.Fatal("first request did not simulate")
	}
	var truth PredictResponse
	if err := json.Unmarshal(first.Body.Bytes(), &truth); err != nil {
		t.Fatal(err)
	}

	second := post(t, s, "/v1/predict",
		`{"bench":"pmd.scale","base_mhz":1000,"targets_mhz":[2000,4000]}`)
	if second.Code != http.StatusOK {
		t.Fatalf("second status %d: %s", second.Code, second.Body)
	}
	if sims := r.Simulations(); sims != simsAfterFirst {
		t.Fatalf("second request simulated (%d -> %d sims)", simsAfterFirst, sims)
	}
	var resp PredictResponse
	if err := json.Unmarshal(second.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Tier != TierSurrogate {
		t.Fatalf("tier = %q after feedback, want %q", resp.Tier, TierSurrogate)
	}
	// The group law is a least-squares fit over the three observed truths,
	// so it reproduces them closely but not exactly.
	if re := relDiff(float64(resp.BaseTimePS), float64(truth.BaseTimePS)); re > 0.05 {
		t.Errorf("surrogate base %d vs absorbed truth %d (rel %.4f)", resp.BaseTimePS, truth.BaseTimePS, re)
	}
	for i, p := range resp.Predictions {
		if re := relDiff(float64(p.PredictedPS), float64(truth.Predictions[i].ActualPS)); re > 0.05 {
			t.Errorf("target %d MHz: surrogate %.0f vs absorbed truth %d (rel %.4f)",
				p.TargetMHz, float64(p.PredictedPS), truth.Predictions[i].ActualPS, re)
		}
	}
}

// TestSurrogateConcurrentTiers: concurrent identical eligible requests are
// all absorbed by the fast path (zero simulations, identical bodies), while
// concurrent identical ineligible requests still coalesce into one flight —
// the tiering does not bypass the batching layer.
func TestSurrogateConcurrentTiers(t *testing.T) {
	model, _ := trainedSurrogate(t, 1000, 2000, 3000, 4000)
	s, r := newTestServer(t, func(c *Config) {
		c.Surrogate = model
		c.Workers = 4
		c.MaxQueue = 200
	})
	run := func(body string) [][]byte {
		const n = 50
		out := make([][]byte, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				w := post(t, s, "/v1/predict", body)
				if w.Code != http.StatusOK {
					t.Errorf("status %d: %s", w.Code, w.Body)
				}
				out[i] = w.Body.Bytes()
			}(i)
		}
		wg.Wait()
		return out
	}

	fast := run(`{"bench":"pmd.scale","base_mhz":1000,"targets_mhz":[3000]}`)
	for i, b := range fast {
		if !bytes.Equal(b, fast[0]) {
			t.Fatalf("surrogate response %d differs", i)
		}
	}
	if sims := r.Simulations(); sims != 0 {
		t.Fatalf("eligible burst ran %d simulations, want 0", sims)
	}
	if n := s.cfg.Metrics.TierCount(TierSurrogate); n != 50 {
		t.Errorf("surrogate tier count = %d, want 50", n)
	}

	slow := run(`{"bench":"pmd.scale","base_mhz":1000,"targets_mhz":[3000],"models":["mcrit"]}`)
	for i, b := range slow {
		if !bytes.Equal(b, slow[0]) {
			t.Fatalf("fallback response %d differs", i)
		}
	}
	if sims := r.Simulations(); sims != 1 {
		t.Fatalf("ineligible burst ran %d simulations, want exactly 1", sims)
	}
	if s.cfg.Metrics.Coalesced() == 0 {
		t.Error("ineligible burst did not coalesce")
	}
}

// TestTierMetricsExposed: after traffic through every tier, the metrics
// endpoint reports the per-tier split in both formats.
func TestTierMetricsExposed(t *testing.T) {
	model, _ := trainedSurrogate(t, 1000, 2000, 3000, 4000)
	s, _ := newTestServer(t, func(c *Config) { c.Surrogate = model })
	for _, body := range []string{
		`{"bench":"pmd.scale","base_mhz":1000,"targets_mhz":[2000]}`,
		`{"bench":"pmd.scale","base_mhz":1000,"targets_mhz":[2000],"models":["mcrit"]}`,
		`{"bench":"pmd.scale","base_mhz":1000,"targets_mhz":[2000],"sampling":{"enabled":true}}`,
	} {
		if w := post(t, s, "/v1/predict", body); w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body)
		}
	}

	w := get(t, s, "/v1/metrics")
	var doc struct {
		Tiers []struct {
			Tier  string `json:"tier"`
			Count uint64 `json:"count"`
		} `json:"tiers"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	seen := map[string]uint64{}
	for _, td := range doc.Tiers {
		seen[td.Tier] = td.Count
	}
	for _, tier := range []string{TierSurrogate, TierSampled, TierFull} {
		if seen[tier] != 1 {
			t.Errorf("tier %q count = %d, want 1 (doc: %s)", tier, seen[tier], w.Body)
		}
	}

	p := get(t, s, "/v1/metrics?format=prometheus")
	for _, want := range []string{
		`depburst_predict_tier_total{tier="surrogate"} 1`,
		`depburst_predict_tier_total{tier="full"} 1`,
		`depburst_predict_tier_total{tier="sampled"} 1`,
	} {
		if !strings.Contains(p.Body.String(), want) {
			t.Errorf("prometheus exposition missing %q:\n%s", want, p.Body)
		}
	}
}
