package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"depburst/internal/core"
	"depburst/internal/dacapo"
	"depburst/internal/experiments"
	"depburst/internal/report"
	"depburst/internal/sampling"
	"depburst/internal/sim"
	"depburst/internal/units"
)

// Request-shape bounds: enough for a full DVFS sweep across every model,
// small enough that one request cannot demand unbounded work.
const (
	maxTargets = 64
	maxModels  = 8
)

// PredictRequest is the POST /v1/predict body. Exactly one of Bench (a
// stock-suite name) or Spec (a full benchmark definition, see
// `depburst suite`) selects the workload.
type PredictRequest struct {
	Bench      string       `json:"bench,omitempty"`
	Spec       *dacapo.Spec `json:"spec,omitempty"`
	BaseMHz    int64        `json:"base_mhz,omitempty"` // default 1000
	TargetsMHz []int64      `json:"targets_mhz"`        // required, ascending output order
	Models     []string     `json:"models,omitempty"`   // default ["dep+burst"]
	Actual     bool         `json:"actual,omitempty"`   // also simulate each target for rel_error

	// Sampling opts the request into sampled simulation (see DESIGN.md
	// "Sampled simulation"): its truth runs use online phase detection and
	// fast-forward extrapolation, trading a machine-reported error bound
	// for severalfold faster cold predictions. Absent (or enabled=false):
	// full detail. {"enabled":true} selects the default policy. Sampled
	// and full-detail results never share cache entries.
	Sampling *sampling.Policy `json:"sampling,omitempty"`
}

// PredictResponse is the POST /v1/predict result. Field names are frozen
// per the /v1 schema policy (DESIGN.md); Sampling is additive and appears
// only when the request opted into sampled simulation, Tier and Surrogate
// are additive and appear only when the learned fast path answered (a
// fallback response is byte-identical to a surrogate-less server's).
type PredictResponse struct {
	Bench       string            `json:"bench"`
	BaseMHz     int64             `json:"base_mhz"`
	BaseTimePS  int64             `json:"base_time_ps"`
	Predictions []Prediction      `json:"predictions"`
	Sampling    *PredictSampling  `json:"sampling,omitempty"`
	Tier        string            `json:"tier,omitempty"`
	Surrogate   *PredictSurrogate `json:"surrogate,omitempty"`
}

// PredictSurrogate annotates a surrogate-tier response with how much the
// model trusts it: the weakest confidence and largest cross-validated
// relative-error estimate over every frequency the response covers.
type PredictSurrogate struct {
	Confidence  float64 `json:"confidence"`
	ErrEstimate float64 `json:"err_estimate"`
}

// Serving-tier labels, as reported in PredictResponse.Tier and the metrics
// registry: the learned fast path, sampled simulation, full-detail
// simulation.
const (
	TierSurrogate = "surrogate"
	TierSampled   = "sampled"
	TierFull      = "full"
)

// PredictSampling annotates a sampled response with the accuracy the
// simulations themselves reported.
type PredictSampling struct {
	// ErrorBound is the largest relative completion-time error bound any
	// simulation behind this response reported: every *_ps field is
	// within it of its full-detail value.
	ErrorBound float64 `json:"error_bound"`
	// FastFrac is the fraction of simulated time that was fast-forwarded,
	// aggregated over those simulations.
	FastFrac float64 `json:"fast_frac"`
}

// Prediction is one (model, target) cell.
type Prediction struct {
	Model       string   `json:"model"`
	TargetMHz   int64    `json:"target_mhz"`
	PredictedPS int64    `json:"predicted_ps"`
	ActualPS    int64    `json:"actual_ps,omitempty"`
	RelError    *float64 `json:"rel_error,omitempty"`
}

// modelNames maps the wire names onto predictor constructors, in the
// canonical (paper) order used when a request asks for several.
var modelNames = []string{"mcrit", "mcrit+burst", "coop", "coop+burst", "dep", "dep+burst"}

func modelFor(name string) (core.Model, bool) {
	switch name {
	case "mcrit":
		return core.NewMCrit(core.Options{}), true
	case "mcrit+burst":
		return core.NewMCrit(core.Options{Burst: true}), true
	case "coop":
		return core.NewCOOP(core.Options{}), true
	case "coop+burst":
		return core.NewCOOP(core.Options{Burst: true}), true
	case "dep":
		return core.NewDEP(core.Options{}), true
	case "dep+burst":
		return core.NewDEP(core.Options{Burst: true}), true
	}
	return nil, false
}

// DecodePredictRequest reads, strictly parses and validates one predict
// request from r: unknown fields, trailing data and out-of-range parameters
// are errors, and the body is capped at limit bytes. The returned request is
// normalised (defaults applied, targets sorted and deduplicated), so equal
// workloads decode to equal values — the property the request coalescer
// keys on. This is also the fuzzing entry point.
func DecodePredictRequest(r io.Reader, limit int64) (*PredictRequest, error) {
	if limit > 0 {
		r = io.LimitReader(r, limit+1)
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req PredictRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("parse request: %w", err)
	}
	// A second value (or garbage) after the document is an error; EOF is
	// the only acceptable outcome.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("trailing data after request body")
	}

	switch {
	case req.Bench == "" && req.Spec == nil:
		return nil, fmt.Errorf("one of bench or spec is required")
	case req.Bench != "" && req.Spec != nil:
		return nil, fmt.Errorf("bench and spec are mutually exclusive")
	}
	if req.Spec != nil {
		if err := req.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("spec: %w", err)
		}
	}
	if req.BaseMHz == 0 {
		req.BaseMHz = 1000
	}
	if req.BaseMHz < 100 || req.BaseMHz > 20_000 {
		return nil, fmt.Errorf("base_mhz %d outside [100,20000]", req.BaseMHz)
	}
	if len(req.TargetsMHz) == 0 {
		return nil, fmt.Errorf("targets_mhz is required")
	}
	if len(req.TargetsMHz) > maxTargets {
		return nil, fmt.Errorf("%d targets exceeds the limit of %d", len(req.TargetsMHz), maxTargets)
	}
	for _, t := range req.TargetsMHz {
		if t < 100 || t > 20_000 {
			return nil, fmt.Errorf("target_mhz %d outside [100,20000]", t)
		}
	}
	sort.Slice(req.TargetsMHz, func(i, j int) bool { return req.TargetsMHz[i] < req.TargetsMHz[j] })
	req.TargetsMHz = dedupInt64(req.TargetsMHz)

	if len(req.Models) == 0 {
		req.Models = []string{"dep+burst"}
	}
	if len(req.Models) > maxModels {
		return nil, fmt.Errorf("%d models exceeds the limit of %d", len(req.Models), maxModels)
	}
	seen := make(map[string]bool, len(req.Models))
	norm := req.Models[:0]
	for _, m := range req.Models {
		if _, ok := modelFor(m); !ok {
			return nil, fmt.Errorf("unknown model %q (have %v)", m, modelNames)
		}
		if !seen[m] {
			seen[m] = true
			norm = append(norm, m)
		}
	}
	req.Models = norm

	if req.Sampling != nil {
		p := *req.Sampling
		switch {
		case p.K < 0 || p.K > 256:
			return nil, fmt.Errorf("sampling.k %d outside [0,256]", p.K)
		case p.Tolerance < 0 || p.Tolerance > 0.5:
			return nil, fmt.Errorf("sampling.tolerance %v outside [0,0.5]", p.Tolerance)
		case p.CheckInterval < 0 || p.CheckInterval > 4096:
			return nil, fmt.Errorf("sampling.check_interval %d outside [0,4096]", p.CheckInterval)
		case p.SafetyFactor < 0 || p.SafetyFactor > 16:
			return nil, fmt.Errorf("sampling.safety_factor %v outside [0,16]", p.SafetyFactor)
		}
		// Normalise so equal effective policies coalesce (and cache) as
		// one; an explicitly disabled policy is the same request as no
		// sampling field at all.
		p = p.Normalized()
		if !p.Enabled {
			req.Sampling = nil
		} else {
			*req.Sampling = p
		}
	}
	return &req, nil
}

func dedupInt64(xs []int64) []int64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// key returns the canonical coalescing key: the normalised request's JSON.
// Two requests for identical work always produce identical keys, because
// DecodePredictRequest normalises ordering and defaults.
func (req *PredictRequest) key() string {
	b, err := json.Marshal(req)
	if err != nil {
		// A decoded request always re-marshals; this is unreachable.
		panic(err)
	}
	return string(b)
}

// flight is one in-progress predict computation other identical requests
// join. A failed flight is cleared so the next arrival retries, mirroring
// the Runner's singleflight semantics.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// handlePredict serves POST /v1/predict: strict decode, coalesce with
// identical in-flight work, backpressure on the worker queue, then compute
// under the request deadline.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	req, err := DecodePredictRequest(body, 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec, err := s.resolveSpec(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	start := time.Now() //depburst:allow determinism -- tier latency telemetry observes the real clock; it never feeds prediction output
	if body, ok := s.trySurrogate(req, spec); ok {
		//depburst:allow determinism -- tier latency telemetry observes the real clock
		s.cfg.Metrics.ObserveTier(TierSurrogate, time.Since(start).Nanoseconds())
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}
	ctx := r.Context()
	key := req.key()

	for {
		s.flights.Lock()
		f := s.flights.m[key]
		if f == nil {
			f = &flight{done: make(chan struct{})}
			s.flights.m[key] = f
			s.flights.Unlock()
			s.leadPredict(ctx, key, f, req, spec)
		} else {
			s.flights.Unlock()
			s.cfg.Metrics.IncCoalesced()
			select {
			case <-f.done:
			case <-ctx.Done():
				writeCtxError(w, ctx.Err())
				return
			}
		}
		switch {
		case f.err == nil:
			w.Header().Set("Content-Type", "application/json")
			w.Write(f.body)
			return
		case errors.Is(f.err, errSaturated):
			w.Header().Set("Retry-After", "1")
			s.cfg.Metrics.IncRejected()
			writeError(w, http.StatusTooManyRequests, "prediction queue full")
			return
		case errors.Is(f.err, errPolicyLimit):
			writeError(w, http.StatusBadRequest, "%v", f.err)
			return
		case errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded):
			if ctx.Err() != nil {
				// This caller's own deadline/disconnect.
				writeCtxError(w, ctx.Err())
				return
			}
			// The flight's leader was cancelled but this caller is still
			// live: take over as the new leader.
			continue
		default:
			writeError(w, http.StatusInternalServerError, "%v", f.err)
			return
		}
	}
}

// errSaturated marks a flight refused by the backpressure gate.
var errSaturated = fmt.Errorf("server: saturated")

// errPolicyLimit marks a request refused because it would create a
// distinct sampling-policy Runner beyond the bound.
var errPolicyLimit = fmt.Errorf("too many distinct sampling policies")

// leadPredict executes the flight: acquire a worker slot (or refuse when the
// queue is full), compute, publish, and clear the flight. The flight map
// never keeps completed entries — memoisation lives in the Runner and the
// disk cache; the map exists only to merge concurrent identical work.
func (s *Server) leadPredict(ctx context.Context, key string, f *flight, req *PredictRequest, spec dacapo.Spec) {
	defer func() {
		s.flights.Lock()
		delete(s.flights.m, key)
		s.flights.Unlock()
		close(f.done)
	}()
	if s.waiting.Load() >= int64(s.cfg.MaxQueue) {
		f.err = errSaturated
		return
	}
	s.waiting.Add(1)
	select {
	case s.sem <- struct{}{}:
		s.waiting.Add(-1)
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.waiting.Add(-1)
		f.err = ctx.Err()
		return
	}
	start := time.Now() //depburst:allow determinism -- tier latency telemetry observes the real clock; it never feeds prediction output
	f.body, f.err = s.computePredict(ctx, req, spec)
	if f.err == nil {
		tier := TierFull
		if req.Sampling != nil {
			tier = TierSampled
		}
		//depburst:allow determinism -- tier latency telemetry observes the real clock
		s.cfg.Metrics.ObserveTier(tier, time.Since(start).Nanoseconds())
	}
}

// maxSamplingRunners caps how many distinct sampling policies one process
// serves: each policy owns an isolated memo table, so an attacker cycling
// policies must not grow memory without bound.
const maxSamplingRunners = 8

// runnerFor returns the Runner serving the request's sampling policy: the
// shared full-detail Runner when the request did not opt in, else a
// per-policy derivation (shared worker pool, disk cache and simulation
// counter, isolated memo) that is reused across requests for the same
// policy.
func (s *Server) runnerFor(p *sampling.Policy) (*experiments.Runner, error) {
	if p == nil {
		return s.cfg.Runner, nil
	}
	s.samplers.Lock()
	defer s.samplers.Unlock()
	if r, ok := s.samplers.m[*p]; ok {
		return r, nil
	}
	if len(s.samplers.m) >= maxSamplingRunners {
		return nil, fmt.Errorf("%w (limit %d); reuse an earlier policy", errPolicyLimit, maxSamplingRunners)
	}
	r := s.cfg.Runner.WithSampling(*p)
	s.samplers.m[*p] = r
	return r, nil
}

// surrogateConfig builds the simulator configuration the surrogate indexes
// truth runs by: the Runner's machine template at frequency f with the
// spec's workload knobs applied — exactly what TruthCtx simulates.
func (s *Server) surrogateConfig(spec dacapo.Spec, f units.Freq) sim.Config {
	cfg := s.cfg.Runner.Base
	cfg.Freq = f
	spec.Configure(&cfg)
	return cfg
}

// trySurrogate attempts to serve the request from the learned fast path.
// It answers only when every frequency the response covers — base and all
// targets — clears the confidence gate; one weak estimate falls the whole
// request through to the Runner tiers, so a response never mixes learned
// and simulated numbers. Requests that ask for ground truth (actual),
// sampled simulation, or any model beyond the default dep+burst always
// fall through: those contracts are about the simulator, not the model of
// the simulator.
func (s *Server) trySurrogate(req *PredictRequest, spec dacapo.Spec) ([]byte, bool) {
	m := s.cfg.Surrogate
	if m == nil || req.Actual || req.Sampling != nil {
		return nil, false
	}
	if len(req.Models) != 1 || req.Models[0] != "dep+burst" {
		return nil, false
	}
	base, ok := m.Predict(s.surrogateConfig(spec, units.Freq(req.BaseMHz)), spec)
	if !ok || base.Confidence < s.cfg.SurrogateMinConf {
		return nil, false
	}
	resp := PredictResponse{
		Bench:      spec.Name,
		BaseMHz:    req.BaseMHz,
		BaseTimePS: int64(base.Time),
		Tier:       TierSurrogate,
		Surrogate:  &PredictSurrogate{Confidence: base.Confidence, ErrEstimate: base.ErrEstimate},
	}
	for _, tgt := range req.TargetsMHz {
		est, ok := m.Predict(s.surrogateConfig(spec, units.Freq(tgt)), spec)
		if !ok || est.Confidence < s.cfg.SurrogateMinConf {
			return nil, false
		}
		if est.Confidence < resp.Surrogate.Confidence {
			resp.Surrogate.Confidence = est.Confidence
		}
		if est.ErrEstimate > resp.Surrogate.ErrEstimate {
			resp.Surrogate.ErrEstimate = est.ErrEstimate
		}
		resp.Predictions = append(resp.Predictions, Prediction{
			Model:       req.Models[0],
			TargetMHz:   tgt,
			PredictedPS: int64(est.Time),
		})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

// observeTruth feeds one full-detail truth result back into the surrogate:
// every fallback the slower tiers compute makes the fast path answer more
// of the neighbourhood next time. Sampled results never train the model —
// their times carry a machine-reported error bound the surrogate's
// calibration does not account for.
func (s *Server) observeTruth(req *PredictRequest, spec dacapo.Spec, f units.Freq, t units.Time) {
	if s.cfg.Surrogate == nil || req.Sampling != nil {
		return
	}
	s.cfg.Surrogate.Observe(s.surrogateConfig(spec, f), spec, t)
}

// computePredict runs the base (and, with actual set, target) simulations
// through the Runner — memoised, singleflight-deduplicated, disk-cached —
// and assembles the response. The response bytes are a pure function of the
// request, so cold and warm paths are byte-identical.
func (s *Server) computePredict(ctx context.Context, req *PredictRequest, spec dacapo.Spec) ([]byte, error) {
	r, err := s.runnerFor(req.Sampling)
	if err != nil {
		return nil, err
	}
	base, err := r.TruthCtx(ctx, spec, units.Freq(req.BaseMHz))
	if err != nil {
		return nil, err
	}
	s.observeTruth(req, spec, units.Freq(req.BaseMHz), base.Time)
	obs := experiments.Observe(base)

	resp := PredictResponse{
		Bench:      spec.Name,
		BaseMHz:    req.BaseMHz,
		BaseTimePS: int64(base.Time),
	}
	var agg samplingAgg
	agg.add(base)
	for _, name := range req.Models {
		m, _ := modelFor(name)
		for _, tgt := range req.TargetsMHz {
			p := Prediction{
				Model:       name,
				TargetMHz:   tgt,
				PredictedPS: int64(m.Predict(obs, units.Freq(tgt))),
			}
			if req.Actual {
				truth, err := r.TruthCtx(ctx, spec, units.Freq(tgt))
				if err != nil {
					return nil, err
				}
				s.observeTruth(req, spec, units.Freq(tgt), truth.Time)
				p.ActualPS = int64(truth.Time)
				re := report.RelError(float64(p.PredictedPS), float64(p.ActualPS))
				p.RelError = &re
				agg.add(truth)
			}
			resp.Predictions = append(resp.Predictions, p)
		}
	}
	if req.Sampling != nil {
		resp.Sampling = agg.annotation()
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// samplingAgg accumulates the sampling reports of every simulation behind
// one response: the largest error bound and the time-weighted
// fast-forwarded fraction.
type samplingAgg struct {
	bound       float64
	fast, total units.Time
}

func (a *samplingAgg) add(res *sim.Result) {
	if res.Sampling == nil {
		return
	}
	if res.Sampling.ErrorBound > a.bound {
		a.bound = res.Sampling.ErrorBound
	}
	a.fast += res.Sampling.FastTime
	a.total += res.Sampling.TotalTime
}

func (a *samplingAgg) annotation() *PredictSampling {
	ps := &PredictSampling{ErrorBound: a.bound}
	if a.total > 0 {
		ps.FastFrac = float64(a.fast) / float64(a.total)
	}
	return ps
}

// resolveSpec maps the request's workload selector onto a benchmark spec:
// a stock-suite (or server-suite) name, or the embedded definition.
func (s *Server) resolveSpec(req *PredictRequest) (dacapo.Spec, error) {
	if req.Spec != nil {
		return *req.Spec, nil
	}
	for _, spec := range s.cfg.Runner.Suite() {
		if spec.Name == req.Bench {
			return spec, nil
		}
	}
	spec, err := dacapo.ByName(req.Bench)
	if err != nil {
		return dacapo.Spec{}, fmt.Errorf("unknown benchmark %q", req.Bench)
	}
	return spec, nil
}
