package server

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"depburst/internal/dacapo"
	"depburst/internal/simcache"
)

func TestModelForAllNames(t *testing.T) {
	for _, name := range modelNames {
		m, ok := modelFor(name)
		if !ok || m == nil {
			t.Errorf("modelFor(%q) failed", name)
		}
	}
	if _, ok := modelFor("oracle"); ok {
		t.Error("modelFor accepted an unknown name")
	}
}

func TestHandlerAccessor(t *testing.T) {
	s, _ := newTestServer(t, nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("Handler() healthz = %d", w.Code)
	}
}

func TestMetricsDisabled(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.Metrics = nil })
	if w := get(t, s, "/v1/metrics"); w.Code != http.StatusNotFound {
		t.Fatalf("metrics with nil registry = %d, want 404", w.Code)
	}
}

func TestMetricsDiskCacheGauges(t *testing.T) {
	s, r := newTestServer(t, nil)
	st, err := simcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	r.SetDiskCache(st)
	w := get(t, s, "/v1/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics = %d", w.Code)
	}
	for _, g := range []string{"simcache_hits", "simcache_misses"} {
		if !strings.Contains(w.Body.String(), g) {
			t.Errorf("metrics missing gauge %q: %s", g, w.Body)
		}
	}
}

// TestResolveSpecStockFallback: a benchmark absent from the server's suite
// still resolves through the stock catalogue.
func TestResolveSpecStockFallback(t *testing.T) {
	s, _ := newTestServer(t, nil)
	if _, err := dacapo.ByName("lusearch"); err != nil {
		t.Skip("lusearch not in the stock catalogue")
	}
	spec, err := s.resolveSpec(&PredictRequest{Bench: "lusearch"})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "lusearch" {
		t.Fatalf("resolved %q", spec.Name)
	}
}

// TestPredictCancelledWhileQueued: a leader parked on the worker queue whose
// client disconnects is released promptly with the cancellation status, and
// its queue slot is returned.
func TestPredictCancelledWhileQueued(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.Workers = 1; c.MaxQueue = 4 })
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupy the only worker slot with slow cold work
		defer wg.Done()
		post(t, s, "/v1/predict", `{"bench":"pmd.b","base_mhz":1000,"targets_mhz":[4000]}`)
	}()
	waitFor(t, func() bool { return len(s.sem) == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/predict",
		strings.NewReader(`{"bench":"pmd.b","base_mhz":1100,"targets_mhz":[4000]}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.ServeHTTP(w, req)
		close(done)
	}()
	waitFor(t, func() bool { return s.waiting.Load() == 1 })
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("queued request not released after cancel")
	}
	if w.Code != 499 {
		t.Fatalf("cancelled queued request = %d, want 499", w.Code)
	}
	waitFor(t, func() bool { return s.waiting.Load() == 0 })
	wg.Wait()
}

// TestPredictFollowerCancelled: a request joined onto another caller's flight
// whose own client disconnects is released without waiting for the leader.
func TestPredictFollowerCancelled(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.Workers = 1 })
	body := `{"bench":"pmd.b","base_mhz":1200,"targets_mhz":[4000]}`
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // leader: slow cold simulation
		defer wg.Done()
		post(t, s, "/v1/predict", body)
	}()
	waitFor(t, func() bool {
		s.flights.Lock()
		defer s.flights.Unlock()
		return len(s.flights.m) == 1
	})

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body)).WithContext(ctx)
	w := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.ServeHTTP(w, req)
		close(done)
	}()
	waitFor(t, func() bool { return s.cfg.Metrics.Coalesced() >= 1 })
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("follower not released after its own cancel")
	}
	if w.Code != 499 {
		t.Fatalf("cancelled follower = %d, want 499", w.Code)
	}
	wg.Wait()
}

// TestServeListenerError: Serve surfaces an accept-loop failure instead of
// hanging.
func TestServeListenerError(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // accept will fail immediately
	if err := s.Serve(context.Background(), ln); err == nil {
		t.Fatal("Serve on a closed listener returned nil")
	}
}

// TestRunLoadGETAndNetErrors covers the generator's defaulting (GET when no
// body, custom path) and its transport-failure accounting.
func TestRunLoadGETAndNetErrors(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	rep, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:  ts.URL,
		Path:     "/healthz",
		RPS:      200,
		Duration: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.OK != rep.Requests {
		t.Fatalf("healthz load: %+v", rep)
	}

	if _, err := RunLoad(context.Background(), LoadOptions{}); err == nil {
		t.Fatal("RunLoad without BaseURL returned nil error")
	}

	dead, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:        "http://127.0.0.1:1",
		RPS:            100,
		Duration:       100 * time.Millisecond,
		RequestTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dead.NetErrors == 0 {
		t.Fatalf("no transport errors against a dead endpoint: %+v", dead)
	}
}
