package server

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzPredictRequest hammers the strict request decoder — the only place the
// server parses untrusted bytes. Contracts under fuzzing:
//
//  1. The decoder never panics, whatever the input.
//  2. A request that decodes is normalised: re-encoding and re-decoding it
//     yields the same value (normalisation is idempotent), so the coalescing
//     key is stable.
//  3. Normalised targets are sorted, deduplicated and within bounds.
func FuzzPredictRequest(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`null`,
		`[1,2,3]`,
		`{"bench":"pmd.scale","targets_mhz":[2000,4000]}`,
		`{"bench":"pmd.scale","base_mhz":1000,"targets_mhz":[4000,2000,2000],"models":["dep+burst","dep+burst"],"actual":true}`,
		`{"spec":{"Name":"x"},"targets_mhz":[4000]}`,
		`{"bench":"pmd.scale","spec":{"Name":"x"},"targets_mhz":[4000]}`,
		`{"bench":"pmd.scale","targets_mhz":[4000]} trailing`,
		`{"bench":"pmd.scale","targets_mhz":[4000],"unknown":1}`,
		`{"bench":"pmd.scale","targets_mhz":[99999999999999999999]}`,
		`{"bench":"pmd.scale","targets_mhz":[-5]}`,
		`{"bench":"` + strings.Repeat("a", 4096) + `","targets_mhz":[4000]}`,
		`{"bench":"?","targets_mhz":[4000],"models":[""]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodePredictRequest(bytes.NewReader(data), 1<<20)
		if err != nil {
			return
		}
		// Normalisation invariants.
		if req.Bench == "" && req.Spec == nil {
			t.Fatal("decoded request with no workload")
		}
		if req.BaseMHz < 100 || req.BaseMHz > 20_000 {
			t.Fatalf("base_mhz %d out of bounds after decode", req.BaseMHz)
		}
		if len(req.TargetsMHz) == 0 || len(req.TargetsMHz) > maxTargets {
			t.Fatalf("targets length %d out of bounds", len(req.TargetsMHz))
		}
		for i, tgt := range req.TargetsMHz {
			if tgt < 100 || tgt > 20_000 {
				t.Fatalf("target %d out of bounds", tgt)
			}
			if i > 0 && req.TargetsMHz[i-1] >= tgt {
				t.Fatalf("targets not strictly ascending: %v", req.TargetsMHz)
			}
		}
		if len(req.Models) == 0 || len(req.Models) > maxModels {
			t.Fatalf("models length %d out of bounds", len(req.Models))
		}
		for _, m := range req.Models {
			if _, ok := modelFor(m); !ok {
				t.Fatalf("unknown model %q survived decode", m)
			}
		}
		// Idempotence: decoding the normalised form reproduces it exactly,
		// so identical work always coalesces onto one flight key.
		key1 := req.key()
		again, err := DecodePredictRequest(strings.NewReader(key1), 1<<20)
		if err != nil {
			t.Fatalf("normalised request failed to re-decode: %v\nkey: %s", err, key1)
		}
		if key2 := again.key(); key1 != key2 {
			t.Fatalf("normalisation not idempotent:\nfirst:  %s\nsecond: %s", key1, key2)
		}
	})
}

// TestFuzzSeedsAsTable runs the seed corpus as a plain test so `go test`
// (without -fuzz) still covers the decoder paths the seeds pin down.
func TestFuzzSeedsAsTable(t *testing.T) {
	valid := `{"bench":"pmd.scale","base_mhz":1000,"targets_mhz":[4000,2000,2000],"models":["dep+burst","dep+burst"]}`
	req, err := DecodePredictRequest(strings.NewReader(valid), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.TargetsMHz) != 2 || req.TargetsMHz[0] != 2000 || req.TargetsMHz[1] != 4000 {
		t.Fatalf("targets not sorted+deduped: %v", req.TargetsMHz)
	}
	if len(req.Models) != 1 {
		t.Fatalf("models not deduped: %v", req.Models)
	}
	var round PredictRequest
	if err := json.Unmarshal([]byte(req.key()), &round); err != nil {
		t.Fatalf("key is not valid JSON: %v", err)
	}
}
