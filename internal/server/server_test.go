package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"depburst/internal/dacapo"
	"depburst/internal/experiments"
	"depburst/internal/metrics"
	"depburst/internal/simcache"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against the checked-in golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// testSuite is the tiny benchmark set the e2e wall runs on: the fast scaled
// pmd plus a second variant so multi-benchmark experiment tables have rows.
func testSuite(t testing.TB) []dacapo.Spec {
	t.Helper()
	spec, err := dacapo.ByName("pmd.scale")
	if err != nil {
		t.Fatal(err)
	}
	b := spec.Scaled(1.5)
	b.Name = "pmd.b"
	b.Memory = false
	return []dacapo.Spec{spec, b}
}

// newTestServer assembles a server over a fresh 2-worker Runner with the
// tiny suite. mutate adjusts the config before assembly.
func newTestServer(t testing.TB, mutate func(*Config)) (*Server, *experiments.Runner) {
	t.Helper()
	r := experiments.NewRunnerWorkers(2)
	r.SetSuite(testSuite(t))
	cfg := Config{
		Runner:  r,
		Metrics: metrics.NewServerRegistry(),
		Step:    1500,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

// predictBody is the canonical e2e request.
const predictBody = `{"bench":"pmd.scale","base_mhz":1000,"targets_mhz":[2000,4000],"models":["dep+burst","mcrit"],"actual":true}`

func post(t testing.TB, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t testing.TB, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestPredictGolden(t *testing.T) {
	s, _ := newTestServer(t, nil)
	w := post(t, s, "/v1/predict", predictBody)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type %q", ct)
	}
	checkGolden(t, "predict.golden.json", w.Body.Bytes())
}

func TestExperimentGoldens(t *testing.T) {
	s, _ := newTestServer(t, nil)
	for _, tc := range []struct{ name, path string }{
		{"fig1", "/v1/experiments/fig1"},
		{"energy", "/v1/experiments/energy"},
		{"fig7", "/v1/experiments/fig7?step=1500"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := get(t, s, tc.path)
			if w.Code != http.StatusOK {
				t.Fatalf("status %d: %s", w.Code, w.Body)
			}
			checkGolden(t, "experiment_"+tc.name+".golden.json", w.Body.Bytes())
		})
	}
}

// TestPredictColdWarmIdentical: a response computed by live simulation and
// the same response replayed from the persistent disk cache by a second
// server process must be byte-identical.
func TestPredictColdWarmIdentical(t *testing.T) {
	dir := t.TempDir()
	open := func() *Server {
		st, err := simcache.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		s, r := newTestServer(t, nil)
		r.SetDiskCache(st)
		return s
	}
	cold := post(t, open(), "/v1/predict", predictBody)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold status %d: %s", cold.Code, cold.Body)
	}
	warmSrv := open() // fresh memo, warm disk
	warm := post(t, warmSrv, "/v1/predict", predictBody)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm status %d: %s", warm.Code, warm.Body)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Fatalf("cold and warm responses differ:\ncold: %s\nwarm: %s", cold.Body, warm.Body)
	}
	// And a memo-warm repeat on the same server too.
	again := post(t, warmSrv, "/v1/predict", predictBody)
	if !bytes.Equal(cold.Body.Bytes(), again.Body.Bytes()) {
		t.Fatal("memo-warm response differs from cold")
	}
}

// TestPredictCoalescing is the batching contract: 100 concurrent identical
// cold requests must produce exactly ONE simulation, 100 identical 200
// responses, and a non-zero coalesced counter.
func TestPredictCoalescing(t *testing.T) {
	s, r := newTestServer(t, func(c *Config) { c.Workers = 4; c.MaxQueue = 200 })
	body := `{"bench":"pmd.scale","targets_mhz":[4000]}` // base run only: one simulation
	const n = 100
	bodies := make([][]byte, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := post(t, s, "/v1/predict", body)
			codes[i] = w.Code
			bodies[i] = w.Body.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d: body differs", i)
		}
	}
	if sims := r.Simulations(); sims != 1 {
		t.Fatalf("simulations = %d, want exactly 1 for 100 identical requests", sims)
	}
	if s.cfg.Metrics.Coalesced() == 0 {
		t.Error("coalesced counter is zero: requests were not merged")
	}
}

// TestPredictValidation walks the strict-decoding contract: every malformed
// or out-of-bounds request is a 400 with a JSON error envelope.
func TestPredictValidation(t *testing.T) {
	s, _ := newTestServer(t, nil)
	cases := []struct {
		name string
		body string
	}{
		{"empty", ``},
		{"not json", `hello`},
		{"unknown field", `{"bench":"pmd.scale","targets_mhz":[4000],"bogus":1}`},
		{"trailing data", `{"bench":"pmd.scale","targets_mhz":[4000]} {}`},
		{"no workload", `{"targets_mhz":[4000]}`},
		{"both workloads", `{"bench":"pmd.scale","spec":{"Name":"x"},"targets_mhz":[4000]}`},
		{"no targets", `{"bench":"pmd.scale"}`},
		{"target too low", `{"bench":"pmd.scale","targets_mhz":[50]}`},
		{"target too high", `{"bench":"pmd.scale","targets_mhz":[50000]}`},
		{"base out of range", `{"bench":"pmd.scale","base_mhz":7,"targets_mhz":[4000]}`},
		{"unknown model", `{"bench":"pmd.scale","targets_mhz":[4000],"models":["oracle"]}`},
		{"invalid spec", `{"spec":{"Name":"x"},"targets_mhz":[4000]}`},
		{"unknown bench", `{"bench":"nope","targets_mhz":[4000]}`},
		{"too many targets", tooManyTargets()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, s, "/v1/predict", tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body: %s", w.Code, w.Body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("error envelope missing: %s", w.Body)
			}
		})
	}
}

func tooManyTargets() string {
	var sb strings.Builder
	sb.WriteString(`{"bench":"pmd.scale","targets_mhz":[`)
	for i := 0; i < maxTargets+1; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", 1000+i)
	}
	sb.WriteString(`]}`)
	return sb.String()
}

// TestPredictBodyLimit: a body beyond MaxBody is refused, not buffered.
func TestPredictBodyLimit(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.MaxBody = 256 })
	big := `{"bench":"pmd.scale","targets_mhz":[4000],"models":["` + strings.Repeat("x", 1024) + `"]}`
	w := post(t, s, "/v1/predict", big)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 for oversized body", w.Code)
	}
}

// TestPredictBackpressure saturates a 1-worker, 1-queue-slot server with
// slow cold requests and asserts the third distinct request is refused with
// 429 + Retry-After instead of queueing unboundedly.
func TestPredictBackpressure(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.Workers = 1; c.MaxQueue = 1 })
	reqBody := func(f int) string {
		return fmt.Sprintf(`{"bench":"pmd.b","base_mhz":%d,"targets_mhz":[4000]}`, f)
	}
	var wg sync.WaitGroup
	launch := func(body string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(t, s, "/v1/predict", body)
		}()
	}
	// Occupy the worker slot, then the queue slot, with distinct slow work.
	launch(reqBody(1000))
	waitFor(t, func() bool { return len(s.sem) == 1 })
	launch(reqBody(1100))
	waitFor(t, func() bool { return s.waiting.Load() == 1 })

	w := post(t, s, "/v1/predict", reqBody(1200))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body: %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if s.cfg.Metrics.Rejected() == 0 {
		t.Error("rejected counter is zero")
	}
	wg.Wait() // drain the slow requests before the runner outlives the test
}

func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in 5s")
}

// TestExperimentCancellation: a cancelled /v1/experiments/fig1 request stops
// spawning simulations promptly and leaks no goroutines.
func TestExperimentCancellation(t *testing.T) {
	s, r := newTestServer(t, nil)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	req := httptest.NewRequest(http.MethodGet, "/v1/experiments/fig1", nil).WithContext(ctx)
	w := httptest.NewRecorder()
	start := time.Now()
	s.ServeHTTP(w, req)
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancelled experiment took %v; want prompt return", elapsed)
	}
	if w.Code == http.StatusOK {
		t.Fatalf("cancelled request returned 200")
	}
	simsAtReturn := r.Simulations()
	time.Sleep(50 * time.Millisecond)
	if n := r.Simulations(); n != simsAtReturn {
		t.Fatalf("simulations kept spawning after cancel: %d -> %d", simsAtReturn, n)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestRequestTimeout: a server-side deadline turns an over-budget request
// into 504 instead of hanging.
func TestRequestTimeout(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.Timeout = 5 * time.Millisecond })
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/predict",
		strings.NewReader(`{"bench":"pmd.b","targets_mhz":[4000]}`))
	s.ServeHTTP(w, req)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body: %s", w.Code, w.Body)
	}
}

// TestWarmPredictLatency is the latency contract: with the memo warm, a
// predict round-trip stays under 10ms (best of three, to shrug off
// scheduler noise).
func TestWarmPredictLatency(t *testing.T) {
	s, _ := newTestServer(t, nil)
	if w := post(t, s, "/v1/predict", predictBody); w.Code != http.StatusOK {
		t.Fatalf("warmup failed: %d %s", w.Code, w.Body)
	}
	best := time.Hour
	for i := 0; i < 3; i++ {
		start := time.Now()
		w := post(t, s, "/v1/predict", predictBody)
		if d := time.Since(start); d < best {
			best = d
		}
		if w.Code != http.StatusOK {
			t.Fatalf("warm request failed: %d", w.Code)
		}
	}
	if best > 10*time.Millisecond {
		t.Errorf("warm predict best-of-3 = %v, want < 10ms", best)
	}
}

func TestHealthAndReady(t *testing.T) {
	s, _ := newTestServer(t, nil)
	if w := get(t, s, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz = %d", w.Code)
	}
	if w := get(t, s, "/readyz"); w.Code != http.StatusOK {
		t.Errorf("readyz = %d", w.Code)
	}
	s.draining.Store(true)
	if w := get(t, s, "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", w.Code)
	}
	if w := get(t, s, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("draining healthz = %d, want 200", w.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, _ := newTestServer(t, nil)
	post(t, s, "/v1/predict", `{"bench":"pmd.scale","targets_mhz":[4000]}`)

	w := get(t, s, "/v1/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	var doc metrics.ServerDocument
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("metrics is not the server document: %v", err)
	}
	found := false
	for _, r := range doc.Routes {
		if r.Route == "POST /v1/predict" && r.Count >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("predict route missing from metrics: %s", w.Body)
	}
	sims := false
	for _, g := range doc.Gauges {
		if g.Name == "simulations_total" && g.Value >= 1 {
			sims = true
		}
	}
	if !sims {
		t.Errorf("simulations_total gauge missing: %s", w.Body)
	}

	p := get(t, s, "/v1/metrics?format=prometheus")
	if p.Code != http.StatusOK {
		t.Fatalf("prometheus status %d", p.Code)
	}
	if !strings.Contains(p.Body.String(), "depburst_http_requests_total") {
		t.Errorf("prometheus exposition missing counters:\n%s", p.Body)
	}
}

// TestMethodNotAllowed: the method-qualified mux refuses mismatched verbs.
func TestMethodNotAllowed(t *testing.T) {
	s, _ := newTestServer(t, nil)
	if w := get(t, s, "/v1/predict"); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/predict = %d, want 405", w.Code)
	}
	if w := post(t, s, "/healthz", ""); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d, want 405", w.Code)
	}
}

// TestExperimentBadStep: an unparsable or out-of-range ?step= is a 400.
func TestExperimentBadStep(t *testing.T) {
	s, _ := newTestServer(t, nil)
	for _, q := range []string{"step=abc", "step=1", "step=99999"} {
		if w := get(t, s, "/v1/experiments/fig7?"+q); w.Code != http.StatusBadRequest {
			t.Errorf("?%s = %d, want 400", q, w.Code)
		}
	}
}

// TestServeGracefulDrain boots the server on a real listener, parks a slow
// request in flight, cancels the serve context, and asserts (a) readyz flips
// to 503, (b) the in-flight request still completes, (c) Serve returns
// within the drain budget.
func TestServeGracefulDrain(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.DrainTimeout = 15 * time.Second })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// Park a slow cold request.
	slow := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(base+"/v1/predict", "application/json",
			strings.NewReader(`{"bench":"pmd.b","base_mhz":1300,"targets_mhz":[4000]}`))
		if err != nil {
			slow <- nil
			return
		}
		slow <- resp
	}()
	waitFor(t, func() bool { return len(s.sem) == 1 })

	cancel() // SIGTERM analogue
	waitFor(t, func() bool { return s.draining.Load() })

	select {
	case resp := <-slow:
		if resp == nil {
			t.Fatal("in-flight request was dropped during drain")
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("in-flight request finished %d during drain", resp.StatusCode)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return within the drain budget")
	}
}

// TestPredictSchemaStability pins the /v1 response keys: renaming any is a
// breaking change that requires a /v2 path per the schema policy.
func TestPredictSchemaStability(t *testing.T) {
	s, _ := newTestServer(t, nil)
	w := post(t, s, "/v1/predict", predictBody)
	var doc map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"bench", "base_mhz", "base_time_ps", "predictions"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("response lost key %q", key)
		}
	}
	preds := doc["predictions"].([]any)
	p0 := preds[0].(map[string]any)
	for _, key := range []string{"model", "target_mhz", "predicted_ps", "actual_ps", "rel_error"} {
		if _, ok := p0[key]; !ok {
			t.Errorf("prediction lost key %q", key)
		}
	}
}

// TestPredictEmbeddedSpec: a request may carry a full benchmark definition
// instead of a stock name.
func TestPredictEmbeddedSpec(t *testing.T) {
	s, _ := newTestServer(t, nil)
	spec := testSuite(t)[0]
	spec.Name = "custom"
	sb, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"spec":%s,"targets_mhz":[4000]}`, sb)
	w := post(t, s, "/v1/predict", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp PredictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Bench != "custom" || len(resp.Predictions) != 1 {
		t.Fatalf("unexpected response: %+v", resp)
	}
}

// TestRunLoad exercises the load generator against a warm server and checks
// the report's accounting.
func TestRunLoad(t *testing.T) {
	s, _ := newTestServer(t, nil)
	body := `{"bench":"pmd.scale","targets_mhz":[4000]}`
	if w := post(t, s, "/v1/predict", body); w.Code != http.StatusOK {
		t.Fatalf("warmup failed: %d", w.Code)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	rep, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:  ts.URL,
		Body:     []byte(body),
		RPS:      100,
		Duration: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.OK != rep.Requests {
		t.Fatalf("load report: %+v", rep)
	}
	if rep.Errors5xx != 0 || rep.NetErrors != 0 {
		t.Fatalf("errors under warm load: %+v", rep)
	}
	if rep.P99Ms <= 0 || rep.P99Ms < rep.P50Ms {
		t.Fatalf("bogus quantiles: %+v", rep)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"p99_ms"`) {
		t.Fatalf("report JSON missing fields: %s", buf.String())
	}
}

// TestNewValidation: missing Runner is an assembly error; defaults apply.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil Runner")
	}
	s, _ := newTestServer(t, nil)
	if s.cfg.Workers != 2 || s.cfg.MaxQueue != 16 || s.cfg.MaxBody != 1<<20 {
		t.Fatalf("defaults not applied: %+v", s.cfg)
	}
}
