package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// sampledBody is predictBody with the sampled-simulation opt-in.
const sampledBody = `{"bench":"pmd.scale","base_mhz":1000,"targets_mhz":[2000,4000],"models":["dep+burst"],"actual":true,"sampling":{"enabled":true}}`

func decodeResponse(t *testing.T, body []byte) PredictResponse {
	t.Helper()
	var resp PredictResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("response does not decode: %v\n%s", err, body)
	}
	return resp
}

// TestPredictSampled is the sampled-mode e2e path: an opted-in request
// succeeds, is annotated with the simulations' own accuracy report, and
// its actuals stay within the reported error bound of the full-detail
// actuals computed by the same server.
func TestPredictSampled(t *testing.T) {
	s, _ := newTestServer(t, nil)

	full := post(t, s, "/v1/predict", predictBody)
	if full.Code != http.StatusOK {
		t.Fatalf("full-detail status %d: %s", full.Code, full.Body)
	}
	fullResp := decodeResponse(t, full.Body.Bytes())
	if fullResp.Sampling != nil {
		t.Error("full-detail response carries a sampling annotation")
	}

	w := post(t, s, "/v1/predict", sampledBody)
	if w.Code != http.StatusOK {
		t.Fatalf("sampled status %d: %s", w.Code, w.Body)
	}
	resp := decodeResponse(t, w.Body.Bytes())
	if resp.Sampling == nil {
		t.Fatal("sampled response carries no sampling annotation")
	}
	if resp.Sampling.ErrorBound <= 0 || resp.Sampling.FastFrac <= 0 {
		t.Fatalf("degenerate sampling annotation: %+v", resp.Sampling)
	}
	check := func(name string, sampled, fullPS int64) {
		diff := float64(sampled-fullPS) / float64(fullPS)
		if diff < 0 {
			diff = -diff
		}
		if diff > resp.Sampling.ErrorBound {
			t.Errorf("%s: sampled %d vs full %d (%.3f) exceeds bound %.3f",
				name, sampled, fullPS, diff, resp.Sampling.ErrorBound)
		}
	}
	check("base_time_ps", resp.BaseTimePS, fullResp.BaseTimePS)
	for i, p := range resp.Predictions {
		if p.Model != "dep+burst" {
			continue
		}
		for _, fp := range fullResp.Predictions {
			if fp.Model == p.Model && fp.TargetMHz == p.TargetMHz {
				check(fmt.Sprintf("predictions[%d].actual_ps", i), p.ActualPS, fp.ActualPS)
			}
		}
	}

	// Identical sampled requests must be byte-identical (same memoised
	// results, same encoding).
	again := post(t, s, "/v1/predict", sampledBody)
	if again.Body.String() != w.Body.String() {
		t.Error("repeated sampled request is not byte-identical")
	}
}

// TestPredictSamplingValidation covers the strict-decode and normalisation
// rules of the sampling field.
func TestPredictSamplingValidation(t *testing.T) {
	s, _ := newTestServer(t, nil)
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"unknown field inside sampling", `{"bench":"pmd.scale","targets_mhz":[2000],"sampling":{"enabled":true,"bogus":1}}`, http.StatusBadRequest},
		{"tolerance out of range", `{"bench":"pmd.scale","targets_mhz":[2000],"sampling":{"enabled":true,"tolerance":0.9}}`, http.StatusBadRequest},
		{"negative k", `{"bench":"pmd.scale","targets_mhz":[2000],"sampling":{"enabled":true,"k":-1}}`, http.StatusBadRequest},
		{"check interval out of range", `{"bench":"pmd.scale","targets_mhz":[2000],"sampling":{"enabled":true,"check_interval":100000}}`, http.StatusBadRequest},
		{"safety factor out of range", `{"bench":"pmd.scale","targets_mhz":[2000],"sampling":{"enabled":true,"safety_factor":99}}`, http.StatusBadRequest},
	} {
		w := post(t, s, "/v1/predict", tc.body)
		if w.Code != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, w.Code, tc.status, w.Body)
		}
	}

	// An explicitly disabled policy normalises to "no sampling": same
	// coalescing key, same bytes, no annotation.
	plain := post(t, s, "/v1/predict", predictBody)
	disabled := post(t, s, "/v1/predict",
		strings.Replace(predictBody, `"actual":true`, `"actual":true,"sampling":{"enabled":false,"k":99}`, 1))
	if disabled.Code != http.StatusOK {
		t.Fatalf("disabled-sampling status %d: %s", disabled.Code, disabled.Body)
	}
	if plain.Body.String() != disabled.Body.String() {
		t.Error("explicitly disabled sampling diverges from absent sampling")
	}
}

// TestPredictSamplingPolicyLimit bounds the per-policy Runner map: a client
// cycling distinct policies is refused once the bound is reached, while
// already-served policies keep working.
func TestPredictSamplingPolicyLimit(t *testing.T) {
	s, _ := newTestServer(t, nil)
	body := func(k int) string {
		return fmt.Sprintf(`{"bench":"pmd.scale","targets_mhz":[2000],"sampling":{"enabled":true,"k":%d}}`, k)
	}
	for k := 1; k <= maxSamplingRunners; k++ {
		if w := post(t, s, "/v1/predict", body(k)); w.Code != http.StatusOK {
			t.Fatalf("policy %d: status %d: %s", k, w.Code, w.Body)
		}
	}
	if w := post(t, s, "/v1/predict", body(maxSamplingRunners+1)); w.Code != http.StatusBadRequest {
		t.Fatalf("policy beyond the limit: status %d, want 400 (%s)", w.Code, w.Body)
	}
	if w := post(t, s, "/v1/predict", body(1)); w.Code != http.StatusOK {
		t.Fatalf("known policy after the limit: status %d: %s", w.Code, w.Body)
	}
}
