// Package viz renders run timelines as standalone SVG documents: the
// frequency the governor chose per quantum, garbage-collection pauses, and
// per-core activity — the visual analogue of the paper's Figure 5.
// Everything is generated with the standard library only.
package viz

import (
	"fmt"
	"io"
	"strings"

	"depburst/internal/sim"
	"depburst/internal/units"
)

// Layout constants (pixels).
const (
	width      = 960
	laneH      = 120
	coreLaneH  = 26
	marginL    = 70
	marginR    = 20
	marginT    = 28
	laneGap    = 26
	axisColor  = "#888"
	freqColor  = "#2563eb"
	gcColor    = "#dc2626"
	busyColor  = "#16a34a"
	labelStyle = "font-family:sans-serif;font-size:12px;fill:#333"
)

// Timeline renders res as an SVG document.
func Timeline(w io.Writer, res *sim.Result) error {
	if len(res.Samples) == 0 {
		return fmt.Errorf("viz: result has no samples to draw")
	}
	total := res.Samples[len(res.Samples)-1].End
	if total <= 0 {
		return fmt.Errorf("viz: empty timeline")
	}
	cores := 0
	if len(res.Samples[0].PerCore) > 0 {
		cores = len(res.Samples[0].PerCore)
	}
	height := marginT + laneH + laneGap + cores*coreLaneH + 40

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="18" style="%s">%s — %v, %s, %d transitions</text>`+"\n",
		marginL, labelStyle, esc(res.Workload), res.Time, res.Energy, res.Transitions)

	x := func(t units.Time) float64 {
		return marginL + float64(t)/float64(total)*(width-marginL-marginR)
	}

	// Frequency lane: one step per sample, scaled 1-4 GHz.
	laneTop := float64(marginT)
	laneBot := laneTop + laneH
	y := func(f units.Freq) float64 {
		frac := (f.GHzF() - 1.0) / 3.0
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return laneBot - frac*laneH
	}
	// GC pauses behind the frequency trace.
	for _, p := range res.GC.Pauses {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.25"/>`+"\n",
			x(p.Start), laneTop, max1(x(p.End)-x(p.Start)), float64(laneH), gcColor)
	}
	// Axis labels.
	for _, f := range []units.Freq{1000, 2000, 3000, 4000} {
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-dasharray="2,4"/>`+"\n",
			marginL, y(f), width-marginR, y(f), axisColor)
		fmt.Fprintf(&b, `<text x="8" y="%.1f" style="%s">%v</text>`+"\n", y(f)+4, labelStyle, f)
	}
	// The frequency staircase.
	var pts []string
	for _, s := range res.Samples {
		pts = append(pts,
			fmt.Sprintf("%.1f,%.1f", x(s.Start), y(s.Freq)),
			fmt.Sprintf("%.1f,%.1f", x(s.End), y(s.Freq)))
	}
	fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
		strings.Join(pts, " "), freqColor)

	// Per-core activity lanes: opacity = busy fraction in the sample.
	coreTop := laneBot + laneGap
	for c := 0; c < cores; c++ {
		top := coreTop + float64(c*coreLaneH)
		fmt.Fprintf(&b, `<text x="8" y="%.1f" style="%s">core %d</text>`+"\n", top+coreLaneH-9, labelStyle, c)
		for _, s := range res.Samples {
			if c >= len(s.PerCore) {
				continue
			}
			dur := s.End - s.Start
			if dur <= 0 {
				continue
			}
			busy := float64(s.PerCore[c].Delta.Active) / float64(dur)
			if busy <= 0.01 {
				continue
			}
			if busy > 1 {
				busy = 1
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%d" fill="%s" fill-opacity="%.2f"/>`+"\n",
				x(s.Start), top, max1(x(s.End)-x(s.Start)), coreLaneH-4, busyColor, busy)
		}
	}

	// Time axis.
	axisY := float64(height - 14)
	fmt.Fprintf(&b, `<text x="%d" y="%.1f" style="%s">0</text>`+"\n", marginL, axisY, labelStyle)
	fmt.Fprintf(&b, `<text x="%d" y="%.1f" style="%s" text-anchor="end">%v</text>`+"\n",
		width-marginR, axisY, labelStyle, total)

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func max1(x float64) float64 {
	if x < 1 {
		return 1
	}
	return x
}

// esc escapes the handful of XML-special characters that can appear in
// workload names.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
