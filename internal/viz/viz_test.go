package viz

import (
	"encoding/xml"
	"strings"
	"testing"

	"depburst/internal/cpu"
	"depburst/internal/jvm"
	"depburst/internal/kernel"
	"depburst/internal/sim"
	"depburst/internal/units"
)

func sampleResult() *sim.Result {
	mk := func(start, end units.Time, f units.Freq, busy []float64) sim.QuantumSample {
		s := sim.QuantumSample{Start: start, End: end, Freq: f}
		for _, b := range busy {
			s.PerCore = append(s.PerCore, sim.CoreSample{
				Freq:  f,
				Delta: cpu.Counters{Active: units.Time(float64(end-start) * b)},
			})
		}
		return s
	}
	return &sim.Result{
		Workload: `bench<&>"x"`,
		Time:     300,
		Energy:   units.Millijoule,
		Samples: []sim.QuantumSample{
			mk(0, 100, 4000, []float64{1, 0.5}),
			mk(100, 200, 2000, []float64{0.8, 0}),
			mk(200, 300, 1000, []float64{0.2, 1}),
		},
		GC: jvm.Stats{Pauses: []jvm.Pause{{Start: 120, End: 180}}},
	}
}

func TestTimelineWellFormedXML(t *testing.T) {
	var b strings.Builder
	if err := Timeline(&b, sampleResult()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("output is not well-formed XML: %v\n%s", err, out)
		}
	}
	for _, want := range []string{"<svg", "polyline", "core 0", "core 1", "1GHz", "4GHz"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The workload name's XML specials must be escaped.
	if strings.Contains(out, `bench<&>`) {
		t.Error("workload name not escaped")
	}
}

func TestTimelineGCPausesDrawn(t *testing.T) {
	var b strings.Builder
	Timeline(&b, sampleResult())
	if !strings.Contains(b.String(), `fill-opacity="0.25"`) {
		t.Error("GC pause band missing")
	}
}

func TestTimelineRejectsEmpty(t *testing.T) {
	var b strings.Builder
	if err := Timeline(&b, &sim.Result{}); err == nil {
		t.Error("empty result accepted")
	}
}

func TestTimelineRealRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the simulator")
	}
	cfg := sim.DefaultConfig()
	res, err := sim.New(cfg).Run(tiny{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Timeline(&b, &res); err != nil {
		t.Fatal(err)
	}
	if len(b.String()) < 1000 {
		t.Error("suspiciously small SVG for a real run")
	}
}

type tiny struct{}

func (tiny) Name() string { return "tiny" }
func (tiny) Setup(m *sim.Machine) {
	m.Kern.Spawn("t", kernel.ClassApp, -1, func(e *kernel.Env) {
		for i := 0; i < 200; i++ {
			e.Compute(&cpu.Block{Instrs: 10_000, IPC: 2})
		}
	})
}
