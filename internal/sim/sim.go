// Package sim assembles the full simulated machine — cores, memory
// hierarchy, kernel, managed runtime, and power meter — and runs workloads
// on it, producing the observations (per-thread counters, synchronization
// epochs, per-quantum samples, energy) that predictors and the energy
// manager consume.
package sim

import (
	"context"

	"depburst/internal/cpu"
	"depburst/internal/event"
	"depburst/internal/jvm"
	"depburst/internal/kernel"
	"depburst/internal/mem"
	"depburst/internal/metrics"
	"depburst/internal/power"
	"depburst/internal/rng"
	"depburst/internal/sampling"
	"depburst/internal/units"
)

// Config describes one simulated machine and run.
type Config struct {
	Cores   int
	Core    cpu.Config
	Hier    mem.HierarchyConfig
	Kernel  kernel.Config
	JVM     jvm.Config
	Power   power.Config
	Freq    units.Freq // initial (and, without a governor, only) frequency
	Quantum units.Time // sampling and DVFS-decision interval
	// TransitionLatency is the cost of one DVFS transition (paper: 2 µs).
	TransitionLatency units.Time
	Seed              uint64
	// Sampling configures sampled (live-sampled, Pac-Sim-style) simulation.
	// The zero value — the default — runs every quantum in full detail and
	// is byte-identical to builds without the sampling subsystem. Its
	// fields are part of the persistent-cache content key.
	Sampling sampling.Policy
	// Metrics, when non-nil, is the per-run observability registry the
	// machine threads through the core, memory, runtime and energy
	// layers. nil (the default) disables observability at zero hot-path
	// cost.
	Metrics *metrics.Registry
}

// DefaultConfig mirrors the paper's Table II quad-core machine with the
// scheduling quantum scaled to the compressed time scale (5 ms → 50 µs).
func DefaultConfig() Config {
	return Config{
		Cores:   4,
		Core:    cpu.DefaultConfig(),
		Hier:    mem.DefaultHierarchyConfig(4),
		Kernel:  kernel.DefaultConfig(),
		JVM:     jvm.DefaultConfig(),
		Power:   power.DefaultConfig(),
		Freq:    1000 * units.MHz,
		Quantum: 50 * units.Microsecond,
		// The paper's 2 us transition cost, scaled with the ~100x time
		// compression (like the quantum) so transitions keep the same
		// relative weight per interval.
		TransitionLatency: 20 * units.Nanosecond,
		Seed:              1,
	}
}

// Workload is anything that can populate a machine with threads.
type Workload interface {
	Name() string
	Setup(m *Machine)
}

// Governor decides the chip-wide frequency for the next quantum, given the
// sample just collected. Returning the current frequency keeps it
// unchanged.
type Governor func(m *Machine, s QuantumSample) units.Freq

// CoreGovernor decides each core's frequency for the next quantum; the
// returned slice is indexed by core (nil keeps everything unchanged).
type CoreGovernor func(m *Machine, s QuantumSample) []units.Freq

// QuantumSample is the per-quantum observation used for energy metering
// and DVFS decisions.
type QuantumSample struct {
	Start, End units.Time
	Freq       units.Freq
	// Delta aggregates all threads' counter deltas over the quantum.
	Delta cpu.Counters
	// EpochLo/EpochHi bound the recorder epochs that ended inside this
	// quantum: Epochs()[EpochLo:EpochHi].
	EpochLo, EpochHi int
	DRAMAccesses     uint64
	Energy           units.Energy
	// PerCore holds each core's frequency and counter deltas over the
	// quantum, for per-core DVFS governors.
	PerCore []CoreSample
	// FF marks a quantum that executed in sampled simulation's
	// fast-forward mode: its deltas are partly extrapolated rather than
	// simulated in detail. Always false in full-detail runs.
	FF bool
}

// CoreSample is one core's share of a quantum.
type CoreSample struct {
	Freq  units.Freq
	Delta cpu.Counters
}

// ThreadResult is one thread's lifetime and final counters.
type ThreadResult struct {
	ID         kernel.ThreadID
	Name       string
	Class      kernel.Class
	Start, End units.Time
	C          cpu.Counters
}

// DRAMStats summarises memory-system behaviour.
type DRAMStats struct {
	Reads, Writes                uint64
	RowHits, RowMisses, Conflict uint64
	AvgLatency                   units.Time
}

// Result is everything observed in one run.
type Result struct {
	Workload string
	Freq     units.Freq
	// Time is application completion time including DVFS transition
	// overhead.
	Time               units.Time
	Threads            []ThreadResult
	Epochs             []kernel.Epoch
	Marks              []kernel.Mark
	GC                 jvm.Stats
	Energy             units.Energy
	Samples            []QuantumSample
	Transitions        int
	TransitionOverhead units.Time
	DRAM               DRAMStats
	// Sampling reports the sampled-simulation summary — how much of the
	// run was fast-forwarded and the error bound the extrapolation
	// carries. nil for full-detail runs.
	Sampling *sampling.Report
}

// TotalCounters sums all threads' counters.
func (r *Result) TotalCounters() cpu.Counters {
	var c cpu.Counters
	for _, t := range r.Threads {
		c.Add(t.C)
	}
	return c
}

// Machine is one assembled simulated system.
type Machine struct {
	cfg  Config
	Eng  *event.Engine
	Hier *mem.Hierarchy
	// Clocks holds one clock per core; with chip-wide DVFS they always
	// agree, while SetCoreFreq lets them diverge (per-core DVFS).
	Clocks []*units.Clock
	Cores  []*cpu.Core
	Kern   *kernel.Kernel
	JVM    *jvm.JVM
	Power  *power.Model
	Rng    *rng.Source

	governor     Governor
	coreGovernor CoreGovernor
	freq         units.Freq

	samples     []QuantumSample
	energy      units.Energy
	transitions int
	overhead    units.Time
	tenants     int

	lastCtr      cpu.Counters
	lastCoreCtr  []cpu.Counters
	lastDRAM     uint64
	lastEpochIdx int
	lastSampleAt units.Time
	idleQuanta   int

	reg           *metrics.Registry
	lastReads     uint64
	lastWrites    uint64
	lastConflicts uint64

	// Sampled-simulation state: the online phase detector, whether the
	// quantum now running is fast-forwarded, every runtime instance (for
	// GC drop-back detection), and last-quantum snapshots of the kernel's
	// fast-forward rate pool and the cores' synthetic DRAM tallies.
	det          *sampling.Detector
	ffActive     bool
	jvms         []*jvm.JVM
	lastPool     cpu.Counters
	lastPoolTime units.Time

	// ctx, when non-nil, is polled once per sampling quantum; its
	// cancellation aborts the kernel's event loop and fails the run.
	ctx context.Context
}

// maxIdleQuanta bounds how many consecutive quanta may pass with zero
// application progress before the machine declares the workload hung and
// stops sampling, letting the kernel's deadlock detection report the stuck
// threads instead of spinning forever.
const maxIdleQuanta = 10_000

// New assembles a machine from cfg. The JVM and its service threads are
// created immediately so workload setup can allocate.
func New(cfg Config) *Machine {
	if cfg.Cores <= 0 {
		panic("sim: need at least one core")
	}
	cfg.Hier.Cores = cfg.Cores
	eng := event.New()
	hier := mem.NewHierarchy(cfg.Hier)
	clocks := make([]*units.Clock, cfg.Cores)
	cores := make([]*cpu.Core, cfg.Cores)
	for i := range cores {
		clocks[i] = units.NewClock(cfg.Freq)
		cores[i] = cpu.NewCore(i, cfg.Core, clocks[i], hier)
	}
	kern := kernel.New(eng, cores, cfg.Kernel)
	r := rng.New(cfg.Seed)
	m := &Machine{
		cfg:         cfg,
		Eng:         eng,
		Hier:        hier,
		Clocks:      clocks,
		Cores:       cores,
		Kern:        kern,
		Power:       power.MustModel(cfg.Power),
		Rng:         r,
		freq:        cfg.Freq,
		lastCoreCtr: make([]cpu.Counters, cfg.Cores),
		reg:         cfg.Metrics,
	}
	if m.reg != nil {
		hier.SetMetrics(m.reg)
		for _, c := range cores {
			c.SetMetrics(m.reg)
		}
	}
	if cfg.Sampling.Enabled {
		m.det = sampling.NewDetector(cfg.Sampling, cfg.Cores)
	}
	m.JVM = jvm.New(kern, hier, cfg.JVM, r.Fork(0x14))
	m.JVM.SetMetrics(m.reg)
	m.jvms = append(m.jvms, m.JVM)
	return m
}

// NewJVM creates an additional managed-runtime instance (a co-running
// tenant) in its own kernel thread group. Threads of that tenant must be
// spawned with Kern.SpawnGroup using the returned instance's Group.
func (m *Machine) NewJVM(cfg jvm.Config) *jvm.JVM {
	m.tenants++
	j := jvm.NewGroup(m.Kern, m.Hier, cfg, m.Rng.Fork(0x14+uint64(m.tenants)), m.tenants)
	j.SetMetrics(m.reg)
	m.jvms = append(m.jvms, j)
	return j
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Metrics returns the machine's observability registry (nil when
// disabled). Governors use it to record decision telemetry.
func (m *Machine) Metrics() *metrics.Registry { return m.reg }

// Freq returns the chip-wide frequency setting (with per-core DVFS, the
// frequency of core 0).
func (m *Machine) Freq() units.Freq { return m.freq }

// CoreFreq returns one core's current frequency.
func (m *Machine) CoreFreq(core int) units.Freq { return m.Clocks[core].Freq() }

// SetGovernor installs the per-quantum chip-wide DVFS policy.
func (m *Machine) SetGovernor(g Governor) { m.governor = g }

// SetCoreGovernor installs a per-quantum per-core DVFS policy (the paper's
// future-work direction). Only one governor kind may be installed.
func (m *Machine) SetCoreGovernor(g CoreGovernor) { m.coreGovernor = g }

// SetFreq applies a chip-wide DVFS transition, charging the transition
// latency as reported overhead and energy.
func (m *Machine) SetFreq(f units.Freq) {
	if f == m.freq && m.CoreFreq(0) == f {
		return
	}
	for _, c := range m.Clocks {
		c.SetFreq(f)
	}
	m.freq = f
	m.chargeTransition(f, m.cfg.Cores)
	m.reg.RecordFreqChange(m.Eng.Now(), -1, f)
}

// SetCoreFreq applies a DVFS transition to a single core.
func (m *Machine) SetCoreFreq(core int, f units.Freq) {
	if m.Clocks[core].Freq() == f {
		return
	}
	m.Clocks[core].SetFreq(f)
	if core == 0 {
		m.freq = f
	}
	m.chargeTransition(f, 1)
	m.reg.RecordFreqChange(m.Eng.Now(), core, f)
}

func (m *Machine) chargeTransition(f units.Freq, cores int) {
	m.transitions++
	m.overhead += m.cfg.TransitionLatency
	m.energy += units.EnergyFromPower(
		float64(cores)*m.Power.CorePower(f, power.Activity{BusyFrac: 1, IPCFrac: 0}),
		m.cfg.TransitionLatency)
}

// RunContext executes the workload like Run but aborts the simulation
// promptly — at the next sampling quantum — once ctx is cancelled, killing
// every simulated thread (no goroutine leaks) and returning an error that
// wraps ctx.Err(). The partial Result accompanying an error must be
// discarded: it reflects an interrupted run.
func (m *Machine) RunContext(ctx context.Context, w Workload) (Result, error) {
	m.ctx = ctx
	return m.Run(w)
}

// Run executes the workload to completion and returns the observations.
func (m *Machine) Run(w Workload) (Result, error) {
	w.Setup(m)
	m.Eng.Schedule(m.cfg.Quantum, m.quantum)
	_, err := m.Kern.Run()
	m.sample(m.Kern.AppEndTime()) // close the final partial quantum

	if m.reg != nil {
		m.reg.SetRun(w.Name(), m.cfg.Freq)
		for i := range m.Kern.Recorder().Epochs() {
			m.reg.ObserveEpoch(m.Kern.Recorder().Epochs()[i].Duration())
		}
	}

	res := Result{
		Workload:           w.Name(),
		Freq:               m.cfg.Freq,
		Time:               m.Kern.AppEndTime() + m.overhead,
		Epochs:             m.Kern.Recorder().Epochs(),
		Marks:              m.Kern.Recorder().Marks(),
		GC:                 m.JVM.Stats(),
		Energy:             m.energy,
		Samples:            m.samples,
		Transitions:        m.transitions,
		TransitionOverhead: m.overhead,
	}
	for _, t := range m.Kern.Threads() {
		res.Threads = append(res.Threads, ThreadResult{
			ID:    t.ID(),
			Name:  t.Name(),
			Class: t.Class(),
			Start: t.SpawnTime(),
			End:   t.EndTime(),
			C:     t.Counters(),
		})
	}
	d := m.Hier.DRAM()
	res.DRAM = DRAMStats{
		Reads: d.Reads, Writes: d.Writes,
		RowHits: d.RowHits, RowMisses: d.RowMisses, Conflict: d.Conflicts,
		AvgLatency: d.AvgLatency(),
	}
	if m.det != nil {
		// Fold the extrapolated DRAM traffic into the totals (latency and
		// row statistics remain hierarchy-observed) and attach the
		// sampled-simulation summary.
		for _, c := range m.Cores {
			sr, sw := c.SynthDRAM()
			res.DRAM.Reads += sr
			res.DRAM.Writes += sw
		}
		rep := m.det.Report()
		res.Sampling = &rep
	}
	return res, err
}

// quantum is the self-rescheduling sampling event.
func (m *Machine) quantum(now units.Time) {
	if m.ctx != nil && m.ctx.Err() != nil {
		// Cancellation: stop sampling and tear the kernel down instead
		// of simulating the workload to completion.
		m.Kern.Abort(m.ctx.Err())
		return
	}
	s := m.sample(now)
	if m.governor != nil {
		if f := m.governor(m, s); f != m.freq && f > 0 {
			m.SetFreq(f)
		}
	}
	if m.coreGovernor != nil {
		if fs := m.coreGovernor(m, s); fs != nil {
			for i, f := range fs {
				if i < len(m.Clocks) && f > 0 {
					m.SetCoreFreq(i, f)
				}
			}
		}
	}
	if m.det != nil {
		m.observeSampling(s)
	}
	if s.Delta.Active == 0 {
		m.idleQuanta++
	} else {
		m.idleQuanta = 0
	}
	if m.Kern.LiveAppThreads() > 0 && m.idleQuanta < maxIdleQuanta {
		m.Eng.Schedule(now+m.cfg.Quantum, m.quantum)
	}
}

// observeSampling feeds the just-closed quantum to the phase detector and
// applies its decision to the cores for the next quantum. Runs after the
// governors so a DVFS transition this quantum is visible to the detector
// immediately (fast-forward never spans a frequency change).
func (m *Machine) observeSampling(s QuantumSample) {
	pool, poolTime := m.Kern.FFPool()
	var gcCount int64
	inGC := false
	for _, j := range m.jvms {
		st := j.Stats()
		gcCount += int64(st.MinorGCs + st.MajorGCs)
		inGC = inGC || j.InGC()
	}
	q := sampling.Quantum{
		Dur:         s.End - s.Start,
		Freq:        m.freq,
		Delta:       s.Delta,
		DRAM:        s.DRAMAccesses,
		Epochs:      m.Kern.Recorder().Epochs()[s.EpochLo:s.EpochHi],
		PoolDelta:   pool.Sub(m.lastPool),
		PoolTime:    poolTime - m.lastPoolTime,
		GCCount:     gcCount,
		InGC:        inGC,
		Transitions: m.transitions,
		Fast:        s.FF,
	}
	m.lastPool = pool
	m.lastPoolTime = poolTime

	if m.det.Observe(q) {
		m.ffActive = true
		r := m.det.Rates()
		for _, c := range m.Cores {
			c.SetFastForward(r)
		}
	} else {
		m.ffActive = false
		for _, c := range m.Cores {
			c.ClearFastForward()
		}
	}
}

// sample closes the interval [lastSampleAt, now], metering energy with
// each core at its own frequency and activity.
func (m *Machine) sample(now units.Time) QuantumSample {
	if now <= m.lastSampleAt {
		if len(m.samples) > 0 {
			return m.samples[len(m.samples)-1]
		}
		return QuantumSample{}
	}
	m.Kern.SyncActive()
	var total cpu.Counters
	for _, t := range m.Kern.Threads() {
		total.Add(t.Counters())
	}
	delta := total.Sub(m.lastCtr)
	m.lastCtr = total

	// Fast-forwarded blocks bypass the memory hierarchy; fold the DRAM
	// accesses they would have made (synthesised by the cores) into the
	// quantum's access count so DRAM statistics and energy metering stay
	// consistent in sampled runs. Always zero in full-detail mode.
	var synth uint64
	for _, c := range m.Cores {
		sr, sw := c.SynthDRAM()
		synth += sr + sw
	}
	d := m.Hier.DRAM()
	dram := d.Reads + d.Writes + synth
	dramDelta := dram - m.lastDRAM
	m.lastDRAM = dram

	if m.reg != nil {
		m.reg.RecordDRAMPoint(metrics.DRAMPoint{
			At:             now,
			Reads:          d.Reads - m.lastReads,
			Writes:         d.Writes - m.lastWrites,
			Conflicts:      d.Conflicts - m.lastConflicts,
			BusUtilization: d.BusUtilization(),
		})
		m.lastReads, m.lastWrites, m.lastConflicts = d.Reads, d.Writes, d.Conflicts
	}

	dur := now - m.lastSampleAt

	// Per-core activity and energy.
	perCore := make([]CoreSample, len(m.Cores))
	var watts float64
	for i, c := range m.Cores {
		cur := c.Counters()
		cd := cur.Sub(m.lastCoreCtr[i])
		m.lastCoreCtr[i] = cur
		f := m.Clocks[i].Freq()
		busy := float64(cd.Active) / float64(dur)
		var ipcFrac float64
		if cd.Active > 0 {
			cycles := cd.Active.Seconds() * f.Hz()
			ipcFrac = float64(cd.Instrs) / (cycles * float64(m.cfg.Core.DispatchWidth))
		}
		watts += m.Power.CorePower(f, power.Activity{BusyFrac: busy, IPCFrac: ipcFrac})
		perCore[i] = CoreSample{Freq: f, Delta: cd}
	}
	watts += m.Power.UncorePower()
	e := units.EnergyFromPower(watts, dur) +
		units.Energy(dramDelta)*m.Power.Config().DRAMAccess
	m.energy += e

	epochHi := len(m.Kern.Recorder().Epochs())
	s := QuantumSample{
		Start: m.lastSampleAt, End: now,
		Freq:         m.freq,
		Delta:        delta,
		EpochLo:      m.lastEpochIdx,
		EpochHi:      epochHi,
		DRAMAccesses: dramDelta,
		Energy:       e,
		PerCore:      perCore,
		FF:           m.ffActive,
	}
	m.lastEpochIdx = epochHi
	m.lastSampleAt = now
	m.samples = append(m.samples, s)
	return s
}
