package sim_test

import (
	"testing"

	"depburst/internal/dacapo"
	"depburst/internal/sim"
	"depburst/internal/units"
)

func TestSmokeAllBenchmarks(t *testing.T) {
	for _, spec := range dacapo.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			cfg := sim.DefaultConfig()
			spec.Configure(&cfg)
			m := sim.New(cfg)
			res, err := m.Run(dacapo.New(spec))
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			tot := res.TotalCounters()
			gcFrac := float64(res.GC.GCTime) / float64(res.Time)
			t.Logf("%-12s time=%v gc=%v (%.1f%%) minor=%d major=%d epochs=%d instrs=%.1fM dramR=%d dramW=%d alloc=%.1fMB sqfull=%v crit=%v active=%v l2=%d l3=%d dram=%d avgLat=%v",
				spec.Name, res.Time, res.GC.GCTime, gcFrac*100,
				res.GC.MinorGCs, res.GC.MajorGCs, len(res.Epochs),
				float64(tot.Instrs)/1e6, res.DRAM.Reads, res.DRAM.Writes,
				float64(res.GC.AllocBytes)/1e6, tot.SQFull, tot.CritNS, tot.Active,
				tot.LoadsL2, tot.LoadsL3, tot.LoadsDRAM, res.DRAM.AvgLatency)
			if res.Time <= 0 || res.Time > 500*units.Millisecond {
				t.Errorf("implausible time %v", res.Time)
			}
		})
	}
}
