package sim_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"depburst/internal/dacapo"
	"depburst/internal/sim"
)

// TestRunContextCancelledBeforeStart: an already-cancelled context aborts the
// run on the first sampling quantum and reports the context's error.
func TestRunContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := sim.DefaultConfig()
	spec, err := dacapo.ByName("pmd.scale")
	if err != nil {
		t.Fatal(err)
	}
	spec.Configure(&cfg)
	m := sim.New(cfg)
	if _, err := m.RunContext(ctx, dacapo.New(spec)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextCancelMidRun: cancelling while the simulation is running
// aborts it promptly (well under the full run's wall time) and leaves no
// thread goroutines behind.
func TestRunContextCancelMidRun(t *testing.T) {
	spec, err := dacapo.ByName("lusearch")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	spec.Configure(&cfg)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	m := sim.New(cfg)
	start := time.Now()
	_, rerr := m.RunContext(ctx, dacapo.New(spec))
	elapsed := time.Since(start)
	if !errors.Is(rerr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", rerr)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; want prompt abort", elapsed)
	}
	// All kernel thread goroutines must have been shut down.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestRunContextNilBehavesLikeRun: a background context must not perturb the
// deterministic result.
func TestRunContextNilBehavesLikeRun(t *testing.T) {
	spec, err := dacapo.ByName("pmd.scale")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	spec.Configure(&cfg)

	m1 := sim.New(cfg)
	plain, err := m1.Run(dacapo.New(spec))
	if err != nil {
		t.Fatal(err)
	}
	m2 := sim.New(cfg)
	ctxed, err := m2.RunContext(context.Background(), dacapo.New(spec))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Time != ctxed.Time || plain.Energy != ctxed.Energy {
		t.Fatalf("RunContext changed the result: %v/%v vs %v/%v",
			plain.Time, plain.Energy, ctxed.Time, ctxed.Energy)
	}
}
