package sim_test

import (
	"testing"

	"depburst/internal/cpu"
	"depburst/internal/dacapo"
	"depburst/internal/kernel"
	"depburst/internal/sim"
	"depburst/internal/units"
)

type tinyWorkload struct{ blocks int }

func (tinyWorkload) Name() string { return "tiny" }

func (w tinyWorkload) Setup(m *sim.Machine) {
	n := w.blocks
	if n == 0 {
		n = 50
	}
	m.Kern.Spawn("t", kernel.ClassApp, -1, func(e *kernel.Env) {
		for i := 0; i < n; i++ {
			e.Compute(&cpu.Block{Instrs: 10_000, IPC: 2})
		}
	})
}

func TestMachineDeterministic(t *testing.T) {
	run := func() sim.Result {
		spec, _ := dacapo.ByName("pmd.scale")
		cfg := sim.DefaultConfig()
		spec.Configure(&cfg)
		res, err := sim.New(cfg).Run(dacapo.New(spec))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Time != b.Time || a.Energy != b.Energy || len(a.Epochs) != len(b.Epochs) {
		t.Errorf("nondeterministic: time %v vs %v, energy %v vs %v, epochs %d vs %d",
			a.Time, b.Time, a.Energy, b.Energy, len(a.Epochs), len(b.Epochs))
	}
}

func TestSeedChangesRun(t *testing.T) {
	run := func(seed uint64) units.Time {
		spec, _ := dacapo.ByName("pmd.scale")
		cfg := sim.DefaultConfig()
		cfg.Seed = seed
		spec.Configure(&cfg)
		res, err := sim.New(cfg).Run(dacapo.New(spec))
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	if run(1) == run(2) {
		t.Error("different seeds produced identical runtimes")
	}
}

func TestQuantumSamplesContiguous(t *testing.T) {
	cfg := sim.DefaultConfig()
	res, err := sim.New(cfg).Run(tinyWorkload{blocks: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 2 {
		t.Fatalf("only %d samples", len(res.Samples))
	}
	prev := units.Time(0)
	var energy units.Energy
	for i, s := range res.Samples {
		if s.Start != prev {
			t.Fatalf("sample %d starts at %v, previous ended %v", i, s.Start, prev)
		}
		if s.End <= s.Start {
			t.Fatalf("sample %d empty", i)
		}
		if s.EpochHi < s.EpochLo {
			t.Fatalf("sample %d epoch range inverted", i)
		}
		energy += s.Energy
		prev = s.End
	}
	if energy != res.Energy {
		t.Errorf("sample energies sum to %v, result says %v", energy, res.Energy)
	}
}

func TestEnergyPositiveAndFrequencySensitive(t *testing.T) {
	run := func(f units.Freq) sim.Result {
		cfg := sim.DefaultConfig()
		cfg.Freq = f
		res, err := sim.New(cfg).Run(tinyWorkload{blocks: 2000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lo := run(1000)
	hi := run(4000)
	if lo.Energy <= 0 || hi.Energy <= 0 {
		t.Fatal("non-positive energy")
	}
	// Pure compute: 4 GHz finishes ~4x faster.
	if r := float64(lo.Time) / float64(hi.Time); r < 3.5 {
		t.Errorf("compute workload speedup %v", r)
	}
}

func TestGovernorInvokedAndTransitionsCounted(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Freq = 4000
	m := sim.New(cfg)
	calls := 0
	m.SetGovernor(func(mm *sim.Machine, s sim.QuantumSample) units.Freq {
		calls++
		if calls%2 == 1 {
			return 2000
		}
		return 4000
	})
	res, err := m.Run(tinyWorkload{blocks: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("governor never called")
	}
	if res.Transitions == 0 {
		t.Error("no transitions recorded")
	}
	if res.TransitionOverhead != units.Time(res.Transitions)*cfg.TransitionLatency {
		t.Errorf("overhead %v for %d transitions", res.TransitionOverhead, res.Transitions)
	}
}

func TestResultThreadsAndCounters(t *testing.T) {
	cfg := sim.DefaultConfig()
	res, err := sim.New(cfg).Run(tinyWorkload{blocks: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Threads: the app thread plus the JVM's service threads.
	var apps, services int
	for _, th := range res.Threads {
		switch th.Class {
		case kernel.ClassApp:
			apps++
		case kernel.ClassService:
			services++
		}
	}
	if apps != 1 {
		t.Errorf("app threads %d", apps)
	}
	if services != cfg.JVM.GCThreads {
		t.Errorf("service threads %d, want %d", services, cfg.JVM.GCThreads)
	}
	tot := res.TotalCounters()
	if tot.Instrs != 100*10_000 {
		t.Errorf("instructions %d", tot.Instrs)
	}
}

func TestSetFreqIdempotent(t *testing.T) {
	m := sim.New(sim.DefaultConfig())
	m.SetFreq(m.Freq())
	if m.Freq() != sim.DefaultConfig().Freq {
		t.Error("SetFreq(current) changed frequency")
	}
}

func TestPerCoreClocksIndependent(t *testing.T) {
	// Two identical threads pinned to different cores; core 1 runs at
	// 4x the frequency, so its thread must finish ~4x sooner.
	cfg := sim.DefaultConfig()
	cfg.Freq = 1000
	m := sim.New(cfg)
	m.SetCoreFreq(1, 4000)
	if m.CoreFreq(0) != 1000 || m.CoreFreq(1) != 4000 {
		t.Fatalf("core freqs %v/%v", m.CoreFreq(0), m.CoreFreq(1))
	}
	var end [2]units.Time
	for i := 0; i < 2; i++ {
		i := i
		m.Kern.Spawn("w", kernel.ClassApp, i, func(e *kernel.Env) {
			for j := 0; j < 50; j++ {
				e.Compute(&cpu.Block{Instrs: 10_000, IPC: 2})
			}
			end[i] = e.Now()
		})
	}
	if _, err := m.Run(nilWorkload{}); err != nil {
		t.Fatal(err)
	}
	ratio := float64(end[0]) / float64(end[1])
	if ratio < 3.5 {
		t.Errorf("per-core frequency had no effect: slow/fast end ratio %.2f", ratio)
	}
}

func TestPerCoreSamples(t *testing.T) {
	cfg := sim.DefaultConfig()
	res, err := sim.New(cfg).Run(tinyWorkload{blocks: 2000})
	if err != nil {
		t.Fatal(err)
	}
	var perCore, total int64
	for _, s := range res.Samples {
		if len(s.PerCore) != cfg.Cores {
			t.Fatalf("sample has %d per-core entries", len(s.PerCore))
		}
		for _, cs := range s.PerCore {
			perCore += cs.Delta.Instrs
		}
		total += s.Delta.Instrs
	}
	if perCore != total {
		t.Errorf("per-core instruction deltas sum to %d, aggregate says %d", perCore, total)
	}
}

type nilWorkload struct{}

func (nilWorkload) Name() string         { return "nil" }
func (nilWorkload) Setup(m *sim.Machine) {}
