package sim_test

import (
	"testing"

	"depburst/internal/cpu"
	"depburst/internal/jvm"
	"depburst/internal/kernel"
	"depburst/internal/rng"
	"depburst/internal/sim"
	"depburst/internal/trace"
	"depburst/internal/units"
)

// chaosWorkload exercises every primitive the simulator offers with
// randomised structure: random thread counts, random mixes of compute,
// allocation, locking, barriers, condition variables and sleeps. It exists
// to soak-test the kernel/JVM invariants under schedules no benchmark
// produces.
type chaosWorkload struct {
	seed    uint64
	threads int
	items   int
}

func (w chaosWorkload) Name() string { return "chaos" }

func (w chaosWorkload) Setup(m *sim.Machine) {
	var (
		mu     kernel.Mutex
		mu2    kernel.Mutex
		cond   kernel.Cond
		tokens int
	)
	barrier := kernel.NewBarrier(w.threads)
	done := kernel.NewBarrier(w.threads + 1)

	m.Kern.Spawn("chaos-main", kernel.ClassApp, -1, func(e *kernel.Env) {
		for i := 0; i < w.threads; i++ {
			tid := i
			m.Kern.Spawn("chaos", kernel.ClassApp, -1, func(e *kernel.Env) {
				w.body(e, m, tid, &mu, &mu2, &cond, &tokens, barrier)
				e.BarrierWait(done)
			})
		}
		e.BarrierWait(done)
	})
}

func (w chaosWorkload) body(e *kernel.Env, m *sim.Machine, tid int,
	mu, mu2 *kernel.Mutex, cond *kernel.Cond, tokens *int, barrier *kernel.Barrier) {
	r := rng.New(w.seed).Fork(uint64(tid))
	tl := &jvm.TLAB{}
	var blk cpu.Block
	prof := trace.Profile{
		IPC: 1.5 + r.Float64(), LoadsPerKI: 5 + 10*r.Float64(),
		StoresPerKI: 3 * r.Float64(), DepFrac: 0.4 * r.Float64(),
		Addr: trace.RandomRegion{Base: 1 << 45, Size: 4 << 20},
	}
	for i := 0; i < w.items; i++ {
		m.JVM.Safepoint(e)
		// Barriers need every thread to arrive the same number of
		// times, so they run on a fixed schedule; everything else is
		// randomised per thread.
		if i%16 == 7 {
			e.BarrierWait(barrier)
			continue
		}
		switch r.Intn(6) {
		case 0, 1, 2:
			trace.FillBlock(&blk, prof, 1000+r.Int63n(8000), r)
			e.Compute(&blk)
		case 3:
			m.JVM.Alloc(e, tl, 256+r.Int63n(8192))
		case 4:
			e.Lock(mu)
			trace.FillBlock(&blk, prof, 500+r.Int63n(1500), r)
			e.Compute(&blk)
			if r.Bool(0.3) {
				e.Lock(mu2) // nested, fixed order: no deadlock
				e.Unlock(mu2)
			}
			e.Unlock(mu)
		case 5:
			e.Lock(mu2)
			*tokens++
			e.CondSignal(cond)
			e.Unlock(mu2)
		}
	}
}

func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, seed := range []uint64{7, 99, 12345} {
		seed := seed
		cfg := sim.DefaultConfig()
		cfg.Kernel.ValidateBlocks = true
		cfg.Seed = seed
		w := chaosWorkload{seed: seed, threads: 4, items: 300}
		res, err := sim.New(cfg).Run(w)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Conservation: epoch slices must account for exactly the
		// threads' counters.
		var sliced, total cpu.Counters
		for _, ep := range res.Epochs {
			if ep.End < ep.Start {
				t.Fatalf("seed %d: inverted epoch", seed)
			}
			for _, sl := range ep.Slices {
				sliced.Add(sl.Delta)
			}
		}
		for _, th := range res.Threads {
			total.Add(th.C)
		}
		if sliced != total {
			t.Fatalf("seed %d: epoch slicing lost work", seed)
		}

		// Determinism: the same chaos replays identically.
		res2, err := sim.New(cfg).Run(w)
		if err != nil {
			t.Fatal(err)
		}
		if res2.Time != res.Time || res2.Energy != res.Energy {
			t.Fatalf("seed %d: nondeterministic chaos (%v/%v vs %v/%v)",
				seed, res.Time, res.Energy, res2.Time, res2.Energy)
		}
	}
}

func TestChaosSurvivesDVFS(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// Random frequency changes every quantum must not break anything.
	cfg := sim.DefaultConfig()
	cfg.Freq = 4000
	m := sim.New(cfg)
	r := rng.New(42)
	states := []units.Freq{1000, 1500, 2250, 3000, 4000}
	m.SetGovernor(func(_ *sim.Machine, _ sim.QuantumSample) units.Freq {
		return states[r.Intn(len(states))]
	})
	res, err := m.Run(chaosWorkload{seed: 5, threads: 5, items: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transitions == 0 {
		t.Error("no transitions under a random governor")
	}
}

// deadlockWorkload parks its only thread forever.
type deadlockWorkload struct{ fu kernel.Futex }

func (*deadlockWorkload) Name() string { return "deadlock" }

func (w *deadlockWorkload) Setup(m *sim.Machine) {
	m.Kern.Spawn("stuck", kernel.ClassApp, -1, func(e *kernel.Env) {
		e.ParkIf(&w.fu, nil)
	})
}

func TestDeadlockReportedNotHung(t *testing.T) {
	// The sampling quantum must not keep a deadlocked simulation alive
	// forever: the machine stops sampling after a bounded idle period and
	// the kernel reports the stuck threads.
	cfg := sim.DefaultConfig()
	_, err := sim.New(cfg).Run(&deadlockWorkload{})
	if err == nil {
		t.Fatal("deadlocked run returned no error")
	}
}
