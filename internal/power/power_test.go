package power

import (
	"testing"
	"testing/quick"

	"depburst/internal/units"
)

func model(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestVoltageTableEndpoints(t *testing.T) {
	m := model(t)
	if got := m.Voltage(1000); got != 0.70 {
		t.Errorf("V(1GHz) = %v", got)
	}
	if got := m.Voltage(4000); got != 1.15 {
		t.Errorf("V(4GHz) = %v", got)
	}
	// Clamping outside the table.
	if m.Voltage(500) != 0.70 || m.Voltage(5000) != 1.15 {
		t.Error("voltage not clamped at table edges")
	}
	// Interpolation: midway between 1 and 1.5 GHz.
	mid := m.Voltage(1250)
	if mid <= 0.70 || mid >= 0.78 {
		t.Errorf("V(1.25GHz) = %v, want within (0.70, 0.78)", mid)
	}
}

func TestVoltageMonotone(t *testing.T) {
	m := model(t)
	err := quick.Check(func(a, b uint16) bool {
		fa := units.Freq(a%4000) + 500
		fb := units.Freq(b%4000) + 500
		if fa > fb {
			fa, fb = fb, fa
		}
		return m.Voltage(fa) <= m.Voltage(fb)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestPowerMonotoneInFrequency(t *testing.T) {
	m := model(t)
	act := Activity{BusyFrac: 1, IPCFrac: 0.5}
	prev := 0.0
	for f := units.Freq(1000); f <= 4000; f += 125 {
		p := m.ChipPower(f, 4, act)
		if p <= prev {
			t.Fatalf("power not increasing at %v: %v <= %v", f, p, prev)
		}
		prev = p
	}
}

func TestPowerMonotoneInActivity(t *testing.T) {
	m := model(t)
	idle := m.ChipPower(4000, 4, Activity{BusyFrac: 0})
	half := m.ChipPower(4000, 4, Activity{BusyFrac: 0.5, IPCFrac: 0.5})
	full := m.ChipPower(4000, 4, Activity{BusyFrac: 1, IPCFrac: 1})
	if !(idle < half && half < full) {
		t.Errorf("power not monotone in activity: %v, %v, %v", idle, half, full)
	}
	if idle <= m.Config().Uncore {
		t.Errorf("idle power %v should still include uncore %v plus leakage", idle, m.Config().Uncore)
	}
}

func TestPowerCalibration(t *testing.T) {
	// Sanity band for the default Haswell-like chip: full tilt at 4 GHz
	// in the tens of watts; near-idle at 1 GHz far lower.
	m := model(t)
	max := m.ChipPower(4000, 4, Activity{BusyFrac: 1, IPCFrac: 0.6})
	min := m.ChipPower(1000, 4, Activity{BusyFrac: 1, IPCFrac: 0.6})
	if max < 50 || max > 120 {
		t.Errorf("4 GHz power %v W outside sanity band", max)
	}
	if min > max/2 {
		t.Errorf("1 GHz power %v W not well below 4 GHz power %v W", min, max)
	}
}

func TestIntervalEnergy(t *testing.T) {
	m := model(t)
	act := Activity{BusyFrac: 1, IPCFrac: 0.5}
	e1 := m.IntervalEnergy(2000, 4, act, units.Millisecond)
	e2 := m.IntervalEnergy(2000, 4, act, 2*units.Millisecond)
	// Twice the duration, twice the energy.
	ratio := float64(e2) / float64(e1)
	if ratio < 1.99 || ratio > 2.01 {
		t.Errorf("energy not linear in time: %v", ratio)
	}
	// DRAM accesses add energy.
	withDram := m.IntervalEnergy(2000, 4, Activity{BusyFrac: 1, IPCFrac: 0.5, DRAMAccesses: 1000}, units.Millisecond)
	if withDram-e1 != 1000*m.Config().DRAMAccess {
		t.Errorf("DRAM energy delta %v", withDram-e1)
	}
}

func TestStates(t *testing.T) {
	m := model(t)
	states := m.States(125)
	if states[0] != 1000 || states[len(states)-1] != 4000 {
		t.Errorf("states endpoints: %v .. %v", states[0], states[len(states)-1])
	}
	if len(states) != 25 {
		t.Errorf("state count %d, want 25", len(states))
	}
	for i := 1; i < len(states); i++ {
		if states[i] <= states[i-1] {
			t.Fatal("states not increasing")
		}
	}
}

func TestStatesOddStepIncludesMax(t *testing.T) {
	m := model(t)
	states := m.States(700)
	if states[len(states)-1] != 4000 {
		t.Errorf("max frequency missing: %v", states)
	}
}

func TestBadConfigRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Table = cfg.Table[:1]
	if _, err := NewModel(cfg); err == nil {
		t.Error("single-point table accepted")
	}
	cfg = DefaultConfig()
	cfg.Table[0], cfg.Table[1] = cfg.Table[1], cfg.Table[0]
	if _, err := NewModel(cfg); err == nil {
		t.Error("unsorted table accepted")
	}
	cfg = DefaultConfig()
	cfg.Table[2].Volt = -1
	if _, err := NewModel(cfg); err == nil {
		t.Error("negative voltage accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustModel did not panic")
		}
	}()
	MustModel(cfg)
}

func TestMinMaxFreq(t *testing.T) {
	m := model(t)
	if m.MinFreq() != 1000 || m.MaxFreq() != 4000 {
		t.Errorf("range %v..%v", m.MinFreq(), m.MaxFreq())
	}
}

func TestChipPowerIsSumOfCores(t *testing.T) {
	m := model(t)
	a := Activity{BusyFrac: 0.7, IPCFrac: 0.4}
	chip := m.ChipPower(2500, 4, a)
	sum := 4*m.CorePower(2500, a) + m.UncorePower()
	if diff := chip - sum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("chip %v != 4*core+uncore %v", chip, sum)
	}
}

func TestCorePowerPerCoreDVFS(t *testing.T) {
	// A core at 1 GHz must burn far less than one at 4 GHz under the
	// same activity — the premise of per-core DVFS savings.
	m := model(t)
	a := Activity{BusyFrac: 1, IPCFrac: 0.5}
	lo := m.CorePower(1000, a)
	hi := m.CorePower(4000, a)
	if lo >= hi/2 {
		t.Errorf("per-core power: %vW @1GHz vs %vW @4GHz", lo, hi)
	}
}
