// Package power models processor power and energy in the style of McPAT:
// per-core dynamic power αCV²f scaled by pipeline activity, voltage-
// dependent leakage, constant uncore power, and per-access DRAM energy.
// The voltage/frequency operating points follow Intel's 22 nm Haswell
// i7-4770K, as in the paper's methodology (Table II).
package power

import (
	"fmt"
	"sort"

	"depburst/internal/units"
)

// VF is one DVFS operating point.
type VF struct {
	Freq units.Freq
	Volt float64
}

// Config parameterises the power model.
type Config struct {
	// CDyn is the effective switched capacitance per core at full
	// activity, in watts per (volt² · GHz).
	CDyn float64
	// ActivityBase is the fraction of CDyn toggling even at IPC 0 while
	// the core is active (clock tree, fetch); ActivityIPC scales with
	// realised IPC utilisation.
	ActivityBase float64
	ActivityIPC  float64
	// IdleActivity is the activity of a core with nothing scheduled
	// (clock-gated).
	IdleActivity float64
	// LeakPerCore is per-core leakage power at nominal (maximum) voltage;
	// leakage scales linearly with voltage.
	LeakPerCore float64
	// Uncore is constant power for the shared L3, ring and memory
	// controller.
	Uncore float64
	// DRAMBackground is constant DRAM background power; DRAMAccess is
	// the energy per 64-byte DRAM access.
	DRAMBackground float64
	DRAMAccess     units.Energy
	// Table holds the supported V/f points in ascending frequency order;
	// intermediate frequencies interpolate linearly.
	Table []VF
}

// DefaultConfig returns a quad-core 22 nm Haswell-like model calibrated so
// the chip draws ~80 W fully active at 4 GHz and ~20 W at 1 GHz.
func DefaultConfig() Config {
	return Config{
		CDyn:           2.70,
		ActivityBase:   0.3,
		ActivityIPC:    0.7,
		IdleActivity:   0.05,
		LeakPerCore:    3.0,
		Uncore:         10.0,
		DRAMBackground: 2.5,
		DRAMAccess:     10 * units.Nanojoule,
		Table: []VF{
			{Freq: 1000 * units.MHz, Volt: 0.70},
			{Freq: 1500 * units.MHz, Volt: 0.78},
			{Freq: 2000 * units.MHz, Volt: 0.86},
			{Freq: 2500 * units.MHz, Volt: 0.93},
			{Freq: 3000 * units.MHz, Volt: 1.00},
			{Freq: 3500 * units.MHz, Volt: 1.08},
			{Freq: 4000 * units.MHz, Volt: 1.15},
		},
	}
}

// Model evaluates power at operating points.
type Model struct {
	cfg Config
}

// NewModel validates cfg and returns a model.
func NewModel(cfg Config) (*Model, error) {
	if len(cfg.Table) < 2 {
		return nil, fmt.Errorf("power: V/f table needs at least two points")
	}
	if !sort.SliceIsSorted(cfg.Table, func(i, j int) bool { return cfg.Table[i].Freq < cfg.Table[j].Freq }) {
		return nil, fmt.Errorf("power: V/f table must be sorted by frequency")
	}
	for i, p := range cfg.Table {
		if p.Volt <= 0 || p.Freq <= 0 {
			return nil, fmt.Errorf("power: invalid V/f point %d: %+v", i, p)
		}
	}
	return &Model{cfg: cfg}, nil
}

// MustModel is NewModel that panics on error, for known-good configs.
func MustModel(cfg Config) *Model {
	m, err := NewModel(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the model parameters.
func (m *Model) Config() Config { return m.cfg }

// MinFreq and MaxFreq bound the supported DVFS range.
func (m *Model) MinFreq() units.Freq { return m.cfg.Table[0].Freq }

// MaxFreq returns the highest supported frequency.
func (m *Model) MaxFreq() units.Freq { return m.cfg.Table[len(m.cfg.Table)-1].Freq }

// Voltage interpolates the supply voltage for f, clamping to the table
// boundaries.
func (m *Model) Voltage(f units.Freq) float64 {
	t := m.cfg.Table
	if f <= t[0].Freq {
		return t[0].Volt
	}
	if f >= t[len(t)-1].Freq {
		return t[len(t)-1].Volt
	}
	i := sort.Search(len(t), func(i int) bool { return t[i].Freq >= f }) // t[i-1].Freq < f <= t[i].Freq
	lo, hi := t[i-1], t[i]
	frac := float64(f-lo.Freq) / float64(hi.Freq-lo.Freq)
	return lo.Volt + frac*(hi.Volt-lo.Volt)
}

// Activity describes the chip's utilisation over an interval.
type Activity struct {
	// BusyFrac is the fraction of core-time with a thread scheduled,
	// averaged over all cores (0..1).
	BusyFrac float64
	// IPCFrac is committed instructions divided by the maximum possible
	// (width × busy cycles), 0..1.
	IPCFrac float64
	// DRAMAccesses is the number of 64-byte memory transfers in the
	// interval.
	DRAMAccesses uint64
}

// CorePower returns one core's average power (watts) at frequency f with
// the given activity. With per-core DVFS each core runs at its own V/f
// point, so per-core powers are evaluated independently and summed.
func (m *Model) CorePower(f units.Freq, a Activity) float64 {
	v := m.Voltage(f)
	busyAct := m.cfg.ActivityBase + m.cfg.ActivityIPC*clamp01(a.IPCFrac)
	act := clamp01(a.BusyFrac)*busyAct + (1-clamp01(a.BusyFrac))*m.cfg.IdleActivity
	dyn := m.cfg.CDyn * v * v * f.GHzF() * act
	leak := m.cfg.LeakPerCore * v / m.cfg.Table[len(m.cfg.Table)-1].Volt
	return dyn + leak
}

// UncorePower returns the frequency-independent shared power (L3, ring,
// memory controller, DRAM background).
func (m *Model) UncorePower() float64 { return m.cfg.Uncore + m.cfg.DRAMBackground }

// ChipPower returns the chip's average power (watts, excluding per-access
// DRAM energy) for the given frequency, core count and activity.
func (m *Model) ChipPower(f units.Freq, cores int, a Activity) float64 {
	return float64(cores)*m.CorePower(f, a) + m.UncorePower()
}

// IntervalEnergy integrates power over an interval of length d with the
// given activity, including per-access DRAM energy.
func (m *Model) IntervalEnergy(f units.Freq, cores int, a Activity, d units.Time) units.Energy {
	e := units.EnergyFromPower(m.ChipPower(f, cores, a), d)
	e += units.Energy(a.DRAMAccesses) * m.cfg.DRAMAccess
	return e
}

// States enumerates the DVFS states from MinFreq to MaxFreq with the given
// step (e.g. 125 MHz, the paper's setting).
func (m *Model) States(step units.Freq) []units.Freq {
	if step <= 0 {
		panic("power: non-positive DVFS step")
	}
	var out []units.Freq
	for f := m.MinFreq(); f <= m.MaxFreq(); f += step {
		out = append(out, f)
	}
	if out[len(out)-1] != m.MaxFreq() {
		out = append(out, m.MaxFreq())
	}
	return out
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
