package mem

import (
	"depburst/internal/metrics"
	"depburst/internal/units"
)

// Level identifies where in the hierarchy an access was satisfied.
type Level int

// Hierarchy levels. LevelL1 is returned for accesses the core model filters
// before reaching the hierarchy (the hierarchy itself never returns it).
const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelDRAM
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelDRAM:
		return "DRAM"
	default:
		return "?"
	}
}

// HierarchyConfig describes the multi-level hierarchy for a chip.
type HierarchyConfig struct {
	Cores int
	L2    CacheConfig // private, per core
	L3    CacheConfig // shared
	// L3Latency is the shared-cache hit latency. The L3 runs on the fixed
	// uncore clock, so this is wall-clock time that does not scale with
	// core frequency (Table II: 40 cycles at a fixed 1.5 GHz ≈ 26.7 ns).
	L3Latency units.Time
	DRAM      DRAMConfig
	// NextLinePrefetch enables a simple L2 next-line prefetcher: a demand
	// load that misses the L2 also fetches the following line in the
	// background (consuming memory bandwidth but adding no latency to the
	// demand load). Off by default; the prefetch ablation turns it on.
	NextLinePrefetch bool
}

// DefaultHierarchyConfig mirrors the paper's Table II: 256 KiB 8-way private
// L2s, a 4 MiB 16-way shared L3 at a fixed uncore frequency, and DDR3-like
// memory.
func DefaultHierarchyConfig(cores int) HierarchyConfig {
	return HierarchyConfig{
		Cores:     cores,
		L2:        CacheConfig{SizeBytes: 256 << 10, Ways: 8},
		L3:        CacheConfig{SizeBytes: 4 << 20, Ways: 16},
		L3Latency: units.Time(26667), // 40 cycles @ 1.5 GHz uncore
		DRAM:      DefaultDRAMConfig(),
	}
}

// Result reports where an access hit and, for non-scaling levels (L3 and
// DRAM), the wall-clock completion time. For LevelL2 the caller applies its
// own frequency-scaled latency and Done equals the request time.
type Result struct {
	Level Level
	Done  units.Time
}

// Hierarchy ties per-core L2s, the shared L3, and DRAM together.
type Hierarchy struct {
	cfg  HierarchyConfig
	l2   []*Cache
	l3   *Cache
	dram *DRAM

	// Prefetches counts issued next-line prefetches.
	Prefetches uint64
}

// NewHierarchy builds the hierarchy for cfg.Cores cores.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if cfg.Cores <= 0 {
		panic("mem: hierarchy needs at least one core")
	}
	h := &Hierarchy{
		cfg:  cfg,
		l2:   make([]*Cache, cfg.Cores),
		l3:   NewCache(cfg.L3),
		dram: NewDRAM(cfg.DRAM),
	}
	for i := range h.l2 {
		h.l2[i] = NewCache(cfg.L2)
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// SetMetrics attaches a per-run observability registry to the memory
// system (currently the DRAM device; nil disables).
func (h *Hierarchy) SetMetrics(reg *metrics.Registry) { h.dram.SetMetrics(reg) }

// DRAM exposes the memory model (stats, bandwidth) to callers.
func (h *Hierarchy) DRAM() *DRAM { return h.dram }

// L2 returns core's private L2, for statistics and tests.
func (h *Hierarchy) L2(core int) *Cache { return h.l2[core] }

// L3 returns the shared cache, for statistics and tests.
func (h *Hierarchy) L3() *Cache { return h.l3 }

// Load services a demand load that missed the core's L1 at time now.
func (h *Hierarchy) Load(now units.Time, core int, addr Addr) Result {
	return h.access(now, core, addr, false)
}

// Store services a store draining from the core's store queue at time now.
// Caches are write-allocate, so a store miss fetches the line like a load.
func (h *Hierarchy) Store(now units.Time, core int, addr Addr) Result {
	return h.access(now, core, addr, true)
}

func (h *Hierarchy) access(now units.Time, core int, addr Addr, write bool) Result {
	addr = addr.Line()
	l2res := h.l2[core].Access(addr, write)
	if l2res.Hit {
		return Result{Level: LevelL2, Done: now}
	}
	// L2 victim writebacks land in the L3 (tag allocation, off the
	// critical path).
	if l2res.WritebackValid {
		h.fillL3(now, l2res.WritebackAddr, true)
	}

	if h.cfg.NextLinePrefetch && !write {
		h.prefetch(now, core, addr+LineSize)
	}

	// Miss in L2: look up the shared L3. The lookup costs the fixed
	// uncore latency whether it hits or continues to memory.
	l3res := h.l3.Access(addr, false)
	if l3res.WritebackValid {
		// Dirty L3 victim: schedule the memory write; it consumes bank
		// and bus time but no one waits for it.
		h.dram.Access(now+h.cfg.L3Latency, l3res.WritebackAddr, true)
	}
	if l3res.Hit {
		return Result{Level: LevelL3, Done: now + h.cfg.L3Latency}
	}
	done, _ := h.dram.Access(now+h.cfg.L3Latency, addr, write)
	return Result{Level: LevelDRAM, Done: done}
}

// prefetch pulls the line at addr into core's L2 off the critical path:
// tags are updated immediately and any memory traffic only consumes
// bandwidth. Useless prefetches still pollute the L2, as in hardware.
func (h *Hierarchy) prefetch(now units.Time, core int, addr Addr) {
	addr = addr.Line()
	if h.l2[core].Probe(addr) {
		return
	}
	res := h.l2[core].Access(addr, false)
	if res.WritebackValid {
		h.fillL3(now, res.WritebackAddr, true)
	}
	l3res := h.l3.Access(addr, false)
	if l3res.WritebackValid {
		h.dram.Access(now+h.cfg.L3Latency, l3res.WritebackAddr, true)
	}
	if !l3res.Hit {
		h.dram.Access(now+h.cfg.L3Latency, addr, false)
	}
	h.Prefetches++
}

func (h *Hierarchy) fillL3(now units.Time, addr Addr, dirty bool) {
	res := h.l3.Access(addr, dirty)
	if res.WritebackValid {
		h.dram.Access(now, res.WritebackAddr, true)
	}
}

// InvalidateRange drops every line in [base, base+size) from all caches.
// The garbage collector uses this when recycling an address range (e.g. the
// nursery after a collection): a fresh allocation must not hit stale lines.
func (h *Hierarchy) InvalidateRange(base Addr, size int64) {
	for _, c := range h.l2 {
		c.InvalidateRange(base, size)
	}
	h.l3.InvalidateRange(base, size)
}

// InstallRange primes every line in [base, base+size) into the shared L3
// as present and dirty, without timing, statistics, or writeback traffic.
// Sampled simulation uses it when fast-forwarding a zero-init burst: the
// stores' cache-state effect is applied cheaply so a later detailed
// collection reads survivors from cache rather than from a DRAM the
// detailed run would never have touched.
func (h *Hierarchy) InstallRange(base Addr, size int64) {
	h.l3.InstallRange(base, size)
}
