package mem

import "depburst/internal/units"

// calendar is a time-bucketed capacity reservation ledger for a resource
// with unit service rate (a DRAM bank or the data bus). Each bucket of
// width `width` can hold `width` of busy time.
//
// Unlike a simple "next free time" model, a calendar tolerates requests
// arriving slightly out of time order, which happens because each core
// simulates its current block ahead of the global event clock: a request
// that arrives "in the past" reserves leftover capacity in past buckets
// instead of queueing behind logically later work.
//
// The ring is a single slice of slots (busy time + absolute bucket number
// side by side) so the reserve hot path touches one cache line per probe
// and the whole ledger costs one allocation.
type calSlot struct {
	busy units.Time
	abs  int64 // absolute bucket number currently occupying this slot
}

type calendar struct {
	width units.Time
	mask  int64
	slots []calSlot
}

func newCalendar(width units.Time, buckets int) *calendar {
	if width <= 0 || buckets <= 0 || buckets&(buckets-1) != 0 {
		panic("mem: calendar needs positive width and power-of-two buckets")
	}
	c := &calendar{
		width: width,
		mask:  int64(buckets - 1),
		slots: make([]calSlot, buckets),
	}
	c.reset()
	return c
}

// reset clears all bookings in place, so DRAM.Reset reuses the ring instead
// of reallocating it.
func (c *calendar) reset() {
	for i := range c.slots {
		c.slots[i] = calSlot{abs: -1}
	}
}

// slot maps absolute bucket b into the ring, lazily recycling stale
// entries. It reports whether the bucket is usable (false when the slot is
// held by a later bucket, i.e. the request is older than the ring horizon).
func (c *calendar) slot(b int64) (*calSlot, bool) {
	s := &c.slots[b&c.mask]
	switch {
	case s.abs == b:
		return s, true
	case s.abs < b:
		s.abs = b
		s.busy = 0
		return s, true
	default:
		return s, false
	}
}

// reserve books dur of capacity at the earliest time >= t and returns the
// service start time. The booking spills into later buckets when the first
// one cannot hold all of dur, modelling FIFO backpressure: under saturation
// successive reservations start one service time apart.
func (c *calendar) reserve(t units.Time, dur units.Time) units.Time {
	if dur <= 0 {
		return t
	}
	if t < 0 {
		t = 0
	}
	b := int64(t / c.width)
	// Find the first bucket with any free capacity.
	var start units.Time
	for {
		s, ok := c.slot(b)
		if !ok || s.busy >= c.width {
			b++
			continue
		}
		start = units.Time(b)*c.width + s.busy
		if start < t {
			// The bucket containing t has spare capacity; the
			// request starts no earlier than its own arrival. The
			// capacity before t stays available for requests that
			// arrive with earlier timestamps (cross-core skew).
			start = t
		}
		break
	}
	// Consume dur from bucket b onwards.
	rem := dur
	for rem > 0 {
		s, ok := c.slot(b)
		if !ok {
			b++
			continue
		}
		free := c.width - s.busy
		if free <= 0 {
			b++
			continue
		}
		take := rem
		if take > free {
			take = free
		}
		s.busy += take
		rem -= take
		if rem > 0 {
			b++
		}
	}
	return start
}

// utilization reports the mean busy fraction across currently tracked
// buckets (diagnostics and tests).
func (c *calendar) utilization() float64 {
	var busy units.Time
	for i := range c.slots {
		busy += c.slots[i].busy
	}
	return float64(busy) / (float64(c.width) * float64(len(c.slots)))
}
