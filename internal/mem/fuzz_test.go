package mem

import (
	"testing"

	"depburst/internal/units"
)

// FuzzCalendarReserve checks the reservation calendar's invariants under
// arbitrary interleavings of arrival times and durations: a reservation
// never starts before its arrival, and repeated identical calls are
// monotone (FIFO backpressure).
func FuzzCalendarReserve(f *testing.F) {
	f.Add(uint64(0), uint32(100), uint8(4))
	f.Add(uint64(1e9), uint32(41), uint8(16))
	f.Add(uint64(1<<40), uint32(2500), uint8(1))
	f.Fuzz(func(t *testing.T, atRaw uint64, durRaw uint32, n uint8) {
		c := newCalendar(250*units.Nanosecond, 256)
		at := units.Time(atRaw % (1 << 42))
		dur := units.Time(durRaw%50_000) + 1
		var prev units.Time = -1
		for i := 0; i < int(n%32)+1; i++ {
			start := c.reserve(at, dur)
			if start < at {
				t.Fatalf("reservation %d started at %v before arrival %v", i, start, at)
			}
			if start < prev {
				t.Fatalf("same-arrival reservations regressed: %v after %v", start, prev)
			}
			prev = start
		}
	})
}

// FuzzCacheAccess checks that no access pattern can corrupt cache
// bookkeeping: stats always balance and occupancy stays within capacity.
func FuzzCacheAccess(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 255, 128})
	f.Add([]byte{7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, pattern []byte) {
		if len(pattern) == 0 {
			return
		}
		c := NewCache(CacheConfig{SizeBytes: 1 << 10, Ways: 2})
		var accesses uint64
		for i, b := range pattern {
			addr := Addr(b) * 64 * 3
			c.Access(addr, i%3 == 0)
			accesses++
			if i%5 == 0 {
				c.Invalidate(addr)
			}
		}
		if c.Hits+c.Misses != accesses {
			t.Fatalf("stats unbalanced: %d+%d != %d", c.Hits, c.Misses, accesses)
		}
		if c.Occupancy() > c.Config().Sets()*c.Config().Ways {
			t.Fatal("occupancy exceeds capacity")
		}
	})
}

// FuzzDRAMAccess checks that arbitrary access streams never produce
// non-causal completions.
func FuzzDRAMAccess(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{0, 1, 0})
	f.Fuzz(func(t *testing.T, addrs, kinds []byte) {
		d := NewDRAM(DefaultDRAMConfig())
		now := units.Time(0)
		for i, a := range addrs {
			write := i < len(kinds) && kinds[i]%2 == 1
			done, _ := d.Access(now, Addr(a)*64*17, write)
			if done < now {
				t.Fatalf("completion %v before request %v", done, now)
			}
			now += units.Time(a) * 100
		}
	})
}
