package mem

import (
	"testing"

	"depburst/internal/rng"
	"depburst/internal/units"
)

func TestCalendarIdleStartsImmediately(t *testing.T) {
	c := newCalendar(250*units.Nanosecond, 16)
	if got := c.reserve(1000, 100); got != 1000 {
		t.Errorf("idle reservation started at %v, want 1000", got)
	}
}

func TestCalendarSaturationRate(t *testing.T) {
	// Back-to-back reservations at the same instant must serialise at the
	// service rate: the k-th starts about k*dur later.
	c := newCalendar(250*units.Nanosecond, 64)
	const dur = 50 * units.Nanosecond
	var prev units.Time = -1
	for k := 0; k < 40; k++ {
		start := c.reserve(0, dur)
		if start < prev {
			t.Fatalf("reservation %d started at %v, before previous %v", k, start, prev)
		}
		prev = start
	}
	// 40 x 50ns = 2000ns of work; the last start must be near 1950ns.
	if prev < 1800*units.Nanosecond || prev > 2200*units.Nanosecond {
		t.Errorf("40th reservation started at %v, want ~1950ns", prev)
	}
}

func TestCalendarOutOfOrderArrivals(t *testing.T) {
	// A request arriving "in the past" relative to an earlier reservation
	// uses leftover capacity instead of queueing behind the future one.
	c := newCalendar(250*units.Nanosecond, 64)
	c.reserve(10_000_000, 100) // 10 µs, placed by a core running ahead
	start := c.reserve(1_000_000, 100)
	if start >= 10_000_000 {
		t.Errorf("past request queued behind future one: start %v", start)
	}
	if start < 1_000_000 {
		t.Errorf("reservation started before its arrival: %v", start)
	}
}

func TestCalendarZeroDuration(t *testing.T) {
	c := newCalendar(250*units.Nanosecond, 16)
	if got := c.reserve(500, 0); got != 500 {
		t.Errorf("zero-duration reservation start %v", got)
	}
}

func TestCalendarNegativeTimeClamped(t *testing.T) {
	c := newCalendar(250*units.Nanosecond, 16)
	if got := c.reserve(-100, 10); got < 0 {
		t.Errorf("negative-time reservation start %v", got)
	}
}

func TestCalendarThroughputConservation(t *testing.T) {
	// Property: N reservations of duration d, at random arrival times
	// within a window, all fit; total consumed capacity equals N*d and
	// the utilization reflects it.
	c := newCalendar(250*units.Nanosecond, 256)
	r := rng.New(21)
	const n = 200
	const dur = 25 * units.Nanosecond
	for i := 0; i < n; i++ {
		at := units.Time(r.Int63n(int64(20 * units.Microsecond)))
		start := c.reserve(at, dur)
		if start < at {
			t.Fatalf("start %v before arrival %v", start, at)
		}
	}
	wantBusy := float64(n*dur) / (250e3 * 256) // ps busy over ring capacity
	if u := c.utilization(); u < wantBusy*0.99 || u > wantBusy*1.01 {
		t.Errorf("utilization %v, want ~%v", u, wantBusy)
	}
}

func TestCalendarBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("newCalendar with non-power-of-two buckets did not panic")
		}
	}()
	newCalendar(100, 7)
}
