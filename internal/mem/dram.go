package mem

import (
	"depburst/internal/metrics"
	"depburst/internal/units"
)

// DRAMConfig holds the timing and geometry parameters of the memory device
// and controller. All latencies are wall-clock values: DRAM does not scale
// with the core frequency, which is precisely why memory time forms the
// non-scaling component of execution time.
type DRAMConfig struct {
	Banks    int        // number of banks (power of two)
	RowBytes int        // row-buffer ("page") size per bank
	TRCD     units.Time // activate-to-column delay
	TCAS     units.Time // column access (row-hit) latency
	TRP      units.Time // precharge latency
	TBurst   units.Time // data-bus occupancy per line transfer (reads)
	// TWriteBurst is the effective per-line drain occupancy for buffered
	// writes. FR-FCFS gives reads priority, so writes see only the bus
	// gaps — roughly half the raw bandwidth.
	TWriteBurst units.Time
	TController units.Time // fixed controller + on-chip network overhead
}

// DefaultDRAMConfig returns dual-channel DDR3-1600-like parameters: ~14 ns
// core DRAM timings, 64-byte transfers at ~25.6 GB/s aggregate (2.5 ns per
// line), 16 banks with 2 KiB rows — the Haswell i7-4770K's memory system.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		Banks:       16,
		RowBytes:    2048,
		TRCD:        units.Time(13750), // 13.75 ns
		TCAS:        units.Time(13750),
		TRP:         units.Time(13750),
		TBurst:      units.Time(2500), // 2.5 ns per 64B line, dual channel
		TWriteBurst: units.Time(5000), // writes drain in read gaps
		TController: units.Time(10000),
	}
}

type bank struct {
	openRow uint64
	rowOpen bool
	cal     *calendar
}

// Calendar geometry: 250 ns buckets over a 64 µs ring, comfortably larger
// than the maximum cross-core simulation skew (one compute block).
const (
	calBucket  = 250 * units.Nanosecond
	calBuckets = 256
)

// DRAM models a single-channel memory with per-bank row buffers and an
// open-page policy. Requests are serviced in arrival order with per-bank
// and data-bus "next free" bookkeeping, which makes queueing delay and bank
// conflicts emerge naturally: a burst of requests to the same bank serialise,
// requests to distinct banks overlap up to the data-bus bandwidth.
type DRAM struct {
	cfg      DRAMConfig
	banks    []bank
	bus      *calendar // demand reads
	wbus     *calendar // buffered writes
	bankMask uint64

	// reg, when non-nil, receives per-access latency observations. The
	// nil fast path costs one branch (guarded by TestDRAMAccessZeroAllocs).
	reg *metrics.Registry

	// Stats
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64 // closed-row activations
	Conflicts uint64 // row-buffer conflicts (precharge needed)
	BusyTime  units.Time
	totalLat  units.Time
}

// NewDRAM builds a DRAM model from cfg. It panics if Banks is not a power
// of two.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if cfg.Banks <= 0 || cfg.Banks&(cfg.Banks-1) != 0 {
		panic("mem: DRAM bank count must be a power of two")
	}
	d := &DRAM{
		cfg:      cfg,
		banks:    make([]bank, cfg.Banks),
		bus:      newCalendar(calBucket, calBuckets),
		wbus:     newCalendar(calBucket, calBuckets),
		bankMask: uint64(cfg.Banks - 1),
	}
	for i := range d.banks {
		d.banks[i].cal = newCalendar(calBucket, calBuckets)
	}
	return d
}

// Config returns the DRAM parameters.
func (d *DRAM) Config() DRAMConfig { return d.cfg }

// SetMetrics attaches a per-run observability registry (nil disables).
func (d *DRAM) SetMetrics(reg *metrics.Registry) { d.reg = reg }

func (d *DRAM) bankOf(a Addr) (idx int, row uint64) {
	line := uint64(a) / LineSize
	// Interleave consecutive lines across banks, rows above that.
	idx = int(line & d.bankMask)
	row = line / uint64(d.cfg.Banks) / (uint64(d.cfg.RowBytes) / LineSize)
	return idx, row
}

// AccessKind classifies a DRAM access outcome for statistics and tests.
type AccessKind int

// Access outcomes.
const (
	RowHit AccessKind = iota
	RowMiss
	RowConflict
)

// Access services one line read or write arriving at time now and returns
// the completion time (now + latency) and the row-buffer outcome. The model
// mutates bank and bus state, so the order of calls matters; callers must
// present requests in approximately non-decreasing time order.
func (d *DRAM) Access(now units.Time, addr Addr, write bool) (done units.Time, kind AccessKind) {
	if write {
		d.Writes++
	} else {
		d.Reads++
	}
	idx, row := d.bankOf(addr)
	b := &d.banks[idx]

	arrive := now + d.cfg.TController

	if write {
		// Writes land in the controller's write buffer and drain at
		// bus bandwidth. An FR-FCFS scheduler prioritises demand reads
		// and drains writes in the gaps, so buffered writes neither
		// occupy banks nor delay reads; they are tracked on their own
		// drain calendar. The returned completion is when the line has
		// left the write buffer, which is what store-queue retirement
		// waits for.
		wb := d.cfg.TWriteBurst
		if wb <= 0 {
			wb = d.cfg.TBurst
		}
		busStart := d.wbus.reserve(arrive, wb)
		done = busStart + wb
		d.BusyTime += wb
		d.totalLat += done - now
		d.RowHits++ // buffered writes behave like row hits for stats
		d.reg.ObserveDRAM(true, done-now, false)
		return done, RowHit
	}

	var access units.Time
	switch {
	case b.rowOpen && b.openRow == row:
		kind = RowHit
		d.RowHits++
		access = d.cfg.TCAS
	case !b.rowOpen:
		kind = RowMiss
		d.RowMisses++
		access = d.cfg.TRCD + d.cfg.TCAS
	default:
		kind = RowConflict
		d.Conflicts++
		access = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
	}
	b.rowOpen = true
	b.openRow = row

	// Book the bank for the row/column access, then the shared data bus
	// for the line transfer. Queueing emerges when the calendars fill.
	bankStart := b.cal.reserve(arrive, access)
	dataReady := bankStart + access
	busStart := d.bus.reserve(dataReady, d.cfg.TBurst)
	done = busStart + d.cfg.TBurst

	d.BusyTime += d.cfg.TBurst
	d.totalLat += done - now
	d.reg.ObserveDRAM(false, done-now, kind == RowConflict)
	return done, kind
}

// AvgLatency reports the mean request latency so far.
func (d *DRAM) AvgLatency() units.Time {
	n := d.Reads + d.Writes
	if n == 0 {
		return 0
	}
	return d.totalLat / units.Time(n)
}

// PeakBandwidth returns bytes per second deliverable by the data bus.
func (d *DRAM) PeakBandwidth() float64 {
	return float64(LineSize) / d.cfg.TBurst.Seconds()
}

// BusUtilization reports the data bus's recent busy fraction.
func (d *DRAM) BusUtilization() float64 { return d.bus.utilization() }

// Reset clears bank state and statistics, keeping the configuration. The
// reservation calendars are cleared in place rather than reallocated.
func (d *DRAM) Reset() {
	for i := range d.banks {
		d.banks[i].rowOpen = false
		d.banks[i].openRow = 0
		d.banks[i].cal.reset()
	}
	d.bus.reset()
	d.wbus.reset()
	d.Reads, d.Writes = 0, 0
	d.RowHits, d.RowMisses, d.Conflicts = 0, 0, 0
	d.BusyTime, d.totalLat = 0, 0
}
