package mem

import (
	"testing"
	"testing/quick"

	"depburst/internal/rng"
)

func smallCache() *Cache {
	// 4 sets x 2 ways x 64B = 512B.
	return NewCache(CacheConfig{SizeBytes: 512, Ways: 2})
}

func TestCacheHitMiss(t *testing.T) {
	c := smallCache()
	if res := c.Access(0x1000, false); res.Hit {
		t.Error("cold access hit")
	}
	if res := c.Access(0x1000, false); !res.Hit {
		t.Error("second access missed")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheSameLineDifferentOffsets(t *testing.T) {
	c := smallCache()
	c.Access(0x1000, false)
	if res := c.Access(0x1000+63, false); !res.Hit {
		t.Error("access within same line missed")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache()
	// Three addresses mapping to set 0: the same-set stride is
	// sets*LineSize = 256 bytes in this 4-set cache.
	a1 := Addr(256)
	a2 := Addr(512)
	c.Access(0, false)  // set0 way0
	c.Access(a1, false) // set0 way1
	c.Access(0, false)  // touch 0: now a1 is LRU
	c.Access(a2, false) // evicts a1
	if !c.Probe(0) {
		t.Error("recently used line evicted")
	}
	if c.Probe(a1) {
		t.Error("LRU line not evicted")
	}
	if !c.Probe(a2) {
		t.Error("new line not present")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := smallCache()
	c.Access(0, true) // dirty
	c.Access(256, false)
	res := c.Access(512, false) // evicts line 0 (LRU, dirty)
	if !res.WritebackValid {
		t.Fatal("no writeback for dirty victim")
	}
	if res.WritebackAddr != 0 {
		t.Errorf("writeback addr %x, want 0", res.WritebackAddr)
	}
	// Clean eviction produces no writeback.
	res = c.Access(768, false) // evicts 256, clean
	if res.WritebackValid {
		t.Error("clean victim wrote back")
	}
}

func TestCacheWritebackAddrSameSet(t *testing.T) {
	// Property: a writeback address always maps to the set it was evicted
	// from (address reconstruction correctness).
	cfg := CacheConfig{SizeBytes: 8 << 10, Ways: 4}
	c := NewCache(cfg)
	r := rng.New(3)
	for i := 0; i < 10_000; i++ {
		addr := Addr(r.Int63n(1 << 30)).Line()
		res := c.Access(addr, r.Bool(0.5))
		if res.WritebackValid {
			if c.setIndex(res.WritebackAddr) != c.setIndex(addr) {
				t.Fatalf("writeback %x maps to set %d, expected %d",
					res.WritebackAddr, c.setIndex(res.WritebackAddr), c.setIndex(addr))
			}
		}
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := smallCache()
	c.Access(0x40, true)
	present, dirty := c.Invalidate(0x40)
	if !present || !dirty {
		t.Errorf("invalidate: present=%v dirty=%v", present, dirty)
	}
	if c.Probe(0x40) {
		t.Error("line still present after invalidate")
	}
	present, _ = c.Invalidate(0x40)
	if present {
		t.Error("double invalidate reported present")
	}
}

func TestCacheFlush(t *testing.T) {
	c := smallCache()
	c.Access(0, true)
	c.Access(256, false)
	if dirty := c.Flush(); dirty != 1 {
		t.Errorf("flush dirty=%d, want 1", dirty)
	}
	if c.Occupancy() != 0 {
		t.Errorf("occupancy after flush = %d", c.Occupancy())
	}
}

func TestCacheProbeNoSideEffects(t *testing.T) {
	c := smallCache()
	c.Access(0, false)
	h, m := c.Hits, c.Misses
	c.Probe(0)
	c.Probe(0x10000)
	if c.Hits != h || c.Misses != m {
		t.Error("Probe mutated statistics")
	}
}

func TestCacheOccupancyBounded(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		c := NewCache(CacheConfig{SizeBytes: 2 << 10, Ways: 4})
		r := rng.New(seed)
		for i := 0; i < 500; i++ {
			c.Access(Addr(r.Int63n(1<<20)).Line(), r.Bool(0.3))
		}
		max := c.Config().Sets() * c.Config().Ways
		return c.Occupancy() <= max
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestCacheStatsConservation(t *testing.T) {
	// Property: hits + misses == accesses; evictions <= misses.
	c := NewCache(CacheConfig{SizeBytes: 1 << 10, Ways: 2})
	r := rng.New(9)
	const n = 5000
	for i := 0; i < n; i++ {
		c.Access(Addr(r.Int63n(1<<16)).Line(), false)
	}
	if c.Hits+c.Misses != n {
		t.Errorf("hits+misses = %d, want %d", c.Hits+c.Misses, n)
	}
	if c.Evictions > c.Misses {
		t.Errorf("evictions %d > misses %d", c.Evictions, c.Misses)
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	for _, cfg := range []CacheConfig{
		{SizeBytes: 0, Ways: 2},
		{SizeBytes: 512, Ways: 0},
		{SizeBytes: 3 * 64 * 2, Ways: 2}, // 3 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache(%+v) did not panic", cfg)
				}
			}()
			NewCache(cfg)
		}()
	}
}

func TestAddrLine(t *testing.T) {
	if Addr(130).Line() != 128 {
		t.Errorf("Line(130) = %d", Addr(130).Line())
	}
	if Addr(128).Line() != 128 {
		t.Errorf("Line(128) = %d", Addr(128).Line())
	}
}
