package mem

import (
	"testing"

	"depburst/internal/metrics"
	"depburst/internal/rng"
	"depburst/internal/units"
)

// BenchmarkCalendarReserve measures the reservation ledger's hot path: one
// capacity booking at a steadily advancing arrival time.
func BenchmarkCalendarReserve(b *testing.B) {
	c := newCalendar(250*units.Nanosecond, 256)
	b.ReportAllocs()
	now := units.Time(0)
	for i := 0; i < b.N; i++ {
		c.reserve(now, 25*units.Nanosecond)
		now += 30 * units.Nanosecond
	}
}

// BenchmarkCalendarReserveSaturated books more capacity than the resource
// has, forcing the spill-to-later-buckets path.
func BenchmarkCalendarReserveSaturated(b *testing.B) {
	c := newCalendar(250*units.Nanosecond, 256)
	b.ReportAllocs()
	now := units.Time(0)
	for i := 0; i < b.N; i++ {
		c.reserve(now, 40*units.Nanosecond)
		now += 20 * units.Nanosecond // arrival rate 2x service rate
		if i&1023 == 1023 {
			c.reset() // bound the backlog the scan has to walk
			now = 0
		}
	}
}

// BenchmarkDRAMReset measures run-to-run reuse of the device model (the
// calendar rings are cleared in place, not reallocated).
func BenchmarkDRAMReset(b *testing.B) {
	d := NewDRAM(DefaultDRAMConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Reset()
	}
}

// BenchmarkCacheAccessHit measures the flattened lookup path on a
// cache-resident working set (the L2 steady state: mostly hits).
func BenchmarkCacheAccessHit(b *testing.B) {
	c := NewCache(CacheConfig{SizeBytes: 256 << 10, Ways: 8})
	const lines = 1024 // 64 KiB working set, fits easily
	for i := 0; i < lines; i++ {
		c.Access(Addr(i*LineSize), false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(Addr((i%lines)*LineSize), i&7 == 0)
	}
}

// BenchmarkCacheAccessMiss streams far beyond the capacity, exercising the
// victim scan, eviction and dirty-writeback reconstruction every access.
func BenchmarkCacheAccessMiss(b *testing.B) {
	c := NewCache(CacheConfig{SizeBytes: 256 << 10, Ways: 8})
	r := rng.New(5)
	addrs := make([]Addr, 8192)
	for i := range addrs {
		addrs[i] = Addr(r.Int63n(1 << 34)).Line()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&8191], i&3 == 0)
	}
}

// TestCacheAccessZeroAllocs locks the flattened Access path — lookup,
// victim choice, writeback reconstruction — at zero heap allocations.
func TestCacheAccessZeroAllocs(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 8 << 10, Ways: 4})
	r := rng.New(7)
	addrs := make([]Addr, 1024)
	for i := range addrs {
		addrs[i] = Addr(r.Int63n(1 << 30)).Line()
	}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		c.Access(addrs[i&1023], i&3 == 0)
		i++
	})
	if avg != 0 {
		t.Errorf("Cache.Access allocates %.2f objects/op, want 0", avg)
	}
}

// TestCalendarReserveZeroAllocs locks the reservation path at zero heap
// allocations per booking.
func TestCalendarReserveZeroAllocs(t *testing.T) {
	c := newCalendar(250*units.Nanosecond, 256)
	now := units.Time(0)
	avg := testing.AllocsPerRun(1000, func() {
		c.reserve(now, 25*units.Nanosecond)
		now += 30 * units.Nanosecond
	})
	if avg != 0 {
		t.Errorf("calendar.reserve allocates %.2f objects/op, want 0", avg)
	}
}

// TestDRAMAccessZeroAllocs locks the whole device access path (bank lookup,
// row-buffer state, bank + bus reservations) at zero allocations.
func TestDRAMAccessZeroAllocs(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	r := rng.New(7)
	addrs := make([]Addr, 1024)
	for i := range addrs {
		addrs[i] = Addr(r.Int63n(1 << 30)).Line()
	}
	now := units.Time(0)
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		d.Access(now, addrs[i&1023], i&3 == 0)
		now += 20 * units.Nanosecond
		i++
	})
	if avg != 0 {
		t.Errorf("DRAM.Access allocates %.2f objects/op, want 0", avg)
	}
}

// TestDRAMAccessZeroAllocsWithMetrics re-runs the access-path guard with an
// observability registry attached: the per-access latency observation
// (histogram bucket + counters) must also be allocation-free, so enabling
// metrics never changes the hot path's allocation profile.
func TestDRAMAccessZeroAllocsWithMetrics(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	reg := metrics.NewRegistry()
	d.SetMetrics(reg)
	r := rng.New(7)
	addrs := make([]Addr, 1024)
	for i := range addrs {
		addrs[i] = Addr(r.Int63n(1 << 30)).Line()
	}
	now := units.Time(0)
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		d.Access(now, addrs[i&1023], i&3 == 0)
		now += 20 * units.Nanosecond
		i++
	})
	if avg != 0 {
		t.Errorf("DRAM.Access with metrics allocates %.2f objects/op, want 0", avg)
	}
	if n := reg.Counts(); n.DRAMReads == 0 || n.DRAMWrites == 0 {
		t.Errorf("registry observed nothing: %+v", n)
	}
}

// TestDRAMResetZeroAllocs locks in the in-place calendar reset.
func TestDRAMResetZeroAllocs(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	avg := testing.AllocsPerRun(100, func() { d.Reset() })
	if avg != 0 {
		t.Errorf("DRAM.Reset allocates %.2f objects/op, want 0", avg)
	}
}

// TestDRAMResetClearsState: behaviour after Reset must match a fresh device.
func TestDRAMResetClearsState(t *testing.T) {
	cfg := DefaultDRAMConfig()
	a, b := NewDRAM(cfg), NewDRAM(cfg)
	r := rng.New(9)
	for i := 0; i < 500; i++ {
		at := units.Time(i) * 15 * units.Nanosecond
		a.Access(at, Addr(r.Int63n(1<<30)).Line(), i&5 == 0)
	}
	a.Reset()
	r2 := rng.New(11)
	for i := 0; i < 200; i++ {
		at := units.Time(i) * 25 * units.Nanosecond
		addr := Addr(r2.Int63n(1 << 30)).Line()
		da, ka := a.Access(at, addr, i&3 == 0)
		db, kb := b.Access(at, addr, i&3 == 0)
		if da != db || ka != kb {
			t.Fatalf("access %d diverges after Reset: (%v,%v) vs fresh (%v,%v)", i, da, ka, db, kb)
		}
	}
	if a.Reads != b.Reads || a.Writes != b.Writes || a.totalLat != b.totalLat {
		t.Errorf("stats diverge after Reset: %+v vs %+v", a.Reads, b.Reads)
	}
}
