package mem

import (
	"testing"

	"depburst/internal/units"
)

func testDRAM() *DRAM {
	return NewDRAM(DefaultDRAMConfig())
}

func TestDRAMRowClassification(t *testing.T) {
	d := testDRAM()
	cfg := d.Config()
	rowSpan := Addr(cfg.RowBytes * cfg.Banks) // addresses this far apart share a bank, different row

	// First access to a bank: closed row.
	_, kind := d.Access(0, 0, false)
	if kind != RowMiss {
		t.Errorf("first access = %v, want RowMiss", kind)
	}
	// Same row (same line even): hit.
	_, kind = d.Access(1000, 0, false)
	if kind != RowHit {
		t.Errorf("same-row access = %v, want RowHit", kind)
	}
	// Same bank, different row: conflict.
	_, kind = d.Access(2000, rowSpan, false)
	if kind != RowConflict {
		t.Errorf("different-row access = %v, want RowConflict", kind)
	}
	if d.RowMisses != 1 || d.RowHits != 1 || d.Conflicts != 1 {
		t.Errorf("stats: %d/%d/%d", d.RowHits, d.RowMisses, d.Conflicts)
	}
}

func TestDRAMBankInterleave(t *testing.T) {
	d := testDRAM()
	b0, _ := d.bankOf(0)
	b1, _ := d.bankOf(LineSize)
	if b0 == b1 {
		t.Error("consecutive lines map to the same bank")
	}
	bN, _ := d.bankOf(Addr(LineSize * d.Config().Banks))
	if bN != b0 {
		t.Error("bank interleave does not wrap after Banks lines")
	}
}

func TestDRAMLatencyBounds(t *testing.T) {
	d := testDRAM()
	cfg := d.Config()
	done, _ := d.Access(0, 0, false)
	lat := done - 0
	min := cfg.TController + cfg.TRCD + cfg.TCAS + cfg.TBurst
	if lat != min {
		t.Errorf("uncontended closed-row latency %v, want %v", lat, min)
	}
}

func TestDRAMReadsUnaffectedByWrites(t *testing.T) {
	// A flood of buffered writes must not delay demand reads (FR-FCFS
	// read priority + write buffering).
	d := testDRAM()
	for i := 0; i < 2000; i++ {
		d.Access(0, Addr(i*LineSize), true)
	}
	done, _ := d.Access(0, 1<<20, false)
	dRef := testDRAM()
	doneRef, _ := dRef.Access(0, 1<<20, false)
	if done != doneRef {
		t.Errorf("read latency with write flood %v, without %v", done, doneRef)
	}
}

func TestDRAMWriteDrainBandwidthBound(t *testing.T) {
	// N simultaneous writes drain at one per TWriteBurst.
	d := testDRAM()
	const n = 400
	var last units.Time
	for i := 0; i < n; i++ {
		done, _ := d.Access(0, Addr(i*LineSize), true)
		if done > last {
			last = done
		}
	}
	want := units.Time(n) * d.Config().TWriteBurst
	if last < want || last > want+d.Config().TController+d.Config().TWriteBurst {
		t.Errorf("drain of %d writes finished at %v, want ~%v", n, last, want)
	}
}

func TestDRAMWriteBurstDefaultsToRead(t *testing.T) {
	cfg := DefaultDRAMConfig()
	cfg.TWriteBurst = 0
	d := NewDRAM(cfg)
	done, _ := d.Access(0, 0, true)
	if done != cfg.TController+cfg.TBurst {
		t.Errorf("zero TWriteBurst write latency %v", done)
	}
}

func TestDRAMQueueingUnderLoad(t *testing.T) {
	// Reads arriving faster than one bank can serve must queue.
	d := testDRAM()
	rowSpan := Addr(d.Config().RowBytes * d.Config().Banks)
	var worst units.Time
	for i := 0; i < 32; i++ {
		// Alternate rows in the same bank at the same instant: every
		// access is a conflict and they serialise.
		done, _ := d.Access(0, Addr(i%2)*rowSpan, false)
		if done > worst {
			worst = done
		}
	}
	conflictCost := d.Config().TRP + d.Config().TRCD + d.Config().TCAS
	if worst < 20*conflictCost {
		t.Errorf("32 same-bank conflicting reads finished at %v, want serialised >= %v",
			worst, 20*conflictCost)
	}
}

func TestDRAMAvgLatencyAndReset(t *testing.T) {
	d := testDRAM()
	if d.AvgLatency() != 0 {
		t.Error("avg latency nonzero with no accesses")
	}
	d.Access(0, 0, false)
	d.Access(0, LineSize, true)
	if d.AvgLatency() <= 0 {
		t.Error("avg latency not positive")
	}
	d.Reset()
	if d.Reads != 0 || d.Writes != 0 || d.AvgLatency() != 0 {
		t.Error("Reset did not clear stats")
	}
	_, kind := d.Access(0, 0, false)
	if kind != RowMiss {
		t.Error("Reset did not close rows")
	}
}

func TestDRAMPeakBandwidth(t *testing.T) {
	d := testDRAM()
	want := float64(LineSize) / d.Config().TBurst.Seconds()
	if got := d.PeakBandwidth(); got != want {
		t.Errorf("peak bandwidth %v, want %v", got, want)
	}
}

func TestDRAMBadBanksPanics(t *testing.T) {
	cfg := DefaultDRAMConfig()
	cfg.Banks = 6
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two banks did not panic")
		}
	}()
	NewDRAM(cfg)
}
