package mem

import (
	"testing"

	"depburst/internal/units"
)

func testHier() *Hierarchy {
	return NewHierarchy(DefaultHierarchyConfig(2))
}

func TestHierarchyLevels(t *testing.T) {
	h := testHier()
	// Cold: DRAM.
	res := h.Load(0, 0, 0x100000)
	if res.Level != LevelDRAM {
		t.Errorf("cold load level %v", res.Level)
	}
	if res.Done <= 0 {
		t.Errorf("DRAM done %v", res.Done)
	}
	// Warm in this core's L2.
	res = h.Load(res.Done, 0, 0x100000)
	if res.Level != LevelL2 {
		t.Errorf("second load level %v, want L2", res.Level)
	}
}

func TestHierarchyL2PrivateL3Shared(t *testing.T) {
	h := testHier()
	r1 := h.Load(0, 0, 0x200000)
	// Other core: misses its own L2 but hits the shared L3.
	res := h.Load(r1.Done, 1, 0x200000)
	if res.Level != LevelL3 {
		t.Errorf("cross-core load level %v, want L3", res.Level)
	}
	lat := res.Done - r1.Done
	if lat != h.Config().L3Latency {
		t.Errorf("L3 hit latency %v, want %v", lat, h.Config().L3Latency)
	}
}

func TestHierarchyL3LatencyIsWallClock(t *testing.T) {
	// The L3 latency must not depend on anything but the config (it is
	// the fixed uncore clock): two L3 hits at different times cost the
	// same.
	h := testHier()
	h.Load(0, 0, 0x300000)
	a := h.Load(1000000, 1, 0x300000)
	if a.Done-1000000 != h.Config().L3Latency {
		t.Errorf("L3 latency %v", a.Done-1000000)
	}
}

func TestHierarchyStoreAllocates(t *testing.T) {
	h := testHier()
	res := h.Store(0, 0, 0x400000)
	if res.Level != LevelDRAM {
		t.Errorf("cold store level %v", res.Level)
	}
	// The store allocated the line: a subsequent load hits L2.
	res2 := h.Load(res.Done, 0, 0x400000)
	if res2.Level != LevelL2 {
		t.Errorf("load after store level %v, want L2", res2.Level)
	}
}

func TestHierarchyInvalidateRange(t *testing.T) {
	h := testHier()
	base := Addr(0x500000)
	r := h.Load(0, 0, base)
	h.InvalidateRange(base, 4096)
	res := h.Load(r.Done, 0, base)
	if res.Level != LevelDRAM {
		t.Errorf("load after invalidate level %v, want DRAM", res.Level)
	}
}

func TestHierarchyWritebackPath(t *testing.T) {
	// Fill one L2 set with dirty lines and keep going: evicted dirty
	// lines must land in the L3 (hit there afterwards).
	h := testHier()
	l2 := h.Config().L2
	setStride := int64(l2.Sets() * LineSize)
	now := units.Time(0)
	addrs := make([]Addr, l2.Ways+2)
	for i := range addrs {
		addrs[i] = Addr(0x600000 + int64(i)*setStride)
		res := h.Store(now, 0, addrs[i])
		now = res.Done + 1
	}
	// The first address was evicted from L2; it must be an L3 hit now.
	res := h.Load(now, 0, addrs[0])
	if res.Level != LevelL3 {
		t.Errorf("evicted dirty line level %v, want L3", res.Level)
	}
}

func TestHierarchyDistinctCoreL2s(t *testing.T) {
	h := testHier()
	if h.L2(0) == h.L2(1) {
		t.Error("cores share an L2")
	}
	if h.L3() == nil || h.DRAM() == nil {
		t.Error("accessors returned nil")
	}
}

func TestHierarchyZeroCoresPanics(t *testing.T) {
	cfg := DefaultHierarchyConfig(0)
	defer func() {
		if recover() == nil {
			t.Error("zero cores did not panic")
		}
	}()
	NewHierarchy(cfg)
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{LevelL1: "L1", LevelL2: "L2", LevelL3: "L3", LevelDRAM: "DRAM", Level(9): "?"} {
		if l.String() != want {
			t.Errorf("Level(%d).String() = %q", l, l.String())
		}
	}
}

func TestNextLinePrefetch(t *testing.T) {
	cfg := DefaultHierarchyConfig(1)
	cfg.NextLinePrefetch = true
	h := NewHierarchy(cfg)

	// A demand miss on line X prefetches X+1: the next sequential load
	// must hit the L2.
	base := Addr(0x700000)
	r1 := h.Load(0, 0, base)
	if r1.Level != LevelDRAM {
		t.Fatalf("first load level %v", r1.Level)
	}
	if h.Prefetches == 0 {
		t.Fatal("no prefetch issued")
	}
	r2 := h.Load(r1.Done, 0, base+LineSize)
	if r2.Level != LevelL2 {
		t.Errorf("sequential load level %v, want L2 (prefetched)", r2.Level)
	}

	// Prefetching consumes DRAM bandwidth: reads counted.
	if h.DRAM().Reads < 2 {
		t.Errorf("prefetch did not reach DRAM: %d reads", h.DRAM().Reads)
	}
}

func TestPrefetchDisabledByDefault(t *testing.T) {
	h := testHier()
	r1 := h.Load(0, 0, 0x800000)
	r2 := h.Load(r1.Done, 0, 0x800000+LineSize)
	if r2.Level == LevelL2 {
		t.Error("next line present without prefetching")
	}
	if h.Prefetches != 0 {
		t.Error("prefetches issued while disabled")
	}
}
