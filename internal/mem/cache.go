// Package mem models the memory hierarchy: set-associative write-back
// caches (a private L2 per core and a shared L3) in front of a banked DRAM
// with open-page row buffers and bandwidth/queueing effects.
//
// The hierarchy is the source of the "non-scaling" execution-time component
// that DVFS predictors must separate out: its latencies are expressed in
// wall-clock picoseconds and do not change with the core frequency.
package mem

// LineSize is the cache line size in bytes, shared by every level.
const LineSize = 64

// lineShift is log2(LineSize), so addr>>lineShift is the line number.
const lineShift = 6

// Addr is a physical byte address.
type Addr uint64

// Line returns the cache-line-aligned address containing a.
func (a Addr) Line() Addr { return a &^ (LineSize - 1) }

// CacheConfig describes one cache level.
type CacheConfig struct {
	// SizeBytes is the total capacity. Must be a multiple of
	// LineSize*Ways.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
}

// Sets returns the number of sets implied by the configuration.
func (c CacheConfig) Sets() int { return c.SizeBytes / (LineSize * c.Ways) }

type cacheLine struct {
	tag   uint64
	valid bool
	dirty bool
	// lru is a per-set sequence number; higher = more recently used.
	lru uint64
}

// Cache is a set-associative write-back, write-allocate cache with true LRU
// replacement. It models tags only (no data), which is all timing needs.
//
// Lines are stored as one contiguous slice — set s occupies
// lines[s*ways : (s+1)*ways] — and address hashing is pure shift/mask, so
// Access touches a single cache-resident run of memory with no per-set
// slice header indirection and no integer division.
type Cache struct {
	cfg      CacheConfig
	lines    []cacheLine
	ways     int
	setMask  uint64
	setShift uint // log2(number of sets); tag = lineNumber >> setShift
	lruClock uint64

	// Stats
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// NewCache builds a cache from cfg. It panics on a degenerate geometry
// (non-power-of-two set count, or zero ways) because address hashing relies
// on power-of-two sets.
func NewCache(cfg CacheConfig) *Cache {
	sets := cfg.Sets()
	if cfg.Ways <= 0 || sets <= 0 || sets&(sets-1) != 0 {
		panic("mem: invalid cache geometry")
	}
	shift := uint(0)
	for 1<<shift != sets {
		shift++
	}
	return &Cache{
		cfg:      cfg,
		lines:    make([]cacheLine, sets*cfg.Ways),
		ways:     cfg.Ways,
		setMask:  uint64(sets - 1),
		setShift: shift,
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) setIndex(a Addr) uint64 {
	return (uint64(a) >> lineShift) & c.setMask
}

func (c *Cache) tag(a Addr) uint64 {
	return (uint64(a) >> lineShift) >> c.setShift
}

// set returns the ways of set si as a full-capacity sub-slice.
func (c *Cache) set(si uint64) []cacheLine {
	base := int(si) * c.ways
	return c.lines[base : base+c.ways : base+c.ways]
}

// AccessResult reports the outcome of a cache access.
type AccessResult struct {
	Hit bool
	// WritebackAddr is the address of a dirty line evicted to make room;
	// zero and WritebackValid=false when no dirty eviction occurred.
	WritebackAddr  Addr
	WritebackValid bool
}

// Access looks up addr, allocating the line on a miss (write-allocate).
// write marks the line dirty. The returned result says whether it hit and
// whether a dirty victim must be written back to the next level.
//
//depburst:hotpath
func (c *Cache) Access(addr Addr, write bool) AccessResult {
	si := c.setIndex(addr)
	set := c.set(si)
	tag := c.tag(addr)
	c.lruClock++

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.lruClock
			if write {
				set[i].dirty = true
			}
			c.Hits++
			return AccessResult{Hit: true}
		}
	}
	c.Misses++

	// Choose victim in one pass: the first invalid way if any, else the
	// least recently used (lowest-index on ties, matching true LRU with
	// the strictly-increasing lru clock).
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	var res AccessResult
	if set[victim].valid {
		c.Evictions++
		if set[victim].dirty {
			c.Writebacks++
			res.WritebackValid = true
			res.WritebackAddr = c.reconstruct(set[victim].tag, si)
		}
	}
	set[victim] = cacheLine{tag: tag, valid: true, dirty: write, lru: c.lruClock}
	return res
}

// Probe reports whether addr is present without touching LRU state or
// statistics.
func (c *Cache) Probe(addr Addr) bool {
	set := c.set(c.setIndex(addr))
	tag := c.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops addr from the cache if present, returning whether the
// dropped line was dirty.
func (c *Cache) Invalidate(addr Addr) (present, dirty bool) {
	set := c.set(c.setIndex(addr))
	tag := c.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			d := set[i].dirty
			set[i] = cacheLine{}
			return true, d
		}
	}
	return false, false
}

// InvalidateRange drops every line in [base, base+size) from the cache —
// identical in effect to calling Invalidate on each line address, but when
// the range spans more lines than the cache holds it walks the tag array
// instead of the address range, so the cost is O(min(range lines, cache
// lines)) rather than O(range lines). Recycling a multi-megabyte nursery
// against a few hundred kilobytes of cache is the case that matters.
func (c *Cache) InvalidateRange(base Addr, size int64) {
	if size <= 0 {
		return
	}
	lo := base.Line()
	hi := base + Addr(size)
	// A per-line probe scans a whole set (ways entries, usually without a
	// match); the tag-array walk touches every line entry exactly once.
	if int64(hi-lo)/LineSize*int64(c.ways) < int64(len(c.lines)) {
		for a := lo; a < hi; a += LineSize {
			c.Invalidate(a)
		}
		return
	}
	for i := range c.lines {
		ln := &c.lines[i]
		if !ln.valid {
			continue
		}
		if a := c.reconstruct(ln.tag, uint64(i/c.ways)); a >= lo && a < hi {
			*ln = cacheLine{}
		}
	}
}

// InstallRange primes every line in [base, base+size) as present, dirty and
// most-recently-used, without generating writebacks for replaced victims and
// without touching hit/miss statistics. It exists for sampled simulation's
// fast-forward path — bulk-priming freshly zero-initialised allocation
// ranges so a later detailed collection sees warm cache state — and must
// not be used on detailed timing paths.
//
// The victim way is a fixed hash of the line number rather than the LRU
// scan Access performs, making the install O(1) per line; refill bursts
// install megabytes at a time, so the scan would dominate the fast path it
// exists to serve. The caller must guarantee the lines are not already
// present (the range was recycled via InvalidateRange and not re-touched),
// or duplicate tags would result.
func (c *Cache) InstallRange(base Addr, size int64) {
	if size <= 0 {
		return
	}
	hi := base + Addr(size)
	for a := base.Line(); a < hi; a += LineSize {
		ln := uint64(a) >> lineShift
		tag := ln >> c.setShift
		c.lruClock++
		way := int(tag) % c.ways
		c.lines[int(ln&c.setMask)*c.ways+way] = cacheLine{tag: tag, valid: true, dirty: true, lru: c.lruClock}
	}
}

// Flush invalidates the entire cache, returning the number of dirty lines
// discarded.
func (c *Cache) Flush() (dirty int) {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			dirty++
		}
		c.lines[i] = cacheLine{}
	}
	return dirty
}

func (c *Cache) reconstruct(tag, setIdx uint64) Addr {
	return Addr((tag<<c.setShift | setIdx) << lineShift)
}

// Occupancy returns the number of valid lines, mostly for tests.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}
