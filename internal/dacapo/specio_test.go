package dacapo

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpecsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpecs(&buf, Suite()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpecs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := Suite()
	if len(got) != len(want) {
		t.Fatalf("suite size %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("spec %s changed across round trip:\n got %+v\nwant %+v",
				want[i].Name, got[i], want[i])
		}
	}
}

func TestKindText(t *testing.T) {
	for k, name := range map[Kind]string{KindQueue: "queue", KindTiles: "tiles", KindActors: "actors"} {
		b, err := k.MarshalText()
		if err != nil || string(b) != name {
			t.Errorf("marshal %d: %q, %v", k, b, err)
		}
		var back Kind
		if err := back.UnmarshalText(b); err != nil || back != k {
			t.Errorf("unmarshal %q: %v, %v", b, back, err)
		}
	}
	var k Kind
	if err := k.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("bogus kind accepted")
	}
	if _, err := Kind(99).MarshalText(); err == nil {
		t.Error("invalid kind marshalled")
	}
}

func TestValidateCatchesDegenerates(t *testing.T) {
	mutations := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Threads = 0 },
		func(s *Spec) { s.Items = -1 },
		func(s *Spec) { s.ItemInstrs = 0 },
		func(s *Spec) { s.IPC = -2 },
		func(s *Spec) { s.LoadsPerKI = -1 },
		func(s *Spec) { s.DepFrac = 1.5 },
		func(s *Spec) { s.HotFrac = -0.1 },
		func(s *Spec) { s.Survival = 2 },
		func(s *Spec) { s.CSInstrs = -5 },
		func(s *Spec) { s.SkewFirst = true; s.SkewFactor = 1 },
	}
	for i, mutate := range mutations {
		s := Xalan()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, s)
		}
	}
	if err := Xalan().Validate(); err != nil {
		t.Errorf("stock spec rejected: %v", err)
	}
}

func TestReadSpecsRejections(t *testing.T) {
	if _, err := ReadSpecs(strings.NewReader("[]")); err == nil {
		t.Error("empty suite accepted")
	}
	if _, err := ReadSpecs(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	WriteSpecs(&buf, []Spec{Xalan(), Xalan()})
	if _, err := ReadSpecs(&buf); err == nil {
		t.Error("duplicate names accepted")
	}
}
