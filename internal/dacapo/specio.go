package dacapo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// MarshalText renders a Kind as its name in JSON suite files.
func (k Kind) MarshalText() ([]byte, error) {
	switch k {
	case KindQueue:
		return []byte("queue"), nil
	case KindTiles:
		return []byte("tiles"), nil
	case KindActors:
		return []byte("actors"), nil
	default:
		return nil, fmt.Errorf("dacapo: unknown kind %d", k)
	}
}

// UnmarshalText parses a Kind name.
func (k *Kind) UnmarshalText(b []byte) error {
	switch string(b) {
	case "queue":
		*k = KindQueue
	case "tiles":
		*k = KindTiles
	case "actors":
		*k = KindActors
	default:
		return fmt.Errorf("dacapo: unknown kind %q", b)
	}
	return nil
}

// Validate rejects degenerate specs before they reach the simulator.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("dacapo: spec has no name")
	case s.Threads <= 0:
		return fmt.Errorf("dacapo: %s: %d threads", s.Name, s.Threads)
	case s.Items <= 0:
		return fmt.Errorf("dacapo: %s: %d items", s.Name, s.Items)
	case s.ItemInstrs <= 0:
		return fmt.Errorf("dacapo: %s: %d instructions per item", s.Name, s.ItemInstrs)
	case s.IPC <= 0:
		return fmt.Errorf("dacapo: %s: IPC %g", s.Name, s.IPC)
	case s.LoadsPerKI < 0 || s.StoresPerKI < 0:
		return fmt.Errorf("dacapo: %s: negative memory rates", s.Name)
	case s.DepFrac < 0 || s.DepFrac > 1 || s.HotFrac < 0 || s.HotFrac > 1:
		return fmt.Errorf("dacapo: %s: fractions outside [0,1]", s.Name)
	case s.HotFracB < 0 || s.HotFracB > 1:
		return fmt.Errorf("dacapo: %s: HotFracB outside [0,1]", s.Name)
	case s.HotKB < 0 || s.ColdMB < 0:
		return fmt.Errorf("dacapo: %s: negative region sizes", s.Name)
	case s.AllocPerItem < 0 || s.Nursery < 0:
		return fmt.Errorf("dacapo: %s: negative allocation sizing", s.Name)
	case s.Survival < 0 || s.Survival > 1:
		return fmt.Errorf("dacapo: %s: survival outside [0,1]", s.Name)
	case s.CSPerItem < 0 || s.CSInstrs < 0:
		return fmt.Errorf("dacapo: %s: negative critical-section sizing", s.Name)
	case s.SkewFirst && s.SkewFactor < 2:
		return fmt.Errorf("dacapo: %s: skewed first item needs SkewFactor >= 2", s.Name)
	}
	return nil
}

// WriteSpecs serialises a benchmark suite as JSON.
func WriteSpecs(w io.Writer, specs []Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(specs)
}

// ReadSpecs parses and validates a JSON benchmark suite.
func ReadSpecs(r io.Reader) ([]Spec, error) {
	var specs []Spec
	if err := json.NewDecoder(r).Decode(&specs); err != nil {
		return nil, fmt.Errorf("dacapo: parse suite: %w", err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("dacapo: empty suite")
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("dacapo: duplicate benchmark %q", s.Name)
		}
		seen[s.Name] = true
	}
	return specs, nil
}

// ReadSpecsFile loads a suite from a JSON file.
func ReadSpecsFile(path string) ([]Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSpecs(f)
}
