// Package dacapo provides synthetic analogues of the seven multithreaded
// DaCapo Java benchmarks the paper evaluates (Table I). Each benchmark is
// a kernel program whose structure — thread count, synchronization pattern,
// allocation rate, locality, and pointer-chasing behaviour — reproduces the
// documented character of the original: lusearch's allocation-heavy query
// workers, pmd's input-size scaling bottleneck, sunflow's embarrassingly
// parallel rendering, avrora's fine-grained many-thread synchronization,
// and so on. Durations are compressed ~100x relative to the paper for
// simulation tractability.
package dacapo

import (
	"fmt"

	"depburst/internal/jvm"
	"depburst/internal/sim"
)

// Kind selects the benchmark's parallel structure.
type Kind int

// Benchmark structures.
const (
	// KindQueue is a pool of workers pulling items off a shared,
	// lock-protected queue (lusearch, pmd, xalan).
	KindQueue Kind = iota
	// KindTiles is data-parallel tile rendering with a final barrier and
	// almost no cross-thread synchronization (sunflow).
	KindTiles
	// KindActors is a round-based simulation in which every thread
	// synchronises at a barrier each round, with more threads than cores
	// (avrora).
	KindActors
)

// Spec fully describes one benchmark.
type Spec struct {
	Name string
	// Memory marks the benchmark memory-intensive (>10% of time in GC,
	// Table I's "M" class).
	Memory bool
	// HeapMB is the paper's heap size, reported in Table I output.
	HeapMB int

	Threads int
	Kind    Kind

	// Work shape.
	Items      int   // work items (or rounds, for KindActors)
	ItemInstrs int64 // mean instructions per item
	// SkewFirst makes the first item SkewFactor× larger, modelling pmd's
	// large-input-file scaling bottleneck.
	SkewFirst  bool
	SkewFactor int64

	// Compute profile.
	IPC         float64
	LoadsPerKI  float64
	StoresPerKI float64
	DepFrac     float64
	HotFrac     float64
	HotKB       int64
	ColdMB      int64

	// Phase behaviour: when PhaseItems > 0, the workload alternates every
	// PhaseItems items between the base locality (HotFrac) and a second
	// phase with HotFracB locality — the memory-heavy vs memory-light
	// program phases that the dynamic energy manager exploits and a
	// static frequency setting cannot.
	PhaseItems int
	HotFracB   float64

	// Managed-runtime behaviour.
	AllocPerItem int64
	Nursery      int64
	Survival     float64
	JITInstrs    int64

	// Critical sections per item against a shared lock.
	CSPerItem int
	CSInstrs  int64
}

// Suite returns the paper's seven benchmarks in Table I order
// (memory-intensive first).
func Suite() []Spec {
	return []Spec{
		Xalan(), PMD(), PMDScale(), Lusearch(),
		LusearchFix(), Avrora(), Sunflow(),
	}
}

// ByName returns the named benchmark spec.
func ByName(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dacapo: unknown benchmark %q", name)
}

// Xalan models the XSLT transformer: queue workers, allocation-heavy with
// moderate locality, frequent shared-state locking.
func Xalan() Spec {
	return Spec{
		Name: "xalan", Memory: true, HeapMB: 108,
		Threads: 4, Kind: KindQueue,
		Items: 1320, ItemInstrs: 36_000,
		IPC: 2.0, LoadsPerKI: 14, StoresPerKI: 4, DepFrac: 0.30,
		HotFrac: 0.62, HotKB: 192, ColdMB: 10,
		PhaseItems: 130, HotFracB: 0.95,
		AllocPerItem: 24_000, Nursery: 1 << 20, Survival: 0.26,
		CSPerItem: 2, CSInstrs: 3_200,
	}
}

// PMD models the source-code analyser: queue workers with one very large
// input file that serialises the tail of the run.
func PMD() Spec {
	return Spec{
		Name: "pmd", Memory: true, HeapMB: 98,
		Threads: 4, Kind: KindQueue,
		Items: 780, ItemInstrs: 50_000,
		SkewFirst: true, SkewFactor: 60,
		IPC: 1.8, LoadsPerKI: 13, StoresPerKI: 4, DepFrac: 0.35,
		HotFrac: 0.64, HotKB: 256, ColdMB: 12,
		PhaseItems: 80, HotFracB: 0.93,
		AllocPerItem: 28_000, Nursery: 1 << 20, Survival: 0.34,
		CSPerItem: 3, CSInstrs: 2_600,
	}
}

// PMDScale is pmd with the large-input bottleneck removed ([14]).
func PMDScale() Spec {
	s := PMD()
	s.Name = "pmd.scale"
	s.SkewFirst = false
	s.Items = 340
	return s
}

// Lusearch models the text-search workers: modest per-item work but very
// high allocation, hence frequent collections.
func Lusearch() Spec {
	return Spec{
		Name: "lusearch", Memory: true, HeapMB: 68,
		Threads: 4, Kind: KindQueue,
		Items: 6900, ItemInstrs: 18_000,
		IPC: 2.2, LoadsPerKI: 12, StoresPerKI: 4, DepFrac: 0.25,
		HotFrac: 0.66, HotKB: 128, ColdMB: 8,
		PhaseItems: 650, HotFracB: 0.94,
		AllocPerItem: 9_000, Nursery: 1 << 20, Survival: 0.13,
		CSPerItem: 1, CSInstrs: 1_600,
	}
}

// LusearchFix is lusearch with the needless allocation removed ([43]):
// the same query structure with a fraction of the allocation and better
// locality.
func LusearchFix() Spec {
	s := Lusearch()
	s.Name = "lusearch.fix"
	s.Memory = false
	s.Items = 4600
	s.ItemInstrs = 16_000
	s.PhaseItems = 0
	s.HotFracB = 0
	s.AllocPerItem = 2_200
	s.HotFrac = 0.95
	s.LoadsPerKI = 11
	return s
}

// Avrora models the AVR microcontroller simulator: six threads (more than
// cores), tiny work quanta, and a synchronization point every round —
// limited parallelism and heavy futex traffic.
func Avrora() Spec {
	return Spec{
		Name: "avrora", Memory: false, HeapMB: 98,
		Threads: 6, Kind: KindActors,
		Items: 1650, ItemInstrs: 5_000,
		IPC: 1.6, LoadsPerKI: 7, StoresPerKI: 2, DepFrac: 0.15,
		HotFrac: 0.97, HotKB: 96, ColdMB: 4,
		AllocPerItem: 260, Nursery: 1 << 20, Survival: 0.08,
	}
}

// Sunflow models the ray tracer: embarrassingly parallel tiles of heavy
// compute with a cache-resident scene and minimal allocation.
func Sunflow() Spec {
	return Spec{
		Name: "sunflow", Memory: false, HeapMB: 108,
		Threads: 4, Kind: KindTiles,
		Items: 1350, ItemInstrs: 300_000,
		IPC: 2.6, LoadsPerKI: 9, StoresPerKI: 2, DepFrac: 0.1,
		HotFrac: 0.96, HotKB: 224, ColdMB: 6,
		AllocPerItem: 7_000, Nursery: 1 << 20, Survival: 0.34,
	}
}

// Scaled returns a copy of the spec with the amount of work (items and
// allocation volume with it) multiplied by factor. Use it to trade run
// length for statistical weight — e.g. Scaled(10) approaches the paper's
// uncompressed durations.
func (s Spec) Scaled(factor float64) Spec {
	if factor <= 0 {
		panic("dacapo: non-positive scale factor")
	}
	out := s
	out.Items = int(float64(s.Items) * factor)
	if out.Items < 1 {
		out.Items = 1
	}
	return out
}

// Configure applies the benchmark's JVM sizing to a machine config.
func (s Spec) Configure(cfg *sim.Config) {
	s.ConfigureJVM(&cfg.JVM)
}

// ConfigureJVM applies the benchmark's JVM sizing to one runtime-instance
// config (used directly when the benchmark runs as a co-located tenant).
func (s Spec) ConfigureJVM(cfg *jvm.Config) {
	if s.Nursery > 0 {
		cfg.NurseryBytes = s.Nursery
	}
	if s.Survival > 0 {
		cfg.SurvivalRate = s.Survival
	}
	cfg.JITWorkInstrs = s.JITInstrs
}

// Class returns the Table I classification string.
func (s Spec) Class() string {
	if s.Memory {
		return "M"
	}
	return "C"
}

// TotalInstrs estimates the benchmark's total application instructions,
// used for sanity checks and scaling.
func (s Spec) TotalInstrs() int64 {
	n := int64(s.Items) * s.ItemInstrs
	if s.SkewFirst {
		n += (s.SkewFactor - 1) * s.ItemInstrs
	}
	n += int64(s.Items) * int64(s.CSPerItem) * s.CSInstrs
	return n
}
