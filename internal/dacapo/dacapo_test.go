package dacapo

import (
	"testing"

	"depburst/internal/sim"
)

func TestSuiteComposition(t *testing.T) {
	suite := Suite()
	if len(suite) != 7 {
		t.Fatalf("suite has %d benchmarks, want 7", len(suite))
	}
	names := map[string]bool{}
	memory := 0
	for _, s := range suite {
		if names[s.Name] {
			t.Errorf("duplicate benchmark %q", s.Name)
		}
		names[s.Name] = true
		if s.Memory {
			memory++
		}
		if s.Threads <= 0 || s.Items <= 0 || s.ItemInstrs <= 0 || s.IPC <= 0 {
			t.Errorf("%s: degenerate spec %+v", s.Name, s)
		}
		if s.TotalInstrs() <= 0 {
			t.Errorf("%s: no work", s.Name)
		}
	}
	// Table I: four memory-intensive, three compute-intensive.
	if memory != 4 {
		t.Errorf("%d memory-intensive benchmarks, want 4", memory)
	}
	for _, want := range []string{"xalan", "pmd", "pmd.scale", "lusearch", "lusearch.fix", "avrora", "sunflow"} {
		if !names[want] {
			t.Errorf("missing benchmark %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("avrora")
	if err != nil || s.Name != "avrora" {
		t.Errorf("ByName(avrora) = %+v, %v", s, err)
	}
	if s.Threads != 6 {
		t.Errorf("avrora threads %d, want 6 (more than cores)", s.Threads)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestClass(t *testing.T) {
	if Xalan().Class() != "M" || Sunflow().Class() != "C" {
		t.Error("classification strings wrong")
	}
}

func TestPMDVariants(t *testing.T) {
	pmd, scale := PMD(), PMDScale()
	if !pmd.SkewFirst || scale.SkewFirst {
		t.Error("pmd must have the input-size skew; pmd.scale must not")
	}
	if pmd.SkewFactor <= 1 {
		t.Error("pmd skew factor degenerate")
	}
}

func TestLusearchVariants(t *testing.T) {
	l, fix := Lusearch(), LusearchFix()
	if fix.AllocPerItem >= l.AllocPerItem {
		t.Error("lusearch.fix must allocate less than lusearch")
	}
	if !l.Memory || fix.Memory {
		t.Error("classification: lusearch M, lusearch.fix C")
	}
}

func TestConfigure(t *testing.T) {
	cfg := sim.DefaultConfig()
	s := Xalan()
	s.Configure(&cfg)
	if cfg.JVM.NurseryBytes != s.Nursery || cfg.JVM.SurvivalRate != s.Survival {
		t.Errorf("Configure did not apply JVM sizing: %+v", cfg.JVM)
	}
}

func TestSkewAffectsRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	// pmd's skewed first item serialises the tail: with the same total
	// items, the skewed variant must run longer than proportional.
	run := func(s Spec) float64 {
		cfg := sim.DefaultConfig()
		s.Configure(&cfg)
		res, err := sim.New(cfg).Run(New(s))
		if err != nil {
			t.Fatal(err)
		}
		return res.Time.Seconds() / float64(s.TotalInstrs())
	}
	pmd := PMD()
	scale := PMDScale()
	// Per-instruction time: the skewed run is less parallel, so it costs
	// more time per instruction.
	if run(pmd) <= run(scale) {
		t.Error("pmd's scaling bottleneck not visible")
	}
}

func TestScaled(t *testing.T) {
	s := Lusearch()
	big := s.Scaled(2)
	if big.Items != 2*s.Items {
		t.Errorf("Scaled(2) items %d, want %d", big.Items, 2*s.Items)
	}
	small := s.Scaled(0.001)
	if small.Items < 1 {
		t.Error("Scaled floor broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("Scaled(0) did not panic")
		}
	}()
	s.Scaled(0)
}

func TestItemProfilePhases(t *testing.T) {
	s := Xalan() // PhaseItems 130
	w := New(s)
	a := w.profile(s, 0, s.HotFrac)
	b := w.profile(s, 0, s.HotFracB)
	if got := itemProfile(s, 0, a, b); got != a {
		t.Error("first phase should use profile A")
	}
	if got := itemProfile(s, s.PhaseItems, a, b); got != b {
		t.Error("second phase should use profile B")
	}
	if got := itemProfile(s, 2*s.PhaseItems, a, b); got != a {
		t.Error("third phase should flip back to A")
	}
	noPhase := s
	noPhase.PhaseItems = 0
	if got := itemProfile(noPhase, 500, a, b); got != a {
		t.Error("phase-free spec must always use profile A")
	}
}

func TestCoRunName(t *testing.T) {
	c := &CoRun{Specs: []Spec{Xalan(), Sunflow()}}
	if c.Name() != "corun+xalan+sunflow" {
		t.Errorf("name %q", c.Name())
	}
}
