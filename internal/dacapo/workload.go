package dacapo

import (
	"depburst/internal/cpu"
	"depburst/internal/jvm"
	"depburst/internal/kernel"
	"depburst/internal/mem"
	"depburst/internal/rng"
	"depburst/internal/sim"
	"depburst/internal/trace"
)

// Address-space bases for workload (non-heap) data: a shared hot region and
// a large private cold region per thread, all above the managed heap.
const (
	sharedBase  mem.Addr = 1 << 44
	privateBase mem.Addr = 1 << 45
	privateSpan mem.Addr = 1 << 34
)

// maxBlockInstrs caps one simulated block so thread-interleaving skew stays
// bounded (~8 µs at 1 GHz, IPC 2).
const maxBlockInstrs = 16_000

// ffBlockInstrs caps one fast-forwarded chunk (~one sampling quantum of
// typical steady-state progress).
const ffBlockInstrs = 64_000

// Workload adapts a Spec to sim.Workload.
type Workload struct {
	Spec Spec

	// jvm and group bind the workload to one managed-runtime instance;
	// the zero values use the machine's default instance (group 0).
	jvm   *jvm.JVM
	group int
}

// New returns the runnable workload for spec.
func New(spec Spec) *Workload { return &Workload{Spec: spec} }

// Name implements sim.Workload.
func (w *Workload) Name() string { return w.Spec.Name }

// Setup implements sim.Workload: it spawns the benchmark's main thread,
// which in turn spawns the worker threads.
func (w *Workload) Setup(m *sim.Machine) {
	if w.jvm == nil {
		w.jvm = m.JVM
	}
	s := w.Spec
	m.Kern.SpawnGroup(s.Name+"-main", kernel.ClassApp, w.group, -1, func(e *kernel.Env) {
		w.runMain(e, m, s)
	})
}

// CoRun bundles several benchmarks into one consolidated workload: each
// gets its own managed-runtime instance (kernel thread group, heap,
// stop-the-world domain) and they compete for the machine's cores — the
// multi-tenant scenario.
type CoRun struct {
	Specs []Spec
}

// Name implements sim.Workload.
func (c *CoRun) Name() string {
	name := "corun"
	for _, s := range c.Specs {
		name += "+" + s.Name
	}
	return name
}

// Setup implements sim.Workload.
func (c *CoRun) Setup(m *sim.Machine) {
	for i, spec := range c.Specs {
		w := &Workload{Spec: spec}
		if i > 0 {
			cfg := m.Config().JVM
			spec.ConfigureJVM(&cfg)
			w.jvm = m.NewJVM(cfg)
			w.group = w.jvm.Group()
		}
		w.Setup(m)
	}
}

// shared is the cross-thread state of one benchmark run.
type shared struct {
	dispatchMu kernel.Mutex
	sharedMu   kernel.Mutex
	done       *kernel.Barrier
	round      *kernel.Barrier
	itemsLeft  int
	nextItem   int
}

func (w *Workload) runMain(e *kernel.Env, m *sim.Machine, s Spec) {
	st := &shared{
		done:      kernel.NewBarrier(s.Threads + 1),
		itemsLeft: s.Items,
	}
	if s.Kind == KindActors {
		st.round = kernel.NewBarrier(s.Threads)
	}

	// Startup allocation: loading the workload's input builds some
	// initial heap structure.
	tl := &jvm.TLAB{}
	w.jvm.Alloc(e, tl, 64<<10)

	for i := 0; i < s.Threads; i++ {
		tid := i
		m.Kern.SpawnGroup(s.Name+"-worker", kernel.ClassApp, w.group, tid%m.Kern.Cores(), func(we *kernel.Env) {
			w.runWorker(we, m, s, st, tid)
		})
	}
	e.BarrierWait(st.done)
}

// profile builds the thread's compute profile with the given locality: a
// shared hot set that stays cache-resident and a private cold set that
// misses to DRAM.
func (w *Workload) profile(s Spec, tid int, hotFrac float64) trace.Profile {
	hot := trace.RandomRegion{Base: sharedBase, Size: s.HotKB << 10}
	cold := trace.RandomRegion{
		Base: privateBase + privateSpan*mem.Addr(tid),
		Size: s.ColdMB << 20,
	}
	return trace.Profile{
		IPC:         s.IPC,
		LoadsPerKI:  s.LoadsPerKI,
		StoresPerKI: s.StoresPerKI,
		DepFrac:     s.DepFrac,
		Addr:        trace.HotCold{Hot: hot, Cold: cold, HotFrac: hotFrac},
	}
}

// itemProfile selects the profile for a work item, honouring the spec's
// alternating phase behaviour.
func itemProfile(s Spec, item int, a, b trace.Profile) trace.Profile {
	if s.PhaseItems <= 0 {
		return a
	}
	if (item/s.PhaseItems)%2 == 1 {
		return b
	}
	return a
}

func (w *Workload) runWorker(e *kernel.Env, m *sim.Machine, s Spec, st *shared, tid int) {
	r := m.Rng.Fork(0xDA0 + uint64(w.group)<<16 + uint64(tid))
	tl := &jvm.TLAB{}
	var blk cpu.Block
	prof := w.profile(s, tid, s.HotFrac)
	profB := prof
	if s.PhaseItems > 0 {
		profB = w.profile(s, tid, s.HotFracB)
	}

	switch s.Kind {
	case KindQueue, KindTiles:
		w.queueLoop(e, m, s, st, tid, r, tl, &blk, prof, profB)
	case KindActors:
		w.actorLoop(e, m, s, st, tid, r, tl, &blk, prof)
	}
	e.BarrierWait(st.done)
}

// queueLoop pulls items off the shared dispatch lock until none remain.
func (w *Workload) queueLoop(e *kernel.Env, m *sim.Machine, s Spec, st *shared,
	tid int, r *rng.Source, tl *jvm.TLAB, blk *cpu.Block, profA, profB trace.Profile) {
	for {
		e.Lock(&st.dispatchMu)
		if st.itemsLeft == 0 {
			e.Unlock(&st.dispatchMu)
			return
		}
		st.itemsLeft--
		item := st.nextItem
		st.nextItem++
		e.Unlock(&st.dispatchMu)

		w.jvm.Safepoint(e)
		prof := itemProfile(s, item, profA, profB)

		n := jitter(s.ItemInstrs, r)
		if s.SkewFirst && item == 0 {
			n = s.ItemInstrs * s.SkewFactor
		}
		w.computeChunked(e, blk, prof, n, r)
		if s.AllocPerItem > 0 {
			w.jvm.Alloc(e, tl, s.AllocPerItem)
		}
		for cs := 0; cs < s.CSPerItem; cs++ {
			e.Lock(&st.sharedMu)
			if !e.FastCompute(s.CSInstrs) {
				trace.FillBlock(blk, prof, s.CSInstrs, r)
				e.ComputeSampled(blk)
			}
			e.Unlock(&st.sharedMu)
		}
	}
}

// actorLoop runs Items rounds, synchronising all actors at a barrier each
// round (avrora's lock-step node simulation).
func (w *Workload) actorLoop(e *kernel.Env, m *sim.Machine, s Spec, st *shared,
	tid int, r *rng.Source, tl *jvm.TLAB, blk *cpu.Block, prof trace.Profile) {
	for round := 0; round < s.Items; round++ {
		w.jvm.Safepoint(e)
		w.computeChunked(e, blk, prof, jitter(s.ItemInstrs, r), r)
		if s.AllocPerItem > 0 {
			w.jvm.Alloc(e, tl, s.AllocPerItem)
		}
		e.BarrierWait(st.round)
	}
}

// computeChunked simulates n instructions in bounded blocks. Each chunk
// goes through the sampled-simulation gate: in fast-forward mode the core
// extrapolates it (no trace generation, no memory events); otherwise it is
// built and simulated in detail and feeds the fast-forward rate pool.
func (w *Workload) computeChunked(e *kernel.Env, blk *cpu.Block, prof trace.Profile, n int64, r *rng.Source) {
	for n > 0 {
		// Fast-forwarded chunks run coarser than detailed ones: the
		// extrapolation is O(1) per chunk, so the cap only needs to keep
		// one chunk within roughly a sampling quantum (so per-quantum
		// counter attribution stays meaningful), not tight enough for
		// detailed thread-interleaving skew.
		if c := min(n, ffBlockInstrs); e.FastCompute(c) {
			n -= c
			continue
		}
		c := min(n, maxBlockInstrs)
		trace.FillBlock(blk, prof, c, r)
		e.ComputeSampled(blk)
		n -= c
	}
}

// jitter perturbs a mean item size by ±25% deterministically.
func jitter(mean int64, r *rng.Source) int64 {
	if mean <= 4 {
		return mean
	}
	lo := mean - mean/4
	return lo + r.Int63n(mean/2)
}
