// Package simcache is a persistent, disk-backed, content-addressed store
// for simulation results. Ground-truth and governed runs are pure functions
// of (machine configuration, benchmark spec, seed, governor parameters), so
// their results can be cached across processes: a warm rerun of the full
// experiment suite is pure deserialization and byte-identical to a cold run.
//
// Keys are SHA-256 digests over a canonical encoding of the inputs plus a
// schema-version string and a structural fingerprint of the result type, so
// any change to the simulator's observable output families invalidates the
// cache implicitly. Entries are self-checking (magic, version, payload
// checksum) and written atomically (temp file + rename); corruption,
// truncation or version skew degrades to a cache miss, never to a wrong
// result. Total size is bounded by an LRU cap: reads refresh an entry's
// mtime, and writes evict least-recently-used entries beyond the cap.
package simcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"time"
)

// SchemaVersion names the on-disk entry layout and the keying scheme. Bump
// it whenever either changes incompatibly; old entries then miss and are
// eventually evicted.
const SchemaVersion = "depburst-simcache/1"

// DefaultMaxBytes is the default LRU size cap (4 GiB).
const DefaultMaxBytes = 4 << 30

// entryExt is the filename extension of cache entries; everything else in
// the directory (temp files, stray content) is ignored by Get and eviction.
const entryExt = ".sce"

// metaExt is the filename extension of metadata sidecars: small framed JSON
// records describing the inputs of the entry with the same key. Sidecars
// make the corpus scannable — the content hash alone is not invertible back
// to the (config, spec) that produced an entry. They ride along with their
// entry: evicting or purging an entry removes its sidecar too, and a
// sidecar without a live entry is simply ignored.
const metaExt = ".scm"

// Entry header: magic, format version, payload length, payload CRC.
var entryMagic = [4]byte{'D', 'B', 'S', 'C'}

const entryVersion uint32 = 1

const headerSize = 4 + 4 + 8 + 4 // magic + version + length + crc32

// Stats counts store traffic since Open.
type Stats struct {
	Hits, Misses, Puts, Evictions uint64
}

// Store is one cache directory. It is safe for concurrent use by multiple
// goroutines; concurrent processes sharing a directory are safe too, since
// entries are immutable once renamed into place.
type Store struct {
	dir      string
	maxBytes int64

	mu sync.Mutex
	//depburst:guardedby mu
	stats Stats
}

// Open creates (if needed) and returns the store rooted at dir. maxBytes
// bounds the total size of entries; <= 0 selects DefaultMaxBytes.
func Open(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("simcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simcache: %w", err)
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Store{dir: dir, maxBytes: maxBytes}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Key derives the content address for a cached result from its inputs.
// Each part is canonically JSON-encoded (struct fields in declaration
// order, no maps should be passed) and hashed together with SchemaVersion.
// Callers include every input the simulation depends on — the full machine
// config, the benchmark spec(s) carrying the seed, and any governor
// parameters — plus Fingerprint of the result type.
func Key(parts ...any) (string, error) {
	h := sha256.New()
	h.Write([]byte(SchemaVersion))
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			return "", fmt.Errorf("simcache: keying: %w", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Fingerprint returns a structural digest of v's type: type kinds, field
// names and declared order, recursively. Include it in Key so that adding,
// removing or retyping a field of the cached result changes every key —
// version skew between binaries then reads as a miss instead of a
// silently-partial gob decode.
func Fingerprint(v any) string {
	var b bytes.Buffer
	seen := map[reflect.Type]bool{}
	walkType(&b, reflect.TypeOf(v), seen)
	sum := sha256.Sum256(b.Bytes())
	return hex.EncodeToString(sum[:8])
}

func walkType(b *bytes.Buffer, t reflect.Type, seen map[reflect.Type]bool) {
	if t == nil {
		b.WriteString("nil")
		return
	}
	if seen[t] {
		fmt.Fprintf(b, "cycle(%s)", t.Name())
		return
	}
	switch t.Kind() {
	case reflect.Pointer, reflect.Slice, reflect.Array:
		fmt.Fprintf(b, "%s{", t.Kind())
		walkType(b, t.Elem(), seen)
		b.WriteByte('}')
	case reflect.Struct:
		seen[t] = true
		fmt.Fprintf(b, "struct %s{", t.Name())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			b.WriteString(f.Name)
			b.WriteByte(':')
			walkType(b, f.Type, seen)
			b.WriteByte(';')
		}
		b.WriteByte('}')
		delete(seen, t)
	case reflect.Map:
		b.WriteString("map[")
		walkType(b, t.Key(), seen)
		b.WriteByte(']')
		walkType(b, t.Elem(), seen)
	default:
		// Scalar: name + kind pins both the named type and its width.
		fmt.Fprintf(b, "%s/%s", t.Name(), t.Kind())
	}
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+entryExt)
}

func (s *Store) metaPath(key string) string {
	return filepath.Join(s.dir, key+metaExt)
}

// Get decodes the entry for key into out (a pointer to a fresh value) and
// reports whether it was served. Every failure mode — absent, truncated,
// corrupted, or written by an incompatible format version — returns false;
// damaged entries are deleted so they stop occupying the budget.
func (s *Store) Get(key string, out any) bool {
	path := s.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		s.count(func(st *Stats) { st.Misses++ })
		return false
	}
	payload, ok := checkEntry(raw)
	if !ok {
		os.Remove(path) // damaged or foreign: purge, best effort
		os.Remove(s.metaPath(key))
		s.count(func(st *Stats) { st.Misses++ })
		return false
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(out); err != nil {
		os.Remove(path)
		os.Remove(s.metaPath(key))
		s.count(func(st *Stats) { st.Misses++ })
		return false
	}
	// Refresh recency for the LRU cap, best effort.
	now := time.Now() //depburst:allow determinism -- LRU recency stamp; cache hits return byte-identical payloads regardless
	os.Chtimes(path, now, now)
	s.count(func(st *Stats) { st.Hits++ })
	return true
}

// checkEntry validates the framing and checksum of a raw entry and returns
// its payload.
func checkEntry(raw []byte) ([]byte, bool) {
	if len(raw) < headerSize {
		return nil, false
	}
	if [4]byte(raw[:4]) != entryMagic {
		return nil, false
	}
	if binary.LittleEndian.Uint32(raw[4:8]) != entryVersion {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(raw[8:16])
	payload := raw[headerSize:]
	if uint64(len(payload)) != n {
		return nil, false
	}
	if binary.LittleEndian.Uint32(raw[16:20]) != crc32.ChecksumIEEE(payload) {
		return nil, false
	}
	return payload, true
}

// Put encodes val and installs it under key atomically: the entry is
// staged in a temp file in the same directory and renamed into place, so
// readers (including other processes) only ever see complete entries.
func (s *Store) Put(key string, val any) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(val); err != nil {
		return fmt.Errorf("simcache: encode: %w", err)
	}
	if err := s.install(s.path(key), payload.Bytes()); err != nil {
		return err
	}
	s.count(func(st *Stats) { st.Puts++ })
	return s.evictOver()
}

// install frames payload (magic, version, length, CRC) and renames it into
// place atomically.
func (s *Store) install(dst string, payload []byte) error {
	var hdr [headerSize]byte
	copy(hdr[:4], entryMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], entryVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(payload))

	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("simcache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(hdr[:]); err == nil {
		_, err = tmp.Write(payload)
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("simcache: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("simcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("simcache: install: %w", err)
	}
	return nil
}

// PutMeta installs a metadata sidecar for key: a framed, checksummed JSON
// record of meta (struct fields in declaration order — no maps), written
// atomically like an entry. Sidecars are tiny and excluded from the LRU
// byte budget, but eviction and purge remove them together with their
// entry.
func (s *Store) PutMeta(key string, meta any) error {
	payload, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("simcache: meta encode: %w", err)
	}
	return s.install(s.metaPath(key), payload)
}

// GetMeta decodes the metadata sidecar for key into out and reports whether
// it was served. Absent, truncated, corrupted or version-skewed sidecars
// return false; damaged ones are purged, best effort.
func (s *Store) GetMeta(key string, out any) bool {
	path := s.metaPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	payload, ok := checkEntry(raw)
	if !ok {
		os.Remove(path)
		return false
	}
	if err := json.Unmarshal(payload, out); err != nil {
		os.Remove(path)
		return false
	}
	return true
}

// HasMeta reports whether key has a metadata sidecar on disk (without
// validating it; GetMeta does that).
func (s *Store) HasMeta(key string) bool {
	_, err := os.Stat(s.metaPath(key))
	return err == nil
}

// Keys returns the content keys of the live entries, sorted, so corpus
// scans are deterministic regardless of directory order.
func (s *Store) Keys() ([]string, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, de := range des {
		name := de.Name()
		if filepath.Ext(name) != entryExt {
			continue
		}
		keys = append(keys, name[:len(name)-len(entryExt)])
	}
	sort.Strings(keys)
	return keys, nil
}

// Size scans the directory and returns the live entry count and byte total.
func (s *Store) Size() (entries int, bytes int64, err error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, 0, err
	}
	for _, de := range des {
		if filepath.Ext(de.Name()) != entryExt {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		entries++
		bytes += info.Size()
	}
	return entries, bytes, nil
}

// evictOver enforces the LRU cap: while the directory exceeds maxBytes,
// remove the least recently used entries (oldest mtime; Get refreshes it).
func (s *Store) evictOver() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	type ent struct {
		path  string
		size  int64
		mtime time.Time
	}
	var ents []ent
	var total int64
	for _, de := range des {
		if filepath.Ext(de.Name()) != entryExt {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		ents = append(ents, ent{filepath.Join(s.dir, de.Name()), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= s.maxBytes {
		return nil
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].mtime.Before(ents[j].mtime) })
	for _, e := range ents {
		if total <= s.maxBytes {
			break
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			s.stats.Evictions++
			// The sidecar goes with its entry; without one this is a no-op.
			os.Remove(e.path[:len(e.path)-len(entryExt)] + metaExt)
		}
	}
	return nil
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}
